#!/usr/bin/env python3
"""Diff two bench metrics snapshots and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
                           [--no-fail] [--all] [--require GAUGE=MIN ...]

Each file is either one bench's MetricsSnapshot (the JSON a single bench
writes via FBS_METRICS_OUT) or a combined {bench_name: snapshot} map like
the checked-in BENCH_seed.json. Only gauges are compared: counters depend
on iteration counts and latencies carry their own quantile structure.

A gauge's "good" direction is inferred from its name: throughput-ish
suffixes (kBps, kbps, per_sec) are better when larger; cost-ish suffixes
(us, ns, seconds, misses, us_per_pkt) are better when smaller. Gauges with
an unrecognized direction are reported but never flagged. A change worse
than --threshold (default 10%) in the bad direction is a regression and
makes the exit status 1 unless --no-fail is given.

--require GAUGE=MIN asserts an absolute floor on a gauge in CURRENT
(matched against the flattened "bench:gauge" name), independent of the
baseline and of --no-fail: a missing gauge or a value below MIN always
fails. This is how acceptance gates (e.g. the parallel wall-speedup gate)
are enforced in CI rather than merely diffed.
"""

import argparse
import json
import sys

HIGHER_BETTER = ("kbps", "kBps", "Bps", "per_sec", "throughput", "hits",
                 "speedup", "gate", "load_factor")
LOWER_BETTER = ("us_per_pkt", "_us", ".us", "_ns", ".ns", "seconds",
                "misses", "miss_rate", "evictions", "cost", "cascades",
                "touched", "pressure")


def direction(name: str):
    """+1 if larger is better, -1 if smaller is better, 0 if unknown."""
    # Judge only the gauge name: a combined map prefixes "bench_name:", and
    # a bench called e.g. fig8_throughput must not drag its cost gauges
    # (us_per_pkt) into the higher-is-better bucket.
    lowered = name.split(":", 1)[-1].lower()
    # Cost-ish names win ties: "cpu_us_per_pkt" contains no throughput
    # suffix, but a name carrying both (e.g. "misses_per_sec") is a cost.
    for suffix in LOWER_BETTER:
        if suffix.lower() in lowered:
            return -1
    for suffix in HIGHER_BETTER:
        if suffix.lower() in lowered:
            return +1
    return 0


def flatten_gauges(doc):
    """{metric_name: value} from a snapshot or a {bench: snapshot} map."""
    out = {}
    if "gauges" in doc and isinstance(doc["gauges"], dict):
        return dict(doc["gauges"])
    for bench, snap in doc.items():
        if isinstance(snap, dict) and isinstance(snap.get("gauges"), dict):
            for name, value in snap["gauges"].items():
                out[f"{bench}:{name}"] = value
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--no-fail", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--all", action="store_true",
                        help="print every common gauge, not just notable ones")
    parser.add_argument("--require", action="append", default=[],
                        metavar="GAUGE=MIN",
                        help="assert current GAUGE >= MIN (repeatable); "
                             "failure exits 1 even with --no-fail")
    args = parser.parse_args()

    requirements = []
    for spec in args.require:
        name, sep, floor = spec.rpartition("=")
        if not sep:
            parser.error(f"--require needs GAUGE=MIN, got {spec!r}")
        try:
            requirements.append((name, float(floor)))
        except ValueError:
            parser.error(f"--require floor must be a number, got {floor!r}")

    with open(args.baseline) as f:
        base = flatten_gauges(json.load(f))
    with open(args.current) as f:
        cur = flatten_gauges(json.load(f))

    common = sorted(set(base) & set(cur))
    if not common:
        print("bench_compare: no common gauges between the two snapshots",
              file=sys.stderr)
        return 2

    regressions, improvements = [], []
    width = max(len(n) for n in common)
    for name in common:
        b, c = base[name], cur[name]
        if b == 0:
            continue
        rel = (c - b) / abs(b)
        sign = direction(name)
        regressed = sign != 0 and rel * sign < -args.threshold
        improved = sign != 0 and rel * sign > args.threshold
        if regressed:
            regressions.append(name)
        elif improved:
            improvements.append((name, rel * sign))
        if args.all or regressed or improved:
            tag = "REGRESSION" if regressed else ("improved" if improved
                                                  else "")
            print(f"{name:<{width}}  {b:14.3f} -> {c:14.3f}  "
                  f"{rel:+8.1%}  {tag}")

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    if only_base:
        print(f"\n{len(only_base)} gauge(s) only in baseline "
              f"(first: {only_base[0]})")
    if only_cur:
        print(f"{len(only_cur)} gauge(s) only in current "
              f"(first: {only_cur[0]})")

    print(f"\n{len(common)} gauges compared: "
          f"{len(improvements)} improved >{args.threshold:.0%}, "
          f"{len(regressions)} regressed >{args.threshold:.0%}")

    gate_failed = False
    for name, floor in requirements:
        value = cur.get(name)
        if value is None:
            print(f"REQUIREMENT FAILED: {name} missing from current snapshot")
            gate_failed = True
        elif value < floor:
            print(f"REQUIREMENT FAILED: {name} = {value:.3f} < {floor:.3f}")
            gate_failed = True
        else:
            print(f"requirement ok: {name} = {value:.3f} >= {floor:.3f}")

    if regressions:
        print("regressions:")
        for name in regressions:
            print(f"  {name}")
        if not args.no_fail:
            return 1
    return 1 if gate_failed else 0


if __name__ == "__main__":
    sys.exit(main())
