#!/usr/bin/env python3
"""Decode FBS wire frames from a pcap capture.

Captures come from net::PcapWriter (LINKTYPE_RAW: every record body is a
raw IPv4 packet, stdlib-only parsing -- no scapy). For each record the
dissector prints the IPv4 five-tuple-bearing summary, then, when the bytes
after the IP header carry a security flow header (version nibble 1,
reserved flag bits zero, a known algorithm suite, and room for the suite's
MAC), the FBS fields octet-for-octet:

    flags(1) suite(1) sfl(8 BE) confounder(4 BE) timestamp(4 BE, minutes
    since 1996-01-01T00:00Z) mac(16 for MD5 suites / 20 for SHS)

followed by the (possibly encrypted) body. Cleartext bodies are parsed one
level further (UDP/TCP ports) so the flow attributes the sfl names are
visible. Tunnel-mode frames (IP proto 253) carry a full inner IP datagram
after the FBS header; the inner header is summarized too.

Usage:
    tools/fbs_dissect.py capture.pcap [--hex] [--expect-fbs N]

--expect-fbs N exits non-zero unless at least N FBS datagrams were decoded
(the cross-process interop harness uses this to assert the capture).

The trailing summary line is machine-readable:
    fbs_dissect: <records> records, <fbs> fbs (<secret> secret), <plain> plain
"""

import argparse
import datetime
import struct
import sys

FBS_EPOCH = datetime.datetime(1996, 1, 1, tzinfo=datetime.timezone.utc)
FBS_FIXED_SIZE = 18
FBS_TUNNEL_PROTO = 253

MAC_NAMES = {1: "keyed-md5", 2: "hmac-md5", 3: "keyed-sha1", 4: "hmac-sha1",
             5: "null"}
MAC_SIZES = {1: 16, 2: 16, 3: 20, 4: 20, 5: 16}
CIPHER_NAMES = {0: "none", 1: "des-cbc", 2: "des-ecb", 3: "des-cfb",
                4: "des-ofb", 5: "des3-ede"}
PROTO_NAMES = {1: "icmp", 6: "tcp", 17: "udp", FBS_TUNNEL_PROTO: "fbs-tunnel"}


def parse_pcap(data):
    """Yield (ts_sec, ts_usec, frame) records; handles both endians."""
    if len(data) < 24:
        raise ValueError("truncated pcap file header")
    magic = struct.unpack("<I", data[:4])[0]
    if magic == 0xA1B2C3D4:
        end = "<"
    elif magic == 0xD4C3B2A1:
        end = ">"
    else:
        raise ValueError("bad pcap magic 0x%08x" % magic)
    snaplen, linktype = struct.unpack(end + "II", data[16:24])
    records = []
    at = 24
    while at < len(data):
        if len(data) - at < 16:
            raise ValueError("truncated record header at offset %d" % at)
        ts_sec, ts_usec, incl, orig = struct.unpack(
            end + "IIII", data[at:at + 16])
        at += 16
        if incl > snaplen or incl > len(data) - at:
            raise ValueError("record body overruns capture at offset %d" % at)
        records.append((ts_sec, ts_usec, orig, data[at:at + incl]))
        at += incl
    return linktype, records


def ip_str(b):
    return ".".join(str(x) for x in b)


def parse_ipv4(frame):
    """Return (header dict, payload bytes) or None."""
    if len(frame) < 20 or frame[0] >> 4 != 4:
        return None
    ihl = (frame[0] & 0xF) * 4
    if ihl < 20 or len(frame) < ihl:
        return None
    total_len = struct.unpack(">H", frame[2:4])[0]
    if total_len < ihl or total_len > len(frame):
        return None
    return ({
        "proto": frame[9],
        "src": ip_str(frame[12:16]),
        "dst": ip_str(frame[16:20]),
        "total_len": total_len,
    }, frame[ihl:total_len])


def try_parse_fbs(payload):
    """Return a dict of FBS header fields + body, or None (not FBS)."""
    if len(payload) < FBS_FIXED_SIZE:
        return None
    flags, suite = payload[0], payload[1]
    if flags >> 4 != 1:        # version nibble
        return None
    if flags & 0x0E:           # reserved bits must be zero
        return None
    mac_alg, cipher_alg = suite >> 4, suite & 0xF
    if mac_alg not in MAC_NAMES or cipher_alg not in CIPHER_NAMES:
        return None
    mac_len = MAC_SIZES[mac_alg]
    if len(payload) < FBS_FIXED_SIZE + mac_len:
        return None
    sfl, confounder, ts_min = struct.unpack(">QII", payload[2:18])
    return {
        "flags": flags,
        "secret": bool(flags & 0x01),
        "mac_alg": mac_alg,
        "cipher_alg": cipher_alg,
        "sfl": sfl,
        "confounder": confounder,
        "timestamp_minutes": ts_min,
        "mac": payload[FBS_FIXED_SIZE:FBS_FIXED_SIZE + mac_len],
        "body": payload[FBS_FIXED_SIZE + mac_len:],
    }


def summarize_transport(proto, body):
    """One-line summary of a cleartext transport payload."""
    if proto == 17 and len(body) >= 8:
        sport, dport, length = struct.unpack(">HHH", body[:6])
        return "udp %d > %d len %d" % (sport, dport, length)
    if proto == 6 and len(body) >= 20:
        sport, dport = struct.unpack(">HH", body[:4])
        return "tcp %d > %d" % (sport, dport)
    if proto == 1 and len(body) >= 4:
        return "icmp type %d code %d" % (body[0], body[1])
    return "%s %d bytes" % (PROTO_NAMES.get(proto, "proto %d" % proto),
                            len(body))


def hexdump(data, indent="      "):
    lines = []
    for off in range(0, len(data), 16):
        chunk = data[off:off + 16]
        hexpart = " ".join("%02x" % b for b in chunk)
        lines.append("%s%04x  %s" % (indent, off, hexpart))
    return "\n".join(lines)


def dissect_record(index, ts_sec, ts_usec, orig_len, frame, show_hex):
    """Print one record; returns (is_fbs, is_secret)."""
    when = datetime.datetime.fromtimestamp(
        ts_sec, tz=datetime.timezone.utc) + datetime.timedelta(
            microseconds=ts_usec)
    parsed = parse_ipv4(frame)
    if parsed is None:
        print("#%d %s  [not IPv4] %d bytes" %
              (index, when.strftime("%Y-%m-%d %H:%M:%S.%f"), len(frame)))
        return False, False
    ip, payload = parsed
    proto_name = PROTO_NAMES.get(ip["proto"], "proto %d" % ip["proto"])
    print("#%d %s  %s > %s %s len %d" %
          (index, when.strftime("%Y-%m-%d %H:%M:%S.%f"), ip["src"],
           ip["dst"], proto_name, ip["total_len"]))

    fbs = try_parse_fbs(payload)
    if fbs is None:
        print("    %s" % summarize_transport(ip["proto"], payload))
        return False, False

    ts = FBS_EPOCH + datetime.timedelta(minutes=fbs["timestamp_minutes"])
    print("    fbs: ver 1%s suite 0x%02x (mac %s, cipher %s)" %
          (" secret" if fbs["secret"] else "",
           (fbs["mac_alg"] << 4) | fbs["cipher_alg"],
           MAC_NAMES[fbs["mac_alg"]], CIPHER_NAMES[fbs["cipher_alg"]]))
    print("    sfl 0x%016x confounder 0x%08x" %
          (fbs["sfl"], fbs["confounder"]))
    print("    timestamp %d min (%s)" %
          (fbs["timestamp_minutes"], ts.strftime("%Y-%m-%d %H:%MZ")))
    print("    mac %s" % fbs["mac"].hex())

    body = fbs["body"]
    if fbs["secret"]:
        print("    body %d bytes (encrypted)" % len(body))
    elif ip["proto"] == FBS_TUNNEL_PROTO:
        inner = parse_ipv4(body)
        if inner is None:
            print("    body %d bytes (tunnel, inner not IPv4)" % len(body))
        else:
            ih, ipayload = inner
            print("    tunnel inner: %s > %s %s; %s" %
                  (ih["src"], ih["dst"],
                   PROTO_NAMES.get(ih["proto"], "proto %d" % ih["proto"]),
                   summarize_transport(ih["proto"], ipayload)))
    else:
        print("    body: %s" % summarize_transport(ip["proto"], body))
    if show_hex:
        print(hexdump(payload))
    return True, fbs["secret"]


def main():
    ap = argparse.ArgumentParser(
        description="Decode FBS wire frames from a pcap capture.")
    ap.add_argument("capture", help="pcap file written by net::PcapWriter")
    ap.add_argument("--hex", action="store_true",
                    help="hex-dump each FBS datagram (IP payload)")
    ap.add_argument("--expect-fbs", type=int, metavar="N", default=None,
                    help="exit non-zero unless >= N FBS datagrams decoded")
    args = ap.parse_args()

    with open(args.capture, "rb") as f:
        data = f.read()
    try:
        linktype, records = parse_pcap(data)
    except ValueError as e:
        print("fbs_dissect: %s" % e, file=sys.stderr)
        return 2
    if linktype != 101:
        print("fbs_dissect: linktype %d is not RAW(101)" % linktype,
              file=sys.stderr)
        return 2

    fbs_count = secret_count = 0
    for i, (ts_sec, ts_usec, orig, frame) in enumerate(records, 1):
        is_fbs, is_secret = dissect_record(i, ts_sec, ts_usec, orig, frame,
                                           args.hex)
        fbs_count += is_fbs
        secret_count += is_secret

    plain = len(records) - fbs_count
    print("fbs_dissect: %d records, %d fbs (%d secret), %d plain" %
          (len(records), fbs_count, secret_count, plain))
    if args.expect_fbs is not None and fbs_count < args.expect_fbs:
        print("fbs_dissect: expected >= %d fbs datagrams, saw %d" %
              (args.expect_fbs, fbs_count), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
