#!/usr/bin/env sh
# One-stop verification: build + tier-1 tests + chaos soaks + metrics suite.
#
#   tools/check.sh             # RelWithDebInfo build, all suites
#   tools/check.sh --sanitize  # same suites under ASan+UBSan (FBS_SANITIZE=ON)
#   FBS_CHECK_JOBS=8 tools/check.sh   # override parallelism (default: nproc)
#
# Exit status is non-zero as soon as any step fails.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR=build
CONFIG_ARGS="-DCMAKE_BUILD_TYPE=RelWithDebInfo"
if [ "${1:-}" = "--sanitize" ]; then
  BUILD_DIR=build-sanitize
  CONFIG_ARGS="$CONFIG_ARGS -DFBS_SANITIZE=ON"
fi

JOBS="${FBS_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S . $CONFIG_ARGS

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1 tests (everything except the chaos soaks) =="
ctest --test-dir "$BUILD_DIR" -LE chaos -j "$JOBS" --output-on-failure

echo "== chaos soak suite =="
ctest --test-dir "$BUILD_DIR" -L chaos -j "$JOBS" --output-on-failure

echo "== metrics / observability suite =="
ctest --test-dir "$BUILD_DIR" -L metrics -j "$JOBS" --output-on-failure

echo "All checks passed."
