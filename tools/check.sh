#!/usr/bin/env sh
# One-stop verification: build + tier-1 tests + chaos soaks + metrics suite.
#
#   tools/check.sh             # RelWithDebInfo build, all suites
#   tools/check.sh --sanitize  # same suites under ASan+UBSan (FBS_SANITIZE=ON)
#   tools/check.sh --bench-smoke  # Release build, run the crypto + fig8 +
#                                 # parallel benches' self-timed passes and
#                                 # diff their gauges against the
#                                 # BENCH_seed.json baseline (regressions
#                                 # exit non-zero)
#   tools/check.sh --fuzz-smoke   # ASan+UBSan build, replay the regression
#                                 # corpus and run every deterministic fuzz
#                                 # driver with a raised iteration budget
#   tools/check.sh --tsan-smoke   # ThreadSanitizer build, run the
#                                 # multi-threaded stress suite (ctest -L
#                                 # tsan) against the sharded engine and
#                                 # the receive pipeline
#   tools/check.sh --mesh-smoke   # ASan+UBSan build, run the transit-mesh
#                                 # suites (ctest -L mesh): router/queue
#                                 # unit tests plus the routed-topology
#                                 # survival scenarios (congestion, rekey
#                                 # failover, rebinding, 30-node soaks)
#   tools/check.sh --udp-smoke    # build the real-socket backend, run the
#                                 # cross-process loopback interop (ctest -L
#                                 # udp: two OS processes, FBS handshake +
#                                 # protected datagrams + replay injection
#                                 # over 127.0.0.1, pcaps decoded by
#                                 # tools/fbs_dissect.py), then the
#                                 # fig8_udp_loopback bench (gauges to
#                                 # metrics JSON; not baseline-gated)
#   tools/check.sh --megaflow-smoke  # ASan+UBSan build, run the million-flow
#                                 # control-plane suites (ctest -L megaflow:
#                                 # flat map, timer wheel, megaflow policy,
#                                 # internet trace), then the megaflow bench
#                                 # at 64k flows with its steady-state /
#                                 # expiry / memory-ceiling gates asserted
#   FBS_CHECK_JOBS=8 tools/check.sh   # override parallelism (default: nproc)
#
# Exit status is non-zero as soon as any step fails.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR=build
CONFIG_ARGS="-DCMAKE_BUILD_TYPE=RelWithDebInfo"
if [ "${1:-}" = "--sanitize" ]; then
  BUILD_DIR=build-sanitize
  CONFIG_ARGS="$CONFIG_ARGS -DFBS_SANITIZE=ON"
fi

JOBS="${FBS_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

if [ "${1:-}" = "--bench-smoke" ]; then
  # Benches must be measured at full optimization; this matches the
  # "release" CMake preset. The google-benchmark loops are skipped (filter
  # matches nothing) -- the machine-readable gauges come from each bench's
  # self-timed emit_metrics pass, which is the part the baseline pins.
  BUILD_DIR=build-release
  echo "== configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  echo "== build benches =="
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target fbs_bench_crypto fbs_bench_fig8_throughput \
             fbs_bench_parallel_throughput
  OUT_DIR="$BUILD_DIR/bench-smoke"
  mkdir -p "$OUT_DIR"
  echo "== bench_crypto =="
  FBS_METRICS_OUT="$OUT_DIR/fbs_bench_crypto.json" \
    "$BUILD_DIR/bench/fbs_bench_crypto" --benchmark_filter='$^'
  echo "== bench_fig8_throughput =="
  FBS_METRICS_OUT="$OUT_DIR/fbs_bench_fig8_throughput.json" \
    "$BUILD_DIR/bench/fbs_bench_fig8_throughput" --benchmark_filter='$^'
  echo "== bench_parallel_throughput =="
  FBS_METRICS_OUT="$OUT_DIR/fbs_bench_parallel_throughput.json" \
    "$BUILD_DIR/bench/fbs_bench_parallel_throughput"
  echo "== combine snapshots =="
  python3 - "$OUT_DIR" <<'EOF'
import json, sys, os
out_dir = sys.argv[1]
combined = {}
for name in ("fbs_bench_crypto", "fbs_bench_fig8_throughput",
             "fbs_bench_parallel_throughput"):
    with open(os.path.join(out_dir, name + ".json")) as f:
        combined[name] = json.load(f)
with open(os.path.join(out_dir, "current.json"), "w") as f:
    json.dump(combined, f, indent=1)
EOF
  echo "== compare against BENCH_seed.json =="
  # Besides the relative diff, assert the absolute acceptance gates: crit
  # speedup @4 workers and the hardware-aware wall gate (wall speedup @8
  # normalized by what this host's core count makes achievable; see
  # bench_parallel_throughput.cpp), plus the bitsliced DES gate -- the
  # 64-datagram mixed-key CBC decrypt burst must hold >= 3x the scalar
  # core's throughput, measured adjacently in-process by bench_crypto
  # (min over interleaved wall/CPU-clock reps; see emit_metrics there).
  python3 tools/bench_compare.py BENCH_seed.json "$OUT_DIR/current.json" --all \
    --require "fbs_bench_parallel_throughput:parallel.speedup4=3.0" \
    --require "fbs_bench_parallel_throughput:parallel.wall_gate=1.0" \
    --require "fbs_bench_crypto:crypto.des_bitslice_speedup=3.0"
  echo "Bench smoke passed."
  exit 0
fi

if [ "${1:-}" = "--tsan-smoke" ]; then
  # Data-race detection for the shard-per-core datagram path, including the
  # batched ring transfers (push_wait_batch/pop_batch producers), the
  # grouped submit_batch ingress and the stop-vs-submit shutdown races.
  # FBS_TSAN is mutually exclusive with FBS_SANITIZE, so this runs in its
  # own tree.
  BUILD_DIR=build-tsan
  echo "== configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFBS_TSAN=ON
  echo "== build concurrency stress =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_concurrency
  echo "== tsan stress suite =="
  ctest --test-dir "$BUILD_DIR" -L tsan -j "$JOBS" --output-on-failure
  echo "TSan smoke passed."
  exit 0
fi

if [ "${1:-}" = "--mesh-smoke" ]; then
  # Transit-mesh robustness gate (see DESIGN.md section 5g): the queue
  # discipline + router unit tests plus the routed-topology survival
  # scenarios, under ASan+UBSan so queue-wipe and crash-restart paths get
  # lifetime checking too.
  BUILD_DIR=build-sanitize
  echo "== configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFBS_SANITIZE=ON
  echo "== build mesh suites =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_net test_mesh_scenarios
  echo "== mesh suites (ctest -L mesh) =="
  ctest --test-dir "$BUILD_DIR" -L mesh -j "$JOBS" --output-on-failure
  echo "Mesh smoke passed."
  exit 0
fi

if [ "${1:-}" = "--megaflow-smoke" ]; then
  # Million-flow control plane gate (DESIGN.md 5i): the budgeted flat-hash +
  # timer-wheel suites under ASan+UBSan, then the megaflow bench scaled down
  # to 64k flows -- still enough to exercise budget eviction, the flash
  # crowd and the DDoS window -- with its hard gates (zero steady-state heap
  # growth, O(expired) sweeps, per-shard memory ceiling) asserted in-process.
  BUILD_DIR=build-sanitize
  echo "== configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFBS_SANITIZE=ON
  echo "== build megaflow suites + bench =="
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target test_megaflow_structures test_megaflow_policy \
             test_internet_trace fbs_bench_megaflow
  echo "== megaflow suites (ctest -L megaflow) =="
  ctest --test-dir "$BUILD_DIR" -L megaflow -j "$JOBS" --output-on-failure
  echo "== megaflow bench @ 64k flows (gates asserted) =="
  FBS_MEGAFLOW_FLOWS=65536 FBS_MEGAFLOW_ASSERT=1 \
    "$BUILD_DIR/bench/fbs_bench_megaflow"
  echo "Megaflow smoke passed."
  exit 0
fi

if [ "${1:-}" = "--udp-smoke" ]; then
  # Real-socket gate: the UdpTransport backend driven end to end. The
  # interop test forks the example pair, completes an FBS handshake and
  # MAC-verified protected traffic between two OS processes over loopback,
  # injects replays, and round-trips both pcap captures through the
  # dissector. The bench then measures the same workload in-process;
  # loopback throughput is host-kernel dependent, so its gauges are
  # recorded, not compared against BENCH_seed.json.
  echo "== configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . $CONFIG_ARGS
  echo "== build udp backend + interop harness =="
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target test_net udp_loopback_responder udp_loopback_initiator \
             test_udp_interop fbs_bench_fig8_udp_loopback
  echo "== udp transport unit tests =="
  "$BUILD_DIR/tests/test_net" \
    --gtest_filter='UdpTransport*:Pcap*:TransportTotals*:TransportMetrics*'
  "$BUILD_DIR/tests/test_util" --gtest_filter='SteadyClock*'
  echo "== cross-process loopback interop (ctest -L udp) =="
  ctest --test-dir "$BUILD_DIR" -L udp -j "$JOBS" --output-on-failure
  echo "== fig8_udp_loopback bench =="
  FBS_METRICS_OUT="$BUILD_DIR/fig8_udp_loopback.metrics.json" \
    "$BUILD_DIR/bench/fbs_bench_fig8_udp_loopback"
  echo "UDP smoke passed."
  exit 0
fi

if [ "${1:-}" = "--fuzz-smoke" ]; then
  # The deterministic drivers are the stock-toolchain stand-in for libFuzzer
  # (see DESIGN.md section 5e): replay the checked-in corpus, then mutate
  # from the structure-aware seeds under the sanitizers, with a budget well
  # above the tier-1 default so the smoke actually explores.
  BUILD_DIR=build-sanitize
  echo "== configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFBS_SANITIZE=ON
  echo "== build fuzz harness =="
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_fuzz_harness
  echo "== fuzz drivers (FBS_FUZZ_ITERS=${FBS_FUZZ_ITERS:-20000}) =="
  FBS_FUZZ_ITERS="${FBS_FUZZ_ITERS:-20000}" \
    ctest --test-dir "$BUILD_DIR" -L fuzz -j "$JOBS" --output-on-failure
  echo "Fuzz smoke passed."
  exit 0
fi

echo "== configure ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S . $CONFIG_ARGS

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1 tests (everything except the chaos soaks) =="
ctest --test-dir "$BUILD_DIR" -LE chaos -j "$JOBS" --output-on-failure

echo "== chaos soak suite =="
ctest --test-dir "$BUILD_DIR" -L chaos -j "$JOBS" --output-on-failure

echo "== metrics / observability suite =="
ctest --test-dir "$BUILD_DIR" -L metrics -j "$JOBS" --output-on-failure

echo "All checks passed."
