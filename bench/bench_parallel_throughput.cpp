// Parallel receive throughput: the shard-per-core scaling story.
//
// The paper's kernel implementation is single-threaded by construction; the
// sharded engine removes that ceiling. This bench drives the Figure 8
// DES+MD5 workload (1408-byte UDP payloads) through the DatagramPipeline at
// 1, 2, 4 and 8 workers -- fed by four submitter threads in submit_batch()
// bursts racing a concurrently draining main thread, the shape a real
// multi-queue NIC presents -- and reports two aggregates:
//
//   wall kbps  -- total bytes / wall time, with the feed and the drain
//                 overlapping the workers. This is the number a deployment
//                 sees; it can only scale as far as the host has cores.
//   crit kbps  -- total bytes / max per-worker thread-CPU busy time: the
//                 critical-path aggregate. The per-worker busy clocks are
//                 CPU-time clocks (DatagramPipeline::busy_clock() says
//                 which), so this measures how evenly the flow hash spreads
//                 the cryptographic work across workers and is stable even
//                 when the host has a single core (the workers then
//                 time-slice, but each one's CPU time still sums only its
//                 own datagrams).
//
// Acceptance gates (both enforced by the exit status and re-checked from
// BENCH_seed.json by tools/check.sh --bench-smoke via bench_compare.py):
//
//   crit speedup @4 workers >= 3.0x  -- the sharding story, hardware-blind.
//   wall gate >= 1.0                 -- wall speedup @8 workers divided by
//      a hardware-aware target, clamp(0.35 * hw_concurrency, 0.85, 3.0).
//      On an 8-core box the target is ~2.8x real wall scaling; on a 1-core
//      CI container it degrades to "batching must hold wall throughput
//      within 15% of the 1-worker figure" -- un-serialized coordination,
//      not magic parallelism the silicon cannot provide.
//
// The single-flow run is the negative control: one flow lives on one
// shard, one worker owns it, and no speedup is possible -- per-flow
// ordering is the constraint the pipeline preserves.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "fbs/pipeline.hpp"
#include "support/harness.hpp"
#include "support/metrics_io.hpp"

namespace {

using namespace fbs;
using bench::StackConfig;
using bench::TwoHostWorld;

constexpr std::size_t kPayloadBytes = 1408;
constexpr std::size_t kShards = 8;
constexpr std::size_t kFlowsPerShard = 2;
constexpr int kDatagramsPerFlow = 400;
constexpr std::size_t kFeeders = 4;    // submitter threads per run
constexpr std::size_t kChunk = 32;     // wires claimed per feeder grab

core::Datagram datagram(const core::Principal& src,
                        const core::Principal& dst, util::Bytes body,
                        std::uint16_t sport) {
  core::Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 9000;
  d.body = std::move(body);
  return d;
}

struct Workload {
  std::vector<util::Bytes> wires;  // round-robin across flows
  std::size_t flows = 0;
};

struct RunResult {
  double wall_kbps = 0;
  double crit_kbps = 0;
  std::uint64_t accepted = 0;
};

/// Feed the whole workload through kFeeders submit_batch threads while this
/// thread drains concurrently; report both aggregates.
RunResult run_workload(core::FbsEndpoint& receiver,
                       const core::Principal& sender,
                       const Workload& load, std::size_t workers) {
  core::PipelineConfig pc;
  pc.workers = workers;
  pc.ingress_capacity = load.wires.size() + 1;  // no backpressure drops
  core::DatagramPipeline pipe(receiver, pc);

  net::Ipv4Header h;
  h.protocol = 17;
  h.source = sender.ipv4();

  std::atomic<std::size_t> cursor{0};
  std::atomic<int> feeding{static_cast<int>(kFeeders)};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> feeders;
  feeders.reserve(kFeeders);
  for (std::size_t f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&] {
      std::vector<util::Bytes> burst;
      burst.reserve(kChunk);
      for (;;) {
        const std::size_t at =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (at >= load.wires.size()) break;
        const std::size_t n = std::min(kChunk, load.wires.size() - at);
        burst.clear();
        // Copy: the workload is reused across runs; the copies are what
        // submit_batch consumes.
        for (std::size_t i = 0; i < n; ++i)
          burst.push_back(load.wires[at + i]);
        pipe.submit_batch(h, {burst.data(), n});
      }
      feeding.fetch_sub(1, std::memory_order_release);
    });
  }

  // Drain concurrently with the feed so the egress ring never becomes the
  // bottleneck being measured.
  std::uint64_t delivered = 0;
  const core::DatagramPipeline::Sink sink =
      [&](const net::Ipv4Header&, util::Bytes) { ++delivered; };
  while (feeding.load(std::memory_order_acquire) > 0 ||
         pipe.in_flight() > 0) {
    if (pipe.drain(sink) == 0) std::this_thread::yield();
  }
  pipe.drain(sink);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  for (auto& t : feeders) t.join();

  std::uint64_t max_busy_ns = 0;
  for (std::size_t w = 0; w < pipe.worker_count(); ++w)
    max_busy_ns = std::max(max_busy_ns, pipe.worker_busy_ns(w));

  RunResult r;
  r.accepted = pipe.stats().accepted.load();
  const double bits =
      static_cast<double>(r.accepted) * kPayloadBytes * 8.0;
  r.wall_kbps = bits / 1000.0 / wall.count();
  r.crit_kbps = bits / 1000.0 / (static_cast<double>(max_busy_ns) / 1e9);
  if (r.accepted != load.wires.size() || delivered != r.accepted ||
      pipe.stats().backpressure_drops.load() != 0)
    std::fprintf(stderr, "WARNING: %llu of %zu datagrams accepted\n",
                 static_cast<unsigned long long>(r.accepted),
                 load.wires.size());
  return r;
}

}  // namespace

int main() {
  TwoHostWorld world(StackConfig::kGeneric);  // keys only; no stacks needed
  const core::Principal a = core::Principal::from_ipv4(world.a().address);
  const core::Principal b = core::Principal::from_ipv4(world.b().address);

  core::FbsEndpoint sender(a, core::FbsConfig{}, *world.a().keys,
                           world.clock(), world.rng_public());
  core::FbsConfig recv_config;
  recv_config.shards = kShards;
  core::FbsEndpoint receiver(b, recv_config, *world.b().keys, world.clock(),
                             world.rng_public());

  // Pick flows (source ports) until every receive shard owns exactly
  // kFlowsPerShard of them, so the ideal work split across workers is even
  // and the crit aggregate measures the pipeline, not hash luck.
  std::map<std::size_t, std::vector<std::uint16_t>> shard_flows;
  util::Bytes probe_payload = util::SplitMix64(7).next_bytes(kPayloadBytes);
  std::size_t covered = 0;
  for (std::uint16_t port = 1; covered < kShards * kFlowsPerShard; ++port) {
    const auto wire =
        sender.protect(datagram(a, b, probe_payload, port), true);
    if (!wire) {
      std::fprintf(stderr, "key unavailable\n");
      return 1;
    }
    const std::size_t shard = receiver.recv_shard_of_wire(a, *wire);
    auto& flows = shard_flows[shard];
    if (flows.size() >= kFlowsPerShard) continue;
    flows.push_back(port);
    ++covered;
  }

  // Pre-protect the whole many-flow workload (sender cost is off the
  // clock: this bench measures the receive pipeline), interleaving flows
  // round-robin like a busy receiver's arrival order.
  Workload many;
  many.flows = kShards * kFlowsPerShard;
  util::SplitMix64 payload_rng(11);
  std::vector<std::uint16_t> ports;
  for (const auto& [shard, flows] : shard_flows)
    ports.insert(ports.end(), flows.begin(), flows.end());
  for (int i = 0; i < kDatagramsPerFlow; ++i)
    for (const std::uint16_t port : ports)
      many.wires.push_back(*sender.protect(
          datagram(a, b, payload_rng.next_bytes(kPayloadBytes), port), true));

  Workload single;
  single.flows = 1;
  for (int i = 0; i < kDatagramsPerFlow * 4; ++i)
    single.wires.push_back(*sender.protect(
        datagram(a, b, payload_rng.next_bytes(kPayloadBytes), ports[0]),
        true));

  obs::MetricsRegistry reg;
  std::printf("Parallel receive throughput, Figure 8 DES+MD5 workload\n");
  std::printf("(%zu flows over %zu shards, %zu datagrams x %zu bytes, "
              "%zu feeder threads, busy clock: %.*s)\n\n",
              many.flows, kShards, many.wires.size(), kPayloadBytes,
              kFeeders,
              static_cast<int>(core::DatagramPipeline::busy_clock().size()),
              core::DatagramPipeline::busy_clock().data());
  std::printf("%8s %14s %14s %12s %12s\n", "workers", "wall kbps",
              "crit kbps", "wall spdup", "crit spdup");

  run_workload(receiver, a, many, 1);  // warm every shard's caches

  double crit1 = 0, wall1 = 0;
  std::map<std::size_t, double> crit, wallk;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const RunResult r = run_workload(receiver, a, many, workers);
    crit[workers] = r.crit_kbps;
    wallk[workers] = r.wall_kbps;
    if (workers == 1) {
      crit1 = r.crit_kbps;
      wall1 = r.wall_kbps;
    }
    std::printf("%8zu %14.0f %14.0f %11.2fx %11.2fx\n", workers,
                r.wall_kbps, r.crit_kbps, r.wall_kbps / wall1,
                r.crit_kbps / crit1);
    reg.gauge("parallel.crit_kbps.workers" + std::to_string(workers))
        .set(r.crit_kbps);
    reg.gauge("parallel.wall_kbps.workers" + std::to_string(workers))
        .set(r.wall_kbps);
  }
  const double speedup4 = crit[4] / crit1;
  reg.gauge("parallel.speedup4").set(speedup4);
  reg.gauge("parallel.speedup8").set(crit[8] / crit1);

  // The wall gate: what wall scaling at 8 workers is worth demanding on
  // THIS machine. A fraction of hw_concurrency (coordination, the feeders
  // and the drain all take cycles too), floored at 0.85 (a 1-core host can
  // only demand that batching not make things worse) and capped at 3.0.
  const double wall_speedup8 = wallk[8] / wall1;
  const double hw = static_cast<double>(
      std::max(1u, std::thread::hardware_concurrency()));
  const double wall_target = std::clamp(0.35 * hw, 0.85, 3.0);
  const double wall_gate = wall_speedup8 / wall_target;
  reg.gauge("parallel.wall_speedup8").set(wall_speedup8);
  reg.gauge("parallel.wall_speedup_target").set(wall_target);
  reg.gauge("parallel.wall_gate").set(wall_gate);

  // Negative control: one flow cannot scale (per-flow ordering pins it to
  // one worker); its 4-worker "speedup" should hover around 1.
  const RunResult s1 = run_workload(receiver, a, single, 1);
  const RunResult s4 = run_workload(receiver, a, single, 4);
  const double single_speedup = s4.crit_kbps / s1.crit_kbps;
  std::printf("\nsingle-flow negative control: 1 worker %.0f kbps, "
              "4 workers %.0f kbps (speedup %.2fx, expected ~1)\n",
              s1.crit_kbps, s4.crit_kbps, single_speedup);
  reg.gauge("parallel.single_flow_speedup4").set(single_speedup);

  std::printf("\nacceptance: crit speedup @4 workers = %.2fx "
              "(target >= 3.0x) -- %s\n", speedup4,
              speedup4 >= 3.0 ? "PASS" : "FAIL");
  std::printf("acceptance: wall speedup @8 workers = %.2fx, "
              "hw-aware target %.2fx (hw_concurrency %.0f), gate = %.2f "
              "(>= 1.0) -- %s\n", wall_speedup8, wall_target, hw, wall_gate,
              wall_gate >= 1.0 ? "PASS" : "FAIL");

  bench::write_metrics(reg.snapshot(), "fbs_bench_parallel_throughput");
  return (speedup4 >= 3.0 && wall_gate >= 1.0) ? 0 : 1;
}
