// Figure 10: flow duration distribution under the Section 7.1 policy.
// Paper observation: most flows are short (seconds), arguing for keeping
// datagram semantics rather than paying connection setup; a minority of
// long-lived flows (NFS-style) benefit from the per-flow key amortization.
#include <cstdio>

#include "support/figures.hpp"
#include "support/metrics_io.hpp"
#include "util/histogram.hpp"

using namespace fbs;

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header(
      "Figure 10: flow duration distribution (five-tuple policy, "
      "THRESHOLD=600s)",
      t);

  trace::FlowSimConfig cfg;
  cfg.threshold = util::seconds(600);
  const trace::FlowSimResult r = trace::simulate_flows(t, cfg);

  util::LogHistogram duration_s(2.0);
  std::size_t sub_second = 0, over_minute = 0;
  for (const auto& f : r.flows) {
    const double seconds =
        static_cast<double>(f.duration()) / util::kMicrosPerSecond;
    duration_s.add(seconds);
    if (seconds < 1.0) ++sub_second;
    if (seconds > 60.0) ++over_minute;
  }

  std::printf("total flows: %zu\n\n", r.flows.size());
  std::printf("%s\n", duration_s.render("duration (s)").c_str());
  std::printf("median duration: %.1f s,  p90: %.1f s,  max: %.1f s\n",
              duration_s.quantile(0.5), duration_s.quantile(0.9),
              duration_s.max());
  std::printf(
      "%.0f%% of flows last under a second; %.0f%% last over a minute "
      "(paper: majority of flows are short, a few are long-lived)\n",
      100.0 * static_cast<double>(sub_second) /
          static_cast<double>(r.flows.size()),
      100.0 * static_cast<double>(over_minute) /
          static_cast<double>(r.flows.size()));

  obs::MetricsRegistry reg;
  reg.counter("fig10.flows").add(r.flows.size());
  reg.counter("fig10.sub_second_flows").add(sub_second);
  reg.counter("fig10.over_minute_flows").add(over_minute);
  reg.gauge("fig10.median_duration_s").set(duration_s.quantile(0.5));
  reg.gauge("fig10.p90_duration_s").set(duration_s.quantile(0.9));
  reg.gauge("fig10.max_duration_s").set(duration_s.max());
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig10_flow_duration");
  return 0;
}
