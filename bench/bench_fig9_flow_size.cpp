// Figure 9(a)/(b): flow size distributions -- packets per flow and bytes per
// flow under the Section 7.1 policy (THRESHOLD = 600 s). The paper's
// observation: "the majority of flows are short, consist of few packets and
// transfer only a small amount of data", with a few long-lived flows (NFS)
// carrying the bulk of the traffic.
#include <algorithm>
#include <cstdio>

#include "support/figures.hpp"
#include "support/metrics_io.hpp"
#include "util/histogram.hpp"

using namespace fbs;

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header(
      "Figure 9: flow size distributions (five-tuple policy, THRESHOLD=600s)",
      t);

  trace::FlowSimConfig cfg;
  cfg.threshold = util::seconds(600);
  const trace::FlowSimResult r = trace::simulate_flows(t, cfg);

  util::LogHistogram packets(2.0), bytes(4.0);
  for (const auto& f : r.flows) {
    packets.add(static_cast<double>(f.packets));
    bytes.add(static_cast<double>(f.bytes));
  }

  std::printf("total flows: %zu\n\n", r.flows.size());
  std::printf("--- Figure 9(a): packets per flow ---\n%s\n",
              packets.render("packets/flow").c_str());
  std::printf("--- Figure 9(b): bytes per flow ---\n%s\n",
              bytes.render("bytes/flow").c_str());

  // Paper-shape checks.
  const double median_packets = packets.quantile(0.5);
  std::printf("median packets/flow: %.0f (paper: majority of flows small)\n",
              median_packets);

  // Share of bytes carried by the top 10%% of flows by size.
  std::vector<std::uint64_t> flow_bytes;
  flow_bytes.reserve(r.flows.size());
  for (const auto& f : r.flows) flow_bytes.push_back(f.bytes);
  std::sort(flow_bytes.rbegin(), flow_bytes.rend());
  std::uint64_t top = 0;
  const std::size_t top_n = std::max<std::size_t>(1, flow_bytes.size() / 10);
  for (std::size_t i = 0; i < top_n; ++i) top += flow_bytes[i];
  std::printf(
      "top 10%% of flows carry %.1f%% of bytes (paper: a few long-lived "
      "flows carry the bulk of the traffic)\n",
      100.0 * static_cast<double>(top) / static_cast<double>(r.total_bytes));

  // Per-workload breakdown (the paper analyzed the LAN sniff and the WWW
  // server trace separately).
  std::printf("\n--- per-workload breakdown ---\n");
  std::printf("%-12s %10s %14s %16s %14s\n", "workload", "flows",
              "median pkts", "median bytes", "p99 pkts");
  for (const auto& [name, workload] :
       {std::pair<const char*, trace::Trace>{"LAN",
                                             bench::lan_only_trace()},
        std::pair<const char*, trace::Trace>{"WWW",
                                             bench::www_only_trace()}}) {
    const auto wr = trace::simulate_flows(workload, cfg);
    util::LogHistogram p(2.0), b(4.0);
    for (const auto& f : wr.flows) {
      p.add(static_cast<double>(f.packets));
      b.add(static_cast<double>(f.bytes));
    }
    std::printf("%-12s %10zu %14.0f %16.0f %14.0f\n", name, wr.flows.size(),
                p.quantile(0.5), b.quantile(0.5), p.quantile(0.99));
  }

  obs::MetricsRegistry reg;
  reg.counter("fig9.flows").add(r.flows.size());
  reg.counter("fig9.total_bytes").add(r.total_bytes);
  reg.gauge("fig9.median_packets_per_flow").set(median_packets);
  reg.gauge("fig9.p99_packets_per_flow").set(packets.quantile(0.99));
  reg.gauge("fig9.median_bytes_per_flow").set(bytes.quantile(0.5));
  reg.gauge("fig9.top10pct_bytes_share")
      .set(static_cast<double>(top) / static_cast<double>(r.total_bytes));
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig9_flow_size");
  return 0;
}
