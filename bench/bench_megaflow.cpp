// Million-flow control plane under an internet-scale trace (ROADMAP item 2,
// DESIGN.md 5i): the budgeted flat-hash + timer-wheel FAM policy sustaining
// FBS_MEGAFLOW_FLOWS (default 1M) concurrent flows across 8 shards under a
// fixed per-shard memory budget, with the fig11-14 analyses regenerated at
// that scale.
//
// The bench feeds the streaming internet trace straight into the FAM
// policies (flow association is the subject here; datagram crypto would
// only obscure the control-plane costs). Phases:
//   ramp   [0, threshold):        table fills toward the target
//   steady [threshold, duration): heap growth must be ZERO (rehashes and
//                                 slab growth asserted flat), with a flash
//                                 crowd and a spoofed-source DDoS window
//                                 exercising eviction pressure
//
// Gates (also emitted as gauges; FBS_MEGAFLOW_ASSERT=1 makes them fatal):
//   megaflow.steady_state_gate  -- zero heap-fallback growth in steady state
//   megaflow.expiry_gate        -- wheel sweeps cost O(expired): total
//                                  touches at least 8x below what
//                                  scan-the-table sweepers would have paid
//   memory ceiling              -- resident bytes within the fixed budget
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fbs/megaflow.hpp"
#include "obs/metrics.hpp"
#include "support/metrics_io.hpp"
#include "trace/internet.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name))
    if (*v) return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  return fallback;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v && *v && *v != '0';
}

struct Shards {
  std::vector<std::unique_ptr<core::MegaflowPolicy>> policies;

  core::MegaflowPolicy& of(const core::FlowAttributes& tuple) {
    return *policies[core::FlowAttrsHash{}(tuple) % policies.size()];
  }
  std::size_t live() const {
    std::size_t n = 0;
    for (const auto& p : policies) n += p->live_flows();
    return n;
  }
  core::MegaflowStats total() const {
    core::MegaflowStats t;
    for (const auto& p : policies) {
      const core::MegaflowStats* m = p->mega_stats();
      t.budget_evictions += m->budget_evictions;
      t.wheel_cascades += m->wheel_cascades;
      t.wheel_fires += m->wheel_fires;
      t.sweep_touched += m->sweep_touched;
      t.map_rehashes += m->map_rehashes;
      t.slab_grows += m->slab_grows;
      t.live_flows += m->live_flows;
      t.peak_live_flows += m->peak_live_flows;
      if (m->map_load_factor > t.map_load_factor)
        t.map_load_factor = m->map_load_factor;
      t.resident_bytes += m->resident_bytes;
    }
    return t;
  }
};

}  // namespace

int main() {
  const std::size_t target = env_size("FBS_MEGAFLOW_FLOWS", 1u << 20);
  const bool hard_assert = env_flag("FBS_MEGAFLOW_ASSERT");
  const std::size_t kShards = 8;
  const util::TimeUs threshold = util::seconds(600);
  // Shard budget: even split plus 15% headroom for flow-hash imbalance.
  const std::size_t budget = target / kShards + target / kShards / 7 + 16;

  trace::InternetWorkloadConfig wl;
  wl.seed = 1997;
  wl.duration = util::seconds(720);
  // Arrival rate chosen so ~target distinct flows are inside THRESHOLD
  // once the ramp completes (15% overshoot absorbs five-tuple repeats).
  wl.flows_per_second =
      static_cast<double>(target) / 600.0 * 1.15;
  wl.clients = static_cast<std::uint32_t>(target);
  wl.servers = static_cast<std::uint32_t>(target / 8 + 1);
  wl.flash_start = util::seconds(620);
  wl.flash_length = util::seconds(30);
  wl.flash_multiplier = 3.0;
  wl.ddos_start = util::seconds(660);
  wl.ddos_length = util::seconds(30);
  wl.ddos_flows_per_second = static_cast<double>(target) / 300.0;

  std::printf(
      "megaflow: target %zu concurrent flows, %zu shards x budget %zu, "
      "THRESHOLD %llds\n",
      target, kShards, budget,
      static_cast<long long>(threshold / util::kMicrosPerSecond));

  util::SplitMix64 rng(42);
  core::SflAllocator sfls(rng);
  Shards shards;
  for (std::size_t i = 0; i < kShards; ++i)
    shards.policies.push_back(std::make_unique<core::MegaflowPolicy>(
        budget, threshold, sfls));

  // fig13 at scale: the same stream through two more thresholds (single
  // unsharded policies -- threshold response, not peak throughput).
  const std::vector<util::TimeUs> alt_thresholds = {util::seconds(60),
                                                    util::seconds(1800)};
  std::vector<std::unique_ptr<core::MegaflowPolicy>> fig13;
  for (util::TimeUs th : alt_thresholds)
    fig13.push_back(std::make_unique<core::MegaflowPolicy>(
        target + target / 4, th, sfls));

  // fig14 at scale: five-tuple recurrence by 64-bit fingerprint.
  util::FlatMap<std::uint64_t, std::uint32_t> tuple_seen;
  tuple_seen.reserve(target * 2);
  std::uint64_t flow_starts = 0, repeat_starts = 0;

  // fig11 at scale: flow-key cache replay at three sizes over a bounded
  // prefix (the classifier's bounded stack keeps this O(1) per packet, but
  // 14M packets x 3 caches is still pointless past a few million).
  const std::vector<std::size_t> fig11_sizes = {64, 512, 4096};
  std::vector<core::SetAssociativeCache<char>> fig11_caches;
  for (std::size_t s : fig11_sizes) fig11_caches.emplace_back(s);
  const std::uint64_t fig11_packet_cap = 4u << 20;
  util::Bytes fig11_key;

  trace::InternetTraceGenerator gen(wl);
  trace::PacketRecord pkt;
  core::Datagram d;

  const util::TimeUs sweep_period = util::seconds(10);
  const util::TimeUs steady_at = threshold;  // table full past one THRESHOLD
  util::TimeUs next_sweep = sweep_period;
  std::uint64_t packets = 0, sweeps = 0, total_expired = 0;
  std::size_t peak_live = 0;

  // Steady-state baselines, captured when the ramp ends.
  bool steady_started = false;
  std::uint64_t steady_rehashes = 0, steady_slab_grows = 0;
  std::size_t steady_resident = 0;

  // fig12 at scale: live-flow time series, one sample per simulated minute.
  std::printf("\n--- fig12 at scale: live flows vs time ---\n");
  util::TimeUs next_sample = util::seconds(60);

  while (gen.next(pkt)) {
    ++packets;
    while (pkt.time >= next_sweep) {
      for (auto& p : shards.policies) total_expired += p->sweep(next_sweep);
      for (auto& p : fig13) p->sweep(next_sweep);
      ++sweeps;
      next_sweep += sweep_period;
    }
    if (!steady_started && pkt.time >= steady_at) {
      const core::MegaflowStats t = shards.total();
      steady_rehashes = t.map_rehashes;
      steady_slab_grows = t.slab_grows;
      steady_resident = t.resident_bytes;
      steady_started = true;
    }
    if (pkt.time >= next_sample) {
      std::printf("  t=%4llds  live=%zu\n",
                  static_cast<long long>(pkt.time / util::kMicrosPerSecond),
                  shards.live());
      next_sample += util::seconds(60);
    }

    d.attrs = pkt.tuple;
    const core::MapResult r = shards.of(pkt.tuple).map(d, pkt.time);
    for (auto& p : fig13) p->map(d, pkt.time);

    if (r.new_flow) {
      ++flow_starts;
      const std::uint64_t fp = core::FlowAttrsHash{}(pkt.tuple);
      auto [count, inserted] = tuple_seen.try_emplace(fp, 0);
      if (!inserted) ++repeat_starts;
      ++*count;
    }
    if (packets <= fig11_packet_cap) {
      pkt.tuple.encode_into(fig11_key);
      for (auto& c : fig11_caches)
        if (!c.lookup(fig11_key)) c.insert(fig11_key, 1);
    }
    const std::size_t live = shards.live();
    if (live > peak_live) peak_live = live;
  }

  const core::MegaflowStats t = shards.total();
  const std::uint64_t steady_rehash_delta =
      (t.map_rehashes - steady_rehashes) + (t.slab_grows - steady_slab_grows);
  const bool steady_ok = steady_started && steady_rehash_delta == 0 &&
                         t.resident_bytes == steady_resident;
  // O(expired) gate: a scan-based sweeper pays budget slots per shard per
  // sweep; the wheel must come in at least 8x under that.
  const std::uint64_t scan_cost = sweeps * kShards * budget;
  const bool expiry_ok = t.sweep_touched * 8 < scan_cost;
  // Fixed ceiling: per-flow structural cost (slab entry + map slot + wheel
  // node + free-list id) across the reserved budget, plus 25% slack for
  // power-of-two map rounding.
  const std::size_t ceiling =
      kShards * budget * (sizeof(core::FlowStateEntry) + 48 + 24 + 4) * 2;
  const bool memory_ok = t.resident_bytes <= ceiling;

  std::printf("\n--- megaflow control plane ---\n");
  std::printf("packets           %llu\n",
              static_cast<unsigned long long>(packets));
  std::printf("flow starts       %llu (%.1f%% repeated five-tuples, fig14)\n",
              static_cast<unsigned long long>(flow_starts),
              flow_starts ? 100.0 * static_cast<double>(repeat_starts) /
                                static_cast<double>(flow_starts)
                          : 0.0);
  std::printf("peak live flows   %zu (target %zu)\n", peak_live, target);
  std::printf("sweeps            %llu, expired %llu, touched %llu "
              "(scan sweeper: %llu)\n",
              static_cast<unsigned long long>(sweeps),
              static_cast<unsigned long long>(total_expired),
              static_cast<unsigned long long>(t.sweep_touched),
              static_cast<unsigned long long>(scan_cost));
  std::printf("budget evictions  %llu (DDoS window pressure)\n",
              static_cast<unsigned long long>(t.budget_evictions));
  std::printf("resident          %.1f MB (ceiling %.1f MB), load factor "
              "%.2f\n",
              static_cast<double>(t.resident_bytes) / 1048576.0,
              static_cast<double>(ceiling) / 1048576.0, t.map_load_factor);
  std::printf("steady state      %s (rehash/slab growth delta %llu)\n",
              steady_ok ? "OK: zero heap growth" : "VIOLATED",
              static_cast<unsigned long long>(steady_rehash_delta));
  std::printf("expiry            %s (touched %.2fx of expired)\n",
              expiry_ok ? "OK: O(expired)" : "VIOLATED",
              total_expired ? static_cast<double>(t.sweep_touched) /
                                  static_cast<double>(total_expired)
                            : 0.0);

  std::printf("\n--- fig11 at scale: key cache miss rate (first %llu "
              "packets) ---\n",
              static_cast<unsigned long long>(fig11_packet_cap));
  for (std::size_t i = 0; i < fig11_sizes.size(); ++i) {
    const core::CacheStats& s = fig11_caches[i].stats();
    std::printf("  size %5zu  miss %6.2f%%  (cold %llu capacity %llu "
                "collision %llu)\n",
                fig11_sizes[i], 100.0 * s.miss_rate(),
                static_cast<unsigned long long>(s.cold_misses),
                static_cast<unsigned long long>(s.capacity_misses),
                static_cast<unsigned long long>(s.collision_misses));
  }

  std::printf("\n--- fig13 at scale: flows vs THRESHOLD ---\n");
  auto print13 = [](const core::MegaflowPolicy& p) {
    std::printf("  threshold %5llds  flows %llu  mapper_exp %llu\n",
                static_cast<long long>(p.threshold() /
                                       util::kMicrosPerSecond),
                static_cast<unsigned long long>(p.stats().flows_created),
                static_cast<unsigned long long>(
                    p.stats().mapper_expirations));
  };
  print13(*fig13[0]);
  {
    // The main 600s policies, summed, stand in for the middle point.
    std::uint64_t flows = 0, mexp = 0;
    for (const auto& p : shards.policies) {
      flows += p->stats().flows_created;
      mexp += p->stats().mapper_expirations;
    }
    std::printf("  threshold   600s  flows %llu  mapper_exp %llu  (8 "
                "shards)\n",
                static_cast<unsigned long long>(flows),
                static_cast<unsigned long long>(mexp));
  }
  print13(*fig13[1]);

  obs::MetricsRegistry reg;
  const double repeated_fraction =
      flow_starts ? static_cast<double>(repeat_starts) /
                        static_cast<double>(flow_starts)
                  : 0.0;
  reg.add_source([&](obs::MetricsRegistry::Emitter& emit) {
    emit.counter("megaflow.packets", packets);
    emit.counter("megaflow.flow_starts", flow_starts);
    emit.counter("megaflow.budget_evictions", t.budget_evictions);
    emit.counter("megaflow.wheel_cascades", t.wheel_cascades);
    emit.counter("megaflow.wheel_fires", t.wheel_fires);
    emit.counter("megaflow.sweep_touched", t.sweep_touched);
    emit.counter("megaflow.expired", total_expired);
    emit.gauge("megaflow.peak_live_flows", static_cast<double>(peak_live));
    emit.gauge("megaflow.live_flows", static_cast<double>(t.live_flows));
    emit.gauge("megaflow.map_load_factor", t.map_load_factor);
    emit.gauge("megaflow.resident_bytes",
               static_cast<double>(t.resident_bytes));
    emit.gauge("megaflow.steady_state_gate", steady_ok ? 1 : 0);
    emit.gauge("megaflow.expiry_gate", expiry_ok ? 1 : 0);
    emit.gauge("megaflow.memory_gate", memory_ok ? 1 : 0);
    emit.gauge("megaflow.fig14.repeated_fraction", repeated_fraction);
    for (std::size_t i = 0; i < fig11_sizes.size(); ++i)
      emit.gauge("megaflow.fig11.size" + std::to_string(fig11_sizes[i]) +
                     ".miss_rate",
                 fig11_caches[i].stats().miss_rate());
    emit.gauge("megaflow.fig13.threshold60.flows",
               static_cast<double>(fig13[0]->stats().flows_created));
    emit.gauge("megaflow.fig13.threshold1800.flows",
               static_cast<double>(fig13[1]->stats().flows_created));
  });
  bench::write_metrics(reg.snapshot(), "fbs_bench_megaflow");

  if (hard_assert) {
    if (!steady_ok) {
      std::fprintf(stderr, "FATAL: heap growth in steady state\n");
      return 1;
    }
    if (!expiry_ok) {
      std::fprintf(stderr, "FATAL: sweep cost not O(expired)\n");
      return 1;
    }
    if (!memory_ok) {
      std::fprintf(stderr, "FATAL: resident over the memory ceiling\n");
      return 1;
    }
    if (peak_live + peak_live / 4 < target) {
      std::fprintf(stderr, "FATAL: never approached the flow target\n");
      return 1;
    }
  }
  return 0;
}
