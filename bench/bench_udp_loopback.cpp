// fig8_udp_loopback: the Figure 8 DES+MD5 workload over real kernel UDP
// sockets on 127.0.0.1 -- the same FBS stacks as fbs_bench_fig8_throughput,
// but with the simulated segment replaced by the UdpTransport backend, so
// the numbers include syscalls, socket buffers and the loopback path.
//
// Both endpoints live in this process (the cross-process variant is the
// ctest `udp` interop test); each has its own socket, stack, and key
// caches, and every datagram crosses the kernel. Gauges land in the
// metrics JSON ($FBS_METRICS_OUT or fbs_bench_fig8_udp_loopback.metrics.json).
// This config is NOT part of the BENCH_seed.json baseline: loopback
// throughput is a property of the host kernel, not of the library, so it
// is recorded for observability rather than regression-gated (see
// EXPERIMENTS.md).
#include <chrono>
#include <cstdio>
#include <memory>

#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/ip_map.hpp"
#include "net/udp.hpp"
#include "net/udp_transport.hpp"
#include "support/metrics_io.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

struct Host {
  net::Ipv4Address address;
  std::unique_ptr<net::UdpTransport> transport;
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::FbsIpMapping> fbs;
  std::unique_ptr<net::UdpService> udp;
};

bool make_host(Host& host, const char* ip, cert::CertificateAuthority& ca,
               cert::DirectoryService& directory, util::Clock& clock,
               util::RandomSource& rng) {
  host.address = *net::Ipv4Address::parse(ip);
  const auto principal = core::Principal::from_ipv4(host.address);
  const auto& group = crypto::oakley_group1();
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(principal.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(60 * 24)));
  host.transport =
      std::make_unique<net::UdpTransport>(clock, net::UdpTransportConfig{});
  if (!host.transport->ok()) {
    std::fprintf(stderr, "transport: %s\n", host.transport->error().c_str());
    return false;
  }
  host.mkd = std::make_unique<core::MasterKeyDaemon>(
      principal, dh.private_value, group, ca, directory, clock);
  host.keys = std::make_unique<core::KeyManager>(*host.mkd);
  host.stack =
      std::make_unique<net::IpStack>(*host.transport, clock, host.address);
  host.fbs = std::make_unique<core::FbsIpMapping>(
      *host.stack, core::IpMappingConfig{}, *host.keys, clock, rng);
  host.udp = std::make_unique<net::UdpService>(*host.stack);
  return true;
}

}  // namespace

int main() {
  util::SteadyClock clock;
  util::SplitMix64 rng(1997);
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory;

  Host a, b;
  if (!make_host(a, "10.88.0.1", ca, directory, clock, rng) ||
      !make_host(b, "10.88.0.2", ca, directory, clock, rng)) {
    return 1;
  }
  a.transport->add_peer(b.address, "127.0.0.1", b.transport->local_port());
  b.transport->add_peer(a.address, "127.0.0.1", a.transport->local_port());

  std::size_t delivered = 0;
  b.udp->bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });

  const std::size_t kPayload = 1408;
  const std::size_t kCount = 20'000;
  const util::Bytes payload = util::SplitMix64(1).next_bytes(kPayload);

  // Warm the flow (key derivation + directory fetch off the clock).
  a.udp->send(b.address, 4000, 9000, payload);
  while (delivered < 1) b.transport->poll(util::TimeUs{5'000});

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 1; i < kCount; ++i) {
    a.udp->send(b.address, 4000, 9000, payload);
    // Drain the receiver every few sends so the socket buffer never drops;
    // the poll itself is part of the measured receive cost.
    if (i % 16 == 0) b.transport->poll(util::TimeUs{0});
  }
  const auto deadline = t0 + std::chrono::seconds(30);
  while (delivered < kCount &&
         std::chrono::steady_clock::now() < deadline) {
    b.transport->poll(util::TimeUs{10'000});
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double kbps = static_cast<double>(delivered) * kPayload * 8.0 /
                      elapsed / 1000.0;
  const double pps = static_cast<double>(delivered) / elapsed;
  const auto& at = a.transport->counters();
  std::printf("fig8_udp_loopback: DES+MD5 over kernel loopback\n"
              "  %zu/%zu datagrams of %zu bytes in %.3f s\n"
              "  %.0f pkt/s, %.0f kb/s payload goodput\n"
              "  tx_wire %llu, send drops %llu\n",
              delivered, kCount, kPayload, elapsed, pps, kbps,
              static_cast<unsigned long long>(at.tx_wire.load()),
              static_cast<unsigned long long>(at.send_failed.load() +
                                              at.oversized.load() +
                                              at.unknown_peer.load()));

  obs::MetricsRegistry reg;
  a.fbs->register_metrics(reg, "a");
  b.fbs->register_metrics(reg, "b");
  a.transport->register_metrics(reg, "a.net");
  b.transport->register_metrics(reg, "b.net");
  const std::size_t got = delivered;
  reg.add_source([=](obs::MetricsRegistry::Emitter& emit) {
    emit.gauge("fig8_udp_loopback.payload_bytes",
               static_cast<double>(kPayload));
    emit.gauge("fig8_udp_loopback.datagrams", static_cast<double>(got));
    emit.gauge("fig8_udp_loopback.elapsed_s", elapsed);
    emit.gauge("fig8_udp_loopback.pkts_per_s", pps);
    emit.gauge("fig8_udp_loopback.goodput_kbps", kbps);
  });
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig8_udp_loopback");
  return delivered == kCount ? 0 : 1;
}
