// Figure 11(a)/(b): flow-key cache miss rate vs cache size. The paper's
// claim: "The cache miss rate drops off sharply even with reasonably small
// cache sizes", indicating packet-train behaviour within flows. We replay
// the campus trace through per-host TFKCs (send side, Fig 11(a)) and RFKCs
// (receive side, Fig 11(b)), direct-mapped with CRC-32 indexing as in
// Section 5.3, and report the 3C miss breakdown.
#include <cstdio>

#include "fbs/metrics.hpp"
#include "support/figures.hpp"
#include "support/metrics_io.hpp"

using namespace fbs;

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header(
      "Figure 11: key cache miss rate vs cache size (direct-mapped, CRC-32)",
      t);

  const std::vector<std::size_t> sizes = {2, 4, 8, 16, 32, 64, 128, 256, 512};
  const auto points =
      trace::simulate_cache_misses(t, util::seconds(600), sizes);

  auto print_side = [](const char* title, const auto& points, bool send) {
    std::printf("--- %s ---\n", title);
    std::printf("%8s %10s %10s %10s %10s %10s\n", "size", "miss rate",
                "hits", "cold", "capacity", "collision");
    for (const auto& p : points) {
      const core::CacheStats& s = send ? p.send : p.receive;
      std::printf("%8zu %9.2f%% %10llu %10llu %10llu %10llu\n", p.cache_size,
                  100.0 * s.miss_rate(),
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.cold_misses),
                  static_cast<unsigned long long>(s.capacity_misses),
                  static_cast<unsigned long long>(s.collision_misses));
    }
    std::printf("\n");
  };
  print_side("Figure 11(a): TFKC (send side)", points, true);
  print_side("Figure 11(b): RFKC (receive side)", points, false);

  const double small = points[2].send.miss_rate();   // size 8
  const double large = points.back().send.miss_rate();
  std::printf("shape check: miss rate %.2f%% at size 8 -> %.2f%% at size "
              "%zu (paper: drops off sharply at small sizes)\n",
              100.0 * small, 100.0 * large, points.back().cache_size);

  // Per-workload: the WWW server sees many short single-hit flows (worse
  // reuse), the LAN's packet trains cache beautifully.
  std::printf("\n--- per-workload RFKC miss rate ---\n");
  std::printf("%-12s", "size");
  for (std::size_t s : {8u, 32u, 128u}) std::printf("%10zu", s);
  std::printf("\n");
  for (const auto& [name, workload] :
       {std::pair<const char*, trace::Trace>{"LAN",
                                             bench::lan_only_trace()},
        std::pair<const char*, trace::Trace>{"WWW",
                                             bench::www_only_trace()}}) {
    const auto wpoints = trace::simulate_cache_misses(
        workload, util::seconds(600), {8, 32, 128});
    std::printf("%-12s", name);
    for (const auto& p : wpoints)
      std::printf("%9.2f%%", 100.0 * p.receive.miss_rate());
    std::printf("\n");
  }

  // Machine-readable export: the full 3C breakdown per cache size, through
  // the same CacheStats adapter the runtime endpoints use.
  obs::MetricsRegistry reg;
  for (const auto& p : points) {
    const std::string sz = std::to_string(p.cache_size);
    core::register_metrics(reg, "fig11.tfkc.size" + sz, p.send);
    core::register_metrics(reg, "fig11.rfkc.size" + sz, p.receive);
  }
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig11_cache_miss");
  return 0;
}
