// Cache-hash ablation (Section 5.3): "Simple hash functions, such as modulo
// and XOR'ing, are fast but ... provide little randomness unless the input
// ... is already random. The input for all our cache could be highly
// correlated, e.g., local network addresses and sequential sfls."
//
// Part 1 (table): replay the campus trace through direct-mapped flow-key
// caches indexed by CRC-32 vs modulo vs XOR-fold and compare miss rates.
// Part 2 (google-benchmark): raw per-lookup latency of each hash, showing
// that CRC-32's quality costs almost nothing at these key sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fbs/caches.hpp"
#include "support/figures.hpp"
#include "support/metrics_io.hpp"

namespace {

using namespace fbs;

const char* hash_slug(core::CacheHashKind hash) {
  switch (hash) {
    case core::CacheHashKind::kCrc32: return "crc32";
    case core::CacheHashKind::kModulo: return "modulo";
    case core::CacheHashKind::kXorFold: return "xorfold";
  }
  return "unknown";
}

void print_miss_table(obs::MetricsRegistry& reg) {
  const trace::Trace t = bench::campus_trace();
  std::printf("Cache-hash ablation: direct-mapped flow key caches over the "
              "campus trace (%zu packets)\n\n",
              t.size());
  std::printf("%10s %12s %12s %12s\n", "size", "crc32", "modulo", "xorfold");
  for (std::size_t size : {16u, 64u, 256u}) {
    std::printf("%10zu", size);
    for (auto hash : {core::CacheHashKind::kCrc32,
                      core::CacheHashKind::kModulo,
                      core::CacheHashKind::kXorFold}) {
      const auto points =
          trace::simulate_cache_misses(t, util::seconds(600), {size}, 1, hash);
      std::printf("%11.2f%%", 100.0 * points[0].receive.miss_rate());
      reg.gauge(std::string("cache_hash.") + hash_slug(hash) + ".size" +
                std::to_string(size) + ".miss_rate")
          .set(points[0].receive.miss_rate());
    }
    std::printf("\n");
  }
  std::printf("\n(collision misses are the difference: the weak hashes "
              "cluster correlated sfl/address keys into few sets)\n\n");

  // Section 5.3's other lever: associativity. With a good hash, extra ways
  // buy little; the table shows how much at size 64.
  std::printf("associativity at size 64 (CRC-32): ");
  for (std::size_t ways : {1u, 2u, 4u}) {
    const auto points = trace::simulate_cache_misses(t, util::seconds(600),
                                                     {64}, ways);
    std::printf("%zu-way %.2f%%  ", ways,
                100.0 * points[0].receive.miss_rate());
    reg.gauge("cache_hash.crc32.size64.ways" + std::to_string(ways) +
              ".miss_rate")
        .set(points[0].receive.miss_rate());
  }
  std::printf("\n\n");
}

util::Bytes key_for(std::uint64_t sfl) {
  // Realistic cache key composition: sequential sfl + two LAN addresses.
  util::ByteWriter w(16);
  w.u64(sfl);
  w.u32(0x0A010001);
  w.u32(0x0A01000B);
  return w.take();
}

void BM_HashLookup(benchmark::State& state) {
  const auto hash = static_cast<core::CacheHashKind>(state.range(0));
  core::SetAssociativeCache<int> cache(256, 1, hash);
  std::vector<util::Bytes> keys;
  for (std::uint64_t i = 0; i < 128; ++i) keys.push_back(key_for(i));
  for (const auto& k : keys) cache.insert(k, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_HashLookup)
    ->Arg(static_cast<int>(core::CacheHashKind::kCrc32))
    ->Arg(static_cast<int>(core::CacheHashKind::kModulo))
    ->Arg(static_cast<int>(core::CacheHashKind::kXorFold));

void BM_CacheIndexOnly(benchmark::State& state) {
  const auto hash = static_cast<core::CacheHashKind>(state.range(0));
  const util::Bytes key = key_for(123456);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::cache_index(hash, key, 256));
}
BENCHMARK(BM_CacheIndexOnly)
    ->Arg(static_cast<int>(core::CacheHashKind::kCrc32))
    ->Arg(static_cast<int>(core::CacheHashKind::kModulo))
    ->Arg(static_cast<int>(core::CacheHashKind::kXorFold));

void BM_Associativity(benchmark::State& state) {
  // Section 5.3: "the associativity of the caches can not be too great"
  // because lookup must stay fast. Measure 1/2/4/8-way lookup cost.
  const auto ways = static_cast<std::size_t>(state.range(0));
  core::SetAssociativeCache<int> cache(256, ways);
  std::vector<util::Bytes> keys;
  for (std::uint64_t i = 0; i < 128; ++i) keys.push_back(key_for(i));
  for (const auto& k : keys) cache.insert(k, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_Associativity)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  fbs::obs::MetricsRegistry reg;
  print_miss_table(reg);
  fbs::bench::write_metrics(reg.snapshot(), "fbs_bench_ablation_cache_hash");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
