// Transit-mesh goodput: an FBS DES+MD5 tunnel crossing a two-router
// transit fabric whose bottleneck link runs each queue discipline
// (DESIGN.md section 5g), at offered loads from half to twice the
// bottleneck's service rate. The interesting shape: goodput tracks offered
// load until saturation, then flattens at (payload/wire-bytes) x link rate
// instead of collapsing -- drops are absorbed by the queue discipline, and
// RED sheds early while FIFO sheds at the tail.
#include <cstdio>
#include <string>
#include <vector>

#include "net/mesh.hpp"
#include "support/harness.hpp"
#include "support/metrics_io.hpp"

using namespace fbs;

namespace {

struct MeshRun {
  std::size_t offered = 0;
  std::size_t delivered = 0;
  double goodput_mbps = 0;
  std::uint64_t tail_dropped = 0;
  std::uint64_t red_dropped = 0;
  std::size_t highwater = 0;
};

MeshRun run_load(net::QueueDiscipline discipline, double load) {
  bench::TwoHostWorld world(bench::StackConfig::kFbsDesMd5, 1997);

  net::TransitLinkConfig bottleneck;
  bottleneck.bandwidth_bps = 2e6;
  bottleneck.queue.discipline = discipline;
  bottleneck.queue.capacity = 32;
  net::TransitLinkConfig access;
  access.bandwidth_bps = 100e6;
  access.queue.capacity = 256;

  net::MeshNetwork mesh(world.network(), world.clock(), world.rng_public());
  const net::Ipv4Address r0 = net::mesh_router_address(0);
  const net::Ipv4Address r1 = net::mesh_router_address(1);
  mesh.add_router(r0);
  mesh.add_router(r1);
  mesh.connect(r0, r1, bottleneck);
  mesh.attach_host(world.a().address, r0, access);
  mesh.attach_host(world.b().address, r1, access);
  world.a().stack->set_default_route(r0);
  world.b().stack->set_default_route(r1);
  mesh.recompute_routes();

  std::size_t delivered_payloads = 0;
  world.b().udp->bind(9000, [&](net::Ipv4Address, std::uint16_t,
                                util::Bytes) { ++delivered_payloads; });

  // ~1070 wire bytes per 1000-byte payload after FBS + IP/UDP framing:
  // ~4.3 ms serialization at 2 Mb/s, so `interval = 4.3ms / load`.
  const std::size_t kPayload = 1000;
  const util::TimeUs frame_time{4300};
  const auto interval =
      static_cast<util::TimeUs>(static_cast<double>(frame_time) / load);
  const int count = static_cast<int>(2'000'000 / interval);
  const util::Bytes payload(kPayload, 0x5A);

  std::size_t offered = 0;
  const util::TimeUs t0 = world.clock().now();
  for (int i = 0; i < count; ++i) {
    world.network().call_later(interval * i, [&world, &payload, &offered] {
      if (world.a().udp->send(world.b().address, 4000, 9000, payload))
        ++offered;
    });
  }
  world.network().run();

  MeshRun out;
  out.offered = offered;
  out.delivered = delivered_payloads;
  const double elapsed_us =
      static_cast<double>(world.clock().now() - t0);
  out.goodput_mbps = static_cast<double>(delivered_payloads) * kPayload *
                     8.0 / elapsed_us;  // bytes/us -> Mb/s
  const auto* ls = mesh.router(r0).link_stats(r1);
  out.tail_dropped = ls->queue.tail_dropped;
  out.red_dropped = ls->queue.red_dropped;
  out.highwater = ls->queue.highwater;
  return out;
}

}  // namespace

int main() {
  std::printf("Transit-mesh tunnel goodput vs offered load\n");
  std::printf("bottleneck 2 Mb/s, queue capacity 32, FBS DES+MD5, 1000-byte "
              "payloads\n\n");
  std::printf("%-14s %6s %9s %10s %12s %10s %10s %10s\n", "discipline",
              "load", "offered", "delivered", "goodput Mb/s", "tail drop",
              "red drop", "highwater");

  obs::MetricsRegistry reg;
  const net::QueueDiscipline disciplines[] = {
      net::QueueDiscipline::kFifoTailDrop, net::QueueDiscipline::kRed,
      net::QueueDiscipline::kBackpressure};
  const double loads[] = {0.5, 1.0, 1.5, 2.0};
  for (net::QueueDiscipline d : disciplines) {
    for (double load : loads) {
      const MeshRun r = run_load(d, load);
      std::printf("%-14s %5.1fx %9zu %10zu %12.3f %10llu %10llu %10zu\n",
                  net::to_string(d), load, r.offered, r.delivered,
                  r.goodput_mbps,
                  static_cast<unsigned long long>(r.tail_dropped),
                  static_cast<unsigned long long>(r.red_dropped),
                  r.highwater);
      const std::string p = std::string("mesh.") + net::to_string(d) +
                            ".load" + std::to_string(load).substr(0, 3);
      reg.gauge(p + ".goodput_mbps").set(r.goodput_mbps);
      reg.counter(p + ".offered").add(r.offered);
      reg.counter(p + ".delivered").add(r.delivered);
      reg.counter(p + ".tail_dropped").add(r.tail_dropped);
      reg.counter(p + ".red_dropped").add(r.red_dropped);
    }
    std::printf("\n");
  }
  bench::write_metrics(reg.snapshot(), "fbs_bench_mesh_transit");
  return 0;
}
