// Reproduces the Section 7.2 CryptoLib performance table ("549kB/s for DES
// in CBC mode and 7060kB/s for MD5 [on a Pentium 133]") with our from-scratch
// primitives, plus the Section 2.2 / 5.3 RNG comparison: the statistically
// random LCG confounder vs the cryptographically secure (and bottlenecking)
// Blum-Blum-Shub generator, and the per-flow vs per-datagram key derivation
// cost.
#include <benchmark/benchmark.h>

#include <chrono>
#include <ctime>

#include "bignum/prime.hpp"
#include "crypto/batch.hpp"
#include "crypto/bbs.hpp"
#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "crypto/des3.hpp"
#include "crypto/des_bitslice.hpp"
#include "crypto/dh.hpp"
#include "crypto/fused.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "support/metrics_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace fbs;

util::Bytes buffer_of(std::size_t n) {
  util::SplitMix64 rng(n);
  return rng.next_bytes(n);
}

void BM_Md5(benchmark::State& state) {
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::md5(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(1460)->Arg(8192)->Arg(65536);

void BM_Sha1(benchmark::State& state) {
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha1(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1460)->Arg(65536);

void BM_DesCbcEncrypt(benchmark::State& state) {
  const crypto::Des des(buffer_of(8));
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::encrypt(des, crypto::CipherMode::kCbc, 42, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesCbcEncrypt)->Arg(64)->Arg(1460)->Arg(8192);

void BM_DesCbcDecrypt(benchmark::State& state) {
  const crypto::Des des(buffer_of(8));
  const util::Bytes ct = crypto::encrypt(
      des, crypto::CipherMode::kCbc, 42,
      buffer_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::decrypt(des, crypto::CipherMode::kCbc, 42, ct));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesCbcDecrypt)->Arg(1460);

void BM_DesMode(benchmark::State& state) {
  const auto mode = static_cast<crypto::CipherMode>(state.range(0));
  const crypto::Des des(buffer_of(8));
  const util::Bytes data = buffer_of(1460);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::encrypt(des, mode, 42, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_DesMode)
    ->Arg(static_cast<int>(crypto::CipherMode::kEcb))
    ->Arg(static_cast<int>(crypto::CipherMode::kCbc))
    ->Arg(static_cast<int>(crypto::CipherMode::kCfb))
    ->Arg(static_cast<int>(crypto::CipherMode::kOfb));

void BM_Des3CbcEncrypt(benchmark::State& state) {
  const crypto::Des3 des3(buffer_of(24));
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::encrypt(des3, crypto::CipherMode::kCbc, 42, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Des3CbcEncrypt)->Arg(1460);

/// A burst of `batch` distinct-key datagrams (MTU-sized, pre-padded) for
/// the bitslice planner; reused by the benchmark and the metrics snapshot.
struct BitsliceBurst {
  static constexpr std::size_t kCtBytes = 1464;  // 1460 + PKCS#7, 183 blocks

  explicit BitsliceBurst(std::size_t batch) {
    for (std::size_t i = 0; i < batch; ++i) {
      const util::Bytes key = buffer_of(8 + i);
      des.emplace_back(key);
      scheds.push_back(crypto::DesBitsliceKeySchedule::from_key(key));
      cts.push_back(buffer_of(kCtBytes));
      plains.emplace_back(kCtBytes);
    }
    for (std::size_t i = 0; i < batch; ++i)
      jobs.push_back(crypto::CbcOpenJob{&des[i], &scheds[i],
                                        0x0123456789ABCDEFull, cts[i],
                                        plains[i].data()});
  }

  std::size_t bytes() const { return jobs.size() * kCtBytes; }

  /// The scalar reference: per-job table-driven CBC decrypt, the exact
  /// block recurrence CryptoBatch's own fallback runs.
  void decrypt_scalar() {
    for (const auto& job : jobs) {
      std::uint64_t chain = job.iv;
      for (std::size_t off = 0; off < job.ciphertext.size(); off += 8) {
        const std::uint64_t ct =
            crypto::Des::load_be64(&job.ciphertext[off]);
        crypto::Des::store_be64(job.des->decrypt_block(ct) ^ chain,
                                job.plaintext + off);
        chain = ct;
      }
    }
  }

  std::vector<crypto::Des> des;
  std::vector<crypto::DesBitsliceKeySchedule> scheds;
  std::vector<util::Bytes> cts;
  std::vector<util::Bytes> plains;
  std::vector<crypto::CbcOpenJob> jobs;
};

void BM_DesBitsliceCbcDecryptBatch(benchmark::State& state) {
  // Cross-datagram 64-wide decrypt, mixed keys: the pipeline worker's
  // steady-state burst shape, swept over burst widths.
  BitsliceBurst burst(static_cast<std::size_t>(state.range(0)));
  crypto::CryptoBatch batch;
  for (auto _ : state) {
    batch.open_cbc(burst.jobs);
    benchmark::DoNotOptimize(burst.plains.front().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(burst.bytes()));
}
BENCHMARK(BM_DesBitsliceCbcDecryptBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_DesScalarCbcDecryptBatch(benchmark::State& state) {
  // The same burst on the scalar core: the fig8 "DES+MD5 scalar" leg.
  BitsliceBurst burst(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    burst.decrypt_scalar();
    benchmark::DoNotOptimize(burst.plains.front().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(burst.bytes()));
}
BENCHMARK(BM_DesScalarCbcDecryptBatch)->Arg(64);

void BM_KeyedMd5Mac(benchmark::State& state) {
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16);
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(mac.compute(key, {data}));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KeyedMd5Mac)->Arg(64)->Arg(1460);

void BM_HmacMd5(benchmark::State& state) {
  crypto::HmacMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16);
  const util::Bytes data = buffer_of(1460);
  for (auto _ : state) benchmark::DoNotOptimize(mac.compute(key, {data}));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_HmacMd5);

void BM_TwoPassMacThenEncrypt(benchmark::State& state) {
  // Reference: separate MD5 pass and DES-CBC pass over the payload.
  const crypto::Des des(buffer_of(8));
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16), prefix = buffer_of(8);
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute(key, {prefix, data}));
    benchmark::DoNotOptimize(
        crypto::encrypt(des, crypto::CipherMode::kCbc, 42, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TwoPassMacThenEncrypt)->Arg(1460)->Arg(8192);

void BM_FusedMacEncrypt(benchmark::State& state) {
  // Section 5.3's single data-touching pass.
  const crypto::Des des(buffer_of(8));
  const util::Bytes key = buffer_of(16), prefix = buffer_of(8);
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::fused_keyed_md5_des_cbc(des, 42, key, prefix, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FusedMacEncrypt)->Arg(1460)->Arg(8192);

// --- Key management costs (Section 5.3's cost hierarchy) ---

void BM_FlowKeyDerivation(benchmark::State& state) {
  // One MD5 over ~small input: the per-flow cost FBS pays.
  crypto::Md5 h;
  const util::Bytes master = buffer_of(96);
  util::Bytes sfl = buffer_of(8);
  for (auto _ : state) {
    h.reset();
    h.update(sfl);
    h.update(master);
    benchmark::DoNotOptimize(h.finish());
  }
}
BENCHMARK(BM_FlowKeyDerivation);

void BM_DhMasterKey768(benchmark::State& state) {
  // Pair-based master key: one 768-bit modular exponentiation (expensive,
  // hence the MKC).
  util::SplitMix64 rng(7);
  const auto& group = crypto::oakley_group1();
  const auto us = crypto::dh_generate(group, rng);
  const auto them = crypto::dh_generate(group, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::dh_shared_secret(group, us.private_value, them.public_value));
}
BENCHMARK(BM_DhMasterKey768);

void BM_RsaVerifyCertificate(benchmark::State& state) {
  // PVC hit cost: certificates are re-verified on every use.
  util::SplitMix64 rng(8);
  const auto key = crypto::rsa_generate(512, rng);
  const util::Bytes msg = buffer_of(200);
  const util::Bytes sig = crypto::rsa_sign_md5(key, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::rsa_verify_md5(key.pub, msg, sig));
}
BENCHMARK(BM_RsaVerifyCertificate);

// --- RNG grades (Section 2.2 vs 5.3) ---

void BM_LcgConfounder(benchmark::State& state) {
  util::Lcg48 lcg(123);
  for (auto _ : state) benchmark::DoNotOptimize(lcg.step32());
}
BENCHMARK(BM_LcgConfounder);

void BM_BbsPerDatagramKey(benchmark::State& state) {
  // The quadratic-residue generator producing one 64-bit per-datagram key:
  // 64 modular squarings of a 512-bit state. This is the bottleneck the
  // paper cites for per-datagram keying schemes.
  util::SplitMix64 seeder(9);
  crypto::BlumBlumShub bbs = crypto::BlumBlumShub::generate(512, seeder);
  for (auto _ : state) benchmark::DoNotOptimize(bbs.next_u64());
}
BENCHMARK(BM_BbsPerDatagramKey);

/// Quick self-timed pass for the machine-readable snapshot: bulk rates of
/// the Section 7.2 primitives (the paper's table is in kB/s), independent
/// of google-benchmark's output format.
void emit_metrics() {
  obs::MetricsRegistry reg;
  const util::Bytes data = buffer_of(1460);
  const crypto::Des des(buffer_of(8));
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16), prefix = buffer_of(8);

  auto rate_kBps = [&](auto&& op) {
    constexpr int kReps = 2000;  // ~2.9 MB per primitive
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) op();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return kReps * static_cast<double>(data.size()) / 1000.0 /
           elapsed.count();
  };
  reg.gauge("crypto.md5.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(crypto::md5(data));
  }));
  reg.gauge("crypto.des_cbc.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(
        crypto::encrypt(des, crypto::CipherMode::kCbc, 42, data));
  }));
  reg.gauge("crypto.keyed_md5_mac.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(mac.compute(key, {data}));
  }));
  reg.gauge("crypto.fused_md5_des_cbc.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(
        crypto::fused_keyed_md5_des_cbc(des, 42, key, prefix, data));
  }));
  const crypto::Des3 des3(buffer_of(24));
  reg.gauge("crypto.des3_cbc.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(
        crypto::encrypt(des3, crypto::CipherMode::kCbc, 42, data));
  }));

  // Bitslice vs scalar on the worker-burst shape (64 distinct-key
  // MTU-sized datagrams). The two legs are timed adjacently, interleaved,
  // and the speedup is the ratio of each leg's BEST of three repetitions:
  // absolute throughput on a shared host swings with frequency scaling and
  // neighbors, but both legs ride the same swings, so the ratio is what
  // tools/check.sh gates on (the ISSUE's >= 3x acceptance bar).
  {
    BitsliceBurst burst(64);
    crypto::CryptoBatch batch;
    constexpr int kPasses = 24;  // ~2.2 MB per timed leg
    // Time each leg with wall clock AND thread CPU time, and keep the
    // smallest reading seen by either clock across all reps. Both clocks
    // only ever overestimate the true compute time -- wall clock by slices
    // lost to preemption (which hit the shorter bitsliced leg
    // proportionally harder and skew the ratio low), CPU time by steal
    // cycles a virtualized host charges to the thread -- so the minimum
    // over many short interleaved reps is a stable estimator where any one
    // long timed pair is not.
    auto thread_seconds = [] {
      timespec ts{};
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
    };
    auto time_leg = [&](auto&& op) {
      const double cpu0 = thread_seconds();
      const auto wall0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kPasses; ++i) op();
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall0;
      return std::min(thread_seconds() - cpu0, wall.count());
    };
    double best_wide = 1e30, best_scalar = 1e30;
    for (int rep = 0; rep < 8; ++rep) {
      best_scalar =
          std::min(best_scalar, time_leg([&] { burst.decrypt_scalar(); }));
      best_wide =
          std::min(best_wide, time_leg([&] { batch.open_cbc(burst.jobs); }));
    }
    const double bytes = static_cast<double>(kPasses) *
                         static_cast<double>(burst.bytes());
    reg.gauge("crypto.des_bitslice.kBps").set(bytes / 1000.0 / best_wide);
    reg.gauge("crypto.des_scalar_cbc_decrypt.kBps")
        .set(bytes / 1000.0 / best_scalar);
    reg.gauge("crypto.des_bitslice_speedup").set(best_scalar / best_wide);
  }
  // Burst-width sweep: how quickly the transpose + key-load overhead
  // amortizes as lanes light up (batch=1 still splits one datagram's 183
  // blocks across lanes -- see DESIGN.md 5h).
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}, std::size_t{64}}) {
    BitsliceBurst burst(width);
    crypto::CryptoBatch batch;
    const int passes = static_cast<int>(1536 / width);  // ~constant bytes
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < passes; ++i) batch.open_cbc(burst.jobs);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    reg.gauge("crypto.des_bitslice.batch" + std::to_string(width) + ".kBps")
        .set(static_cast<double>(passes) * static_cast<double>(burst.bytes()) /
             1000.0 / elapsed.count());
  }
  bench::write_metrics(reg.snapshot(), "fbs_bench_crypto");
}

}  // namespace

int main(int argc, char** argv) {
  emit_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
