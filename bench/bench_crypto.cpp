// Reproduces the Section 7.2 CryptoLib performance table ("549kB/s for DES
// in CBC mode and 7060kB/s for MD5 [on a Pentium 133]") with our from-scratch
// primitives, plus the Section 2.2 / 5.3 RNG comparison: the statistically
// random LCG confounder vs the cryptographically secure (and bottlenecking)
// Blum-Blum-Shub generator, and the per-flow vs per-datagram key derivation
// cost.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bignum/prime.hpp"
#include "crypto/bbs.hpp"
#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "crypto/dh.hpp"
#include "crypto/fused.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "support/metrics_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace fbs;

util::Bytes buffer_of(std::size_t n) {
  util::SplitMix64 rng(n);
  return rng.next_bytes(n);
}

void BM_Md5(benchmark::State& state) {
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::md5(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(1460)->Arg(8192)->Arg(65536);

void BM_Sha1(benchmark::State& state) {
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha1(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1460)->Arg(65536);

void BM_DesCbcEncrypt(benchmark::State& state) {
  const crypto::Des des(buffer_of(8));
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::encrypt(des, crypto::CipherMode::kCbc, 42, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesCbcEncrypt)->Arg(64)->Arg(1460)->Arg(8192);

void BM_DesCbcDecrypt(benchmark::State& state) {
  const crypto::Des des(buffer_of(8));
  const util::Bytes ct = crypto::encrypt(
      des, crypto::CipherMode::kCbc, 42,
      buffer_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::decrypt(des, crypto::CipherMode::kCbc, 42, ct));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesCbcDecrypt)->Arg(1460);

void BM_DesMode(benchmark::State& state) {
  const auto mode = static_cast<crypto::CipherMode>(state.range(0));
  const crypto::Des des(buffer_of(8));
  const util::Bytes data = buffer_of(1460);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::encrypt(des, mode, 42, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_DesMode)
    ->Arg(static_cast<int>(crypto::CipherMode::kEcb))
    ->Arg(static_cast<int>(crypto::CipherMode::kCbc))
    ->Arg(static_cast<int>(crypto::CipherMode::kCfb))
    ->Arg(static_cast<int>(crypto::CipherMode::kOfb));

void BM_KeyedMd5Mac(benchmark::State& state) {
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16);
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(mac.compute(key, {data}));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KeyedMd5Mac)->Arg(64)->Arg(1460);

void BM_HmacMd5(benchmark::State& state) {
  crypto::HmacMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16);
  const util::Bytes data = buffer_of(1460);
  for (auto _ : state) benchmark::DoNotOptimize(mac.compute(key, {data}));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_HmacMd5);

void BM_TwoPassMacThenEncrypt(benchmark::State& state) {
  // Reference: separate MD5 pass and DES-CBC pass over the payload.
  const crypto::Des des(buffer_of(8));
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16), prefix = buffer_of(8);
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute(key, {prefix, data}));
    benchmark::DoNotOptimize(
        crypto::encrypt(des, crypto::CipherMode::kCbc, 42, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TwoPassMacThenEncrypt)->Arg(1460)->Arg(8192);

void BM_FusedMacEncrypt(benchmark::State& state) {
  // Section 5.3's single data-touching pass.
  const crypto::Des des(buffer_of(8));
  const util::Bytes key = buffer_of(16), prefix = buffer_of(8);
  const util::Bytes data = buffer_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::fused_keyed_md5_des_cbc(des, 42, key, prefix, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FusedMacEncrypt)->Arg(1460)->Arg(8192);

// --- Key management costs (Section 5.3's cost hierarchy) ---

void BM_FlowKeyDerivation(benchmark::State& state) {
  // One MD5 over ~small input: the per-flow cost FBS pays.
  crypto::Md5 h;
  const util::Bytes master = buffer_of(96);
  util::Bytes sfl = buffer_of(8);
  for (auto _ : state) {
    h.reset();
    h.update(sfl);
    h.update(master);
    benchmark::DoNotOptimize(h.finish());
  }
}
BENCHMARK(BM_FlowKeyDerivation);

void BM_DhMasterKey768(benchmark::State& state) {
  // Pair-based master key: one 768-bit modular exponentiation (expensive,
  // hence the MKC).
  util::SplitMix64 rng(7);
  const auto& group = crypto::oakley_group1();
  const auto us = crypto::dh_generate(group, rng);
  const auto them = crypto::dh_generate(group, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        crypto::dh_shared_secret(group, us.private_value, them.public_value));
}
BENCHMARK(BM_DhMasterKey768);

void BM_RsaVerifyCertificate(benchmark::State& state) {
  // PVC hit cost: certificates are re-verified on every use.
  util::SplitMix64 rng(8);
  const auto key = crypto::rsa_generate(512, rng);
  const util::Bytes msg = buffer_of(200);
  const util::Bytes sig = crypto::rsa_sign_md5(key, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::rsa_verify_md5(key.pub, msg, sig));
}
BENCHMARK(BM_RsaVerifyCertificate);

// --- RNG grades (Section 2.2 vs 5.3) ---

void BM_LcgConfounder(benchmark::State& state) {
  util::Lcg48 lcg(123);
  for (auto _ : state) benchmark::DoNotOptimize(lcg.step32());
}
BENCHMARK(BM_LcgConfounder);

void BM_BbsPerDatagramKey(benchmark::State& state) {
  // The quadratic-residue generator producing one 64-bit per-datagram key:
  // 64 modular squarings of a 512-bit state. This is the bottleneck the
  // paper cites for per-datagram keying schemes.
  util::SplitMix64 seeder(9);
  crypto::BlumBlumShub bbs = crypto::BlumBlumShub::generate(512, seeder);
  for (auto _ : state) benchmark::DoNotOptimize(bbs.next_u64());
}
BENCHMARK(BM_BbsPerDatagramKey);

/// Quick self-timed pass for the machine-readable snapshot: bulk rates of
/// the Section 7.2 primitives (the paper's table is in kB/s), independent
/// of google-benchmark's output format.
void emit_metrics() {
  obs::MetricsRegistry reg;
  const util::Bytes data = buffer_of(1460);
  const crypto::Des des(buffer_of(8));
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  const util::Bytes key = buffer_of(16), prefix = buffer_of(8);

  auto rate_kBps = [&](auto&& op) {
    constexpr int kReps = 2000;  // ~2.9 MB per primitive
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) op();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return kReps * static_cast<double>(data.size()) / 1000.0 /
           elapsed.count();
  };
  reg.gauge("crypto.md5.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(crypto::md5(data));
  }));
  reg.gauge("crypto.des_cbc.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(
        crypto::encrypt(des, crypto::CipherMode::kCbc, 42, data));
  }));
  reg.gauge("crypto.keyed_md5_mac.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(mac.compute(key, {data}));
  }));
  reg.gauge("crypto.fused_md5_des_cbc.kBps").set(rate_kBps([&] {
    benchmark::DoNotOptimize(
        crypto::fused_keyed_md5_des_cbc(des, 42, key, prefix, data));
  }));
  bench::write_metrics(reg.snapshot(), "fbs_bench_crypto");
}

}  // namespace

int main(int argc, char** argv) {
  emit_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
