// Shared input for the Figure 9-14 benches: the synthetic campus LAN + WWW
// server trace standing in for the paper's tcpdump captures, and small
// table-printing helpers.
#pragma once

#include <cstdio>

#include "trace/flowsim.hpp"
#include "trace/record.hpp"
#include "trace/synth.hpp"
#include "util/clock.hpp"

namespace fbs::bench {

/// The standard workload: 30 simulated minutes of a workgroup LAN plus a
/// 10,000-hits/day WWW server, deterministic in its seed.
inline trace::Trace campus_trace(std::uint64_t seed = 1997) {
  return trace::generate_campus_trace(seed, util::minutes(30));
}

/// The two workloads separately (the paper analyzed both traces).
inline trace::Trace lan_only_trace(std::uint64_t seed = 1997) {
  trace::LanWorkloadConfig cfg;
  cfg.seed = seed;
  cfg.duration = util::minutes(30);
  return trace::generate_lan_trace(cfg);
}

inline trace::Trace www_only_trace(std::uint64_t seed = 1997) {
  trace::WwwWorkloadConfig cfg;
  cfg.seed = seed ^ 0x5741424Bu;  // matches generate_campus_trace's seeding
  cfg.duration = util::minutes(30);
  return trace::generate_www_trace(cfg);
}

inline void print_trace_header(const char* figure, const trace::Trace& t) {
  const trace::TraceSummary s = trace::summarize(t);
  std::printf("%s\n", figure);
  std::printf(
      "input trace: %zu packets, %.1f MB, %.1f min, %zu five-tuples, %zu "
      "hosts\n\n",
      s.packets, static_cast<double>(s.bytes) / 1e6,
      static_cast<double>(s.last - s.first) / util::kMicrosPerMinute,
      s.distinct_tuples, s.distinct_hosts);
}

}  // namespace fbs::bench
