// Machine-readable bench output: every bench binary dumps a
// MetricsSnapshot as JSON so results can be scraped without parsing the
// human-oriented tables. The destination is $FBS_METRICS_OUT if set,
// otherwise "<bench>.metrics.json" in the working directory.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"

namespace fbs::bench {

inline std::string metrics_output_path(const char* bench_name) {
  if (const char* env = std::getenv("FBS_METRICS_OUT"))
    if (*env) return env;
  return std::string(bench_name) + ".metrics.json";
}

inline void write_metrics(const obs::MetricsSnapshot& snap,
                          const char* bench_name) {
  const std::string path = metrics_output_path(bench_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  const std::string json = snap.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[metrics snapshot written to %s]\n", path.c_str());
}

}  // namespace fbs::bench
