// Shared bench fixtures: a keyed two-host world on a zero-delay simulated
// segment (the "dedicated 10M Ethernet" of Section 7.3), in the three
// Figure 8 configurations -- GENERIC (no security), FBS NOP (nullified
// crypto), FBS DES+MD5 (the real thing).
#pragma once

#include <memory>
#include <string>

#include "cert/certificate.hpp"
#include "net/simnet.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/ip_map.hpp"
#include "net/udp.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::bench {

enum class StackConfig {
  kGeneric,
  kFbsNop,
  kFbsDesMd5,        // keyed MD5 + DES-CBC, bitsliced batch decrypt enabled
  kFbsDesMd5Scalar,  // same suite with bitslice_crypto off (table-DES only)
  kFbsDes3Md5,       // keyed MD5 + 3DES-EDE (always scalar)
  kFbsMd5Only,
};

inline const char* to_string(StackConfig c) {
  switch (c) {
    case StackConfig::kGeneric: return "GENERIC";
    case StackConfig::kFbsNop: return "FBS NOP";
    case StackConfig::kFbsDesMd5: return "FBS DES+MD5";
    case StackConfig::kFbsDesMd5Scalar: return "FBS DES+MD5 scalar";
    case StackConfig::kFbsDes3Md5: return "FBS 3DES+MD5";
    case StackConfig::kFbsMd5Only: return "FBS MD5 (auth only)";
  }
  return "?";
}

/// Two hosts, certificates published, FBS mappings installed per config.
class TwoHostWorld {
 public:
  /// `trace_stages` turns on per-stage latency tracing in both endpoints;
  /// keep it off for timed runs (it adds clock reads to the datagram path)
  /// and use a separate instrumented world for metrics emission.
  explicit TwoHostWorld(StackConfig config, std::uint64_t seed = 1997,
                        bool trace_stages = false)
      : rng_(seed),
        clock_(util::minutes(1000)),
        ca_(512, rng_),
        directory_(0, nullptr),
        net_(clock_, seed ^ 0xBEEF) {
    net::LinkParams instant;
    instant.delay = 0;
    net_.set_default_link(instant);

    a_ = make_host("10.0.0.1");
    b_ = make_host("10.0.0.2");

    if (config != StackConfig::kGeneric) {
      core::IpMappingConfig cfg;
      cfg.fbs.suite = suite_for(config);
      cfg.fbs.trace_stages = trace_stages;
      if (config == StackConfig::kFbsDesMd5Scalar)
        cfg.fbs.bitslice_crypto = false;
      if (config == StackConfig::kFbsNop ||
          config == StackConfig::kFbsMd5Only) {
        cfg.secret_policy = [](const core::FlowAttributes&) { return false; };
      }
      a_->fbs = std::make_unique<core::FbsIpMapping>(*a_->stack, cfg,
                                                     *a_->keys, clock_, rng_);
      b_->fbs = std::make_unique<core::FbsIpMapping>(*b_->stack, cfg,
                                                     *b_->keys, clock_, rng_);
    }
  }

  static crypto::AlgorithmSuite suite_for(StackConfig config) {
    crypto::AlgorithmSuite suite;
    switch (config) {
      case StackConfig::kGeneric:
        break;
      case StackConfig::kFbsNop:
        suite.mac = crypto::MacAlgorithm::kNull;
        suite.cipher = crypto::CipherAlgorithm::kNone;
        break;
      case StackConfig::kFbsDesMd5:
      case StackConfig::kFbsDesMd5Scalar:
        break;  // default: keyed MD5 + DES-CBC
      case StackConfig::kFbsDes3Md5:
        suite.cipher = crypto::CipherAlgorithm::kDes3Ede;
        break;
      case StackConfig::kFbsMd5Only:
        suite.cipher = crypto::CipherAlgorithm::kNone;
        break;
    }
    return suite;
  }

  struct Host {
    net::Ipv4Address address;
    crypto::DhKeyPair dh;
    std::unique_ptr<core::MasterKeyDaemon> mkd;
    std::unique_ptr<core::KeyManager> keys;
    std::unique_ptr<net::IpStack> stack;
    std::unique_ptr<core::FbsIpMapping> fbs;
    std::unique_ptr<net::UdpService> udp;
  };

  Host& a() { return *a_; }
  Host& b() { return *b_; }
  net::SimNetwork& network() { return net_; }
  util::VirtualClock& clock() { return clock_; }
  util::RandomSource& rng_public() { return rng_; }

 private:
  std::unique_ptr<Host> make_host(const std::string& ip) {
    auto host = std::make_unique<Host>();
    host->address = *net::Ipv4Address::parse(ip);
    const core::Principal principal = core::Principal::from_ipv4(host->address);
    host->dh = crypto::dh_generate(crypto::test_group(), rng_);
    directory_.publish(ca_.issue(
        principal.address, crypto::test_group().name,
        host->dh.public_value.to_bytes_be(crypto::test_group().element_size()),
        0, clock_.now() + util::minutes(1000000)));
    host->mkd = std::make_unique<core::MasterKeyDaemon>(
        principal, host->dh.private_value, crypto::test_group(), ca_,
        directory_, clock_);
    host->keys = std::make_unique<core::KeyManager>(*host->mkd);
    host->stack =
        std::make_unique<net::IpStack>(net_, clock_, host->address);
    host->udp = std::make_unique<net::UdpService>(*host->stack);
    return host;
  }

  util::SplitMix64 rng_;
  util::VirtualClock clock_;
  cert::CertificateAuthority ca_;
  cert::DirectoryService directory_;
  net::SimNetwork net_;
  std::unique_ptr<Host> a_;
  std::unique_ptr<Host> b_;
};

}  // namespace fbs::bench
