// Figure 12: number of simultaneously active flows over time. Paper claim:
// "the number of simultaneous active flows in a host are not exceedingly
// high, and can be easily handled by a modern operating system kernel".
#include <cstdio>

#include "support/figures.hpp"
#include "support/metrics_io.hpp"

using namespace fbs;

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header(
      "Figure 12: active flows over time (five-tuple policy, THRESHOLD=600s)",
      t);

  trace::FlowSimConfig cfg;
  cfg.threshold = util::seconds(600);
  cfg.sample_interval = util::seconds(30);
  const trace::FlowSimResult r = trace::simulate_flows(t, cfg);

  std::printf("%10s %8s  %s\n", "t (min)", "active", "");
  std::size_t peak = 1;
  for (const auto& [time, active] : r.active_series)
    peak = std::max(peak, active);
  for (const auto& [time, active] : r.active_series) {
    const int bar =
        static_cast<int>(50.0 * static_cast<double>(active) /
                         static_cast<double>(peak));
    std::printf("%10.1f %8zu  ", static_cast<double>(time) /
                                     util::kMicrosPerMinute,
                active);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("\npeak active flows: %zu, mean: %.1f across %zu hosts "
              "(paper: modest, easily held in kernel memory)\n",
              r.peak_active, r.mean_active,
              trace::summarize(t).distinct_hosts);

  obs::MetricsRegistry reg;
  reg.counter("fig12.flows").add(r.flows.size());
  reg.counter("fig12.peak_active").add(r.peak_active);
  reg.gauge("fig12.mean_active").set(r.mean_active);
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig12_active_flows");
  return 0;
}
