// Figure 8: timing results. The paper measured ttcp/rcp throughput between
// Pentium 133s on a dedicated 10 Mb/s Ethernet for three configurations:
//   GENERIC      -- stock 4.4BSD IP               (~7,700 kb/s, wire-limited)
//   FBS NOP      -- FBS with nullified crypto     (~= GENERIC)
//   FBS DES+MD5  -- full confidentiality + MAC    (~3,400 kb/s)
// The paper's two claims are (1) FBS adds very little overhead outside the
// cryptographic operations, and (2) the crypto penalty is heavy. Our
// substrate is a userspace simulator on a modern CPU, so absolute numbers
// differ, but the same shape must appear: NOP within a few percent of
// GENERIC-equivalent processing, DES+MD5 several times slower.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "fbs/metrics.hpp"
#include "net/tcp.hpp"
#include "support/harness.hpp"
#include "support/metrics_io.hpp"

namespace {

using namespace fbs;
using bench::StackConfig;
using bench::TwoHostWorld;

const char* slug(StackConfig c) {
  switch (c) {
    case StackConfig::kGeneric: return "generic";
    case StackConfig::kFbsNop: return "fbs_nop";
    case StackConfig::kFbsMd5Only: return "fbs_md5";
    case StackConfig::kFbsDesMd5: return "fbs_des_md5";
    case StackConfig::kFbsDesMd5Scalar: return "fbs_des_md5_scalar";
    case StackConfig::kFbsDes3Md5: return "fbs_des3_md5";
  }
  return "unknown";
}

/// Push one UDP datagram a->b through the full stack and deliver it.
void pump(TwoHostWorld& world, const util::Bytes& payload) {
  world.a().udp->send(world.b().address, 4000, 9000, payload);
  world.network().run();
}

void run_config(benchmark::State& state, StackConfig config) {
  TwoHostWorld world(config);
  std::uint64_t delivered = 0;
  world.b().udp->bind(9000, [&](net::Ipv4Address, std::uint16_t,
                                util::Bytes) { ++delivered; });
  const util::Bytes payload =
      util::SplitMix64(1).next_bytes(static_cast<std::size_t>(state.range(0)));
  // Warm the flow key caches (the steady state Figure 8 measures).
  pump(world, payload);

  for (auto _ : state) pump(world, payload);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  if (delivered == 0) state.SkipWithError("no datagrams delivered");
}

void BM_Generic(benchmark::State& state) {
  run_config(state, StackConfig::kGeneric);
}
void BM_FbsNop(benchmark::State& state) {
  run_config(state, StackConfig::kFbsNop);
}
void BM_FbsMd5Only(benchmark::State& state) {
  run_config(state, StackConfig::kFbsMd5Only);
}
void BM_FbsDesMd5(benchmark::State& state) {
  run_config(state, StackConfig::kFbsDesMd5);
}
void BM_FbsDesMd5Scalar(benchmark::State& state) {
  run_config(state, StackConfig::kFbsDesMd5Scalar);
}
void BM_FbsDes3Md5(benchmark::State& state) {
  run_config(state, StackConfig::kFbsDes3Md5);
}

constexpr int kSizes[] = {64, 512, 1024, 1408};

BENCHMARK(BM_Generic)->Arg(64)->Arg(512)->Arg(1024)->Arg(1408);
BENCHMARK(BM_FbsNop)->Arg(64)->Arg(512)->Arg(1024)->Arg(1408);
BENCHMARK(BM_FbsMd5Only)->Arg(1024)->Arg(1408);
BENCHMARK(BM_FbsDesMd5)->Arg(64)->Arg(512)->Arg(1024)->Arg(1408);
BENCHMARK(BM_FbsDesMd5Scalar)->Arg(1024)->Arg(1408);
BENCHMARK(BM_FbsDes3Md5)->Arg(1024)->Arg(1408);

/// Measure per-packet end-to-end CPU time for one configuration/size.
double seconds_per_packet(StackConfig config, int size, int datagrams) {
  TwoHostWorld world(config);
  world.b().udp->bind(9000,
                      [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  const util::Bytes payload =
      util::SplitMix64(1).next_bytes(static_cast<std::size_t>(size));
  pump(world, payload);  // cache warmup
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < datagrams; ++i) pump(world, payload);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / datagrams;
}

/// ttcp-style summary printed before the google-benchmark runs.
///
/// The paper's testbed was wire-limited: a 10 Mb/s Ethernet carries a 1408B
/// payload in ~1.2 ms, so the P133's few-microsecond FBS NOP overhead was
/// invisible (NOP ~= GENERIC) while its ~0.5 ms/KB crypto pushed the CPU
/// past the wire budget (7700 -> 3400 kb/s). A 2020s CPU runs the whole
/// userspace stack in microseconds, so we report (a) raw per-packet CPU
/// cost -- which verifies claim (1), "FBS incurs very little overhead
/// outside of the cryptographic operations" -- and (b) throughput on an
/// emulated wire chosen, like the paper's, to sit between the plain and
/// crypto processing rates, which recovers the Figure 8 shape.
void print_summary(obs::MetricsRegistry& reg) {
  constexpr int kDatagrams = 3000;
  constexpr double kWireBitsPerSec = 100e6;  // modern analogue of the 10Mb
  std::printf("Figure 8 reproduction\n");
  std::printf("(paper, P133 + 10Mb Ethernet: GENERIC ~7700 kb/s, FBS NOP "
              "~= GENERIC, FBS DES+MD5 ~3400 kb/s)\n\n");

  // Per-suite curves: the paper's three configurations plus the cipher
  // ladder this implementation adds -- MD5-only, DES+MD5 on the scalar
  // core, DES+MD5 with the bitsliced batch path, and 3DES+MD5.
  constexpr int kConfigs = 6;
  double cpu[kConfigs][4] = {};
  const StackConfig configs[kConfigs] = {
      StackConfig::kGeneric,        StackConfig::kFbsNop,
      StackConfig::kFbsMd5Only,     StackConfig::kFbsDesMd5Scalar,
      StackConfig::kFbsDesMd5,      StackConfig::kFbsDes3Md5};

  std::printf("--- per-packet CPU cost (full send+receive path), us ---\n");
  std::printf("%-20s", "payload bytes");
  for (int size : kSizes) std::printf("%12d", size);
  std::printf("\n");
  for (int c = 0; c < kConfigs; ++c) {
    std::printf("%-20s", to_string(configs[c]));
    for (int s = 0; s < 4; ++s) {
      cpu[c][s] = seconds_per_packet(configs[c], kSizes[s], kDatagrams);
      std::printf("%12.2f", cpu[c][s] * 1e6);
      reg.gauge(std::string("fig8.cpu_us_per_pkt.") + slug(configs[c]) +
                "." + std::to_string(kSizes[s]))
          .set(cpu[c][s] * 1e6);
    }
    std::printf("\n");
  }

  const double protocol_overhead = (cpu[1][3] - cpu[0][3]) * 1e6;
  const double crypto_overhead = (cpu[4][3] - cpu[1][3]) * 1e6;
  std::printf("\nclaim (1), @1408B: FBS protocol overhead excluding crypto "
              "= %.2f us/pkt; crypto adds %.2f us/pkt\n"
              "  -> %.1f%% of the FBS cost is cryptography (paper: \"very "
              "little overhead outside of the cryptographic operations\")\n",
              protocol_overhead, crypto_overhead,
              100.0 * crypto_overhead / (protocol_overhead + crypto_overhead));

  std::printf("\n--- throughput on an emulated %.0f Mb/s wire "
              "(min(wire, CPU) per packet), kb/s ---\n",
              kWireBitsPerSec / 1e6);
  std::printf("%-20s", "payload bytes");
  for (int size : kSizes) std::printf("%12d", size);
  std::printf("\n");
  double emu[kConfigs][4];
  for (int c = 0; c < kConfigs; ++c) {
    std::printf("%-20s", to_string(configs[c]));
    for (int s = 0; s < 4; ++s) {
      const double wire_time = kSizes[s] * 8.0 / kWireBitsPerSec;
      const double per_packet = std::max(wire_time, cpu[c][s]);
      emu[c][s] = kSizes[s] * 8.0 / 1000.0 / per_packet;
      std::printf("%12.0f", emu[c][s]);
      reg.gauge(std::string("fig8.emulated_kbps.") + slug(configs[c]) + "." +
                std::to_string(kSizes[s]))
          .set(emu[c][s]);
    }
    std::printf("\n");
  }
  std::printf("\nclaim (2), shape @1408B: NOP/GENERIC = %.2f (paper ~1.0), "
              "DES+MD5/GENERIC = %.2f (paper ~0.44: heavy crypto penalty)\n",
              emu[1][3] / emu[0][3], emu[4][3] / emu[0][3]);
  std::printf("cipher ladder @1408B, us/pkt: DES scalar %.2f -> DES "
              "bitsliced %.2f (%.2fx), 3DES %.2f (%.2fx scalar DES)\n\n",
              cpu[3][3] * 1e6, cpu[4][3] * 1e6, cpu[3][3] / cpu[4][3],
              cpu[5][3] * 1e6, cpu[5][3] / cpu[3][3]);
}

/// Analytic replication of the paper's absolute numbers: steady-state
/// throughput is bounded by the slowest pipeline stage -- the 10 Mb/s wire
/// or the P133's crypto (CryptoLib rates from Section 7.2: DES-CBC
/// 549 kB/s, MD5 7060 kB/s) -- times a ttcp efficiency factor (ACKs,
/// headers, scheduling) fitted once on the GENERIC row.
void print_p133_model() {
  constexpr double kWire = 10e6;        // bits/second
  constexpr double kDes = 549e3;        // bytes/second
  constexpr double kMd5 = 7060e3;       // bytes/second
  constexpr double kEfficiency = 0.80;  // fits GENERIC = 7.7 of 10 Mb/s
  constexpr double kHeaders = 58;       // eth+ip+tcp per packet

  std::printf("--- analytic model with the paper's own P133 rates ---\n");
  std::printf("%-20s %16s %16s\n", "@1408B payload", "model kb/s",
              "paper kb/s");
  struct Row {
    const char* name;
    double crypto_seconds;  // per packet, on the bottleneck CPU
    const char* paper;
  };
  const double p = 1408;
  const Row rows[] = {
      {"GENERIC", 0.0, "~7700"},
      {"FBS NOP", 0.0, "~= GENERIC"},
      {"FBS DES+MD5", p / kDes + p / kMd5, "~3400"},
  };
  for (const Row& row : rows) {
    const double wire_time = (p + kHeaders) * 8.0 / kWire;
    const double per_packet = std::max(wire_time, row.crypto_seconds);
    const double kbps = p * 8.0 / 1000.0 / per_packet * kEfficiency;
    std::printf("%-20s %16.0f %16s\n", row.name, kbps, row.paper);
  }
  std::printf("(the crypto-vs-wire balance, not the hardware, sets Figure "
              "8's shape -- the model lands on the paper's numbers)\n\n");
}

/// The paper's second tool was rcp: a TCP bulk copy. Move 1 MB over our TCP
/// (handshake, windowing, retransmission machinery all active) per config.
void print_tcp_summary() {
  constexpr std::size_t kFileSize = 1 << 20;
  std::printf("--- rcp-style TCP transfer of %zu KB (CPU cost incl. TCP "
              "machinery) ---\n",
              kFileSize / 1024);
  std::printf("%-20s %14s %14s %14s\n", "", "wall time ms", "CPU MB/s",
              "segments");
  for (StackConfig config :
       {StackConfig::kGeneric, StackConfig::kFbsNop,
        StackConfig::kFbsDesMd5}) {
    TwoHostWorld world(config);
    net::TcpService a_tcp(*world.a().stack, world.network(),
                          world.rng_public());
    net::TcpService b_tcp(*world.b().stack, world.network(),
                          world.rng_public());
    std::size_t received = 0;
    b_tcp.listen(5001, [&](std::shared_ptr<net::TcpConnection> conn) {
      conn->on_receive(
          [&, conn](util::BytesView d) { received += d.size(); });
    });
    auto client = a_tcp.connect(world.b().address, 5001);
    const util::Bytes file = util::SplitMix64(2).next_bytes(kFileSize);

    const auto start = std::chrono::steady_clock::now();
    client->send(file);
    world.network().run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    std::printf("%-20s %14.1f %14.1f %14llu   %s\n", to_string(config),
                elapsed.count() * 1e3,
                static_cast<double>(received) / 1e6 / elapsed.count(),
                static_cast<unsigned long long>(
                    client->counters().segments_sent),
                received == kFileSize ? "" : "INCOMPLETE!");
  }
  std::printf("\n");
}

/// A separate instrumented run with stage tracing enabled: the timed runs
/// above stay unperturbed (tracing adds clock reads to the datagram path),
/// while the snapshot still carries real per-stage latency quantiles and
/// the full cache/keying counter set for the DES+MD5 configuration.
void emit_metrics(obs::MetricsRegistry& reg) {
  TwoHostWorld world(StackConfig::kFbsDesMd5, 1997, /*trace_stages=*/true);
  world.b().udp->bind(9000,
                      [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  world.a().fbs->register_metrics(reg, "a");
  world.b().fbs->register_metrics(reg, "b");
  world.network().register_metrics(reg, "net");
  const util::Bytes payload = util::SplitMix64(1).next_bytes(1408);
  for (int i = 0; i < 500; ++i) pump(world, payload);
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig8_throughput");
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsRegistry reg;
  print_summary(reg);
  print_p133_model();
  print_tcp_summary();
  emit_metrics(reg);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
