// Flow-policy granularity ablation (Sections 2.2, 4, 7.4): what the unit of
// protection costs and buys. The same campus trace is classified under
//   - per-datagram  (every datagram its own flow -- maximal isolation,
//                    maximal key work: the Section 2.2 world)
//   - five-tuple    (the paper's conversation policy)
//   - host-pair     (SKIP/host-keying granularity -- minimal key work,
//                    maximal blast radius on key compromise)
// and we report key derivations (cost) and the exposure radius of a single
// compromised flow key (risk), plus the live state each needs.
#include <cstdio>
#include <map>
#include <set>

#include "fbs/fam.hpp"
#include "support/figures.hpp"
#include "support/metrics_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace fbs;

core::Datagram to_datagram(const trace::PacketRecord& r) {
  core::Datagram d;
  d.attrs = r.tuple;
  return d;
}

struct PolicyReport {
  std::string name;
  std::uint64_t flows = 0;          // keys derived over the trace
  std::uint64_t max_exposure_pkts = 0;   // biggest single-key packet count
  std::uint64_t max_exposure_bytes = 0;  // biggest single-key byte count
  std::uint64_t max_conversations_per_key = 0;  // distinct 5-tuples on a key
  std::size_t peak_active = 0;
};

PolicyReport run_policy(const trace::Trace& t, core::FlowPolicy& policy,
                        const std::string& name) {
  PolicyReport report;
  report.name = name;
  std::map<core::Sfl, std::pair<std::uint64_t, std::uint64_t>> per_key;
  std::map<core::Sfl, std::set<util::Bytes>> tuples_per_key;
  util::TimeUs last_sample = 0;
  for (const auto& r : t) {
    const auto m = policy.map(to_datagram(r), r.time);
    auto& [pkts, bytes] = per_key[m.sfl];
    ++pkts;
    bytes += r.size;
    tuples_per_key[m.sfl].insert(r.tuple.encode());
    if (r.time - last_sample > util::seconds(30)) {
      report.peak_active =
          std::max(report.peak_active, policy.active_flows(r.time));
      last_sample = r.time;
    }
  }
  report.flows = policy.stats().flows_created;
  for (const auto& [sfl, usage] : per_key) {
    report.max_exposure_pkts = std::max(report.max_exposure_pkts, usage.first);
    report.max_exposure_bytes =
        std::max(report.max_exposure_bytes, usage.second);
  }
  for (const auto& [sfl, tuples] : tuples_per_key)
    report.max_conversations_per_key = std::max<std::uint64_t>(
        report.max_conversations_per_key, tuples.size());
  return report;
}

}  // namespace

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header(
      "Flow-policy granularity ablation (unit of protection)", t);

  util::SplitMix64 rng(7);
  core::SflAllocator alloc(rng);

  std::vector<PolicyReport> reports;
  {
    core::PerDatagramPolicy p(alloc);
    reports.push_back(run_policy(t, p, "per-datagram"));
  }
  {
    core::FiveTuplePolicy p(4096, util::seconds(600), alloc);
    reports.push_back(run_policy(t, p, "five-tuple/600s (FBS)"));
  }
  {
    core::HostPairPolicy p(4096, util::seconds(600), alloc);
    reports.push_back(run_policy(t, p, "host-pair"));
  }

  std::printf("%-24s %12s %16s %18s %14s %12s\n", "policy", "keys derived",
              "max pkts/key", "max bytes/key", "max convs/key", "peak active");
  obs::MetricsRegistry reg;
  const char* slugs[] = {"per_datagram", "five_tuple", "host_pair"};
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    std::printf("%-24s %12llu %16llu %18llu %14llu %12zu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.flows),
                static_cast<unsigned long long>(r.max_exposure_pkts),
                static_cast<unsigned long long>(r.max_exposure_bytes),
                static_cast<unsigned long long>(r.max_conversations_per_key),
                r.peak_active);
    const std::string p = std::string("policy.") + slugs[i];
    reg.counter(p + ".keys_derived").add(r.flows);
    reg.counter(p + ".max_pkts_per_key").add(r.max_exposure_pkts);
    reg.counter(p + ".max_bytes_per_key").add(r.max_exposure_bytes);
    reg.counter(p + ".max_conversations_per_key")
        .add(r.max_conversations_per_key);
    reg.counter(p + ".peak_active").add(r.peak_active);
  }
  bench::write_metrics(reg.snapshot(), "fbs_bench_ablation_policy");

  std::printf(
      "\nreading: five-tuple sits between the extremes -- %llux fewer key\n"
      "derivations than per-datagram, while a compromised key exposes one\n"
      "conversation instead of every byte between a host pair (Section 7.4:\n"
      "\"a compromised (flow) key only affects datagrams within that "
      "flow\").\n",
      static_cast<unsigned long long>(
          reports[0].flows / std::max<std::uint64_t>(1, reports[1].flows)));
  return 0;
}
