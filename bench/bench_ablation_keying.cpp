// Keying-scheme ablation (Section 7.4 and DESIGN.md section 4): what does a
// protected datagram cost under each keying architecture, in steady state?
//
//   FBS (combined FST+TFKC)   key derivation once per flow, 1 table probe
//   FBS (split FAM + TFKC)    same crypto, 2 probes (the Section 7.2 ablation)
//   SKIP-like                 key derivation (MD5) on EVERY datagram
//   host-pair + per-dgram key BBS-generated key per datagram (the paper's
//                             Section 2.2 bottleneck) vs an LCG stand-in
//   KDC session               steady state after the setup round trip
//   host-pair raw             cheapest and weakest (no MAC)
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/hostpair.hpp"
#include "baselines/kdc.hpp"
#include "baselines/perdatagram.hpp"
#include "baselines/skiplike.hpp"
#include "crypto/bbs.hpp"
#include "fbs/engine.hpp"
#include "fbs/metrics.hpp"
#include "support/harness.hpp"
#include "support/metrics_io.hpp"

#include <cstdio>

namespace {

using namespace fbs;

/// Protocol-level world (no IP stack): two keyed principals.
struct KeyedPair {
  KeyedPair()
      : rng(77),
        clock(util::minutes(1000)),
        ca(512, rng),
        directory(0, nullptr) {
    auto make = [&](const char* ip) {
      Node n;
      n.principal = core::Principal::from_ipv4(*net::Ipv4Address::parse(ip));
      n.dh = crypto::dh_generate(crypto::test_group(), rng);
      directory.publish(ca.issue(
          n.principal.address, crypto::test_group().name,
          n.dh.public_value.to_bytes_be(crypto::test_group().element_size()),
          0, clock.now() + util::minutes(1000000)));
      n.mkd = std::make_unique<core::MasterKeyDaemon>(
          n.principal, n.dh.private_value, crypto::test_group(), ca,
          directory, clock);
      n.keys = std::make_unique<core::KeyManager>(*n.mkd);
      return n;
    };
    a = make("10.0.0.1");
    b = make("10.0.0.2");
  }

  core::Datagram datagram(std::size_t payload) {
    core::Datagram d;
    d.source = a.principal;
    d.destination = b.principal;
    d.attrs.protocol = 17;
    d.attrs.source_address = d.source.ipv4().value;
    d.attrs.source_port = 4000;
    d.attrs.destination_address = d.destination.ipv4().value;
    d.attrs.destination_port = 9000;
    d.body = rng.next_bytes(payload);
    return d;
  }

  struct Node {
    core::Principal principal;
    crypto::DhKeyPair dh;
    std::unique_ptr<core::MasterKeyDaemon> mkd;
    std::unique_ptr<core::KeyManager> keys;
  };

  util::SplitMix64 rng;
  util::VirtualClock clock;
  cert::CertificateAuthority ca;
  cert::DirectoryService directory;
  Node a, b;
};

constexpr std::size_t kPayload = 64;  // small datagrams: key-handling cost visible, not drowned by bulk DES

void BM_FbsCombined(benchmark::State& state) {
  KeyedPair world;
  core::FbsConfig cfg;  // combined_fst_tfkc = true
  core::FbsEndpoint sender(world.a.principal, cfg, *world.a.keys, world.clock,
                           world.rng);
  const core::Datagram d = world.datagram(kPayload);
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d, true));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_FbsCombined);

void BM_FbsSplit(benchmark::State& state) {
  KeyedPair world;
  core::FbsConfig cfg;
  cfg.combined_fst_tfkc = false;
  core::FbsEndpoint sender(world.a.principal, cfg, *world.a.keys, world.clock,
                           world.rng);
  const core::Datagram d = world.datagram(kPayload);
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d, true));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_FbsSplit);

void BM_SkipLike(benchmark::State& state) {
  KeyedPair world;
  baselines::SkipLikeProtocol sender(world.a.principal, *world.a.keys,
                                     world.rng);
  const core::Datagram d = world.datagram(kPayload);
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_SkipLike);

void BM_HostPairRaw(benchmark::State& state) {
  KeyedPair world;
  baselines::HostPairProtocol sender(world.a.principal, *world.a.keys,
                                     world.rng);
  const core::Datagram d = world.datagram(kPayload);
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_HostPairRaw);

void BM_PerDatagramKeyLcg(benchmark::State& state) {
  KeyedPair world;
  util::Lcg48 key_rng(5);  // INSECURE stand-in, shows the best case
  util::SplitMix64 iv_rng(6);
  baselines::PerDatagramKeyProtocol sender(world.a.principal, *world.a.keys,
                                           key_rng, iv_rng);
  const core::Datagram d = world.datagram(kPayload);
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_PerDatagramKeyLcg);

void BM_PerDatagramKeyBbs(benchmark::State& state) {
  // The faithful configuration the paper warns about: cryptographically
  // random per-datagram keys from the quadratic-residue generator.
  KeyedPair world;
  util::SplitMix64 seeder(7);
  crypto::BlumBlumShub bbs = crypto::BlumBlumShub::generate(512, seeder);
  util::SplitMix64 iv_rng(8);
  baselines::PerDatagramKeyProtocol sender(world.a.principal, *world.a.keys,
                                           bbs, iv_rng);
  const core::Datagram d = world.datagram(kPayload);
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_PerDatagramKeyBbs);

void BM_KdcSteadyState(benchmark::State& state) {
  KeyedPair world;
  baselines::KeyDistributionCenter kdc(world.rng, util::seconds(1),
                                       &world.clock);
  baselines::KdcSessionProtocol sender(world.a.principal,
                                       kdc.enroll(world.a.principal), kdc,
                                       world.rng);
  (void)kdc.enroll(world.b.principal);
  const core::Datagram d = world.datagram(kPayload);
  (void)sender.protect(d);  // pay the setup round trip outside the loop
  for (auto _ : state) benchmark::DoNotOptimize(sender.protect(d));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_KdcSteadyState);

void BM_FbsNewFlowEveryDatagram(benchmark::State& state) {
  // Worst case for FBS: every datagram starts a new flow (per-datagram
  // policy cost = flow-key MD5 each time). Compare with BM_FbsCombined to
  // see what the flow abstraction buys.
  KeyedPair world;
  core::FbsConfig cfg;
  core::FbsEndpoint sender(world.a.principal, cfg, *world.a.keys, world.clock,
                           world.rng);
  core::Datagram d = world.datagram(kPayload);
  std::uint16_t port = 1;
  for (auto _ : state) {
    d.attrs.source_port = port++;  // forces a new flow every time
    benchmark::DoNotOptimize(sender.protect(d, true));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPayload);
}
BENCHMARK(BM_FbsNewFlowEveryDatagram);

/// Section 2's core argument, quantified: how many extra messages and how
/// much hard state does each scheme need to let M hosts hold C concurrent
/// conversations? FBS: zero messages, zero hard state -- datagram semantics
/// preserved. Session/KDC schemes pay per peer or per session.
void print_setup_cost_table() {
  std::printf("Setup-cost model: M hosts, each talking to every other, C "
              "conversations per pair\n");
  std::printf("%-28s %22s %24s\n", "scheme", "setup messages",
              "hard state entries/host");
  std::printf("%-28s %22s %24s\n", "FBS (zero-message keying)", "0",
              "0  (all state soft)");
  std::printf("%-28s %22s %24s\n", "SKIP-like", "0",
              "0  (also zero-message)");
  std::printf("%-28s %22s %24s\n", "KDC session (Kerberos-ish)",
              "2 x pairs x C  (RTT each)", "2 x peers x C");
  std::printf("%-28s %22s %24s\n", "DH exchange (Photuris-ish)",
              ">= 4 x pairs x C", "peers x C");
  std::printf("\nexample M=32, C=4: pairs=496 -> KDC needs 3968 setup "
              "messages and blocking round trips before the first byte;\n"
              "FBS sends the first protected datagram immediately "
              "(Section 2.1's efficiency-vs-semantics tradeoff dissolved).\n\n");
}

/// Instrumented steady-state pass (separate from the timed loops above):
/// both FBS table layouts protect the same stream with stage tracing on,
/// so the snapshot carries per-stage latencies and the cache/FAM counters
/// that explain the combined-vs-split gap.
void emit_metrics() {
  KeyedPair world;
  obs::MetricsRegistry reg;
  core::FbsConfig combined_cfg;
  combined_cfg.trace_stages = true;
  core::FbsEndpoint combined(world.a.principal, combined_cfg, *world.a.keys,
                             world.clock, world.rng);
  core::FbsConfig split_cfg;
  split_cfg.combined_fst_tfkc = false;
  split_cfg.trace_stages = true;
  core::FbsEndpoint split(world.a.principal, split_cfg, *world.a.keys,
                          world.clock, world.rng);
  combined.register_metrics(reg, "combined");
  split.register_metrics(reg, "split");
  const core::Datagram d = world.datagram(kPayload);
  for (int i = 0; i < 1000; ++i) {
    (void)combined.protect(d, true);
    (void)split.protect(d, true);
  }
  bench::write_metrics(reg.snapshot(), "fbs_bench_ablation_keying");
}

}  // namespace

int main(int argc, char** argv) {
  print_setup_cost_table();
  emit_metrics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
