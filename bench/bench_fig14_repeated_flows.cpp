// Figure 14: repeated flows -- different flows carrying the same five-tuple
// -- vs THRESHOLD. Paper claim: "the number of repeated flows ... drops off
// quickly as THRESHOLD increases", which together with Figure 13 argues for
// THRESHOLD values of 300-600s as a good differentiation/stability balance.
#include <cstdio>

#include "support/figures.hpp"
#include "support/metrics_io.hpp"

using namespace fbs;

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header("Figure 14: repeated flows vs THRESHOLD", t);

  std::printf("%12s %14s %12s %16s\n", "THRESHOLD", "repeated flows",
              "total flows", "repeated share");
  std::uint64_t first = 0, last = 0;
  const int thresholds_s[] = {60, 150, 300, 600, 900, 1200};
  obs::MetricsRegistry reg;
  for (int ts : thresholds_s) {
    trace::FlowSimConfig cfg;
    cfg.threshold = util::seconds(ts);
    const trace::FlowSimResult r = trace::simulate_flows(t, cfg);
    std::printf("%11ds %14llu %12zu %15.1f%%\n", ts,
                static_cast<unsigned long long>(r.repeated_flows),
                r.flows.size(),
                100.0 * static_cast<double>(r.repeated_flows) /
                    static_cast<double>(r.flows.size()));
    const std::string p = "fig14.t" + std::to_string(ts);
    reg.counter(p + ".repeated_flows").add(r.repeated_flows);
    reg.counter(p + ".flows").add(r.flows.size());
    if (ts == thresholds_s[0]) first = r.repeated_flows;
    last = r.repeated_flows;
  }
  std::printf("\nshape check: repeated flows %llu at %ds -> %llu at %ds "
              "(paper: drops off quickly as THRESHOLD increases)\n",
              static_cast<unsigned long long>(first), thresholds_s[0],
              static_cast<unsigned long long>(last),
              thresholds_s[sizeof(thresholds_s) / sizeof(int) - 1]);
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig14_repeated_flows");
  return 0;
}
