// Figure 13: active flows for different THRESHOLD values. Paper claims:
// active flows grow as THRESHOLD goes 300s -> 600s (flows take longer to
// expire), but "the policy becomes relatively insensitive to the THRESHOLD
// value when it gets higher than 900s".
#include <cstdio>

#include "support/figures.hpp"
#include "support/metrics_io.hpp"

using namespace fbs;

int main() {
  const trace::Trace t = bench::campus_trace();
  bench::print_trace_header(
      "Figure 13: active flows for different THRESHOLD values", t);

  const int thresholds_s[] = {300, 600, 900, 1200};
  std::printf("%12s %12s %12s %12s\n", "THRESHOLD", "mean active",
              "peak active", "total flows");
  double mean300 = 0, mean600 = 0, mean900 = 0, mean1200 = 0;
  obs::MetricsRegistry reg;
  for (int ts : thresholds_s) {
    trace::FlowSimConfig cfg;
    cfg.threshold = util::seconds(ts);
    cfg.sample_interval = util::seconds(30);
    const trace::FlowSimResult r = trace::simulate_flows(t, cfg);
    std::printf("%11ds %12.1f %12zu %12zu\n", ts, r.mean_active,
                r.peak_active, r.flows.size());
    const std::string p = "fig13.t" + std::to_string(ts);
    reg.gauge(p + ".mean_active").set(r.mean_active);
    reg.counter(p + ".peak_active").add(r.peak_active);
    reg.counter(p + ".flows").add(r.flows.size());
    if (ts == 300) mean300 = r.mean_active;
    if (ts == 600) mean600 = r.mean_active;
    if (ts == 900) mean900 = r.mean_active;
    if (ts == 1200) mean1200 = r.mean_active;
  }

  std::printf("\nshape check: growth 300->600s = %+.0f%%, 900->1200s = "
              "%+.0f%% (paper: grows first, insensitive above ~900s)\n",
              100.0 * (mean600 - mean300) / mean300,
              100.0 * (mean1200 - mean900) / mean900);
  bench::write_metrics(reg.snapshot(), "fbs_bench_fig13_threshold");
  return 0;
}
