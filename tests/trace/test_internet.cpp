// Internet-scale trace generator: determinism (same seed, same packets),
// streaming-vs-collected equivalence, timestamp monotonicity, and the
// distinguishing structure of each regime -- Zipf skew, the flash-crowd
// window pulling excess arrivals to the top server, and the DDoS window
// emitting never-repeating spoofed single-packet flows.
#include "trace/internet.hpp"

#include <gtest/gtest.h>

#include <map>

#include "trace/record.hpp"

namespace fbs::trace {
namespace {

constexpr std::uint32_t kClientBase = 0x0A000000u;
constexpr std::uint32_t kServerBase = 0xC6600000u;
constexpr std::uint32_t kSpoofBase = 0x40000000u;

InternetWorkloadConfig small_config() {
  InternetWorkloadConfig cfg;
  cfg.seed = 1234;
  cfg.duration = util::seconds(30);
  cfg.clients = 500;
  cfg.servers = 50;
  cfg.flows_per_second = 100.0;
  cfg.mean_packets_per_flow = 6.0;
  cfg.mean_packet_gap_ms = 20.0;
  return cfg;
}

bool same_record(const PacketRecord& a, const PacketRecord& b) {
  return a.time == b.time && a.size == b.size &&
         a.tuple.protocol == b.tuple.protocol &&
         a.tuple.source_address == b.tuple.source_address &&
         a.tuple.source_port == b.tuple.source_port &&
         a.tuple.destination_address == b.tuple.destination_address &&
         a.tuple.destination_port == b.tuple.destination_port;
}

TEST(InternetTrace, SameSeedSameTrace) {
  const Trace a = generate_internet_trace(small_config());
  const Trace b = generate_internet_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(same_record(a[i], b[i])) << "packet " << i;
}

TEST(InternetTrace, DifferentSeedDifferentTrace) {
  InternetWorkloadConfig other = small_config();
  other.seed = 4321;
  const Trace a = generate_internet_trace(small_config());
  const Trace b = generate_internet_trace(other);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = !same_record(a[i], b[i]);
  EXPECT_TRUE(differs);
}

TEST(InternetTrace, StreamingMatchesCollected) {
  const Trace collected = generate_internet_trace(small_config());
  InternetTraceGenerator gen(small_config());
  PacketRecord r;
  std::size_t i = 0;
  while (gen.next(r)) {
    ASSERT_LT(i, collected.size());
    ASSERT_TRUE(same_record(r, collected[i])) << "packet " << i;
    ++i;
  }
  EXPECT_EQ(i, collected.size());
  // Exhaustion is sticky.
  EXPECT_FALSE(gen.next(r));
}

TEST(InternetTrace, TimestampsNondecreasingAndWithinDuration) {
  const InternetWorkloadConfig cfg = small_config();
  InternetTraceGenerator gen(cfg);
  PacketRecord r;
  util::TimeUs prev = 0;
  while (gen.next(r)) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
  }
  EXPECT_LE(prev, cfg.duration);
  EXPECT_GT(gen.flows_started(), 0u);
}

TEST(InternetTrace, AddressPlanSeparatesPopulations) {
  const Trace t = generate_internet_trace(small_config());
  for (const PacketRecord& r : t) {
    EXPECT_GE(r.tuple.source_address, kClientBase);
    EXPECT_LT(r.tuple.source_address, kClientBase + 500);
    EXPECT_GE(r.tuple.destination_address, kServerBase);
    EXPECT_LT(r.tuple.destination_address, kServerBase + 50);
    EXPECT_GT(r.size, 0u);
    EXPECT_LE(r.size, 1460u);
  }
}

TEST(InternetTrace, ZipfSkewsTowardLowRanks) {
  util::SplitMix64 rng(99);
  ZipfSampler zipf(1000, 1.0);
  std::uint64_t low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t r = zipf.sample(rng);
    ASSERT_LT(r, 1000u);
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  // With s=1 over 1000 ranks, the top 10 ranks carry ~39% of the mass and
  // the bottom half ~9%; leave wide margins.
  EXPECT_GT(low, 4000u);
  EXPECT_LT(high, 4000u);
}

TEST(InternetTrace, UniformExponentIsUnskewed) {
  util::SplitMix64 rng(100);
  ZipfSampler uniform(1000, 0.0);
  std::uint64_t low = 0;
  for (int i = 0; i < 20000; ++i)
    if (uniform.sample(rng) < 100) ++low;
  EXPECT_NEAR(static_cast<double>(low), 2000.0, 400.0);
}

TEST(InternetTrace, FlashCrowdRaisesArrivalsTowardTopServer) {
  InternetWorkloadConfig cfg = small_config();
  cfg.duration = util::seconds(60);
  cfg.flash_start = util::seconds(30);
  cfg.flash_length = util::seconds(20);
  cfg.flash_multiplier = 5.0;
  const Trace t = generate_internet_trace(cfg);

  // Compare the flash window against an equal-length quiet window. Every
  // flow opens with a 40-byte first packet (data packets are >= 64 bytes),
  // so size == 40 is an exact flow-arrival marker.
  std::uint64_t quiet_arrivals = 0, flash_arrivals = 0, flash_to_victim = 0;
  for (const PacketRecord& r : t) {
    if (r.size != 40) continue;
    if (r.time < util::seconds(20)) {
      ++quiet_arrivals;
    } else if (r.time >= cfg.flash_start &&
               r.time < cfg.flash_start + cfg.flash_length) {
      ++flash_arrivals;
      if (r.tuple.destination_address == kServerBase) ++flash_to_victim;
    }
  }
  EXPECT_GT(flash_arrivals, quiet_arrivals * 3);  // 5x rate, wide margin
  // The excess (4/5 of flash arrivals) all targets server rank 0.
  EXPECT_GT(flash_to_victim * 2, flash_arrivals);
}

TEST(InternetTrace, DdosWindowEmitsSpoofedSinglePacketFlows) {
  InternetWorkloadConfig cfg = small_config();
  cfg.duration = util::seconds(60);
  cfg.ddos_start = util::seconds(30);
  cfg.ddos_length = util::seconds(10);
  cfg.ddos_flows_per_second = 500.0;
  const Trace t = generate_internet_trace(cfg);

  // Spoofed sources sit in [kSpoofBase, kSpoofBase + population), disjoint
  // from the (much lower) client block.
  std::map<std::uint32_t, std::uint32_t> spoof_packets;  // per spoofed source
  std::uint64_t outside_window = 0;
  for (const PacketRecord& r : t) {
    if (r.tuple.source_address < kSpoofBase) continue;  // legit traffic
    EXPECT_LT(r.tuple.source_address, kSpoofBase + cfg.ddos_spoof_population);
    EXPECT_EQ(r.tuple.destination_address, kServerBase);  // the victim
    EXPECT_EQ(r.size, 40u);
    if (r.time < cfg.ddos_start || r.time >= cfg.ddos_start + cfg.ddos_length)
      ++outside_window;
    ++spoof_packets[r.tuple.source_address];
  }
  EXPECT_EQ(outside_window, 0u);
  // ~5000 attack flows drawn from a 4M spoof space: virtually all sources
  // appear exactly once (each packet is a fresh flow).
  EXPECT_GT(spoof_packets.size(), 4000u);
  std::uint64_t repeats = 0;
  for (const auto& [src, n] : spoof_packets)
    if (n > 1) ++repeats;
  EXPECT_LT(repeats, spoof_packets.size() / 100);
}

TEST(InternetTrace, DdosCounterTracksAttackFlows) {
  InternetWorkloadConfig cfg = small_config();
  cfg.ddos_start = util::seconds(5);
  cfg.ddos_length = util::seconds(5);
  cfg.ddos_flows_per_second = 200.0;
  InternetTraceGenerator gen(cfg);
  PacketRecord r;
  std::uint64_t spoofed = 0;
  while (gen.next(r))
    if (r.tuple.source_address >= kSpoofBase) ++spoofed;
  EXPECT_EQ(gen.ddos_flows(), spoofed);
  EXPECT_NEAR(static_cast<double>(spoofed), 1000.0, 300.0);
}

TEST(InternetTrace, StreamingStateStaysSmall) {
  // The point of streaming generation: state is CDF tables + active
  // sessions, not the trace. 30 s at 100 flows/s with ~6-packet flows
  // keeps well under a thousand concurrent sessions.
  InternetTraceGenerator gen(small_config());
  PacketRecord r;
  std::size_t packets = 0;
  while (gen.next(r)) ++packets;
  EXPECT_GT(packets, 1000u);
  EXPECT_LT(gen.approx_memory_bytes(), std::size_t{1} << 20);
}

}  // namespace
}  // namespace fbs::trace
