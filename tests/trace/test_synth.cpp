#include "trace/synth.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fbs::trace {
namespace {

LanWorkloadConfig small_lan() {
  LanWorkloadConfig cfg;
  cfg.duration = util::minutes(10);
  cfg.desktops = 8;
  return cfg;
}

TEST(Synth, LanTraceIsSortedAndWithinHorizon) {
  const Trace t = generate_lan_trace(small_lan());
  ASSERT_FALSE(t.empty());
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_LE(t[i - 1].time, t[i].time);
  EXPECT_LT(t.back().time, util::minutes(10));
  EXPECT_GE(t.front().time, 0);
}

TEST(Synth, DeterministicForSeed) {
  const Trace a = generate_lan_trace(small_lan());
  const Trace b = generate_lan_trace(small_lan());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].tuple, b[i].tuple);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  LanWorkloadConfig c1 = small_lan(), c2 = small_lan();
  c2.seed = 31337;
  const Trace a = generate_lan_trace(c1);
  const Trace b = generate_lan_trace(c2);
  EXPECT_NE(a.size(), b.size());
}

TEST(Synth, LanContainsExpectedApplicationPorts) {
  const Trace t = generate_lan_trace(small_lan());
  std::set<std::uint16_t> dports;
  for (const auto& r : t) dports.insert(r.tuple.destination_port);
  EXPECT_TRUE(dports.contains(23));    // telnet
  EXPECT_TRUE(dports.contains(2049));  // nfs
  EXPECT_TRUE(dports.contains(53));    // dns
}

TEST(Synth, LanMixesTcpAndUdp) {
  const Trace t = generate_lan_trace(small_lan());
  bool tcp = false, udp = false;
  for (const auto& r : t) {
    if (r.tuple.protocol == 6) tcp = true;
    if (r.tuple.protocol == 17) udp = true;
  }
  EXPECT_TRUE(tcp);
  EXPECT_TRUE(udp);
}

TEST(Synth, LanIsBidirectional) {
  const Trace t = generate_lan_trace(small_lan());
  std::set<std::uint32_t> sources, destinations;
  for (const auto& r : t) {
    sources.insert(r.tuple.source_address);
    destinations.insert(r.tuple.destination_address);
  }
  // Servers appear as sources too (replies), not just sinks.
  int overlap = 0;
  for (auto s : sources)
    if (destinations.contains(s)) ++overlap;
  EXPECT_GT(overlap, 4);
}

TEST(Synth, WwwTraceTargetsPort80) {
  WwwWorkloadConfig cfg;
  cfg.duration = util::minutes(30);
  cfg.hits_per_day = 40000;  // scale up so a 30-min window has traffic
  const Trace t = generate_www_trace(cfg);
  ASSERT_FALSE(t.empty());
  std::size_t http = 0;
  for (const auto& r : t)
    if (r.tuple.destination_port == 80 || r.tuple.source_port == 80) ++http;
  EXPECT_EQ(http, t.size());
}

TEST(Synth, WwwHitRateRoughlyMatchesConfig) {
  WwwWorkloadConfig cfg;
  cfg.duration = util::minutes(60);
  cfg.hits_per_day = 24000;  // => ~1000/hour
  const Trace t = generate_www_trace(cfg);
  // Count request packets (client->server port 80).
  std::size_t hits = 0;
  for (const auto& r : t)
    if (r.tuple.destination_port == 80) ++hits;
  EXPECT_GT(hits, 700u);
  EXPECT_LT(hits, 1400u);
}

TEST(Synth, MergePreservesAllPacketsSorted) {
  const Trace a = generate_lan_trace(small_lan());
  WwwWorkloadConfig wcfg;
  wcfg.duration = util::minutes(10);
  const Trace b = generate_www_trace(wcfg);
  const Trace merged = merge_traces({&a, &b});
  EXPECT_EQ(merged.size(), a.size() + b.size());
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LE(merged[i - 1].time, merged[i].time);
}

TEST(Synth, CampusTraceCombinesBothWorkloads) {
  const Trace t = generate_campus_trace(7, util::minutes(10));
  bool lan = false, www = false;
  for (const auto& r : t) {
    if (r.tuple.destination_port == 2049 || r.tuple.source_port == 2049)
      lan = true;
    if (r.tuple.destination_port == 80 || r.tuple.source_port == 80)
      www = true;
  }
  EXPECT_TRUE(lan);
  EXPECT_TRUE(www);
}

TEST(Synth, HeavyTailPresent) {
  // A few large transfers should dominate bytes: top 10% of packets by
  // size carry a disproportionate share (bulk FTP/NFS/WWW bodies).
  const Trace t = generate_lan_trace(small_lan());
  std::uint64_t total = 0, large = 0;
  for (const auto& r : t) {
    total += r.size;
    if (r.size >= 1024) large += r.size;
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(large) / static_cast<double>(total), 0.5);
}

}  // namespace
}  // namespace fbs::trace
