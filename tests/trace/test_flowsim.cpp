#include "trace/flowsim.hpp"

#include <gtest/gtest.h>

#include "trace/synth.hpp"

namespace fbs::trace {
namespace {

PacketRecord rec(util::TimeUs t, std::uint16_t sport, std::uint32_t size) {
  PacketRecord r;
  r.time = t;
  r.tuple.protocol = 6;
  r.tuple.source_address = 0x0A000001;
  r.tuple.source_port = sport;
  r.tuple.destination_address = 0x0A000002;
  r.tuple.destination_port = 23;
  r.size = size;
  return r;
}

FlowSimConfig config_with_threshold(util::TimeUs threshold) {
  FlowSimConfig cfg;
  cfg.threshold = threshold;
  cfg.sample_interval = util::seconds(1);
  return cfg;
}

TEST(FlowSim, SingleFlowAggregates) {
  Trace t{rec(util::seconds(0), 1000, 10), rec(util::seconds(1), 1000, 20),
          rec(util::seconds(2), 1000, 30)};
  const auto r = simulate_flows(t, config_with_threshold(util::seconds(600)));
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_EQ(r.flows[0].packets, 3u);
  EXPECT_EQ(r.flows[0].bytes, 60u);
  EXPECT_EQ(r.flows[0].duration(), util::seconds(2));
  EXPECT_EQ(r.total_packets, 3u);
  EXPECT_EQ(r.total_bytes, 60u);
  EXPECT_EQ(r.repeated_flows, 0u);
}

TEST(FlowSim, GapSplitsFlowAndCountsRepeat) {
  Trace t{rec(util::seconds(0), 1000, 10),
          rec(util::seconds(700), 1000, 20)};  // gap > 600s
  const auto r = simulate_flows(t, config_with_threshold(util::seconds(600)));
  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_EQ(r.repeated_flows, 1u);
  EXPECT_NE(r.flows[0].sfl, r.flows[1].sfl);
  EXPECT_EQ(r.flows[0].tuple, r.flows[1].tuple);
}

TEST(FlowSim, DistinctTuplesDistinctFlowsNoRepeats) {
  Trace t{rec(util::seconds(0), 1000, 10), rec(util::seconds(0), 2000, 10),
          rec(util::seconds(0), 3000, 10)};
  const auto r = simulate_flows(t, config_with_threshold(util::seconds(600)));
  EXPECT_EQ(r.flows.size(), 3u);
  EXPECT_EQ(r.repeated_flows, 0u);
}

TEST(FlowSim, PacketConservation) {
  const Trace t = generate_campus_trace(11, util::minutes(10));
  const auto r = simulate_flows(t, config_with_threshold(util::seconds(600)));
  std::uint64_t flow_packets = 0, flow_bytes = 0;
  for (const auto& f : r.flows) {
    flow_packets += f.packets;
    flow_bytes += f.bytes;
  }
  EXPECT_EQ(flow_packets, r.total_packets);
  EXPECT_EQ(flow_bytes, r.total_bytes);
  EXPECT_EQ(r.total_packets, t.size());
}

TEST(FlowSim, ActiveSeriesPeaksAndMeans) {
  Trace t{rec(util::seconds(0), 1000, 10), rec(util::seconds(0), 2000, 10)};
  const auto r = simulate_flows(t, config_with_threshold(util::seconds(10)));
  EXPECT_EQ(r.peak_active, 2u);
  EXPECT_GT(r.mean_active, 0.0);
  EXPECT_LE(r.mean_active, 2.0);
  // Flow is active from first packet until last + threshold.
  ASSERT_FALSE(r.active_series.empty());
  EXPECT_EQ(r.active_series.front().second, 2u);
  EXPECT_EQ(r.active_series.back().second, 0u);
}

TEST(FlowSim, HigherThresholdNeverMoreFlows) {
  const Trace t = generate_campus_trace(13, util::minutes(15));
  std::size_t prev = SIZE_MAX;
  for (int ts : {60, 300, 600, 900, 1200}) {
    const auto r = simulate_flows(t, config_with_threshold(util::seconds(ts)));
    EXPECT_LE(r.flows.size(), prev) << ts;
    prev = r.flows.size();
  }
}

TEST(FlowSim, HigherThresholdNeverMoreRepeats) {
  const Trace t = generate_campus_trace(17, util::minutes(15));
  std::uint64_t prev = UINT64_MAX;
  for (int ts : {60, 300, 600, 900, 1200}) {
    const auto r = simulate_flows(t, config_with_threshold(util::seconds(ts)));
    EXPECT_LE(r.repeated_flows, prev) << ts;
    prev = r.repeated_flows;
  }
}

TEST(FlowSim, EmptyTrace) {
  const auto r = simulate_flows({}, config_with_threshold(util::seconds(1)));
  EXPECT_TRUE(r.flows.empty());
  EXPECT_TRUE(r.active_series.empty());
  EXPECT_EQ(r.total_packets, 0u);
}

TEST(FlowSim, CacheMissRateDecreasesWithSize) {
  const Trace t = generate_campus_trace(19, util::minutes(15));
  const auto points = simulate_cache_misses(t, util::seconds(600),
                                            {2, 8, 32, 128, 512});
  ASSERT_EQ(points.size(), 5u);
  double prev_send = 1.1, prev_recv = 1.1;
  for (const auto& p : points) {
    EXPECT_LE(p.send.miss_rate(), prev_send + 0.02) << p.cache_size;
    EXPECT_LE(p.receive.miss_rate(), prev_recv + 0.02) << p.cache_size;
    prev_send = p.send.miss_rate();
    prev_recv = p.receive.miss_rate();
  }
  // Figure 11's claim: the miss rate drops off sharply even for small sizes.
  EXPECT_LT(points.back().send.miss_rate(), 0.2);
}

TEST(FlowSim, LargeCacheOnlyColdMisses) {
  const Trace t = generate_campus_trace(23, util::minutes(10));
  const auto points =
      simulate_cache_misses(t, util::seconds(600), {8192}, 4);
  ASSERT_EQ(points.size(), 1u);
  // With a huge cache, essentially every miss is compulsory.
  EXPECT_EQ(points[0].send.capacity_misses, 0u);
  EXPECT_LE(points[0].send.collision_misses,
            points[0].send.cold_misses / 5 + 1);
}

TEST(FlowSim, CacheAccessCountsMatchTrace) {
  const Trace t = generate_campus_trace(29, util::minutes(5));
  const auto points = simulate_cache_misses(t, util::seconds(600), {64});
  EXPECT_EQ(points[0].send.accesses(), t.size());
  EXPECT_EQ(points[0].receive.accesses(), t.size());
}

}  // namespace
}  // namespace fbs::trace
