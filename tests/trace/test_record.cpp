#include "trace/record.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fbs::trace {
namespace {

PacketRecord rec(util::TimeUs t, const char* saddr, std::uint16_t sport,
                 const char* daddr, std::uint16_t dport, std::uint32_t size,
                 std::uint8_t proto = 6) {
  PacketRecord r;
  r.time = t;
  r.tuple.protocol = proto;
  r.tuple.source_address = net::Ipv4Address::parse(saddr)->value;
  r.tuple.source_port = sport;
  r.tuple.destination_address = net::Ipv4Address::parse(daddr)->value;
  r.tuple.destination_port = dport;
  r.size = size;
  return r;
}

TEST(TraceRecord, SortTraceOrdersByTimeStably) {
  Trace t{rec(300, "1.1.1.1", 1, "2.2.2.2", 2, 10),
          rec(100, "1.1.1.1", 1, "2.2.2.2", 2, 20),
          rec(100, "3.3.3.3", 3, "4.4.4.4", 4, 30)};
  sort_trace(t);
  EXPECT_EQ(t[0].size, 20u);
  EXPECT_EQ(t[1].size, 30u);  // stable: keeps insertion order at t=100
  EXPECT_EQ(t[2].size, 10u);
}

TEST(TraceRecord, SaveLoadRoundTrip) {
  Trace t{rec(123456, "10.1.0.11", 1024, "10.1.1.1", 23, 64),
          rec(234567, "172.16.0.2", 33000, "10.2.0.1", 80, 1460, 17)};
  std::stringstream ss;
  save_trace(t, ss);
  const auto loaded = load_trace(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].time, 123456);
  EXPECT_EQ((*loaded)[0].tuple, t[0].tuple);
  EXPECT_EQ((*loaded)[1].size, 1460u);
  EXPECT_EQ((*loaded)[1].tuple.protocol, 17);
}

TEST(TraceRecord, LoadSkipsComments) {
  std::stringstream ss("# header\n100 6 1.1.1.1 1 2.2.2.2 2 10\n\n# x\n");
  const auto loaded = load_trace(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(TraceRecord, LoadRejectsMalformedLines) {
  std::stringstream bad_addr("100 6 999.1.1.1 1 2.2.2.2 2 10\n");
  EXPECT_FALSE(load_trace(bad_addr).has_value());
  std::stringstream short_line("100 6 1.1.1.1\n");
  EXPECT_FALSE(load_trace(short_line).has_value());
  std::stringstream bad_port("100 6 1.1.1.1 99999 2.2.2.2 2 10\n");
  EXPECT_FALSE(load_trace(bad_port).has_value());
}

TEST(TraceRecord, SummarizeCountsDistinctTuplesAndHosts) {
  Trace t{rec(100, "1.1.1.1", 1, "2.2.2.2", 2, 10),
          rec(200, "1.1.1.1", 1, "2.2.2.2", 2, 20),
          rec(300, "1.1.1.1", 9, "3.3.3.3", 2, 30)};
  const TraceSummary s = summarize(t);
  EXPECT_EQ(s.packets, 3u);
  EXPECT_EQ(s.bytes, 60u);
  EXPECT_EQ(s.first, 100);
  EXPECT_EQ(s.last, 300);
  EXPECT_EQ(s.distinct_tuples, 2u);
  EXPECT_EQ(s.distinct_hosts, 3u);
}

TEST(TraceRecord, SummarizeEmptyTrace) {
  const TraceSummary s = summarize({});
  EXPECT_EQ(s.packets, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

}  // namespace
}  // namespace fbs::trace
