#include "bignum/prime.hpp"

#include <gtest/gtest.h>

#include "crypto/dh.hpp"

namespace fbs::bignum {
namespace {

TEST(Prime, SmallPrimesAccepted) {
  util::SplitMix64 rng(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 97ull, 251ull, 257ull,
                          65537ull, 1000000007ull})
    EXPECT_TRUE(is_probable_prime(Uint(p), rng)) << p;
}

TEST(Prime, SmallCompositesRejected) {
  util::SplitMix64 rng(2);
  for (std::uint64_t n : {0ull, 1ull, 4ull, 6ull, 9ull, 15ull, 91ull,
                          561ull /*Carmichael*/, 1000000008ull})
    EXPECT_FALSE(is_probable_prime(Uint(n), rng)) << n;
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Classic Fermat pseudoprimes that trip weak tests.
  util::SplitMix64 rng(3);
  for (std::uint64_t n : {561ull, 1105ull, 1729ull, 2465ull, 2821ull,
                          6601ull, 8911ull})
    EXPECT_FALSE(is_probable_prime(Uint(n), rng)) << n;
}

TEST(Prime, MersennePrimeM61) {
  util::SplitMix64 rng(4);
  EXPECT_TRUE(is_probable_prime(Uint((1ull << 61) - 1), rng));
  EXPECT_FALSE(is_probable_prime(Uint((1ull << 62) - 1), rng));
}

TEST(Prime, OakleyGroupPrimesAreProbablePrime) {
  // The RFC 2409 MODP primes used for zero-message keying.
  util::SplitMix64 rng(5);
  EXPECT_TRUE(is_probable_prime(crypto::oakley_group1().p, rng, 4));
}

TEST(Prime, GeneratedPrimeHasRequestedSizeAndPassesMr) {
  util::SplitMix64 rng(6);
  const Uint p = generate_prime(96, rng);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
  util::SplitMix64 check_rng(7);
  EXPECT_TRUE(is_probable_prime(p, check_rng));
}

TEST(Prime, GeneratedBlumPrimeIs3Mod4) {
  util::SplitMix64 rng(8);
  const Uint p = generate_blum_prime(64, rng);
  EXPECT_EQ(p % Uint(4), Uint(3));
  util::SplitMix64 check_rng(9);
  EXPECT_TRUE(is_probable_prime(p, check_rng));
}

}  // namespace
}  // namespace fbs::bignum
