#include "bignum/uint.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::bignum {
namespace {

Uint U(const char* hex) { return *Uint::from_hex(hex); }

TEST(Uint, DefaultIsZero) {
  Uint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(Uint, FromU64RoundTrip) {
  EXPECT_EQ(Uint(0x123456789ABCDEFull).low_u64(), 0x123456789ABCDEFull);
  EXPECT_EQ(Uint(1).to_hex(), "1");
  EXPECT_EQ(Uint(0xFFFFFFFFFFFFFFFFull).to_hex(), "ffffffffffffffff");
}

TEST(Uint, HexParseRejectsGarbage) {
  EXPECT_FALSE(Uint::from_hex("").has_value());
  EXPECT_FALSE(Uint::from_hex("xyz").has_value());
  EXPECT_TRUE(Uint::from_hex("0xAB").has_value());
  EXPECT_TRUE(Uint::from_hex("AB CD").has_value());  // formatted constants
}

TEST(Uint, HexRoundTripLarge) {
  const char* hex = "f0e1d2c3b4a5968778695a4b3c2d1e0f00112233445566778899aabb";
  EXPECT_EQ(U(hex).to_hex(), hex);
}

TEST(Uint, BytesBeRoundTrip) {
  const util::Bytes b{0x01, 0x02, 0x03, 0x04, 0x05};
  const Uint v = Uint::from_bytes_be(b);
  EXPECT_EQ(v.to_hex(), "102030405");
  EXPECT_EQ(v.to_bytes_be(), b);
  EXPECT_EQ(v.to_bytes_be(8), (util::Bytes{0, 0, 0, 1, 2, 3, 4, 5}));
}

TEST(Uint, ZeroBytesBe) {
  EXPECT_TRUE(Uint().to_bytes_be().empty());
  EXPECT_EQ(Uint().to_bytes_be(4), (util::Bytes{0, 0, 0, 0}));
}

TEST(Uint, ComparisonOrdering) {
  EXPECT_LT(Uint(1), Uint(2));
  EXPECT_GT(U("100000000"), U("ffffffff"));  // crosses a limb boundary
  EXPECT_EQ(Uint(42), Uint(42));
  EXPECT_LT(Uint(), Uint(1));
}

TEST(Uint, AdditionCarriesAcrossLimbs) {
  EXPECT_EQ(U("ffffffff") + Uint(1), U("100000000"));
  EXPECT_EQ(U("ffffffffffffffffffffffff") + Uint(1),
            U("1000000000000000000000000"));
}

TEST(Uint, SubtractionBorrowsAcrossLimbs) {
  EXPECT_EQ(U("100000000") - Uint(1), U("ffffffff"));
  EXPECT_EQ(U("1000000000000000000000000") - Uint(1),
            U("ffffffffffffffffffffffff"));
  EXPECT_TRUE((Uint(5) - Uint(5)).is_zero());
}

TEST(Uint, MultiplicationKnownProduct) {
  EXPECT_EQ(Uint(0xFFFFFFFFull) * Uint(0xFFFFFFFFull),
            U("fffffffe00000001"));
  EXPECT_EQ(U("123456789abcdef0") * U("fedcba9876543210"),
            U("121fa00ad77d7422236d88fe5618cf00"));
}

TEST(Uint, MultiplyByZeroAndOne) {
  const Uint x = U("deadbeefcafebabe12345678");
  EXPECT_TRUE((x * Uint()).is_zero());
  EXPECT_EQ(x * Uint(1), x);
}

TEST(Uint, ShiftsInverse) {
  const Uint x = U("deadbeefcafebabe");
  for (std::size_t s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((x << s) >> s, x) << "shift " << s;
  }
  EXPECT_EQ(Uint(1) << 128, U("100000000000000000000000000000000"));
}

TEST(Uint, ShiftRightBelowZeroBits) {
  EXPECT_TRUE((Uint(1) >> 1).is_zero());
  EXPECT_TRUE((U("ff") >> 100).is_zero());
}

TEST(Uint, BitAccess) {
  const Uint x = U("8000000000000001");
  EXPECT_TRUE(x.bit(0));
  EXPECT_TRUE(x.bit(63));
  EXPECT_FALSE(x.bit(1));
  EXPECT_FALSE(x.bit(1000));
  EXPECT_EQ(x.bit_length(), 64u);
}

TEST(Uint, DivModSingleLimb) {
  const auto dm = U("123456789abcdef0").divmod(Uint(1000));
  EXPECT_EQ(dm.quotient, Uint(0x123456789abcdef0ull / 1000));
  EXPECT_EQ(dm.remainder, Uint(0x123456789abcdef0ull % 1000));
  EXPECT_EQ(dm.quotient * Uint(1000) + dm.remainder, U("123456789abcdef0"));
}

TEST(Uint, DivModMultiLimbIdentity) {
  util::SplitMix64 rng(2024);
  for (int i = 0; i < 200; ++i) {
    const Uint a = Uint::random_bits(rng, 1 + rng.next_below(300));
    const Uint b = Uint::random_bits(rng, 1 + rng.next_below(200));
    const auto dm = a.divmod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(Uint, DivModDividendSmallerThanDivisor) {
  const auto dm = Uint(5).divmod(U("10000000000000000"));
  EXPECT_TRUE(dm.quotient.is_zero());
  EXPECT_EQ(dm.remainder, Uint(5));
}

TEST(Uint, DivModExactDivision) {
  const Uint b = U("fedcba9876543210");
  const Uint a = b * U("1234567890");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient, U("1234567890"));
  EXPECT_TRUE(dm.remainder.is_zero());
}

TEST(Uint, DivModAddBackBranch) {
  // Crafted dividend/divisor pairs near qhat-overestimation territory:
  // top limbs equal forces qhat == base-1 paths.
  const Uint a = U("80000000000000000000000000000000");
  const Uint b = U("800000000000000000000001");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(Uint, MulModAgreesWithDirect) {
  const Uint m = U("fffffffb");
  const Uint a = U("123456789");
  const Uint b = U("abcdef123");
  EXPECT_EQ(Uint::mulmod(a, b, m), (a * b) % m);
}

TEST(Uint, PowMod) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(Uint::powmod(Uint(2), Uint(10), Uint(1000)), Uint(24));
  // Fermat: a^(p-1) = 1 mod p for prime p
  const Uint p(1000000007);
  EXPECT_EQ(Uint::powmod(Uint(123456), p - Uint(1), p), Uint(1));
  // x^0 = 1
  EXPECT_EQ(Uint::powmod(U("deadbeef"), Uint(), p), Uint(1));
  // mod 1 = 0
  EXPECT_TRUE(Uint::powmod(Uint(5), Uint(5), Uint(1)).is_zero());
}

TEST(Uint, PowModLargeModulus) {
  // 2^(2^64) mod M, checked against square-chain: powmod consistency via
  // (a^2)^2... compare powmod(a, 4, m) with explicit squaring.
  const Uint m = U("c90fdaa22168c234c4c6628b80dc1cd1");
  const Uint a = U("123456789abcdef0fedcba9876543210");
  const Uint a2 = Uint::mulmod(a, a, m);
  const Uint a4 = Uint::mulmod(a2, a2, m);
  EXPECT_EQ(Uint::powmod(a, Uint(4), m), a4);
}

TEST(Uint, Gcd) {
  EXPECT_EQ(Uint::gcd(Uint(48), Uint(18)), Uint(6));
  EXPECT_EQ(Uint::gcd(Uint(17), Uint(13)), Uint(1));
  EXPECT_EQ(Uint::gcd(Uint(0), Uint(5)), Uint(5));
  EXPECT_EQ(Uint::gcd(Uint(5), Uint(0)), Uint(5));
}

TEST(Uint, ModInv) {
  // 3 * 4 = 12 = 1 mod 11
  EXPECT_EQ(*Uint::modinv(Uint(3), Uint(11)), Uint(4));
  // Not coprime -> no inverse
  EXPECT_FALSE(Uint::modinv(Uint(6), Uint(9)).has_value());
  // Random property check
  util::SplitMix64 rng(7);
  const Uint m(1000000007);  // prime
  for (int i = 0; i < 50; ++i) {
    const Uint a = Uint::random_below(rng, m - Uint(1)) + Uint(1);
    const auto inv = Uint::modinv(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(Uint::mulmod(a, *inv, m), Uint(1));
  }
}

TEST(Uint, RandomBitsExactLength) {
  util::SplitMix64 rng(3);
  for (std::size_t bits : {1u, 8u, 32u, 33u, 64u, 100u, 512u}) {
    const Uint v = Uint::random_bits(rng, bits);
    EXPECT_EQ(v.bit_length(), bits);
  }
}

TEST(Uint, RandomBelowInRange) {
  util::SplitMix64 rng(4);
  const Uint bound = U("10000000001");
  for (int i = 0; i < 100; ++i)
    EXPECT_LT(Uint::random_below(rng, bound), bound);
}

TEST(Uint, DivModByOneAndSelf) {
  const Uint x = U("deadbeefcafebabe1234");
  const auto by_one = x.divmod(Uint(1));
  EXPECT_EQ(by_one.quotient, x);
  EXPECT_TRUE(by_one.remainder.is_zero());
  const auto by_self = x.divmod(x);
  EXPECT_EQ(by_self.quotient, Uint(1));
  EXPECT_TRUE(by_self.remainder.is_zero());
}

TEST(Uint, PowModBaseLargerThanModulus) {
  // base is reduced mod m first.
  EXPECT_EQ(Uint::powmod(Uint(1007), Uint(2), Uint(1000)),
            Uint(7 * 7 % 1000));
}

TEST(Uint, ZeroEdgeCases) {
  EXPECT_TRUE((Uint() + Uint()).is_zero());
  EXPECT_TRUE((Uint() * U("ffffffffffffffff")).is_zero());
  EXPECT_TRUE((Uint() >> 100).is_zero());
  EXPECT_TRUE((Uint() << 100).is_zero());
  EXPECT_EQ(Uint().divmod(Uint(7)).remainder, Uint());
  EXPECT_FALSE(Uint().is_odd());
  EXPECT_TRUE(Uint().is_even());
  EXPECT_EQ(Uint().low_u64(), 0u);
}

TEST(Uint, LowU64TruncatesBigValues) {
  EXPECT_EQ(U("123456789abcdef0fedcba98").low_u64(), 0x9abcdef0fedcba98ull);
}

TEST(Uint, AdditionCommutesAndAssociates) {
  util::SplitMix64 rng(5);
  for (int i = 0; i < 50; ++i) {
    const Uint a = Uint::random_bits(rng, 1 + rng.next_below(128));
    const Uint b = Uint::random_bits(rng, 1 + rng.next_below(128));
    const Uint c = Uint::random_bits(rng, 1 + rng.next_below(128));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
  }
}

}  // namespace
}  // namespace fbs::bignum
