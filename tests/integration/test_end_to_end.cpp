// Whole-system integration: FBS-protected hosts over a lossy, duplicating,
// reordering simulated network, exercising the full path
//   app -> UDP -> IP output [FBSSend] -> fragmentation -> wire (attacker)
//   -> reassembly -> [FBSReceive] -> UDP -> app
#include <gtest/gtest.h>

#include "fbs/ip_map.hpp"
#include "net/simnet.hpp"
#include "net/udp.hpp"
#include "support/world.hpp"

namespace fbs {
namespace {

using testing::TestWorld;

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest()
      : world_(4242),
        net_(world_.clock, 321),
        a_node_(world_.add_node("a", "10.0.0.1")),
        b_node_(world_.add_node("b", "10.0.0.2")),
        a_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.1")),
        b_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.2")),
        a_fbs_(a_stack_, core::IpMappingConfig{}, *a_node_.keys, world_.clock,
               world_.rng),
        b_fbs_(b_stack_, core::IpMappingConfig{}, *b_node_.keys, world_.clock,
               world_.rng),
        a_udp_(a_stack_),
        b_udp_(b_stack_) {}

  TestWorld world_;
  net::SimNetwork net_;
  TestWorld::Node& a_node_;
  TestWorld::Node& b_node_;
  net::IpStack a_stack_;
  net::IpStack b_stack_;
  core::FbsIpMapping a_fbs_;
  core::FbsIpMapping b_fbs_;
  net::UdpService a_udp_;
  net::UdpService b_udp_;
};

TEST_F(EndToEndTest, BulkTransferOverCleanLink) {
  std::vector<util::Bytes> received;
  b_udp_.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    received.push_back(std::move(p));
  });
  constexpr int kDatagrams = 200;
  for (int i = 0; i < kDatagrams; ++i) {
    util::Bytes payload = world_.rng.next_bytes(1024);
    payload[0] = static_cast<std::uint8_t>(i);
    ASSERT_TRUE(a_udp_.send(b_stack_.address(), 4000, 9000, payload));
  }
  net_.run();
  EXPECT_EQ(received.size(), static_cast<std::size_t>(kDatagrams));
  // One flow, one key derivation on each side.
  EXPECT_EQ(a_fbs_.endpoint().send_stats().flow_keys_derived, 1u);
  EXPECT_EQ(b_fbs_.endpoint().receive_stats().flow_keys_derived, 1u);
}

TEST_F(EndToEndTest, DatagramSemanticsUnderLossDupReorder) {
  // Section 3: loss, duplication and reordering are features of the
  // datagram service FBS must not disturb. Every datagram that arrives
  // must decrypt and verify independently of its neighbours' fate.
  net::LinkParams rough;
  rough.loss = 0.25;
  rough.duplicate = 0.15;
  rough.jitter = util::seconds(1);
  net_.set_default_link(rough);

  std::set<std::string> received;
  std::size_t deliveries = 0;
  b_udp_.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    received.insert(util::to_string(p));
    ++deliveries;
  });
  constexpr int kDatagrams = 400;
  for (int i = 0; i < kDatagrams; ++i) {
    a_udp_.send(b_stack_.address(), 4000, 9000,
                util::to_bytes("msg-" + std::to_string(i)));
  }
  net_.run();
  // Loss subset delivered, every delivered payload intact.
  EXPECT_GT(received.size(), 200u);
  EXPECT_LT(received.size(), 400u);
  EXPECT_GT(deliveries, received.size());  // duplicates got through too
  for (const auto& msg : received) EXPECT_EQ(msg.substr(0, 4), "msg-");
  // No MAC failures: corruption never introduced, only loss/dup/reorder.
  EXPECT_EQ(b_fbs_.endpoint().receive_stats().rejected_bad_mac, 0u);
}

TEST_F(EndToEndTest, FragmentedSecretDatagramsUnderLoss) {
  net::LinkParams lossy;
  lossy.loss = 0.1;
  net_.set_default_link(lossy);
  std::vector<std::size_t> sizes;
  b_udp_.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    sizes.push_back(p.size());
  });
  constexpr int kDatagrams = 60;
  for (int i = 0; i < kDatagrams; ++i)
    a_udp_.send(b_stack_.address(), 4000, 9000, util::Bytes(6000, 'x'));
  net_.run();
  // ~0.9^5 of 5-fragment datagrams survive; all arrivals are complete.
  EXPECT_GT(sizes.size(), 10u);
  EXPECT_LT(sizes.size(), 60u);
  for (std::size_t s : sizes) EXPECT_EQ(s, 6000u);
}

TEST_F(EndToEndTest, ManyConcurrentFlowsKeepSeparation) {
  std::map<std::uint16_t, std::set<std::string>> by_port;
  for (std::uint16_t port = 9000; port < 9016; ++port) {
    b_udp_.bind(port, [&, port](net::Ipv4Address, std::uint16_t,
                                util::Bytes p) {
      by_port[port].insert(util::to_string(p));
    });
  }
  for (int round = 0; round < 5; ++round) {
    for (std::uint16_t port = 9000; port < 9016; ++port) {
      a_udp_.send(b_stack_.address(), 4000, port,
                  util::to_bytes("port-" + std::to_string(port)));
    }
  }
  net_.run();
  EXPECT_EQ(by_port.size(), 16u);
  for (const auto& [port, messages] : by_port) {
    ASSERT_EQ(messages.size(), 1u);
    EXPECT_EQ(*messages.begin(), "port-" + std::to_string(port));
  }
  // 16 distinct flows -> 16 key derivations, not 80.
  EXPECT_EQ(a_fbs_.endpoint().send_stats().flow_keys_derived, 16u);
}

TEST_F(EndToEndTest, ThirdHostCannotReadOrForge) {
  auto& m_node = world_.add_node("mallet", "10.0.0.66");
  net::IpStack m_stack(net_, world_.clock,
                       *net::Ipv4Address::parse("10.0.0.66"));
  core::FbsIpMapping m_fbs(m_stack, core::IpMappingConfig{}, *m_node.keys,
                           world_.clock, world_.rng);
  net::UdpService m_udp(m_stack);

  // Mallet records a genuine a->b frame off the wire.
  util::Bytes recorded;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address to, util::Bytes& f) {
    if (to == b_stack_.address() && recorded.empty()) recorded = f;
    return net::SimNetwork::TapVerdict::kPass;
  });
  b_udp_.bind(9000, [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  a_udp_.send(b_stack_.address(), 4000, 9000, util::to_bytes("for bob only"));
  net_.run();
  ASSERT_FALSE(recorded.empty());

  // Mallet cannot decrypt: the payload is DES-encrypted under K_f(a->b),
  // derived from K_{a,b} which mallet cannot compute. Structural check:
  // mallet's own master key with b differs from a's.
  const auto k_mb = m_node.keys->master_key(b_node_.principal);
  const auto k_ab = a_node_.keys->master_key(b_node_.principal);
  ASSERT_TRUE(k_mb && k_ab);
  EXPECT_NE(*k_mb, *k_ab);

  // Mallet re-sends the recorded frame with a rewritten IP source claiming
  // to be mallet (so b derives K_{m,b}): MAC must fail.
  const auto parsed = net::Ipv4Header::parse(recorded);
  ASSERT_TRUE(parsed.has_value());
  net::Ipv4Header spoofed = parsed->header;
  spoofed.source = m_stack.address();
  net_.inject(b_stack_.address(), spoofed.serialize(parsed->payload));
  net_.run();
  const auto& rejected = b_fbs_.counters().in_rejected;
  EXPECT_EQ(rejected[static_cast<std::size_t>(core::ReceiveError::kBadMac)] +
                rejected[static_cast<std::size_t>(
                    core::ReceiveError::kDecryptFailed)],
            1u);
}

TEST_F(EndToEndTest, MixedFbsAndBypassTrafficCoexist) {
  // A host talks FBS to b and bypass (plain) to the directory host at once.
  const auto dir_ip = *net::Ipv4Address::parse("10.0.0.200");
  core::IpMappingConfig cfg;
  cfg.bypass_hosts = {dir_ip};
  auto& c_node = world_.add_node("c", "10.0.0.3");
  net::IpStack c_stack(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.3"));
  core::FbsIpMapping c_fbs(c_stack, cfg, *c_node.keys, world_.clock,
                           world_.rng);
  net::UdpService c_udp(c_stack);

  net::IpStack dir_stack(net_, world_.clock, dir_ip);
  net::UdpService dir_udp(dir_stack);
  int dir_got = 0, b_got = 0;
  dir_udp.bind(389,
               [&](net::Ipv4Address, std::uint16_t, util::Bytes) { ++dir_got; });
  b_udp_.bind(9000,
              [&](net::Ipv4Address, std::uint16_t, util::Bytes) { ++b_got; });

  c_udp.send(dir_ip, 1, 389, util::to_bytes("plain fetch"));
  c_udp.send(b_stack_.address(), 1, 9000, util::to_bytes("secured"));
  net_.run();
  EXPECT_EQ(dir_got, 1);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_fbs.counters().out_bypassed, 1u);
  EXPECT_EQ(c_fbs.counters().out_protected, 1u);
}

TEST_F(EndToEndTest, SoftStateSurvivesCacheWipe) {
  // Datagram semantics: wiping every receiver cache mid-stream must not
  // break the stream -- keys are re-derived from the sfl in the next
  // datagram (that is what "soft state" means).
  int delivered = 0;
  b_udp_.bind(9000,
              [&](net::Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  a_udp_.send(b_stack_.address(), 4000, 9000, util::to_bytes("one"));
  net_.run();
  EXPECT_EQ(delivered, 1);

  // Simulate a receiver restart: same principal and private value, but a
  // brand new stack with empty PVC/MKC/RFKC caches.
  core::MasterKeyDaemon mkd2(b_node_.principal, b_node_.dh.private_value,
                             crypto::test_group(), world_.ca, world_.directory,
                             world_.clock);
  core::KeyManager keys2(mkd2);
  net::IpStack b2_stack(net_, world_.clock,
                        *net::Ipv4Address::parse("10.0.0.2"));
  core::FbsIpMapping b2_fbs(b2_stack, core::IpMappingConfig{}, keys2,
                            world_.clock, world_.rng);
  net::UdpService b2_udp(b2_stack);
  int delivered2 = 0;
  b2_udp.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered2;
  });
  a_udp_.send(b_stack_.address(), 4000, 9000, util::to_bytes("two"));
  net_.run();
  EXPECT_EQ(delivered2, 1);
}

}  // namespace
}  // namespace fbs
