// The paper's actual measurement scenario: TCP bulk transfer (ttcp/rcp)
// running over FBS-protected IP. Exercises the tcp_output.c fix -- TCP
// sizes DF segments from the security-hook-adjusted payload budget -- and
// end-to-end reliability with cryptography underneath.
#include <gtest/gtest.h>

#include "fbs/ip_map.hpp"
#include "net/simnet.hpp"
#include "net/tcp.hpp"
#include "support/world.hpp"

namespace fbs {
namespace {

using testing::TestWorld;

const net::Ipv4Address kA = *net::Ipv4Address::parse("10.0.0.1");
const net::Ipv4Address kB = *net::Ipv4Address::parse("10.0.0.2");

class TcpOverFbsTest : public ::testing::Test {
 protected:
  TcpOverFbsTest()
      : world_(777),
        net_(world_.clock, 55),
        a_node_(world_.add_node("a", "10.0.0.1")),
        b_node_(world_.add_node("b", "10.0.0.2")),
        a_stack_(net_, world_.clock, kA),
        b_stack_(net_, world_.clock, kB),
        a_fbs_(a_stack_, core::IpMappingConfig{}, *a_node_.keys, world_.clock,
               world_.rng),
        b_fbs_(b_stack_, core::IpMappingConfig{}, *b_node_.keys, world_.clock,
               world_.rng),
        a_tcp_(a_stack_, net_, world_.rng),
        b_tcp_(b_stack_, net_, world_.rng) {}

  TestWorld world_;
  net::SimNetwork net_;
  TestWorld::Node& a_node_;
  TestWorld::Node& b_node_;
  net::IpStack a_stack_;
  net::IpStack b_stack_;
  core::FbsIpMapping a_fbs_;
  core::FbsIpMapping b_fbs_;
  net::TcpService a_tcp_;
  net::TcpService b_tcp_;
};

TEST_F(TcpOverFbsTest, HandshakeCompletesThroughFbs) {
  std::shared_ptr<net::TcpConnection> server;
  b_tcp_.listen(80, [&](std::shared_ptr<net::TcpConnection> c) { server = c; });
  auto client = a_tcp_.connect(kB, 80);
  net_.run();
  EXPECT_EQ(client->state(), net::TcpConnection::State::kEstablished);
  ASSERT_NE(server, nullptr);
  // Handshake segments were FBS-protected too.
  EXPECT_GE(a_fbs_.counters().out_protected, 2u);
  EXPECT_GE(b_fbs_.counters().in_accepted, 2u);
}

TEST_F(TcpOverFbsTest, TtcpStyleBulkTransfer) {
  util::Bytes received;
  b_tcp_.listen(5001, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_receive([&, conn](util::BytesView d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto client = a_tcp_.connect(kB, 5001);
  const util::Bytes data = world_.rng.next_bytes(256 * 1024);
  client->send(data);
  net_.run();
  EXPECT_EQ(received, data);
  // Every segment was encrypted and MAC'ed -- zero integrity rejects.
  const auto& rej = b_fbs_.counters().in_rejected;
  for (std::size_t i = 0; i < rej.size(); ++i) EXPECT_EQ(rej[i], 0u) << i;
  // The whole transfer rode one FBS flow in each direction.
  EXPECT_EQ(a_fbs_.endpoint().send_stats().flow_keys_derived, 1u);
}

TEST_F(TcpOverFbsTest, MssHonorsFbsOverheadNoDfDrops) {
  // The tcp_output fix: MSS shrinks by the FBS header (+ padding) so DF
  // segments pass untouched. Without the fix segments would exceed the MTU
  // after header insertion and be dropped (DF forbids fragmenting).
  util::Bytes received;
  b_tcp_.listen(5001, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_receive([&, conn](util::BytesView d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto client = a_tcp_.connect(kB, 5001);
  // MSS visibly smaller than the no-FBS value.
  EXPECT_EQ(client->mss(), 1500u - net::Ipv4Header::kSize -
                               a_fbs_.header_overhead() -
                               net::TcpHeader::kSize);
  client->send(util::Bytes(100'000, 't'));
  net_.run();
  EXPECT_EQ(received.size(), 100'000u);
  EXPECT_EQ(a_stack_.counters().df_drops, 0u);
}

TEST_F(TcpOverFbsTest, UnpatchedMssStallsExactlyLikeTheBsdBug) {
  // Simulate the pre-fix behaviour: a sender that sizes segments from the
  // raw MTU (ignoring the FBS header) and sets DF. Every full-size packet
  // must be dropped at the output hook boundary -- the bug the paper had to
  // patch tcp_output.c for.
  const std::size_t naive_payload = 1500 - net::Ipv4Header::kSize;  // no FBS
  const util::Bytes segment(naive_payload, 'x');
  EXPECT_FALSE(a_stack_.output(kB, net::IpProto::kTcp, segment,
                               /*dont_fragment=*/true));
  EXPECT_EQ(a_stack_.counters().df_drops, 1u);
}

TEST_F(TcpOverFbsTest, BulkTransferOverLossyProtectedLink) {
  net::LinkParams rough;
  rough.loss = 0.08;
  rough.jitter = util::TimeUs{10'000};
  net_.set_default_link(rough);
  util::Bytes received;
  b_tcp_.listen(5001, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_receive([&, conn](util::BytesView d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto client = a_tcp_.connect(kB, 5001);
  const util::Bytes data = world_.rng.next_bytes(64 * 1024);
  client->send(data);
  net_.run();
  EXPECT_EQ(received, data);
  EXPECT_GT(client->counters().retransmissions, 0u);
  // TCP retransmissions are fresh FBS datagrams (new confounder, same
  // flow); none were rejected as replays.
  EXPECT_EQ(b_fbs_.counters().in_rejected[static_cast<std::size_t>(
                core::ReceiveError::kReplay)],
            0u);
}

TEST_F(TcpOverFbsTest, LongLivedConnectionSpansMultipleFlows) {
  // Section 7.1: "a connection may be broken up into multiple flows" -- a
  // TELNET-like connection with a quiet period longer than THRESHOLD
  // resumes on a fresh flow, transparently to TCP.
  util::Bytes received;
  std::shared_ptr<net::TcpConnection> server;
  b_tcp_.listen(23, [&](std::shared_ptr<net::TcpConnection> conn) {
    server = conn;
    conn->on_receive([&, conn](util::BytesView d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto client = a_tcp_.connect(kB, 23);
  client->send(util::to_bytes("before the quiet period\n"));
  net_.run();

  world_.clock.advance(util::seconds(601));  // beyond THRESHOLD

  client->send(util::to_bytes("after the quiet period\n"));
  net_.run();
  EXPECT_EQ(util::to_string(received),
            "before the quiet period\nafter the quiet period\n");
  // Two (or more) flow keys derived for the one connection's direction.
  EXPECT_GE(a_fbs_.endpoint().send_stats().flow_keys_derived, 2u);
}

}  // namespace
}  // namespace fbs
