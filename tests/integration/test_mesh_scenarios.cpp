// Mesh survival scenarios (DESIGN.md section 5g): FBS traffic crossing a
// routed multi-hop transit fabric while the fabric itself misbehaves.
//
// Four families, each a seeded deterministic soak:
//   1. Congestion collapse -- a DES+MD5 stream through a 2 Mb/s bottleneck
//      at 2x offered load, per queue discipline: queues stay bounded, every
//      frame is accounted, goodput degrades gracefully (RED keeps >= 50% of
//      the uncongested baseline).
//   2. Rekey during path failover -- the primary diamond path flaps while
//      the flow is mid-rekey, the directory is down, and the receiver loses
//      its key caches; the handshake must survive the reroute and no
//      datagram may ever be accepted twice despite duplicating links.
//   3. Endpoint address rebinding -- a host moves to a new address
//      mid-flow; traffic resumes under the new identity and captured
//      old-address frames are dead on replay.
//   4. 30-node random mesh soak -- link flaps, router crashes and
//      queue-overflow bursts under three concurrent FBS flows (one
//      receiver running the parallel pipeline): frame conservation at the
//      wire and queue layers, monotonic metrics, and full recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "support/mesh.hpp"

namespace fbs::testing {
namespace {

using net::Ipv4Address;
using net::QueueDiscipline;
using net::TransitLinkConfig;

std::uint64_t replay_rejections(const MeshHost& host) {
  return host.fbs->counters()
      .in_rejected[static_cast<std::size_t>(core::ReceiveError::kReplay)]
      .load();
}

std::uint64_t total_rejections(const MeshHost& host) {
  std::uint64_t n = 0;
  for (const auto& c : host.fbs->counters().in_rejected) n += c.load();
  return n;
}

// --- Family 1: congestion collapse under DES+MD5 load ----------------------

struct CongestionRun {
  std::size_t offered = 0;
  std::size_t delivered = 0;
  double goodput_bps = 0;
  net::LinkQueue::Stats bottleneck;
  std::size_t bottleneck_depth_after = 0;
  std::size_t bottleneck_capacity = 0;
  std::uint64_t rejections = 0;
  bool genuine = false;
};

// One sender pushing `load` times the bottleneck's service rate through
// H1 - R0 -(2 Mb/s)- R1 - H2 for 1.5 s of virtual time. Every datagram is
// FBS-protected (keyed MD5 + DES-CBC, the default suite), so the bottleneck
// carries real ciphertext.
CongestionRun run_congestion(QueueDiscipline discipline, double load) {
  MeshScenarioRig rig(7);
  TransitLinkConfig bottleneck;
  bottleneck.bandwidth_bps = 2e6;
  bottleneck.queue.discipline = discipline;
  bottleneck.queue.capacity = 32;
  TransitLinkConfig access;
  access.bandwidth_bps = 100e6;
  access.queue.capacity = 256;

  const Ipv4Address r0 = net::mesh_router_address(0);
  const Ipv4Address r1 = net::mesh_router_address(1);
  rig.mesh.add_router(r0);
  rig.mesh.add_router(r1);
  rig.mesh.connect(r0, r1, bottleneck);
  MeshHost& a = rig.add_fbs_host("a", "10.201.0.1", r0, {}, access);
  MeshHost& b = rig.add_fbs_host("b", "10.201.0.2", r1, {}, access);
  rig.open_sink(b, 9000);
  rig.mesh.recompute_routes();

  // ~1070 wire bytes per 1000-byte payload after the FBS header, DES
  // padding and IP/UDP framing: ~4.3 ms serialization at 2 Mb/s.
  const std::size_t kPayload = 1000;
  const util::TimeUs frame_time{4300};
  const auto interval =
      static_cast<util::TimeUs>(static_cast<double>(frame_time) / load);
  const int count = static_cast<int>(1'500'000 / interval);
  const util::TimeUs t0 = rig.world.clock.now();
  for (int i = 0; i < count; ++i)
    rig.schedule_send(a, b.address(), 9000, interval * i, kPayload);
  rig.net.run();

  CongestionRun out;
  out.offered = a.sent_ok;
  out.delivered = b.delivered.size();
  const double elapsed_us = static_cast<double>(rig.world.clock.now() - t0);
  out.goodput_bps =
      static_cast<double>(out.delivered) * kPayload * 8.0 * 1e6 / elapsed_us;
  const auto* ls = rig.mesh.router(r0).link_stats(r1);
  out.bottleneck = ls->queue;
  out.bottleneck_depth_after = ls->depth;
  out.bottleneck_capacity = bottleneck.queue.capacity;
  out.rejections = total_rejections(b);
  out.genuine = rig.all_deliveries_genuine(b) && rig.plaintext_leaks() == 0;
  return out;
}

void expect_bounded_and_accounted(const CongestionRun& run) {
  EXPECT_TRUE(run.genuine);
  EXPECT_EQ(run.rejections, 0u);  // clean wire: congestion only drops, never
                                  // corrupts or forges
  // The queue never exceeded its configured bound and drained completely.
  EXPECT_LE(run.bottleneck.highwater, run.bottleneck_capacity);
  EXPECT_EQ(run.bottleneck_depth_after, 0u);
  // Every offered datagram is delivered or dropped for a named reason at
  // the bottleneck (access links are 50x faster and never drop).
  EXPECT_EQ(run.offered, run.delivered + run.bottleneck.tail_dropped +
                             run.bottleneck.red_dropped);
  EXPECT_EQ(run.bottleneck.enqueued,
            run.bottleneck.dequeued + run.bottleneck.wiped);
}

TEST(MeshCongestion, FifoDegradesGracefullyAtTwiceCapacity) {
  const CongestionRun base =
      run_congestion(QueueDiscipline::kFifoTailDrop, 0.9);
  const CongestionRun over =
      run_congestion(QueueDiscipline::kFifoTailDrop, 2.0);
  expect_bounded_and_accounted(base);
  expect_bounded_and_accounted(over);
  EXPECT_EQ(base.delivered, base.offered);  // uncongested: no drops at all
  EXPECT_GT(over.bottleneck.tail_dropped, 0u);
  EXPECT_EQ(over.bottleneck.red_dropped, 0u);
  EXPECT_GE(over.goodput_bps, 0.5 * base.goodput_bps);
}

TEST(MeshCongestion, RedKeepsGoodputAboveHalfBaselineAtTwiceCapacity) {
  const CongestionRun base = run_congestion(QueueDiscipline::kRed, 0.9);
  const CongestionRun over = run_congestion(QueueDiscipline::kRed, 2.0);
  expect_bounded_and_accounted(base);
  expect_bounded_and_accounted(over);
  EXPECT_EQ(base.delivered, base.offered);     // short queues left alone
  EXPECT_GT(over.bottleneck.red_dropped, 0u);  // early drops engaged
  // The acceptance bar: graceful degradation, not collapse.
  EXPECT_GE(over.goodput_bps, 0.5 * base.goodput_bps);
}

TEST(MeshCongestion, BackpressureAtTheEdgeFallsBackToBoundedTailDrop) {
  // The bottleneck router has no upstream *router* to xoff (the sender is a
  // host on an access link), so backpressure degenerates to its hard cap:
  // still bounded, still fully accounted.
  const CongestionRun base =
      run_congestion(QueueDiscipline::kBackpressure, 0.9);
  const CongestionRun over =
      run_congestion(QueueDiscipline::kBackpressure, 2.0);
  expect_bounded_and_accounted(base);
  expect_bounded_and_accounted(over);
  EXPECT_EQ(base.delivered, base.offered);
  EXPECT_GT(over.bottleneck.tail_dropped, 0u);
  EXPECT_GE(over.goodput_bps, 0.5 * base.goodput_bps);
}

// --- Family 2: rekey during path failover ----------------------------------

class RekeyFailoverSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RekeyFailoverSoak, HandshakeSurvivesRerouteAndNothingIsAcceptedTwice) {
  MeshScenarioRig rig(GetParam());
  // Duplicating links on the diamond and on the receiver's access link:
  // replay protection must hold even when the network itself replays.
  TransitLinkConfig transit;
  transit.wire.duplicate = 0.08;
  TransitLinkConfig access;
  access.wire.duplicate = 0.08;
  const auto r = net::build_diamond(rig.mesh, transit);

  core::IpMappingConfig a_cfg;
  a_cfg.fbs.rekey_after_datagrams = 8;  // several rekeys inside the window
  core::IpMappingConfig b_cfg;
  b_cfg.fbs.strict_replay = true;
  MeshHost& a = rig.add_fbs_host("a", "10.201.0.1", r[0], a_cfg);
  MeshHost& b = rig.add_fbs_host("b", "10.201.0.2", r[3], b_cfg, access);
  rig.open_sink(b, 9000);
  rig.mesh.recompute_routes();

  // BFS tie-break routes r0->r3 via r1; flap that primary path mid-stream
  // while the directory is down and the receiver loses its key caches.
  const util::TimeUs t0 = rig.world.clock.now();
  rig.mesh.flap_link(r[0], r[1], t0 + 500'000, t0 + 1'500'000);
  rig.world.directory.add_outage(t0 + 400'000, t0 + 1'200'000);
  rig.net.call_later(util::TimeUs{600'000}, [&b] {
    b.node->keys->clear_soft_state();
    b.node->mkd->clear_soft_state();
  });
  for (int i = 0; i < 60; ++i)
    rig.schedule_send(a, b.address(), 9000, rig.draw(util::TimeUs{2'000'000}),
                      48);
  rig.net.run();
  const std::size_t fault_delivered = b.delivered.size();
  EXPECT_EQ(a.sent_ok, 60u);  // the sender's caches were never wiped
  EXPECT_LE(fault_delivered, 60u);

  // Faults are over (the flap healed and the outage expired inside the
  // run); let negative directory-cache entries age out, then every
  // datagram must make it -- across whichever path is current.
  rig.world.clock.advance(b.node->mkd->retry_policy().negative_ttl);
  for (int i = 0; i < 30; ++i)
    rig.schedule_send(a, b.address(), 9000, rig.draw(util::TimeUs{1'000'000}),
                      48);
  rig.net.run();

  EXPECT_EQ(b.delivered.size() - fault_delivered, 30u);
  EXPECT_TRUE(rig.all_deliveries_genuine(b));
  EXPECT_EQ(b.duplicate_deliveries(), 0u);
  EXPECT_EQ(rig.plaintext_leaks(), 0u);
  // The links really did duplicate frames...
  EXPECT_GE(rig.net.counters().duplicated.load(), 1u);
  // ...the flow really did rekey mid-run...
  EXPECT_GE(a.fbs->endpoint().send_stats().lifetime_rekeys, 2u);
  // ...and the receiver really re-derived the master key after its wipe.
  EXPECT_GE(b.node->mkd->stats().directory_fetches, 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RekeyFailoverSoak,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Family 3: endpoint address rebinding mid-flow -------------------------

TEST(MeshRebinding, TrafficResumesUnderNewAddressAndOldFramesAreDeadOnReplay) {
  MeshScenarioRig rig(11);
  const auto r = net::build_line(rig.mesh, 3, TransitLinkConfig{});
  core::IpMappingConfig strict;
  strict.fbs.strict_replay = true;
  MeshHost& a = rig.add_fbs_host("a", "10.201.0.1", r[0]);
  MeshHost& b = rig.add_fbs_host("b", "10.201.0.2", r[2], strict);
  rig.open_sink(b, 9000);
  rig.mesh.recompute_routes();

  // Capture the last-hop wire image of every pre-rebind datagram, exactly
  // what an on-path attacker next to the receiver would bank.
  std::vector<util::Bytes> captured;
  bool capturing = true;
  rig.set_frame_observer(
      [&](Ipv4Address from, Ipv4Address to, const util::Bytes& frame) {
        if (capturing && from == r[2] && to == b.address())
          captured.push_back(frame);
      });
  for (int i = 0; i < 20; ++i)
    rig.schedule_send(a, b.address(), 9000, rig.draw(util::TimeUs{500'000}),
                      48);
  rig.net.run();
  capturing = false;
  ASSERT_EQ(b.delivered.size(), 20u);
  ASSERT_EQ(captured.size(), 20u);

  // The endpoint rebinds: same access router, new address. Flows are keyed
  // by address, so the move means a new principal identity, a fresh
  // certificate, and a fresh key agreement -- nothing of the old flow may
  // follow the host to its new binding.
  MeshHost& a2 = rig.add_fbs_host("a2", "10.201.0.9", r[0]);
  rig.mesh.recompute_routes();
  for (int i = 0; i < 20; ++i)
    rig.schedule_send(a2, b.address(), 9000, rig.draw(util::TimeUs{500'000}),
                      48);
  rig.net.run();
  EXPECT_EQ(b.delivered.size(), 40u);
  EXPECT_TRUE(rig.all_deliveries_genuine(b));

  // Replay the banked old-address frames straight onto the access link.
  // Every one is inside the freshness window and carries a valid MAC under
  // the old flow key -- and every one must die in the strict replay cache.
  for (const auto& frame : captured) rig.net.send(r[2], b.address(), frame);
  rig.net.run();
  EXPECT_EQ(b.delivered.size(), 40u);
  EXPECT_EQ(b.duplicate_deliveries(), 0u);
  EXPECT_EQ(replay_rejections(b), 20u);
  EXPECT_EQ(rig.plaintext_leaks(), 0u);
}

// --- Family 4: 30-node random mesh soak ------------------------------------

// Parameterized over (seed, FbsConfig::max_flows_per_shard): budget 0 is
// the paper's fixed flow table, a non-zero budget runs every endpoint on
// the million-flow control plane (MegaflowPolicy), whose
// `<prefix>.megaflow.*` gauges must stay sane through the faults.
class MeshSoak
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(MeshSoak, ThirtyNodeMeshConservesFramesAndRecovers) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const std::size_t flow_budget = std::get<1>(GetParam());
  MeshScenarioRig rig(seed);
  TransitLinkConfig transit;
  transit.wire.duplicate = 0.02;  // the fabric occasionally replays by itself
  const auto r =
      net::build_random_mesh(rig.mesh, 30, 12, seed * 31 + 7, transit);

  core::IpMappingConfig strict;
  strict.fbs.strict_replay = true;
  strict.fbs.max_flows_per_shard = flow_budget;
  core::IpMappingConfig piped = strict;
  piped.fbs.shards = 4;
  piped.pipeline_workers = 2;

  // Three concurrent FBS flows between edge hosts scattered over the mesh;
  // the second pair's receiver runs the parallel receive pipeline.
  struct Pair {
    MeshHost* a;
    MeshHost* b;
  };
  std::vector<Pair> pairs;
  int ip = 1;
  for (int p = 0; p < 3; ++p) {
    const std::size_t ai = rig.schedule_rng.next_below(30);
    const std::size_t bi = (ai + 7 + 5 * static_cast<std::size_t>(p)) % 30;
    MeshHost& a =
        rig.add_fbs_host("a" + std::to_string(p),
                         "10.201.0." + std::to_string(ip++), r[ai], strict);
    MeshHost& b = rig.add_fbs_host("b" + std::to_string(p),
                                   "10.201.0." + std::to_string(ip++), r[bi],
                                   p == 1 ? piped : strict);
    rig.open_sink(b, 9000);
    pairs.push_back({&a, &b});
  }
  // A noise pair for queue-overflow bursts (plain UDP, allowed to drop).
  MeshHost& n0 = rig.add_plain_host("n0", "10.202.0.1",
                                    r[rig.schedule_rng.next_below(30)]);
  MeshHost& n1 = rig.add_plain_host("n1", "10.202.0.2",
                                    r[rig.schedule_rng.next_below(30)]);
  rig.open_sink(n1, 7000);
  rig.mesh.recompute_routes();

  obs::MetricsRegistry reg;
  rig.net.register_metrics(reg, "net");
  rig.mesh.register_metrics(reg, "mesh");
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    pairs[p].a->fbs->register_metrics(reg, "a" + std::to_string(p));
    pairs[p].b->fbs->register_metrics(reg, "b" + std::to_string(p));
  }

  // Counters must never run backwards, sampled live while faults fire and
  // (for pair 1) worker threads race the event loop.
  std::size_t monotonic_violations = 0;
  obs::MetricsSnapshot prev;
  auto sample = [&] {
    obs::MetricsSnapshot snap = reg.snapshot();
    for (const auto& [key, value] : prev.counters) {
      const auto it = snap.counters.find(key);
      if (it != snap.counters.end() && it->second < value)
        ++monotonic_violations;
    }
    prev = std::move(snap);
  };

  // Router-granularity fault plan, all inside a 4 s window so the recovery
  // phase starts on a fully healed fabric. Faults hold off for the first
  // half second so the t=0 overflow burst below always crosses a live path.
  const util::TimeUs t0 = rig.world.clock.now();
  for (int i = 0; i < 3; ++i) {
    const auto& e =
        rig.mesh.edges()[rig.schedule_rng.next_below(rig.mesh.edges().size())];
    const util::TimeUs from = t0 + 500'000 + rig.draw(util::TimeUs{2'500'000});
    rig.mesh.flap_link(e.a, e.b, from,
                       from + 200'000 + rig.draw(util::TimeUs{800'000}));
  }
  for (int i = 0; i < 2; ++i) {
    const Ipv4Address victim = r[rig.schedule_rng.next_below(30)];
    const util::TimeUs at = t0 + 500'000 + rig.draw(util::TimeUs{2'500'000});
    rig.mesh.crash_router(victim, at,
                          at + 300'000 + rig.draw(util::TimeUs{700'000}));
  }
  // Queue-overflow bursts: 100 frames land on a capacity-64 egress queue in
  // zero virtual time, so >= 36 tail drops per burst are guaranteed when the
  // path is up. The first burst fires at t=0 (fabric guaranteed healthy);
  // the later ones may race a crash window and die upstream as accounted
  // no_route drops instead.
  for (int burst = 0; burst < 3; ++burst) {
    const util::TimeUs at =
        burst == 0 ? util::TimeUs{0} : rig.draw(util::TimeUs{3'000'000});
    for (int i = 0; i < 100; ++i)
      rig.schedule_send(n0, n1.address(), 7000, at, 1200, 5000,
                        /*audit=*/false);
  }
  for (auto& pr : pairs)
    for (int i = 0; i < 50; ++i)
      rig.schedule_send(*pr.a, pr.b->address(), 9000,
                        rig.draw(util::TimeUs{4'000'000}),
                        i % 17 == 0 ? 3000 : 48);  // a few fragmented jumbos
  for (int i = 1; i <= 12; ++i)
    rig.net.call_later(util::TimeUs{i * 400'000}, sample);
  rig.net.run();
  for (auto& pr : pairs) pr.b->fbs->drain_pipeline_all();

  for (auto& pr : pairs) {
    EXPECT_TRUE(rig.all_deliveries_genuine(*pr.b)) << pr.b->name;
    EXPECT_LE(pr.b->delivered.size(), pr.a->sent_ok) << pr.b->name;
  }
  EXPECT_EQ(rig.plaintext_leaks(), 0u);

  // Recovery: the fabric is healed; every datagram sent now must arrive.
  rig.world.clock.advance(pairs[0].b->node->mkd->retry_policy().negative_ttl);
  std::vector<std::size_t> before_delivered, before_sent;
  for (auto& pr : pairs) {
    before_delivered.push_back(pr.b->delivered.size());
    before_sent.push_back(pr.a->sent_ok);
  }
  for (auto& pr : pairs)
    for (int i = 0; i < 20; ++i)
      rig.schedule_send(*pr.a, pr.b->address(), 9000,
                        rig.draw(util::TimeUs{1'000'000}), 48);
  rig.net.call_later(util::TimeUs{1'100'000}, sample);
  rig.net.run();
  for (auto& pr : pairs) pr.b->fbs->drain_pipeline_all();
  sample();

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(pairs[p].a->sent_ok - before_sent[p], 20u) << "pair " << p;
    EXPECT_EQ(pairs[p].b->delivered.size() - before_delivered[p], 20u)
        << "pair " << p;
    EXPECT_EQ(pairs[p].b->duplicate_deliveries(), 0u) << "pair " << p;
  }

  // Wire conservation: every frame the simnet accepted is delivered or
  // dropped for exactly one named reason.
  const auto& c = rig.net.counters();
  EXPECT_EQ(c.sent.load() + c.duplicated.load(),
            c.delivered.load() + c.lost.load() + c.burst_lost.load() +
                c.tap_dropped.load() + c.partition_dropped.load() +
                c.no_such_host.load());
  // Queue-layer conservation across all 30 routers: everything enqueued was
  // serialized, wiped by a crash, or is still sitting in a queue (nothing
  // is, after the final drain); everything dequeued hit the wire or died
  // with the router that was serializing it.
  const net::MeshNetwork::Totals t = rig.mesh.totals();
  EXPECT_EQ(t.enqueued, t.dequeued + t.wiped + t.depth);
  EXPECT_EQ(t.dequeued, t.sent + t.crash_tx_dropped);
  EXPECT_EQ(t.depth, 0u);
  EXPECT_GT(t.tail_dropped, 0u);  // the t=0 noise burst really overflowed
  EXPECT_EQ(monotonic_violations, 0u);

  // Megaflow control-plane sanity, per endpoint: with a budget the gauges
  // must exist and respect the budget; without one the fixed-table policy
  // must not emit the family at all.
  const obs::MetricsSnapshot snap = reg.snapshot();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    for (const std::string side : {"a", "b"}) {
      const std::string mp = side + std::to_string(p) + ".megaflow.";
      const auto gauge = [&](const std::string& name) {
        const auto it = snap.gauges.find(mp + name);
        EXPECT_NE(it, snap.gauges.end()) << mp << name;
        return it == snap.gauges.end() ? -1.0 : it->second;
      };
      if (flow_budget == 0) {
        EXPECT_EQ(snap.gauges.count(mp + "live_flows"), 0u) << mp;
        continue;
      }
      // Per-shard budget: the aggregate can never exceed budget x shards
      // (the pipelined receiver b1 runs 4 shards, everyone else 1).
      const double shards =
          side == "b" && p == 1 ? 4.0 : 1.0;
      const double live = gauge("live_flows");
      const double peak = gauge("peak_live_flows");
      EXPECT_GE(live, 0.0) << mp;
      EXPECT_LE(live, flow_budget * shards) << mp;
      EXPECT_LE(peak, flow_budget * shards) << mp;
      EXPECT_GE(peak, live) << mp;
      // The flow table is the *send-side* attribute mapper, so only the
      // sender of each pair is guaranteed to have populated it.
      if (side == "a") EXPECT_GT(peak, 0.0) << mp;
      const double load = gauge("map_load_factor");
      EXPECT_GE(load, 0.0) << mp;
      EXPECT_LE(load, 1.0) << mp;
      EXPECT_GT(gauge("resident_bytes"), 0.0) << mp;
      // The counters ride the same monotonic sweep as everything else; here
      // just pin that the family was present for the sampler to watch.
      EXPECT_EQ(snap.counters.count(mp + "budget_evictions"), 1u) << mp;
      EXPECT_EQ(snap.counters.count(mp + "wheel_fires"), 1u) << mp;
    }
  }
}

// Budget 0 = the paper's fixed table; 4 = a tight per-shard MegaflowPolicy
// budget (each endpoint carries one live peer flow plus rekey churn, so the
// control plane runs near its cap without licensing replay-cache loss).
INSTANTIATE_TEST_SUITE_P(
    Seeds, MeshSoak,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Values<std::size_t>(0, 4)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_budget" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fbs::testing
