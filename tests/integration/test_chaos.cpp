// Chaos soak suite: the paper's soft-state robustness claims under a
// hostile environment. Each seed derives a different randomized fault
// schedule (burst loss, corruption, partitions, directory outages, soft
// state wipes); the invariants must hold for every one of them:
//   - no accepted forgery or corruption,
//   - no plaintext of a secret flow on the wire,
//   - full delivery convergence once the faults cease.
#include <gtest/gtest.h>

#include "fbs/metrics.hpp"
#include "net/simnet.hpp"
#include "fbs/tunnel.hpp"
#include "support/chaos.hpp"

namespace fbs {
namespace {

using testing::ChaosPlan;
using testing::PayloadLedger;
using testing::TestWorld;
using testing::TwoHostChaosRig;

// Sum of every counter whose dotted name starts with `prefix`.
std::uint64_t sum_with_prefix(const obs::MetricsSnapshot& snap,
                              const std::string& prefix) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : snap.counters)
    if (name.rfind(prefix, 0) == 0) total += value;
  return total;
}

// Every counter present in `before` must still exist in `after` and must
// not have decreased: counters are monotonic even across soft-state wipes
// (the stats objects survive cache clears by design).
void expect_counters_monotonic(const obs::MetricsSnapshot& before,
                               const obs::MetricsSnapshot& after) {
  for (const auto& [name, value] : before.counters) {
    const auto it = after.counters.find(name);
    ASSERT_NE(it, after.counters.end()) << name << " vanished";
    EXPECT_GE(it->second, value) << name << " decreased";
  }
}

// The Transport seam's uniform counter family (emitted identically by the
// sim and UDP backends via register_transport_metrics) must close its
// conservation equation in any snapshot:
//   sent + received + duplicated + injected ==
//       delivered + tx_wire + dropped + in_flight
void expect_transport_conserves(const obs::MetricsSnapshot& snap,
                                const std::string& prefix) {
  const auto c = [&](const char* name) {
    return snap.counters.at(prefix + ".transport." + name);
  };
  EXPECT_EQ(c("sent") + c("received") + c("duplicated") + c("injected"),
            c("delivered") + c("tx_wire") + c("dropped") +
                static_cast<std::uint64_t>(
                    snap.gauges.at(prefix + ".transport.in_flight")));
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, TwoHostSoftStateSurvivesFaultSchedule) {
  TwoHostChaosRig rig(GetParam());
  obs::MetricsRegistry reg;
  rig.a_fbs_.register_metrics(reg, "a");
  rig.b_fbs_.register_metrics(reg, "b");
  rig.a_node_.keys->register_metrics(reg, "a");
  rig.b_node_.keys->register_metrics(reg, "b");
  rig.a_node_.mkd->register_metrics(reg, "a");
  rig.b_node_.mkd->register_metrics(reg, "b");
  rig.net_.register_metrics(reg, "net");
  rig.world_.directory.register_metrics(reg, "dir");

  rig.run_fault_phase(/*datagrams=*/100);

  // Invariant: nothing forged or corrupted was ever accepted. Whatever the
  // wire did, b only saw byte-identical copies of what a sent.
  EXPECT_TRUE(rig.all_deliveries_genuine());
  EXPECT_LE(rig.fault_phase_delivered(), rig.fault_phase_sent());

  // Invariant: secret payloads never traveled in clear.
  EXPECT_EQ(rig.plaintext_leaks(), 0u);

  // The per-kind rejection counters tally exactly with the aggregate, so
  // degraded-mode behaviour is fully observable.
  const auto& rs = rig.b_fbs_.endpoint().receive_stats();
  std::uint64_t by_kind_total = 0;
  for (std::size_t k = 0; k < core::kReceiveErrorKinds; ++k)
    by_kind_total += rs.by_kind[k];
  EXPECT_EQ(by_kind_total, rs.rejected());

  // Metric invariants, phase 1 snapshot. Every datagram handed to b's
  // unprotect path was either accepted or rejected with a kind -- and the
  // IP-mapping layer's tallies agree with the endpoint's, so the registry
  // view is self-consistent across layers.
  const obs::MetricsSnapshot fault_snap = reg.snapshot();
  EXPECT_EQ(fault_snap.counters.at("b.recv.accepted") +
                sum_with_prefix(fault_snap, "b.recv.rejected."),
            fault_snap.counters.at("b.ip.in.accepted") +
                sum_with_prefix(fault_snap, "b.ip.in.rejected."));
  EXPECT_EQ(fault_snap.counters.at("b.recv.accepted"),
            fault_snap.counters.at("b.ip.in.accepted"));
  // Wire conservation: every frame the simnet accepted for transmission is
  // accounted for exactly once -- delivered or dropped for a named reason.
  EXPECT_EQ(fault_snap.counters.at("net.sent") +
                fault_snap.counters.at("net.duplicated"),
            fault_snap.counters.at("net.delivered") +
                fault_snap.counters.at("net.lost") +
                fault_snap.counters.at("net.burst_lost") +
                fault_snap.counters.at("net.tap_dropped") +
                fault_snap.counters.at("net.partition_dropped") +
                fault_snap.counters.at("net.no_such_host"));
  // The same conservation restated through the backend-neutral transport
  // family, which any Transport implementation must satisfy.
  expect_transport_conserves(fault_snap, "net");

  // Invariant: once the faults cease, delivery converges to 100% -- every
  // cache and table re-derives from the datagrams themselves.
  rig.run_recovery_phase(/*datagrams=*/40);
  EXPECT_EQ(rig.recovery_sent(), 40u);
  EXPECT_EQ(rig.recovery_delivered(), rig.recovery_sent());
  EXPECT_TRUE(rig.all_deliveries_genuine());
  EXPECT_EQ(rig.plaintext_leaks(), 0u);

  // Metric invariants, phase 2: counters never decrease -- soft-state wipes
  // clear caches and tables but must never reset the observability layer --
  // and the cross-layer tallies still agree after recovery.
  const obs::MetricsSnapshot recovery_snap = reg.snapshot();
  expect_counters_monotonic(fault_snap, recovery_snap);
  expect_transport_conserves(recovery_snap, "net");
  EXPECT_EQ(recovery_snap.counters.at("b.recv.accepted") +
                sum_with_prefix(recovery_snap, "b.recv.rejected."),
            recovery_snap.counters.at("b.ip.in.accepted") +
                sum_with_prefix(recovery_snap, "b.ip.in.rejected."));
  // The recovery-phase delta on its own is clean: no drops, no rejects on
  // the wire segment (the fault schedule is off).
  const obs::MetricsSnapshot d = recovery_snap.delta(fault_snap);
  EXPECT_EQ(d.counters.at("net.sent") + d.counters.at("net.duplicated"),
            d.counters.at("net.delivered") + d.counters.at("net.lost") +
                d.counters.at("net.burst_lost") +
                d.counters.at("net.tap_dropped") +
                d.counters.at("net.partition_dropped") +
                d.counters.at("net.no_such_host"));
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, ChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 21));

// The same soak with the receiver running the parallel pipeline: worker
// threads unprotect concurrently with the event loop, and every invariant
// -- genuineness, no plaintext leaks, frame conservation, recovery
// convergence -- must hold exactly as in the synchronous engine.
class PipelinedChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinedChaosSoak, InvariantsHoldWithPipelineWorkers) {
  core::IpMappingConfig b_config;
  b_config.fbs.shards = 4;
  b_config.pipeline_workers = 2;
  TwoHostChaosRig rig(GetParam(), b_config);
  obs::MetricsRegistry reg;
  rig.b_fbs_.register_metrics(reg, "b");
  rig.net_.register_metrics(reg, "net");

  rig.run_fault_phase(/*datagrams=*/100);
  EXPECT_TRUE(rig.all_deliveries_genuine());
  EXPECT_LE(rig.fault_phase_delivered(), rig.fault_phase_sent());
  EXPECT_EQ(rig.plaintext_leaks(), 0u);

  // Frame conservation holds while worker threads race the event loop:
  // every frame the simnet accepted is accounted for exactly once. The
  // counters are concurrently-incremented atomics; the snapshot fence makes
  // the sum exact once the queue has drained.
  const obs::MetricsSnapshot fault_snap = reg.snapshot();
  EXPECT_EQ(fault_snap.counters.at("net.sent") +
                fault_snap.counters.at("net.duplicated"),
            fault_snap.counters.at("net.delivered") +
                fault_snap.counters.at("net.lost") +
                fault_snap.counters.at("net.burst_lost") +
                fault_snap.counters.at("net.tap_dropped") +
                fault_snap.counters.at("net.partition_dropped") +
                fault_snap.counters.at("net.no_such_host"));
  expect_transport_conserves(fault_snap, "net");

  // Pipeline conservation: everything submitted was accepted, rejected, or
  // dropped for backpressure; everything accepted was drained to the stack.
  const auto& ps = rig.b_fbs_.pipeline()->stats();
  EXPECT_EQ(ps.submitted.load(),
            ps.accepted.load() + ps.rejected.load() +
                ps.backpressure_drops.load());
  EXPECT_EQ(ps.drained.load(), ps.accepted.load());
  EXPECT_EQ(rig.b_fbs_.pipeline()->in_flight(), 0u);

  rig.run_recovery_phase(/*datagrams=*/40);
  EXPECT_EQ(rig.recovery_delivered(), rig.recovery_sent());
  EXPECT_TRUE(rig.all_deliveries_genuine());
  EXPECT_EQ(rig.plaintext_leaks(), 0u);

  const obs::MetricsSnapshot recovery_snap = reg.snapshot();
  expect_counters_monotonic(fault_snap, recovery_snap);
  expect_transport_conserves(recovery_snap, "net");
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PipelinedChaosSoak,
                         ::testing::Range<std::uint64_t>(40, 48));

// Gateway-to-gateway tunnel under the same chaos: the WAN hop between the
// security gateways is the faulty segment; the inner hosts run plain IP.
class TunnelChaosRig {
 public:
  explicit TunnelChaosRig(std::uint64_t seed)
      : world_(seed),
        schedule_rng_(seed * 0x9E3779B97F4A7C15ULL + 3),
        ledger_(seed ^ 0xBEEF),
        net_(world_.clock, seed + 29),
        gw1_node_(world_.add_node("gw1", "198.18.0.1")),
        gw2_node_(world_.add_node("gw2", "198.18.0.2")),
        h1_(net_, world_.clock, *net::Ipv4Address::parse("10.1.0.10")),
        h2_(net_, world_.clock, *net::Ipv4Address::parse("10.2.0.10")),
        gw1_(net_, world_.clock, *net::Ipv4Address::parse("198.18.0.1")),
        gw2_(net_, world_.clock, *net::Ipv4Address::parse("198.18.0.2")),
        h1_udp_(h1_),
        h2_udp_(h2_) {
    h1_.set_default_route(gw1_.address());
    h2_.set_default_route(gw2_.address());
    gw1_.enable_forwarding(true);
    gw2_.enable_forwarding(true);
    gw1_.add_route(*net::Ipv4Address::parse("10.2.0.0"), 16, gw2_.address());
    gw2_.add_route(*net::Ipv4Address::parse("10.1.0.0"), 16, gw1_.address());
    tunnel1_ = std::make_unique<core::FbsTunnel>(gw1_, *gw1_node_.keys,
                                                 world_.clock, world_.rng);
    tunnel2_ = std::make_unique<core::FbsTunnel>(gw2_, *gw2_node_.keys,
                                                 world_.clock, world_.rng);
    tunnel1_->add_remote_network(*net::Ipv4Address::parse("10.2.0.0"), 16,
                                 gw2_.address());
    tunnel2_->add_remote_network(*net::Ipv4Address::parse("10.1.0.0"), 16,
                                 gw1_.address());
    h2_udp_.bind(9000, [this](net::Ipv4Address, std::uint16_t,
                              util::Bytes p) {
      delivered_.push_back(std::move(p));
    });
    // Only the WAN hop must hide payloads; the LAN hops are plaintext by
    // design (inside hosts run no FBS).
    net_.set_tap([this](net::Ipv4Address from, net::Ipv4Address to,
                        util::Bytes& frame) {
      const bool inter_gw =
          (from == gw1_.address() && to == gw2_.address()) ||
          (from == gw2_.address() && to == gw1_.address());
      if (inter_gw && ledger_.leaks_into(frame)) ++wan_leaks_;
      return net::SimNetwork::TapVerdict::kPass;
    });
  }

  void run_fault_phase(int datagrams) {
    const ChaosPlan plan = ChaosPlan::draw(schedule_rng_);
    const util::TimeUs t0 = world_.clock.now();
    net_.set_link(gw1_.address(), gw2_.address(), plan.faulty_link);
    world_.directory.set_fault_plan(plan.directory_plan);
    for (int i = 0; i < plan.partition_windows; ++i) {
      const util::TimeUs from = t0 + draw_time(plan.window);
      net_.partition(gw1_.address(), gw2_.address(), from,
                     from + draw_time(util::seconds(4)));
    }
    if (plan.directory_outage) {
      const util::TimeUs from = t0 + draw_time(plan.window);
      world_.directory.add_outage(from, from + draw_time(util::seconds(5)));
    }
    for (int i = 0; i < plan.soft_state_wipes; ++i) {
      net_.call_later(draw_time(plan.window),
                      [this, which = schedule_rng_.next_below(2)] {
                        (which == 0 ? tunnel1_ : tunnel2_)
                            ->endpoint()
                            .clear_soft_state();
                      });
    }
    for (int i = 0; i < datagrams; ++i) {
      net_.call_later(draw_time(plan.window),
                      [this, payload = ledger_.make_payload(48)] {
                        h1_udp_.send(h2_.address(), 4000, 9000, payload);
                        ++sent_;
                      });
    }
    net_.run();
    fault_phase_delivered_ = delivered_.size();
  }

  void run_recovery_phase(int datagrams) {
    net_.set_link(gw1_.address(), gw2_.address(), net::LinkParams{});
    net_.clear_partitions();
    world_.directory.clear_fault_plan();
    world_.directory.clear_outages();
    world_.clock.advance(gw1_node_.mkd->retry_policy().negative_ttl);
    for (int i = 0; i < datagrams; ++i) {
      h1_udp_.send(h2_.address(), 4100, 9000, ledger_.make_payload(48));
      ++recovery_sent_;
    }
    net_.run();
    recovery_delivered_ = delivered_.size() - fault_phase_delivered_;
  }

  bool all_deliveries_genuine() const {
    return std::all_of(
        delivered_.begin(), delivered_.end(),
        [&](const util::Bytes& p) { return ledger_.was_sent(p); });
  }

  TestWorld world_;
  util::SplitMix64 schedule_rng_;
  PayloadLedger ledger_;
  net::SimNetwork net_;
  TestWorld::Node& gw1_node_;
  TestWorld::Node& gw2_node_;
  net::IpStack h1_, h2_, gw1_, gw2_;
  net::UdpService h1_udp_, h2_udp_;
  std::unique_ptr<core::FbsTunnel> tunnel1_, tunnel2_;
  std::vector<util::Bytes> delivered_;
  std::uint64_t wan_leaks_ = 0;
  std::size_t sent_ = 0;
  std::size_t fault_phase_delivered_ = 0;
  std::size_t recovery_sent_ = 0;
  std::size_t recovery_delivered_ = 0;

 private:
  util::TimeUs draw_time(util::TimeUs range) {
    return static_cast<util::TimeUs>(
        schedule_rng_.next_below(static_cast<std::uint64_t>(range)));
  }
};

class TunnelChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TunnelChaosSoak, VpnSoftStateSurvivesFaultSchedule) {
  TunnelChaosRig rig(GetParam());
  rig.run_fault_phase(/*datagrams=*/60);
  EXPECT_TRUE(rig.all_deliveries_genuine());
  EXPECT_EQ(rig.wan_leaks_, 0u);
  EXPECT_LE(rig.fault_phase_delivered_, rig.sent_);

  rig.run_recovery_phase(/*datagrams=*/25);
  EXPECT_EQ(rig.recovery_delivered_, rig.recovery_sent_);
  EXPECT_TRUE(rig.all_deliveries_genuine());
  EXPECT_EQ(rig.wan_leaks_, 0u);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, TunnelChaosSoak,
                         ::testing::Range<std::uint64_t>(100, 108));

// The headline recovery story (acceptance criterion): a directory outage
// during a cold PVC miss no longer hard-fails the flow. The MKD's
// backoff waits straddle the outage and the upcall succeeds on a retry.
TEST(ChaosRecovery, DirectoryOutageDuringColdMissRetriesThroughIt) {
  TestWorld world(777);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  const util::TimeUs t0 = world.clock.now();
  // Outage shorter than the worst-case cumulative backoff (decorrelated
  // waits are each at least 50 ms, so three of them always pass 150 ms),
  // meaning some retry attempt must land after it clears.
  world.directory.add_outage(t0, t0 + util::TimeUs{120'000});

  const auto key = a.keys->master_key(b.principal);
  ASSERT_TRUE(key.has_value());
  EXPECT_GE(a.mkd->stats().directory_retries, 1u);
  EXPECT_EQ(a.mkd->stats().directory_failures, 0u);
  EXPECT_EQ(a.mkd->stats().negative_cache_inserts, 0u);
  EXPECT_GT(world.clock.now(), t0 + util::TimeUs{120'000});

  // The derived key matches the peer's view: retrying changed nothing.
  const auto peer_key = b.keys->master_key(a.principal);
  ASSERT_TRUE(peer_key.has_value());
  EXPECT_EQ(*key, *peer_key);
}

// An outage longer than every retry gives up, negative-caches the peer, and
// recovers only after the TTL -- bounding both the retry storm and the
// outage blast radius.
TEST(ChaosRecovery, LongOutageGivesUpThenNegativeCacheExpires) {
  TestWorld world(778);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  const util::TimeUs t0 = world.clock.now();
  world.directory.add_outage(t0, t0 + util::seconds(10));

  EXPECT_FALSE(a.keys->master_key(b.principal).has_value());
  const auto& stats = a.mkd->stats();
  EXPECT_EQ(stats.directory_retries, a.mkd->retry_policy().max_attempts - 1);
  EXPECT_EQ(stats.directory_failures, 1u);
  EXPECT_EQ(stats.negative_cache_inserts, 1u);

  // Storm protection: repeated upcalls stop hitting the directory.
  const auto fetches = stats.directory_fetches;
  for (int i = 0; i < 50; ++i)
    EXPECT_FALSE(a.keys->master_key(b.principal).has_value());
  EXPECT_EQ(stats.directory_fetches, fetches);
  EXPECT_EQ(stats.negative_cache_hits, 50u);

  // Outage over, TTL expired: the next upcall re-fetches and succeeds.
  world.clock.advance(util::seconds(10) +
                      a.mkd->retry_policy().negative_ttl);
  EXPECT_TRUE(a.keys->master_key(b.principal).has_value());
}

}  // namespace
}  // namespace fbs
