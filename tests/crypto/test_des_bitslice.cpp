#include "crypto/des_bitslice.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "crypto/des.hpp"
#include "crypto/des_reference.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

constexpr std::size_t kLanes = DesBitslice::kLanes;
constexpr std::size_t kGroup = DesBitslice::kGroupLanes;

TEST(DesBitslice, Transpose64IsInvolutionAndMovesBits) {
  util::SplitMix64 rng(101);
  std::uint64_t m[kGroup];
  std::uint64_t orig[kGroup];
  for (std::size_t i = 0; i < kGroup; ++i) m[i] = orig[i] = rng.next_u64();
  DesBitslice::transpose64(m);
  // M'(r, c) == M(c, r) under MSB-first column numbering.
  for (std::size_t r = 0; r < kGroup; ++r) {
    for (std::size_t c = 0; c < kGroup; ++c) {
      EXPECT_EQ((m[r] >> (63 - c)) & 1, (orig[c] >> (63 - r)) & 1)
          << "r=" << r << " c=" << c;
    }
  }
  DesBitslice::transpose64(m);
  for (std::size_t i = 0; i < kGroup; ++i) EXPECT_EQ(m[i], orig[i]);
}

TEST(DesBitslice, KeyScheduleMatchesReference) {
  util::SplitMix64 rng(102);
  for (int iter = 0; iter < 20; ++iter) {
    const util::Bytes key = rng.next_bytes(8);
    const DesReference ref(key);
    const auto ks = DesBitsliceKeySchedule::from_key(key);
    for (int round = 0; round < 16; ++round) {
      EXPECT_EQ(ks.subkeys[static_cast<std::size_t>(round)],
                ref.subkeys()[static_cast<std::size_t>(round)]);
    }
  }
}

TEST(DesBitslice, BroadcastKeyMatchesReferenceBothDirections) {
  util::SplitMix64 rng(103);
  for (int iter = 0; iter < 8; ++iter) {
    const util::Bytes key = rng.next_bytes(8);
    const DesReference ref(key);
    DesBitslice bs;
    bs.set_all_lanes(DesBitsliceKeySchedule::from_key(key));

    std::uint64_t blocks[kLanes];
    std::uint64_t pt[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i) blocks[i] = pt[i] = rng.next_u64();

    bs.encrypt(blocks);
    for (std::size_t i = 0; i < kLanes; ++i) {
      ASSERT_EQ(blocks[i], ref.encrypt_block(pt[i])) << "lane " << i;
    }
    bs.decrypt(blocks);
    for (std::size_t i = 0; i < kLanes; ++i) {
      ASSERT_EQ(blocks[i], pt[i]) << "lane " << i;
    }
  }
}

TEST(DesBitslice, AllLanesDistinctKeysBulkLoad) {
  util::SplitMix64 rng(104);
  std::array<DesBitsliceKeySchedule, kLanes> schedules;
  std::array<const DesBitsliceKeySchedule*, kLanes> ptrs;
  std::array<util::Bytes, kLanes> keys;
  for (std::size_t i = 0; i < kLanes; ++i) {
    keys[i] = rng.next_bytes(8);
    schedules[i] = DesBitsliceKeySchedule::from_key(keys[i]);
    ptrs[i] = &schedules[i];
  }
  DesBitslice bs;
  bs.set_lanes(ptrs);

  std::uint64_t blocks[kLanes];
  std::uint64_t pt[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) blocks[i] = pt[i] = rng.next_u64();
  bs.encrypt(blocks);
  for (std::size_t i = 0; i < kLanes; ++i) {
    const DesReference ref(keys[i]);
    ASSERT_EQ(blocks[i], ref.encrypt_block(pt[i])) << "lane " << i;
  }
  bs.decrypt(blocks);
  for (std::size_t i = 0; i < kLanes; ++i) {
    ASSERT_EQ(blocks[i], pt[i]) << "lane " << i;
  }
}

TEST(DesBitslice, SetLaneRekeysOneLaneOnly) {
  util::SplitMix64 rng(105);
  const util::Bytes base_key = rng.next_bytes(8);
  const util::Bytes other_key = rng.next_bytes(8);
  DesBitslice bs;
  bs.set_all_lanes(DesBitsliceKeySchedule::from_key(base_key));
  const auto other = DesBitsliceKeySchedule::from_key(other_key);
  bs.set_lane(7, other);
  bs.set_lane(63, other);

  std::uint64_t blocks[kLanes];
  std::uint64_t pt[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) blocks[i] = pt[i] = rng.next_u64();
  bs.encrypt(blocks);
  const DesReference base_ref(base_key);
  const DesReference other_ref(other_key);
  for (std::size_t i = 0; i < kLanes; ++i) {
    const DesReference& ref = (i == 7 || i == 63) ? other_ref : base_ref;
    ASSERT_EQ(blocks[i], ref.encrypt_block(pt[i])) << "lane " << i;
  }
}

TEST(DesBitslice, MonteCarloChainPerLane) {
  // NIST MCT shape: iterate the cipher on its own output 1000 times per
  // lane, distinct keys, compare the final value lane by lane. Any
  // cross-lane leak or wiring error diverges within a few iterations.
  util::SplitMix64 rng(106);
  std::array<DesBitsliceKeySchedule, kLanes> schedules;
  std::array<const DesBitsliceKeySchedule*, kLanes> ptrs;
  std::array<util::Bytes, kLanes> keys;
  for (std::size_t i = 0; i < kLanes; ++i) {
    keys[i] = rng.next_bytes(8);
    schedules[i] = DesBitsliceKeySchedule::from_key(keys[i]);
    ptrs[i] = &schedules[i];
  }
  DesBitslice bs;
  bs.set_lanes(ptrs);

  std::uint64_t blocks[kLanes];
  std::uint64_t seed[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) blocks[i] = seed[i] = rng.next_u64();
  for (int iter = 0; iter < 1000; ++iter) bs.encrypt(blocks);
  for (std::size_t i = 0; i < kLanes; ++i) {
    const DesReference ref(keys[i]);
    std::uint64_t v = seed[i];
    for (int iter = 0; iter < 1000; ++iter) v = ref.encrypt_block(v);
    ASSERT_EQ(blocks[i], v) << "lane " << i;
  }
}

TEST(DesBitslice, AgreesWithTableDrivenCore) {
  // Tie all three implementations together: bitslice vs the production
  // table-driven Des (itself tested against DesReference round by round).
  util::SplitMix64 rng(107);
  const util::Bytes key = rng.next_bytes(8);
  const Des des(key);
  DesBitslice bs;
  bs.set_all_lanes(DesBitsliceKeySchedule::from_key(key));
  std::uint64_t blocks[kLanes];
  std::uint64_t pt[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) blocks[i] = pt[i] = rng.next_u64();
  bs.decrypt(blocks);
  for (std::size_t i = 0; i < kLanes; ++i) {
    ASSERT_EQ(blocks[i], des.decrypt_block(pt[i])) << "lane " << i;
  }
}

}  // namespace
}  // namespace fbs::crypto
