#include "crypto/des3.hpp"

#include <gtest/gtest.h>

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

TEST(Des3, DegeneratesToSingleDesWithEqualKeys) {
  // EDE's backward-compatibility property: K1 == K2 == K3 makes
  // E(D(E(P))) collapse to single-DES E(P).
  util::SplitMix64 rng(1);
  const util::Bytes k = rng.next_bytes(8);
  util::Bytes k3;
  for (int i = 0; i < 3; ++i) k3.insert(k3.end(), k.begin(), k.end());
  const Des des(k);
  const Des3 des3(k3);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t p = rng.next_u64();
    EXPECT_EQ(des3.encrypt_block(p), des.encrypt_block(p));
    EXPECT_EQ(des3.decrypt_block(p), des.decrypt_block(p));
  }
}

TEST(Des3, MatchesExplicitEdeComposition) {
  util::SplitMix64 rng(2);
  const util::Bytes key = rng.next_bytes(Des3::kKeySize);
  const Des3 des3(key);
  const Des k1(util::BytesView(key).subspan(0, 8));
  const Des k2(util::BytesView(key).subspan(8, 8));
  const Des k3(util::BytesView(key).subspan(16, 8));
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t p = rng.next_u64();
    const std::uint64_t c =
        k3.encrypt_block(k2.decrypt_block(k1.encrypt_block(p)));
    EXPECT_EQ(des3.encrypt_block(p), c);
    EXPECT_EQ(des3.decrypt_block(c), p);
  }
}

TEST(Des3, DistinctKeysChangeTheCiphertext) {
  // Guards against a wiring bug where one of the three schedules is
  // ignored: flipping any single key third must change the output.
  util::SplitMix64 rng(3);
  const util::Bytes key = rng.next_bytes(Des3::kKeySize);
  const Des3 base(key);
  const std::uint64_t p = 0x0123456789ABCDEFull;
  for (std::size_t third = 0; third < 3; ++third) {
    util::Bytes mutated = key;
    mutated[third * 8 + 3] ^= 0x40;  // not a parity bit
    const Des3 other(mutated);
    EXPECT_NE(base.encrypt_block(p), other.encrypt_block(p)) << third;
  }
}

TEST(Des3, CbcRoundTripViaBlockModes) {
  // The templated block modes drive Des3 exactly like Des: every mode the
  // registry can name for it must round-trip, padding included.
  util::SplitMix64 rng(4);
  const util::Bytes key = rng.next_bytes(Des3::kKeySize);
  const Des3 des3(key);
  for (const std::size_t size : {0u, 1u, 8u, 100u, 1460u}) {
    const util::Bytes body = rng.next_bytes(size);
    const std::uint64_t iv = rng.next_u64();
    const util::Bytes ct = encrypt(des3, CipherMode::kCbc, iv, body);
    EXPECT_EQ(ct.size() % Des3::kBlockSize, 0u);
    EXPECT_NE(ct, body);
    const auto back = decrypt(des3, CipherMode::kCbc, iv, ct);
    ASSERT_TRUE(back.has_value()) << size;
    EXPECT_EQ(*back, body) << size;
  }
}

}  // namespace
}  // namespace fbs::crypto
