#include "crypto/bbs.hpp"

#include <gtest/gtest.h>

#include "bignum/prime.hpp"

namespace fbs::crypto {
namespace {

bignum::Uint blum_modulus_small() {
  // 7 and 11 are Blum primes (both = 3 mod 4); n = 77.
  return bignum::Uint(7) * bignum::Uint(11);
}

TEST(BlumBlumShub, KnownSequenceSmallModulus) {
  // Seed 3: x0 = 9; squares mod 77: 9 -> 81%77=4 -> 16 -> 256%77=25 -> ...
  BlumBlumShub bbs(blum_modulus_small(), bignum::Uint(3));
  // Parity of 4, 16, 25, 9, 4, ...
  EXPECT_EQ(bbs.next_bit(), false);  // 4
  EXPECT_EQ(bbs.next_bit(), false);  // 16
  EXPECT_EQ(bbs.next_bit(), true);   // 25
  EXPECT_EQ(bbs.next_bit(), true);   // 25^2=625 % 77 = 9
}

TEST(BlumBlumShub, DeterministicForSeed) {
  util::SplitMix64 seeder(55);
  BlumBlumShub a = BlumBlumShub::generate(128, seeder);
  util::SplitMix64 seeder2(55);
  BlumBlumShub b = BlumBlumShub::generate(128, seeder2);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(BlumBlumShub, GeneratedModulusIsBlum) {
  util::SplitMix64 seeder(56);
  const bignum::Uint p = bignum::generate_blum_prime(64, seeder);
  const bignum::Uint q = bignum::generate_blum_prime(64, seeder);
  EXPECT_EQ(p % bignum::Uint(4), bignum::Uint(3));
  EXPECT_EQ(q % bignum::Uint(4), bignum::Uint(3));
}

TEST(BlumBlumShub, BitsRoughlyBalanced) {
  util::SplitMix64 seeder(57);
  BlumBlumShub bbs = BlumBlumShub::generate(128, seeder);
  int ones = 0;
  constexpr int kBits = 2048;
  for (int i = 0; i < kBits; ++i) ones += bbs.next_bit();
  EXPECT_GT(ones, kBits * 2 / 5);
  EXPECT_LT(ones, kBits * 3 / 5);
}

TEST(BlumBlumShub, DegenerateSeedRecovers) {
  // Seeds collapsing to 0/1 are replaced with a safe start state.
  BlumBlumShub bbs(blum_modulus_small(), bignum::Uint(77));  // 77 % 77 = 0
  // Must still produce bits (not get stuck at 0).
  bool any = false;
  for (int i = 0; i < 16; ++i) any = any || bbs.next_bit();
  EXPECT_TRUE(any);
}

TEST(BlumBlumShub, ActsAsRandomSource) {
  util::SplitMix64 seeder(58);
  BlumBlumShub bbs = BlumBlumShub::generate(128, seeder);
  util::RandomSource& rng = bbs;
  const util::Bytes key = rng.next_bytes(8);
  EXPECT_EQ(key.size(), 8u);
}

}  // namespace
}  // namespace fbs::crypto
