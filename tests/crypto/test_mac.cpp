#include "crypto/mac.hpp"

#include <gtest/gtest.h>

#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"

namespace fbs::crypto {
namespace {

std::string hmac_md5_hex(const util::Bytes& key, const util::Bytes& msg) {
  return util::to_hex(hmac_md5(key, msg));
}

std::string hmac_sha1_hex(const util::Bytes& key, const util::Bytes& msg) {
  return util::to_hex(hmac_sha1(key, msg));
}

// RFC 2202 test cases for HMAC-MD5.
TEST(HmacMd5, Rfc2202Case1) {
  EXPECT_EQ(hmac_md5_hex(util::Bytes(16, 0x0b), util::to_bytes("Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacMd5, Rfc2202Case2) {
  EXPECT_EQ(hmac_md5_hex(util::to_bytes("Jefe"),
                         util::to_bytes("what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(HmacMd5, Rfc2202Case3) {
  EXPECT_EQ(hmac_md5_hex(util::Bytes(16, 0xaa), util::Bytes(50, 0xdd)),
            "56be34521d144c88dbb8c733f0e8b3f6");
}

TEST(HmacMd5, Rfc2202Case4) {
  EXPECT_EQ(hmac_md5_hex(*util::from_hex("0102030405060708090a0b0c0d0e0f101112"
                                         "13141516171819"),
                         util::Bytes(50, 0xcd)),
            "697eaf0aca3a3aea3a75164746ffaa79");
}

TEST(HmacMd5, Rfc2202Case6LongKey) {
  // 80-byte key exercises the hash-the-key path.
  EXPECT_EQ(hmac_md5_hex(util::Bytes(80, 0xaa),
                         util::to_bytes(
                             "Test Using Larger Than Block-Size Key - Hash "
                             "Key First")),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd");
}

// RFC 2202 test cases for HMAC-SHA1.
TEST(HmacSha1, Rfc2202Case1) {
  EXPECT_EQ(hmac_sha1_hex(util::Bytes(20, 0x0b), util::to_bytes("Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(hmac_sha1_hex(util::to_bytes("Jefe"),
                          util::to_bytes("what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  EXPECT_EQ(hmac_sha1_hex(util::Bytes(20, 0xaa), util::Bytes(50, 0xdd)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(KeyedPrefixMac, EqualsHashOfKeyThenMessage) {
  // The paper's construction is literally H(K | chunks...).
  KeyedPrefixMac mac(std::make_unique<Md5>());
  const util::Bytes key = util::to_bytes("flowkey");
  const util::Bytes a = util::to_bytes("confounder+ts");
  const util::Bytes b = util::to_bytes("payload");
  util::Bytes concat = key;
  concat.insert(concat.end(), a.begin(), a.end());
  concat.insert(concat.end(), b.begin(), b.end());
  EXPECT_EQ(mac.compute(key, {a, b}), md5(concat));
}

TEST(KeyedPrefixMac, KeySeparation) {
  KeyedPrefixMac mac(std::make_unique<Md5>());
  const util::Bytes msg = util::to_bytes("same message");
  EXPECT_NE(mac.compute(util::to_bytes("key1"), {msg}),
            mac.compute(util::to_bytes("key2"), {msg}));
}

TEST(KeyedPrefixMac, MessageSensitivity) {
  KeyedPrefixMac mac(std::make_unique<Md5>());
  const util::Bytes key = util::to_bytes("k");
  EXPECT_NE(mac.compute(key, {util::to_bytes("msg-a")}),
            mac.compute(key, {util::to_bytes("msg-b")}));
}

TEST(KeyedPrefixMac, ChunkingIsTransparent) {
  KeyedPrefixMac mac(std::make_unique<Md5>());
  const util::Bytes key = util::to_bytes("k");
  const util::Bytes ab = util::to_bytes("ab");
  const util::Bytes a = util::to_bytes("a");
  const util::Bytes b = util::to_bytes("b");
  EXPECT_EQ(mac.compute(key, {ab}), mac.compute(key, {a, b}));
}

TEST(HmacMac, ChunkingIsTransparent) {
  HmacMac mac(std::make_unique<Sha1>());
  const util::Bytes key = util::to_bytes("k");
  const util::Bytes a = util::to_bytes("hello ");
  const util::Bytes b = util::to_bytes("world");
  const util::Bytes whole = util::to_bytes("hello world");
  EXPECT_EQ(mac.compute(key, {a, b}), mac.compute(key, {whole}));
}

TEST(Mac, SizesMatchUnderlyingHash) {
  EXPECT_EQ(KeyedPrefixMac(std::make_unique<Md5>()).mac_size(), 16u);
  EXPECT_EQ(KeyedPrefixMac(std::make_unique<Sha1>()).mac_size(), 20u);
  EXPECT_EQ(HmacMac(std::make_unique<Md5>()).mac_size(), 16u);
  EXPECT_EQ(HmacMac(std::make_unique<Sha1>()).mac_size(), 20u);
}

TEST(MacContext, MatchesOneShotComputeForEveryAlgorithm) {
  // The per-flow streaming contexts (key precomputed once, then
  // begin/update/finish_into per datagram) must agree with Mac::compute for
  // every algorithm, key length (short, block-sized, overlong), and
  // chunking, across repeated reuse of one context.
  const util::Bytes keys[] = {
      util::to_bytes("k"), util::Bytes(16, 0x0b), util::Bytes(64, 0x3c),
      util::Bytes(80, 0xaa),  // overlong: exercises hash-the-key
  };
  const util::Bytes a = util::to_bytes("confounder+ts");
  const util::Bytes b = util::to_bytes("payload bytes of a datagram");
  std::unique_ptr<Mac> macs[] = {
      std::make_unique<KeyedPrefixMac>(std::make_unique<Md5>()),
      std::make_unique<KeyedPrefixMac>(std::make_unique<Sha1>()),
      std::make_unique<HmacMac>(std::make_unique<Md5>()),
      std::make_unique<HmacMac>(std::make_unique<Sha1>()),
      std::make_unique<NullMac>(),
  };
  for (const auto& mac : macs) {
    for (const util::Bytes& key : keys) {
      const auto ctx = mac->make_context(key);
      ASSERT_EQ(ctx->mac_size(), mac->mac_size());
      for (int round = 0; round < 3; ++round) {  // context reuse
        ctx->begin();
        ctx->update(a);
        ctx->update(b);
        util::Bytes tag(ctx->mac_size());
        ctx->finish_into(tag.data());
        EXPECT_EQ(tag, mac->compute(key, {a, b}))
            << "key len " << key.size() << " round " << round;
      }
    }
  }
}

TEST(MacContext, AbandonedMessageDoesNotPoisonTheNext) {
  // The receive path bails out mid-datagram on padding failures; the next
  // datagram's begin() must fully reset the context.
  HmacMac mac(std::make_unique<Md5>());
  const util::Bytes key = util::to_bytes("flow key");
  const auto ctx = mac.make_context(key);
  ctx->begin();
  ctx->update(util::to_bytes("partial garbage never finished"));
  ctx->begin();
  ctx->update(util::to_bytes("Hi There"));
  EXPECT_EQ(ctx->finish(), mac.compute(key, {util::to_bytes("Hi There")}));
}

TEST(Mac, HmacDiffersFromKeyedPrefix) {
  const util::Bytes key = util::to_bytes("key");
  const util::Bytes msg = util::to_bytes("msg");
  KeyedPrefixMac kp(std::make_unique<Md5>());
  HmacMac hm(std::make_unique<Md5>());
  EXPECT_NE(kp.compute(key, {msg}), hm.compute(key, {msg}));
}

}  // namespace
}  // namespace fbs::crypto
