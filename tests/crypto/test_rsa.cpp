#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace fbs::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // Key generation is the slow part; share one key across the fixture.
  static void SetUpTestSuite() {
    util::SplitMix64 rng(1997);
    key_ = new RsaPrivateKey(rsa_generate(512, rng));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static RsaPrivateKey* key_;
};

RsaPrivateKey* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyShape) {
  EXPECT_EQ(key_->pub.e, bignum::Uint(65537));
  EXPECT_GE(key_->pub.n.bit_length(), 508u);
  EXPECT_LE(key_->pub.n.bit_length(), 512u);
  EXPECT_FALSE(key_->d.is_zero());
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const util::Bytes msg = util::to_bytes("public value certificate");
  const util::Bytes sig = rsa_sign_md5(*key_, msg);
  EXPECT_EQ(sig.size(), key_->pub.modulus_size());
  EXPECT_TRUE(rsa_verify_md5(key_->pub, msg, sig));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  const util::Bytes msg = util::to_bytes("genuine");
  const util::Bytes sig = rsa_sign_md5(*key_, msg);
  EXPECT_FALSE(rsa_verify_md5(key_->pub, util::to_bytes("forged"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  const util::Bytes msg = util::to_bytes("genuine");
  util::Bytes sig = rsa_sign_md5(*key_, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify_md5(key_->pub, msg, sig));
}

TEST_F(RsaTest, WrongLengthSignatureRejected) {
  const util::Bytes msg = util::to_bytes("genuine");
  util::Bytes sig = rsa_sign_md5(*key_, msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify_md5(key_->pub, msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(rsa_verify_md5(key_->pub, msg, sig));
}

TEST_F(RsaTest, WrongKeyRejected) {
  util::SplitMix64 rng(2001);
  const RsaPrivateKey other = rsa_generate(512, rng);
  const util::Bytes msg = util::to_bytes("genuine");
  const util::Bytes sig = rsa_sign_md5(*key_, msg);
  EXPECT_FALSE(rsa_verify_md5(other.pub, msg, sig));
}

TEST_F(RsaTest, SignatureDeterministic) {
  const util::Bytes msg = util::to_bytes("idempotent");
  EXPECT_EQ(rsa_sign_md5(*key_, msg), rsa_sign_md5(*key_, msg));
}

TEST_F(RsaTest, RawExponentiationIdentity) {
  // (m^d)^e = m mod n for m < n.
  const bignum::Uint m(123456789);
  const bignum::Uint s = bignum::Uint::powmod(m, key_->d, key_->pub.n);
  EXPECT_EQ(bignum::Uint::powmod(s, key_->pub.e, key_->pub.n), m);
}

}  // namespace
}  // namespace fbs::crypto
