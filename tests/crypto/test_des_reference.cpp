// The table-driven Des against its FIPS PUB 46 oracle.
//
// DesReference is a bit-at-a-time transcription of the standard sharing only
// the constant tables with the fast path, so these tests pin the fused
// SP-table generation and the IP/FP swap networks three independent ways:
// the published worked-example intermediate values (key schedule K1..K16 and
// every round's Li/Ri), round-by-round agreement between the two
// implementations on random inputs, and NIST-style Monte Carlo chains where
// a single wrong bit anywhere compounds across 1,000 blocks.
#include "crypto/des_reference.hpp"

#include <gtest/gtest.h>

#include "crypto/des.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

constexpr char kWorkedKey[] = "133457799BBCDFF1";
constexpr std::uint64_t kWorkedPlain = 0x0123456789ABCDEFull;
constexpr std::uint64_t kWorkedCipher = 0x85E813540F0AB405ull;

TEST(DesReference, KeyScheduleWorkedExample) {
  // The 48-bit round keys K1..K16 of the classic worked example.
  const DesReference ref(*util::from_hex(kWorkedKey));
  const std::uint64_t expected[16] = {
      0x1B02EFFC7072ull, 0x79AED9DBC9E5ull, 0x55FC8A42CF99ull,
      0x72ADD6DB351Dull, 0x7CEC07EB53A8ull, 0x63A53E507B2Full,
      0xEC84B7F618BCull, 0xF78A3AC13BFBull, 0xE0DBEBEDE781ull,
      0xB1F347BA464Full, 0x215FD3DED386ull, 0x7571F59467E9ull,
      0x97C5D1FABA41ull, 0x5F43B7F2E73Aull, 0xBF918D3D3F0Aull,
      0xCB3D8B0E17F5ull,
  };
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ref.subkeys()[i], expected[i]) << "K" << (i + 1);
  }
}

// The worked example's per-round intermediate values: row i holds (Li, Ri)
// in FIPS notation, with row 0 the post-IP halves.
constexpr std::uint32_t kWorkedRounds[17][2] = {
    {0xCC00CCFF, 0xF0AAF0AA}, {0xF0AAF0AA, 0xEF4A6544},
    {0xEF4A6544, 0xCC017709}, {0xCC017709, 0xA25C0BF4},
    {0xA25C0BF4, 0x77220045}, {0x77220045, 0x8A4FA637},
    {0x8A4FA637, 0xE967CD69}, {0xE967CD69, 0x064ABA10},
    {0x064ABA10, 0xD5694B90}, {0xD5694B90, 0x247CC67A},
    {0x247CC67A, 0xB7D5D7B2}, {0xB7D5D7B2, 0xC5783C78},
    {0xC5783C78, 0x75BD1858}, {0x75BD1858, 0x18C3155A},
    {0x18C3155A, 0xC28C960D}, {0xC28C960D, 0x43423234},
    {0x43423234, 0x0A4CD995},
};

TEST(DesReference, RoundTraceWorkedExample) {
  const DesReference ref(*util::from_hex(kWorkedKey));
  Des::RoundTrace trace;
  EXPECT_EQ(ref.crypt_trace(kWorkedPlain, /*decrypt=*/false, trace),
            kWorkedCipher);
  for (int i = 0; i <= 16; ++i) {
    EXPECT_EQ(trace.l[i], kWorkedRounds[i][0]) << "L" << i;
    EXPECT_EQ(trace.r[i], kWorkedRounds[i][1]) << "R" << i;
  }
}

TEST(Des, RoundTraceWorkedExample) {
  // The table-driven path reproduces the same standard-notation trace even
  // though internally it runs unrolled round pairs with no L/R swap.
  const Des des(*util::from_hex(kWorkedKey));
  Des::RoundTrace trace;
  EXPECT_EQ(des.crypt_trace(kWorkedPlain, /*decrypt=*/false, trace),
            kWorkedCipher);
  for (int i = 0; i <= 16; ++i) {
    EXPECT_EQ(trace.l[i], kWorkedRounds[i][0]) << "L" << i;
    EXPECT_EQ(trace.r[i], kWorkedRounds[i][1]) << "R" << i;
  }
}

TEST(DesReference, RoundTraceAgreesWithTableDrivenOnRandomInputs) {
  // Every round of every random (key, block), both directions. A fused
  // SP-table or subkey-chunking bug cannot survive 17 checkpoints per block.
  util::SplitMix64 rng(0x46697073u);  // "Fips"
  for (int trial = 0; trial < 50; ++trial) {
    const util::Bytes key = rng.next_bytes(8);
    const Des fast(key);
    const DesReference ref(key);
    const std::uint64_t block = rng.next_u64();
    for (const bool decrypt : {false, true}) {
      Des::RoundTrace ft, rt;
      const std::uint64_t fo = fast.crypt_trace(block, decrypt, ft);
      const std::uint64_t ro = ref.crypt_trace(block, decrypt, rt);
      ASSERT_EQ(fo, ro) << "trial " << trial << " decrypt=" << decrypt;
      for (int i = 0; i <= 16; ++i) {
        ASSERT_EQ(ft.l[i], rt.l[i])
            << "L" << i << " trial " << trial << " decrypt=" << decrypt;
        ASSERT_EQ(ft.r[i], rt.r[i])
            << "R" << i << " trial " << trial << " decrypt=" << decrypt;
      }
    }
  }
}

TEST(DesReference, MonteCarloEncryptChain) {
  // NIST-style Monte Carlo: feed each ciphertext back as the next plaintext
  // for 1,000 iterations, with the oracle running the same chain. Any
  // discrepancy anywhere in the fast path's tables compounds immediately.
  const util::Bytes key = *util::from_hex("0123456789ABCDEF");
  const Des fast(key);
  const DesReference ref(key);
  std::uint64_t f = 0x4E6F772069732074ull;  // "Now is t"
  std::uint64_t r = f;
  for (int i = 0; i < 1000; ++i) {
    f = fast.encrypt_block(f);
    r = ref.encrypt_block(r);
    ASSERT_EQ(f, r) << "iteration " << i;
  }
  // Pin the chain's end so the whole trajectory is a regression vector.
  const std::uint64_t final_ct = f;
  // Walking the chain back block by block must recover the seed.
  for (int i = 0; i < 1000; ++i) f = fast.decrypt_block(f);
  EXPECT_EQ(f, 0x4E6F772069732074ull);
  EXPECT_NE(final_ct, 0x4E6F772069732074ull);
}

TEST(DesReference, MonteCarloDecryptChain) {
  const util::Bytes key = *util::from_hex("FEDCBA9876543210");
  const Des fast(key);
  const DesReference ref(key);
  std::uint64_t f = 0x0102030405060708ull;
  std::uint64_t r = f;
  for (int i = 0; i < 1000; ++i) {
    f = fast.decrypt_block(f);
    r = ref.decrypt_block(r);
    ASSERT_EQ(f, r) << "iteration " << i;
  }
  for (int i = 0; i < 1000; ++i) f = fast.encrypt_block(f);
  EXPECT_EQ(f, 0x0102030405060708ull);
}

TEST(DesReference, StandardVectorsMatchFastPath) {
  // The same published single-block vectors test_des.cpp checks on Des.
  struct Vector {
    const char* key;
    std::uint64_t plain;
    std::uint64_t cipher;
  };
  const Vector vectors[] = {
      {"133457799BBCDFF1", 0x0123456789ABCDEFull, 0x85E813540F0AB405ull},
      {"0E329232EA6D0D73", 0x8787878787878787ull, 0x0000000000000000ull},
      {"0000000000000000", 0x0000000000000000ull, 0x8CA64DE9C1B123A7ull},
      {"FFFFFFFFFFFFFFFF", 0xFFFFFFFFFFFFFFFFull, 0x7359B2163E4EDC58ull},
  };
  for (const Vector& v : vectors) {
    const DesReference ref(*util::from_hex(v.key));
    EXPECT_EQ(ref.encrypt_block(v.plain), v.cipher) << v.key;
    EXPECT_EQ(ref.decrypt_block(v.cipher), v.plain) << v.key;
  }
}

}  // namespace
}  // namespace fbs::crypto
