#include "crypto/dh.hpp"

#include <gtest/gtest.h>

namespace fbs::crypto {
namespace {

TEST(Dh, TestGroupAgreement) {
  util::SplitMix64 rng(100);
  const DhGroup& g = test_group();
  const DhKeyPair s = dh_generate(g, rng);
  const DhKeyPair d = dh_generate(g, rng);
  // The whole point of zero-message keying: both sides compute the same
  // K_{S,D} with no exchange.
  EXPECT_EQ(dh_shared_secret(g, s.private_value, d.public_value),
            dh_shared_secret(g, d.private_value, s.public_value));
}

TEST(Dh, ThirdPartyGetsDifferentSecret) {
  util::SplitMix64 rng(101);
  const DhGroup& g = test_group();
  const DhKeyPair s = dh_generate(g, rng);
  const DhKeyPair d = dh_generate(g, rng);
  const DhKeyPair eve = dh_generate(g, rng);
  EXPECT_NE(dh_shared_secret(g, eve.private_value, d.public_value),
            dh_shared_secret(g, s.private_value, d.public_value));
}

TEST(Dh, KnownSmallExample) {
  // p=23, g=5, s=6, d=15: classic textbook numbers.
  const DhGroup g{"toy", bignum::Uint(23), bignum::Uint(5)};
  const bignum::Uint s(6), d(15);
  const bignum::Uint s_pub = bignum::Uint::powmod(g.g, s, g.p);  // 8
  const bignum::Uint d_pub = bignum::Uint::powmod(g.g, d, g.p);  // 19
  EXPECT_EQ(s_pub, bignum::Uint(8));
  EXPECT_EQ(d_pub, bignum::Uint(19));
  EXPECT_EQ(dh_shared_secret(g, s, d_pub), bignum::Uint(2));
  EXPECT_EQ(dh_shared_secret(g, d, s_pub), bignum::Uint(2));
}

TEST(Dh, Oakley768Agreement) {
  util::SplitMix64 rng(102);
  const DhGroup& g = oakley_group1();
  EXPECT_EQ(g.p.bit_length(), 768u);
  EXPECT_EQ(g.element_size(), 96u);
  const DhKeyPair s = dh_generate(g, rng);
  const DhKeyPair d = dh_generate(g, rng);
  const auto k1 = dh_shared_secret_bytes(g, s.private_value, d.public_value);
  const auto k2 = dh_shared_secret_bytes(g, d.private_value, s.public_value);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 96u);  // fixed-width encoding
}

TEST(Dh, Oakley1024GroupShape) {
  const DhGroup& g = oakley_group2();
  EXPECT_EQ(g.p.bit_length(), 1024u);
  EXPECT_EQ(g.g, bignum::Uint(2));
  EXPECT_TRUE(g.p.is_odd());
}

TEST(Dh, PrivateValuesInRange) {
  util::SplitMix64 rng(103);
  const DhGroup& g = test_group();
  for (int i = 0; i < 50; ++i) {
    const DhKeyPair kp = dh_generate(g, rng);
    EXPECT_GE(kp.private_value, bignum::Uint(2));
    EXPECT_LT(kp.private_value, g.p - bignum::Uint(1));
    EXPECT_EQ(kp.public_value,
              bignum::Uint::powmod(g.g, kp.private_value, g.p));
  }
}

TEST(Dh, DistinctPrincipalsDistinctKeys) {
  util::SplitMix64 rng(104);
  const DhGroup& g = test_group();
  const DhKeyPair a = dh_generate(g, rng);
  const DhKeyPair b = dh_generate(g, rng);
  const DhKeyPair c = dh_generate(g, rng);
  // K_{A,B} != K_{A,C}: compromise of one pair key says nothing about
  // another pair.
  EXPECT_NE(dh_shared_secret(g, a.private_value, b.public_value),
            dh_shared_secret(g, a.private_value, c.public_value));
}

}  // namespace
}  // namespace fbs::crypto
