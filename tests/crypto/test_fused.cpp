#include "crypto/fused.hpp"

#include <gtest/gtest.h>

#include "crypto/block_modes.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

class FusedSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FusedSweep, IdenticalToTwoPassPath) {
  const std::size_t size = GetParam();
  util::SplitMix64 rng(size + 1);
  const util::Bytes mac_key = rng.next_bytes(16);
  const util::Bytes prefix = rng.next_bytes(8);
  const util::Bytes body = rng.next_bytes(size);
  const Des des(rng.next_bytes(8));
  const std::uint64_t iv = rng.next_u64();

  // Reference: separate MAC pass then encryption pass.
  KeyedPrefixMac mac(std::make_unique<Md5>());
  const util::Bytes ref_mac = mac.compute(mac_key, {prefix, body});
  const util::Bytes ref_ct = encrypt(des, CipherMode::kCbc, iv, body);

  const FusedResult fused =
      fused_keyed_md5_des_cbc(des, iv, mac_key, prefix, body);
  EXPECT_EQ(fused.mac, ref_mac);
  EXPECT_EQ(fused.ciphertext, ref_ct);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FusedSweep,
                         ::testing::Values(0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u,
                                           64u, 100u, 1024u, 1460u, 8192u));

TEST(Fused, DecryptsAndVerifiesLikeNormalOutput) {
  util::SplitMix64 rng(99);
  const util::Bytes mac_key = rng.next_bytes(16);
  const util::Bytes prefix = rng.next_bytes(8);
  const util::Bytes body = util::to_bytes("single data-touching pass");
  const Des des(rng.next_bytes(8));
  const std::uint64_t iv = 0x1122334455667788ull;

  const FusedResult fused =
      fused_keyed_md5_des_cbc(des, iv, mac_key, prefix, body);
  const auto plain = decrypt(des, CipherMode::kCbc, iv, fused.ciphertext);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, body);
  KeyedPrefixMac mac(std::make_unique<Md5>());
  EXPECT_EQ(mac.compute(mac_key, {prefix, *plain}), fused.mac);
}

}  // namespace
}  // namespace fbs::crypto
