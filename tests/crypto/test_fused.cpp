#include "crypto/fused.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "crypto/block_modes.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

class FusedSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FusedSweep, IdenticalToTwoPassPath) {
  const std::size_t size = GetParam();
  util::SplitMix64 rng(size + 1);
  const util::Bytes mac_key = rng.next_bytes(16);
  const util::Bytes prefix = rng.next_bytes(8);
  const util::Bytes body = rng.next_bytes(size);
  const Des des(rng.next_bytes(8));
  const std::uint64_t iv = rng.next_u64();

  // Reference: separate MAC pass then encryption pass.
  KeyedPrefixMac mac(std::make_unique<Md5>());
  const util::Bytes ref_mac = mac.compute(mac_key, {prefix, body});
  const util::Bytes ref_ct = encrypt(des, CipherMode::kCbc, iv, body);

  const FusedResult fused =
      fused_keyed_md5_des_cbc(des, iv, mac_key, prefix, body);
  EXPECT_EQ(fused.mac, ref_mac);
  EXPECT_EQ(fused.ciphertext, ref_ct);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FusedSweep,
                         ::testing::Values(0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u,
                                           64u, 100u, 1024u, 1460u, 8192u));

TEST(Fused, DecryptsAndVerifiesLikeNormalOutput) {
  util::SplitMix64 rng(99);
  const util::Bytes mac_key = rng.next_bytes(16);
  const util::Bytes prefix = rng.next_bytes(8);
  const util::Bytes body = util::to_bytes("single data-touching pass");
  const Des des(rng.next_bytes(8));
  const std::uint64_t iv = 0x1122334455667788ull;

  const FusedResult fused =
      fused_keyed_md5_des_cbc(des, iv, mac_key, prefix, body);
  const auto plain = decrypt(des, CipherMode::kCbc, iv, fused.ciphertext);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, body);
  KeyedPrefixMac mac(std::make_unique<Md5>());
  EXPECT_EQ(mac.compute(mac_key, {prefix, *plain}), fused.mac);
}

class FusedIntoSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FusedIntoSweep, SealIntoMatchesOneShot) {
  // The per-flow-context seal must be bit-identical to the one-shot form:
  // same MAC (the context has the key pre-absorbed) and same ciphertext,
  // with the output buffer arriving dirty from a previous datagram.
  const std::size_t size = GetParam();
  util::SplitMix64 rng(size + 7);
  const util::Bytes mac_key = rng.next_bytes(16);
  const util::Bytes prefix = rng.next_bytes(8);
  const util::Bytes body = rng.next_bytes(size);
  const Des des(rng.next_bytes(8));
  const std::uint64_t iv = rng.next_u64();

  const FusedResult one_shot =
      fused_keyed_md5_des_cbc(des, iv, mac_key, prefix, body);

  KeyedPrefixMac mac_alg(std::make_unique<Md5>());
  const auto ctx = mac_alg.make_context(mac_key);
  std::uint8_t tag[16];
  util::Bytes ct(1, 0xEE);  // dirty
  fused_seal_into(des, iv, *ctx, prefix, body, tag, ct);
  EXPECT_EQ(util::Bytes(tag, tag + 16), one_shot.mac);
  EXPECT_EQ(ct, one_shot.ciphertext);

  // And open_into inverts it, producing the sender's tag.
  std::uint8_t rtag[16];
  util::Bytes back(1, 0xEE);
  ASSERT_TRUE(fused_open_into(des, iv, *ctx, prefix, ct, rtag, back));
  EXPECT_EQ(back, body);
  EXPECT_EQ(util::Bytes(rtag, rtag + 16), one_shot.mac);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FusedIntoSweep,
                         ::testing::Values(0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u,
                                           64u, 100u, 1024u, 1460u, 8192u));

TEST(Fused, OpenIntoRejectsMalformedCiphertext) {
  util::SplitMix64 rng(123);
  const Des des(rng.next_bytes(8));
  KeyedPrefixMac mac_alg(std::make_unique<Md5>());
  const auto ctx = mac_alg.make_context(rng.next_bytes(16));
  std::uint8_t tag[16];
  util::Bytes body;
  // Empty and non-block-multiple inputs are malformed (a sealed body always
  // carries at least the padding block).
  EXPECT_FALSE(fused_open_into(des, 0, *ctx, {}, util::Bytes{}, tag, body));
  EXPECT_FALSE(
      fused_open_into(des, 0, *ctx, {}, util::Bytes(13, 0xAB), tag, body));
  // Random blocks decrypt to bad PKCS#7 padding with high probability.
  bool any_rejected = false;
  for (int i = 0; i < 8; ++i) {
    if (!fused_open_into(des, rng.next_u64(), *ctx, {}, rng.next_bytes(16),
                         tag, body)) {
      any_rejected = true;
    }
  }
  EXPECT_TRUE(any_rejected);
}

TEST(Fused, ContextIsReusableAcrossDatagrams) {
  // One MacContext serves a whole flow: sealing different bodies back to
  // back must give each its independent correct tag (begin() resets state).
  util::SplitMix64 rng(321);
  const util::Bytes mac_key = rng.next_bytes(16);
  const Des des(rng.next_bytes(8));
  KeyedPrefixMac mac_alg(std::make_unique<Md5>());
  const auto ctx = mac_alg.make_context(mac_key);
  util::Bytes ct;
  for (int i = 0; i < 4; ++i) {
    const util::Bytes prefix = rng.next_bytes(8);
    const util::Bytes body = rng.next_bytes(100 + 13 * i);
    const std::uint64_t iv = rng.next_u64();
    std::uint8_t tag[16];
    fused_seal_into(des, iv, *ctx, prefix, body, tag, ct);
    const FusedResult expect =
        fused_keyed_md5_des_cbc(des, iv, mac_key, prefix, body);
    EXPECT_EQ(util::Bytes(tag, tag + 16), expect.mac) << i;
    EXPECT_EQ(ct, expect.ciphertext) << i;
  }
}

TEST(FusedBatch, SealBatchBitIdenticalToSequentialSealInto) {
  // 100 jobs (several lane chunks plus a residue), mixed keys and sizes:
  // every job's tag and ciphertext must match its own fused_seal_into run.
  util::SplitMix64 rng(777);
  constexpr std::size_t kJobs = 100;
  std::vector<Des> des;
  std::vector<DesBitsliceKeySchedule> sched;
  std::vector<std::unique_ptr<MacContext>> macs;
  std::vector<util::Bytes> bodies, prefixes;
  std::vector<std::uint64_t> ivs;
  KeyedPrefixMac mac_alg(std::make_unique<Md5>());
  for (std::size_t i = 0; i < kJobs; ++i) {
    const util::Bytes key = rng.next_bytes(8);
    des.emplace_back(key);
    sched.push_back(DesBitsliceKeySchedule::from_key(key));
    macs.push_back(mac_alg.make_context(rng.next_bytes(16)));
    prefixes.push_back(rng.next_bytes(8));
    bodies.push_back(rng.next_bytes(i * 17 % 300));
    ivs.push_back(rng.next_u64());
  }

  std::vector<util::Bytes> ct(kJobs, util::Bytes(1, 0xEE));  // dirty
  std::vector<std::array<std::uint8_t, 16>> tags(kJobs);
  std::vector<FusedSealJob> jobs(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i)
    jobs[i] = FusedSealJob{&des[i],      &sched[i],       ivs[i],
                           macs[i].get(), prefixes[i],    bodies[i],
                           tags[i].data(), &ct[i]};
  CryptoBatch batch;
  fused_seal_batch(batch, jobs);
  EXPECT_GT(batch.stats().bitsliced_blocks, 0u);

  for (std::size_t i = 0; i < kJobs; ++i) {
    std::uint8_t ref_tag[16];
    util::Bytes ref_ct;
    fused_seal_into(des[i], ivs[i], *macs[i], prefixes[i], bodies[i],
                    ref_tag, ref_ct);
    EXPECT_EQ(ct[i], ref_ct) << i;
    EXPECT_EQ(util::Bytes(tags[i].begin(), tags[i].end()),
              util::Bytes(ref_tag, ref_tag + 16))
        << i;
  }
}

TEST(FusedBatch, OpenBatchBitIdenticalToSequentialOpenInto) {
  // Round-trip through the batch open, including malformed jobs salted into
  // the burst: ok flags, recovered bodies and tags must all match the
  // per-datagram fused_open_into verdicts.
  util::SplitMix64 rng(888);
  constexpr std::size_t kJobs = 80;
  std::vector<Des> des;
  std::vector<DesBitsliceKeySchedule> sched;
  std::vector<std::unique_ptr<MacContext>> macs;
  std::vector<util::Bytes> cts, prefixes;
  std::vector<std::uint64_t> ivs;
  KeyedPrefixMac mac_alg(std::make_unique<Md5>());
  for (std::size_t i = 0; i < kJobs; ++i) {
    const util::Bytes key = rng.next_bytes(8);
    des.emplace_back(key);
    sched.push_back(DesBitsliceKeySchedule::from_key(key));
    macs.push_back(mac_alg.make_context(rng.next_bytes(16)));
    prefixes.push_back(rng.next_bytes(8));
    ivs.push_back(rng.next_u64());
    if (i % 11 == 3) {
      cts.push_back(rng.next_bytes(13));  // malformed length
    } else if (i % 11 == 7) {
      cts.push_back(rng.next_bytes(16));  // random blocks: padding lottery
    } else {
      std::uint8_t tag[16];
      util::Bytes ct;
      fused_seal_into(des.back(), ivs.back(), *macs.back(), prefixes.back(),
                      rng.next_bytes(i * 23 % 400), tag, ct);
      cts.push_back(std::move(ct));
    }
  }

  std::vector<util::Bytes> got_body(kJobs, util::Bytes(1, 0xEE));
  std::vector<std::array<std::uint8_t, 16>> got_tag(kJobs);
  std::vector<FusedOpenJob> jobs(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs[i].des = &des[i];
    jobs[i].schedule = &sched[i];
    jobs[i].iv = ivs[i];
    jobs[i].mac = macs[i].get();
    jobs[i].mac_prefix = prefixes[i];
    jobs[i].ciphertext = cts[i];
    jobs[i].mac_out = got_tag[i].data();
    jobs[i].body = &got_body[i];
  }
  CryptoBatch batch;
  fused_open_batch(batch, jobs);

  for (std::size_t i = 0; i < kJobs; ++i) {
    std::uint8_t ref_tag[16];
    util::Bytes ref_body;
    const bool ref_ok = fused_open_into(des[i], ivs[i], *macs[i],
                                        prefixes[i], cts[i], ref_tag,
                                        ref_body);
    EXPECT_EQ(jobs[i].ok, ref_ok) << i;
    if (!ref_ok) continue;
    EXPECT_EQ(got_body[i], ref_body) << i;
    EXPECT_EQ(util::Bytes(got_tag[i].begin(), got_tag[i].end()),
              util::Bytes(ref_tag, ref_tag + 16))
        << i;
  }
}

}  // namespace
}  // namespace fbs::crypto
