#include "crypto/block_modes.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

class BlockModesRoundTrip
    : public ::testing::TestWithParam<std::tuple<CipherMode, std::size_t>> {};

TEST_P(BlockModesRoundTrip, EncryptThenDecryptIsIdentity) {
  const auto [mode, length] = GetParam();
  util::SplitMix64 rng(static_cast<std::uint64_t>(length) * 31 +
                       static_cast<std::uint64_t>(mode));
  const Des des(rng.next_bytes(8));
  const util::Bytes plain = rng.next_bytes(length);
  const std::uint64_t iv = rng.next_u64();

  const util::Bytes ct = encrypt(des, mode, iv, plain);
  const auto back = decrypt(des, mode, iv, ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plain);

  if (mode == CipherMode::kEcb || mode == CipherMode::kCbc) {
    EXPECT_EQ(ct.size() % 8, 0u);
    EXPECT_GT(ct.size(), plain.size());  // PKCS#7 always pads
  } else {
    EXPECT_EQ(ct.size(), plain.size());  // stream modes preserve length
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModesManyLengths, BlockModesRoundTrip,
    ::testing::Combine(::testing::Values(CipherMode::kEcb, CipherMode::kCbc,
                                         CipherMode::kCfb, CipherMode::kOfb),
                       ::testing::Values(0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u,
                                         64u, 100u, 1460u)));

TEST(BlockModes, Fips81CbcKnownVector) {
  // FIPS PUB 81 appendix CBC example: key 0123456789abcdef,
  // IV 1234567890abcdef, plaintext "Now is the time for all ".
  const Des des(*util::from_hex("0123456789abcdef"));
  const util::Bytes pt = util::to_bytes("Now is the time for all ");
  const util::Bytes ct = encrypt(des, CipherMode::kCbc,
                                 0x1234567890abcdefull, pt);
  // Our CBC appends a PKCS#7 block; the first 24 bytes must match the
  // published ciphertext.
  EXPECT_EQ(util::to_hex(util::Bytes(ct.begin(), ct.begin() + 24)),
            "e5c7cdde872bf27c43e934008c389c0f683788499a7c05f6");
}

TEST(BlockModes, CbcDiffersFromEcbOnRepeatedBlocks) {
  util::SplitMix64 rng(1);
  const Des des(rng.next_bytes(8));
  util::Bytes plain(32, 0x42);  // four identical blocks
  const util::Bytes ecb = encrypt(des, CipherMode::kEcb, 0, plain);
  const util::Bytes cbc = encrypt(des, CipherMode::kCbc, 0, plain);
  // ECB with zero confounder leaks block equality; CBC must not.
  EXPECT_EQ(util::Bytes(ecb.begin(), ecb.begin() + 8),
            util::Bytes(ecb.begin() + 8, ecb.begin() + 16));
  EXPECT_NE(util::Bytes(cbc.begin(), cbc.begin() + 8),
            util::Bytes(cbc.begin() + 8, cbc.begin() + 16));
}

TEST(BlockModes, ConfounderHidesIdenticalDatagrams) {
  // Section 5.2: the confounder's purpose -- equal plaintexts in the same
  // flow must not produce equal ciphertexts, in every mode.
  util::SplitMix64 rng(2);
  const Des des(rng.next_bytes(8));
  const util::Bytes plain = util::to_bytes("GET /index.html HTTP/1.0");
  for (auto mode : {CipherMode::kEcb, CipherMode::kCbc, CipherMode::kCfb,
                    CipherMode::kOfb}) {
    const util::Bytes a = encrypt(des, mode, 0x1111111111111111ull, plain);
    const util::Bytes b = encrypt(des, mode, 0x2222222222222222ull, plain);
    EXPECT_NE(a, b) << static_cast<int>(mode);
  }
}

TEST(BlockModes, WrongIvFailsToDecrypt) {
  util::SplitMix64 rng(3);
  const Des des(rng.next_bytes(8));
  const util::Bytes plain = util::to_bytes("confidential payload here");
  for (auto mode : {CipherMode::kCbc, CipherMode::kCfb, CipherMode::kOfb}) {
    const util::Bytes ct = encrypt(des, mode, 42, plain);
    const auto wrong = decrypt(des, mode, 43, ct);
    // Stream modes and CBC either fail padding or produce different bytes.
    if (wrong.has_value()) {
      EXPECT_NE(*wrong, plain);
    }
  }
}

TEST(BlockModes, WrongKeyFailsToDecrypt) {
  util::SplitMix64 rng(4);
  const Des good(rng.next_bytes(8));
  const Des bad(rng.next_bytes(8));
  const util::Bytes plain = util::to_bytes("per-flow key separation");
  const util::Bytes ct = encrypt(good, CipherMode::kCbc, 7, plain);
  const auto out = decrypt(bad, CipherMode::kCbc, 7, ct);
  if (out.has_value()) {
    EXPECT_NE(*out, plain);
  }
}

TEST(BlockModes, DecryptRejectsNonBlockSizedInput) {
  util::SplitMix64 rng(5);
  const Des des(rng.next_bytes(8));
  const util::Bytes junk(13, 0xAA);
  EXPECT_FALSE(decrypt(des, CipherMode::kEcb, 0, junk).has_value());
  EXPECT_FALSE(decrypt(des, CipherMode::kCbc, 0, junk).has_value());
}

TEST(BlockModes, DecryptRejectsEmptyBlockModeInput) {
  util::SplitMix64 rng(6);
  const Des des(rng.next_bytes(8));
  EXPECT_FALSE(decrypt(des, CipherMode::kCbc, 0, util::Bytes{}).has_value());
  // Stream modes: empty in, empty out.
  EXPECT_TRUE(decrypt(des, CipherMode::kOfb, 0, util::Bytes{})->empty());
}

TEST(BlockModes, CorruptedPaddingDetected) {
  util::SplitMix64 rng(7);
  const Des des(rng.next_bytes(8));
  util::Bytes ct = encrypt(des, CipherMode::kCbc, 9, util::to_bytes("xyz"));
  // Flipping bits in the last block corrupts padding with high probability.
  ct.back() ^= 0xFF;
  ct[ct.size() - 2] ^= 0xFF;
  const auto out = decrypt(des, CipherMode::kCbc, 9, ct);
  if (out.has_value()) {
    EXPECT_NE(*out, util::to_bytes("xyz"));
  }
}

TEST(BlockModes, IntoVariantsMatchAllocatingOnes) {
  // The datagram fast path uses encrypt_into/decrypt_into with a reused
  // buffer; every mode and length must be bit-identical to the one-shots,
  // including when the buffer arrives dirty and oversized from a previous
  // larger datagram.
  util::SplitMix64 rng(9);
  const Des des(rng.next_bytes(8));
  util::Bytes ct_buf(4096, 0xEE);  // dirty, oversized
  util::Bytes pt_buf(4096, 0xEE);
  for (auto mode : {CipherMode::kEcb, CipherMode::kCbc, CipherMode::kCfb,
                    CipherMode::kOfb}) {
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 100u, 1460u}) {
      const util::Bytes plain = rng.next_bytes(len);
      const std::uint64_t iv = rng.next_u64();
      encrypt_into(des, mode, iv, plain, ct_buf);
      EXPECT_EQ(ct_buf, encrypt(des, mode, iv, plain))
          << static_cast<int>(mode) << " len " << len;
      ASSERT_TRUE(decrypt_into(des, mode, iv, ct_buf, pt_buf));
      EXPECT_EQ(pt_buf, plain) << static_cast<int>(mode) << " len " << len;
    }
  }
}

TEST(BlockModes, DecryptIntoRejectsWhatDecryptRejects) {
  util::SplitMix64 rng(10);
  const Des des(rng.next_bytes(8));
  util::Bytes out;
  EXPECT_FALSE(decrypt_into(des, CipherMode::kEcb, 0, util::Bytes(13, 0xAA),
                            out));
  EXPECT_FALSE(decrypt_into(des, CipherMode::kCbc, 0, util::Bytes{}, out));
  // Bad PKCS#7 padding: all-zero "ciphertext" decrypts to garbage padding
  // with overwhelming probability.
  bool any_rejected = false;
  for (int i = 0; i < 8; ++i) {
    util::Bytes junk = rng.next_bytes(16);
    if (!decrypt_into(des, CipherMode::kCbc, rng.next_u64(), junk, out)) {
      any_rejected = true;
    }
  }
  EXPECT_TRUE(any_rejected);
}

TEST(BlockModes, EcbConfounderXorChangesCiphertext) {
  // Section 5.2: in ECB the confounder is XOR'ed with every plaintext block.
  util::SplitMix64 rng(8);
  const Des des(rng.next_bytes(8));
  const util::Bytes plain(16, 0x00);
  EXPECT_NE(encrypt(des, CipherMode::kEcb, 1, plain),
            encrypt(des, CipherMode::kEcb, 2, plain));
}

}  // namespace
}  // namespace fbs::crypto
