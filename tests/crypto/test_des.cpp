#include "crypto/des.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

Des des_from_hex(const char* key_hex) {
  return Des(*util::from_hex(key_hex));
}

TEST(Des, ClassicWorkedExample) {
  // The widely published FIPS worked example.
  const Des des = des_from_hex("133457799BBCDFF1");
  EXPECT_EQ(des.encrypt_block(0x0123456789ABCDEFull), 0x85E813540F0AB405ull);
  EXPECT_EQ(des.decrypt_block(0x85E813540F0AB405ull), 0x0123456789ABCDEFull);
}

TEST(Des, KnownZeroCiphertext) {
  const Des des = des_from_hex("0E329232EA6D0D73");
  EXPECT_EQ(des.encrypt_block(0x8787878787878787ull), 0ull);
}

TEST(Des, AllZeroKeyVector) {
  // DES(k=00..00, pt=00..00) = 8CA64DE9C1B123A7 (standard test vector).
  const Des des = des_from_hex("0000000000000000");
  EXPECT_EQ(des.encrypt_block(0), 0x8CA64DE9C1B123A7ull);
}

TEST(Des, AllOnesKeyVector) {
  // DES(k=FF..FF, pt=FF..FF) = 7359B2163E4EDC58.
  const Des des = des_from_hex("FFFFFFFFFFFFFFFF");
  EXPECT_EQ(des.encrypt_block(0xFFFFFFFFFFFFFFFFull), 0x7359B2163E4EDC58ull);
}

TEST(Des, ParityBitsIgnored) {
  // Keys differing only in parity bits (bit 8 of each byte) are equivalent.
  const Des a = des_from_hex("133457799BBCDFF1");
  const Des b = des_from_hex("123456789ABCDEF0");
  EXPECT_EQ(a.encrypt_block(0x1122334455667788ull),
            b.encrypt_block(0x1122334455667788ull));
}

TEST(Des, EncryptDecryptRoundTripRandom) {
  util::SplitMix64 rng(17);
  for (int i = 0; i < 100; ++i) {
    const Des des(rng.next_bytes(8));
    const std::uint64_t pt = rng.next_u64();
    EXPECT_EQ(des.decrypt_block(des.encrypt_block(pt)), pt);
  }
}

TEST(Des, ComplementationProperty) {
  // DES(~k, ~p) == ~DES(k, p) -- a structural identity of the cipher that
  // catches subtle table errors.
  util::SplitMix64 rng(23);
  for (int i = 0; i < 20; ++i) {
    const util::Bytes key = rng.next_bytes(8);
    util::Bytes nkey(8);
    for (int j = 0; j < 8; ++j) nkey[j] = static_cast<std::uint8_t>(~key[j]);
    const std::uint64_t pt = rng.next_u64();
    const Des des(key), ndes(nkey);
    EXPECT_EQ(ndes.encrypt_block(~pt), ~des.encrypt_block(pt));
  }
}

TEST(Des, ByteInterfaceMatchesWordInterface) {
  const Des des = des_from_hex("133457799BBCDFF1");
  std::uint8_t in[8] = {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
  std::uint8_t out[8];
  des.encrypt_block(in, out);
  EXPECT_EQ(Des::load_be64(out), 0x85E813540F0AB405ull);
  std::uint8_t back[8];
  des.decrypt_block(out, back);
  EXPECT_EQ(Des::load_be64(back), 0x0123456789ABCDEFull);
}

TEST(Des, AvalancheSingleBitFlip) {
  const Des des = des_from_hex("0123456789ABCDEF");
  const std::uint64_t base = des.encrypt_block(0);
  const std::uint64_t flipped = des.encrypt_block(1);
  const int diff = __builtin_popcountll(base ^ flipped);
  EXPECT_GE(diff, 16);  // avalanche: ~half the bits should change
}

TEST(Des, LoadStoreBe64RoundTrip) {
  std::uint8_t buf[8];
  Des::store_be64(0x0102030405060708ull, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(Des::load_be64(buf), 0x0102030405060708ull);
}

}  // namespace
}  // namespace fbs::crypto
