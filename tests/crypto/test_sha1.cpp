#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

namespace fbs::crypto {
namespace {

std::string sha1_hex(const std::string& s) {
  return util::to_hex(sha1(util::to_bytes(s)));
}

TEST(Sha1, FipsVectors) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  // FIPS 180 long test: one million repetitions of 'a'.
  Sha1 ctx;
  const util::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(util::to_hex(ctx.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot) {
  const util::Bytes data = util::to_bytes(
      "security flow labels feed a one-way pseudorandom hash function");
  for (std::size_t chunk : {1u, 5u, 64u, 65u}) {
    Sha1 ctx;
    for (std::size_t off = 0; off < data.size(); off += chunk)
      ctx.update(util::BytesView(data).subspan(
          off, std::min(chunk, data.size() - off)));
    EXPECT_EQ(ctx.finish(), sha1(data)) << "chunk " << chunk;
  }
}

TEST(Sha1, PaddingBoundaries) {
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const util::Bytes data(n, 'y');
    EXPECT_EQ(sha1(data).size(), 20u) << n;
  }
}

TEST(Sha1, ResetAndClone) {
  Sha1 ctx;
  ctx.update(util::to_bytes("junk"));
  ctx.reset();
  ctx.update(util::to_bytes("ab"));
  auto copy = ctx.clone();
  copy->update(util::to_bytes("c"));
  EXPECT_EQ(util::to_hex(copy->finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DigestLongerThanMd5) {
  Sha1 s;
  EXPECT_EQ(s.digest_size(), 20u);
  EXPECT_EQ(s.block_size(), 64u);
}

}  // namespace
}  // namespace fbs::crypto
