#include "crypto/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {
namespace {

struct Flow {
  util::Bytes key;
  Des des;
  DesBitsliceKeySchedule schedule;

  explicit Flow(util::Bytes k)
      : key(std::move(k)),
        des(key),
        schedule(DesBitsliceKeySchedule::from_key(key)) {}
};

/// Build a burst of bodies with the given sizes, CBC-encrypt each with the
/// scalar reference path, then check the batch planner both directions.
void check_burst(std::uint64_t seed, const std::vector<std::size_t>& sizes,
                 std::size_t flows) {
  util::SplitMix64 rng(seed);
  std::vector<Flow> flow_set;
  flow_set.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) flow_set.emplace_back(rng.next_bytes(8));

  std::vector<util::Bytes> bodies;
  std::vector<util::Bytes> ciphertexts;
  std::vector<std::uint64_t> ivs;
  std::vector<std::size_t> owner;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    bodies.push_back(rng.next_bytes(sizes[i]));
    ivs.push_back(rng.next_u64());
    owner.push_back(i % flows);
    const Flow& f = flow_set[owner.back()];
    ciphertexts.push_back(encrypt(f.des, CipherMode::kCbc, ivs[i], bodies[i]));
  }

  // open: batch-decrypt the scalar ciphertexts, expect padded plaintexts.
  CryptoBatch batch;
  std::vector<util::Bytes> opened(sizes.size());
  std::vector<CbcOpenJob> open_jobs;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Flow& f = flow_set[owner[i]];
    opened[i].resize(ciphertexts[i].size());
    open_jobs.push_back(CbcOpenJob{&f.des, &f.schedule, ivs[i],
                                   ciphertexts[i], opened[i].data()});
  }
  batch.open_cbc(open_jobs);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // Padded plaintext: body followed by PKCS#7 pad bytes.
    const std::size_t pad = opened[i].size() - bodies[i].size();
    ASSERT_GE(pad, 1u);
    ASSERT_LE(pad, 8u);
    ASSERT_TRUE(std::equal(bodies[i].begin(), bodies[i].end(),
                           opened[i].begin()))
        << "job " << i;
    for (std::size_t k = bodies[i].size(); k < opened[i].size(); ++k) {
      ASSERT_EQ(opened[i][k], pad) << "job " << i << " pad byte " << k;
    }
  }

  // seal: batch-encrypt the bodies, expect the scalar ciphertexts.
  std::vector<util::Bytes> sealed(sizes.size());
  std::vector<CbcSealJob> seal_jobs;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Flow& f = flow_set[owner[i]];
    sealed[i].resize(CryptoBatch::padded_size(bodies[i].size()));
    seal_jobs.push_back(CbcSealJob{&f.des, &f.schedule, ivs[i], bodies[i],
                                   sealed[i].data()});
  }
  batch.seal_cbc(seal_jobs);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_EQ(sealed[i], ciphertexts[i]) << "job " << i;
  }
}

TEST(CryptoBatch, SingleLargeDatagramSingleFlow) {
  // One 1408B datagram: decrypt splits its 177 blocks across lanes.
  check_burst(1, {1408}, 1);
}

TEST(CryptoBatch, BurstOfEqualDatagramsOneFlow) {
  check_burst(2, std::vector<std::size_t>(32, 512), 1);
}

TEST(CryptoBatch, BurstMixedSizesMixedFlows) {
  check_burst(3, {0, 1, 7, 8, 9, 63, 64, 65, 512, 1408, 100, 333, 24, 8000},
              5);
}

TEST(CryptoBatch, EveryJobDistinctFlow) {
  std::vector<std::size_t> sizes(64, 96);
  check_burst(4, sizes, 64);
}

TEST(CryptoBatch, MoreJobsThanLanes) {
  check_burst(5, std::vector<std::size_t>(150, 40), 9);
}

TEST(CryptoBatch, SubThresholdBurstFallsBackToScalar) {
  CryptoBatch probe;
  // 2 jobs x 2 blocks = 4 blocks < threshold: scalar path, still correct.
  check_burst(6, {10, 12}, 2);
  // Verify the routing decision itself on a fresh batch.
  util::SplitMix64 rng(7);
  Flow f(rng.next_bytes(8));
  util::Bytes body = rng.next_bytes(10);
  util::Bytes ct = encrypt(f.des, CipherMode::kCbc, 99, body);
  util::Bytes out(ct.size());
  const CbcOpenJob job{&f.des, &f.schedule, 99, ct, out.data()};
  probe.open_cbc({&job, 1});
  EXPECT_EQ(probe.stats().bitsliced_blocks, 0u);
  EXPECT_EQ(probe.stats().scalar_blocks, 2u);
}

TEST(CryptoBatch, LargeBurstUsesBitsliceEngine) {
  util::SplitMix64 rng(8);
  Flow f(rng.next_bytes(8));
  util::Bytes body = rng.next_bytes(1408);
  util::Bytes ct = encrypt(f.des, CipherMode::kCbc, 1234, body);
  util::Bytes out(ct.size());
  CryptoBatch batch;
  const CbcOpenJob job{&f.des, &f.schedule, 1234, ct, out.data()};
  batch.open_cbc({&job, 1});
  EXPECT_EQ(batch.stats().bitsliced_blocks, ct.size() / 8);
  EXPECT_EQ(batch.stats().scalar_blocks, 0u);
  // All blocks covered in ceil(blocks / kLanes) full-width passes.
  EXPECT_EQ(batch.stats().passes,
            (ct.size() / 8 + CryptoBatch::kLanes - 1) / CryptoBatch::kLanes);
}

TEST(CryptoBatch, MixedKeyBurstRekeysLanesAtJobBoundaries) {
  util::SplitMix64 rng(9);
  std::vector<Flow> flows;
  for (int i = 0; i < 4; ++i) flows.emplace_back(rng.next_bytes(8));
  std::vector<util::Bytes> bodies;
  std::vector<util::Bytes> cts;
  std::vector<util::Bytes> outs;
  std::vector<CbcOpenJob> jobs;
  bodies.reserve(8);
  cts.reserve(8);
  outs.reserve(8);
  for (std::size_t i = 0; i < 8; ++i) {
    const Flow& f = flows[i % flows.size()];
    bodies.push_back(rng.next_bytes(200));
    cts.push_back(encrypt(f.des, CipherMode::kCbc, i, bodies.back()));
    outs.emplace_back(cts.back().size());
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const Flow& f = flows[i % flows.size()];
    jobs.push_back(CbcOpenJob{&f.des, &f.schedule, i, cts[i], outs[i].data()});
  }
  CryptoBatch batch;
  batch.open_cbc(jobs);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(std::equal(bodies[i].begin(), bodies[i].end(),
                           outs[i].begin()))
        << "job " << i;
  }
  // 8 jobs spread over kLanes lanes: at most 7 boundary crossings can rekey.
  EXPECT_LE(batch.stats().lane_rekeys, 7u);
}

TEST(CryptoBatch, EmptyAndZeroBlockJobsAreSafe) {
  CryptoBatch batch;
  batch.open_cbc({});
  batch.seal_cbc({});
  EXPECT_EQ(batch.stats().passes, 0u);
}

}  // namespace
}  // namespace fbs::crypto
