#include "crypto/algorithms.hpp"

#include <gtest/gtest.h>

namespace fbs::crypto {
namespace {

TEST(Algorithms, DefaultSuiteIsPaperSuite) {
  const AlgorithmSuite s = default_suite();
  EXPECT_EQ(s.mac, MacAlgorithm::kKeyedMd5);
  EXPECT_EQ(s.cipher, CipherAlgorithm::kDesCbc);
}

TEST(Algorithms, EncodeDecodeRoundTripAllSuites) {
  for (auto mac : {MacAlgorithm::kKeyedMd5, MacAlgorithm::kHmacMd5,
                   MacAlgorithm::kKeyedSha1, MacAlgorithm::kHmacSha1}) {
    for (auto cipher :
         {CipherAlgorithm::kNone, CipherAlgorithm::kDesCbc,
          CipherAlgorithm::kDesEcb, CipherAlgorithm::kDesCfb,
          CipherAlgorithm::kDesOfb, CipherAlgorithm::kDes3Ede}) {
      const AlgorithmSuite suite{mac, cipher};
      const auto decoded = decode_suite(encode_suite(suite));
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, suite);
    }
  }
}

TEST(Algorithms, DecodeRejectsUnknownValues) {
  EXPECT_FALSE(decode_suite(0x00).has_value());  // MAC 0 invalid
  EXPECT_FALSE(decode_suite(0xF1).has_value());  // MAC 15 invalid
  EXPECT_FALSE(decode_suite(0x1F).has_value());  // cipher 15 invalid
}

TEST(Algorithms, ExhaustiveWireByteSweep) {
  // All 256 wire bytes: the decodable set is exactly {known MAC nibble} x
  // {known cipher nibble}, every decode re-encodes to the same byte (no
  // aliasing of unknown nibbles onto known suites), and every valid suite's
  // MAC factory works. This is the suite-registry contract the fuzz corpus
  // leans on: an attacker-controlled suite byte either round-trips exactly
  // or is rejected.
  for (unsigned wire = 0; wire < 256; ++wire) {
    const auto byte = static_cast<std::uint8_t>(wire);
    const unsigned mac_nibble = wire >> 4;
    const unsigned cipher_nibble = wire & 0x0F;
    const bool mac_known = mac_nibble >= 1 && mac_nibble <= 5;
    const bool cipher_known = cipher_nibble <= 5;
    const auto decoded = decode_suite(byte);
    ASSERT_EQ(decoded.has_value(), mac_known && cipher_known)
        << "wire byte 0x" << std::hex << wire;
    if (!decoded) continue;
    EXPECT_EQ(encode_suite(*decoded), byte) << "wire byte 0x" << std::hex
                                            << wire;
    EXPECT_EQ(static_cast<unsigned>(decoded->mac), mac_nibble);
    EXPECT_EQ(static_cast<unsigned>(decoded->cipher), cipher_nibble);
    EXPECT_NE(make_mac(decoded->mac), nullptr);
  }
}

TEST(Algorithms, Des3EdeRegistryEntries) {
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDes3Ede), CipherMode::kCbc);
  const AlgorithmSuite suite{MacAlgorithm::kKeyedMd5,
                             CipherAlgorithm::kDes3Ede};
  const auto decoded = decode_suite(encode_suite(suite));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, suite);
}

TEST(Algorithms, MacFactoryProducesWorkingMacs) {
  const util::Bytes key = util::to_bytes("k");
  const util::Bytes msg = util::to_bytes("m");
  for (auto alg : {MacAlgorithm::kKeyedMd5, MacAlgorithm::kHmacMd5,
                   MacAlgorithm::kKeyedSha1, MacAlgorithm::kHmacSha1}) {
    const auto mac = make_mac(alg);
    ASSERT_NE(mac, nullptr);
    const auto tag = mac->compute(key, {msg});
    EXPECT_EQ(tag.size(), mac_size(alg));
    EXPECT_EQ(tag.size(), mac->mac_size());
  }
}

TEST(Algorithms, MacSizes) {
  EXPECT_EQ(mac_size(MacAlgorithm::kKeyedMd5), 16u);
  EXPECT_EQ(mac_size(MacAlgorithm::kHmacMd5), 16u);
  EXPECT_EQ(mac_size(MacAlgorithm::kKeyedSha1), 20u);
  EXPECT_EQ(mac_size(MacAlgorithm::kHmacSha1), 20u);
}

TEST(Algorithms, CipherModeMapping) {
  EXPECT_FALSE(cipher_mode(CipherAlgorithm::kNone).has_value());
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesCbc), CipherMode::kCbc);
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesEcb), CipherMode::kEcb);
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesCfb), CipherMode::kCfb);
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesOfb), CipherMode::kOfb);
}

TEST(Algorithms, DistinctSuitesDistinctWireBytes) {
  const AlgorithmSuite a{MacAlgorithm::kKeyedMd5, CipherAlgorithm::kDesCbc};
  const AlgorithmSuite b{MacAlgorithm::kHmacSha1, CipherAlgorithm::kNone};
  EXPECT_NE(encode_suite(a), encode_suite(b));
}

}  // namespace
}  // namespace fbs::crypto
