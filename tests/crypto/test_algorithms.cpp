#include "crypto/algorithms.hpp"

#include <gtest/gtest.h>

namespace fbs::crypto {
namespace {

TEST(Algorithms, DefaultSuiteIsPaperSuite) {
  const AlgorithmSuite s = default_suite();
  EXPECT_EQ(s.mac, MacAlgorithm::kKeyedMd5);
  EXPECT_EQ(s.cipher, CipherAlgorithm::kDesCbc);
}

TEST(Algorithms, EncodeDecodeRoundTripAllSuites) {
  for (auto mac : {MacAlgorithm::kKeyedMd5, MacAlgorithm::kHmacMd5,
                   MacAlgorithm::kKeyedSha1, MacAlgorithm::kHmacSha1}) {
    for (auto cipher :
         {CipherAlgorithm::kNone, CipherAlgorithm::kDesCbc,
          CipherAlgorithm::kDesEcb, CipherAlgorithm::kDesCfb,
          CipherAlgorithm::kDesOfb}) {
      const AlgorithmSuite suite{mac, cipher};
      const auto decoded = decode_suite(encode_suite(suite));
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, suite);
    }
  }
}

TEST(Algorithms, DecodeRejectsUnknownValues) {
  EXPECT_FALSE(decode_suite(0x00).has_value());  // MAC 0 invalid
  EXPECT_FALSE(decode_suite(0xF1).has_value());  // MAC 15 invalid
  EXPECT_FALSE(decode_suite(0x1F).has_value());  // cipher 15 invalid
}

TEST(Algorithms, MacFactoryProducesWorkingMacs) {
  const util::Bytes key = util::to_bytes("k");
  const util::Bytes msg = util::to_bytes("m");
  for (auto alg : {MacAlgorithm::kKeyedMd5, MacAlgorithm::kHmacMd5,
                   MacAlgorithm::kKeyedSha1, MacAlgorithm::kHmacSha1}) {
    const auto mac = make_mac(alg);
    ASSERT_NE(mac, nullptr);
    const auto tag = mac->compute(key, {msg});
    EXPECT_EQ(tag.size(), mac_size(alg));
    EXPECT_EQ(tag.size(), mac->mac_size());
  }
}

TEST(Algorithms, MacSizes) {
  EXPECT_EQ(mac_size(MacAlgorithm::kKeyedMd5), 16u);
  EXPECT_EQ(mac_size(MacAlgorithm::kHmacMd5), 16u);
  EXPECT_EQ(mac_size(MacAlgorithm::kKeyedSha1), 20u);
  EXPECT_EQ(mac_size(MacAlgorithm::kHmacSha1), 20u);
}

TEST(Algorithms, CipherModeMapping) {
  EXPECT_FALSE(cipher_mode(CipherAlgorithm::kNone).has_value());
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesCbc), CipherMode::kCbc);
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesEcb), CipherMode::kEcb);
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesCfb), CipherMode::kCfb);
  EXPECT_EQ(*cipher_mode(CipherAlgorithm::kDesOfb), CipherMode::kOfb);
}

TEST(Algorithms, DistinctSuitesDistinctWireBytes) {
  const AlgorithmSuite a{MacAlgorithm::kKeyedMd5, CipherAlgorithm::kDesCbc};
  const AlgorithmSuite b{MacAlgorithm::kHmacSha1, CipherAlgorithm::kNone};
  EXPECT_NE(encode_suite(a), encode_suite(b));
}

}  // namespace
}  // namespace fbs::crypto
