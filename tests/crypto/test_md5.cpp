#include "crypto/md5.hpp"

#include <gtest/gtest.h>

namespace fbs::crypto {
namespace {

std::string md5_hex(const std::string& s) {
  return util::to_hex(md5(util::to_bytes(s)));
}

// The complete RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012345"
                    "6789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5_hex("1234567890123456789012345678901234567890123456789012345678"
                    "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, StreamingMatchesOneShot) {
  const util::Bytes data = util::to_bytes(
      "the quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789.");
  for (std::size_t chunk : {1u, 3u, 7u, 63u, 64u, 65u}) {
    Md5 ctx;
    for (std::size_t off = 0; off < data.size(); off += chunk)
      ctx.update(util::BytesView(data).subspan(
          off, std::min(chunk, data.size() - off)));
    EXPECT_EQ(ctx.finish(), md5(data)) << "chunk " << chunk;
  }
}

TEST(Md5, ResetAllowsReuse) {
  Md5 ctx;
  ctx.update(util::to_bytes("first"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(util::to_bytes("abc"));
  EXPECT_EQ(util::to_hex(ctx.finish()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, CloneCopiesState) {
  Md5 ctx;
  ctx.update(util::to_bytes("ab"));
  auto copy = ctx.clone();
  copy->update(util::to_bytes("c"));
  EXPECT_EQ(util::to_hex(copy->finish()),
            "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, LengthPaddingBoundaries) {
  // 55, 56, 57, 63, 64, 65-byte messages exercise both padding branches.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const util::Bytes data(n, 'x');
    Md5 ctx;
    ctx.update(data);
    const auto d1 = ctx.finish();
    EXPECT_EQ(d1.size(), 16u);
    EXPECT_EQ(d1, md5(data)) << n;
  }
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(md5(util::to_bytes("flow-1")), md5(util::to_bytes("flow-2")));
}

TEST(Md5, InterfaceMetadata) {
  Md5 ctx;
  EXPECT_EQ(ctx.digest_size(), 16u);
  EXPECT_EQ(ctx.block_size(), 64u);
}

}  // namespace
}  // namespace fbs::crypto
