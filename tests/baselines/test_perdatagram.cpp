#include "baselines/perdatagram.hpp"

#include <gtest/gtest.h>

#include "crypto/bbs.hpp"
#include "support/world.hpp"

namespace fbs::baselines {
namespace {

using fbs::testing::TestWorld;

class PerDatagramTest : public ::testing::Test {
 protected:
  PerDatagramTest() : world_(808), key_rng_(1), iv_rng_(2) {
    auto& a = world_.add_node("a", "10.0.0.1");
    auto& b = world_.add_node("b", "10.0.0.2");
    alice_ = std::make_unique<PerDatagramKeyProtocol>(a.principal, *a.keys,
                                                      key_rng_, iv_rng_);
    bob_ = std::make_unique<PerDatagramKeyProtocol>(b.principal, *b.keys,
                                                    key_rng_, iv_rng_);
  }

  core::Datagram dgram(const std::string& body) {
    core::Datagram d;
    d.source = world_["a"].principal;
    d.destination = world_["b"].principal;
    d.body = util::to_bytes(body);
    return d;
  }

  TestWorld world_;
  util::SplitMix64 key_rng_;
  util::SplitMix64 iv_rng_;
  std::unique_ptr<PerDatagramKeyProtocol> alice_;
  std::unique_ptr<PerDatagramKeyProtocol> bob_;
};

TEST_F(PerDatagramTest, RoundTrip) {
  const auto wire = alice_->protect(dgram("keyed per datagram"));
  ASSERT_TRUE(wire.has_value());
  const auto back = bob_->unprotect(world_["a"].principal, *wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, util::to_bytes("keyed per datagram"));
}

TEST_F(PerDatagramTest, TamperedPayloadRejected) {
  // Unlike raw host-pair keying, this baseline has a MAC.
  const auto wire = alice_->protect(dgram("protected"));
  util::Bytes bad = *wire;
  bad.back() ^= 0x01;
  EXPECT_FALSE(bob_->unprotect(world_["a"].principal, bad).has_value());
}

TEST_F(PerDatagramTest, CutAndPasteRejected) {
  const auto w1 = alice_->protect(dgram("first"));
  const auto w2 = alice_->protect(dgram("second"));
  // Mix w1's wrapped key with w2's body: MAC fails.
  util::Bytes spliced(w1->begin(), w1->begin() + 16);
  spliced.insert(spliced.end(), w2->begin() + 16, w2->end());
  EXPECT_FALSE(bob_->unprotect(world_["a"].principal, spliced).has_value());
}

TEST_F(PerDatagramTest, TruncatedRejected) {
  const auto wire = alice_->protect(dgram("short"));
  const util::Bytes cut(wire->begin(), wire->begin() + 20);
  EXPECT_FALSE(bob_->unprotect(world_["a"].principal, cut).has_value());
}

TEST_F(PerDatagramTest, MasterKeyNeverTouchesData) {
  // Two identical bodies produce unrelated ciphertexts (fresh datagram
  // keys), so a master-key-recovery attack via data patterns has nothing to
  // chew on.
  const auto w1 = alice_->protect(dgram("identical"));
  const auto w2 = alice_->protect(dgram("identical"));
  EXPECT_NE(*w1, *w2);
  EXPECT_NE(util::Bytes(w1->begin(), w1->begin() + 16),
            util::Bytes(w2->begin(), w2->begin() + 16));  // wrapped keys differ
}

TEST_F(PerDatagramTest, WorksWithBbsKeyGenerator) {
  // The faithful (slow) configuration: per-datagram keys from the
  // quadratic-residue generator.
  util::SplitMix64 seeder(77);
  crypto::BlumBlumShub bbs = crypto::BlumBlumShub::generate(128, seeder);
  auto& a = world_["a"];
  PerDatagramKeyProtocol sender(a.principal, *a.keys, bbs, iv_rng_);
  const auto wire = sender.protect(dgram("bbs keyed"));
  ASSERT_TRUE(wire.has_value());
  const auto back = bob_->unprotect(a.principal, *wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, util::to_bytes("bbs keyed"));
}

}  // namespace
}  // namespace fbs::baselines
