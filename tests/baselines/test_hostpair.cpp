#include "baselines/hostpair.hpp"

#include <gtest/gtest.h>

#include "support/world.hpp"

namespace fbs::baselines {
namespace {

using fbs::testing::TestWorld;

class HostPairTest : public ::testing::Test {
 protected:
  HostPairTest() : world_(707) {
    auto& a = world_.add_node("a", "10.0.0.1");
    auto& b = world_.add_node("b", "10.0.0.2");
    alice_ = std::make_unique<HostPairProtocol>(a.principal, *a.keys,
                                                world_.rng);
    bob_ = std::make_unique<HostPairProtocol>(b.principal, *b.keys,
                                              world_.rng);
  }

  core::Datagram dgram(const std::string& body) {
    core::Datagram d;
    d.source = world_["a"].principal;
    d.destination = world_["b"].principal;
    d.body = util::to_bytes(body);
    return d;
  }

  TestWorld world_;
  std::unique_ptr<HostPairProtocol> alice_;
  std::unique_ptr<HostPairProtocol> bob_;
};

TEST_F(HostPairTest, RoundTrip) {
  const auto wire = alice_->protect(dgram("host pair payload"));
  ASSERT_TRUE(wire.has_value());
  const auto back = bob_->unprotect(world_["a"].principal, *wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, util::to_bytes("host pair payload"));
}

TEST_F(HostPairTest, CiphertextHidesPlaintext) {
  const util::Bytes body = util::to_bytes("confidential but fragile");
  const auto wire = alice_->protect(dgram("confidential but fragile"));
  EXPECT_EQ(std::search(wire->begin(), wire->end(), body.begin(), body.end()),
            wire->end());
}

TEST_F(HostPairTest, UnknownPeerFails) {
  core::Datagram d = dgram("x");
  d.destination =
      core::Principal::from_ipv4(*net::Ipv4Address::parse("9.9.9.9"));
  EXPECT_FALSE(alice_->protect(d).has_value());
}

TEST_F(HostPairTest, CutAndPasteSucceeds) {
  // THE vulnerability (Section 2.2): all traffic between the host pair uses
  // one key, and there is no MAC. An attacker can swap entire encrypted
  // payloads between datagrams -- both decrypt "successfully" and the
  // receiver cannot tell.
  const auto wire1 = alice_->protect(dgram("payment to carol: $10"));
  const auto wire2 = alice_->protect(dgram("payment to mallet: $99"));
  ASSERT_TRUE(wire1 && wire2);

  // Mallet swaps the payloads (keeping each wire's own IV prefix intact
  // would garble the first block; swapping whole wires is the trivial
  // variant -- datagram 1's slot now carries datagram 2's content).
  const auto spliced = bob_->unprotect(world_["a"].principal, *wire2);
  ASSERT_TRUE(spliced.has_value());
  EXPECT_EQ(*spliced, util::to_bytes("payment to mallet: $99"));
  // No integrity check exists to bind a payload to its datagram: the swap
  // is undetectable by construction.
}

TEST_F(HostPairTest, TamperedCiphertextStillDecrypts) {
  // Contrast with FBS: bit flips in the ciphertext yield garbage that the
  // receiver happily delivers (no MAC) -- unless PKCS#7 happens to break.
  const auto wire = alice_->protect(dgram("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa"));
  util::Bytes bad = *wire;
  bad[8] ^= 0xFF;  // first ciphertext block
  const auto back = bob_->unprotect(world_["a"].principal, bad);
  if (back.has_value()) {
    EXPECT_NE(*back, util::to_bytes("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa"));
  }
  // Either way: no reliable detection. This test documents the weakness.
}

TEST_F(HostPairTest, AllFlowsShareOneKey) {
  // Two datagrams from different "conversations" decrypt with the same
  // master key -- compromise of that key exposes everything.
  const auto w1 = alice_->protect(dgram("telnet session"));
  const auto w2 = alice_->protect(dgram("nfs traffic"));
  EXPECT_TRUE(bob_->unprotect(world_["a"].principal, *w1).has_value());
  EXPECT_TRUE(bob_->unprotect(world_["a"].principal, *w2).has_value());
  // (Same KeyManager entry used for both -- one upcall total.)
  EXPECT_EQ(world_["a"].mkd->stats().master_keys_computed, 1u);
}

}  // namespace
}  // namespace fbs::baselines
