#include "baselines/skiplike.hpp"

#include <gtest/gtest.h>

#include "support/world.hpp"

namespace fbs::baselines {
namespace {

using fbs::testing::TestWorld;

class SkipLikeTest : public ::testing::Test {
 protected:
  SkipLikeTest() : world_(1010) {
    auto& a = world_.add_node("a", "10.0.0.1");
    auto& b = world_.add_node("b", "10.0.0.2");
    alice_ = std::make_unique<SkipLikeProtocol>(a.principal, *a.keys,
                                                world_.rng);
    bob_ = std::make_unique<SkipLikeProtocol>(b.principal, *b.keys,
                                              world_.rng);
  }

  core::Datagram dgram(const std::string& body) {
    core::Datagram d;
    d.source = world_["a"].principal;
    d.destination = world_["b"].principal;
    d.body = util::to_bytes(body);
    return d;
  }

  TestWorld world_;
  std::unique_ptr<SkipLikeProtocol> alice_;
  std::unique_ptr<SkipLikeProtocol> bob_;
};

TEST_F(SkipLikeTest, RoundTrip) {
  const auto wire = alice_->protect(dgram("zero-message, host granular"));
  ASSERT_TRUE(wire.has_value());
  const auto back = bob_->unprotect(world_["a"].principal, *wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, util::to_bytes("zero-message, host granular"));
}

TEST_F(SkipLikeTest, KeyDerivedPerDatagram) {
  // Section 7.4's performance point: SKIP-style schemes pay a key
  // derivation for every datagram; FBS pays once per flow.
  for (int i = 0; i < 10; ++i) {
    const auto wire = alice_->protect(dgram("pkt"));
    (void)bob_->unprotect(world_["a"].principal, *wire);
  }
  EXPECT_EQ(alice_->keys_derived(), 10u);
  EXPECT_EQ(bob_->keys_derived(), 10u);
}

TEST_F(SkipLikeTest, CounterAdvancesPerDatagram) {
  const auto w1 = alice_->protect(dgram("a"));
  const auto w2 = alice_->protect(dgram("b"));
  // First 8 bytes are the counter: strictly increasing.
  util::ByteReader r1(*w1), r2(*w2);
  EXPECT_LT(*r1.u64(), *r2.u64());
}

TEST_F(SkipLikeTest, TamperedRejected) {
  const auto wire = alice_->protect(dgram("check"));
  util::Bytes bad = *wire;
  bad.back() ^= 0x01;
  EXPECT_FALSE(bob_->unprotect(world_["a"].principal, bad).has_value());
}

TEST_F(SkipLikeTest, CounterTamperingRejected) {
  const auto wire = alice_->protect(dgram("check"));
  util::Bytes bad = *wire;
  bad[7] ^= 0x01;  // counter -> different packet key -> MAC fails
  EXPECT_FALSE(bob_->unprotect(world_["a"].principal, bad).has_value());
}

TEST_F(SkipLikeTest, TruncatedRejected) {
  const auto wire = alice_->protect(dgram("check"));
  for (std::size_t n : {0u, 7u, 15u, 30u}) {
    const util::Bytes cut(wire->begin(),
                          wire->begin() + static_cast<std::ptrdiff_t>(
                                              std::min(n, wire->size())));
    EXPECT_FALSE(bob_->unprotect(world_["a"].principal, cut).has_value());
  }
}

TEST_F(SkipLikeTest, UnknownPeerFails) {
  core::Datagram d = dgram("x");
  d.destination =
      core::Principal::from_ipv4(*net::Ipv4Address::parse("8.8.8.8"));
  EXPECT_FALSE(alice_->protect(d).has_value());
}

}  // namespace
}  // namespace fbs::baselines
