#include "baselines/kdc.hpp"

#include <gtest/gtest.h>

#include "net/ip.hpp"

namespace fbs::baselines {
namespace {

core::Principal principal(const char* ip) {
  return core::Principal::from_ipv4(*net::Ipv4Address::parse(ip));
}

class KdcTest : public ::testing::Test {
 protected:
  KdcTest()
      : clock_(util::minutes(100)),
        rng_(909),
        kdc_(rng_, util::seconds(1), &clock_),
        a_(principal("10.0.0.1")),
        b_(principal("10.0.0.2")) {
    alice_ = std::make_unique<KdcSessionProtocol>(a_, kdc_.enroll(a_), kdc_,
                                                  rng_);
    bob_ = std::make_unique<KdcSessionProtocol>(b_, kdc_.enroll(b_), kdc_,
                                                rng_);
  }

  core::Datagram dgram(const std::string& body) {
    core::Datagram d;
    d.source = a_;
    d.destination = b_;
    d.body = util::to_bytes(body);
    return d;
  }

  util::VirtualClock clock_;
  util::SplitMix64 rng_;
  KeyDistributionCenter kdc_;
  core::Principal a_, b_;
  std::unique_ptr<KdcSessionProtocol> alice_;
  std::unique_ptr<KdcSessionProtocol> bob_;
};

TEST_F(KdcTest, RoundTrip) {
  const auto wire = alice_->protect(dgram("ticketed"));
  ASSERT_TRUE(wire.has_value());
  const auto back = bob_->unprotect(a_, *wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, util::to_bytes("ticketed"));
}

TEST_F(KdcTest, FirstDatagramPaysKdcRoundTrip) {
  // The setup cost FBS avoids: the first datagram to a new peer blocks on a
  // KDC round trip.
  const util::TimeUs before = clock_.now();
  (void)alice_->protect(dgram("one"));
  EXPECT_EQ(clock_.now() - before, util::seconds(1));
  EXPECT_EQ(alice_->setup_round_trips(), 1u);
  // Subsequent datagrams reuse the hard session state: no more trips.
  (void)alice_->protect(dgram("two"));
  (void)alice_->protect(dgram("three"));
  EXPECT_EQ(alice_->setup_round_trips(), 1u);
  EXPECT_EQ(kdc_.requests(), 1u);
}

TEST_F(KdcTest, HardStateAccumulatesPerPeer) {
  const auto c = principal("10.0.0.3");
  (void)kdc_.enroll(c);
  core::Datagram d = dgram("x");
  (void)alice_->protect(d);
  d.destination = c;
  (void)alice_->protect(d);
  EXPECT_EQ(alice_->send_sessions(), 2u);  // hard state, one entry per peer
}

TEST_F(KdcTest, ReceiverBuildsHardStateFromTicket) {
  const auto wire = alice_->protect(dgram("x"));
  EXPECT_EQ(bob_->receive_sessions(), 0u);
  (void)bob_->unprotect(a_, *wire);
  EXPECT_EQ(bob_->receive_sessions(), 1u);
}

TEST_F(KdcTest, TeardownLosesSessionUnlikeSoftState) {
  // The contrast with FBS soft state: after teardown the receiver cannot
  // process an old-session datagram without the ticket path re-running, and
  // the sender must set up again.
  const auto wire = alice_->protect(dgram("pre-teardown"));
  (void)bob_->unprotect(a_, *wire);
  alice_->teardown(b_);
  EXPECT_EQ(alice_->send_sessions(), 0u);
  (void)alice_->protect(dgram("post-teardown"));
  EXPECT_EQ(alice_->setup_round_trips(), 2u);  // had to set up again
}

TEST_F(KdcTest, UnenrolledPeerFails) {
  core::Datagram d = dgram("x");
  d.destination = principal("10.0.0.99");
  EXPECT_FALSE(alice_->protect(d).has_value());
}

TEST_F(KdcTest, TamperedDatagramRejected) {
  const auto wire = alice_->protect(dgram("integrity"));
  util::Bytes bad = *wire;
  bad.back() ^= 0x01;
  EXPECT_FALSE(bob_->unprotect(a_, bad).has_value());
}

TEST_F(KdcTest, StolenTicketWrongSourceRejected) {
  // A ticket names its owner; replaying it from another principal fails.
  const auto wire = alice_->protect(dgram("mine"));
  const auto c = principal("10.0.0.3");
  EXPECT_FALSE(bob_->unprotect(c, *wire).has_value());
}

TEST_F(KdcTest, TamperedTicketRejected) {
  const auto wire = alice_->protect(dgram("ticket check"));
  util::Bytes bad = *wire;
  bad[3] ^= 0x40;  // inside the ticket
  EXPECT_FALSE(bob_->unprotect(a_, bad).has_value());
}

}  // namespace
}  // namespace fbs::baselines
