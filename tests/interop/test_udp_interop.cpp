// Cross-process loopback interop driver (ctest label `udp`).
//
// Forks the two example binaries, which establish an FBS flow with zero
// key-exchange messages and exchange MAC-verified, encrypted datagrams over
// a real UDP socket pair on 127.0.0.1 -- two OS processes, one kernel
// network stack, no simulation. The initiator then replays its own captured
// wire frames; the responder's strict replay cache must reject every one.
// Finally the captures both sides wrote are decoded with
// tools/fbs_dissect.py, proving the wire format is what PROTOCOL.md says
// it is.
//
//   test_udp_interop <responder_bin> <initiator_bin> <dissector_py> <workdir>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

constexpr int kCount = 8;
constexpr int kReplays = 3;

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "test_udp_interop: %s\n", why.c_str());
  std::exit(1);
}

struct Child {
  pid_t pid = -1;
  FILE* out = nullptr;  // child's stdout
};

/// fork/exec with the child's stdout on a pipe we read.
Child spawn(const std::vector<std::string>& args) {
  int fds[2];
  if (pipe(fds) != 0) die("pipe failed");
  const pid_t pid = fork();
  if (pid < 0) die("fork failed");
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  close(fds[1]);
  Child c;
  c.pid = pid;
  c.out = fdopen(fds[0], "r");
  if (c.out == nullptr) die("fdopen failed");
  return c;
}

int wait_exit(Child& c) {
  int status = 0;
  if (waitpid(c.pid, &status, 0) != c.pid) die("waitpid failed");
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

std::string read_line(FILE* f) {
  char buf[512];
  if (std::fgets(buf, sizeof buf, f) == nullptr) return {};
  return buf;
}

/// "key=value" extraction from a RESULT line.
long long result_field(const std::string& line, const std::string& key) {
  const auto at = line.find(key + "=");
  if (at == std::string::npos) return -1;
  return std::atoll(line.c_str() + at + key.size() + 1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 5) die("usage: responder_bin initiator_bin dissector workdir");
  const std::string responder_bin = argv[1];
  const std::string initiator_bin = argv[2];
  const std::string dissector = argv[3];
  const std::string workdir = argv[4];
  const std::string resp_pcap = workdir + "/udp_interop_responder.pcap";
  const std::string init_pcap = workdir + "/udp_interop_initiator.pcap";

  // 1. Responder up first; it prints READY <socket port> once bound.
  Child responder = spawn({responder_bin, "--expect", std::to_string(kCount),
                           "--expect-replays", std::to_string(kReplays),
                           "--pcap", resp_pcap, "--timeout-ms", "60000"});
  const std::string ready = read_line(responder.out);
  unsigned port = 0;
  if (std::sscanf(ready.c_str(), "READY %u", &port) != 1 || port == 0) {
    die("responder did not report READY, got: " + ready);
  }

  // 2. Initiator: flow setup + kCount protected datagrams + kReplays
  //    verbatim replays against that socket.
  Child initiator = spawn({initiator_bin, "--peer-port", std::to_string(port),
                           "--count", std::to_string(kCount), "--replays",
                           std::to_string(kReplays), "--pcap", init_pcap,
                           "--timeout-ms", "60000"});
  const std::string init_result = read_line(initiator.out);
  if (wait_exit(initiator) != 0) die("initiator failed: " + init_result);

  const std::string resp_result = read_line(responder.out);
  if (wait_exit(responder) != 0) die("responder failed: " + resp_result);
  fclose(initiator.out);
  fclose(responder.out);

  // 3. The receiver's counters, asserted from its own report: every real
  //    datagram accepted, every replayed frame rejected by the cache, no
  //    MAC failures (nothing was tampered).
  if (result_field(resp_result, "accepted") != kCount) {
    die("responder accepted != " + std::to_string(kCount) + ": " +
        resp_result);
  }
  if (result_field(resp_result, "replay_rejected") != kReplays) {
    die("responder replay_rejected != " + std::to_string(kReplays) + ": " +
        resp_result);
  }
  if (result_field(resp_result, "bad_mac") != 0) {
    die("responder saw MAC failures: " + resp_result);
  }
  if (result_field(init_result, "echoes") != kCount) {
    die("initiator echoes != " + std::to_string(kCount) + ": " + init_result);
  }

  // 4. Both captures must decode as FBS. The initiator's capture holds its
  //    kCount sends + kReplays replays + kCount inbound echoes.
  for (const auto& [pcap, expect] :
       {std::pair<std::string, int>{init_pcap, 2 * kCount + kReplays},
        std::pair<std::string, int>{resp_pcap, 2 * kCount + kReplays}}) {
    const std::string cmd = "python3 " + dissector + " " + pcap +
                            " --expect-fbs " + std::to_string(expect) +
                            " > " + pcap + ".txt 2>&1";
    if (std::system(cmd.c_str()) != 0) {
      die("dissector rejected " + pcap + " (see " + pcap + ".txt)");
    }
  }

  std::printf("udp interop ok: %d protected datagrams each way, %d replays "
              "rejected, both pcaps decoded\n",
              kCount, kReplays);
  return 0;
}
