// Chaos soak harness: drives FBS-protected traffic through a deliberately
// hostile environment -- Gilbert-Elliott burst loss, bit corruption,
// scheduled link partitions, directory outages/faults, and mid-run
// soft-state wipes -- all derived deterministically from one seed.
//
// The invariants it exists to check are the paper's robustness claims:
//   1. nothing crashes;
//   2. no forged or corrupted datagram is ever accepted (every delivered
//      payload is byte-identical to one that was sent);
//   3. secret payloads never appear in plaintext on the wire;
//   4. once the faults cease, traffic converges back to 100% delivery --
//      all protocol state is soft and re-derivable.
#pragma once

#include <algorithm>
#include <set>
#include <vector>

#include "cert/directory.hpp"
#include "net/simnet.hpp"
#include "fbs/ip_map.hpp"
#include "net/udp.hpp"
#include "support/world.hpp"

namespace fbs::testing {

/// Tracks every payload handed to the network so deliveries and wire bytes
/// can be audited against it.
class PayloadLedger {
 public:
  explicit PayloadLedger(std::uint64_t seed) : rng_(seed) {}

  /// A fresh unique payload (random bytes; uniqueness whp at >= 16 bytes).
  util::Bytes make_payload(std::size_t size) {
    util::Bytes p = rng_.next_bytes(size);
    sent_.insert(p);
    return p;
  }

  bool was_sent(const util::Bytes& p) const { return sent_.count(p) != 0; }
  std::size_t distinct_sent() const { return sent_.size(); }

  /// Does any sent payload appear in clear inside `frame`? A 32-byte random
  /// prefix is searched, which spans fragmented payloads' first fragments
  /// and makes accidental ciphertext matches astronomically unlikely.
  bool leaks_into(const util::Bytes& frame) const {
    for (const auto& p : sent_) {
      const std::size_t n = std::min<std::size_t>(p.size(), 32);
      if (std::search(frame.begin(), frame.end(), p.begin(), p.begin() + n) !=
          frame.end())
        return true;
    }
    return false;
  }

 private:
  util::SplitMix64 rng_;
  std::set<util::Bytes> sent_;
};

/// Randomized fault schedule parameters, drawn from the chaos seed.
struct ChaosPlan {
  net::LinkParams faulty_link;
  cert::FaultPlan directory_plan;
  util::TimeUs window = util::seconds(20);  // faults live inside [0, window)
  int partition_windows = 0;
  bool directory_outage = false;
  int soft_state_wipes = 0;

  static ChaosPlan draw(util::RandomSource& rng) {
    auto uniform = [&](double lo, double hi) {
      return lo + (hi - lo) * rng.next_double();
    };
    ChaosPlan plan;
    plan.faulty_link.delay = util::TimeUs{500};
    plan.faulty_link.jitter =
        static_cast<util::TimeUs>(uniform(0, 2e6));  // reorders
    plan.faulty_link.loss = uniform(0.0, 0.1);
    plan.faulty_link.duplicate = uniform(0.0, 0.1);
    plan.faulty_link.burst_enter = uniform(0.02, 0.15);
    plan.faulty_link.burst_exit = uniform(0.1, 0.5);
    plan.faulty_link.burst_loss = uniform(0.6, 1.0);
    plan.faulty_link.corrupt = uniform(0.02, 0.1);
    plan.directory_plan.fail_probability = uniform(0.1, 0.4);
    plan.directory_plan.fail_burst =
        static_cast<std::uint32_t>(1 + rng.next_below(3));
    plan.directory_plan.slow_probability = uniform(0.0, 0.5);
    plan.directory_plan.extra_latency =
        static_cast<util::TimeUs>(uniform(0, 2e5));
    plan.directory_plan.seed = rng.next_u64();
    plan.partition_windows = static_cast<int>(1 + rng.next_below(3));
    plan.directory_outage = rng.next_below(2) == 0;
    plan.soft_state_wipes = static_cast<int>(1 + rng.next_below(3));
    return plan;
  }
};

/// Two FBS hosts exchanging UDP datagrams across one chaotic segment.
/// `b_config` lets a soak run the receiver in parallel-pipeline mode (the
/// phases drain the pipeline after the event loop settles; a no-op in the
/// default synchronous mode).
class TwoHostChaosRig {
 public:
  explicit TwoHostChaosRig(std::uint64_t seed,
                           const core::IpMappingConfig& b_config = {})
      : world_(seed),
        schedule_rng_(seed * 0x9E3779B97F4A7C15ULL + 1),
        ledger_(seed ^ 0xC0FFEE),
        net_(world_.clock, seed + 17),
        a_node_(world_.add_node("a", "10.0.0.1")),
        b_node_(world_.add_node("b", "10.0.0.2")),
        a_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.1")),
        b_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.2")),
        a_fbs_(a_stack_, core::IpMappingConfig{}, *a_node_.keys, world_.clock,
               world_.rng),
        b_fbs_(b_stack_, b_config, *b_node_.keys, world_.clock,
               world_.rng),
        a_udp_(a_stack_),
        b_udp_(b_stack_) {
    b_udp_.bind(9000, [this](net::Ipv4Address, std::uint16_t,
                             util::Bytes p) {
      delivered_.push_back(std::move(p));
    });
    net_.set_tap([this](net::Ipv4Address, net::Ipv4Address,
                        util::Bytes& frame) {
      if (ledger_.leaks_into(frame)) ++plaintext_leaks_;
      return net::SimNetwork::TapVerdict::kPass;
    });
  }

  /// Phase 1: randomized faults + traffic, then drain all events.
  void run_fault_phase(int datagrams) {
    const ChaosPlan plan = ChaosPlan::draw(schedule_rng_);
    const util::TimeUs t0 = world_.clock.now();
    net_.set_default_link(plan.faulty_link);
    world_.directory.set_fault_plan(plan.directory_plan);
    for (int i = 0; i < plan.partition_windows; ++i) {
      const util::TimeUs from = t0 + draw_time(plan.window);
      net_.partition(a_stack_.address(), b_stack_.address(), from,
                     from + draw_time(util::seconds(4)));
    }
    if (plan.directory_outage) {
      const util::TimeUs from = t0 + draw_time(plan.window);
      world_.directory.add_outage(from, from + draw_time(util::seconds(5)));
    }
    for (int i = 0; i < plan.soft_state_wipes; ++i) {
      net_.call_later(draw_time(plan.window),
                      [this, which = schedule_rng_.next_below(4)] {
                        wipe_soft_state(which);
                      });
    }
    for (int i = 0; i < datagrams; ++i) {
      // A few jumbo payloads exercise fragmentation/reassembly under loss.
      const std::size_t size = i % 17 == 0 ? 3000 : 48;
      net_.call_later(draw_time(plan.window),
                      [this, payload = ledger_.make_payload(size), i] {
                        if (a_udp_.send(b_stack_.address(),
                                        static_cast<std::uint16_t>(4000 + i % 4),
                                        9000, payload))
                          ++fault_phase_sent_;
                      });
    }
    net_.run();
    b_fbs_.drain_pipeline_all();
    fault_phase_delivered_ = delivered_.size();
  }

  /// Phase 2: faults cease; every datagram sent now must arrive.
  void run_recovery_phase(int datagrams) {
    net_.set_default_link(net::LinkParams{});
    net_.clear_partitions();
    world_.directory.clear_fault_plan();
    world_.directory.clear_outages();
    // Let negative-cache entries from the outage expire.
    world_.clock.advance(a_node_.mkd->retry_policy().negative_ttl);
    for (int i = 0; i < datagrams; ++i) {
      const auto payload = ledger_.make_payload(48);
      if (a_udp_.send(b_stack_.address(), 4100, 9000, payload))
        ++recovery_sent_;
    }
    net_.run();
    b_fbs_.drain_pipeline_all();
    recovery_delivered_ = delivered_.size() - fault_phase_delivered_;
  }

  /// Invariant 2: every delivered payload is byte-identical to a sent one.
  bool all_deliveries_genuine() const {
    return std::all_of(delivered_.begin(), delivered_.end(),
                       [&](const util::Bytes& p) { return ledger_.was_sent(p); });
  }

  std::uint64_t plaintext_leaks() const { return plaintext_leaks_; }
  std::size_t fault_phase_sent() const { return fault_phase_sent_; }
  std::size_t fault_phase_delivered() const { return fault_phase_delivered_; }
  std::size_t recovery_sent() const { return recovery_sent_; }
  std::size_t recovery_delivered() const { return recovery_delivered_; }

  TestWorld world_;
  util::SplitMix64 schedule_rng_;
  PayloadLedger ledger_;
  net::SimNetwork net_;
  TestWorld::Node& a_node_;
  TestWorld::Node& b_node_;
  net::IpStack a_stack_;
  net::IpStack b_stack_;
  core::FbsIpMapping a_fbs_;
  core::FbsIpMapping b_fbs_;
  net::UdpService a_udp_;
  net::UdpService b_udp_;

 private:
  util::TimeUs draw_time(util::TimeUs range) {
    return static_cast<util::TimeUs>(
        schedule_rng_.next_below(static_cast<std::uint64_t>(range)));
  }

  void wipe_soft_state(std::uint64_t which) {
    switch (which) {
      case 0: a_fbs_.endpoint().clear_soft_state(); break;
      case 1: b_fbs_.endpoint().clear_soft_state(); break;
      case 2:  // full receiver restart: endpoint + MKC + PVC
        b_fbs_.endpoint().clear_soft_state();
        b_node_.keys->clear_soft_state();
        b_node_.mkd->clear_soft_state();
        break;
      default:  // both ends at once
        a_fbs_.endpoint().clear_soft_state();
        a_node_.keys->clear_soft_state();
        b_fbs_.endpoint().clear_soft_state();
        break;
    }
  }

  std::vector<util::Bytes> delivered_;
  std::uint64_t plaintext_leaks_ = 0;
  std::size_t fault_phase_sent_ = 0;
  std::size_t fault_phase_delivered_ = 0;
  std::size_t recovery_sent_ = 0;
  std::size_t recovery_delivered_ = 0;
};

}  // namespace fbs::testing
