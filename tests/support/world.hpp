// Shared test universe: a certificate authority, a directory service, and a
// set of principals each holding a Diffie-Hellman keypair, a published
// public-value certificate, a master key daemon and a kernel key manager.
// Uses the fast insecure test DH group by default so fixtures stay cheap;
// individual tests can opt into an Oakley group.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::testing {

class TestWorld {
 public:
  struct Node {
    core::Principal principal;
    crypto::DhKeyPair dh;
    std::unique_ptr<core::MasterKeyDaemon> mkd;
    std::unique_ptr<core::KeyManager> keys;
  };

  explicit TestWorld(std::uint64_t seed = 1997,
                     const crypto::DhGroup& group = crypto::test_group(),
                     util::TimeUs directory_rtt = util::TimeUs{0})
      : rng(seed),
        clock(util::minutes(1000)),
        ca(512, rng),
        directory(directory_rtt, &clock),
        group_(group) {}

  /// Create a principal at `ip`, publish its certificate, wire up MKD/MKC.
  Node& add_node(const std::string& name, const std::string& ip,
                 std::size_t pvc_size = 16, std::size_t mkc_size = 16) {
    Node node;
    node.principal =
        core::Principal::from_ipv4(*net::Ipv4Address::parse(ip));
    node.principal.name = name;
    node.dh = crypto::dh_generate(group_, rng);
    directory.publish(ca.issue(
        node.principal.address, group_.name,
        node.dh.public_value.to_bytes_be(group_.element_size()),
        clock.now() - util::minutes(10), clock.now() + util::minutes(100000)));
    node.mkd = std::make_unique<core::MasterKeyDaemon>(
        node.principal, node.dh.private_value, group_, ca, directory, clock,
        pvc_size);
    // Backoff waits advance the shared virtual clock, so a directory outage
    // can clear while a daemon is between retries.
    node.mkd->set_backoff_waiter(
        [this](util::TimeUs wait) { clock.advance(wait); });
    node.keys = std::make_unique<core::KeyManager>(*node.mkd, mkc_size);
    auto [it, inserted] = nodes.emplace(name, std::move(node));
    return it->second;
  }

  Node& operator[](const std::string& name) { return nodes.at(name); }

  util::SplitMix64 rng;
  util::VirtualClock clock;
  cert::CertificateAuthority ca;
  cert::DirectoryService directory;
  std::map<std::string, Node> nodes;

 private:
  const crypto::DhGroup& group_;
};

}  // namespace fbs::testing
