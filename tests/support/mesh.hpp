// Mesh scenario harness: FBS endpoints attached to a multi-hop transit
// fabric (net/mesh.hpp), with the same auditing spine as the two-host chaos
// rig -- a PayloadLedger for genuineness/leak checks, a seeded schedule
// RNG, and per-host delivery bookkeeping. Scenarios compose a topology,
// attach hosts, schedule traffic and router-granularity faults, and then
// assert the survival invariants:
//   1. every delivered payload is byte-identical to one that was sent;
//   2. no payload is ever delivered twice (replay/duplication rejected);
//   3. secret payloads never cross any link in plaintext;
//   4. frames are conserved -- every one is delivered or dropped for a
//      named, counted reason, at both the wire and the queue layer;
//   5. once faults cease, traffic converges back to 100% delivery.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fbs/ip_map.hpp"
#include "net/mesh.hpp"
#include "net/udp.hpp"
#include "support/chaos.hpp"
#include "support/world.hpp"

namespace fbs::testing {

/// An edge host behind an access router: a plain IP stack, optionally
/// FBS-protected, a UDP service, and sent/delivered bookkeeping.
struct MeshHost {
  std::string name;
  TestWorld::Node* node = nullptr;          // null for plain (noise) hosts
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::FbsIpMapping> fbs;  // null for plain hosts
  std::unique_ptr<net::UdpService> udp;
  std::vector<util::Bytes> delivered;
  std::size_t sent_ok = 0;

  net::Ipv4Address address() const { return stack->address(); }

  /// Deliveries beyond the first of the same payload -- the "no datagram
  /// accepted twice" invariant (payloads are unique random bytes).
  std::size_t duplicate_deliveries() const {
    std::map<util::Bytes, int> seen;
    std::size_t dup = 0;
    for (const auto& p : delivered)
      if (++seen[p] > 1) ++dup;
    return dup;
  }
};

class MeshScenarioRig {
 public:
  explicit MeshScenarioRig(std::uint64_t seed)
      : world(seed),
        schedule_rng(seed * 0x9E3779B97F4A7C15ULL + 1),
        ledger(seed ^ 0xC0FFEE),
        net(world.clock, seed + 17),
        mesh(net, world.clock, world.rng) {
    net.set_tap([this](net::Ipv4Address from, net::Ipv4Address to,
                       util::Bytes& frame) {
      if (ledger.leaks_into(frame)) ++plaintext_leaks_;
      if (frame_observer_) frame_observer_(from, to, frame);
      return net::SimNetwork::TapVerdict::kPass;
    });
  }

  /// FBS-speaking host: principal + published cert + MKD/MKC (TestWorld),
  /// IP stack with the FBS hooks installed, attached behind `access_router`.
  MeshHost& add_fbs_host(const std::string& name, const std::string& ip,
                         net::Ipv4Address access_router,
                         const core::IpMappingConfig& config = {},
                         const net::TransitLinkConfig& access = {}) {
    auto host = std::make_unique<MeshHost>();
    host->name = name;
    host->node = &world.add_node(name, ip);
    host->stack = std::make_unique<net::IpStack>(
        net, world.clock, *net::Ipv4Address::parse(ip));
    host->fbs = std::make_unique<core::FbsIpMapping>(
        *host->stack, config, *host->node->keys, world.clock, world.rng);
    return attach(std::move(host), access_router, access);
  }

  /// Unprotected host (cross traffic / queue-overflow noise): no principal,
  /// no FBS hooks, just UDP over the routed fabric.
  MeshHost& add_plain_host(const std::string& name, const std::string& ip,
                           net::Ipv4Address access_router,
                           const net::TransitLinkConfig& access = {}) {
    auto host = std::make_unique<MeshHost>();
    host->name = name;
    host->stack = std::make_unique<net::IpStack>(
        net, world.clock, *net::Ipv4Address::parse(ip));
    return attach(std::move(host), access_router, access);
  }

  /// Collect everything arriving on `port` into the host's delivered list.
  void open_sink(MeshHost& host, std::uint16_t port) {
    MeshHost* hp = &host;
    host.udp->bind(port,
                   [hp](net::Ipv4Address, std::uint16_t, util::Bytes p) {
                     hp->delivered.push_back(std::move(p));
                   });
  }

  /// Schedule one datagram `at_delay` from now. Audited sends draw a unique
  /// ledger payload (genuineness/leak checks apply); unaudited sends are
  /// noise traffic that is allowed to travel in plaintext.
  void schedule_send(MeshHost& from, net::Ipv4Address to, std::uint16_t dport,
                     util::TimeUs at_delay, std::size_t size,
                     std::uint16_t sport = 4000, bool audit = true) {
    util::Bytes payload =
        audit ? ledger.make_payload(size) : schedule_rng.next_bytes(size);
    MeshHost* fp = &from;
    net.call_later(at_delay,
                   [fp, to, sport, dport, payload = std::move(payload)] {
                     if (fp->udp->send(to, sport, dport, payload))
                       ++fp->sent_ok;
                   });
  }

  /// Uniform draw in [0, range) from the schedule RNG.
  util::TimeUs draw(util::TimeUs range) {
    return static_cast<util::TimeUs>(
        schedule_rng.next_below(static_cast<std::uint64_t>(range)));
  }

  /// Observe every frame the tap sees (e.g. to capture wire images for a
  /// replay-injection attack). Observation only; frames always pass.
  using FrameObserver = std::function<void(
      net::Ipv4Address from, net::Ipv4Address to, const util::Bytes& frame)>;
  void set_frame_observer(FrameObserver fn) {
    frame_observer_ = std::move(fn);
  }

  bool all_deliveries_genuine(const MeshHost& host) const {
    for (const auto& p : host.delivered)
      if (!ledger.was_sent(p)) return false;
    return true;
  }

  std::uint64_t plaintext_leaks() const { return plaintext_leaks_; }

  TestWorld world;
  util::SplitMix64 schedule_rng;
  PayloadLedger ledger;
  net::SimNetwork net;
  net::MeshNetwork mesh;

 private:
  MeshHost& attach(std::unique_ptr<MeshHost> host,
                   net::Ipv4Address access_router,
                   const net::TransitLinkConfig& access) {
    host->udp = std::make_unique<net::UdpService>(*host->stack);
    mesh.attach_host(host->stack->address(), access_router, access);
    host->stack->set_default_route(access_router);
    auto [it, inserted] = hosts_.emplace(host->name, std::move(host));
    return *it->second;
  }

  std::map<std::string, std::unique_ptr<MeshHost>> hosts_;
  FrameObserver frame_observer_;
  std::uint64_t plaintext_leaks_ = 0;
};

}  // namespace fbs::testing
