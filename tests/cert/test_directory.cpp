#include "cert/directory.hpp"

#include <gtest/gtest.h>

#include "support/world.hpp"

namespace fbs::cert {
namespace {

PublicValueCertificate make_cert(CertificateAuthority& ca,
                                 const std::string& subject) {
  return ca.issue(util::to_bytes(subject), "g", util::to_bytes("pv"),
                  util::minutes(0), util::minutes(1000));
}

class DirectoryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SplitMix64 rng(21);
    ca_ = new CertificateAuthority(512, rng);
  }
  static void TearDownTestSuite() {
    delete ca_;
    ca_ = nullptr;
  }
  static CertificateAuthority* ca_;
};

CertificateAuthority* DirectoryTest::ca_ = nullptr;

TEST_F(DirectoryTest, PublishThenFetch) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  const auto cert = dir.fetch(util::to_bytes("host-a"));
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->subject, util::to_bytes("host-a"));
}

TEST_F(DirectoryTest, FetchUnknownSubjectFails) {
  DirectoryService dir;
  EXPECT_FALSE(dir.fetch(util::to_bytes("nobody")).has_value());
  EXPECT_EQ(dir.fetch_count(), 1u);
}

TEST_F(DirectoryTest, RepublishReplaces) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  const auto first = dir.fetch(util::to_bytes("host-a"));
  dir.publish(make_cert(*ca_, "host-a"));
  const auto second = dir.fetch(util::to_bytes("host-a"));
  EXPECT_NE(first->serial, second->serial);
}

TEST_F(DirectoryTest, RevokeRemoves) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  dir.revoke(util::to_bytes("host-a"));
  EXPECT_FALSE(dir.fetch(util::to_bytes("host-a")).has_value());
}

TEST_F(DirectoryTest, FetchChargesRoundTripToClock) {
  // Section 5.3: a PVC miss "incurs at the minimum a round trip
  // communication delay".
  util::VirtualClock clock(util::minutes(5));
  DirectoryService dir(util::seconds(1), &clock);
  dir.publish(make_cert(*ca_, "host-a"));
  const util::TimeUs before = clock.now();
  (void)dir.fetch(util::to_bytes("host-a"));
  EXPECT_EQ(clock.now() - before, util::seconds(1));
  (void)dir.fetch(util::to_bytes("host-a"));
  EXPECT_EQ(dir.total_fetch_delay(), util::seconds(2));
}

TEST_F(DirectoryTest, MissingSubjectIsAuthoritativeNotTransient) {
  DirectoryService dir;
  const auto result = dir.fetch(util::to_bytes("nobody"));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.transient());  // kNotFound: retrying is pointless
}

TEST_F(DirectoryTest, FaultPlanFailsTransiently) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  FaultPlan plan;
  plan.fail_probability = 1.0;
  dir.set_fault_plan(plan);
  const auto result = dir.fetch(util::to_bytes("host-a"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.transient());
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(dir.failed_fetches(), 1u);
  dir.clear_fault_plan();
  EXPECT_TRUE(dir.fetch(util::to_bytes("host-a")).ok());
}

TEST_F(DirectoryTest, FailureBurstsFailConsecutively) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  FaultPlan plan;
  plan.fail_probability = 0.2;
  plan.fail_burst = 3;
  plan.seed = 5;
  dir.set_fault_plan(plan);
  // Every maximal run of failures must span at least fail_burst fetches
  // (runs can chain if a fresh draw fails right after a burst ends).
  int run = 0;
  bool saw_failure = false;
  for (int i = 0; i < 200; ++i) {
    if (dir.fetch(util::to_bytes("host-a")).ok()) {
      if (run > 0) EXPECT_GE(run, 3);
      run = 0;
    } else {
      ++run;
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);
}

TEST_F(DirectoryTest, SlowFetchesChargeExtraLatency) {
  util::VirtualClock clock(0);
  DirectoryService dir(util::seconds(1), &clock);
  dir.publish(make_cert(*ca_, "host-a"));
  FaultPlan plan;
  plan.slow_probability = 1.0;
  plan.extra_latency = util::seconds(2);
  dir.set_fault_plan(plan);
  ASSERT_TRUE(dir.fetch(util::to_bytes("host-a")).ok());
  EXPECT_EQ(clock.now(), util::seconds(3));  // RTT + extra
  EXPECT_EQ(dir.slow_fetches(), 1u);
  EXPECT_EQ(dir.total_fetch_delay(), util::seconds(3));
}

TEST_F(DirectoryTest, FailedFetchesStillPayTheRoundTrip) {
  // The timeout that declares a fetch failed is at least as long as the
  // round trip; the caller's clock must not get the time back.
  util::VirtualClock clock(0);
  DirectoryService dir(util::seconds(1), &clock);
  FaultPlan plan;
  plan.fail_probability = 1.0;
  dir.set_fault_plan(plan);
  EXPECT_TRUE(dir.fetch(util::to_bytes("host-a")).transient());
  EXPECT_EQ(clock.now(), util::seconds(1));
  EXPECT_EQ(dir.total_fetch_delay(), util::seconds(1));
}

TEST_F(DirectoryTest, OutageWindowFailsThenClears) {
  util::VirtualClock clock(0);
  DirectoryService dir(util::TimeUs{0}, &clock);
  dir.publish(make_cert(*ca_, "host-a"));
  dir.add_outage(util::seconds(1), util::seconds(2));
  EXPECT_TRUE(dir.fetch(util::to_bytes("host-a")).ok());  // before
  clock.set(util::seconds(1));
  EXPECT_TRUE(dir.fetch(util::to_bytes("host-a")).transient());  // inside
  clock.set(util::seconds(2));
  EXPECT_TRUE(dir.fetch(util::to_bytes("host-a")).ok());  // over, pruned
  EXPECT_EQ(dir.failed_fetches(), 1u);
}

TEST_F(DirectoryTest, FetchCountsAccumulate) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "a"));
  for (int i = 0; i < 5; ++i) (void)dir.fetch(util::to_bytes("a"));
  EXPECT_EQ(dir.fetch_count(), 5u);
}

}  // namespace
}  // namespace fbs::cert
