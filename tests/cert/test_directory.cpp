#include "cert/directory.hpp"

#include <gtest/gtest.h>

#include "support/world.hpp"

namespace fbs::cert {
namespace {

PublicValueCertificate make_cert(CertificateAuthority& ca,
                                 const std::string& subject) {
  return ca.issue(util::to_bytes(subject), "g", util::to_bytes("pv"),
                  util::minutes(0), util::minutes(1000));
}

class DirectoryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SplitMix64 rng(21);
    ca_ = new CertificateAuthority(512, rng);
  }
  static void TearDownTestSuite() {
    delete ca_;
    ca_ = nullptr;
  }
  static CertificateAuthority* ca_;
};

CertificateAuthority* DirectoryTest::ca_ = nullptr;

TEST_F(DirectoryTest, PublishThenFetch) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  const auto cert = dir.fetch(util::to_bytes("host-a"));
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->subject, util::to_bytes("host-a"));
}

TEST_F(DirectoryTest, FetchUnknownSubjectFails) {
  DirectoryService dir;
  EXPECT_FALSE(dir.fetch(util::to_bytes("nobody")).has_value());
  EXPECT_EQ(dir.fetch_count(), 1u);
}

TEST_F(DirectoryTest, RepublishReplaces) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  const auto first = dir.fetch(util::to_bytes("host-a"));
  dir.publish(make_cert(*ca_, "host-a"));
  const auto second = dir.fetch(util::to_bytes("host-a"));
  EXPECT_NE(first->serial, second->serial);
}

TEST_F(DirectoryTest, RevokeRemoves) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "host-a"));
  dir.revoke(util::to_bytes("host-a"));
  EXPECT_FALSE(dir.fetch(util::to_bytes("host-a")).has_value());
}

TEST_F(DirectoryTest, FetchChargesRoundTripToClock) {
  // Section 5.3: a PVC miss "incurs at the minimum a round trip
  // communication delay".
  util::VirtualClock clock(util::minutes(5));
  DirectoryService dir(util::seconds(1), &clock);
  dir.publish(make_cert(*ca_, "host-a"));
  const util::TimeUs before = clock.now();
  (void)dir.fetch(util::to_bytes("host-a"));
  EXPECT_EQ(clock.now() - before, util::seconds(1));
  (void)dir.fetch(util::to_bytes("host-a"));
  EXPECT_EQ(dir.total_fetch_delay(), util::seconds(2));
}

TEST_F(DirectoryTest, FetchCountsAccumulate) {
  DirectoryService dir;
  dir.publish(make_cert(*ca_, "a"));
  for (int i = 0; i < 5; ++i) (void)dir.fetch(util::to_bytes("a"));
  EXPECT_EQ(dir.fetch_count(), 5u);
}

}  // namespace
}  // namespace fbs::cert
