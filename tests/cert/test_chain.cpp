// Certificate chains: the "distributed certification hierarchy" of Section
// 5.2 -- a root certifies organizational CAs, which certify principals.
#include <gtest/gtest.h>

#include "cert/certificate.hpp"
#include "util/rng.hpp"

namespace fbs::cert {
namespace {

class ChainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SplitMix64 rng(31);
    root_ = new CertificateAuthority(512, rng);
    org_ = new CertificateAuthority(512, rng);
    dept_ = new CertificateAuthority(512, rng);
  }
  static void TearDownTestSuite() {
    delete root_;
    delete org_;
    delete dept_;
    root_ = org_ = dept_ = nullptr;
  }

  static PublicValueCertificate leaf_from(CertificateAuthority& issuer) {
    return issuer.issue(util::to_bytes("\x0a\x00\x00\x01"), "dh-group",
                        util::to_bytes("public-value"), util::minutes(0),
                        util::minutes(1000));
  }

  static CertificateAuthority* root_;
  static CertificateAuthority* org_;
  static CertificateAuthority* dept_;
};

CertificateAuthority* ChainTest::root_ = nullptr;
CertificateAuthority* ChainTest::org_ = nullptr;
CertificateAuthority* ChainTest::dept_ = nullptr;

TEST_F(ChainTest, DepthOneChainIsJustDirectVerification) {
  CertificateChain chain;
  chain.leaf = leaf_from(*root_);
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kValid);
}

TEST_F(ChainTest, DepthTwoChainVerifies) {
  CertificateChain chain;
  chain.leaf = leaf_from(*org_);
  chain.delegations.push_back(root_->delegate(
      *org_, util::to_bytes("org-ca"), util::minutes(0), util::minutes(1000)));
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kValid);
}

TEST_F(ChainTest, DepthThreeChainVerifies) {
  CertificateChain chain;
  chain.leaf = leaf_from(*dept_);
  chain.delegations.push_back(org_->delegate(
      *dept_, util::to_bytes("dept-ca"), util::minutes(0),
      util::minutes(1000)));
  chain.delegations.push_back(root_->delegate(
      *org_, util::to_bytes("org-ca"), util::minutes(0), util::minutes(1000)));
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kValid);
}

TEST_F(ChainTest, MissingDelegationBreaksChain) {
  // Leaf issued by org, but no delegation presented: root cannot verify it.
  CertificateChain chain;
  chain.leaf = leaf_from(*org_);
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kBadSignature);
}

TEST_F(ChainTest, WrongIntermediateRejected) {
  // Delegation names dept but leaf was issued by org.
  CertificateChain chain;
  chain.leaf = leaf_from(*org_);
  chain.delegations.push_back(root_->delegate(
      *dept_, util::to_bytes("dept-ca"), util::minutes(0),
      util::minutes(1000)));
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kBadSignature);
}

TEST_F(ChainTest, ExpiredDelegationPoisonsWholeChain) {
  CertificateChain chain;
  chain.leaf = leaf_from(*org_);
  chain.delegations.push_back(root_->delegate(
      *org_, util::to_bytes("org-ca"), util::minutes(0), util::minutes(5)));
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kExpired);
}

TEST_F(ChainTest, TamperedDelegationKeyRejected) {
  CertificateChain chain;
  chain.leaf = leaf_from(*org_);
  auto delegation = root_->delegate(*org_, util::to_bytes("org-ca"),
                                    util::minutes(0), util::minutes(1000));
  delegation.public_value[5] ^= 0x01;  // swap in a corrupted CA key
  chain.delegations.push_back(delegation);
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kBadSignature);
}

TEST_F(ChainTest, SelfSignedImposterRootRejected) {
  util::SplitMix64 rng(32);
  CertificateAuthority mallory(512, rng);
  CertificateChain chain;
  chain.leaf = leaf_from(mallory);
  chain.delegations.push_back(mallory.delegate(
      mallory, util::to_bytes("fake-root"), util::minutes(0),
      util::minutes(1000)));
  EXPECT_EQ(verify_chain(root_->public_key(), chain, util::minutes(10)),
            CertStatus::kBadSignature);
}

}  // namespace
}  // namespace fbs::cert
