#include "cert/certificate.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::cert {
namespace {

class CertificateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SplitMix64 rng(11);
    ca_ = new CertificateAuthority(512, rng);
  }
  static void TearDownTestSuite() {
    delete ca_;
    ca_ = nullptr;
  }

  PublicValueCertificate issue_default() {
    return ca_->issue(util::to_bytes("\x0a\x01\x00\x01"), "group-x",
                      util::to_bytes("public-value-bytes"), util::minutes(0),
                      util::minutes(1000));
  }

  static CertificateAuthority* ca_;
};

CertificateAuthority* CertificateTest::ca_ = nullptr;

TEST_F(CertificateTest, IssueAndVerify) {
  const auto cert = issue_default();
  EXPECT_EQ(ca_->verify(cert, util::minutes(500)), CertStatus::kValid);
}

TEST_F(CertificateTest, SerialNumbersIncrease) {
  const auto a = issue_default();
  const auto b = issue_default();
  EXPECT_LT(a.serial, b.serial);
}

TEST_F(CertificateTest, NotYetValid) {
  const auto cert = issue_default();
  EXPECT_EQ(ca_->verify(cert, util::minutes(0) - util::seconds(1)),
            CertStatus::kNotYetValid);
}

TEST_F(CertificateTest, Expired) {
  const auto cert = issue_default();
  EXPECT_EQ(ca_->verify(cert, util::minutes(1001)), CertStatus::kExpired);
}

TEST_F(CertificateTest, TamperedSubjectRejected) {
  auto cert = issue_default();
  cert.subject[0] ^= 1;
  EXPECT_EQ(ca_->verify(cert, util::minutes(500)), CertStatus::kBadSignature);
}

TEST_F(CertificateTest, TamperedPublicValueRejected) {
  auto cert = issue_default();
  cert.public_value[3] ^= 0x80;
  EXPECT_EQ(ca_->verify(cert, util::minutes(500)), CertStatus::kBadSignature);
}

TEST_F(CertificateTest, TamperedValidityRejected) {
  auto cert = issue_default();
  cert.not_after += util::minutes(100000);  // extend lifetime
  EXPECT_EQ(ca_->verify(cert, util::minutes(500)), CertStatus::kBadSignature);
}

TEST_F(CertificateTest, TamperedSignatureRejected) {
  auto cert = issue_default();
  cert.signature[10] ^= 0xFF;
  EXPECT_EQ(ca_->verify(cert, util::minutes(500)), CertStatus::kBadSignature);
}

TEST_F(CertificateTest, ForeignCaRejected) {
  util::SplitMix64 rng(12);
  CertificateAuthority other(512, rng);
  const auto cert = issue_default();
  EXPECT_EQ(other.verify(cert, util::minutes(500)),
            CertStatus::kBadSignature);
}

TEST_F(CertificateTest, TbsBytesIsCanonical) {
  const auto a = issue_default();
  auto b = a;
  EXPECT_EQ(a.tbs_bytes(), b.tbs_bytes());
  b.group_name = "other";
  EXPECT_NE(a.tbs_bytes(), b.tbs_bytes());
}

}  // namespace
}  // namespace fbs::cert
