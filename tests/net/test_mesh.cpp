// Transit mesh unit tests: routed delivery across TransitRouter chains,
// bandwidth/queue modeling, router-granularity faults, and the
// frame-conservation accounting the chaos scenarios build on.
#include <gtest/gtest.h>

#include "net/mesh.hpp"
#include "net/udp.hpp"

namespace fbs::net {
namespace {

const Ipv4Address kHostA = *Ipv4Address::parse("10.201.0.1");
const Ipv4Address kHostB = *Ipv4Address::parse("10.201.0.2");

class MeshTest : public ::testing::Test {
 protected:
  MeshTest() : clock_(util::minutes(1)), net_(clock_, 42), rng_(42),
               mesh_(net_, clock_, rng_) {}

  /// Attach a host stack at `router` and point its default route there.
  std::unique_ptr<IpStack> make_host(Ipv4Address addr, Ipv4Address router,
                                     const TransitLinkConfig& cfg = {}) {
    auto host = std::make_unique<IpStack>(net_, clock_, addr);
    mesh_.attach_host(addr, router, cfg);
    host->set_default_route(router);
    return host;
  }

  util::VirtualClock clock_;
  SimNetwork net_;
  util::SplitMix64 rng_;
  MeshNetwork mesh_;
};

TEST_F(MeshTest, LineTopologyDeliversAcrossTransitRouters) {
  const auto r = build_line(mesh_, 3, {});
  auto a = make_host(kHostA, r.front());
  auto b = make_host(kHostB, r.back());
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  util::Bytes got;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  a_udp.send(kHostB, 1, 9, util::to_bytes("across the mesh"));
  net_.run();

  EXPECT_EQ(got, util::to_bytes("across the mesh"));
  // Every router on the path forwarded exactly this one packet.
  for (const Ipv4Address addr : r)
    EXPECT_EQ(mesh_.router(addr).stack().counters().forwarded, 1u)
        << addr.to_string();
  const auto totals = mesh_.totals();
  EXPECT_EQ(totals.sent, 3u);  // r0->r1, r1->r2, r2->hostB
  EXPECT_EQ(totals.enqueued, totals.sent);
}

TEST_F(MeshTest, DisconnectedDestinationDropsWithNoRouteAccounting) {
  mesh_.add_router(mesh_router_address(0));
  mesh_.add_router(mesh_router_address(1));  // never connected
  auto a = make_host(kHostA, mesh_router_address(0));
  auto b = make_host(kHostB, mesh_router_address(1));
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  a_udp.send(kHostB, 1, 9, util::to_bytes("void"));
  net_.run();

  // SimNetwork is fully connected; only the mesh's no-route drop keeps the
  // frame from teleporting across the missing adjacency.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(mesh_.router(mesh_router_address(0)).stats().no_route_dropped, 1u);
}

TEST_F(MeshTest, BandwidthSerializesQueuedFrames) {
  TransitLinkConfig slow;
  slow.bandwidth_bps = 1e6;  // 1000-byte frame = 8ms on the wire
  const auto r = build_line(mesh_, 2, slow);
  auto a = make_host(kHostA, r.front());
  auto b = make_host(kHostB, r.back(), slow);
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  const util::TimeUs t0 = clock_.now();
  for (int i = 0; i < 5; ++i)
    a_udp.send(kHostB, 1, 9, util::Bytes(972, 'x'));  // ~1000B on the wire
  net_.run();

  EXPECT_EQ(delivered, 5);
  // Two serialized hops; the bottleneck alone spaces the 5 frames over at
  // least 4 full serialization times.
  EXPECT_GE(clock_.now() - t0, util::TimeUs{4 * 8'000});
  const auto* ls = mesh_.router(r[0]).link_stats(r[1]);
  ASSERT_NE(ls, nullptr);
  EXPECT_GT(ls->queue.highwater, 1u);  // frames actually queued behind tx
}

TEST_F(MeshTest, CrashWipesQueuedFramesAndRestartResumesService) {
  TransitLinkConfig slow;
  slow.bandwidth_bps = 1e6;
  const auto r = build_line(mesh_, 2, slow);
  auto a = make_host(kHostA, r.front());
  auto b = make_host(kHostB, r.back(), slow);
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  for (int i = 0; i < 10; ++i) a_udp.send(kHostB, 1, 9, util::Bytes(972, 'x'));
  // Crash r0 while most of the burst is still in its egress queue.
  mesh_.crash_router(r[0], clock_.now() + util::TimeUs{10'000},
                     clock_.now() + util::seconds(1));
  net_.run();
  const int delivered_before = delivered;
  EXPECT_LT(delivered_before, 10);
  const auto totals = mesh_.totals();
  EXPECT_GT(totals.wiped, 0u);  // soft state lost with the router

  // Restarted: service resumes.
  a_udp.send(kHostB, 1, 9, util::Bytes(972, 'y'));
  net_.run();
  EXPECT_EQ(delivered, delivered_before + 1);
  EXPECT_EQ(mesh_.router(r[0]).stats().crashes, 1u);
}

TEST_F(MeshTest, LinkFlapReroutesAroundTheDiamond) {
  const auto r = build_diamond(mesh_, {});
  auto a = make_host(kHostA, r[0]);
  auto b = make_host(kHostB, r[3]);
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });

  // Deterministic tie-break: the upper path (via r1, the lower address)
  // carries traffic first.
  a_udp.send(kHostB, 1, 9, util::to_bytes("pre"));
  net_.run();
  EXPECT_EQ(delivered, 1);
  const auto upper_sent = [&] { return mesh_.router(r[0]).link_stats(r[1])->sent; };
  const auto lower_sent = [&] { return mesh_.router(r[0]).link_stats(r[2])->sent; };
  EXPECT_EQ(upper_sent(), 1u);
  EXPECT_EQ(lower_sent(), 0u);

  // Flap the upper path; traffic inside the window must take the lower one.
  const util::TimeUs t0 = clock_.now();
  mesh_.flap_link(r[0], r[1], t0 + util::TimeUs{1'000},
                  t0 + util::TimeUs{500'000});
  net_.call_later(util::TimeUs{10'000},
                  [&] { a_udp.send(kHostB, 1, 9, util::to_bytes("mid")); });
  net_.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(upper_sent(), 1u);
  EXPECT_EQ(lower_sent(), 1u);

  // Healed: the tie-break puts traffic back on the upper path.
  a_udp.send(kHostB, 1, 9, util::to_bytes("post"));
  net_.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(upper_sent(), 2u);
  EXPECT_EQ(lower_sent(), 1u);
}

TEST_F(MeshTest, OverloadAccountsEveryFrame) {
  TransitLinkConfig slow;
  slow.bandwidth_bps = 1e6;
  slow.queue.capacity = 8;
  const auto r = build_line(mesh_, 2, slow);
  auto a = make_host(kHostA, r.front());
  auto b = make_host(kHostB, r.back(), slow);
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  for (int i = 0; i < 64; ++i) a_udp.send(kHostB, 1, 9, util::Bytes(972, 'x'));
  net_.run();

  // The 8-deep bottleneck cannot hold a 64-frame burst: drops are expected,
  // and every offered frame lands in exactly one bucket.
  const auto totals = mesh_.totals();
  EXPECT_GT(totals.tail_dropped, 0u);
  EXPECT_EQ(totals.enqueued, totals.dequeued);  // drained to idle
  EXPECT_EQ(totals.dequeued, totals.sent);
  EXPECT_EQ(totals.depth, 0u);
  EXPECT_EQ(delivered, 64 - static_cast<int>(totals.tail_dropped));
}

TEST_F(MeshTest, BackpressurePausesUpstreamThenRecovers) {
  // h_a - r0 --fast-- r1 --slow-- r2 - h_b with backpressure queues: r1's
  // bottleneck egress fills, crosses its high watermark, and r0 (its
  // upstream) pauses instead of overrunning it. With the watchdog set
  // beyond the drain time, xon -- not the timeout -- governs, and the
  // burst survives a bottleneck 4x smaller than it with zero drops.
  TransitLinkConfig fast;
  fast.queue.discipline = QueueDiscipline::kBackpressure;
  fast.queue.capacity = 256;
  fast.pause_timeout = util::seconds(1);
  TransitLinkConfig slow = fast;
  slow.bandwidth_bps = 1e6;
  slow.queue.capacity = 16;  // high watermark 12, low 4

  const Ipv4Address r0 = mesh_router_address(0);
  const Ipv4Address r1 = mesh_router_address(1);
  const Ipv4Address r2 = mesh_router_address(2);
  mesh_.add_router(r0);
  mesh_.add_router(r1);
  mesh_.add_router(r2);
  mesh_.connect(r0, r1, fast);
  mesh_.connect(r1, r2, slow);
  auto a = make_host(kHostA, r0);
  auto b = make_host(kHostB, r2);
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  for (int i = 0; i < 64; ++i) a_udp.send(kHostB, 1, 9, util::Bytes(972, 'x'));
  net_.run();

  EXPECT_EQ(delivered, 64);
  const auto* upstream = mesh_.router(r0).link_stats(r1);
  ASSERT_NE(upstream, nullptr);
  EXPECT_GE(upstream->pauses, 1u);
  const auto* bottleneck = mesh_.router(r1).link_stats(r2);
  ASSERT_NE(bottleneck, nullptr);
  EXPECT_EQ(bottleneck->queue.tail_dropped, 0u);
  EXPECT_LE(bottleneck->queue.highwater, 16u);
}

TEST_F(MeshTest, PauseWatchdogPreventsPermanentStall) {
  // Pause with no one to resume it (no congestion signal wiring when a
  // router is driven directly): the watchdog must release the link.
  const auto r = build_line(mesh_, 2, {});
  auto a = make_host(kHostA, r[0]);
  auto b = make_host(kHostB, r[1]);
  mesh_.recompute_routes();

  mesh_.router(r[0]).pause_link(r[1]);
  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  a_udp.send(kHostB, 1, 9, util::to_bytes("stuck?"));
  net_.run();  // must terminate with the frame delivered
  EXPECT_EQ(delivered, 1);
}

TEST_F(MeshTest, RandomMeshIsConnectedAndSurvivesARouterCrash) {
  const auto r = build_random_mesh(mesh_, 12, 6, 99, {});
  EXPECT_EQ(mesh_.edges().size(), 12u + 6u);
  auto a = make_host(kHostA, r[0]);
  auto b = make_host(kHostB, r[7]);
  mesh_.recompute_routes();

  UdpService a_udp(*a), b_udp(*b);
  int delivered = 0;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++delivered; });
  a_udp.send(kHostB, 1, 9, util::to_bytes("one"));
  net_.run();
  EXPECT_EQ(delivered, 1);

  // Kill a neighbor of the source's access router; the ring (plus chords)
  // leaves an alternate path, and the recompute finds it.
  mesh_.crash_router(r[1], clock_.now() + util::TimeUs{1'000},
                     clock_.now() + util::minutes(10));
  net_.call_later(util::TimeUs{10'000},
                  [&] { a_udp.send(kHostB, 1, 9, util::to_bytes("two")); });
  net_.run();
  EXPECT_EQ(delivered, 2);
}

TEST_F(MeshTest, MetricsExposePerLinkCountersMonotonically) {
  const auto r = build_line(mesh_, 2, {});
  auto a = make_host(kHostA, r.front());
  auto b = make_host(kHostB, r.back());
  mesh_.recompute_routes();

  obs::MetricsRegistry reg;
  mesh_.register_metrics(reg, "mesh");

  UdpService a_udp(*a), b_udp(*b);
  b_udp.bind(9, [](Ipv4Address, std::uint16_t, util::Bytes) {});
  const auto before = reg.snapshot();
  a_udp.send(kHostB, 1, 9, util::to_bytes("m"));
  net_.run();
  const auto after = reg.snapshot();

  const std::string key =
      "mesh.r0.link." + r[1].to_string() + ".sent";
  ASSERT_TRUE(after.counters.count(key));
  EXPECT_EQ(after.counters.at(key), before.counters.at(key) + 1);
  for (const auto& [name, value] : after.counters)
    if (before.counters.count(name))
      EXPECT_GE(value, before.counters.at(name)) << name;
}

}  // namespace
}  // namespace fbs::net
