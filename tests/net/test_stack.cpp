#include "net/simnet.hpp"
#include "net/stack.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

const Ipv4Address kA = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kB = *Ipv4Address::parse("10.0.0.2");

class StackTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{util::minutes(1)};
  SimNetwork net_{clock_, 3};
  IpStack a_{net_, clock_, kA};
  IpStack b_{net_, clock_, kB};
  std::vector<util::Bytes> received_;

  void SetUp() override {
    b_.register_protocol(IpProto::kUdp,
                         [this](const Ipv4Header&, util::Bytes payload) {
                           received_.push_back(std::move(payload));
                         });
  }
};

TEST_F(StackTest, DeliversPayloadToProtocolHandler) {
  EXPECT_TRUE(a_.output(kB, IpProto::kUdp, util::to_bytes("hi")));
  net_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], util::to_bytes("hi"));
  EXPECT_EQ(b_.counters().delivered, 1u);
}

TEST_F(StackTest, FragmentsAndReassemblesLargePayloads) {
  const util::Bytes big(5000, 'z');
  EXPECT_TRUE(a_.output(kB, IpProto::kUdp, big));
  net_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], big);
  EXPECT_GT(a_.counters().fragments_out, 1u);
  EXPECT_EQ(a_.counters().packets_out, 1u);
}

TEST_F(StackTest, DfDropOversized) {
  EXPECT_FALSE(a_.output(kB, IpProto::kUdp, util::Bytes(5000, 'z'), true));
  EXPECT_EQ(a_.counters().df_drops, 1u);
  net_.run();
  EXPECT_TRUE(received_.empty());
}

TEST_F(StackTest, UnregisteredProtocolCounted) {
  EXPECT_TRUE(a_.output(kB, IpProto::kTcp, util::to_bytes("tcp-ish")));
  net_.run();
  EXPECT_EQ(b_.counters().no_protocol, 1u);
  EXPECT_TRUE(received_.empty());
}

TEST_F(StackTest, GarbageFramesCountedAsParseErrors) {
  net_.inject(kB, util::to_bytes("not an ip packet at all"));
  net_.run();
  EXPECT_EQ(b_.counters().parse_errors, 1u);
}

TEST_F(StackTest, WrongDestinationNotDelivered) {
  // A frame whose simnet address is B but IP destination is A: the stack
  // must not deliver it upward (we do not forward).
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.source = kB;
  h.destination = kA;
  net_.inject(kB, h.serialize(util::to_bytes("misrouted")));
  net_.run();
  EXPECT_EQ(b_.counters().not_for_us, 1u);
  EXPECT_TRUE(received_.empty());
}

TEST_F(StackTest, OutputHookCanTransformPayload) {
  IpStack::SecurityHooks hooks;
  hooks.output = [](Ipv4Header&, util::Bytes& payload) {
    payload.insert(payload.begin(), 0xAB);  // prepend a pseudo header
    return true;
  };
  a_.set_security_hooks(std::move(hooks));
  a_.output(kB, IpProto::kUdp, util::to_bytes("x"));
  net_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], (util::Bytes{0xAB, 'x'}));
}

TEST_F(StackTest, OutputHookDropCounted) {
  IpStack::SecurityHooks hooks;
  hooks.output = [](Ipv4Header&, util::Bytes&) { return false; };
  a_.set_security_hooks(std::move(hooks));
  EXPECT_FALSE(a_.output(kB, IpProto::kUdp, util::to_bytes("x")));
  EXPECT_EQ(a_.counters().hook_drops_out, 1u);
}

TEST_F(StackTest, InputHookSeesReassembledDatagram) {
  // The input hook must run after reassembly (paper hook placement): for a
  // fragmented datagram it sees the whole payload, once.
  std::vector<std::size_t> hook_sizes;
  IpStack::SecurityHooks hooks;
  hooks.input = [&](const Ipv4Header&, util::Bytes& payload) {
    hook_sizes.push_back(payload.size());
    return true;
  };
  b_.set_security_hooks(std::move(hooks));
  a_.output(kB, IpProto::kUdp, util::Bytes(5000, 'q'));
  net_.run();
  ASSERT_EQ(hook_sizes.size(), 1u);
  EXPECT_EQ(hook_sizes[0], 5000u);
}

TEST_F(StackTest, InputHookDropCounted) {
  IpStack::SecurityHooks hooks;
  hooks.input = [](const Ipv4Header&, util::Bytes&) { return false; };
  b_.set_security_hooks(std::move(hooks));
  a_.output(kB, IpProto::kUdp, util::to_bytes("x"));
  net_.run();
  EXPECT_EQ(b_.counters().hook_drops_in, 1u);
  EXPECT_TRUE(received_.empty());
}

TEST_F(StackTest, EffectivePayloadSizeAccountsForOverhead) {
  EXPECT_EQ(a_.effective_payload_size(), 1500u - Ipv4Header::kSize);
  IpStack::SecurityHooks hooks;
  hooks.header_overhead = 34;
  a_.set_security_hooks(std::move(hooks));
  EXPECT_EQ(a_.effective_payload_size(), 1500u - Ipv4Header::kSize - 34u);
}

TEST_F(StackTest, LostFragmentExpiresFromReassemblyQueue) {
  // Drop exactly the second fragment of a three-fragment datagram.
  int frame_no = 0;
  net_.set_tap([&](Ipv4Address, Ipv4Address, util::Bytes&) {
    return ++frame_no == 2 ? SimNetwork::TapVerdict::kDrop
                           : SimNetwork::TapVerdict::kPass;
  });
  EXPECT_TRUE(a_.output(kB, IpProto::kUdp, util::Bytes(4000, 'f')));
  net_.run();
  EXPECT_TRUE(received_.empty());          // incomplete, never delivered
  EXPECT_EQ(b_.reassembly_pending(), 1u);  // partial held for the timeout

  // Past the reassembly timeout the next arriving packet sweeps the
  // partial out; it is counted, not leaked, and later traffic flows.
  clock_.advance(util::seconds(31));
  net_.clear_tap();
  EXPECT_TRUE(a_.output(kB, IpProto::kUdp, util::to_bytes("later")));
  net_.run();
  EXPECT_EQ(b_.counters().reassembly_expired, 1u);
  EXPECT_EQ(b_.reassembly_pending(), 0u);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], util::to_bytes("later"));
}

TEST_F(StackTest, ReassemblyQueueDrainsAfterLossyBurst) {
  LinkParams lossy;
  lossy.loss = 0.3;
  net_.set_default_link(lossy);
  for (int i = 0; i < 50; ++i)
    a_.output(kB, IpProto::kUdp, util::Bytes(4000, 'x'));
  net_.run();
  EXPECT_LT(received_.size(), 50u);        // some datagrams lost a fragment
  EXPECT_GT(b_.reassembly_pending(), 0u);  // their partials are queued

  net_.set_default_link(LinkParams{});
  clock_.advance(util::seconds(31));
  EXPECT_TRUE(a_.output(kB, IpProto::kUdp, util::to_bytes("sweep")));
  net_.run();
  EXPECT_EQ(b_.reassembly_pending(), 0u);  // every partial expired
  EXPECT_GT(b_.counters().reassembly_expired, 0u);
}

TEST_F(StackTest, LossyLinkDeliversSubset) {
  LinkParams lossy;
  lossy.loss = 0.4;
  net_.set_default_link(lossy);
  for (int i = 0; i < 500; ++i)
    a_.output(kB, IpProto::kUdp, util::to_bytes("d"));
  net_.run();
  EXPECT_GT(received_.size(), 100u);
  EXPECT_LT(received_.size(), 450u);
}

}  // namespace
}  // namespace fbs::net
