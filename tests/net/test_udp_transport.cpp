// Real-socket backend over loopback, in-process: two transports on their
// own ephemeral ports exchange FBS-layer frames (full IPv4 packets), with
// the drop buckets and the Transport conservation equation asserted.
#include "net/udp_transport.hpp"

#include <gtest/gtest.h>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace fbs::net {
namespace {

const Ipv4Address kAlice = *Ipv4Address::parse("10.77.0.1");
const Ipv4Address kBob = *Ipv4Address::parse("10.77.0.2");

util::Bytes make_frame(Ipv4Address from, Ipv4Address to,
                       std::size_t payload_size = 32) {
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.source = from;
  h.destination = to;
  return h.serialize(util::Bytes(payload_size, 0xAB));
}

void expect_conservation(const UdpTransport& t) {
  const Transport::Totals tot = t.totals();
  EXPECT_EQ(tot.sent + tot.received + tot.duplicated + tot.injected,
            tot.delivered + tot.tx_wire + tot.dropped + tot.in_flight);
}

struct Pair {
  util::SteadyClock clock;
  UdpTransport a;
  UdpTransport b;

  Pair() : a(clock), b(clock) {
    EXPECT_TRUE(a.ok()) << a.error();
    EXPECT_TRUE(b.ok()) << b.error();
    a.add_peer(kBob, "127.0.0.1", b.local_port());
    b.add_peer(kAlice, "127.0.0.1", a.local_port());
  }

  /// Alternate the two pumps until both go idle `calm` times in a row.
  void run(int calm = 3) {
    int idle = 0;
    for (int i = 0; i < 2000 && idle < calm; ++i) {
      const std::size_t n =
          a.poll(util::TimeUs{1000}) + b.poll(util::TimeUs{1000});
      idle = n == 0 ? idle + 1 : 0;
    }
  }
};

TEST(UdpTransport, BindsEphemeralPort) {
  util::SteadyClock clock;
  UdpTransport t(clock);
  ASSERT_TRUE(t.ok()) << t.error();
  EXPECT_GT(t.local_port(), 0);
}

TEST(UdpTransport, DeliversFramesBothWays) {
  Pair p;
  util::Bytes got_a, got_b;
  p.a.attach(kAlice, [&](util::Bytes f) { got_a = std::move(f); });
  p.b.attach(kBob, [&](util::Bytes f) { got_b = std::move(f); });

  const util::Bytes to_bob = make_frame(kAlice, kBob);
  const util::Bytes to_alice = make_frame(kBob, kAlice);
  p.a.send(kAlice, kBob, to_bob);
  p.b.send(kBob, kAlice, to_alice);
  p.run();

  EXPECT_EQ(got_b, to_bob);
  EXPECT_EQ(got_a, to_alice);
  EXPECT_EQ(p.a.counters().tx_wire, 1u);
  EXPECT_EQ(p.b.counters().delivered, 1u);
  expect_conservation(p.a);
  expect_conservation(p.b);
}

TEST(UdpTransport, LearnsPeersFromReceivedFrames) {
  util::SteadyClock clock;
  UdpTransport a(clock), b(clock);
  ASSERT_TRUE(a.ok() && b.ok());
  // Only the initiator knows the responder; the responder learns the way
  // back from the frame's IPv4 source + the datagram's source sockaddr.
  a.add_peer(kBob, "127.0.0.1", b.local_port());
  util::Bytes echoed;
  a.attach(kAlice, [&](util::Bytes f) { echoed = std::move(f); });
  b.attach(kBob, [&](util::Bytes f) {
    b.send(kBob, kAlice, make_frame(kBob, kAlice, 8));
  });

  a.send(kAlice, kBob, make_frame(kAlice, kBob));
  int idle = 0;
  for (int i = 0; i < 2000 && idle < 3; ++i) {
    const std::size_t n =
        a.poll(util::TimeUs{1000}) + b.poll(util::TimeUs{1000});
    idle = n == 0 ? idle + 1 : 0;
  }
  EXPECT_FALSE(echoed.empty());
  EXPECT_EQ(b.counters().unknown_peer, 0u);
}

TEST(UdpTransport, UnknownPeerIsACountedDrop) {
  util::SteadyClock clock;
  UdpTransport t(clock);
  ASSERT_TRUE(t.ok());
  t.send(kAlice, kBob, make_frame(kAlice, kBob));
  EXPECT_EQ(t.counters().unknown_peer, 1u);
  EXPECT_EQ(t.counters().tx_wire, 0u);
  expect_conservation(t);
}

TEST(UdpTransport, MtuClampIsACountedDrop) {
  util::SteadyClock clock;
  UdpTransportConfig cfg;
  cfg.mtu = 256;
  UdpTransport t(clock, cfg);
  ASSERT_TRUE(t.ok());
  t.add_peer(kBob, "127.0.0.1", t.local_port());
  t.send(kAlice, kBob, make_frame(kAlice, kBob, 512));
  EXPECT_EQ(t.counters().oversized, 1u);
  EXPECT_EQ(t.counters().tx_wire, 0u);
  expect_conservation(t);
}

TEST(UdpTransport, NoSinkIsACountedDrop) {
  Pair p;
  // Nothing attached on b.
  p.a.send(kAlice, kBob, make_frame(kAlice, kBob));
  p.run();
  EXPECT_EQ(p.b.counters().received, 1u);
  EXPECT_EQ(p.b.counters().no_sink, 1u);
  expect_conservation(p.b);
}

TEST(UdpTransport, BoundedReceiveQueueOverflowsAsCountedDrop) {
  util::SteadyClock clock;
  UdpTransportConfig cfg;
  cfg.recv_queue_frames = 4;
  UdpTransport a(clock), b(clock, cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  a.add_peer(kBob, "127.0.0.1", b.local_port());
  std::size_t delivered = 0;
  b.attach(kBob, [&](util::Bytes) { ++delivered; });

  // Burst without letting b pump: everything lands in the kernel socket
  // buffer, then one drain sees more frames than the queue bound.
  const std::size_t kBurst = 64;
  for (std::size_t i = 0; i < kBurst; ++i) {
    a.send(kAlice, kBob, make_frame(kAlice, kBob));
  }
  int idle = 0;
  for (int i = 0; i < 2000 && idle < 3; ++i) {
    idle = b.poll(util::TimeUs{1000}) == 0 ? idle + 1 : 0;
  }
  const auto& c = b.counters();
  EXPECT_EQ(c.received, c.delivered + c.rx_queue_full);
  EXPECT_EQ(delivered, c.delivered);
  expect_conservation(b);
}

TEST(UdpTransport, TimersFireInDeadlineOrder) {
  util::SteadyClock clock;
  UdpTransport t(clock);
  ASSERT_TRUE(t.ok());
  std::vector<int> order;
  t.call_later(util::TimeUs{4000}, [&] { order.push_back(2); });
  t.call_later(util::TimeUs{1000}, [&] { order.push_back(1); });
  t.call_later(util::TimeUs{8000}, [&] {
    order.push_back(3);
    t.call_later(util::TimeUs{1000}, [&] { order.push_back(4); });
  });
  const util::TimeUs start = clock.now();
  while (t.work_pending() && clock.now() - start < util::seconds(5)) {
    t.poll(util::TimeUs{2000});
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(UdpTransport, CaptureHookSeesBothDirections) {
  Pair p;
  std::size_t outbound = 0, inbound = 0;
  p.a.set_capture([&](Ipv4Address, Ipv4Address, const util::Bytes&,
                      bool out) { ++(out ? outbound : inbound); });
  p.a.attach(kAlice, [](util::Bytes) {});
  p.b.attach(kBob, [&](util::Bytes) {
    p.b.send(kBob, kAlice, make_frame(kBob, kAlice));
  });
  p.a.send(kAlice, kBob, make_frame(kAlice, kBob));
  p.run();
  EXPECT_EQ(outbound, 1u);
  EXPECT_EQ(inbound, 1u);
}

}  // namespace
}  // namespace fbs::net
