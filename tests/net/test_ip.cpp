#include "net/ip.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

TEST(Ipv4Address, ParseValid) {
  EXPECT_EQ(Ipv4Address::parse("10.1.0.11")->value, 0x0A01000Bu);
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value, 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value, 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseInvalid) {
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Address, ToStringRoundTrip) {
  for (const char* s : {"10.1.0.11", "192.168.255.1", "0.0.0.1"}) {
    EXPECT_EQ(Ipv4Address::parse(s)->to_string(), s);
  }
}

TEST(Ipv4Address, ToBytesNetworkOrder) {
  EXPECT_EQ(Ipv4Address::parse("1.2.3.4")->to_bytes(),
            (util::Bytes{1, 2, 3, 4}));
}

Ipv4Header sample_header() {
  Ipv4Header h;
  h.id = 0x1234;
  h.ttl = 63;
  h.protocol = 17;
  h.source = *Ipv4Address::parse("10.0.0.1");
  h.destination = *Ipv4Address::parse("10.0.0.2");
  return h;
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  const Ipv4Header h = sample_header();
  const util::Bytes payload = util::to_bytes("payload bytes");
  const util::Bytes wire = h.serialize(payload);
  EXPECT_EQ(wire.size(), Ipv4Header::kSize + payload.size());

  const auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.id, h.id);
  EXPECT_EQ(parsed->header.ttl, h.ttl);
  EXPECT_EQ(parsed->header.protocol, h.protocol);
  EXPECT_EQ(parsed->header.source, h.source);
  EXPECT_EQ(parsed->header.destination, h.destination);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Ipv4Header, FragmentFieldsRoundTrip) {
  Ipv4Header h = sample_header();
  h.more_fragments = true;
  h.fragment_offset = 185;
  const auto parsed = Ipv4Header::parse(h.serialize({}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->header.more_fragments);
  EXPECT_FALSE(parsed->header.dont_fragment);
  EXPECT_EQ(parsed->header.fragment_offset, 185);
}

TEST(Ipv4Header, DontFragmentRoundTrip) {
  Ipv4Header h = sample_header();
  h.dont_fragment = true;
  const auto parsed = Ipv4Header::parse(h.serialize({}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->header.dont_fragment);
}

TEST(Ipv4Header, CorruptedHeaderRejected) {
  util::Bytes wire = sample_header().serialize(util::to_bytes("x"));
  wire[8] ^= 0x01;  // flip a TTL bit; checksum now fails
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4Header, TruncatedRejected) {
  const util::Bytes wire = sample_header().serialize({});
  const util::Bytes cut(wire.begin(), wire.begin() + 10);
  EXPECT_FALSE(Ipv4Header::parse(cut).has_value());
}

TEST(Ipv4Header, WrongVersionRejected) {
  util::Bytes wire = sample_header().serialize({});
  wire[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4Header, TotalLengthBoundsChecked) {
  Ipv4Header h = sample_header();
  util::Bytes wire = h.serialize(util::to_bytes("abcdef"));
  // Claim a longer datagram than the buffer carries: recompute a valid
  // checksum so only the length check can reject it.
  wire[2] = 0x40;
  wire[10] = wire[11] = 0;
  std::uint32_t acc = 0;
  for (int i = 0; i < 20; i += 2)
    acc += static_cast<std::uint32_t>(wire[i]) << 8 | wire[i + 1];
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  const std::uint16_t csum = static_cast<std::uint16_t>(~acc);
  wire[10] = static_cast<std::uint8_t>(csum >> 8);
  wire[11] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(Ipv4Header::parse(wire).has_value());
}

TEST(Ipv4Header, ExtraTrailingBytesIgnored) {
  // Link layers may pad; parse() must honor total_length.
  const Ipv4Header h = sample_header();
  util::Bytes wire = h.serialize(util::to_bytes("abc"));
  wire.push_back(0xEE);
  wire.push_back(0xFF);
  const auto parsed = Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, util::to_bytes("abc"));
}

}  // namespace
}  // namespace fbs::net
