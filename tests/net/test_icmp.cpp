#include "net/icmp.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

const Ipv4Address kA = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kB = *Ipv4Address::parse("10.0.0.2");

TEST(IcmpMessage, SerializeParseRoundTrip) {
  IcmpMessage m;
  m.type = IcmpMessage::kEchoRequest;
  m.identifier = 0x1234;
  m.sequence = 7;
  m.payload = util::to_bytes("ping payload");
  const auto parsed = IcmpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, IcmpMessage::kEchoRequest);
  EXPECT_EQ(parsed->identifier, 0x1234);
  EXPECT_EQ(parsed->sequence, 7);
  EXPECT_EQ(parsed->payload, util::to_bytes("ping payload"));
}

TEST(IcmpMessage, ChecksumRejectsCorruption) {
  IcmpMessage m;
  m.type = IcmpMessage::kEchoRequest;
  util::Bytes wire = m.serialize();
  wire[5] ^= 0x01;
  EXPECT_FALSE(IcmpMessage::parse(wire).has_value());
}

TEST(IcmpMessage, TruncatedRejected) {
  EXPECT_FALSE(IcmpMessage::parse(util::Bytes{8, 0, 0}).has_value());
}

class IcmpServiceTest : public ::testing::Test {
 protected:
  IcmpServiceTest()
      : clock_(util::minutes(1)),
        net_(clock_, 13),
        a_stack_(net_, clock_, kA),
        b_stack_(net_, clock_, kB),
        a_icmp_(a_stack_, clock_),
        b_icmp_(b_stack_, clock_) {}

  util::VirtualClock clock_;
  SimNetwork net_;
  IpStack a_stack_;
  IpStack b_stack_;
  IcmpService a_icmp_;
  IcmpService b_icmp_;
};

TEST_F(IcmpServiceTest, PingEchoesWithRtt) {
  std::uint16_t got_seq = 0;
  util::TimeUs got_rtt = -1;
  a_icmp_.on_echo_reply([&](Ipv4Address from, std::uint16_t seq,
                            util::TimeUs rtt) {
    EXPECT_EQ(from, kB);
    got_seq = seq;
    got_rtt = rtt;
  });
  EXPECT_TRUE(a_icmp_.ping(kB, 42, util::to_bytes("abcdefgh")));
  net_.run();
  EXPECT_EQ(got_seq, 42);
  EXPECT_EQ(got_rtt, util::TimeUs{400});  // two default 200us link hops
  EXPECT_EQ(b_icmp_.counters().echo_requests_received, 1u);
  EXPECT_EQ(b_icmp_.counters().echo_replies_sent, 1u);
  EXPECT_EQ(a_icmp_.counters().echo_replies_received, 1u);
}

TEST_F(IcmpServiceTest, ForeignIdentifierIgnored) {
  // A reply whose identifier is not ours must not invoke the callback.
  int calls = 0;
  a_icmp_.on_echo_reply([&](Ipv4Address, std::uint16_t, util::TimeUs) {
    ++calls;
  });
  IcmpMessage bogus;
  bogus.type = IcmpMessage::kEchoReply;
  bogus.identifier = 0xDEAD;
  bogus.sequence = 1;
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kIcmp);
  h.source = kB;
  h.destination = kA;
  net_.inject(kA, h.serialize(bogus.serialize()));
  net_.run();
  EXPECT_EQ(calls, 0);
}

TEST_F(IcmpServiceTest, UnknownTypeCounted) {
  IcmpMessage m;
  m.type = IcmpMessage::kDestinationUnreachable;
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kIcmp);
  h.source = kA;
  h.destination = kB;
  net_.inject(kB, h.serialize(m.serialize()));
  net_.run();
  EXPECT_EQ(b_icmp_.counters().unknown_messages, 1u);
}

TEST_F(IcmpServiceTest, DuplicateReplyReportedOnce) {
  LinkParams dupy;
  dupy.duplicate = 1.0;
  net_.set_default_link(dupy);
  int calls = 0;
  a_icmp_.on_echo_reply([&](Ipv4Address, std::uint16_t, util::TimeUs) {
    ++calls;
  });
  a_icmp_.ping(kB, 1);
  net_.run();
  // Duplicated frames mean b may answer twice, but the outstanding entry is
  // erased after the first match.
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace fbs::net
