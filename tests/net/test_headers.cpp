#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

const Ipv4Address kSrc = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kDst = *Ipv4Address::parse("10.0.0.2");

TEST(UdpHeader, SerializeParseRoundTrip) {
  UdpHeader h;
  h.source_port = 5000;
  h.destination_port = 53;
  const util::Bytes payload = util::to_bytes("dns query");
  const util::Bytes wire = h.serialize(kSrc, kDst, payload);
  EXPECT_EQ(wire.size(), UdpHeader::kSize + payload.size());

  const auto parsed = UdpHeader::parse(kSrc, kDst, wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.source_port, 5000);
  EXPECT_EQ(parsed->header.destination_port, 53);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(UdpHeader, ChecksumCoversPseudoHeader) {
  UdpHeader h;
  h.source_port = 1;
  h.destination_port = 2;
  const util::Bytes wire = h.serialize(kSrc, kDst, util::to_bytes("x"));
  // Same wire bytes, different claimed addresses: checksum must fail.
  // (Swapping src/dst would NOT change the one's-complement sum -- use a
  // genuinely different address.)
  const Ipv4Address other = *Ipv4Address::parse("10.0.0.77");
  EXPECT_FALSE(UdpHeader::parse(kSrc, other, wire).has_value());
}

TEST(UdpHeader, CorruptedPayloadRejected) {
  UdpHeader h;
  util::Bytes wire = h.serialize(kSrc, kDst, util::to_bytes("payload"));
  wire.back() ^= 0x01;
  EXPECT_FALSE(UdpHeader::parse(kSrc, kDst, wire).has_value());
}

TEST(UdpHeader, TruncatedRejected) {
  const util::Bytes wire{0x01, 0x02, 0x03};
  EXPECT_FALSE(UdpHeader::parse(kSrc, kDst, wire).has_value());
}

TEST(UdpHeader, ZeroChecksumMeansUnchecked) {
  // RFC 768: an all-zero checksum field means "no checksum computed"; the
  // receiver must accept the datagram without verification.
  UdpHeader h;
  h.source_port = 5;
  h.destination_port = 6;
  util::Bytes wire = h.serialize(kSrc, kDst, util::to_bytes("lazy sender"));
  wire[6] = wire[7] = 0;  // clear the checksum
  wire.back() ^= 0xFF;    // even corrupted payload passes (by design)
  const auto parsed = UdpHeader::parse(kSrc, kDst, wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.source_port, 5);
}

TEST(UdpHeader, EmptyPayloadOk) {
  UdpHeader h;
  h.source_port = 7;
  h.destination_port = 7;
  const auto parsed = UdpHeader::parse(kSrc, kDst, h.serialize(kSrc, kDst, {}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(TcpHeader, SerializeParseRoundTrip) {
  TcpHeader h;
  h.source_port = 33000;
  h.destination_port = 23;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.syn = true;
  h.ack_flag = true;
  h.window = 4096;
  const util::Bytes payload = util::to_bytes("telnet keystrokes");
  const auto parsed = TcpHeader::parse(kSrc, kDst,
                                       h.serialize(kSrc, kDst, payload));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.source_port, 33000);
  EXPECT_EQ(parsed->header.destination_port, 23);
  EXPECT_EQ(parsed->header.seq, 0xDEADBEEFu);
  EXPECT_EQ(parsed->header.ack, 0x12345678u);
  EXPECT_TRUE(parsed->header.syn);
  EXPECT_TRUE(parsed->header.ack_flag);
  EXPECT_FALSE(parsed->header.fin);
  EXPECT_FALSE(parsed->header.rst);
  EXPECT_EQ(parsed->header.window, 4096);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(TcpHeader, AllFlagsRoundTrip) {
  TcpHeader h;
  h.fin = h.syn = h.rst = h.ack_flag = true;
  const auto parsed = TcpHeader::parse(kSrc, kDst, h.serialize(kSrc, kDst, {}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->header.fin);
  EXPECT_TRUE(parsed->header.syn);
  EXPECT_TRUE(parsed->header.rst);
  EXPECT_TRUE(parsed->header.ack_flag);
}

TEST(TcpHeader, ChecksumRejectsCorruption) {
  TcpHeader h;
  util::Bytes wire = h.serialize(kSrc, kDst, util::to_bytes("data"));
  wire[4] ^= 0x10;  // corrupt seq
  EXPECT_FALSE(TcpHeader::parse(kSrc, kDst, wire).has_value());
}

TEST(PeekPorts, ReadsPortsFromEitherTransport) {
  UdpHeader u;
  u.source_port = 1111;
  u.destination_port = 2222;
  const auto up = peek_ports(u.serialize(kSrc, kDst, {}));
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->source, 1111);
  EXPECT_EQ(up->destination, 2222);

  TcpHeader t;
  t.source_port = 3333;
  t.destination_port = 4444;
  const auto tp = peek_ports(t.serialize(kSrc, kDst, {}));
  ASSERT_TRUE(tp.has_value());
  EXPECT_EQ(tp->source, 3333);
  EXPECT_EQ(tp->destination, 4444);
}

TEST(PeekPorts, TruncatedReturnsNothing) {
  EXPECT_FALSE(peek_ports(util::Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(peek_ports(util::Bytes{}).has_value());
}

}  // namespace
}  // namespace fbs::net
