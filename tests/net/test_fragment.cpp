#include "net/fragment.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/udp.hpp"
#include "util/rng.hpp"

namespace fbs::net {
namespace {

Ipv4Header header_for(std::uint16_t id) {
  Ipv4Header h;
  h.id = id;
  h.protocol = 17;
  h.source = *Ipv4Address::parse("10.0.0.1");
  h.destination = *Ipv4Address::parse("10.0.0.2");
  return h;
}

TEST(Fragment, SmallPayloadSinglePacket) {
  const auto packets = fragment(header_for(1), util::Bytes(100, 'a'), 1500);
  ASSERT_EQ(packets.size(), 1u);
  const auto parsed = Ipv4Header::parse(packets[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->header.more_fragments);
  EXPECT_EQ(parsed->header.fragment_offset, 0);
}

TEST(Fragment, LargePayloadSplitsWithCorrectOffsets) {
  const util::Bytes payload(4000, 'b');
  const auto packets = fragment(header_for(2), payload, 1500);
  ASSERT_EQ(packets.size(), 3u);  // 1480+1480+1040
  std::size_t covered = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto parsed = Ipv4Header::parse(packets[i]);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.fragment_offset * 8u, covered);
    EXPECT_EQ(parsed->header.more_fragments, i + 1 < packets.size());
    if (i + 1 < packets.size()) {
      EXPECT_EQ(parsed->payload.size() % 8, 0u);
    }
    covered += parsed->payload.size();
  }
  EXPECT_EQ(covered, payload.size());
}

TEST(Fragment, DontFragmentBlocksOversizedPayload) {
  Ipv4Header h = header_for(3);
  h.dont_fragment = true;
  EXPECT_TRUE(fragment(h, util::Bytes(4000, 'c'), 1500).empty());
  EXPECT_EQ(fragment(h, util::Bytes(100, 'c'), 1500).size(), 1u);
}

class ReassemblerTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{util::minutes(1)};
  Reassembler reasm_{clock_};
};

TEST_F(ReassemblerTest, UnfragmentedPassesThrough) {
  const auto out = reasm_.push(header_for(4), util::to_bytes("whole"));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, util::to_bytes("whole"));
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST_F(ReassemblerTest, InOrderFragmentsReassemble) {
  const util::Bytes payload(3000, 'd');
  const auto packets = fragment(header_for(5), payload, 1500);
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    ASSERT_TRUE(parsed.has_value());
    done = reasm_.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
  EXPECT_FALSE(done->header.more_fragments);
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST_F(ReassemblerTest, OutOfOrderFragmentsReassemble) {
  util::Bytes payload(5000, 0);
  util::SplitMix64 rng(9);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  auto packets = fragment(header_for(6), payload, 1500);
  std::reverse(packets.begin(), packets.end());
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    done = reasm_.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

TEST_F(ReassemblerTest, DuplicateFragmentsIgnored) {
  const util::Bytes payload(3000, 'e');
  const auto packets = fragment(header_for(7), payload, 1500);
  ASSERT_GE(packets.size(), 2u);
  // Deliver the first fragment twice, then the rest once each.
  const auto first = Ipv4Header::parse(packets[0]);
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  std::optional<Ipv4Packet> done;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    const auto p = Ipv4Header::parse(packets[i]);
    done = reasm_.push(p->header, p->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

TEST_F(ReassemblerTest, MissingFragmentNeverCompletes) {
  const auto packets = fragment(header_for(8), util::Bytes(3000, 'f'), 1500);
  const auto first = Ipv4Header::parse(packets[0]);
  const auto last = Ipv4Header::parse(packets.back());
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  EXPECT_FALSE(reasm_.push(last->header, last->payload).has_value());
  EXPECT_EQ(reasm_.pending(), 1u);
}

TEST_F(ReassemblerTest, DistinctIdsKeptSeparate) {
  const auto a = fragment(header_for(10), util::Bytes(3000, 'g'), 1500);
  const auto b = fragment(header_for(11), util::Bytes(3000, 'h'), 1500);
  const auto b0 = Ipv4Header::parse(b[0]);
  EXPECT_FALSE(reasm_.push(b0->header, b0->payload).has_value());
  // Interleave: complete datagram a while b stays pending.
  std::optional<Ipv4Packet> done;
  for (const auto& pkt : a) {
    const auto p = Ipv4Header::parse(pkt);
    done = reasm_.push(p->header, p->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, util::Bytes(3000, 'g'));
  EXPECT_EQ(reasm_.pending(), 1u);  // b still incomplete
}

TEST_F(ReassemblerTest, ExpireDropsStalePartials) {
  const auto packets = fragment(header_for(12), util::Bytes(3000, 'i'), 1500);
  const auto first = Ipv4Header::parse(packets[0]);
  (void)reasm_.push(first->header, first->payload);
  EXPECT_EQ(reasm_.expire(), 0u);  // not yet stale
  clock_.advance(util::seconds(31));
  EXPECT_EQ(reasm_.expire(), 1u);
  EXPECT_EQ(reasm_.pending(), 0u);
  // Late fragment restarts a fresh partial rather than completing.
  const auto last = Ipv4Header::parse(packets.back());
  EXPECT_FALSE(reasm_.push(last->header, last->payload).has_value());
}

Ipv4Header frag_header(std::uint16_t id, std::size_t offset_bytes, bool mf) {
  Ipv4Header h = header_for(id);
  h.fragment_offset = static_cast<std::uint16_t>(offset_bytes / 8);
  h.more_fragments = mf;
  return h;
}

TEST_F(ReassemblerTest, OverlappingFragmentsComplete) {
  // Regression: overlap-contiguous coverage used to be declared a hole
  // (offset != covered), stalling the datagram until expiry even though
  // every byte was present. A retransmission re-split on a different-MTU
  // path produces exactly this pattern.
  const util::Bytes part1(1000, 'A');
  const util::Bytes part2(1200, 'B');  // covers [800, 2000)
  EXPECT_FALSE(
      reasm_.push(frag_header(20, 0, true), part1).has_value());
  const auto done = reasm_.push(frag_header(20, 800, false), part2);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->payload.size(), 2000u);
  // Earlier-offset fragment wins the overlapped range [800, 1000).
  EXPECT_EQ(done->payload[799], 'A');
  EXPECT_EQ(done->payload[999], 'A');
  EXPECT_EQ(done->payload[1000], 'B');
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST_F(ReassemblerTest, FullyContainedFragmentIgnoredInAssembly) {
  const util::Bytes big(1600, 'X');
  const util::Bytes inner(800, 'Y');  // [400, 1200), inside big
  const util::Bytes tail(400, 'Z');   // [1600, 2000)
  EXPECT_FALSE(reasm_.push(frag_header(21, 0, true), big).has_value());
  EXPECT_FALSE(reasm_.push(frag_header(21, 400, true), inner).has_value());
  const auto done = reasm_.push(frag_header(21, 1600, false), tail);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->payload.size(), 2000u);
  EXPECT_EQ(done->payload[400], 'X');
  EXPECT_EQ(done->payload[1199], 'X');
  EXPECT_EQ(done->payload[1600], 'Z');
}

TEST_F(ReassemblerTest, OffsetArithmeticSurvivesLargeOffsets) {
  // Regression: byte offsets were computed in std::uint16_t, so offsets
  // near the top of the 13-bit wire field wrapped once the payload length
  // was added and corrupted coverage tracking. The sums must be done wide;
  // a set reaching past what total_length can express (65515 payload
  // bytes) is rejected outright instead of wrapping into acceptance.
  Ipv4Header oversized = header_for(22);
  oversized.fragment_offset = 8183;  // 65464 bytes; + 100 > 65515
  oversized.more_fragments = false;
  EXPECT_FALSE(reasm_.push(oversized, util::Bytes(100, 'x')).has_value());
  EXPECT_EQ(reasm_.pending(), 0u);  // rejected before creating state

  // A maximal legal datagram still reassembles: 65464 + 51 bytes lands
  // exactly on kMaxReassembledPayload, and 8183 * 8 + 51 overflows 16-bit
  // arithmetic, so this would wrap (and stall or corrupt) under the bug.
  Ipv4Header first = header_for(23);
  first.fragment_offset = 0;
  first.more_fragments = true;
  Ipv4Header last = header_for(23);
  last.fragment_offset = 8183;
  last.more_fragments = false;
  EXPECT_FALSE(reasm_.push(first, util::Bytes(65464, 'a')).has_value());
  const auto done = reasm_.push(last, util::Bytes(51, 'b'));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload.size(), Reassembler::kMaxReassembledPayload);
  EXPECT_EQ(done->payload[65463], 'a');
  EXPECT_EQ(done->payload[65464], 'b');
  EXPECT_EQ(done->header.total_length, 0xFFFFu);
}

TEST_F(ReassemblerTest, ConflictingLastFragmentCannotShrinkTotal) {
  // First last-fragment wins: once the genuine last fragment announces the
  // datagram size, a forged shorter "last" fragment must not rewrite it.
  const util::Bytes payload(3000, 'q');
  const auto packets = fragment(header_for(23), payload, 1500);
  ASSERT_EQ(packets.size(), 3u);
  const auto p0 = Ipv4Header::parse(packets[0]);
  const auto p1 = Ipv4Header::parse(packets[1]);
  const auto p2 = Ipv4Header::parse(packets[2]);
  EXPECT_FALSE(reasm_.push(p0->header, p0->payload).has_value());
  EXPECT_FALSE(reasm_.push(p2->header, p2->payload).has_value());
  // Forged "last" fragment inside already-covered territory, claiming the
  // datagram ends at byte 108.
  EXPECT_FALSE(
      reasm_.push(frag_header(23, 8, false), util::Bytes(100, 'Z'))
          .has_value());
  const auto done = reasm_.push(p1->header, p1->payload);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);  // forged bytes trimmed away
}

TEST_F(ReassemblerTest, CoverageBeyondClaimedTotalRejectsDatagram) {
  // A forged short last fragment arriving first sets total_size = 108; the
  // genuine 1480-byte first fragment then exceeds it. The reassembler must
  // drop the inconsistent partial deterministically (not stall to expiry).
  EXPECT_FALSE(
      reasm_.push(frag_header(24, 8, false), util::Bytes(100, 'Z'))
          .has_value());
  const util::Bytes payload(3000, 'r');
  const auto packets = fragment(header_for(24), payload, 1500);
  const auto p0 = Ipv4Header::parse(packets[0]);
  EXPECT_FALSE(reasm_.push(p0->header, p0->payload).has_value());
  EXPECT_EQ(reasm_.pending(), 0u);  // partial rejected, not parked
  // With the poisoned partial gone, a clean redelivery reassembles fine.
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    done = reasm_.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

TEST_F(ReassemblerTest, ExpiredPartialDoesNotPoisonReusedId) {
  // A 16-bit id inevitably wraps: after a partition eats the tail of one
  // datagram, a later datagram may legitimately reuse the same
  // (src, dst, id, proto) key. Once the stale partial has expired, the new
  // datagram must reassemble from its own pieces only.
  const util::Bytes old_payload(3000, 'O');
  const util::Bytes new_payload(3000, 'N');
  const auto old_packets = fragment(header_for(77), old_payload, 1500);
  const auto first = Ipv4Header::parse(old_packets[0]);
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  EXPECT_EQ(reasm_.pending(), 1u);

  clock_.advance(util::seconds(31));
  EXPECT_EQ(reasm_.expire(), 1u);

  // Same id, different fragmentation (smaller MTU): any leaked stale piece
  // would misalign or corrupt the content.
  std::optional<Ipv4Packet> done;
  for (const auto& pkt : fragment(header_for(77), new_payload, 576)) {
    const auto p = Ipv4Header::parse(pkt);
    done = reasm_.push(p->header, p->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, new_payload);
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST(ReassemblyHealing, StalePartialExpiresAcrossPartitionThenHeal) {
  // End-to-end through the stack: a partition window eats the trailing
  // fragment of a datagram, the receiver holds a partial, the link heals,
  // and (a) the partial expires instead of leaking, (b) post-heal traffic
  // -- including a full-size retransmission -- delivers intact.
  util::VirtualClock clock(util::minutes(1));
  SimNetwork net(clock, 5);
  const Ipv4Address a_addr = *Ipv4Address::parse("10.0.0.1");
  const Ipv4Address b_addr = *Ipv4Address::parse("10.0.0.2");
  IpStack a(net, clock, a_addr), b(net, clock, b_addr);
  UdpService a_udp(a), b_udp(b);
  util::Bytes payload(3000, 0);
  util::SplitMix64 rng(5);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next_u64());

  std::vector<util::Bytes> got;
  b_udp.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes p) {
    got.push_back(std::move(p));
  });

  // The "partition": drop every non-first fragment while the window is on.
  bool window_on = true;
  net.set_tap([&](Ipv4Address, Ipv4Address, util::Bytes& frame) {
    const auto parsed = Ipv4Header::parse(frame);
    if (window_on && parsed && parsed->header.fragment_offset > 0)
      return SimNetwork::TapVerdict::kDrop;
    return SimNetwork::TapVerdict::kPass;
  });
  a_udp.send(b_addr, 1, 9, payload);
  net.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(b.reassembly_pending(), 1u);  // head arrived, tail lost

  // Heal, wait out the reassembly timeout, and retransmit.
  window_on = false;
  clock.advance(util::seconds(31));
  a_udp.send(b_addr, 1, 9, payload);
  net.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  EXPECT_EQ(b.reassembly_pending(), 0u);
  EXPECT_EQ(b.counters().reassembly_expired, 1u);  // the stale partial
}

class FragmentSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentSweep, RoundTripAtManyMtus) {
  const std::size_t mtu = GetParam();
  util::VirtualClock clock(util::minutes(1));
  Reassembler reasm(clock);
  util::Bytes payload(2900, 0);
  util::SplitMix64 rng(GetParam());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());

  const auto packets = fragment(header_for(42), payload, mtu);
  ASSERT_FALSE(packets.empty());
  for (const auto& p : packets) EXPECT_LE(p.size(), mtu);
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    ASSERT_TRUE(parsed.has_value());
    done = reasm.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Mtus, FragmentSweep,
                         ::testing::Values(68, 100, 576, 1006, 1500, 4096));

}  // namespace
}  // namespace fbs::net
