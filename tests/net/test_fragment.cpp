#include "net/fragment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace fbs::net {
namespace {

Ipv4Header header_for(std::uint16_t id) {
  Ipv4Header h;
  h.id = id;
  h.protocol = 17;
  h.source = *Ipv4Address::parse("10.0.0.1");
  h.destination = *Ipv4Address::parse("10.0.0.2");
  return h;
}

TEST(Fragment, SmallPayloadSinglePacket) {
  const auto packets = fragment(header_for(1), util::Bytes(100, 'a'), 1500);
  ASSERT_EQ(packets.size(), 1u);
  const auto parsed = Ipv4Header::parse(packets[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->header.more_fragments);
  EXPECT_EQ(parsed->header.fragment_offset, 0);
}

TEST(Fragment, LargePayloadSplitsWithCorrectOffsets) {
  const util::Bytes payload(4000, 'b');
  const auto packets = fragment(header_for(2), payload, 1500);
  ASSERT_EQ(packets.size(), 3u);  // 1480+1480+1040
  std::size_t covered = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto parsed = Ipv4Header::parse(packets[i]);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.fragment_offset * 8u, covered);
    EXPECT_EQ(parsed->header.more_fragments, i + 1 < packets.size());
    if (i + 1 < packets.size()) {
      EXPECT_EQ(parsed->payload.size() % 8, 0u);
    }
    covered += parsed->payload.size();
  }
  EXPECT_EQ(covered, payload.size());
}

TEST(Fragment, DontFragmentBlocksOversizedPayload) {
  Ipv4Header h = header_for(3);
  h.dont_fragment = true;
  EXPECT_TRUE(fragment(h, util::Bytes(4000, 'c'), 1500).empty());
  EXPECT_EQ(fragment(h, util::Bytes(100, 'c'), 1500).size(), 1u);
}

class ReassemblerTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{util::minutes(1)};
  Reassembler reasm_{clock_};
};

TEST_F(ReassemblerTest, UnfragmentedPassesThrough) {
  const auto out = reasm_.push(header_for(4), util::to_bytes("whole"));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, util::to_bytes("whole"));
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST_F(ReassemblerTest, InOrderFragmentsReassemble) {
  const util::Bytes payload(3000, 'd');
  const auto packets = fragment(header_for(5), payload, 1500);
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    ASSERT_TRUE(parsed.has_value());
    done = reasm_.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
  EXPECT_FALSE(done->header.more_fragments);
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST_F(ReassemblerTest, OutOfOrderFragmentsReassemble) {
  util::Bytes payload(5000, 0);
  util::SplitMix64 rng(9);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  auto packets = fragment(header_for(6), payload, 1500);
  std::reverse(packets.begin(), packets.end());
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    done = reasm_.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

TEST_F(ReassemblerTest, DuplicateFragmentsIgnored) {
  const util::Bytes payload(3000, 'e');
  const auto packets = fragment(header_for(7), payload, 1500);
  ASSERT_GE(packets.size(), 2u);
  // Deliver the first fragment twice, then the rest once each.
  const auto first = Ipv4Header::parse(packets[0]);
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  std::optional<Ipv4Packet> done;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    const auto p = Ipv4Header::parse(packets[i]);
    done = reasm_.push(p->header, p->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

TEST_F(ReassemblerTest, MissingFragmentNeverCompletes) {
  const auto packets = fragment(header_for(8), util::Bytes(3000, 'f'), 1500);
  const auto first = Ipv4Header::parse(packets[0]);
  const auto last = Ipv4Header::parse(packets.back());
  EXPECT_FALSE(reasm_.push(first->header, first->payload).has_value());
  EXPECT_FALSE(reasm_.push(last->header, last->payload).has_value());
  EXPECT_EQ(reasm_.pending(), 1u);
}

TEST_F(ReassemblerTest, DistinctIdsKeptSeparate) {
  const auto a = fragment(header_for(10), util::Bytes(3000, 'g'), 1500);
  const auto b = fragment(header_for(11), util::Bytes(3000, 'h'), 1500);
  const auto b0 = Ipv4Header::parse(b[0]);
  EXPECT_FALSE(reasm_.push(b0->header, b0->payload).has_value());
  // Interleave: complete datagram a while b stays pending.
  std::optional<Ipv4Packet> done;
  for (const auto& pkt : a) {
    const auto p = Ipv4Header::parse(pkt);
    done = reasm_.push(p->header, p->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, util::Bytes(3000, 'g'));
  EXPECT_EQ(reasm_.pending(), 1u);  // b still incomplete
}

TEST_F(ReassemblerTest, ExpireDropsStalePartials) {
  const auto packets = fragment(header_for(12), util::Bytes(3000, 'i'), 1500);
  const auto first = Ipv4Header::parse(packets[0]);
  (void)reasm_.push(first->header, first->payload);
  EXPECT_EQ(reasm_.expire(), 0u);  // not yet stale
  clock_.advance(util::seconds(31));
  EXPECT_EQ(reasm_.expire(), 1u);
  EXPECT_EQ(reasm_.pending(), 0u);
  // Late fragment restarts a fresh partial rather than completing.
  const auto last = Ipv4Header::parse(packets.back());
  EXPECT_FALSE(reasm_.push(last->header, last->payload).has_value());
}

class FragmentSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentSweep, RoundTripAtManyMtus) {
  const std::size_t mtu = GetParam();
  util::VirtualClock clock(util::minutes(1));
  Reassembler reasm(clock);
  util::Bytes payload(2900, 0);
  util::SplitMix64 rng(GetParam());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());

  const auto packets = fragment(header_for(42), payload, mtu);
  ASSERT_FALSE(packets.empty());
  for (const auto& p : packets) EXPECT_LE(p.size(), mtu);
  std::optional<Ipv4Packet> done;
  for (const auto& p : packets) {
    const auto parsed = Ipv4Header::parse(p);
    ASSERT_TRUE(parsed.has_value());
    done = reasm.push(parsed->header, parsed->payload);
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Mtus, FragmentSweep,
                         ::testing::Values(68, 100, 576, 1006, 1500, 4096));

}  // namespace
}  // namespace fbs::net
