// The uniform Transport contract: both backends close the same conservation
// equation and publish the same `<prefix>.transport.*` metric family.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include "net/ip.hpp"
#include "net/simnet.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace fbs::net {
namespace {

const Ipv4Address kA = *Ipv4Address::parse("10.9.0.1");
const Ipv4Address kB = *Ipv4Address::parse("10.9.0.2");
const Ipv4Address kGhost = *Ipv4Address::parse("10.9.0.99");

util::Bytes frame(std::size_t n = 40) { return util::Bytes(n, 0xC3); }

std::uint64_t conservation_slack(const Transport::Totals& t) {
  const std::uint64_t in = t.sent + t.received + t.duplicated + t.injected;
  const std::uint64_t out = t.delivered + t.tx_wire + t.dropped + t.in_flight;
  return in > out ? in - out : out - in;
}

TEST(TransportTotals, SimNetworkClosesTheEquationUnderFaults) {
  util::VirtualClock clock;
  SimNetwork net(clock, 42);
  LinkParams lossy;
  lossy.loss = 0.3;
  lossy.duplicate = 0.2;
  net.set_default_link(lossy);
  net.attach(kA, [](util::Bytes) {});
  net.attach(kB, [](util::Bytes) {});

  for (int i = 0; i < 500; ++i) {
    net.send(kA, kB, frame());
    net.send(kA, kGhost, frame());  // lands in no_such_host
  }
  net.inject(kB, frame(), util::TimeUs{10});

  // Mid-drain the equation balances through in_flight...
  EXPECT_EQ(conservation_slack(net.totals()), 0u);
  net.run();
  // ...and after a drain in_flight is zero.
  const Transport::Totals t = net.totals();
  EXPECT_EQ(conservation_slack(t), 0u);
  EXPECT_EQ(t.in_flight, 0u);
  EXPECT_EQ(t.received, 0u);
  EXPECT_EQ(t.tx_wire, 0u);
  EXPECT_EQ(t.injected, 1u);
  EXPECT_GT(t.dropped, 0u);
}

TEST(TransportTotals, UdpTransportClosesTheEquationUnderDrops) {
  util::SteadyClock clock;
  UdpTransport a(clock), b(clock);
  ASSERT_TRUE(a.ok() && b.ok());
  a.add_peer(kB, "127.0.0.1", b.local_port());
  std::size_t got = 0;
  b.attach(kB, [&](util::Bytes) { ++got; });

  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.source = kA;
  h.destination = kB;
  const util::Bytes wire_frame = h.serialize(util::Bytes(32, 1));
  for (int i = 0; i < 20; ++i) a.send(kA, kB, wire_frame);
  a.send(kA, kGhost, frame());  // unknown peer: counted drop

  int idle = 0;
  for (int i = 0; i < 2000 && idle < 3; ++i) {
    idle = b.poll(util::TimeUs{1000}) == 0 ? idle + 1 : 0;
  }
  EXPECT_EQ(got, 20u);
  EXPECT_EQ(conservation_slack(a.totals()), 0u);
  EXPECT_EQ(conservation_slack(b.totals()), 0u);
  EXPECT_EQ(a.totals().tx_wire, 20u);
  EXPECT_EQ(a.totals().dropped, 1u);
  EXPECT_EQ(b.totals().delivered, 20u);
}

TEST(TransportMetrics, BothBackendsEmitTheUniformFamily) {
  util::VirtualClock vclock;
  SimNetwork sim(vclock, 1);
  util::SteadyClock sclock;
  UdpTransport udp(sclock);
  ASSERT_TRUE(udp.ok());

  obs::MetricsRegistry reg;
  sim.register_metrics(reg, "sim");
  udp.register_metrics(reg, "udp");

  sim.attach(kB, [](util::Bytes) {});
  sim.send(kA, kB, frame());
  sim.run();
  udp.send(kA, kGhost, frame());

  const obs::MetricsSnapshot snap = reg.snapshot();
  for (const std::string prefix : {"sim", "udp"}) {
    for (const std::string name :
         {".transport.sent", ".transport.received", ".transport.duplicated",
          ".transport.injected", ".transport.delivered",
          ".transport.tx_wire", ".transport.dropped"}) {
      EXPECT_TRUE(snap.counters.contains(prefix + name)) << prefix + name;
    }
    EXPECT_TRUE(snap.gauges.contains(prefix + ".transport.in_flight"));
  }
  EXPECT_EQ(snap.counters.at("sim.transport.sent"), 1u);
  EXPECT_EQ(snap.counters.at("sim.transport.delivered"), 1u);
  EXPECT_EQ(snap.counters.at("udp.transport.sent"), 1u);
  EXPECT_EQ(snap.counters.at("udp.transport.dropped"), 1u);
}

}  // namespace
}  // namespace fbs::net
