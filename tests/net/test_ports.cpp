#include "net/ports.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

class PortAllocatorTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{util::minutes(1)};
  PortAllocator ports_{clock_, util::seconds(600), 1024, 1031};  // 8 ports
};

TEST_F(PortAllocatorTest, AcquireSpecificPort) {
  EXPECT_TRUE(ports_.acquire(1024));
  EXPECT_TRUE(ports_.in_use(1024));
  EXPECT_FALSE(ports_.acquire(1024));  // already taken
}

TEST_F(PortAllocatorTest, OutOfRangeRefused) {
  EXPECT_FALSE(ports_.acquire(80));
  EXPECT_FALSE(ports_.acquire(40000));
}

TEST_F(PortAllocatorTest, AcquireAnyCyclesThroughRange) {
  std::set<std::uint16_t> got;
  for (int i = 0; i < 8; ++i) {
    const auto p = ports_.acquire_any();
    ASSERT_TRUE(p.has_value());
    got.insert(*p);
  }
  EXPECT_EQ(got.size(), 8u);  // all distinct
  EXPECT_FALSE(ports_.acquire_any().has_value());  // exhausted
}

TEST_F(PortAllocatorTest, ReleasedPortCoolsDownForThreshold) {
  // THE Section 7.1 countermeasure: a freed port is unallocatable until the
  // flow that used it must have expired.
  ASSERT_TRUE(ports_.acquire(1025));
  ports_.release(1025);
  EXPECT_TRUE(ports_.cooling_down(1025));
  EXPECT_FALSE(ports_.acquire(1025));  // attacker cannot grab it
  clock_.advance(util::seconds(599));
  EXPECT_FALSE(ports_.acquire(1025));  // still inside THRESHOLD
  clock_.advance(util::seconds(2));
  EXPECT_FALSE(ports_.cooling_down(1025));
  EXPECT_TRUE(ports_.acquire(1025));  // safe now: the flow has expired
}

TEST_F(PortAllocatorTest, AcquireAnySkipsCoolingPorts) {
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ports_.acquire_any().has_value());
  ports_.release(1027);
  EXPECT_EQ(ports_.cooling_count(), 1u);
  // 1027 is free but cooling: acquire_any must not hand it out.
  EXPECT_FALSE(ports_.acquire_any().has_value());
  clock_.advance(util::seconds(601));
  const auto p = ports_.acquire_any();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 1027);
}

TEST_F(PortAllocatorTest, ReleaseUnownedPortIsNoop) {
  ports_.release(1030);  // never acquired
  EXPECT_FALSE(ports_.cooling_down(1030));
  EXPECT_TRUE(ports_.acquire(1030));
}

TEST_F(PortAllocatorTest, ZeroCooldownBehavesLikeClassicAllocator) {
  PortAllocator classic(clock_, 0, 2000, 2001);
  ASSERT_TRUE(classic.acquire(2000));
  classic.release(2000);
  EXPECT_TRUE(classic.acquire(2000));  // immediate reuse: the unsafe default
}

}  // namespace
}  // namespace fbs::net
