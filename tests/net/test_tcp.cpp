#include "net/tcp.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::net {
namespace {

const Ipv4Address kA = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kB = *Ipv4Address::parse("10.0.0.2");

class TcpTest : public ::testing::Test {
 protected:
  TcpTest()
      : clock_(util::minutes(1)),
        net_(clock_, 11),
        rng_(22),
        a_stack_(net_, clock_, kA),
        b_stack_(net_, clock_, kB),
        a_tcp_(a_stack_, net_, rng_),
        b_tcp_(b_stack_, net_, rng_) {}

  /// Server that collects everything it receives on `port`.
  void listen_collect(std::uint16_t port) {
    b_tcp_.listen(port, [this](std::shared_ptr<TcpConnection> conn) {
      server_conn_ = conn;
      conn->on_receive([this](util::BytesView data) {
        server_received_.insert(server_received_.end(), data.begin(),
                                data.end());
      });
      conn->on_closed([this] { server_closed_ = true; });
    });
  }

  util::VirtualClock clock_;
  SimNetwork net_;
  util::SplitMix64 rng_;
  IpStack a_stack_;
  IpStack b_stack_;
  TcpService a_tcp_;
  TcpService b_tcp_;
  std::shared_ptr<TcpConnection> server_conn_;
  util::Bytes server_received_;
  bool server_closed_ = false;
};

TEST_F(TcpTest, ThreeWayHandshakeEstablishes) {
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  EXPECT_EQ(client->state(), TcpConnection::State::kSynSent);
  net_.run();
  EXPECT_EQ(client->state(), TcpConnection::State::kEstablished);
  ASSERT_NE(server_conn_, nullptr);
  EXPECT_EQ(server_conn_->state(), TcpConnection::State::kEstablished);
}

TEST_F(TcpTest, SmallTransferDelivered) {
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  client->send(util::to_bytes("GET / HTTP/1.0\r\n\r\n"));
  net_.run();
  EXPECT_EQ(util::to_string(server_received_), "GET / HTTP/1.0\r\n\r\n");
}

TEST_F(TcpTest, BulkTransferSegmentsAndReassembles) {
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  util::Bytes big = util::SplitMix64(3).next_bytes(200'000);
  client->send(big);
  net_.run();
  EXPECT_EQ(server_received_, big);
  EXPECT_GT(client->counters().segments_sent, 100u);  // actually segmented
}

TEST_F(TcpTest, SegmentsRespectMssAndNeverFragment) {
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  client->send(util::Bytes(50'000, 'm'));
  net_.run();
  // DF is always set; sized-to-MSS segments must never be dropped for it.
  EXPECT_EQ(a_stack_.counters().df_drops, 0u);
  EXPECT_EQ(server_received_.size(), 50'000u);
  EXPECT_EQ(client->mss(),
            a_stack_.effective_payload_size() - TcpHeader::kSize);
}

TEST_F(TcpTest, BidirectionalEcho) {
  b_tcp_.listen(7, [this](std::shared_ptr<TcpConnection> conn) {
    server_conn_ = conn;
    // Capture raw: the service's connection map owns the connection, and a
    // shared_ptr inside the connection's own callback is a leak cycle.
    conn->on_receive([c = conn.get()](util::BytesView data) {
      util::Bytes echoed(data.begin(), data.end());
      c->send(echoed);
    });
  });
  util::Bytes reply;
  auto client = a_tcp_.connect(kB, 7);
  client->on_receive([&](util::BytesView data) {
    reply.insert(reply.end(), data.begin(), data.end());
  });
  client->send(util::to_bytes("ping over tcp"));
  net_.run();
  EXPECT_EQ(util::to_string(reply), "ping over tcp");
}

TEST_F(TcpTest, LossyLinkRetransmitsToCompletion) {
  LinkParams lossy;
  lossy.loss = 0.15;
  net_.set_default_link(lossy);
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  util::Bytes data = util::SplitMix64(5).next_bytes(60'000);
  client->send(data);
  net_.run();
  EXPECT_EQ(server_received_, data);
  EXPECT_GT(client->counters().retransmissions, 0u);
}

TEST_F(TcpTest, ReorderingLinkStillDeliversInOrder) {
  LinkParams jittery;
  jittery.jitter = util::TimeUs{30'000};
  net_.set_default_link(jittery);
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  util::Bytes data = util::SplitMix64(6).next_bytes(80'000);
  client->send(data);
  net_.run();
  EXPECT_EQ(server_received_, data);  // byte-exact in-order delivery
}

TEST_F(TcpTest, DuplicatingLinkDeliversOnce) {
  LinkParams dupy;
  dupy.duplicate = 0.3;
  net_.set_default_link(dupy);
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  util::Bytes data = util::SplitMix64(7).next_bytes(40'000);
  client->send(data);
  net_.run();
  EXPECT_EQ(server_received_, data);
  ASSERT_NE(server_conn_, nullptr);
  EXPECT_GT(server_conn_->counters().duplicate_segments, 0u);
}

TEST_F(TcpTest, GracefulCloseBothSides) {
  listen_collect(80);
  bool client_closed = false;
  auto client = a_tcp_.connect(kB, 80);
  client->on_closed([&] { client_closed = true; });
  client->send(util::to_bytes("bye"));
  net_.run();
  // Server closes in response to the app-level exchange finishing; here we
  // just close both ends explicitly.
  client->close();
  net_.run();
  ASSERT_NE(server_conn_, nullptr);
  server_conn_->close();
  net_.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed_);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(a_tcp_.connection_count(), 0u);
  EXPECT_EQ(b_tcp_.connection_count(), 0u);
}

TEST_F(TcpTest, DataQueuedAfterCloseRefused) {
  listen_collect(80);
  auto client = a_tcp_.connect(kB, 80);
  net_.run();
  client->close();
  EXPECT_FALSE(client->send(util::to_bytes("too late")));
}

TEST_F(TcpTest, ConnectToDeadHostAbortsAfterRetries) {
  bool closed = false;
  auto client = a_tcp_.connect(*Ipv4Address::parse("10.9.9.9"), 80);
  client->on_closed([&] { closed = true; });
  net_.run();  // drains all retransmission timers
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
  EXPECT_GE(client->counters().retransmissions,
            static_cast<std::uint64_t>(TcpService::kMaxRetries));
}

TEST_F(TcpTest, ConnectToClosedPortIgnored) {
  // No listener: SYNs go unanswered (we do not send RST), client gives up.
  bool closed = false;
  auto client = a_tcp_.connect(kB, 4444);
  client->on_closed([&] { closed = true; });
  net_.run();
  EXPECT_TRUE(closed);
}

TEST_F(TcpTest, TwoConcurrentConnectionsIsolated) {
  util::Bytes on_80, on_81;
  b_tcp_.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_receive([&](util::BytesView d) {
      on_80.insert(on_80.end(), d.begin(), d.end());
    });
  });
  b_tcp_.listen(81, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_receive([&](util::BytesView d) {
      on_81.insert(on_81.end(), d.begin(), d.end());
    });
  });
  auto c1 = a_tcp_.connect(kB, 80);
  auto c2 = a_tcp_.connect(kB, 81);
  c1->send(util::to_bytes("to eighty"));
  c2->send(util::to_bytes("to eighty-one"));
  net_.run();
  EXPECT_EQ(util::to_string(on_80), "to eighty");
  EXPECT_EQ(util::to_string(on_81), "to eighty-one");
}

TEST_F(TcpTest, SaturatesTenMegabitVirtualWire) {
  // The paper's testbed in virtual time: a dedicated 10 Mb/s segment.
  // ttcp measured ~7.7 Mb/s goodput; our TCP should land in that region
  // (wire-limited, half-duplex ACK contention included).
  LinkParams tenmb;
  tenmb.delay = 0;
  tenmb.bandwidth_bps = 10e6;
  net_.set_default_link(tenmb);
  listen_collect(5001);
  auto client = a_tcp_.connect(kB, 5001);
  const std::size_t kBytes = 1 << 20;
  client->send(util::Bytes(kBytes, 't'));
  const util::TimeUs start = clock_.now();
  net_.run();
  ASSERT_EQ(server_received_.size(), kBytes);
  const double seconds =
      static_cast<double>(clock_.now() - start) / 1e6;
  const double goodput_mbps = kBytes * 8.0 / seconds / 1e6;
  EXPECT_GT(goodput_mbps, 6.0);
  EXPECT_LT(goodput_mbps, 10.0);
}

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, ReliableDeliveryUnderLoss) {
  util::VirtualClock clock(util::minutes(1));
  SimNetwork net(clock, static_cast<std::uint64_t>(GetParam() * 1000) + 3);
  util::SplitMix64 rng(44);
  IpStack a_stack(net, clock, kA), b_stack(net, clock, kB);
  TcpService a_tcp(a_stack, net, rng), b_tcp(b_stack, net, rng);
  LinkParams link;
  link.loss = GetParam();
  net.set_default_link(link);

  util::Bytes received;
  b_tcp.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_receive([&](util::BytesView d) {
      received.insert(received.end(), d.begin(), d.end());
    });
  });
  auto client = a_tcp.connect(kB, 80);
  const util::Bytes data = util::SplitMix64(9).next_bytes(30'000);
  client->send(data);
  net.run();
  EXPECT_EQ(received, data) << "loss=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace fbs::net
