#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace fbs::net {
namespace {

const Ipv4Address kA = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kB = *Ipv4Address::parse("10.0.0.2");
const Ipv4Address kC = *Ipv4Address::parse("10.0.0.3");

class SimNetTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{0};
  SimNetwork net_{clock_, 7};
  std::vector<util::Bytes> at_a_, at_b_;

  void SetUp() override {
    net_.attach(kA, [this](util::Bytes f) { at_a_.push_back(std::move(f)); });
    net_.attach(kB, [this](util::Bytes f) { at_b_.push_back(std::move(f)); });
  }
};

TEST_F(SimNetTest, DeliversFrameAfterDelay) {
  net_.send(kA, kB, util::to_bytes("hello"));
  EXPECT_TRUE(at_b_.empty());  // nothing until the event is processed
  net_.run();
  ASSERT_EQ(at_b_.size(), 1u);
  EXPECT_EQ(at_b_[0], util::to_bytes("hello"));
  EXPECT_EQ(clock_.now(), util::TimeUs{200});  // default link delay
}

TEST_F(SimNetTest, PerPairLinkParametersApply) {
  LinkParams slow;
  slow.delay = util::seconds(2);
  net_.set_link(kA, kB, slow);
  net_.send(kA, kB, util::to_bytes("x"));
  net_.run();
  EXPECT_EQ(clock_.now(), util::seconds(2));
}

TEST_F(SimNetTest, UnknownDestinationCounted) {
  net_.send(kA, kC, util::to_bytes("void"));
  net_.run();
  EXPECT_EQ(net_.counters().no_such_host, 1u);
  EXPECT_TRUE(at_a_.empty());
  EXPECT_TRUE(at_b_.empty());
}

TEST_F(SimNetTest, LossDropsFraction) {
  LinkParams lossy;
  lossy.loss = 0.5;
  net_.set_default_link(lossy);
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) net_.send(kA, kB, util::to_bytes("p"));
  net_.run();
  EXPECT_GT(net_.counters().lost, kFrames / 3u);
  EXPECT_LT(net_.counters().lost, kFrames * 2u / 3);
  EXPECT_EQ(at_b_.size() + net_.counters().lost,
            static_cast<std::size_t>(kFrames));
}

TEST_F(SimNetTest, DuplicationDeliversTwice) {
  LinkParams dupy;
  dupy.duplicate = 1.0;  // always duplicate
  net_.set_default_link(dupy);
  net_.send(kA, kB, util::to_bytes("p"));
  net_.run();
  EXPECT_EQ(at_b_.size(), 2u);
  EXPECT_EQ(net_.counters().duplicated, 1u);
}

TEST_F(SimNetTest, JitterReordersFrames) {
  LinkParams jittery;
  jittery.delay = util::TimeUs{100};
  jittery.jitter = util::seconds(1);
  net_.set_default_link(jittery);
  for (int i = 0; i < 50; ++i) {
    util::Bytes frame{static_cast<std::uint8_t>(i)};
    net_.send(kA, kB, frame);
  }
  net_.run();
  ASSERT_EQ(at_b_.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < at_b_.size(); ++i)
    if (at_b_[i][0] < at_b_[i - 1][0]) reordered = true;
  EXPECT_TRUE(reordered);
}

TEST_F(SimNetTest, DeterministicForSeed) {
  util::VirtualClock clock2{0};
  SimNetwork net2{clock2, 7};
  std::vector<util::Bytes> at_b2;
  net2.attach(kA, [](util::Bytes) {});
  net2.attach(kB, [&](util::Bytes f) { at_b2.push_back(std::move(f)); });
  LinkParams p;
  p.loss = 0.3;
  p.jitter = util::seconds(1);
  net_.set_default_link(p);
  net2.set_default_link(p);
  for (int i = 0; i < 100; ++i) {
    util::Bytes frame{static_cast<std::uint8_t>(i)};
    net_.send(kA, kB, frame);
    net2.send(kA, kB, frame);
  }
  net_.run();
  net2.run();
  EXPECT_EQ(at_b_, at_b2);
}

TEST_F(SimNetTest, TapObservesAndCanDrop) {
  std::vector<util::Bytes> captured;
  net_.set_tap([&](Ipv4Address, Ipv4Address, util::Bytes& frame) {
    captured.push_back(frame);
    return frame.size() > 2 ? SimNetwork::TapVerdict::kDrop
                            : SimNetwork::TapVerdict::kPass;
  });
  net_.send(kA, kB, util::to_bytes("ok"));
  net_.send(kA, kB, util::to_bytes("blocked"));
  net_.run();
  EXPECT_EQ(captured.size(), 2u);
  EXPECT_EQ(at_b_.size(), 1u);
  EXPECT_EQ(net_.counters().tap_dropped, 1u);
}

TEST_F(SimNetTest, TapCanModifyInFlight) {
  net_.set_tap([](Ipv4Address, Ipv4Address, util::Bytes& frame) {
    frame[0] ^= 0xFF;  // man-in-the-middle bit flip
    return SimNetwork::TapVerdict::kPass;
  });
  net_.send(kA, kB, util::Bytes{0x00, 0x01});
  net_.run();
  ASSERT_EQ(at_b_.size(), 1u);
  EXPECT_EQ(at_b_[0][0], 0xFF);
}

TEST_F(SimNetTest, InjectBypassesTapAndLink) {
  LinkParams total_loss;
  total_loss.loss = 1.0;
  net_.set_default_link(total_loss);
  net_.set_tap([](Ipv4Address, Ipv4Address, util::Bytes&) {
    return SimNetwork::TapVerdict::kDrop;
  });
  net_.inject(kB, util::to_bytes("attacker frame"));
  net_.run();
  ASSERT_EQ(at_b_.size(), 1u);  // delivered despite loss=1.0 and tap drop
}

TEST_F(SimNetTest, BandwidthSerializesBackToBackFrames) {
  LinkParams ethernet;
  ethernet.delay = 0;
  ethernet.bandwidth_bps = 1e6;  // 1 Mb/s: a 1000B frame takes 8 ms
  net_.set_default_link(ethernet);
  std::vector<util::TimeUs> arrivals;
  net_.attach(kC, [&](util::Bytes) { arrivals.push_back(clock_.now()); });
  net_.send(kA, kC, util::Bytes(1000, 'x'));
  net_.send(kA, kC, util::Bytes(1000, 'x'));  // queued behind the first
  net_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], util::TimeUs{8'000});
  EXPECT_EQ(arrivals[1], util::TimeUs{16'000});  // serialized, not parallel
}

TEST_F(SimNetTest, BandwidthZeroMeansInfinite) {
  LinkParams instant;
  instant.delay = util::TimeUs{10};
  net_.set_default_link(instant);
  net_.send(kA, kB, util::Bytes(100000, 'x'));
  net_.run();
  EXPECT_EQ(clock_.now(), util::TimeUs{10});  // no serialization time
}

TEST_F(SimNetTest, TenMegabitEthernetThroughput) {
  // The paper's wire: ~1.2ms per 1500B frame => ~820 frames/sec.
  LinkParams tenmb;
  tenmb.delay = 0;
  tenmb.bandwidth_bps = 10e6;
  net_.set_default_link(tenmb);
  constexpr int kFrames = 100;
  int delivered = 0;
  net_.attach(kC, [&](util::Bytes) { ++delivered; });
  for (int i = 0; i < kFrames; ++i) net_.send(kA, kC, util::Bytes(1500, 'x'));
  net_.run();
  EXPECT_EQ(delivered, kFrames);
  const double seconds = static_cast<double>(clock_.now()) / 1e6;
  const double bps = kFrames * 1500 * 8 / seconds;
  EXPECT_NEAR(bps, 10e6, 0.05e6);
}

TEST_F(SimNetTest, StepReturnsFalseWhenIdle) {
  EXPECT_FALSE(net_.step());
  net_.send(kA, kB, util::to_bytes("x"));
  EXPECT_TRUE(net_.step());
  EXPECT_FALSE(net_.step());
}

TEST_F(SimNetTest, BurstLossDropsRunsOfFrames) {
  // Gilbert-Elliott: stationary bad-state probability is
  // enter/(enter+exit) = 0.2, and the bad state drops everything while
  // good-state loss stays zero.
  LinkParams bursty;
  bursty.burst_enter = 0.05;
  bursty.burst_exit = 0.2;
  bursty.burst_loss = 1.0;
  net_.set_default_link(bursty);
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) net_.send(kA, kB, util::to_bytes("p"));
  net_.run();
  EXPECT_GT(net_.counters().burst_lost, kFrames / 20u);
  EXPECT_LT(net_.counters().burst_lost, kFrames * 2u / 5);
  EXPECT_EQ(net_.counters().lost, 0u);  // i.i.d. loss is off
  EXPECT_EQ(at_b_.size() + net_.counters().burst_lost,
            static_cast<std::size_t>(kFrames));
}

TEST_F(SimNetTest, BurstEnterZeroKeepsIidModel) {
  LinkParams plain;
  plain.loss = 0.5;
  plain.burst_loss = 1.0;  // irrelevant: the chain never leaves good state
  net_.set_default_link(plain);
  for (int i = 0; i < 500; ++i) net_.send(kA, kB, util::to_bytes("p"));
  net_.run();
  EXPECT_GT(net_.counters().lost, 0u);
  EXPECT_EQ(net_.counters().burst_lost, 0u);
}

TEST_F(SimNetTest, CorruptionFlipsExactlyOneBit) {
  LinkParams noisy;
  noisy.corrupt = 1.0;
  net_.set_default_link(noisy);
  net_.send(kA, kB, util::Bytes(64, 0x00));
  net_.run();
  ASSERT_EQ(at_b_.size(), 1u);
  EXPECT_EQ(net_.counters().corrupted, 1u);
  int flipped = 0;
  for (std::uint8_t byte : at_b_[0]) flipped += std::popcount(byte);
  EXPECT_EQ(flipped, 1);
}

TEST_F(SimNetTest, TapSeesFrameBeforeCorruption) {
  // The tap observes the sender's true wire bytes; corruption happens on
  // the link after it. Leak checks in chaos tests depend on this order.
  LinkParams noisy;
  noisy.corrupt = 1.0;
  net_.set_default_link(noisy);
  const util::Bytes original(32, 0x55);
  util::Bytes tapped;
  net_.set_tap([&](Ipv4Address, Ipv4Address, util::Bytes& frame) {
    tapped = frame;
    return SimNetwork::TapVerdict::kPass;
  });
  net_.send(kA, kB, original);
  net_.run();
  EXPECT_EQ(tapped, original);
  ASSERT_EQ(at_b_.size(), 1u);
  EXPECT_NE(at_b_[0], original);
}

TEST_F(SimNetTest, PartitionWindowDropsThenHeals) {
  net_.partition(kA, kB, util::TimeUs{0}, util::seconds(1));
  net_.send(kA, kB, util::to_bytes("cut"));
  net_.run();
  EXPECT_TRUE(at_b_.empty());
  EXPECT_EQ(net_.counters().partition_dropped, 1u);
  clock_.set(util::seconds(1));  // window over (and pruned on next check)
  net_.send(kA, kB, util::to_bytes("healed"));
  net_.run();
  ASSERT_EQ(at_b_.size(), 1u);
  EXPECT_EQ(at_b_[0], util::to_bytes("healed"));
}

TEST_F(SimNetTest, HostPartitionCutsEveryLink) {
  net_.attach(kC, [](util::Bytes) {});
  net_.partition_host(kB, util::TimeUs{0}, util::seconds(1));
  net_.send(kA, kB, util::to_bytes("to the dark host"));
  net_.send(kB, kA, util::to_bytes("from the dark host"));
  net_.send(kA, kC, util::to_bytes("unrelated pair"));
  net_.run();
  EXPECT_TRUE(at_b_.empty());
  EXPECT_TRUE(at_a_.empty());
  EXPECT_EQ(net_.counters().partition_dropped, 2u);
  EXPECT_EQ(net_.counters().delivered, 1u);  // a -> c unaffected
}

TEST_F(SimNetTest, ClearPartitionsRestoresImmediately) {
  net_.partition(kA, kB, util::TimeUs{0}, util::seconds(10));
  net_.clear_partitions();
  net_.send(kA, kB, util::to_bytes("x"));
  net_.run();
  EXPECT_EQ(at_b_.size(), 1u);
}

TEST_F(SimNetTest, DetachStopsDelivery) {
  net_.detach(kB);
  net_.send(kA, kB, util::to_bytes("x"));
  net_.run();
  EXPECT_TRUE(at_b_.empty());
  EXPECT_EQ(net_.counters().no_such_host, 1u);
}

}  // namespace
}  // namespace fbs::net
