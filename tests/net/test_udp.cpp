#include "net/udp.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

const Ipv4Address kA = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kB = *Ipv4Address::parse("10.0.0.2");

class UdpTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{util::minutes(1)};
  SimNetwork net_{clock_, 5};
  IpStack a_stack_{net_, clock_, kA};
  IpStack b_stack_{net_, clock_, kB};
  UdpService a_{a_stack_};
  UdpService b_{b_stack_};
};

TEST_F(UdpTest, BoundPortReceives) {
  util::Bytes got;
  Ipv4Address from;
  std::uint16_t from_port = 0;
  b_.bind(7, [&](Ipv4Address src, std::uint16_t sport, util::Bytes payload) {
    from = src;
    from_port = sport;
    got = std::move(payload);
  });
  EXPECT_TRUE(a_.send(kB, 5555, 7, util::to_bytes("echo me")));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("echo me"));
  EXPECT_EQ(from, kA);
  EXPECT_EQ(from_port, 5555);
  EXPECT_EQ(b_.counters().delivered, 1u);
}

TEST_F(UdpTest, UnboundPortCounted) {
  a_.send(kB, 5555, 9999, util::to_bytes("nobody home"));
  net_.run();
  EXPECT_EQ(b_.counters().no_listener, 1u);
}

TEST_F(UdpTest, UnbindStopsDelivery) {
  int hits = 0;
  b_.bind(7, [&](Ipv4Address, std::uint16_t, util::Bytes) { ++hits; });
  a_.send(kB, 1, 7, util::to_bytes("one"));
  net_.run();
  b_.unbind(7);
  a_.send(kB, 1, 7, util::to_bytes("two"));
  net_.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(b_.counters().no_listener, 1u);
}

TEST_F(UdpTest, BidirectionalExchange) {
  b_.bind(7, [&](Ipv4Address src, std::uint16_t sport, util::Bytes payload) {
    payload.push_back('!');
    b_.send(src, 7, sport, payload);
  });
  util::Bytes reply;
  a_.bind(5555, [&](Ipv4Address, std::uint16_t, util::Bytes payload) {
    reply = std::move(payload);
  });
  a_.send(kB, 5555, 7, util::to_bytes("ping"));
  net_.run();
  EXPECT_EQ(reply, util::to_bytes("ping!"));
}

TEST_F(UdpTest, LargeDatagramSurvivesFragmentation) {
  util::Bytes big(9000, 'u');
  util::Bytes got;
  b_.bind(7, [&](Ipv4Address, std::uint16_t, util::Bytes payload) {
    got = std::move(payload);
  });
  a_.send(kB, 1, 7, big);
  net_.run();
  EXPECT_EQ(got, big);
}

}  // namespace
}  // namespace fbs::net
