// Queue discipline unit tests (transit-router egress, net/queue.hpp).
#include <gtest/gtest.h>

#include "net/queue.hpp"

namespace fbs::net {
namespace {

util::Bytes frame(std::size_t n = 64) { return util::Bytes(n, 0xab); }

TEST(LinkQueueTest, FifoAcceptsUntilCapacityThenTailDrops) {
  util::SplitMix64 rng(1);
  QueueParams p;
  p.capacity = 4;
  LinkQueue q(p, rng);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(q.push(frame(), util::TimeUs{0}), LinkQueue::Enqueue::kAccepted);
  EXPECT_EQ(q.push(frame(), util::TimeUs{0}), LinkQueue::Enqueue::kTailDrop);
  EXPECT_EQ(q.push(frame(), util::TimeUs{0}), LinkQueue::Enqueue::kTailDrop);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.stats().enqueued, 4u);
  EXPECT_EQ(q.stats().tail_dropped, 2u);
  EXPECT_EQ(q.stats().highwater, 4u);
}

TEST(LinkQueueTest, PopPreservesOrderAndEnqueueTime) {
  util::SplitMix64 rng(1);
  LinkQueue q(QueueParams{}, rng);
  q.push(util::Bytes{1}, util::TimeUs{10});
  q.push(util::Bytes{2}, util::TimeUs{20});
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->frame, util::Bytes{1});
  EXPECT_EQ(first->enqueued_at, util::TimeUs{10});
  auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->frame, util::Bytes{2});
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.stats().dequeued, 2u);
}

TEST(LinkQueueTest, RedLeavesShortQueuesAlone) {
  util::SplitMix64 rng(7);
  QueueParams p;
  p.discipline = QueueDiscipline::kRed;
  p.capacity = 64;  // min threshold 16
  LinkQueue q(p, rng);
  // Oscillate below the min threshold: RED must never drop.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) q.push(frame(), util::TimeUs{0});
    while (q.pop()) {
    }
  }
  EXPECT_EQ(q.stats().red_dropped, 0u);
  EXPECT_EQ(q.stats().tail_dropped, 0u);
}

TEST(LinkQueueTest, RedDropsEarlyUnderSustainedBacklog) {
  util::SplitMix64 rng(7);
  QueueParams p;
  p.discipline = QueueDiscipline::kRed;
  p.capacity = 64;  // thresholds 16 / 48
  LinkQueue q(p, rng);
  // A standing queue between the thresholds: drops must start before the
  // hard capacity is ever reached.
  std::uint64_t offered = 0;
  for (int i = 0; i < 200 && q.depth() < 46; ++i, ++offered)
    q.push(frame(), util::TimeUs{0});
  EXPECT_GT(q.stats().red_dropped, 0u);
  EXPECT_EQ(q.stats().tail_dropped, 0u);  // never filled to capacity
  EXPECT_LT(q.stats().highwater, p.capacity);
  EXPECT_EQ(q.stats().enqueued + q.stats().red_dropped, offered);
}

TEST(LinkQueueTest, RedHardDropsOnceAverageReachesMaxThreshold) {
  util::SplitMix64 rng(7);
  QueueParams p;
  p.discipline = QueueDiscipline::kRed;
  p.capacity = 16;
  p.red_min_threshold = 2;
  p.red_max_threshold = 4;
  p.red_weight = 1.0;  // average == instantaneous depth
  p.red_max_p = 0.0;   // no probabilistic region: isolate the hard drop
  LinkQueue q(p, rng);
  for (int i = 0; i < 10; ++i) q.push(frame(), util::TimeUs{0});
  // Depths 0..3 accepted; from depth 4 the average sits at max: hard drop.
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.stats().red_dropped, 6u);
}

TEST(LinkQueueTest, BackpressureWatermarksDeriveFromCapacityAndTrack) {
  util::SplitMix64 rng(1);
  QueueParams p;
  p.discipline = QueueDiscipline::kBackpressure;
  p.capacity = 16;  // high 12, low 4
  LinkQueue q(p, rng);
  EXPECT_TRUE(q.below_low());
  for (int i = 0; i < 11; ++i) q.push(frame(), util::TimeUs{0});
  EXPECT_FALSE(q.above_high());
  q.push(frame(), util::TimeUs{0});
  EXPECT_TRUE(q.above_high());
  while (q.depth() > 4) q.pop();
  EXPECT_FALSE(q.above_high());
  EXPECT_TRUE(q.below_low());
}

TEST(LinkQueueTest, BackpressureStillTailDropsAtHardCapacity) {
  util::SplitMix64 rng(1);
  QueueParams p;
  p.discipline = QueueDiscipline::kBackpressure;
  p.capacity = 8;
  LinkQueue q(p, rng);
  for (int i = 0; i < 12; ++i) q.push(frame(), util::TimeUs{0});
  EXPECT_EQ(q.depth(), 8u);
  EXPECT_EQ(q.stats().tail_dropped, 4u);
  EXPECT_EQ(q.stats().red_dropped, 0u);
}

TEST(LinkQueueTest, WipeEmptiesCountsAndResetsRedState) {
  util::SplitMix64 rng(7);
  QueueParams p;
  p.discipline = QueueDiscipline::kRed;
  p.capacity = 32;
  LinkQueue q(p, rng);
  for (int i = 0; i < 20; ++i) q.push(frame(), util::TimeUs{0});
  EXPECT_GT(q.red_avg(), 0.0);
  const std::size_t depth = q.depth();
  EXPECT_EQ(q.wipe(), depth);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.stats().wiped, depth);
  EXPECT_EQ(q.red_avg(), 0.0);  // no phantom congestion after a restart
  // Conservation: every accepted frame is dequeued, wiped, or still queued.
  EXPECT_EQ(q.stats().enqueued,
            q.stats().dequeued + q.stats().wiped + q.depth());
}

TEST(LinkQueueTest, ZeroCapacityClampsToOne) {
  util::SplitMix64 rng(1);
  QueueParams p;
  p.capacity = 0;
  LinkQueue q(p, rng);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_EQ(q.push(frame(), util::TimeUs{0}), LinkQueue::Enqueue::kAccepted);
  EXPECT_EQ(q.push(frame(), util::TimeUs{0}), LinkQueue::Enqueue::kTailDrop);
}

}  // namespace
}  // namespace fbs::net
