// Routing and forwarding unit tests (the gateway role added for the
// Section 7.1 host/gateway topology), plus the simnet timer facility.
#include <gtest/gtest.h>

#include "net/udp.hpp"
#include "net/simnet.hpp"

namespace fbs::net {
namespace {

const Ipv4Address kHostA = *Ipv4Address::parse("10.1.0.10");
const Ipv4Address kGw = *Ipv4Address::parse("10.1.0.1");
const Ipv4Address kHostB = *Ipv4Address::parse("10.2.0.10");

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest()
      : clock_(util::minutes(1)),
        net_(clock_, 77),
        a_(net_, clock_, kHostA),
        gw_(net_, clock_, kGw),
        b_(net_, clock_, kHostB),
        a_udp_(a_),
        b_udp_(b_) {}

  util::VirtualClock clock_;
  SimNetwork net_;
  IpStack a_, gw_, b_;
  UdpService a_udp_, b_udp_;
};

TEST_F(RoutingTest, DefaultRouteSendsViaGateway) {
  a_.set_default_route(kGw);
  gw_.enable_forwarding(true);
  util::Bytes got;
  b_udp_.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  a_udp_.send(kHostB, 1, 9, util::to_bytes("routed"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("routed"));
  EXPECT_EQ(gw_.counters().forwarded, 1u);
}

TEST_F(RoutingTest, WithoutForwardingGatewayDropsTransit) {
  a_.set_default_route(kGw);
  int delivered = 0;
  b_udp_.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  a_udp_.send(kHostB, 1, 9, util::to_bytes("x"));
  net_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(gw_.counters().not_for_us, 1u);
}

TEST_F(RoutingTest, LongestPrefixWins) {
  IpStack other_gw(net_, clock_, *Ipv4Address::parse("10.1.0.2"));
  other_gw.enable_forwarding(true);
  gw_.enable_forwarding(true);
  // Default via gw, but 10.2/16 via other_gw: the /16 must win.
  a_.set_default_route(kGw);
  a_.add_route(*Ipv4Address::parse("10.2.0.0"), 16, other_gw.address());
  b_udp_.bind(9, [](Ipv4Address, std::uint16_t, util::Bytes) {});
  a_udp_.send(kHostB, 1, 9, util::to_bytes("x"));
  net_.run();
  EXPECT_EQ(other_gw.counters().forwarded, 1u);
  EXPECT_EQ(gw_.counters().forwarded, 0u);
}

TEST_F(RoutingTest, NoRouteMeansDirectDelivery) {
  util::Bytes got;
  b_udp_.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  a_udp_.send(kHostB, 1, 9, util::to_bytes("direct"));  // same segment
  net_.run();
  EXPECT_EQ(got, util::to_bytes("direct"));
}

TEST_F(RoutingTest, TtlExpiresInRoutingLoop) {
  // Two gateways pointing at each other: the packet must die, not loop
  // forever.
  IpStack gw2(net_, clock_, *Ipv4Address::parse("10.1.0.2"));
  gw_.enable_forwarding(true);
  gw2.enable_forwarding(true);
  gw_.add_route(*Ipv4Address::parse("10.99.0.0"), 16, gw2.address());
  gw2.add_route(*Ipv4Address::parse("10.99.0.0"), 16, gw_.address());
  a_.set_default_route(kGw);
  a_udp_.send(*Ipv4Address::parse("10.99.0.1"), 1, 9, util::to_bytes("loop"));
  net_.run();  // must terminate
  EXPECT_EQ(gw_.counters().ttl_expired + gw2.counters().ttl_expired, 1u);
  EXPECT_GT(gw_.counters().forwarded + gw2.counters().forwarded, 50u);
}

TEST_F(RoutingTest, ForwardFilterCanConsume) {
  gw_.enable_forwarding(true);
  a_.set_default_route(kGw);
  int stolen = 0;
  gw_.set_forward_filter([&](const Ipv4Header&, const util::Bytes&) {
    ++stolen;
    return true;  // consumed: nothing forwarded
  });
  int delivered = 0;
  b_udp_.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  a_udp_.send(kHostB, 1, 9, util::to_bytes("x"));
  net_.run();
  EXPECT_EQ(stolen, 1);
  EXPECT_EQ(delivered, 0);
}

TEST_F(RoutingTest, ForwardedFragmentsReassembleAtFilter) {
  // The forward filter sees whole datagrams (needed by the tunnel).
  gw_.enable_forwarding(true);
  a_.set_default_route(kGw);
  std::size_t seen_size = 0;
  gw_.set_forward_filter([&](const Ipv4Header&, const util::Bytes& p) {
    seen_size = p.size();
    return false;  // forward normally afterwards
  });
  util::Bytes got;
  b_udp_.bind(9, [&](Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  a_udp_.send(kHostB, 1, 9, util::Bytes(4000, 'f'));
  net_.run();
  EXPECT_EQ(seen_size, 4000u + UdpHeader::kSize);
  EXPECT_EQ(got.size(), 4000u);
}

TEST(SimNetTimers, CallLaterFiresInOrder) {
  util::VirtualClock clock(0);
  SimNetwork net(clock, 1);
  std::vector<int> order;
  net.call_later(util::seconds(3), [&] { order.push_back(3); });
  net.call_later(util::seconds(1), [&] { order.push_back(1); });
  net.call_later(util::seconds(2), [&] { order.push_back(2); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), util::seconds(3));
}

TEST(SimNetTimers, TimerCanScheduleMoreTimers) {
  util::VirtualClock clock(0);
  SimNetwork net(clock, 1);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) net.call_later(util::seconds(1), tick);
  };
  net.call_later(util::seconds(1), tick);
  net.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(clock.now(), util::seconds(5));
}

TEST(SimNetTimers, TimersInterleaveWithFrames) {
  util::VirtualClock clock(0);
  SimNetwork net(clock, 1);
  std::vector<std::string> events;
  net.attach(*Ipv4Address::parse("1.1.1.1"), [&](util::Bytes) {
    events.push_back("frame");
  });
  net.call_later(util::TimeUs{100}, [&] { events.push_back("early-timer"); });
  net.send(*Ipv4Address::parse("2.2.2.2"), *Ipv4Address::parse("1.1.1.1"),
           util::to_bytes("f"));  // default 200us delay
  net.call_later(util::TimeUs{300}, [&] { events.push_back("late-timer"); });
  net.run();
  EXPECT_EQ(events,
            (std::vector<std::string>{"early-timer", "frame", "late-timer"}));
}

}  // namespace
}  // namespace fbs::net
