#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include "net/ip.hpp"
#include "net/simnet.hpp"
#include "util/clock.hpp"

namespace fbs::net {
namespace {

const Ipv4Address kSrc = *Ipv4Address::parse("10.0.0.1");
const Ipv4Address kDst = *Ipv4Address::parse("10.0.0.2");

util::Bytes sample_frame(std::size_t payload_size) {
  Ipv4Header h;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.source = kSrc;
  h.destination = kDst;
  return h.serialize(util::Bytes(payload_size, 0x5A));
}

TEST(Pcap, RoundTripsRecordsThroughTheReader) {
  util::VirtualClock clock(util::seconds(10));
  util::Bytes out;
  PcapWriter writer(&out, clock);
  ASSERT_TRUE(writer.ok());

  const util::Bytes f1 = sample_frame(16);
  clock.advance(util::seconds(1) + 250);
  writer.record(f1);
  const util::Bytes f2 = sample_frame(64);
  writer.record(f2);
  EXPECT_EQ(writer.frames_written(), 2u);

  const auto cap = PcapReader::parse(out);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->linktype, kPcapLinktypeRaw);
  ASSERT_EQ(cap->records.size(), 2u);
  EXPECT_EQ(cap->records[0].frame, f1);
  EXPECT_EQ(cap->records[1].frame, f2);
  // Timestamps convert the session clock through the FBS epoch.
  EXPECT_EQ(cap->records[0].ts_sec,
            static_cast<std::uint32_t>(util::kFbsEpochUnixSeconds + 11));
  EXPECT_EQ(cap->records[0].ts_usec, 250u);
  EXPECT_EQ(cap->records[0].orig_len, f1.size());
}

TEST(Pcap, ReaderRejectsMalformedInput) {
  util::VirtualClock clock;
  util::Bytes out;
  PcapWriter writer(&out, clock);
  writer.record(sample_frame(8));

  EXPECT_FALSE(PcapReader::parse({}).has_value());
  // Bad magic.
  util::Bytes bad = out;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(PcapReader::parse(bad).has_value());
  // Truncated record body.
  util::Bytes cut = out;
  cut.resize(cut.size() - 1);
  EXPECT_FALSE(PcapReader::parse(cut).has_value());
  // incl_len inflated past the bytes present.
  util::Bytes inflated = out;
  inflated[24 + 8] = 0xFF;
  EXPECT_FALSE(PcapReader::parse(inflated).has_value());
}

TEST(Pcap, ReaderHandlesTheOtherEndianness) {
  util::VirtualClock clock(util::seconds(3));
  util::Bytes le;
  PcapWriter writer(&le, clock);
  writer.record(sample_frame(24));

  // Byte-swap every header field to fake a big-endian writer.
  util::Bytes be = le;
  auto swap32 = [&](std::size_t at) {
    std::swap(be[at], be[at + 3]);
    std::swap(be[at + 1], be[at + 2]);
  };
  auto swap16 = [&](std::size_t at) { std::swap(be[at], be[at + 1]); };
  swap32(0);
  swap16(4);
  swap16(6);
  swap32(8);
  swap32(12);
  swap32(16);
  swap32(20);
  for (std::size_t at = 24; at + 16 <= be.size();) {
    swap32(at);
    swap32(at + 4);
    swap32(at + 8);
    swap32(at + 12);
    // incl_len is now swapped in place; read it from the LE original.
    std::uint32_t incl = 0;
    for (int i = 3; i >= 0; --i) incl = (incl << 8) | le[at + 8 + i];
    at += 16 + incl;
  }

  const auto cap = PcapReader::parse(be);
  ASSERT_TRUE(cap.has_value());
  EXPECT_TRUE(cap->swapped);
  ASSERT_EQ(cap->records.size(), 1u);
  EXPECT_EQ(cap->records[0].frame, sample_frame(24));
}

TEST(Pcap, CaptureHookRecordsSimNetworkTraffic) {
  util::VirtualClock clock;
  SimNetwork net(clock, 7);
  util::Bytes out;
  PcapWriter writer(&out, clock);
  net.set_capture(writer.capture_fn());
  net.attach(kDst, [](util::Bytes) {});

  net.send(kSrc, kDst, sample_frame(40));
  net.send(kSrc, kDst, sample_frame(80));
  net.run();

  const auto cap = PcapReader::parse(out);
  ASSERT_TRUE(cap.has_value());
  ASSERT_EQ(cap->records.size(), 2u);
  EXPECT_EQ(cap->records[0].frame, sample_frame(40));
  EXPECT_EQ(cap->records[1].frame, sample_frame(80));
}

}  // namespace
}  // namespace fbs::net
