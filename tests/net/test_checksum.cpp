#include "net/checksum.hpp"

#include <gtest/gtest.h>

namespace fbs::net {
namespace {

TEST(Checksum, Rfc1071WorkedExample) {
  // Classic example: 0001 f203 f4f5 f6f7 -> checksum 220d (ones complement
  // of ddf2).
  const util::Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220Du);
}

TEST(Checksum, EmptyBufferChecksum) {
  EXPECT_EQ(internet_checksum({}), 0xFFFFu);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const util::Bytes even{0x12, 0x34, 0xAB, 0x00};
  const util::Bytes odd{0x12, 0x34, 0xAB};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, VerifiesToZeroWhenEmbedded) {
  // A buffer with its own checksum embedded sums to zero -- the receiver's
  // validation rule.
  util::Bytes data{0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00,
                   0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                   0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(internet_checksum(data), 0u);
}

TEST(Checksum, IncrementalMatchesOneShot) {
  const util::Bytes data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::uint32_t acc = 0;
  acc = checksum_partial(acc, util::BytesView(data).subspan(0, 4));
  acc = checksum_partial(acc, util::BytesView(data).subspan(4));
  EXPECT_EQ(checksum_finish(acc), internet_checksum(data));
}

TEST(Checksum, AccumulatorMatchesOneShotOnEvenSplit) {
  const util::Bytes data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  ChecksumAccumulator acc;
  acc.add(util::BytesView(data).subspan(0, 4));
  acc.add(util::BytesView(data).subspan(4));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Checksum, AccumulatorCarriesParityAcrossOddSpans) {
  // Regression: checksum_partial pads every odd span as if it were final,
  // so chaining it across an odd-length non-final span computes the wrong
  // sum. The accumulator must treat the spans as one contiguous buffer no
  // matter where they are cut.
  const util::Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7,
                         0x9a};
  const std::uint16_t expected = internet_checksum(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    ChecksumAccumulator acc;
    acc.add(util::BytesView(data).subspan(0, cut));
    acc.add(util::BytesView(data).subspan(cut));
    EXPECT_EQ(acc.finish(), expected) << "cut at " << cut;
  }
}

TEST(Checksum, AccumulatorHandlesManyTinySpans) {
  const util::Bytes data{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde};
  ChecksumAccumulator acc;
  for (std::uint8_t b : data) acc.add(util::BytesView(&b, 1));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Checksum, LegacyPartialDiffersOnOddNonFinalSpan) {
  // Documents the exact failure mode the accumulator fixes: the legacy
  // chaining is only sound when every non-final span has even length.
  const util::Bytes data{0x10, 0x20, 0x30, 0x40, 0x50};
  std::uint32_t acc = 0;
  acc = checksum_partial(acc, util::BytesView(data).subspan(0, 3));  // odd!
  acc = checksum_partial(acc, util::BytesView(data).subspan(3));
  EXPECT_NE(checksum_finish(acc), internet_checksum(data));
}

TEST(Checksum, DetectsSingleBitError) {
  util::Bytes data(64, 0x5A);
  const std::uint16_t base = internet_checksum(data);
  data[17] ^= 0x04;
  EXPECT_NE(internet_checksum(data), base);
}

}  // namespace
}  // namespace fbs::net
