#include "util/flow_hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace fbs::util {
namespace {

TEST(FlowHash, DeterministicForSameInput) {
  const Bytes key = to_bytes("10.0.0.1:5000 -> 10.0.0.2:7 udp");
  EXPECT_EQ(flow_hash64(key), flow_hash64(key));
  EXPECT_EQ(flow_hash64(key, 7), flow_hash64(key, 7));
}

TEST(FlowHash, SeedSeparatesStreams) {
  const Bytes key = to_bytes("same bytes");
  EXPECT_NE(flow_hash64(key, 1), flow_hash64(key, 2));
}

TEST(FlowHash, SensitiveToEveryByte) {
  Bytes key = to_bytes("flow-key-bytes");
  const std::uint64_t base = flow_hash64(key);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] ^= 1;
    EXPECT_NE(flow_hash64(key), base) << "byte " << i;
    key[i] ^= 1;
  }
}

TEST(FlowHash, EmptyInputIsValid) {
  EXPECT_EQ(flow_hash64(Bytes{}), flow_hash64(Bytes{}));
  EXPECT_NE(flow_hash64(Bytes{}, 1), flow_hash64(Bytes{}, 2));
}

TEST(FlowHash, CombineMixesBothOperands) {
  const std::uint64_t h = flow_hash64(to_bytes("source"));
  EXPECT_NE(flow_hash_combine(h, 1), flow_hash_combine(h, 2));
  EXPECT_NE(flow_hash_combine(h, 1), flow_hash_combine(h + 1, 1));
}

TEST(FlowHash, StripesFlowsAcrossShardsEvenly) {
  // The shard selector is `hash % N`: 4096 random flow keys over 8 shards
  // should land every shard well away from empty (binomial tail makes a
  // shard under 1/4 of its expected 512 essentially impossible unless the
  // hash is broken).
  SplitMix64 rng(42);
  constexpr std::size_t kShards = 8;
  std::vector<std::size_t> per_shard(kShards, 0);
  for (int i = 0; i < 4096; ++i)
    ++per_shard[flow_hash64(rng.next_bytes(13)) % kShards];
  for (std::size_t s = 0; s < kShards; ++s)
    EXPECT_GT(per_shard[s], 4096 / kShards / 4) << "shard " << s;
}

TEST(FlowHash, FewCollisionsOverManyKeys) {
  SplitMix64 rng(7);
  std::set<std::uint64_t> seen;
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) seen.insert(flow_hash64(rng.next_bytes(16)));
  // 64-bit hash, 20k draws: any collision at all would be suspicious.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kKeys));
}

}  // namespace
}  // namespace fbs::util
