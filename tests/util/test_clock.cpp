#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace fbs::util {
namespace {

TEST(VirtualClock, StartsAtConstructedTime) {
  VirtualClock c(seconds(100));
  EXPECT_EQ(c.now(), seconds(100));
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.advance(seconds(5));
  c.advance(minutes(2));
  EXPECT_EQ(c.now(), seconds(5) + minutes(2));
}

TEST(VirtualClock, SetOverrides) {
  VirtualClock c(seconds(10));
  c.set(minutes(42));
  EXPECT_EQ(c.now(), minutes(42));
}

TEST(HeaderMinutes, MinuteResolutionEncoding) {
  EXPECT_EQ(to_header_minutes(0), 0u);
  EXPECT_EQ(to_header_minutes(minutes(1) - 1), 0u);
  EXPECT_EQ(to_header_minutes(minutes(1)), 1u);
  EXPECT_EQ(to_header_minutes(minutes(90) + seconds(30)), 90u);
}

TEST(HeaderMinutes, NoWrapForMillennia) {
  // Section 7.2: "With 32 bits, the timestamp will not wrap around in the
  // next 8000 years."
  const TimeUs y8000 = minutes(static_cast<std::int64_t>(8000) * 365 * 24 * 60);
  EXPECT_LT(to_header_minutes(y8000),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(SystemClock, IsAfterFbsEpoch) {
  SystemClock c;
  // Any machine running this is well past 1996.
  EXPECT_GT(c.now(), minutes(1));
}

TEST(SteadyClock, IsMonotonicNonDecreasing) {
  SteadyClock c;
  TimeUs last = c.now();
  for (int i = 0; i < 1000; ++i) {
    const TimeUs t = c.now();
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(SteadyClock, TracksSystemClockWithinSlop) {
  // Anchored to the system FBS time at construction; two clocks (or two
  // processes) constructed around the same instant must agree far inside
  // the header timestamp's minute-granularity freshness window.
  SteadyClock steady;
  SystemClock system;
  const TimeUs diff = steady.now() - system.now();
  EXPECT_LT(diff < 0 ? -diff : diff, seconds(2));
}

}  // namespace
}  // namespace fbs::util
