// FlatMap: open-addressing invariants under churn, checked against a
// std::unordered_map oracle. The backward-shift erase is the part with
// sharp edges (a wrapped probe run whose elements must be rescued past an
// at-home neighbor), so the property test hammers erase-heavy mixes at
// high load factors and validates check_invariants() -- every element
// reachable from its home slot without crossing a hole -- after every
// phase.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace fbs::util {
namespace {

TEST(FlatMap, InsertFindEraseBasics) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7u), nullptr);

  auto [v, inserted] = m.try_emplace(7, 42);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*v, 42);
  auto [v2, again] = m.try_emplace(7, 99);
  EXPECT_FALSE(again);
  EXPECT_EQ(*v2, 42);  // try_emplace does not overwrite

  m.insert(7, 99);  // insert does
  EXPECT_EQ(*m.find(7u), 99);
  EXPECT_EQ(m.size(), 1u);

  EXPECT_TRUE(m.erase(7u));
  EXPECT_FALSE(m.erase(7u));
  EXPECT_EQ(m.find(7u), nullptr);
  EXPECT_TRUE(m.check_invariants());
}

TEST(FlatMap, ReserveMakesSteadyStateRehashFree) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  m.reserve(10000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t i = 0; i < 10000; ++i) m.try_emplace(i, i);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.rehashes(), 0u);
  // Churn at full size: erase+insert cycles must never grow either.
  for (std::uint64_t i = 0; i < 20000; ++i) {
    m.erase(i % 10000);
    m.try_emplace(100000 + i, i);
    m.erase(100000 + i);
    m.try_emplace(i % 10000, i);
  }
  EXPECT_EQ(m.rehashes(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_TRUE(m.check_invariants());
}

TEST(FlatMap, GrowsAndCountsRehashesWithoutReserve) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 5000; ++i) m.try_emplace(i, 1);
  EXPECT_GT(m.rehashes(), 0u);
  for (std::uint64_t i = 0; i < 5000; ++i)
    ASSERT_NE(m.find(i), nullptr) << i;
  EXPECT_TRUE(m.check_invariants());
}

// The oracle property test: random insert/erase/overwrite churn, with the
// flat map checked against std::unordered_map after every operation batch.
TEST(FlatMap, ChurnMatchesUnorderedMapOracle) {
  SplitMix64 rng(0xF1A7);
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;

  // Small key universe => constant collisions and long probe runs; the
  // erase-heavy phases push wrapped-run rescue cases.
  const std::uint64_t kUniverse = 512;
  for (int phase = 0; phase < 40; ++phase) {
    const bool erase_heavy = phase % 2 == 1;
    for (int op = 0; op < 400; ++op) {
      const std::uint64_t key = rng.next_below(kUniverse);
      const int kind = static_cast<int>(rng.next_below(erase_heavy ? 2 : 3));
      if (kind == 0 && erase_heavy) {
        EXPECT_EQ(m.erase(key), oracle.erase(key) > 0);
      } else if (kind == 2) {
        const std::uint64_t val = rng.next_u64();
        m.insert(key, val);
        oracle[key] = val;
      } else {
        const std::uint64_t val = rng.next_u64();
        auto [slot, inserted] = m.try_emplace(key, val);
        auto [it, oinserted] = oracle.try_emplace(key, val);
        EXPECT_EQ(inserted, oinserted);
        EXPECT_EQ(*slot, it->second);
      }
    }
    ASSERT_TRUE(m.check_invariants()) << "phase " << phase;
    ASSERT_EQ(m.size(), oracle.size()) << "phase " << phase;
    for (const auto& [k, v] : oracle) {
      const std::uint64_t* found = m.find(k);
      ASSERT_NE(found, nullptr) << "phase " << phase << " key " << k;
      ASSERT_EQ(*found, v);
    }
    for (std::uint64_t k = 0; k < kUniverse; ++k) {
      if (!oracle.count(k)) {
        ASSERT_EQ(m.find(k), nullptr) << k;
      }
    }
  }
}

TEST(FlatMap, ForEachVisitsEveryElementOnce) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.try_emplace(i, i * 3);
  for (std::uint64_t i = 0; i < 100; i += 2) m.erase(i);
  std::uint64_t count = 0, sum = 0;
  m.for_each([&](const std::uint64_t& k, std::uint64_t& v) {
    ++count;
    sum += v;
    EXPECT_EQ(v, k * 3);
  });
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(m.size(), 50u);
  (void)sum;
}

TEST(FlatMap, ClearKeepsCapacity) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t i = 0; i < 1000; ++i) m.try_emplace(i, 1);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.find(1u), nullptr);
  for (std::uint64_t i = 0; i < 1000; ++i) m.try_emplace(i, 2);
  EXPECT_EQ(m.rehashes(), 0u);
}

TEST(FlatMap, HeterogeneousByteRangeLookupDoesNotAllocate) {
  FlatMap<Bytes, int, ByteRangeHash, ByteRangeEq> m;
  const Bytes key = {1, 2, 3, 4, 5};
  m.try_emplace(key, 7);
  // Probe with a non-owning view over different storage.
  const std::uint8_t raw[] = {1, 2, 3, 4, 5};
  EXPECT_NE(m.find(BytesView(raw, 5)), nullptr);
  EXPECT_EQ(*m.find(BytesView(raw, 5)), 7);
  const std::uint8_t other[] = {1, 2, 3, 4, 6};
  EXPECT_EQ(m.find(BytesView(other, 5)), nullptr);
  EXPECT_TRUE(m.erase(BytesView(raw, 5)));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, MemoryBytesTracksSlotArray) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  EXPECT_EQ(m.memory_bytes(), 0u);
  m.reserve(1 << 16);
  const std::size_t bytes = m.memory_bytes();
  EXPECT_GE(bytes, (1u << 16) * (sizeof(std::uint64_t) * 3));
  for (std::uint64_t i = 0; i < (1u << 16); ++i) m.try_emplace(i, i);
  EXPECT_EQ(m.memory_bytes(), bytes);
}

}  // namespace
}  // namespace fbs::util
