#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fbs::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value for seed 0 from the canonical splitmix64 algorithm.
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next_u64(), 0xE220A8397B1DCDAFull);
}

TEST(RandomSource, NextBelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RandomSource, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomSource, NextBytesLengthAndVariety) {
  SplitMix64 rng(11);
  const Bytes b = rng.next_bytes(100);
  ASSERT_EQ(b.size(), 100u);
  std::set<std::uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 20u);  // not a constant buffer
  EXPECT_TRUE(rng.next_bytes(0).empty());
}

TEST(Lcg48, DeterministicForSeed) {
  Lcg48 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Lcg48, ReseedingChangesStream) {
  Lcg48 a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Lcg48, Step32ProducesVariedConfounders) {
  // Statistical (not cryptographic) randomness is the requirement: the
  // confounder stream should not repeat over a short horizon.
  Lcg48 rng(99);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.step32());
  EXPECT_GT(seen.size(), 9990u);
}

TEST(Lcg48, BitsAreBalanced) {
  Lcg48 rng(5);
  int ones = 0;
  constexpr int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) ones += __builtin_popcount(rng.step32());
  const double frac = static_cast<double>(ones) / (32.0 * kDraws);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(EntropySeed, ProducesDistinctValues) {
  EXPECT_NE(entropy_seed(), entropy_seed());
}

}  // namespace
}  // namespace fbs::util
