#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

namespace fbs::util {
namespace {

TEST(BufferPool, RoundtripServesFromTheSlabWithoutFallback) {
  BufferPoolConfig cfg;
  cfg.buffer_bytes = 512;
  cfg.slab_buffers = 8;
  cfg.lanes = 2;
  cfg.lane_cap = 4;
  BufferPool pool(cfg);
  EXPECT_EQ(pool.lane_count(), 2u);
  EXPECT_EQ(pool.stats().pooled, 8u);

  Bytes b = pool.acquire(0);
  EXPECT_GE(b.capacity(), 512u);
  EXPECT_TRUE(b.empty());  // handed out cleared
  b.assign(100, 0xAB);
  pool.release(0, std::move(b));

  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.heap_fallbacks, 0u);
  EXPECT_EQ(s.pooled, 8u);  // back where it started
  EXPECT_EQ(s.high_water, 1u);

  // A recycled buffer comes back cleared even though it was released dirty.
  Bytes again = pool.acquire(0);
  EXPECT_TRUE(again.empty());
  pool.release(0, std::move(again));
}

TEST(BufferPool, ExhaustionFallsBackToTheHeapAndCounts) {
  BufferPoolConfig cfg;
  cfg.buffer_bytes = 256;
  cfg.slab_buffers = 2;
  cfg.lanes = 1;
  cfg.lane_cap = 4;
  BufferPool pool(cfg);

  std::vector<Bytes> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire(0));
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 5u);
  EXPECT_EQ(s.heap_fallbacks, 3u);  // slab had 2; the rest came off the heap
  EXPECT_EQ(s.pooled, 0u);
  EXPECT_EQ(s.high_water, 5u);
  // Fallback buffers are still usable and pre-reserved.
  for (const Bytes& b : held) EXPECT_GE(b.capacity(), 256u);

  // Releasing foreign (heap) buffers re-stocks the pool: it accepts any
  // buffer, so the level recovers instead of staying pinned at zero.
  for (auto& b : held) pool.release(0, std::move(b));
  held.clear();
  EXPECT_EQ(pool.stats().pooled, 5u);
  Bytes b = pool.acquire(0);
  EXPECT_EQ(pool.stats().heap_fallbacks, 3u);  // no new fallback
  pool.release(0, std::move(b));
}

TEST(BufferPool, DryLaneRefillsFromShared) {
  BufferPoolConfig cfg;
  cfg.buffer_bytes = 128;
  cfg.slab_buffers = 12;  // lanes take 2x4, shared keeps 4
  cfg.lanes = 2;
  cfg.lane_cap = 4;
  BufferPool pool(cfg);

  // Drain lane 0's private list (4 buffers) ...
  std::vector<Bytes> held;
  for (int i = 0; i < 4; ++i) held.push_back(pool.acquire(0));
  EXPECT_EQ(pool.stats().refills, 0u);
  // ... the 5th acquire must refill from the shared remainder, not the heap.
  held.push_back(pool.acquire(0));
  const auto s = pool.stats();
  EXPECT_EQ(s.refills, 1u);
  EXPECT_EQ(s.heap_fallbacks, 0u);

  for (auto& b : held) pool.release(0, std::move(b));
}

TEST(BufferPool, LaneOverflowSpillsToSharedThenDiscards) {
  BufferPoolConfig cfg;
  cfg.buffer_bytes = 128;
  cfg.slab_buffers = 2;
  cfg.lanes = 1;
  cfg.lane_cap = 2;
  BufferPool pool(cfg);
  // shared_cap = slab + lanes*lane_cap = 4. Lane starts full (2), shared
  // empty. Release 7 foreign buffers: 0 fit the lane, 4 fit shared, 3 die.
  for (int i = 0; i < 7; ++i) {
    Bytes foreign;
    foreign.reserve(128);
    pool.release(0, std::move(foreign));
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.overflow_discards, 3u);
  EXPECT_EQ(s.pooled, 6u);  // 2 lane + 4 shared: the configured bound
}

TEST(BufferPool, HighWaterTracksPeakOutstanding) {
  BufferPoolConfig cfg;
  cfg.slab_buffers = 8;
  cfg.lanes = 1;
  cfg.lane_cap = 8;
  BufferPool pool(cfg);

  std::vector<Bytes> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.acquire(0));
  for (auto& b : held) pool.release(0, std::move(b));
  held.clear();
  // Peak was 3; later smaller bursts must not move it.
  held.push_back(pool.acquire(0));
  pool.release(0, std::move(held.back()));
  held.clear();
  EXPECT_EQ(pool.stats().high_water, 3u);
}

TEST(BufferPool, LaneIndexWrapsInsteadOfFaulting) {
  BufferPoolConfig cfg;
  cfg.slab_buffers = 4;
  cfg.lanes = 2;
  cfg.lane_cap = 2;
  BufferPool pool(cfg);
  // Lane 5 % 2 == lane 1: out-of-range owners alias a real lane rather than
  // indexing out of bounds (the pipeline's drain lane is workers_.size()).
  Bytes b = pool.acquire(5);
  pool.release(5, std::move(b));
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
}

}  // namespace
}  // namespace fbs::util
