#include "util/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fbs::util {
namespace {

TEST(BoundedMpscRing, FifoWithinCapacity) {
  BoundedMpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 4u);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(BoundedMpscRing, FullRingRefusesTryPush) {
  BoundedMpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));  // backpressure
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(3));  // pop freed a slot
}

TEST(BoundedMpscRing, ZeroCapacityClampedToOne) {
  BoundedMpscRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.try_push(8));
}

TEST(BoundedMpscRing, CountsEveryRejectedPush) {
  BoundedMpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));
  EXPECT_EQ(ring.dropped(), 2u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(5));  // accepted pushes leave the count alone
  EXPECT_EQ(ring.dropped(), 2u);

  // A push_wait cancelled while the ring is (again) full is a drop too
  // (the shutdown path abandons the value).
  std::atomic<bool> cancel{true};
  EXPECT_FALSE(ring.push_wait(7, cancel));
  EXPECT_EQ(ring.dropped(), 3u);
}

TEST(BoundedMpscRing, PushWaitBlocksUntilSlotFrees) {
  BoundedMpscRing<int> ring(1);
  std::atomic<bool> cancel{false};
  ASSERT_TRUE(ring.try_push(1));
  std::thread producer([&] {
    EXPECT_TRUE(ring.push_wait(2, cancel));  // blocks until the pop below
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedMpscRing, PushWaitHonorsCancel) {
  BoundedMpscRing<int> ring(1);
  std::atomic<bool> cancel{false};
  ASSERT_TRUE(ring.try_push(1));
  std::thread producer([&] {
    EXPECT_FALSE(ring.push_wait(2, cancel));  // ring stays full; canceled
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel.store(true);
  ring.wake_all();
  producer.join();
}

TEST(BoundedMpscRing, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpscRing<int> ring(64);
  std::atomic<bool> cancel{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(ring.push_wait(p * kPerProducer + i, cancel));
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  int received = 0, out = 0;
  while (received < kProducers * kPerProducer) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    const int producer = out / kPerProducer;
    const int seq = out % kPerProducer;
    // Per-producer FIFO must survive the interleaving.
    EXPECT_GT(seq, last_seen[producer]);
    last_seen[producer] = seq;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace fbs::util
