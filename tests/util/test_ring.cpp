#include "util/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fbs::util {
namespace {

TEST(BoundedMpscRing, FifoWithinCapacity) {
  BoundedMpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 4u);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(BoundedMpscRing, FullRingRefusesTryPush) {
  BoundedMpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));  // backpressure
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(3));  // pop freed a slot
}

TEST(BoundedMpscRing, ZeroCapacityClampedToOne) {
  BoundedMpscRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.try_push(8));
}

TEST(BoundedMpscRing, CountsEveryRejectedPush) {
  BoundedMpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));
  EXPECT_EQ(ring.dropped(), 2u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(5));  // accepted pushes leave the count alone
  EXPECT_EQ(ring.dropped(), 2u);

  // A push_wait cancelled while the ring is (again) full is abandoned too,
  // but it is a *shutdown* drop and must not pollute the backpressure
  // count: the two feed different terms of the pipeline's conservation
  // equation.
  std::atomic<bool> cancel{true};
  EXPECT_FALSE(ring.push_wait(7, cancel));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.cancelled_dropped(), 1u);
}

TEST(BoundedMpscRing, BatchFifoInterleavedWithSingleItemOps) {
  BoundedMpscRing<int> ring(8);
  std::vector<int> first{1, 2, 3};
  EXPECT_EQ(ring.try_push_batch({first.data(), first.size()}), 3u);
  EXPECT_TRUE(ring.try_push(4));
  std::vector<int> second{5, 6};
  EXPECT_EQ(ring.try_push_batch({second.data(), second.size()}), 2u);

  // Mixed pops must observe one global FIFO regardless of how items
  // entered: single pop, then a capped batch, then the rest.
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  std::vector<int> popped;
  EXPECT_EQ(ring.pop_batch(popped, 2), 2u);
  EXPECT_EQ(popped, (std::vector<int>{2, 3}));
  EXPECT_EQ(ring.pop_batch(popped, 100), 3u);
  EXPECT_EQ(popped, (std::vector<int>{2, 3, 4, 5, 6}));
  EXPECT_EQ(ring.pop_batch(popped, 100), 0u);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(BoundedMpscRing, BatchLargerThanCapacityAcceptsAPrefix) {
  BoundedMpscRing<int> ring(4);
  std::vector<int> burst{10, 11, 12, 13, 14, 15};
  EXPECT_EQ(ring.try_push_batch({burst.data(), burst.size()}), 4u);
  EXPECT_EQ(ring.dropped(), 2u);  // the overflow tail, counted at the ring
  EXPECT_EQ(ring.size(), 4u);
  std::vector<int> popped;
  EXPECT_EQ(ring.pop_batch(popped, 10), 4u);
  EXPECT_EQ(popped, (std::vector<int>{10, 11, 12, 13}));
  // The refused tail was left untouched in the caller's storage.
  EXPECT_EQ(burst[4], 14);
  EXPECT_EQ(burst[5], 15);
}

TEST(BoundedMpscRing, PushWaitBatchSpansConsumerProgress) {
  // A blocking batch wider than the whole ring must land in chunks as the
  // consumer frees slots, preserving order end to end.
  BoundedMpscRing<int> ring(2);
  std::atomic<bool> cancel{false};
  std::vector<int> burst{1, 2, 3, 4, 5};
  std::thread producer([&] {
    EXPECT_EQ(ring.push_wait_batch({burst.data(), burst.size()}, cancel), 5u);
  });
  std::vector<int> got;
  int out = 0;
  while (got.size() < 5) {
    if (ring.try_pop(out)) got.push_back(out);
    else std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.cancelled_dropped(), 0u);
}

TEST(BoundedMpscRing, PushWaitBatchCancelledMidwayCountsTheTail) {
  BoundedMpscRing<int> ring(2);
  std::atomic<bool> cancel{false};
  std::vector<int> burst{1, 2, 3, 4, 5};
  std::size_t pushed = 0;
  std::thread producer([&] {
    pushed = ring.push_wait_batch({burst.data(), burst.size()}, cancel);
  });
  // Let the first chunk land, then cancel with the ring still full.
  while (ring.size() < 2) std::this_thread::yield();
  cancel.store(true);
  ring.wake_all();
  producer.join();
  EXPECT_EQ(pushed, 2u);
  EXPECT_EQ(ring.cancelled_dropped(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(BoundedMpscRing, PushWaitBlocksUntilSlotFrees) {
  BoundedMpscRing<int> ring(1);
  std::atomic<bool> cancel{false};
  ASSERT_TRUE(ring.try_push(1));
  std::thread producer([&] {
    EXPECT_TRUE(ring.push_wait(2, cancel));  // blocks until the pop below
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedMpscRing, PushWaitHonorsCancel) {
  BoundedMpscRing<int> ring(1);
  std::atomic<bool> cancel{false};
  ASSERT_TRUE(ring.try_push(1));
  std::thread producer([&] {
    EXPECT_FALSE(ring.push_wait(2, cancel));  // ring stays full; canceled
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel.store(true);
  ring.wake_all();
  producer.join();
}

TEST(BoundedMpscRing, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedMpscRing<int> ring(64);
  std::atomic<bool> cancel{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(ring.push_wait(p * kPerProducer + i, cancel));
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  int received = 0, out = 0;
  while (received < kProducers * kPerProducer) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    const int producer = out / kPerProducer;
    const int seq = out % kPerProducer;
    // Per-producer FIFO must survive the interleaving.
    EXPECT_GT(seq, last_seen[producer]);
    last_seen[producer] = seq;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace fbs::util
