#include "util/crc32.hpp"

#include <gtest/gtest.h>

namespace fbs::util {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 (IEEE) check values.
  EXPECT_EQ(crc32(to_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(to_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("flow-based datagram security");
  std::uint32_t st = crc32_init();
  st = crc32_update(st, BytesView(data).subspan(0, 10));
  st = crc32_update(st, BytesView(data).subspan(10));
  EXPECT_EQ(crc32_final(st), crc32(data));
}

TEST(Crc32, SingleBitChangesDigest) {
  Bytes data = to_bytes("aaaaaaaaaaaaaaaa");
  const std::uint32_t base = crc32(data);
  data[7] ^= 0x01;
  EXPECT_NE(crc32(data), base);
}

TEST(Crc32, SequentialInputsSpreadWell) {
  // The paper's reason to use CRC-32: sequential inputs (sfl values) should
  // spread across cache sets, unlike raw modulo.
  constexpr std::size_t kSets = 64;
  std::vector<int> counts(kSets, 0);
  for (std::uint64_t sfl = 1000; sfl < 1000 + 4 * kSets; ++sfl) {
    Bytes key(8);
    for (int i = 0; i < 8; ++i)
      key[i] = static_cast<std::uint8_t>(sfl >> (56 - 8 * i));
    ++counts[crc32(key) % kSets];
  }
  // With 4x oversubscription, no set should be grossly overloaded.
  for (int c : counts) EXPECT_LE(c, 12);
}

}  // namespace
}  // namespace fbs::util
