#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace fbs::util {
namespace {

TEST(Bytes, ToBytesRoundTripsThroughToString) {
  const Bytes b = to_bytes("hello datagram");
  EXPECT_EQ(to_string(b), "hello datagram");
}

TEST(Bytes, ToHexKnownValues) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(to_hex(Bytes{0x00}), "00");
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
}

TEST(Bytes, FromHexLowerAndUpperCase) {
  EXPECT_EQ(*from_hex("deadbeef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(*from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(Bytes, FromHexRejectsNonHexCharacters) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Bytes, HexRoundTrip) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(*from_hex(to_hex(all)), all);
}

TEST(Bytes, CtEqualMatchesEquality) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(ByteWriter, BigEndianEncoding) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0Full);
  const Bytes out = w.take();
  EXPECT_EQ(to_hex(out), "0102030405060708090a0b0c0d0e0f");
}

TEST(ByteWriter, TakeLeavesWriterEmpty) {
  ByteWriter w;
  w.u32(42);
  (void)w.take();
  EXPECT_EQ(w.size(), 0u);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x12345678);
  w.u64(0x1122334455667788ull);
  w.bytes(to_bytes("tail"));
  const Bytes buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 0xCDEF);
  EXPECT_EQ(*r.u32(), 0x12345678u);
  EXPECT_EQ(*r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(to_string(r.rest()), "tail");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, TruncationSetsNotOk) {
  const Bytes buf{0x01, 0x02};
  ByteReader r(buf);
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed even if enough bytes nominally remain.
  EXPECT_FALSE(r.u8().has_value());
}

TEST(ByteReader, BytesExactCount) {
  const Bytes buf{1, 2, 3, 4, 5};
  ByteReader r(buf);
  EXPECT_EQ(*r.bytes(3), (Bytes{1, 2, 3}));
  EXPECT_FALSE(r.bytes(3).has_value());  // only 2 left
}

TEST(ByteReader, EmptyRestIsEmpty) {
  const Bytes buf{};
  ByteReader r(buf);
  EXPECT_TRUE(r.rest().empty());
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace fbs::util
