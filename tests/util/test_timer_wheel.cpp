// TimerWheel: hierarchical (Varghese & Lauck) wheel behind O(expired) flow
// expiry. The tests run with tick_shift=0 so one time unit == one tick and
// deadline arithmetic is exact at level 0; multi-level behavior is exercised
// with deadlines beyond 64 and 4096 ticks, which must cascade down and still
// fire in deadline order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/timer_wheel.hpp"

namespace fbs::util {
namespace {

std::vector<std::uint32_t> drain(TimerWheel& w, std::int64_t until) {
  std::vector<std::uint32_t> fired;
  w.advance(until, [&](std::uint32_t id) { fired.push_back(id); });
  return fired;
}

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel w(/*tick_shift=*/0);
  w.schedule(1, 10);
  EXPECT_TRUE(w.armed(1));
  EXPECT_TRUE(drain(w, 9).empty());
  EXPECT_TRUE(w.armed(1));
  auto fired = drain(w, 10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_FALSE(w.armed(1));
  EXPECT_EQ(w.live(), 0u);
}

TEST(TimerWheel, CancelDisarms) {
  TimerWheel w(0);
  w.schedule(3, 5);
  w.schedule(4, 5);
  w.cancel(3);
  EXPECT_FALSE(w.armed(3));
  EXPECT_TRUE(w.armed(4));
  EXPECT_EQ(w.live(), 1u);
  auto fired = drain(w, 100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 4u);
  w.cancel(3);   // double-cancel is a no-op
  w.cancel(99);  // unknown id is a no-op
}

TEST(TimerWheel, RescheduleMovesDeadline) {
  TimerWheel w(0);
  w.schedule(7, 5);
  w.schedule(7, 500);  // re-arm further out; must not fire at 5
  EXPECT_EQ(w.live(), 1u);
  EXPECT_TRUE(drain(w, 499).empty());
  auto fired = drain(w, 500);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
}

// Far-future timers land on higher wheels and must cascade down level by
// level, firing in deadline order regardless of insertion order.
TEST(TimerWheel, CascadeFiresInDeadlineOrderAcrossLevels) {
  TimerWheel w(0);
  // Deadlines spanning level 0 (<64), level 1 (<4096), level 2 (<262144)
  // and level 3, inserted shuffled.
  struct Item {
    std::uint32_t id;
    std::int64_t deadline;
  };
  std::vector<Item> items;
  SplitMix64 rng(0x7EE1);
  for (std::uint32_t id = 0; id < 400; ++id) {
    const unsigned level = id % 4;
    const std::int64_t base = level == 0   ? 1
                              : level == 1 ? 64
                              : level == 2 ? 4096
                                           : 262144;
    items.push_back({id, base + static_cast<std::int64_t>(
                                    rng.next_below(base * 3))});
  }
  for (std::size_t i = items.size(); i > 1; --i)
    std::swap(items[i - 1], items[rng.next_below(i)]);
  for (const Item& it : items) w.schedule(it.id, it.deadline);
  EXPECT_EQ(w.live(), items.size());

  std::vector<std::uint32_t> fired;
  std::int64_t last_deadline = -1;
  std::vector<std::int64_t> deadline_of(400);
  for (const Item& it : items) deadline_of[it.id] = it.deadline;
  // Advance in odd-sized strides to hit mid-wheel cursor positions, then a
  // final drain past every deadline. A timer whose deadline tick lands
  // exactly on a cascade boundary is re-placed strictly-future and fires one
  // tick late, so the assertions allow a 1-tick skew.
  const std::int64_t limit = 262144 * 4 + 2048;
  auto on_fire = [&](std::int64_t now) {
    return [&, now](std::uint32_t id) {
      fired.push_back(id);
      EXPECT_LE(deadline_of[id], now);           // never early
      EXPECT_GE(deadline_of[id], now - 978);     // never > stride+skew late
      EXPECT_GE(deadline_of[id] + 1, last_deadline);  // ordered mod skew
      last_deadline = std::max(last_deadline, deadline_of[id]);
    };
  };
  for (std::int64_t now = 0; now < limit; now += 977)
    w.advance(now, on_fire(now));
  w.advance(limit, on_fire(limit));
  EXPECT_EQ(fired.size(), items.size());
  EXPECT_EQ(w.live(), 0u);
  EXPECT_GT(w.stats().cascaded, 0u);  // higher levels really were used
  // Every id fired exactly once.
  std::sort(fired.begin(), fired.end());
  for (std::uint32_t id = 0; id < 400; ++id) EXPECT_EQ(fired[id], id);
}

// The lazy re-arm idiom: a fired callback re-schedules its own id. The wheel
// disarms before firing, so this must neither loop nor lose the timer.
TEST(TimerWheel, CallbackMayRearmOwnId) {
  TimerWheel w(0);
  w.schedule(1, 10);
  int fires = 0;
  w.advance(10, [&](std::uint32_t id) {
    ++fires;
    w.schedule(id, 20);  // flow turned out to still be fresh
  });
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(w.armed(1));
  auto fired = drain(w, 20);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
}

// The point of the wheel: advancing over a sea of pending timers costs ticks
// walked plus work delivered, not timers stored.
TEST(TimerWheel, AdvanceCostIndependentOfPendingTimers) {
  TimerWheel w(0);
  w.reserve(100000);
  // 100k timers all far in the future (level 3).
  for (std::uint32_t id = 0; id < 100000; ++id)
    w.schedule(id, 1 << 20);
  const std::uint64_t visits_before = w.stats().slot_visits;
  auto fired = drain(w, 4000);  // walk 4000 ticks; nothing is due
  EXPECT_TRUE(fired.empty());
  const std::uint64_t visits = w.stats().slot_visits - visits_before;
  // 4000 level-0 buckets + ~62 level-1 cascade visits + 1 level-2; far less
  // than one visit per pending timer.
  EXPECT_LT(visits, 4100u);
  EXPECT_EQ(w.stats().fired, 0u);
  EXPECT_EQ(w.live(), 100000u);
}

TEST(TimerWheel, PopEarliestReturnsApproximateOldestFirst) {
  TimerWheel w(0);
  w.schedule(10, 5000);   // level 1/2 territory
  w.schedule(11, 30);     // level 0: earliest
  w.schedule(12, 200000); // level 2/3
  EXPECT_EQ(w.pop_earliest(), 11u);
  EXPECT_FALSE(w.armed(11));
  EXPECT_EQ(w.pop_earliest(), 10u);
  EXPECT_EQ(w.pop_earliest(), 12u);
  EXPECT_EQ(w.pop_earliest(), TimerWheel::kNil);
  EXPECT_EQ(w.live(), 0u);
  // Popped timers never fire.
  EXPECT_TRUE(drain(w, 1 << 20).empty());
}

TEST(TimerWheel, ClearDropsAllTimers) {
  TimerWheel w(0);
  for (std::uint32_t id = 0; id < 100; ++id) w.schedule(id, 10 + id * 100);
  w.clear();
  EXPECT_EQ(w.live(), 0u);
  EXPECT_FALSE(w.armed(5));
  EXPECT_TRUE(drain(w, 1 << 20).empty());
  // The wheel is reusable after clear().
  w.schedule(1, (1 << 20) + 7);
  auto fired = drain(w, (1 << 20) + 7);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
}

TEST(TimerWheel, TickShiftCoarsensDeadlines) {
  // tick_shift=20 (the FAM default): microsecond deadlines quantize DOWN to
  // ~1.05 s ticks, so a timer may fire up to one tick early but never
  // before its deadline's tick begins (which is why the flow policy
  // re-checks flow_expired() on fire instead of trusting the wheel).
  TimerWheel w(20);
  const std::int64_t deadline = 3'000'000;  // 3 s in us, tick 2
  const std::int64_t tick_start = (deadline >> 20) << 20;
  w.schedule(1, deadline);
  EXPECT_TRUE(drain(w, tick_start - 1).empty());
  auto fired = drain(w, deadline + (1 << 20));
  ASSERT_EQ(fired.size(), 1u);
}

}  // namespace
}  // namespace fbs::util
