#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace fbs::util {
namespace {

TEST(LogHistogram, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(LogHistogram, TotalAndMean) {
  LogHistogram h;
  h.add(2);
  h.add(4);
  h.add(6);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.min(), 2.0);
  EXPECT_EQ(h.max(), 6.0);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h;
  h.add(10, 5);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(LogHistogram, BucketsCoverPowerOfTwoRanges) {
  LogHistogram h(2.0);
  h.add(1);    // [1,2)
  h.add(3);    // [2,4)
  h.add(5);    // [4,8)
  h.add(100);  // [64,128)
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].lo, 1.0);
  EXPECT_EQ(buckets[0].hi, 2.0);
  EXPECT_EQ(buckets.back().count, 1u);
  EXPECT_DOUBLE_EQ(buckets.back().cum_fraction, 1.0);
}

TEST(LogHistogram, SubUnitValuesLandInZeroBucket) {
  LogHistogram h;
  h.add(0);
  h.add(0.5);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].lo, 0.0);
  EXPECT_EQ(buckets[0].count, 2u);
}

TEST(LogHistogram, CdfIsMonotonic) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i);
  double prev = 0;
  for (const auto& b : h.buckets()) {
    EXPECT_GE(b.cum_fraction, prev);
    prev = b.cum_fraction;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(LogHistogram, QuantileBoundsAndOrder) {
  LogHistogram h;
  for (int i = 1; i <= 1024; ++i) h.add(i);
  const double q10 = h.quantile(0.10);
  const double q50 = h.quantile(0.50);
  const double q99 = h.quantile(0.99);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q99);
  EXPECT_GE(q10, 1.0);
  EXPECT_LE(q99, 1024.0);
  // The median of 1..1024 sits in the [512,1024) bucket.
  EXPECT_GE(q50, 256.0);
  EXPECT_LE(q50, 1024.0);
}

TEST(LogHistogram, RenderContainsCountsAndBars) {
  LogHistogram h;
  h.add(4, 10);
  const std::string table = h.render("packets");
  EXPECT_NE(table.find("packets"), std::string::npos);
  EXPECT_NE(table.find("10"), std::string::npos);
  EXPECT_NE(table.find('#'), std::string::npos);
}

}  // namespace
}  // namespace fbs::util
