// libFuzzer entry point: each fuzz_<target> executable is this file compiled
// with FBS_FUZZ_TARGET naming one registry entry (see tests/CMakeLists.txt,
// FBS_FUZZ=ON under Clang). The oracle lives in the target itself, so
// libFuzzer and the deterministic driver enforce identical properties --
// libFuzzer just explores with coverage feedback instead of pool feedback.
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const fbs::fuzz::FuzzTarget* target =
      fbs::fuzz::find_target(FBS_FUZZ_TARGET);
  if (target) (void)target->run({data, size});
  return 0;
}
