// encode(parse(x)) == x property tests for every wire codec, at the value
// level: serialize a representative spread of values, parse them back, and
// require byte-identical re-encodes. The fuzz drivers enforce the same
// property over adversarial inputs; these pin it over the encoders' own
// output space, so a codec change that breaks canonicality fails here with
// a readable diff instead of an aborted fuzz run.
#include <gtest/gtest.h>

#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/algorithms.hpp"
#include "fbs/header.hpp"
#include "net/headers.hpp"
#include "net/icmp.hpp"
#include "net/ip.hpp"

namespace fbs {
namespace {

const net::Ipv4Address kSrc = *net::Ipv4Address::parse("10.0.0.1");
const net::Ipv4Address kDst = *net::Ipv4Address::parse("10.0.0.2");

TEST(Roundtrip, FbsHeaderThroughBothSerializers) {
  for (const auto mac :
       {crypto::MacAlgorithm::kKeyedMd5, crypto::MacAlgorithm::kHmacMd5,
        crypto::MacAlgorithm::kKeyedSha1, crypto::MacAlgorithm::kHmacSha1,
        crypto::MacAlgorithm::kNull}) {
    core::FbsHeader h;
    h.suite = {mac, crypto::CipherAlgorithm::kDesCbc};
    h.sfl = 0xA1B2C3D4E5F60718;
    h.confounder = 0x01020304;
    h.timestamp_minutes = 525600;
    h.secret = mac != crypto::MacAlgorithm::kNull;
    h.mac.assign(crypto::mac_size(mac), 0x7E);
    util::Bytes wire = h.serialize();
    wire.insert(wire.end(), {9, 8, 7});

    const auto parsed = core::FbsHeader::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    util::Bytes re = parsed->header.serialize();
    re.insert(re.end(), parsed->body.begin(), parsed->body.end());
    EXPECT_EQ(re, wire);

    const auto view = core::FbsHeaderView::parse(wire);
    ASSERT_TRUE(view.has_value());
    util::Bytes re2;
    view->serialize_into(re2);
    re2.insert(re2.end(), view->body.begin(), view->body.end());
    EXPECT_EQ(re2, wire);
  }
}

TEST(Roundtrip, Ipv4WithAndWithoutOptions) {
  net::Ipv4Header h;
  h.source = kSrc;
  h.destination = kDst;
  h.protocol = 17;
  h.id = 0x1234;
  h.ttl = 3;
  h.tos = 0x10;
  const util::Bytes payload{1, 2, 3, 4, 5};
  for (const util::Bytes& options :
       {util::Bytes{}, util::Bytes{0x94, 0x04, 0x00, 0x00},
        util::Bytes(net::Ipv4Header::kMaxOptionsSize, 0x01)}) {
    h.options = options;
    const util::Bytes wire = h.serialize(payload);
    const auto parsed = net::Ipv4Header::parse(wire);
    ASSERT_TRUE(parsed.has_value()) << options.size();
    EXPECT_EQ(parsed->payload, payload);
    EXPECT_EQ(parsed->header.serialize(parsed->payload), wire);
  }
}

TEST(Roundtrip, UdpAndTcpAndIcmp) {
  net::UdpHeader u;
  u.source_port = 7;
  u.destination_port = 9;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{64}}) {
    const util::Bytes payload(n, 0x33);  // odd sizes hit the checksum tail
    const util::Bytes wire = u.serialize(kSrc, kDst, payload);
    const auto parsed = net::UdpHeader::parse(kSrc, kDst, wire);
    ASSERT_TRUE(parsed.has_value()) << n;
    EXPECT_EQ(parsed->payload, payload);
    EXPECT_EQ(parsed->header.serialize(kSrc, kDst, parsed->payload), wire);
  }

  net::TcpHeader t;
  t.source_port = 4000;
  t.destination_port = 80;
  t.seq = 0xDEADBEEF;
  t.ack = 0x01020304;
  t.syn = true;
  t.ack_flag = true;
  t.window = 1024;
  for (const std::size_t n : {std::size_t{0}, std::size_t{3}}) {
    const util::Bytes wire = t.serialize(kSrc, kDst, util::Bytes(n, 0x61));
    const auto parsed = net::TcpHeader::parse(kSrc, kDst, wire);
    ASSERT_TRUE(parsed.has_value()) << n;
    EXPECT_EQ(parsed->header.serialize(kSrc, kDst, parsed->payload), wire);
  }

  net::IcmpMessage m;
  m.type = net::IcmpMessage::kEchoRequest;
  m.identifier = 0x4642;
  m.sequence = 99;
  m.payload = {1, 2, 3, 4, 5, 6, 7};
  const util::Bytes wire = m.serialize();
  const auto parsed = net::IcmpMessage::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), wire);
}

TEST(Roundtrip, CertificateAndDirectoryMessages) {
  cert::PublicValueCertificate c;
  c.subject = {10, 0, 0, 1};
  c.group_name = "oakley-1024";
  c.public_value = util::Bytes(128, 0x42);
  c.not_before = util::minutes(1);
  c.not_after = util::minutes(1000000);
  c.serial = 77;
  c.signature = util::Bytes(64, 0x5A);
  const util::Bytes wire = c.serialize();
  const auto parsed = cert::PublicValueCertificate::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), wire);
  EXPECT_EQ(parsed->subject, c.subject);
  EXPECT_EQ(parsed->group_name, c.group_name);
  EXPECT_EQ(parsed->serial, c.serial);
  // The canonical round trip is what lets a re-encoded certificate keep a
  // valid signature over tbs_bytes().
  EXPECT_EQ(parsed->tbs_bytes(), c.tbs_bytes());

  cert::DirectoryRequest req;
  req.subject = {10, 0, 0, 1};
  const util::Bytes req_wire = req.serialize();
  const auto req_back = cert::DirectoryRequest::parse(req_wire);
  ASSERT_TRUE(req_back.has_value());
  EXPECT_EQ(req_back->serialize(), req_wire);

  for (const auto status :
       {cert::FetchStatus::kOk, cert::FetchStatus::kNotFound,
        cert::FetchStatus::kUnavailable}) {
    cert::DirectoryResponse resp;
    resp.status = status;
    if (status == cert::FetchStatus::kOk) resp.cert = c;
    const util::Bytes resp_wire = resp.serialize();
    const auto back = cert::DirectoryResponse::parse(resp_wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->serialize(), resp_wire);
    EXPECT_EQ(back->cert.has_value(), status == cert::FetchStatus::kOk);
  }
}

TEST(Roundtrip, AlgorithmSuiteByte) {
  for (int mac = 1; mac <= 5; ++mac) {
    for (int cipher = 0; cipher <= 4; ++cipher) {
      const crypto::AlgorithmSuite suite{
          static_cast<crypto::MacAlgorithm>(mac),
          static_cast<crypto::CipherAlgorithm>(cipher)};
      const auto back = crypto::decode_suite(crypto::encode_suite(suite));
      ASSERT_TRUE(back.has_value());
      EXPECT_TRUE(*back == suite);
    }
  }
}

}  // namespace
}  // namespace fbs
