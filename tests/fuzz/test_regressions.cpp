// One named test per decoder bug the fuzz harness shook out, each anchored
// by a minimized entry in tests/fuzz/corpus/ (replayed by
// test_fuzz_drivers). The test states the attack; the fix lives in the
// decoder.
#include <gtest/gtest.h>

#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "fbs/engine.hpp"
#include "fbs/header.hpp"
#include "net/checksum.hpp"
#include "net/fragment.hpp"
#include "net/headers.hpp"
#include "net/icmp.hpp"
#include "net/ip.hpp"
#include "net/simnet.hpp"
#include "net/stack.hpp"
#include "net/udp.hpp"
#include "obs/metrics.hpp"
#include "support/world.hpp"

namespace fbs {
namespace {

const net::Ipv4Address kSrc = *net::Ipv4Address::parse("10.0.0.1");
const net::Ipv4Address kDst = *net::Ipv4Address::parse("10.0.0.2");

// --- FBS header ----------------------------------------------------------

// The reserved flag bits are outside the MAC, so an on-path attacker could
// mint distinct accepted encodings of one datagram. Both parsers must
// reject them, identically.
TEST(FuzzRegression, FbsHeaderRejectsReservedFlagBits) {
  core::FbsHeader h;
  h.mac.assign(crypto::mac_size(h.suite.mac), 0);
  util::Bytes wire = h.serialize();
  ASSERT_TRUE(core::FbsHeaderView::parse(wire).has_value());
  for (const std::uint8_t bit : {0x02, 0x04, 0x08}) {
    util::Bytes bad = wire;
    bad[0] |= bit;
    EXPECT_FALSE(core::FbsHeaderView::parse(bad).has_value()) << int(bit);
    EXPECT_FALSE(core::FbsHeader::parse(bad).has_value()) << int(bit);
  }
}

// --- IPv4 ----------------------------------------------------------------

// The old parser conflated "IHL != 5" with "malformed", so a legitimate
// optioned packet was unparseable -- and option bytes were never part of
// the verified checksum.
TEST(FuzzRegression, Ipv4ParsesOptionsAndChecksumsThem) {
  net::Ipv4Header h;
  h.source = kSrc;
  h.destination = kDst;
  h.protocol = 17;
  h.options = {0x94, 0x04, 0x00, 0x00};  // router alert
  const util::Bytes payload{1, 2, 3};
  util::Bytes wire = h.serialize(payload);
  const auto parsed = net::Ipv4Header::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.options, h.options);
  EXPECT_EQ(parsed->payload, payload);
  // Flipping an option byte must break the header checksum.
  wire[net::Ipv4Header::kSize] ^= 0xFF;
  EXPECT_FALSE(net::Ipv4Header::parse(wire).has_value());
}

TEST(FuzzRegression, Ipv4RejectsBadIhl) {
  net::Ipv4Header h;
  h.source = kSrc;
  h.destination = kDst;
  util::Bytes wire = h.serialize(util::Bytes{1, 2, 3, 4});
  // IHL below 5: the "header" would overlap the fixed fields.
  util::Bytes low = wire;
  low[0] = 0x44;
  const std::uint16_t csum_low = net::internet_checksum(
      [&] { util::Bytes c = low; c[10] = c[11] = 0; return c; }());
  low[10] = static_cast<std::uint8_t>(csum_low >> 8);
  low[11] = static_cast<std::uint8_t>(csum_low);
  EXPECT_FALSE(net::Ipv4Header::parse(low).has_value());
  // IHL reaching past the buffer: a 60-byte header claim on 24 wire bytes.
  util::Bytes high = wire;
  high[0] = 0x4F;
  EXPECT_FALSE(net::Ipv4Header::parse(high).has_value());
}

// total_length shorter than the header would make payload extraction wrap;
// the fuzz driver found it as a crash candidate under ASan.
TEST(FuzzRegression, Ipv4RejectsTotalLengthShorterThanHeader) {
  net::Ipv4Header h;
  h.source = kSrc;
  h.destination = kDst;
  util::Bytes wire = h.serialize(util::Bytes{1, 2, 3, 4});
  wire[2] = 0;
  wire[3] = 16;  // total_length 16 < 20-byte header
  wire[10] = wire[11] = 0;
  const std::uint16_t csum = net::internet_checksum({wire.data(), 20});
  wire[10] = static_cast<std::uint8_t>(csum >> 8);
  wire[11] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(net::Ipv4Header::parse(wire).has_value());
}

// serialize() can never emit the RFC 791 reserved fragment bit, so
// accepting it broke the encode(parse(x)) == x oracle.
TEST(FuzzRegression, Ipv4RejectsReservedFragmentFlag) {
  net::Ipv4Header h;
  h.source = kSrc;
  h.destination = kDst;
  util::Bytes wire = h.serialize(util::Bytes{1});
  wire[6] |= 0x80;
  wire[10] = wire[11] = 0;
  const std::uint16_t csum = net::internet_checksum({wire.data(), 20});
  wire[10] = static_cast<std::uint8_t>(csum >> 8);
  wire[11] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(net::Ipv4Header::parse(wire).has_value());
}

// --- Reassembly ----------------------------------------------------------

net::Ipv4Header frag_header(std::uint16_t id, std::uint16_t offset_units,
                            bool more, std::size_t payload_size) {
  net::Ipv4Header h;
  h.source = kSrc;
  h.destination = kDst;
  h.protocol = 17;
  h.id = id;
  h.fragment_offset = offset_units;
  h.more_fragments = more;
  h.total_length =
      static_cast<std::uint16_t>(h.header_size() + payload_size);
  return h;
}

// The completed datagram used to carry the *first fragment's* total_length
// verbatim -- a 28-byte claim on a multi-kilobyte payload.
TEST(FuzzRegression, ReassemblerRewritesTotalLength) {
  util::VirtualClock clock(0);
  net::Reassembler reasm(clock);
  EXPECT_FALSE(
      reasm.push(frag_header(1, 0, true, 512), util::Bytes(512, 0xAA))
          .has_value());
  const auto done =
      reasm.push(frag_header(1, 64, false, 100), util::Bytes(100, 0xBB));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload.size(), 612u);
  EXPECT_EQ(done->header.total_length, net::Ipv4Header::kSize + 612);
  EXPECT_FALSE(done->header.more_fragments);
  EXPECT_EQ(done->header.fragment_offset, 0);
}

// A fragment set can describe up to 8191*8 + 65535 bytes, far past what a
// 16-bit total_length can express; such sets must die before touching
// reassembly state.
TEST(FuzzRegression, ReassemblerRejectsOversizedReassembly) {
  util::VirtualClock clock(0);
  net::Reassembler reasm(clock);
  // Offset 8191 units = byte 65528 plus a 100-byte payload: impossible.
  EXPECT_FALSE(
      reasm.push(frag_header(2, 8191, false, 100), util::Bytes(100, 0xCC))
          .has_value());
  EXPECT_EQ(reasm.pending(), 0u);
}

// A non-final fragment whose size is not a multiple of 8 cannot be followed
// contiguously (RFC 791); accepting one wedged the datagram with a
// permanent hole.
TEST(FuzzRegression, ReassemblerRejectsMisalignedNonFinalFragment) {
  util::VirtualClock clock(0);
  net::Reassembler reasm(clock);
  EXPECT_FALSE(
      reasm.push(frag_header(3, 0, true, 5), util::Bytes(5, 0xDD))
          .has_value());
  EXPECT_EQ(reasm.pending(), 0u);
}

// Unbounded distinct-offset floods grew reassembly memory and the O(n)
// duplicate scan without limit; the cap drops the whole partial datagram.
TEST(FuzzRegression, ReassemblerCapsStoredPieces) {
  util::VirtualClock clock(0);
  net::Reassembler reasm(clock);
  // kMaxPieces distinct 8-byte non-final fragments, never completing.
  for (std::size_t i = 0; i < net::Reassembler::kMaxPieces; ++i) {
    ASSERT_FALSE(reasm
                     .push(frag_header(4, static_cast<std::uint16_t>(i), true,
                                       8),
                           util::Bytes(8, 0xEE))
                     .has_value());
  }
  EXPECT_EQ(reasm.pending(), 1u);
  // One more distinct piece trips the cap and erases the partial datagram.
  EXPECT_FALSE(reasm
                   .push(frag_header(4, net::Reassembler::kMaxPieces, true, 8),
                         util::Bytes(8, 0xEE))
                   .has_value());
  EXPECT_EQ(reasm.pending(), 0u);
}

// --- UDP / TCP / ICMP ----------------------------------------------------

// A >65527-byte payload used to wrap the 16-bit UDP length field and go out
// with a checksum no receiver could match.
TEST(FuzzRegression, UdpSendRefusesOversizedPayload) {
  util::VirtualClock clock(util::minutes(1));
  net::SimNetwork net(clock, 5);
  net::IpStack stack(net, clock, kSrc);
  net::UdpService udp(stack);
  EXPECT_FALSE(udp.send(kDst, 1, 2, util::Bytes(0x10000, 0)));
  EXPECT_TRUE(udp.send(kDst, 1, 2, util::Bytes(16, 0)));
}

// Flag bits and header fields TcpHeader cannot carry were silently dropped,
// so parse() accepted wires serialize() could never reproduce.
TEST(FuzzRegression, TcpRejectsUnrepresentableFlagBitsAndUrgentPointer) {
  net::TcpHeader t;
  t.source_port = 1;
  t.destination_port = 2;
  t.syn = true;
  const util::Bytes wire = t.serialize(kSrc, kDst, util::Bytes{});
  ASSERT_TRUE(net::TcpHeader::parse(kSrc, kDst, wire).has_value());

  const auto refix = [&](util::Bytes w) {
    // Recompute the pseudo-header checksum after the tamper.
    w[16] = w[17] = 0;
    util::ByteWriter ph(12);
    ph.u32(kSrc.value);
    ph.u32(kDst.value);
    ph.u8(0);
    ph.u8(6);
    ph.u16(static_cast<std::uint16_t>(w.size()));
    net::ChecksumAccumulator acc;
    acc.add(ph.view());
    acc.add(w);
    const std::uint16_t csum = acc.finish();
    w[16] = static_cast<std::uint8_t>(csum >> 8);
    w[17] = static_cast<std::uint8_t>(csum);
    return w;
  };

  for (const std::uint16_t bit : {0x0200, 0x0100, 0x0020, 0x0008}) {
    util::Bytes bad = wire;
    bad[12] |= static_cast<std::uint8_t>(bit >> 8);
    bad[13] |= static_cast<std::uint8_t>(bit);
    EXPECT_FALSE(net::TcpHeader::parse(kSrc, kDst, refix(bad)).has_value())
        << std::hex << bit;
  }
  util::Bytes urgent = wire;
  urgent[19] = 7;  // nonzero urgent pointer, URG clear
  EXPECT_FALSE(net::TcpHeader::parse(kSrc, kDst, refix(urgent)).has_value());
}

// RFC 792 echo messages carry code 0; the service used to echo an
// attacker-chosen code back verbatim.
TEST(FuzzRegression, IcmpRejectsNonzeroEchoCode) {
  net::IcmpMessage m;
  m.type = net::IcmpMessage::kEchoRequest;
  m.identifier = 1;
  m.sequence = 2;
  util::Bytes wire = m.serialize();
  ASSERT_TRUE(net::IcmpMessage::parse(wire).has_value());
  wire[1] = 1;  // code
  wire[2] = wire[3] = 0;
  const std::uint16_t csum = net::internet_checksum(wire);
  wire[2] = static_cast<std::uint8_t>(csum >> 8);
  wire[3] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(net::IcmpMessage::parse(wire).has_value());
}

// --- Certificate / directory wire decode ---------------------------------

TEST(FuzzRegression, CertificateDecodeRejectsOversizedLengthField) {
  // A subject length just past the per-field cap: without the cap this is a
  // 64 KiB+1 allocation demand from a 4-byte input.
  const util::Bytes wire{0x00, 0x01, 0x00, 0x01};
  cert::WireDecodeError err{};
  EXPECT_FALSE(cert::PublicValueCertificate::parse(wire, &err).has_value());
  EXPECT_EQ(err, cert::WireDecodeError::kOversizedField);
}

TEST(FuzzRegression, CertificateDecodeRejectsTrailingBytes) {
  cert::PublicValueCertificate c;
  c.subject = {1};
  c.signature = {2};
  util::Bytes wire = c.serialize();
  ASSERT_TRUE(cert::PublicValueCertificate::parse(wire).has_value());
  wire.push_back(0x00);
  cert::WireDecodeError err{};
  EXPECT_FALSE(cert::PublicValueCertificate::parse(wire, &err).has_value());
  EXPECT_EQ(err, cert::WireDecodeError::kTrailingBytes);
}

TEST(FuzzRegression, DirectoryResponseRejectsUnknownStatus) {
  cert::WireDecodeError err{};
  EXPECT_FALSE(
      cert::DirectoryResponse::parse(util::Bytes{0x02, 0x03}, &err)
          .has_value());
  EXPECT_EQ(err, cert::WireDecodeError::kBadValue);
}

// The directory sits on the unprotected bypass, so every decode rejection
// is a potential attack and must be observable per kind.
TEST(FuzzRegression, DirectoryServiceCountsDecodeRejects) {
  cert::DirectoryService service;
  EXPECT_FALSE(service.serve_wire(util::Bytes{0x01}).has_value());
  EXPECT_FALSE(service.serve_wire(util::Bytes{0x7F, 0, 0, 0, 0}).has_value());
  EXPECT_FALSE(service.publish_wire(util::Bytes{0x00, 0x01, 0x00, 0x01}));
  EXPECT_EQ(service.decode_rejects(cert::WireDecodeError::kTruncated), 1u);
  EXPECT_EQ(service.decode_rejects(cert::WireDecodeError::kBadValue), 1u);
  EXPECT_EQ(service.decode_rejects(cert::WireDecodeError::kOversizedField),
            1u);

  obs::MetricsRegistry registry;
  service.register_metrics(registry, "dir");
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("dir.decode_rejects.truncated"), 1u);
  EXPECT_EQ(snap.counters.at("dir.decode_rejects.bad-value"), 1u);
  EXPECT_EQ(snap.counters.at("dir.decode_rejects.oversized-field"), 1u);
  EXPECT_EQ(snap.counters.at("dir.decode_rejects.trailing-bytes"), 0u);
}

// A delegation whose embedded RSA key carries trailing bytes is forged or
// corrupted; the chain walker used to accept it.
TEST(FuzzRegression, DelegationKeyWithTrailingBytesFailsChainVerify) {
  testing::TestWorld world(7);
  cert::CertificateAuthority child(512, world.rng);
  const auto name = util::to_bytes("child-ca");
  const auto t0 = world.clock.now() - util::minutes(1);
  const auto t1 = world.clock.now() + util::minutes(1000);

  cert::CertificateChain chain;
  chain.leaf = child.issue(util::to_bytes("leaf"), "g", util::Bytes(8, 1),
                           t0, t1);
  chain.delegations = {world.ca.delegate(child, name, t0, t1)};
  ASSERT_EQ(cert::verify_chain(world.ca.public_key(), chain,
                               world.clock.now()),
            cert::CertStatus::kValid);

  // Re-issue the delegation over a padded key blob: the signature is
  // genuine (the root signed the padded bytes), only the key encoding is
  // non-canonical -- exactly what a decoder must not wave through.
  util::Bytes padded_key = child.public_key_bytes();
  padded_key.push_back(0x00);
  chain.delegations = {world.ca.issue(name, "rsa-ca-delegation", padded_key,
                                      t0, t1)};
  EXPECT_EQ(cert::verify_chain(world.ca.public_key(), chain,
                               world.clock.now()),
            cert::CertStatus::kBadSignature);
}

// --- Engine receive path -------------------------------------------------

// The NOP suite's "MAC" is sixteen public zero bytes. Honoring a
// wire-chosen kNull suite let anyone forge datagrams; only endpoints
// explicitly configured for NOP measurement may accept it.
TEST(FuzzRegression, EngineRejectsNullMacForgery) {
  testing::TestWorld world(11);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  core::FbsEndpoint sender(a.principal, core::FbsConfig{}, *a.keys,
                           world.clock, world.rng);
  core::FbsEndpoint receiver(b.principal, core::FbsConfig{}, *b.keys,
                             world.clock, world.rng);

  core::Datagram d;
  d.source = a.principal;
  d.destination = b.principal;
  d.attrs.protocol = 17;
  d.body = util::to_bytes("over the wire");
  const auto wire = sender.protect(d, false);
  ASSERT_TRUE(wire.has_value());

  // Forge: claim the NOP suite and present its constant all-zero tag.
  util::Bytes forged = *wire;
  forged[1] = 0x50;  // mac = kNull, cipher = kNone
  forged[0] &= 0xF0;  // clear the secret bit to match cipher kNone
  for (std::size_t i = 0; i < 16; ++i)
    forged[core::FbsHeader::kFixedSize + i] = 0;

  const auto outcome = receiver.unprotect(a.principal, forged);
  ASSERT_TRUE(std::holds_alternative<core::ReceiveError>(outcome));
  EXPECT_EQ(std::get<core::ReceiveError>(outcome),
            core::ReceiveError::kMalformed);
  EXPECT_EQ(receiver.receive_stats().rejected_malformed, 1u);

  // The genuine wire still authenticates.
  EXPECT_TRUE(std::holds_alternative<core::ReceivedDatagram>(
      receiver.unprotect(a.principal, *wire)));
}

// Found by the engine fuzz target (corpus: engine/
// reject-cipher-nibble-rewrite.hex): on a non-secret datagram the cipher
// nibble of the suite byte drove no computation at all -- not the MAC, not
// a decrypt -- so an on-path attacker could rewrite it and the receiver
// accepted a wire the sender never emitted. The MAC now covers the flags
// and suite bytes, so any suite rewrite dies as a MAC mismatch.
TEST(FuzzRegression, EngineRejectsCipherNibbleRewriteOnPlaintextDatagram) {
  testing::TestWorld world(12);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  core::FbsEndpoint sender(a.principal, core::FbsConfig{}, *a.keys,
                           world.clock, world.rng);
  core::FbsEndpoint receiver(b.principal, core::FbsConfig{}, *b.keys,
                             world.clock, world.rng);

  core::Datagram d;
  d.source = a.principal;
  d.destination = b.principal;
  d.attrs.protocol = 17;
  d.body = util::to_bytes("plaintext but authentic");
  const auto wire = sender.protect(d, false);
  ASSERT_TRUE(wire.has_value());

  util::Bytes tampered = *wire;
  tampered[1] ^= 0x05;  // cipher DES-CBC -> DES-OFB; unused when !secret

  const auto outcome = receiver.unprotect(a.principal, tampered);
  ASSERT_TRUE(std::holds_alternative<core::ReceiveError>(outcome));
  EXPECT_EQ(std::get<core::ReceiveError>(outcome),
            core::ReceiveError::kBadMac);

  // The genuine wire still authenticates.
  EXPECT_TRUE(std::holds_alternative<core::ReceivedDatagram>(
      receiver.unprotect(a.principal, *wire)));
}

}  // namespace
}  // namespace fbs
