// Runs every fuzz target under the deterministic driver: replay the
// checked-in regression corpus first, then a budget of seeded mutants.
// FBS_FUZZ_ITERS overrides the per-target budget (tools/check.sh
// --fuzz-smoke raises it under ASan/UBSan).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/driver.hpp"
#include "fuzz/targets.hpp"

namespace fbs::fuzz {
namespace {

std::uint64_t iteration_budget(const std::string& name) {
  if (const char* env = std::getenv("FBS_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  // The engine target pays real crypto per execution; everything else is a
  // bare codec and can afford a larger default budget.
  return name == "engine" ? 300 : 1500;
}

class FuzzDriver : public ::testing::TestWithParam<const FuzzTarget*> {};

TEST_P(FuzzDriver, CorpusReplaysAndDriverBudgetRunsClean) {
  const FuzzTarget& target = *GetParam();
  const auto corpus =
      load_corpus(std::string(FBS_FUZZ_CORPUS_DIR) + "/" + target.name);
  ASSERT_TRUE(corpus.has_value())
      << "unparseable corpus entry under " << target.name;

  DriverOptions options;
  options.iterations = iteration_budget(target.name);
  options.seed = 0x5EED;
  options.extra_seeds = *corpus;
  const DriverStats stats = run_target(target, options);

  // Replay + mutation budget all executed (an oracle violation would have
  // aborted the process), and the structure-aware seeds ensured the target
  // exercised its accept path, not just its reject paths.
  EXPECT_EQ(stats.executions,
            options.iterations + target.seeds().size() + corpus->size());
  EXPECT_GT(stats.accepted, 0u) << target.name;
}

// Two different driver seeds must explore different inputs but reach the
// same verdicts on the shared seed corpus; mostly this pins determinism:
// same seed -> identical stats, so a corpus-replay failure is reproducible.
TEST_P(FuzzDriver, DeterministicForAFixedSeed) {
  const FuzzTarget& target = *GetParam();
  if (target.name == "engine") {
    GTEST_SKIP() << "stateful world: protect() draws a fresh confounder per "
                    "call, so whether an edit is a no-op varies between runs";
  }
  DriverOptions options;
  options.iterations = 60;
  options.seed = 42;
  const DriverStats a = run_target(target, options);
  const DriverStats b = run_target(target, options);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.pool_size, b.pool_size);
}

std::string target_name(
    const ::testing::TestParamInfo<const FuzzTarget*>& info) {
  return info.param->name;
}

std::vector<const FuzzTarget*> target_pointers() {
  std::vector<const FuzzTarget*> out;
  for (const FuzzTarget& t : all_targets()) out.push_back(&t);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllTargets, FuzzDriver,
                         ::testing::ValuesIn(target_pointers()),
                         target_name);

TEST(FuzzRegistry, FindsEveryTargetByName) {
  for (const FuzzTarget& t : all_targets()) {
    const FuzzTarget* found = find_target(t.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, t.name);
  }
  EXPECT_EQ(find_target("no-such-target"), nullptr);
}

TEST(FuzzCorpus, HexTextParserHandlesCommentsAndWhitespace) {
  const auto bytes = parse_hex_text("# a comment\nde ad\nbe# tail comment\nef");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, (util::Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_FALSE(parse_hex_text("abc").has_value());   // odd digits
  EXPECT_FALSE(parse_hex_text("zz").has_value());    // non-hex
  EXPECT_TRUE(parse_hex_text("").has_value());       // empty entry is legal
}

}  // namespace
}  // namespace fbs::fuzz
