#include "fbs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/stages.hpp"

namespace fbs::obs {
namespace {

TEST(Metrics, CounterHandleIsStableAndMonotonic) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.b.c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create returns the same handle for the same name.
  EXPECT_EQ(&reg.counter("a.b.c"), &c);
  EXPECT_EQ(reg.snapshot().counters.at("a.b.c"), 42u);
}

TEST(Metrics, GaugeKeepsLastWrite) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("occupancy");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("occupancy"), 0.75);
}

TEST(Metrics, LatencyRecorderSummarizesInMicroseconds) {
  MetricsRegistry reg;
  LatencyRecorder& lat = reg.latency("stage.x");
  for (int i = 0; i < 100; ++i) lat.record_ns(1000.0);  // 1us each
  const LatencySummary s = reg.snapshot().latencies.at("stage.x");
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_us, 1.0, 0.2);
  EXPECT_NEAR(s.p50_us, 1.0, 0.35);  // log-bucket resolution
  EXPECT_NEAR(s.max_us, 1.0, 1e-9);
}

TEST(Metrics, PullSourcePublishesAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t raw = 0;  // stands in for an ad-hoc ++field stat
  reg.add_source([&raw](MetricsRegistry::Emitter& emit) {
    emit.counter("adhoc.events", raw);
  });
  EXPECT_EQ(reg.snapshot().counters.at("adhoc.events"), 0u);
  raw = 7;
  EXPECT_EQ(reg.snapshot().counters.at("adhoc.events"), 7u);
}

TEST(Metrics, DeltaSubtractsCountersAndKeepsLaterGauges) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  Gauge& g = reg.gauge("v");
  c.add(10);
  g.set(1.0);
  const MetricsSnapshot before = reg.snapshot();
  c.add(5);
  g.set(2.0);
  const MetricsSnapshot after = reg.snapshot();
  const MetricsSnapshot d = after.delta(before);
  EXPECT_EQ(d.counters.at("n"), 5u);
  EXPECT_DOUBLE_EQ(d.gauges.at("v"), 2.0);
}

TEST(Metrics, DeltaTreatsMissingEarlierNameAsZero) {
  MetricsRegistry reg;
  const MetricsSnapshot before = reg.snapshot();
  reg.counter("late.arrival").add(3);
  const MetricsSnapshot d = reg.snapshot().delta(before);
  EXPECT_EQ(d.counters.at("late.arrival"), 3u);
}

TEST(Metrics, JsonExportIsDeterministicAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("rate").set(0.5);
  reg.latency("lat").record_ns(2000.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.first\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"z.last\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"latencies\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Ordered maps make the export byte-stable across runs.
  EXPECT_EQ(json, reg.snapshot().to_json());
  // Sorted: a.first appears before z.last.
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
}

TEST(Metrics, EmptyRegistrySerializesToValidEmptyObjects) {
  MetricsRegistry reg;
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"latencies\": {}"), std::string::npos);
}

TEST(Stages, DisabledTracerRecordsNothing) {
  StageTracer tracer;
  ASSERT_FALSE(tracer.enabled());
  { auto t = tracer.start(Stage::kSendMac); }
  EXPECT_EQ(tracer.recorder(Stage::kSendMac).count(), 0u);
}

TEST(Stages, EnabledTracerRecordsPerStage) {
  StageTracer tracer;
  tracer.set_enabled(true);
  { auto t = tracer.start(Stage::kSendMac); }
  { auto t = tracer.start(Stage::kSendMac); }
  { auto t = tracer.start(Stage::kRecvParse); }
  EXPECT_EQ(tracer.recorder(Stage::kSendMac).count(), 2u);
  EXPECT_EQ(tracer.recorder(Stage::kRecvParse).count(), 1u);
  EXPECT_EQ(tracer.recorder(Stage::kSendCipher).count(), 0u);
}

TEST(Stages, ExplicitFinishRecordsOnce) {
  StageTracer tracer;
  tracer.set_enabled(true);
  auto t = tracer.start(Stage::kRecvMac);
  t.finish();
  t.finish();  // idempotent
  EXPECT_EQ(tracer.recorder(Stage::kRecvMac).count(), 1u);
}

TEST(Stages, RegisterMetricsPublishesOnlySampledStages) {
  StageTracer tracer;
  tracer.set_enabled(true);
  { auto t = tracer.start(Stage::kSendMac); }
  MetricsRegistry reg;
  tracer.register_metrics(reg, "ep");
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.latencies.count("ep.stage.send.mac"), 1u);
  EXPECT_EQ(snap.latencies.count("ep.stage.send.cipher"), 0u);
}

TEST(Stages, EveryStageHasAName) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    EXPECT_STRNE(to_string(stage), "unknown");
    EXPECT_EQ(stage_metric_name(stage).rfind("stage.", 0), 0u);
  }
}

}  // namespace
}  // namespace fbs::obs
