// End-to-end check of the metrics adapters: every layer of the stack
// registers into one registry and a single snapshot carries the cache 3C
// taxonomy, per-kind receive rejections, keying counters, and per-stage
// latency quantiles -- the acceptance shape of the observability layer.
#include "fbs/metrics.hpp"

#include <gtest/gtest.h>

#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram make_datagram(const Principal& src, const Principal& dst,
                       const std::string& body) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 6;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = 1000;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 23;
  d.body = util::to_bytes(body);
  return d;
}

TEST(RegistryIntegration, OneSnapshotCoversEveryLayer) {
  TestWorld world(7777);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig cfg;
  cfg.trace_stages = true;
  FbsEndpoint alice(a.principal, cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint bob(b.principal, cfg, *b.keys, world.clock, world.rng);

  obs::MetricsRegistry reg;
  alice.register_metrics(reg, "a");
  bob.register_metrics(reg, "b");
  a.keys->register_metrics(reg, "a");
  b.keys->register_metrics(reg, "b");
  a.mkd->register_metrics(reg, "a");
  world.directory.register_metrics(reg, "dir");

  for (int i = 0; i < 5; ++i) {
    const auto wire =
        alice.protect(make_datagram(a.principal, b.principal, "ping"), true);
    ASSERT_TRUE(wire.has_value());
    auto outcome = bob.unprotect(a.principal, *wire);
    ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  }
  // One tampered datagram exercises a reject path.
  auto wire =
      alice.protect(make_datagram(a.principal, b.principal, "pong"), false);
  ASSERT_TRUE(wire.has_value());
  wire->back() ^= 0xFF;
  (void)bob.unprotect(a.principal, *wire);

  const obs::MetricsSnapshot snap = reg.snapshot();

  // Send/receive counters.
  EXPECT_EQ(snap.counters.at("a.send.datagrams"), 6u);
  EXPECT_EQ(snap.counters.at("a.send.encrypted"), 5u);
  EXPECT_EQ(snap.counters.at("b.recv.accepted"), 5u);
  EXPECT_EQ(snap.counters.at("b.recv.rejected.bad-mac"), 1u);
  // Cache 3C taxonomy present for both flow-key caches.
  EXPECT_TRUE(snap.counters.count("a.cache.tfkc.misses.cold"));
  EXPECT_TRUE(snap.counters.count("b.cache.rfkc.misses.collision"));
  EXPECT_GE(snap.counters.at("b.cache.rfkc.hits"), 1u);
  // Keying layer: MKC + MKD + PVC + directory.
  EXPECT_GE(snap.counters.at("a.upcalls"), 1u);
  EXPECT_GE(snap.counters.at("a.mkd.master_keys_computed"), 1u);
  EXPECT_TRUE(snap.counters.count("a.cache.mkc.hits"));
  EXPECT_TRUE(snap.counters.count("a.cache.pvc.hits"));
  EXPECT_GE(snap.counters.at("dir.fetches"), 1u);
  // Freshness and stage latencies. The five secret datagrams take the
  // fused decrypt+MAC pass on receive; only the tampered plaintext one
  // exercises the standalone MAC stage.
  EXPECT_EQ(snap.counters.at("b.freshness.fresh"), 6u);
  ASSERT_TRUE(snap.latencies.count("b.stage.recv.fused"));
  EXPECT_EQ(snap.latencies.at("b.stage.recv.fused").count, 5u);
  ASSERT_TRUE(snap.latencies.count("b.stage.recv.mac"));
  EXPECT_EQ(snap.latencies.at("b.stage.recv.mac").count, 1u);
  ASSERT_TRUE(snap.latencies.count("a.stage.send.fused"));
  EXPECT_EQ(snap.latencies.at("a.stage.send.fused").count, 5u);

  // The JSON export carries the same names.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("b.recv.rejected.bad-mac"), std::string::npos);
  EXPECT_NE(json.find("a.cache.tfkc.misses.cold"), std::string::npos);
  EXPECT_NE(json.find("b.stage.recv.mac"), std::string::npos);
}

TEST(RegistryIntegration, TracingOffByDefaultKeepsStagesSilent) {
  TestWorld world(8888);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint alice(a.principal, FbsConfig{}, *a.keys, world.clock,
                    world.rng);
  obs::MetricsRegistry reg;
  alice.register_metrics(reg, "a");
  const auto wire =
      alice.protect(make_datagram(a.principal, b.principal, "x"), false);
  ASSERT_TRUE(wire.has_value());
  EXPECT_TRUE(reg.snapshot().latencies.empty());
}

}  // namespace
}  // namespace fbs::core
