// Robustness sweeps: random and mutated inputs into every wire parser and
// into FBSReceive. Nothing may crash, and nothing not produced by a keyed
// protect() may ever be accepted.
#include <gtest/gtest.h>

#include "fbs/engine.hpp"
#include "net/headers.hpp"
#include "net/icmp.hpp"
#include "net/ip.hpp"
#include "support/world.hpp"

namespace fbs {
namespace {

using testing::TestWorld;

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, RandomBytesNeverParseAsAccepted) {
  util::SplitMix64 rng(GetParam());
  TestWorld world(GetParam());
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  core::FbsEndpoint receiver(b.principal, core::FbsConfig{}, *b.keys,
                             world.clock, world.rng);

  for (int i = 0; i < 200; ++i) {
    const util::Bytes junk = rng.next_bytes(rng.next_below(200));
    auto outcome = receiver.unprotect(a.principal, junk);
    // Random bytes must never authenticate (a forged MAC is a 2^-128 event).
    EXPECT_TRUE(std::holds_alternative<core::ReceiveError>(outcome));
  }
}

TEST_P(FuzzSeed, MutatedGenuineWireNeverYieldsWrongBody) {
  util::SplitMix64 rng(GetParam() ^ 0xF00D);
  TestWorld world(GetParam() + 1);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  core::FbsEndpoint sender(a.principal, core::FbsConfig{}, *a.keys,
                           world.clock, world.rng);
  core::FbsEndpoint receiver(b.principal, core::FbsConfig{}, *b.keys,
                             world.clock, world.rng);

  core::Datagram d;
  d.source = a.principal;
  d.destination = b.principal;
  d.attrs.protocol = 17;
  d.attrs.source_port = 5;
  d.attrs.destination_port = 6;
  d.body = rng.next_bytes(64);
  const auto wire = sender.protect(d, true);
  ASSERT_TRUE(wire.has_value());

  for (int i = 0; i < 300; ++i) {
    util::Bytes mutated = *wire;
    // 1-4 random byte mutations anywhere.
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m)
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    // Random truncation sometimes.
    if (rng.next_below(4) == 0)
      mutated.resize(rng.next_below(mutated.size() + 1));

    auto outcome = receiver.unprotect(a.principal, mutated);
    if (auto* got = std::get_if<core::ReceivedDatagram>(&outcome)) {
      // Only acceptable if the mutation round-tripped to the same bytes
      // (possible when mutations cancel); the body must never differ.
      EXPECT_EQ(got->datagram.body, d.body);
    }
  }
}

TEST_P(FuzzSeed, NetworkParsersDigestGarbage) {
  util::SplitMix64 rng(GetParam() ^ 0xBEEF);
  const auto src = *net::Ipv4Address::parse("1.2.3.4");
  const auto dst = *net::Ipv4Address::parse("5.6.7.8");
  for (int i = 0; i < 500; ++i) {
    const util::Bytes junk = rng.next_bytes(rng.next_below(100));
    // None of these may crash; results are simply optional.
    (void)net::Ipv4Header::parse(junk);
    (void)net::UdpHeader::parse(src, dst, junk);
    (void)net::TcpHeader::parse(src, dst, junk);
    (void)net::IcmpMessage::parse(junk);
    (void)core::FbsHeader::parse(junk);
    (void)net::peek_ports(junk);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1ull, 2ull, 3ull, 42ull, 1997ull));

}  // namespace
}  // namespace fbs
