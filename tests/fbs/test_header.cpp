#include "fbs/header.hpp"

#include <gtest/gtest.h>

namespace fbs::core {
namespace {

FbsHeader sample_header() {
  FbsHeader h;
  h.sfl = 0xDEADBEEFCAFEBABEull;
  h.confounder = 0x12345678;
  h.timestamp_minutes = 987654;
  h.mac = util::Bytes(16, 0xAB);
  h.secret = true;
  return h;
}

TEST(FbsHeader, WireSizeMatchesPaperLayout) {
  // Section 7.2: sfl 64 bits + confounder 32 + timestamp 32 + MAC 128,
  // plus our 2 bytes of flags/algorithm-id.
  const FbsHeader h = sample_header();
  EXPECT_EQ(h.wire_size(), 2u + 8u + 4u + 4u + 16u);
  EXPECT_EQ(h.serialize().size(), h.wire_size());
}

TEST(FbsHeader, SerializeParseRoundTrip) {
  const FbsHeader h = sample_header();
  util::Bytes wire = h.serialize();
  wire.insert(wire.end(), {'b', 'o', 'd', 'y'});
  const auto parsed = FbsHeader::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.sfl, h.sfl);
  EXPECT_EQ(parsed->header.confounder, h.confounder);
  EXPECT_EQ(parsed->header.timestamp_minutes, h.timestamp_minutes);
  EXPECT_EQ(parsed->header.mac, h.mac);
  EXPECT_EQ(parsed->header.suite, h.suite);
  EXPECT_TRUE(parsed->header.secret);
  EXPECT_EQ(parsed->body, util::to_bytes("body"));
}

TEST(FbsHeader, SecretFlagRoundTrip) {
  FbsHeader h = sample_header();
  h.secret = false;
  const auto parsed = FbsHeader::parse(h.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->header.secret);
}

TEST(FbsHeader, Sha1SuiteCarriesLongerMac) {
  FbsHeader h = sample_header();
  h.suite.mac = crypto::MacAlgorithm::kHmacSha1;
  h.mac = util::Bytes(20, 0xCD);
  const auto parsed = FbsHeader::parse(h.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.mac.size(), 20u);
  EXPECT_EQ(parsed->header.mac, h.mac);
}

TEST(FbsHeader, EmptyBodyAllowed) {
  const auto parsed = FbsHeader::parse(sample_header().serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(FbsHeader, TruncatedRejected) {
  const util::Bytes wire = sample_header().serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const util::Bytes partial(wire.begin(),
                              wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(FbsHeader::parse(partial).has_value()) << "cut " << cut;
  }
}

TEST(FbsHeader, UnknownSuiteRejected) {
  util::Bytes wire = sample_header().serialize();
  wire[1] = 0xFF;  // invalid algorithm byte
  EXPECT_FALSE(FbsHeader::parse(wire).has_value());
}

TEST(FbsHeader, WrongVersionRejected) {
  util::Bytes wire = sample_header().serialize();
  wire[0] = (wire[0] & 0x0F) | 0x20;  // version 2
  EXPECT_FALSE(FbsHeader::parse(wire).has_value());
}

TEST(FbsHeader, OverheadMatchesSerializedSize) {
  for (auto mac : {crypto::MacAlgorithm::kKeyedMd5,
                   crypto::MacAlgorithm::kHmacSha1}) {
    crypto::AlgorithmSuite suite;
    suite.mac = mac;
    FbsHeader h;
    h.suite = suite;
    h.mac.resize(crypto::mac_size(mac));
    EXPECT_EQ(FbsHeader::overhead(suite), h.serialize().size());
  }
}

}  // namespace
}  // namespace fbs::core
