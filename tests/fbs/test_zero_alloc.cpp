// The tentpole perf claim, enforced: once a flow is warm (key derived,
// crypto context cached, scratch buffers sized), protect_into() and
// unprotect_into() perform ZERO heap allocations per datagram. Global
// operator new/delete are replaced with counting versions; the counters
// must not move across the steady-state calls.
//
// This test gets its own binary: replacing the global allocator is a
// whole-program property and must not be linked into the other suites.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "fbs/engine.hpp"
#include "fbs/pipeline.hpp"
#include "support/world.hpp"

namespace {
// Atomic: the pipelined test counts allocations made on worker threads too.
std::atomic<std::size_t> g_news{0};  // every operator new/new[] call
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram make_datagram(const Principal& src, const Principal& dst,
                       std::size_t body_size) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = 5001;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 5002;
  d.body = util::Bytes(body_size, 0x5A);
  return d;
}

class CountingScope {
 public:
  CountingScope() {
    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountingScope() { g_counting.store(false, std::memory_order_relaxed); }
  std::size_t news() const {
    return g_news.load(std::memory_order_relaxed);
  }
};

void run_steady_state(bool secret, bool combined) {
  TestWorld world(4242);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig cfg;
  cfg.combined_fst_tfkc = combined;
  FbsEndpoint alice(a.principal, cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint bob(b.principal, cfg, *b.keys, world.clock, world.rng);

  const Datagram d = make_datagram(a.principal, b.principal, 1400);
  util::Bytes wire;
  util::Bytes body;

  // Warm-up: derive the flow key, build the per-flow crypto contexts, and
  // size every scratch buffer on both ends.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(alice.protect_into(d, secret, wire));
    const auto outcome = bob.unprotect_into(a.principal, wire, body);
    ASSERT_TRUE(std::holds_alternative<ReceivedInfo>(outcome));
    ASSERT_EQ(body, d.body);
  }

  // Steady state: not a single heap allocation per datagram, either side.
  for (int i = 0; i < 16; ++i) {
    {
      CountingScope scope;
      ASSERT_TRUE(alice.protect_into(d, secret, wire));
      EXPECT_EQ(scope.news(), 0u)
          << "protect_into allocated (secret=" << secret
          << " combined=" << combined << " iteration " << i << ")";
    }
    {
      CountingScope scope;
      const auto outcome = bob.unprotect_into(a.principal, wire, body);
      EXPECT_EQ(scope.news(), 0u)
          << "unprotect_into allocated (secret=" << secret
          << " combined=" << combined << " iteration " << i << ")";
      ASSERT_TRUE(std::holds_alternative<ReceivedInfo>(outcome));
    }
    ASSERT_EQ(body, d.body);
  }
}

TEST(ZeroAlloc, SecretDatagramSteadyStateCombinedPath) {
  run_steady_state(/*secret=*/true, /*combined=*/true);
}

TEST(ZeroAlloc, PlainDatagramSteadyStateCombinedPath) {
  run_steady_state(/*secret=*/false, /*combined=*/true);
}

TEST(ZeroAlloc, PipelinedReceiveSteadyState) {
  // The pipelined path, end to end: submit -> ingress ring -> worker
  // (unprotect with a pooled body, wire recycled to the pool) -> egress ->
  // drain. The caller closes the loop by reusing each delivered body as the
  // next wire staging, so once everything is warm -- flow keys, worker
  // context, ring slots, pool lanes, thread-local principals -- one full
  // datagram cycle performs zero heap allocations on ANY thread.
  TestWorld world(4243);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig cfg;
  cfg.shards = 4;
  FbsEndpoint alice(a.principal, cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint bob(b.principal, cfg, *b.keys, world.clock, world.rng);

  PipelineConfig pc;
  pc.workers = 1;
  pc.batch = 4;
  DatagramPipeline pipe(bob, pc);

  const Datagram d = make_datagram(a.principal, b.principal, 1400);
  net::Ipv4Header header;
  header.protocol = 17;
  header.source = a.principal.ipv4();
  header.destination = b.principal.ipv4();

  util::Bytes wire;
  util::Bytes got;
  // Built once, outside any counting scope: converting a lambda to
  // std::function may allocate, and that cost is per-sink, not per-datagram.
  const DatagramPipeline::Sink sink = [&](const net::Ipv4Header& h,
                                          util::Bytes body) {
    EXPECT_EQ(h.source, a.principal.ipv4());
    got = std::move(body);
  };

  auto cycle = [&] {
    ASSERT_TRUE(alice.protect_into(d, /*secret=*/true, wire));
    ASSERT_TRUE(pipe.submit(header, std::move(wire)));
    pipe.drain_all(sink);
    ASSERT_EQ(got, d.body);
    wire = std::move(got);  // delivered body becomes next wire staging
  };

  // Warm-up: flow key + crypto contexts on both ends, the worker's
  // WorkContext and scratch principal, the submit thread's thread-local
  // principal, and the pool rotation (the first submitted wire is a heap
  // buffer that joins the slab rotation).
  for (int i = 0; i < 8; ++i) cycle();

  for (int i = 0; i < 16; ++i) {
    CountingScope scope;
    cycle();
    EXPECT_EQ(scope.news(), 0u)
        << "pipelined receive allocated (iteration " << i << ")";
  }
  EXPECT_EQ(pipe.buffer_pool().stats().heap_fallbacks, 0u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST(ZeroAlloc, PipelinedBurstReceiveSteadyState) {
  // The cross-datagram bitslice path end to end: one shard, several flows,
  // whole bursts submitted at once, so the worker's ring visit hands
  // unprotect_burst_into a multi-lane group (mixed keys) that decrypts
  // through the 64-wide engine. Steady state must stay allocation-free on
  // every thread -- lane state, batch cursors, burst descriptors and the
  // A2 context re-resolution all live in pre-sized or stack storage.
  constexpr std::size_t kFlows = 8;
  TestWorld world(4244);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig cfg;
  cfg.shards = 1;  // one shard => the burst is one locked group
  FbsEndpoint alice(a.principal, cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint bob(b.principal, cfg, *b.keys, world.clock, world.rng);

  PipelineConfig pc;
  pc.workers = 1;
  pc.batch = kFlows;
  DatagramPipeline pipe(bob, pc);

  std::array<Datagram, kFlows> datagrams;
  for (std::size_t f = 0; f < kFlows; ++f) {
    datagrams[f] = make_datagram(a.principal, b.principal, 1400);
    datagrams[f].attrs.source_port = static_cast<std::uint16_t>(6000 + f);
  }
  net::Ipv4Header header;
  header.protocol = 17;
  header.source = a.principal.ipv4();
  header.destination = b.principal.ipv4();

  std::vector<util::Bytes> wires(kFlows);
  std::vector<util::Bytes> returned;
  returned.reserve(kFlows);
  const DatagramPipeline::Sink sink = [&](const net::Ipv4Header&,
                                          util::Bytes body) {
    returned.push_back(std::move(body));
  };

  auto cycle = [&] {
    for (std::size_t f = 0; f < kFlows; ++f)
      ASSERT_TRUE(alice.protect_into(datagrams[f], /*secret=*/true,
                                     wires[f]));
    ASSERT_EQ(pipe.submit_batch(header, wires), kFlows);
    pipe.drain_all(sink);
    ASSERT_EQ(returned.size(), kFlows);
    for (std::size_t f = 0; f < kFlows; ++f)
      wires[f] = std::move(returned[f]);  // bodies become next wire staging
    returned.clear();
  };

  for (int i = 0; i < 8; ++i) cycle();

  for (int i = 0; i < 16; ++i) {
    CountingScope scope;
    cycle();
    EXPECT_EQ(scope.news(), 0u)
        << "pipelined burst receive allocated (iteration " << i << ")";
  }
  EXPECT_EQ(pipe.buffer_pool().stats().heap_fallbacks, 0u);
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.stats().accepted.load(), 24u * kFlows);
}

TEST(ZeroAlloc, CountersActuallyCount) {
  // Sanity-check the hook itself so a silent linker surprise (the default
  // allocator winning) cannot make the suite pass vacuously.
  CountingScope scope;
  auto* p = new std::uint64_t(7);
  EXPECT_GE(scope.news(), 1u);
  delete p;
}

}  // namespace
}  // namespace fbs::core
