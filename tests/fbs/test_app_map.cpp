// Application-layer mapping: FBS with applications as principals and
// conversations as flows -- the Section 3/4 layer-independence claim made
// executable.
#include "fbs/app_map.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include "crypto/dh.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

/// A host running one or more FBS-speaking applications over plain UDP (no
/// network-layer FBS -- security lives in the application layer here).
struct AppHost {
  net::Ipv4Address address;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<net::UdpService> udp;
};

class AppMapTest : public ::testing::Test {
 protected:
  AppMapTest() : world_(4444), net_(world_.clock, 15) {}

  AppHost make_host(const std::string& ip) {
    AppHost host;
    host.address = *net::Ipv4Address::parse(ip);
    host.stack = std::make_unique<net::IpStack>(net_, world_.clock,
                                                host.address);
    host.udp = std::make_unique<net::UdpService>(*host.stack);
    return host;
  }

  /// Enroll an *application* principal: its own DH keypair + certificate.
  struct AppIdentity {
    std::unique_ptr<MasterKeyDaemon> mkd;
    std::unique_ptr<KeyManager> keys;
  };
  AppIdentity enroll_app(net::Ipv4Address host, std::uint16_t app_port) {
    const Principal principal = app_principal(host, app_port);
    const auto& group = crypto::test_group();
    const crypto::DhKeyPair dh = crypto::dh_generate(group, world_.rng);
    world_.directory.publish(world_.ca.issue(
        principal.address, group.name,
        dh.public_value.to_bytes_be(group.element_size()), 0,
        world_.clock.now() + util::minutes(1000000)));
    AppIdentity id;
    id.mkd = std::make_unique<MasterKeyDaemon>(principal, dh.private_value,
                                               group, world_.ca,
                                               world_.directory, world_.clock);
    id.keys = std::make_unique<KeyManager>(*id.mkd);
    return id;
  }

  TestWorld world_;
  net::SimNetwork net_;
};

TEST_F(AppMapTest, ConversationRoundTrip) {
  AppHost ha = make_host("10.0.0.1");
  AppHost hb = make_host("10.0.0.2");
  auto ida = enroll_app(ha.address, 700);
  auto idb = enroll_app(hb.address, 700);
  AppEndpoint a(*ha.udp, ha.address, 700, *ida.keys, world_.clock, world_.rng);
  AppEndpoint b(*hb.udp, hb.address, 700, *idb.keys, world_.clock, world_.rng);

  std::uint64_t got_conversation = 0;
  std::string got_data;
  Principal got_from;
  b.on_message([&](const Principal& from, std::uint64_t conversation,
                   util::BytesView data) {
    got_from = from;
    got_conversation = conversation;
    got_data = util::to_string(data);
  });
  EXPECT_TRUE(a.send(hb.address, 700, /*conversation=*/42,
                     util::to_bytes("whiteboard stroke")));
  net_.run();
  EXPECT_EQ(got_conversation, 42u);
  EXPECT_EQ(got_data, "whiteboard stroke");
  EXPECT_EQ(got_from, a.self());
}

TEST_F(AppMapTest, ConversationsAreSeparateFlows) {
  AppHost ha = make_host("10.0.0.1");
  AppHost hb = make_host("10.0.0.2");
  auto ida = enroll_app(ha.address, 700);
  auto idb = enroll_app(hb.address, 700);
  AppEndpoint a(*ha.udp, ha.address, 700, *ida.keys, world_.clock, world_.rng);
  AppEndpoint b(*hb.udp, hb.address, 700, *idb.keys, world_.clock, world_.rng);
  b.on_message([](const Principal&, std::uint64_t, util::BytesView) {});

  // Video / audio / whiteboard of one session as distinct conversations
  // (the Section 4 application-layer example).
  for (std::uint64_t conversation : {1u, 2u, 3u}) {
    for (int i = 0; i < 5; ++i)
      a.send(hb.address, 700, conversation, util::to_bytes("frame"));
  }
  net_.run();
  EXPECT_EQ(b.counters().received, 15u);
  // Three conversations -> three flows -> three key derivations.
  EXPECT_EQ(a.fbs().send_stats().flow_keys_derived, 3u);
}

TEST_F(AppMapTest, TwoAppsOnOneHostHaveDistinctMasterKeys) {
  // The granularity the paper wants and IP-level host-pair keying cannot
  // give: two applications on the same host are different principals.
  AppHost ha = make_host("10.0.0.1");
  AppHost hb = make_host("10.0.0.2");
  auto app1 = enroll_app(ha.address, 701);
  auto app2 = enroll_app(ha.address, 702);
  auto peer = enroll_app(hb.address, 700);

  const Principal peer_principal = app_principal(hb.address, 700);
  const auto k1 = app1.keys->master_key(peer_principal);
  const auto k2 = app2.keys->master_key(peer_principal);
  ASSERT_TRUE(k1 && k2);
  EXPECT_NE(*k1, *k2);  // compromising app1 reveals nothing about app2
}

TEST_F(AppMapTest, CrossConversationSpliceRejected) {
  AppHost ha = make_host("10.0.0.1");
  AppHost hb = make_host("10.0.0.2");
  auto ida = enroll_app(ha.address, 700);
  auto idb = enroll_app(hb.address, 700);
  AppEndpoint a(*ha.udp, ha.address, 700, *ida.keys, world_.clock, world_.rng);
  AppEndpoint b(*hb.udp, hb.address, 700, *idb.keys, world_.clock, world_.rng);

  int received = 0;
  std::uint64_t last_conversation = 0;
  b.on_message([&](const Principal&, std::uint64_t conversation,
                   util::BytesView) {
    ++received;
    last_conversation = conversation;
  });

  // Capture conversation-1 wire traffic, try to replay it into the flow of
  // conversation 2 by rewriting the sfl. The conversation id is inside the
  // protected body, so the header sfl and body id cannot be split apart.
  util::Bytes captured;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& f) {
    captured = f;
    return net::SimNetwork::TapVerdict::kPass;
  });
  a.send(hb.address, 700, 1, util::to_bytes("conversation one"));
  net_.run();
  ASSERT_EQ(received, 1);

  // Tamper with the captured frame's FBS sfl field (inside UDP payload).
  auto parsed_ip = net::Ipv4Header::parse(captured);
  ASSERT_TRUE(parsed_ip.has_value());
  util::Bytes udp_payload = parsed_ip->payload;
  udp_payload[net::UdpHeader::kSize + 2] ^= 0x01;  // sfl first byte
  // Rebuild UDP checksum by reserializing through the header codec.
  auto parsed_udp = net::UdpHeader::parse(parsed_ip->header.source,
                                          parsed_ip->header.destination,
                                          parsed_ip->payload);
  ASSERT_TRUE(parsed_udp.has_value());
  util::Bytes tampered_fbs = parsed_udp->payload;
  tampered_fbs[2] ^= 0x01;
  const util::Bytes new_udp = parsed_udp->header.serialize(
      parsed_ip->header.source, parsed_ip->header.destination, tampered_fbs);
  net_.inject(hb.address,
              parsed_ip->header.serialize(new_udp));
  net_.run();
  EXPECT_EQ(received, 1);  // splice rejected
  EXPECT_EQ(b.counters().rejected, 1u);
}

TEST_F(AppMapTest, UnenrolledApplicationCannotSend) {
  AppHost ha = make_host("10.0.0.1");
  AppHost hb = make_host("10.0.0.2");
  auto ida = enroll_app(ha.address, 700);
  AppEndpoint a(*ha.udp, ha.address, 700, *ida.keys, world_.clock, world_.rng);
  // Peer application 999 was never enrolled: no certificate, no key.
  EXPECT_FALSE(a.send(hb.address, 999, 1, util::to_bytes("void")));
}

}  // namespace
}  // namespace fbs::core
