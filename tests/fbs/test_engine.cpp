#include "fbs/engine.hpp"

#include <gtest/gtest.h>

#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram datagram(const Principal& src, const Principal& dst,
                  const std::string& body, std::uint16_t sport = 1000,
                  std::uint16_t dport = 23) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 6;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = dport;
  d.body = util::to_bytes(body);
  return d;
}

bool contains(const util::Bytes& haystack, const util::Bytes& needle) {
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : world_(303) {
    auto& a = world_.add_node("alice", "10.0.0.1");
    auto& b = world_.add_node("bob", "10.0.0.2");
    alice_ = std::make_unique<FbsEndpoint>(a.principal, config_, *a.keys,
                                           world_.clock, world_.rng);
    bob_ = std::make_unique<FbsEndpoint>(b.principal, config_, *b.keys,
                                         world_.clock, world_.rng);
  }

  ReceivedDatagram expect_accept(FbsEndpoint& receiver, const Principal& from,
                                 const util::Bytes& wire) {
    auto outcome = receiver.unprotect(from, wire);
    EXPECT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome))
        << (std::holds_alternative<ReceiveError>(outcome)
                ? to_string(std::get<ReceiveError>(outcome))
                : "");
    return std::get<ReceivedDatagram>(std::move(outcome));
  }

  ReceiveError expect_reject(FbsEndpoint& receiver, const Principal& from,
                             const util::Bytes& wire) {
    auto outcome = receiver.unprotect(from, wire);
    EXPECT_TRUE(std::holds_alternative<ReceiveError>(outcome));
    return std::get<ReceiveError>(outcome);
  }

  FbsConfig config_;
  TestWorld world_;
  std::unique_ptr<FbsEndpoint> alice_;
  std::unique_ptr<FbsEndpoint> bob_;
};

TEST_F(EngineTest, PlainRoundTrip) {
  const Datagram d =
      datagram(alice_->self(), bob_->self(), "authenticated only");
  const auto wire = alice_->protect(d, /*secret=*/false);
  ASSERT_TRUE(wire.has_value());
  const auto got = expect_accept(*bob_, alice_->self(), *wire);
  EXPECT_EQ(got.datagram.body, d.body);
  EXPECT_FALSE(got.was_secret);
}

TEST_F(EngineTest, SecretRoundTrip) {
  const Datagram d = datagram(alice_->self(), bob_->self(), "top secret");
  const auto wire = alice_->protect(d, true);
  ASSERT_TRUE(wire.has_value());
  EXPECT_FALSE(contains(*wire, d.body));  // plaintext not on the wire
  const auto got = expect_accept(*bob_, alice_->self(), *wire);
  EXPECT_EQ(got.datagram.body, d.body);
  EXPECT_TRUE(got.was_secret);
}

TEST_F(EngineTest, PlainModeLeavesBodyVisible) {
  const Datagram d = datagram(alice_->self(), bob_->self(), "readable body");
  const auto wire = alice_->protect(d, false);
  EXPECT_TRUE(contains(*wire, d.body));
}

TEST_F(EngineTest, SameFlowSameSflKeyDerivedOnce) {
  for (int i = 0; i < 20; ++i) {
    const auto wire = alice_->protect(
        datagram(alice_->self(), bob_->self(), "pkt"), true);
    ASSERT_TRUE(wire.has_value());
    (void)expect_accept(*bob_, alice_->self(), *wire);
  }
  EXPECT_EQ(alice_->send_stats().flow_keys_derived, 1u);
  EXPECT_EQ(bob_->receive_stats().flow_keys_derived, 1u);
  EXPECT_EQ(bob_->receive_stats().accepted, 20u);
}

TEST_F(EngineTest, DifferentTuplesDifferentSfls) {
  const auto w1 = alice_->protect(
      datagram(alice_->self(), bob_->self(), "a", 1000, 23), false);
  const auto w2 = alice_->protect(
      datagram(alice_->self(), bob_->self(), "b", 2000, 80), false);
  const auto r1 = expect_accept(*bob_, alice_->self(), *w1);
  const auto r2 = expect_accept(*bob_, alice_->self(), *w2);
  EXPECT_NE(r1.sfl, r2.sfl);
}

TEST_F(EngineTest, ConfounderVariesBetweenDatagrams) {
  const Datagram d = datagram(alice_->self(), bob_->self(), "same body");
  const auto w1 = alice_->protect(d, true);
  const auto w2 = alice_->protect(d, true);
  // Identical plaintext in the same flow must not repeat on the wire
  // (Section 5.2's confounder rationale).
  EXPECT_NE(*w1, *w2);
  const auto p1 = FbsHeader::parse(*w1);
  const auto p2 = FbsHeader::parse(*w2);
  EXPECT_NE(p1->header.confounder, p2->header.confounder);
  EXPECT_EQ(p1->header.sfl, p2->header.sfl);
}

TEST_F(EngineTest, TamperedWireNeverAccepted) {
  const Datagram d = datagram(alice_->self(), bob_->self(),
                              "integrity protected payload");
  const auto wire = alice_->protect(d, true);
  ASSERT_TRUE(wire.has_value());
  // Flip one bit at every byte position; nothing may be accepted as `d`.
  for (std::size_t pos = 0; pos < wire->size(); ++pos) {
    util::Bytes bad = *wire;
    bad[pos] ^= 0x01;
    auto outcome = bob_->unprotect(alice_->self(), bad);
    if (auto* got = std::get_if<ReceivedDatagram>(&outcome)) {
      // A flipped secret-bit or suite change must not reproduce the body.
      EXPECT_NE(got->datagram.body, d.body) << "pos " << pos;
    }
  }
}

TEST_F(EngineTest, TamperedBodyIsBadMac) {
  const auto wire = alice_->protect(
      datagram(alice_->self(), bob_->self(), "payload-payload"), false);
  util::Bytes bad = *wire;
  bad.back() ^= 0xFF;  // body byte (plain mode)
  EXPECT_EQ(expect_reject(*bob_, alice_->self(), bad), ReceiveError::kBadMac);
  EXPECT_EQ(bob_->receive_stats().rejected_bad_mac, 1u);
}

TEST_F(EngineTest, TruncatedWireMalformed) {
  const auto wire = alice_->protect(
      datagram(alice_->self(), bob_->self(), "x"), false);
  const util::Bytes cut(wire->begin(), wire->begin() + 5);
  EXPECT_EQ(expect_reject(*bob_, alice_->self(), cut),
            ReceiveError::kMalformed);
}

TEST_F(EngineTest, StaleTimestampRejected) {
  const auto wire = alice_->protect(
      datagram(alice_->self(), bob_->self(), "old"), false);
  world_.clock.advance(util::minutes(config_.freshness_window_minutes + 2));
  EXPECT_EQ(expect_reject(*bob_, alice_->self(), *wire),
            ReceiveError::kStale);
  EXPECT_EQ(bob_->receive_stats().rejected_stale, 1u);
}

TEST_F(EngineTest, WithinWindowReplayAcceptedByDefault) {
  // Paper behaviour (Section 6.2): replays inside the freshness window
  // succeed; higher layers must handle duplication.
  const auto wire = alice_->protect(
      datagram(alice_->self(), bob_->self(), "dup"), false);
  (void)expect_accept(*bob_, alice_->self(), *wire);
  (void)expect_accept(*bob_, alice_->self(), *wire);
  EXPECT_EQ(bob_->receive_stats().accepted, 2u);
}

TEST_F(EngineTest, StrictReplayExtensionRejectsSecondCopy) {
  FbsConfig strict = config_;
  strict.strict_replay = true;
  auto& b = world_["bob"];
  FbsEndpoint strict_bob(b.principal, strict, *b.keys, world_.clock,
                         world_.rng);
  const auto wire = alice_->protect(
      datagram(alice_->self(), strict_bob.self(), "once"), false);
  (void)expect_accept(strict_bob, alice_->self(), *wire);
  EXPECT_EQ(expect_reject(strict_bob, alice_->self(), *wire),
            ReceiveError::kReplay);
}

TEST_F(EngineTest, StrictReplayCacheNotPoisonedByForgedBody) {
  // Regression: an on-path attacker captures a datagram, corrupts the body,
  // and delivers the forgery *before* the genuine copy. The forgery still
  // carries the genuine (timestamp, MAC) pair; if the receiver recorded it
  // before MAC verification, the genuine datagram would then be rejected as
  // a replay -- a denial of service with no key material.
  FbsConfig strict = config_;
  strict.strict_replay = true;
  auto& b = world_["bob"];
  FbsEndpoint strict_bob(b.principal, strict, *b.keys, world_.clock,
                         world_.rng);
  const auto wire = alice_->protect(
      datagram(alice_->self(), strict_bob.self(), "genuine payload"), false);
  ASSERT_TRUE(wire.has_value());

  util::Bytes forged = *wire;
  forged.back() ^= 0x01;  // corrupt one body byte; header and MAC intact
  EXPECT_EQ(expect_reject(strict_bob, alice_->self(), forged),
            ReceiveError::kBadMac);

  // The genuine datagram must still be accepted...
  (void)expect_accept(strict_bob, alice_->self(), *wire);
  // ...and only now does its MAC enter the replay cache.
  EXPECT_EQ(expect_reject(strict_bob, alice_->self(), *wire),
            ReceiveError::kReplay);
}

TEST_F(EngineTest, UnknownSourceRejected) {
  const auto wire = alice_->protect(
      datagram(alice_->self(), bob_->self(), "hi"), false);
  const Principal stranger =
      Principal::from_ipv4(*net::Ipv4Address::parse("172.16.0.1"));
  EXPECT_EQ(expect_reject(*bob_, stranger, *wire),
            ReceiveError::kUnknownPeer);
}

TEST_F(EngineTest, MisattributedSourceFailsMac) {
  // Carol is known but did not send this datagram: her pair key yields a
  // different flow key, so the MAC cannot verify.
  auto& carol = world_.add_node("carol", "10.0.0.3");
  const auto wire = alice_->protect(
      datagram(alice_->self(), bob_->self(), "hi"), false);
  EXPECT_EQ(expect_reject(*bob_, carol.principal, *wire),
            ReceiveError::kBadMac);
}

TEST_F(EngineTest, ProtectFailsClosedWithoutPeerKey) {
  const Principal stranger =
      Principal::from_ipv4(*net::Ipv4Address::parse("172.16.0.9"));
  Datagram d = datagram(alice_->self(), stranger, "void");
  d.attrs.destination_address = stranger.ipv4().value;
  EXPECT_FALSE(alice_->protect(d, true).has_value());
  EXPECT_EQ(alice_->send_stats().key_unavailable, 1u);
}

TEST_F(EngineTest, RekeyChangesSflAndStillDelivers) {
  const Datagram d = datagram(alice_->self(), bob_->self(), "before");
  const auto w1 = alice_->protect(d, true);
  const auto r1 = expect_accept(*bob_, alice_->self(), *w1);
  alice_->rekey(d.attrs);
  const auto w2 = alice_->protect(d, true);
  const auto r2 = expect_accept(*bob_, alice_->self(), *w2);
  EXPECT_NE(r1.sfl, r2.sfl);
  EXPECT_EQ(r2.datagram.body, d.body);
}

TEST_F(EngineTest, FlowThresholdExpiryStartsNewFlow) {
  const Datagram d = datagram(alice_->self(), bob_->self(), "gap");
  const auto w1 = alice_->protect(d, false);
  const auto r1 = expect_accept(*bob_, alice_->self(), *w1);
  world_.clock.advance(config_.flow_threshold + util::seconds(1));
  const auto w2 = alice_->protect(d, false);
  const auto r2 = expect_accept(*bob_, alice_->self(), *w2);
  EXPECT_NE(r1.sfl, r2.sfl);
  EXPECT_EQ(alice_->send_stats().flow_keys_derived, 2u);
}

TEST_F(EngineTest, SplitModeMatchesCombinedBehaviour) {
  FbsConfig split = config_;
  split.combined_fst_tfkc = false;
  auto& a = world_["alice"];
  FbsEndpoint split_alice(a.principal, split, *a.keys, world_.clock,
                          world_.rng);
  const Datagram d = datagram(split_alice.self(), bob_->self(), "split mode");
  Sfl sfl = 0;
  for (int i = 0; i < 5; ++i) {
    const auto wire = split_alice.protect(d, true);
    ASSERT_TRUE(wire.has_value());
    const auto got = expect_accept(*bob_, split_alice.self(), *wire);
    if (i == 0) sfl = got.sfl;
    EXPECT_EQ(got.sfl, sfl);
    EXPECT_EQ(got.datagram.body, d.body);
  }
  EXPECT_EQ(split_alice.send_stats().flow_keys_derived, 1u);
  EXPECT_EQ(split_alice.policy().stats().flows_created, 1u);
}

TEST_F(EngineTest, SplitModeRekey) {
  FbsConfig split = config_;
  split.combined_fst_tfkc = false;
  auto& a = world_["alice"];
  FbsEndpoint e(a.principal, split, *a.keys, world_.clock, world_.rng);
  const Datagram d = datagram(e.self(), bob_->self(), "x");
  const auto r1 = expect_accept(*bob_, e.self(), *e.protect(d, false));
  e.rekey(d.attrs);
  const auto r2 = expect_accept(*bob_, e.self(), *e.protect(d, false));
  EXPECT_NE(r1.sfl, r2.sfl);
}

TEST_F(EngineTest, SweepExpiresIdleFlowsInSplitMode) {
  FbsConfig split = config_;
  split.combined_fst_tfkc = false;
  auto& a = world_["alice"];
  FbsEndpoint e(a.principal, split, *a.keys, world_.clock, world_.rng);
  (void)e.protect(datagram(e.self(), bob_->self(), "x"), false);
  world_.clock.advance(config_.flow_threshold + util::seconds(1));
  EXPECT_EQ(e.sweep(), 1u);
}

TEST_F(EngineTest, HeaderOverheadMatchesWireGrowth) {
  const Datagram d = datagram(alice_->self(), bob_->self(), "overhead");
  const auto wire = alice_->protect(d, false);  // plain: body unpadded
  EXPECT_EQ(wire->size(), d.body.size() + alice_->header_overhead());
}

TEST_F(EngineTest, EmptyBodyRoundTrip) {
  Datagram d = datagram(alice_->self(), bob_->self(), "");
  for (bool secret : {false, true}) {
    const auto wire = alice_->protect(d, secret);
    ASSERT_TRUE(wire.has_value());
    const auto got = expect_accept(*bob_, alice_->self(), *wire);
    EXPECT_TRUE(got.datagram.body.empty());
  }
}

TEST_F(EngineTest, LargeBodyRoundTrip) {
  Datagram d = datagram(alice_->self(), bob_->self(), "");
  d.body = world_.rng.next_bytes(60000);
  const auto wire = alice_->protect(d, true);
  ASSERT_TRUE(wire.has_value());
  const auto got = expect_accept(*bob_, alice_->self(), *wire);
  EXPECT_EQ(got.datagram.body, d.body);
}

TEST_F(EngineTest, DuplexFlowsAreIndependent) {
  // Flows are unidirectional: alice->bob and bob->alice get distinct sfls
  // and keys, and each direction verifies correctly.
  const auto w_ab = alice_->protect(
      datagram(alice_->self(), bob_->self(), "ping"), true);
  Datagram back = datagram(bob_->self(), alice_->self(), "pong", 23, 1000);
  const auto w_ba = bob_->protect(back, true);
  const auto r_ab = expect_accept(*bob_, alice_->self(), *w_ab);
  const auto r_ba = expect_accept(*alice_, bob_->self(), *w_ba);
  EXPECT_NE(r_ab.sfl, r_ba.sfl);
  EXPECT_EQ(r_ab.datagram.body, util::to_bytes("ping"));
  EXPECT_EQ(r_ba.datagram.body, util::to_bytes("pong"));
}

struct SuiteCase {
  crypto::MacAlgorithm mac;
  crypto::CipherAlgorithm cipher;
  bool secret;
};

class SuiteSweep : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(SuiteSweep, RoundTripUnderEverySuite) {
  const SuiteCase param = GetParam();
  TestWorld world(404);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig cfg;
  cfg.suite.mac = param.mac;
  cfg.suite.cipher = param.cipher;
  FbsEndpoint sender(a.principal, cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint receiver(b.principal, cfg, *b.keys, world.clock, world.rng);

  Datagram d;
  d.source = a.principal;
  d.destination = b.principal;
  d.attrs.protocol = 17;
  d.attrs.source_port = 111;
  d.attrs.destination_port = 222;
  d.body = util::to_bytes("suite sweep payload, long enough to span blocks");

  const auto wire = sender.protect(d, param.secret);
  ASSERT_TRUE(wire.has_value());
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  EXPECT_EQ(std::get<ReceivedDatagram>(outcome).datagram.body, d.body);
}

INSTANTIATE_TEST_SUITE_P(
    Suites, SuiteSweep,
    ::testing::Values(
        SuiteCase{crypto::MacAlgorithm::kKeyedMd5,
                  crypto::CipherAlgorithm::kDesCbc, true},
        SuiteCase{crypto::MacAlgorithm::kKeyedMd5,
                  crypto::CipherAlgorithm::kDesEcb, true},
        SuiteCase{crypto::MacAlgorithm::kKeyedMd5,
                  crypto::CipherAlgorithm::kDesCfb, true},
        SuiteCase{crypto::MacAlgorithm::kKeyedMd5,
                  crypto::CipherAlgorithm::kDesOfb, true},
        SuiteCase{crypto::MacAlgorithm::kHmacMd5,
                  crypto::CipherAlgorithm::kDesCbc, true},
        SuiteCase{crypto::MacAlgorithm::kKeyedSha1,
                  crypto::CipherAlgorithm::kDesCbc, true},
        SuiteCase{crypto::MacAlgorithm::kHmacSha1,
                  crypto::CipherAlgorithm::kDesCbc, true},
        SuiteCase{crypto::MacAlgorithm::kKeyedMd5,
                  crypto::CipherAlgorithm::kDes3Ede, true},
        SuiteCase{crypto::MacAlgorithm::kHmacSha1,
                  crypto::CipherAlgorithm::kDes3Ede, true},
        SuiteCase{crypto::MacAlgorithm::kKeyedMd5,
                  crypto::CipherAlgorithm::kNone, false},
        SuiteCase{crypto::MacAlgorithm::kHmacSha1,
                  crypto::CipherAlgorithm::kNone, false}));

TEST(Des3Negotiation, TripleDesChangesTheWireAndSurvivesTampering) {
  // Same flow, same bodies, two sender configurations: the kDes3Ede wire
  // must differ from the kDesCbc wire beyond the suite byte (different
  // cipher actually engaged), the receiver must honor the wire-negotiated
  // suite without any configuration of its own, and bit flips anywhere in
  // the 3DES ciphertext must still land on kBadMac/kDecryptFailed.
  TestWorld world(505);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig des_cfg;  // default: keyed MD5 + DES-CBC
  FbsConfig des3_cfg;
  des3_cfg.suite.cipher = crypto::CipherAlgorithm::kDes3Ede;
  FbsEndpoint send_des(a.principal, des_cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint send_des3(a.principal, des3_cfg, *a.keys, world.clock,
                        world.rng);
  FbsEndpoint receiver(b.principal, des_cfg, *b.keys, world.clock, world.rng);

  Datagram d;
  d.source = a.principal;
  d.destination = b.principal;
  d.attrs.protocol = 17;
  d.attrs.source_port = 111;
  d.attrs.destination_port = 222;
  d.body = util::to_bytes("the same payload under both cipher suites");

  const auto wire3 = send_des3.protect(d, /*secret=*/true);
  ASSERT_TRUE(wire3.has_value());
  auto outcome = receiver.unprotect(a.principal, *wire3);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  const auto& got = std::get<ReceivedDatagram>(outcome);
  EXPECT_EQ(got.datagram.body, d.body);
  EXPECT_EQ(got.suite.cipher, crypto::CipherAlgorithm::kDes3Ede);

  // Distinct cipher => distinct ciphertext bytes for the same plaintext
  // (compare only the bodies; headers differ in suite/confounder anyway).
  const auto wire1 = send_des.protect(d, /*secret=*/true);
  ASSERT_TRUE(wire1.has_value());
  ASSERT_EQ(wire1->size(), wire3->size());
  util::Bytes body1(wire1->begin() + 34, wire1->end());
  util::Bytes body3(wire3->begin() + 34, wire3->end());
  EXPECT_NE(body1, body3);

  for (std::size_t i = 34; i < wire3->size(); i += 7) {
    util::Bytes tampered = *wire3;
    tampered[i] ^= 0x01;
    auto bad = receiver.unprotect(a.principal, tampered);
    ASSERT_TRUE(std::holds_alternative<ReceiveError>(bad)) << i;
    const ReceiveError err = std::get<ReceiveError>(bad);
    EXPECT_TRUE(err == ReceiveError::kBadMac ||
                err == ReceiveError::kDecryptFailed)
        << i << ": " << to_string(err);
  }
}

}  // namespace
}  // namespace fbs::core
