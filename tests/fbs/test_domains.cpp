// Sharded flow-state domains: shard selection stability, per-shard caches
// and stats, and the aggregation accessors (tentpole of the shard-per-core
// refactor; see domain.hpp).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram datagram(const Principal& src, const Principal& dst,
                  util::Bytes body, std::uint16_t sport = 7,
                  std::uint16_t dport = 9) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = dport;
  d.body = std::move(body);
  return d;
}

class DomainTest : public ::testing::Test {
 protected:
  DomainTest()
      : world_(808),
        a_(world_.add_node("a", "10.0.0.1")),
        b_(world_.add_node("b", "10.0.0.2")) {}

  FbsConfig sharded(std::size_t shards) {
    FbsConfig config;
    config.shards = shards;
    return config;
  }

  TestWorld world_;
  TestWorld::Node& a_;
  TestWorld::Node& b_;
};

TEST_F(DomainTest, ShardCountMatchesConfigAndZeroMeansOne) {
  FbsEndpoint one(a_.principal, sharded(0), *a_.keys, world_.clock,
                  world_.rng);
  EXPECT_EQ(one.shard_count(), 1u);
  FbsEndpoint eight(a_.principal, sharded(8), *a_.keys, world_.clock,
                    world_.rng);
  EXPECT_EQ(eight.shard_count(), 8u);
}

TEST_F(DomainTest, DistinctFlowsSpreadAcrossShards) {
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  std::set<std::size_t> used;
  for (std::uint16_t port = 1; port <= 64; ++port)
    used.insert(sender.send_shard_of(
        datagram(a_.principal, b_.principal, util::to_bytes("x"), port)
            .attrs));
  // 64 random-ish five-tuples over 8 shards: all empty except one would
  // mean the hash ignores the attributes.
  EXPECT_GT(used.size(), 4u);
}

TEST_F(DomainTest, EveryDatagramOfAFlowLandsOnOneShard) {
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8), *b_.keys, world_.clock,
                       world_.rng);
  const Datagram d =
      datagram(a_.principal, b_.principal, util::to_bytes("steady"));
  const std::size_t send_shard = sender.send_shard_of(d.attrs);
  std::set<std::size_t> recv_shards;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sender.send_shard_of(d.attrs), send_shard);
    const auto wire = sender.protect(d, true);
    ASSERT_TRUE(wire.has_value());
    recv_shards.insert(receiver.recv_shard_of_wire(a_.principal, *wire));
    ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(
        receiver.unprotect(a_.principal, *wire)));
  }
  // Same flow -> same sfl -> same receive shard, every time.
  EXPECT_EQ(recv_shards.size(), 1u);
}

TEST_F(DomainTest, PerShardStatsSumToAggregates) {
  FbsEndpoint sender(a_.principal, sharded(4), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(4), *b_.keys, world_.clock,
                       world_.rng);
  for (std::uint16_t port = 1; port <= 32; ++port) {
    const auto wire = sender.protect(
        datagram(a_.principal, b_.principal, util::to_bytes("s"), port),
        true);
    ASSERT_TRUE(wire.has_value());
    ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(
        receiver.unprotect(a_.principal, *wire)));
  }

  std::uint64_t sent = 0, accepted = 0, derived = 0;
  std::set<std::size_t> send_shards_used;
  for (std::size_t s = 0; s < sender.shard_count(); ++s) {
    std::lock_guard<std::mutex> lock(sender.shard(s).mu);
    if (sender.shard(s).send_stats.datagrams > 0) send_shards_used.insert(s);
    sent += sender.shard(s).send_stats.datagrams;
    derived += sender.shard(s).send_stats.flow_keys_derived;
  }
  for (std::size_t s = 0; s < receiver.shard_count(); ++s) {
    std::lock_guard<std::mutex> lock(receiver.shard(s).mu);
    accepted += receiver.shard(s).receive_stats.accepted;
  }
  EXPECT_EQ(sent, 32u);
  EXPECT_EQ(sender.send_stats().datagrams, 32u);
  EXPECT_EQ(derived, sender.send_stats().flow_keys_derived);
  EXPECT_EQ(accepted, 32u);
  EXPECT_EQ(receiver.receive_stats().accepted, 32u);
  EXPECT_GT(send_shards_used.size(), 1u);  // the traffic really sharded
}

TEST_F(DomainTest, FlowCryptoContextReusedWithinItsShard) {
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  constexpr std::uint16_t kFlows = 16;
  for (int round = 0; round < 5; ++round)
    for (std::uint16_t port = 1; port <= kFlows; ++port)
      ASSERT_TRUE(sender
                      .protect(datagram(a_.principal, b_.principal,
                                        util::to_bytes("r"), port),
                               true)
                      .has_value());
  // One derivation per flow, ever: the cached FlowCryptoContext in the
  // flow's own shard serves all later datagrams.
  EXPECT_EQ(sender.send_stats().flow_keys_derived, kFlows);
  EXPECT_EQ(sender.send_stats().datagrams, kFlows * 5u);
}

TEST_F(DomainTest, SplitPathCachesEvictPerShard) {
  // Split FAM+TFKC path with a tiny per-shard TFKC: cycling far more flows
  // than fit must show capacity/collision misses in the 3C taxonomy, and
  // the aggregate must equal the per-shard sum.
  FbsConfig config = sharded(4);
  config.combined_fst_tfkc = false;
  config.tfkc_size = 4;
  config.fst_size = 512;
  FbsEndpoint sender(a_.principal, config, *a_.keys, world_.clock,
                     world_.rng);
  for (int round = 0; round < 3; ++round)
    for (std::uint16_t port = 1; port <= 64; ++port)
      ASSERT_TRUE(sender
                      .protect(datagram(a_.principal, b_.principal,
                                        util::to_bytes("e"), port),
                               true)
                      .has_value());
  const CacheStats& agg = sender.tfkc_stats();
  EXPECT_GT(agg.cold_misses, 0u);
  EXPECT_GT(agg.capacity_misses + agg.collision_misses, 0u);
  std::uint64_t hits = 0, cold = 0, cap = 0, coll = 0;
  for (std::size_t s = 0; s < sender.shard_count(); ++s) {
    std::lock_guard<std::mutex> lock(sender.shard(s).mu);
    const CacheStats& stats = sender.shard(s).tfkc.stats();
    hits += stats.hits;
    cold += stats.cold_misses;
    cap += stats.capacity_misses;
    coll += stats.collision_misses;
  }
  const CacheStats& again = sender.tfkc_stats();
  EXPECT_EQ(hits, again.hits);
  EXPECT_EQ(cold, again.cold_misses);
  EXPECT_EQ(cap, again.capacity_misses);
  EXPECT_EQ(coll, again.collision_misses);
}

TEST_F(DomainTest, ReplayRejectionIsPerFlowUnderSharding) {
  FbsConfig config = sharded(8);
  config.strict_replay = true;
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, config, *b_.keys, world_.clock,
                       world_.rng);
  const auto wire = sender.protect(
      datagram(a_.principal, b_.principal, util::to_bytes("once")), true);
  ASSERT_TRUE(wire.has_value());
  EXPECT_TRUE(std::holds_alternative<ReceivedDatagram>(
      receiver.unprotect(a_.principal, *wire)));
  const auto replay = receiver.unprotect(a_.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(replay));
  EXPECT_EQ(std::get<ReceiveError>(replay), ReceiveError::kReplay);

  // The rejection is recorded in the flow's own shard, nowhere else.
  const std::size_t shard = receiver.recv_shard_of_wire(a_.principal, *wire);
  for (std::size_t s = 0; s < receiver.shard_count(); ++s) {
    std::lock_guard<std::mutex> lock(receiver.shard(s).mu);
    EXPECT_EQ(receiver.shard(s).receive_stats.rejected_replay,
              s == shard ? 1u : 0u)
        << "shard " << s;
  }
}

TEST_F(DomainTest, RekeyTargetsTheFlowsOwnShard) {
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  const Datagram d =
      datagram(a_.principal, b_.principal, util::to_bytes("k"));
  const auto before = sender.protect(d, true);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(sender.send_stats().flow_keys_derived, 1u);
  ASSERT_TRUE(sender.protect(d, true).has_value());
  EXPECT_EQ(sender.send_stats().flow_keys_derived, 1u);  // cached

  sender.rekey(d.attrs);
  const auto after = sender.protect(d, true);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(sender.send_stats().flow_keys_derived, 2u);  // fresh key
  EXPECT_NE(FbsHeader::parse(*before)->header.sfl,
            FbsHeader::parse(*after)->header.sfl);
}

TEST_F(DomainTest, WorkContextOverloadsRoundTrip) {
  FbsEndpoint sender(a_.principal, sharded(4), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(4), *b_.keys, world_.clock,
                       world_.rng);
  WorkContext send_ctx, recv_ctx;
  util::Bytes wire, body;
  for (std::uint16_t port = 1; port <= 8; ++port) {
    const util::Bytes payload = world_.rng.next_bytes(100 + port);
    const Datagram d =
        datagram(a_.principal, b_.principal, payload, port);
    ASSERT_TRUE(sender.protect_into(send_ctx, d, true, wire));
    const auto outcome =
        receiver.unprotect_into(recv_ctx, a_.principal, wire, body);
    ASSERT_TRUE(std::holds_alternative<ReceivedInfo>(outcome)) << port;
    EXPECT_EQ(body, payload);
  }
}

TEST_F(DomainTest, ClearSoftStateWipesEveryShard) {
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  for (std::uint16_t port = 1; port <= 16; ++port)
    ASSERT_TRUE(sender
                    .protect(datagram(a_.principal, b_.principal,
                                      util::to_bytes("c"), port),
                             true)
                    .has_value());
  const std::uint64_t derived = sender.send_stats().flow_keys_derived;
  EXPECT_EQ(derived, 16u);
  sender.clear_soft_state();
  // Every flow re-derives: no shard kept a stale combined entry.
  for (std::uint16_t port = 1; port <= 16; ++port)
    ASSERT_TRUE(sender
                    .protect(datagram(a_.principal, b_.principal,
                                      util::to_bytes("c"), port),
                             true)
                    .has_value());
  EXPECT_EQ(sender.send_stats().flow_keys_derived, derived + 16u);
}

}  // namespace
}  // namespace fbs::core
