// Error-path coverage for the mappings: malformed inner packets at the
// tunnel egress, malformed application messages, and engine behaviour with
// a zero-size FST (degenerate configs must not crash).
#include <gtest/gtest.h>

#include "fbs/app_map.hpp"
#include "net/simnet.hpp"
#include "fbs/tunnel.hpp"
#include "net/udp.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

TEST(TunnelErrorPaths, GarbageInnerPacketCounted) {
  TestWorld world(13131);
  net::SimNetwork net(world.clock, 5);
  auto& gw1 = world.add_node("gw1", "198.18.0.1");
  auto& gw2 = world.add_node("gw2", "198.18.0.2");
  net::IpStack s1(net, world.clock, *net::Ipv4Address::parse("198.18.0.1"));
  net::IpStack s2(net, world.clock, *net::Ipv4Address::parse("198.18.0.2"));
  s1.enable_forwarding(true);
  s2.enable_forwarding(true);
  FbsTunnel t1(s1, *gw1.keys, world.clock, world.rng);
  FbsTunnel t2(s2, *gw2.keys, world.clock, world.rng);

  // Craft a VALID FBS datagram from gw1 to gw2 whose protected body is NOT
  // an IP packet: egress decapsulation must reject it gracefully.
  FbsEndpoint rogue(Principal::from_ipv4(s1.address()), FbsConfig{},
                    *gw1.keys, world.clock, world.rng);
  Datagram d;
  d.source = Principal::from_ipv4(s1.address());
  d.destination = Principal::from_ipv4(s2.address());
  d.body = util::to_bytes("not an ip packet at all");
  const auto wire = rogue.protect(d, true);
  ASSERT_TRUE(wire.has_value());
  s1.output(s2.address(), net::IpProto::kFbsTunnel, *wire);
  net.run();
  EXPECT_EQ(t2.counters().inner_malformed, 1u);
  EXPECT_EQ(t2.counters().decapsulated, 0u);
}

TEST(TunnelErrorPaths, KeyUnavailableConsumesAndDrops) {
  // Remote gateway has no certificate: tunneled traffic must fail closed
  // (consumed, never forwarded in the clear).
  TestWorld world(13132);
  net::SimNetwork net(world.clock, 6);
  auto& gw1 = world.add_node("gw1", "198.18.0.1");
  net::IpStack s1(net, world.clock, *net::Ipv4Address::parse("198.18.0.1"));
  s1.enable_forwarding(true);
  FbsTunnel t1(s1, *gw1.keys, world.clock, world.rng);
  const auto unknown_gw = *net::Ipv4Address::parse("198.18.0.99");
  t1.add_remote_network(*net::Ipv4Address::parse("10.2.0.0"), 16, unknown_gw);

  // A host behind gw1 sends toward the remote network.
  net::IpStack h(net, world.clock, *net::Ipv4Address::parse("10.1.0.5"));
  h.set_default_route(s1.address());
  net::UdpService h_udp(h);
  // Eavesdropper checks nothing plaintext escapes toward the dead gateway.
  bool anything_out = false;
  net.set_tap([&](net::Ipv4Address from, net::Ipv4Address to, util::Bytes&) {
    if (from == s1.address() && to == unknown_gw) anything_out = true;
    return net::SimNetwork::TapVerdict::kPass;
  });
  h_udp.send(*net::Ipv4Address::parse("10.2.0.7"), 1, 9,
             util::to_bytes("must not leak"));
  net.run();
  EXPECT_EQ(t1.counters().key_unavailable, 1u);
  EXPECT_FALSE(anything_out);
}

TEST(AppMapErrorPaths, TruncatedConversationIdCounted) {
  TestWorld world(13133);
  net::SimNetwork net(world.clock, 7);
  net::IpStack sa(net, world.clock, *net::Ipv4Address::parse("10.0.0.1"));
  net::IpStack sb(net, world.clock, *net::Ipv4Address::parse("10.0.0.2"));
  net::UdpService ua(sa), ub(sb);

  // Enroll application principals.
  auto enroll = [&](net::Ipv4Address host, std::uint16_t port) {
    const Principal p = app_principal(host, port);
    const auto& group = crypto::test_group();
    const auto dh = crypto::dh_generate(group, world.rng);
    world.directory.publish(world.ca.issue(
        p.address, group.name,
        dh.public_value.to_bytes_be(group.element_size()), 0,
        world.clock.now() + util::minutes(1000000)));
    struct R {
      std::unique_ptr<MasterKeyDaemon> mkd;
      std::unique_ptr<KeyManager> keys;
    } r;
    r.mkd = std::make_unique<MasterKeyDaemon>(p, dh.private_value, group,
                                              world.ca, world.directory,
                                              world.clock);
    r.keys = std::make_unique<KeyManager>(*r.mkd);
    return r;
  };
  auto ra = enroll(sa.address(), 700);
  auto rb = enroll(sb.address(), 700);
  AppEndpoint a(ua, sa.address(), 700, *ra.keys, world.clock, world.rng);
  AppEndpoint b(ub, sb.address(), 700, *rb.keys, world.clock, world.rng);
  b.on_message([](const Principal&, std::uint64_t, util::BytesView) {});

  // Build a VALID FBS datagram whose body is shorter than a conversation
  // id, sent straight at b's app port.
  FbsEndpoint rogue(app_principal(sa.address(), 700), FbsConfig{}, *ra.keys,
                    world.clock, world.rng);
  Datagram d;
  d.source = app_principal(sa.address(), 700);
  d.destination = app_principal(sb.address(), 700);
  d.body = util::to_bytes("abc");  // < 8 bytes
  const auto wire = rogue.protect(d, true);
  ASSERT_TRUE(wire.has_value());
  ua.send(sb.address(), 700, 700, *wire);
  net.run();
  EXPECT_EQ(b.counters().malformed, 1u);
  EXPECT_EQ(b.counters().received, 0u);
}

TEST(EngineDegenerateConfigs, TinyTablesStillCorrect) {
  // FST size 1, caches size 1: everything collides constantly, nothing may
  // break -- only performance suffers (soft state!).
  TestWorld world(13134);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig tiny;
  tiny.fst_size = 1;
  tiny.tfkc_size = 1;
  tiny.rfkc_size = 1;
  FbsEndpoint sender(a.principal, tiny, *a.keys, world.clock, world.rng);
  FbsEndpoint receiver(b.principal, tiny, *b.keys, world.clock, world.rng);

  for (int i = 0; i < 20; ++i) {
    Datagram d;
    d.source = a.principal;
    d.destination = b.principal;
    d.attrs.source_port = static_cast<std::uint16_t>(1000 + i % 3);
    d.attrs.destination_port = 9;
    d.body = util::to_bytes("datagram " + std::to_string(i));
    const auto wire = sender.protect(d, true);
    ASSERT_TRUE(wire.has_value()) << i;
    auto outcome = receiver.unprotect(a.principal, *wire);
    ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome)) << i;
    EXPECT_EQ(std::get<ReceivedDatagram>(outcome).datagram.body, d.body);
  }
  // Collisions forced re-derivations but never wrong results.
  EXPECT_GT(sender.send_stats().flow_keys_derived, 3u);
}

}  // namespace
}  // namespace fbs::core
