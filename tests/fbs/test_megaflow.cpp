// MegaflowPolicy: the budgeted flat-hash + timer-wheel FAM (DESIGN.md 5i).
// Covers the paper-semantics contract (exact five-tuple identity, the shared
// flow_expired() boundary at exactly THRESHOLD), the soft-state contracts the
// control plane relies on (point expiry never moves sweeper counters; sweep
// cost tracks expirations via lazy re-arm), and the budget contract (hard
// flow cap with eviction pressure counted, zero heap growth in steady state).
#include "fbs/megaflow.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::core {
namespace {

Datagram datagram_for(std::uint16_t sport, std::uint16_t dport,
                      std::uint8_t proto = 6, std::uint32_t saddr = 0x0A000001,
                      std::uint32_t daddr = 0x0A000002) {
  Datagram d;
  d.attrs.protocol = proto;
  d.attrs.source_address = saddr;
  d.attrs.source_port = sport;
  d.attrs.destination_address = daddr;
  d.attrs.destination_port = dport;
  return d;
}

class MegaflowTest : public ::testing::Test {
 protected:
  util::SplitMix64 rng_{42};
  SflAllocator alloc_{rng_};
  MegaflowPolicy policy_{64, util::seconds(600), alloc_};
};

TEST_F(MegaflowTest, SameTupleSameFlow) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b = policy_.map(datagram_for(1000, 23), util::seconds(1));
  EXPECT_TRUE(a.new_flow);
  EXPECT_FALSE(b.new_flow);
  EXPECT_EQ(a.sfl, b.sfl);
  EXPECT_EQ(policy_.stats().mapper_hits, 1u);
  EXPECT_EQ(policy_.live_flows(), 1u);
}

TEST_F(MegaflowTest, ExactMatchingNeverEvictsOnCollision) {
  // Unlike the direct-mapped FiveTuplePolicy (footnote 11), distinct tuples
  // can never displace each other while the budget holds.
  for (std::uint16_t p = 0; p < 60; ++p)
    (void)policy_.map(datagram_for(1000 + p, 23), util::seconds(0));
  EXPECT_EQ(policy_.stats().hash_evictions, 0u);
  EXPECT_EQ(policy_.stats().flows_created, 60u);
  EXPECT_EQ(policy_.live_flows(), 60u);
  for (std::uint16_t p = 0; p < 60; ++p) {
    const auto m = policy_.map(datagram_for(1000 + p, 23), util::seconds(1));
    EXPECT_FALSE(m.new_flow) << p;
  }
}

// Satellite: the one inline staleness predicate, at the boundary. A gap of
// exactly THRESHOLD continues the flow; one microsecond more ends it.
TEST_F(MegaflowTest, GapExactlyAtThresholdContinuesFlow) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b = policy_.map(datagram_for(1000, 23), util::seconds(600));
  EXPECT_FALSE(b.new_flow);
  EXPECT_EQ(a.sfl, b.sfl);
  EXPECT_EQ(policy_.stats().mapper_expirations, 0u);
}

TEST_F(MegaflowTest, GapBeyondThresholdStartsNewFlowInPlace) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b =
      policy_.map(datagram_for(1000, 23), util::seconds(600) + 1);
  EXPECT_TRUE(b.new_flow);
  EXPECT_NE(a.sfl, b.sfl);
  EXPECT_EQ(policy_.stats().mapper_expirations, 1u);
  EXPECT_EQ(policy_.live_flows(), 1u);  // slot reused, not leaked
}

// The sweeper draws the conversation boundary at the same place the mapper
// does, because both call flow_expired(). tick_shift=0 makes wheel ticks
// 1 us so the boundary is exact; a 1 ms threshold keeps advance() cheap.
TEST(MegaflowSweep, SweepBoundaryMatchesMapper) {
  util::SplitMix64 rng(20);
  SflAllocator alloc(rng);
  MegaflowPolicy policy(64, /*threshold=*/1000, alloc, true, /*tick_shift=*/0);
  (void)policy.map(datagram_for(1000, 23), 0);
  EXPECT_EQ(policy.sweep(1000), 0u);  // gap exactly threshold: still live
  EXPECT_EQ(policy.live_flows(), 1u);
  EXPECT_EQ(policy.sweep(1001), 1u);  // one microsecond more: expired
  EXPECT_EQ(policy.live_flows(), 0u);
  EXPECT_EQ(policy.stats().sweeper_expirations, 1u);
}

// A mapper hit does not touch the wheel; the timer fires at the stale
// deadline, notices the activity, and re-arms for the true one.
TEST(MegaflowSweep, LazyRearmKeepsActiveFlowAlive) {
  util::SplitMix64 rng(21);
  SflAllocator alloc(rng);
  MegaflowPolicy policy(64, /*threshold=*/1000, alloc, true, /*tick_shift=*/0);
  (void)policy.map(datagram_for(1000, 23), 0);
  (void)policy.map(datagram_for(1000, 23), 500);  // hit: wheel untouched
  // Old deadline (0 + threshold + 1) passes: timer fires but must re-arm.
  EXPECT_EQ(policy.sweep(1001), 0u);
  EXPECT_EQ(policy.live_flows(), 1u);
  const MegaflowStats* m = policy.mega_stats();
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->wheel_fires, 1u);
  // True deadline (500 + threshold + 1) passes: now it expires.
  EXPECT_EQ(policy.sweep(1501), 1u);
  EXPECT_EQ(policy.live_flows(), 0u);
}

// Satellite: point expiry is a keyed erase. It terminates exactly one flow
// and moves no sweeper statistics.
TEST_F(MegaflowTest, PointExpiryDoesNotPerturbSweeperStats) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  (void)policy_.map(datagram_for(2000, 23), util::seconds(0));

  policy_.expire_flow(datagram_for(1000, 23).attrs);
  EXPECT_EQ(policy_.stats().sweeper_expirations, 0u);
  EXPECT_EQ(policy_.stats().mapper_expirations, 0u);
  EXPECT_EQ(policy_.live_flows(), 1u);
  EXPECT_EQ(policy_.find(datagram_for(1000, 23).attrs), nullptr);
  EXPECT_NE(policy_.find(datagram_for(2000, 23).attrs), nullptr);

  // The rekeyed flow restarts with a fresh sfl (Section 5.2's rekeying hook).
  const auto a2 = policy_.map(datagram_for(1000, 23), util::seconds(1));
  EXPECT_TRUE(a2.new_flow);
  EXPECT_NE(a2.sfl, a.sfl);

  // The sweeper later counts only what it expired itself: the survivor and
  // the restarted flow, not the point-expired one.
  EXPECT_EQ(policy_.sweep(util::seconds(700)), 2u);
  EXPECT_EQ(policy_.stats().sweeper_expirations, 2u);
}

TEST_F(MegaflowTest, ExpireFlowOnAbsentTupleIsNoOp) {
  policy_.expire_flow(datagram_for(7, 7).attrs);
  EXPECT_EQ(policy_.live_flows(), 0u);
  EXPECT_EQ(policy_.stats().sweeper_expirations, 0u);
}

TEST_F(MegaflowTest, FindExposesLiveEntry) {
  (void)policy_.map(datagram_for(1000, 23), util::seconds(5));
  const FlowStateEntry* e = policy_.find(datagram_for(1000, 23).attrs);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->valid);
  EXPECT_EQ(e->created, util::seconds(5));
  EXPECT_EQ(e->datagrams, 1u);
  EXPECT_EQ(policy_.find(datagram_for(9, 9).attrs), nullptr);
}

TEST_F(MegaflowTest, ActiveFlowsCountsOnlyFresh) {
  (void)policy_.map(datagram_for(1000, 23), util::seconds(0));
  (void)policy_.map(datagram_for(2000, 23), util::seconds(500));
  EXPECT_EQ(policy_.active_flows(util::seconds(500)), 2u);
  EXPECT_EQ(policy_.active_flows(util::seconds(601)), 1u);
  EXPECT_EQ(policy_.active_flows(util::seconds(1101)), 0u);
}

TEST(MegaflowBudget, EvictionPressureAtTheCap) {
  util::SplitMix64 rng(7);
  SflAllocator alloc(rng);
  MegaflowPolicy policy(8, util::seconds(600), alloc);

  // 20 distinct, all-active flows through a budget of 8: every admission
  // past the cap must evict a (live) victim and count the pressure.
  for (std::uint16_t i = 0; i < 20; ++i)
    (void)policy.map(datagram_for(1000 + i, 23), util::seconds(i));
  EXPECT_EQ(policy.live_flows(), 8u);
  EXPECT_EQ(policy.stats().flows_created, 20u);
  const MegaflowStats* m = policy.mega_stats();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->budget_evictions, 12u);
  EXPECT_EQ(m->peak_live_flows, 8u);
  EXPECT_EQ(policy.stats().sweeper_expirations, 0u);  // victims were live

  // Eviction is soft-state-safe: a datagram for an evicted flow just starts
  // a fresh flow.
  const auto again = policy.map(datagram_for(1000, 23), util::seconds(30));
  EXPECT_TRUE(again.new_flow);
  EXPECT_EQ(policy.live_flows(), 8u);
}

TEST(MegaflowBudget, StaleFlowsReclaimedBeforeLiveOnes) {
  util::SplitMix64 rng(8);
  SflAllocator alloc(rng);
  MegaflowPolicy policy(4, util::seconds(10), alloc);
  for (std::uint16_t i = 0; i < 4; ++i)
    (void)policy.map(datagram_for(100 + i, 23), util::seconds(0));
  // Budget full and every resident flow is stale: admission reclaims one as
  // an ordinary (pulled-forward) expiry, not a budget eviction.
  (void)policy.map(datagram_for(999, 23), util::seconds(60));
  const MegaflowStats* m = policy.mega_stats();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->budget_evictions, 0u);
  EXPECT_EQ(policy.stats().sweeper_expirations, 1u);
  EXPECT_EQ(policy.live_flows(), 4u);
}

TEST(MegaflowBudget, SteadyStateNeverGrowsTheHeap) {
  util::SplitMix64 rng(9);
  SflAllocator alloc(rng);
  MegaflowPolicy policy(64, util::seconds(10), alloc);
  // Warm-up to fill the table, then note the footprint.
  for (std::uint16_t i = 0; i < 64; ++i)
    (void)policy.map(datagram_for(1000 + i, 23), util::seconds(0));
  const std::size_t resident = policy.mega_stats()->resident_bytes;
  // Heavy churn: new tuples arriving while old ones expire, plus periodic
  // sweeps -- maximal insert/erase traffic on map, slab, and wheel.
  for (int round = 1; round <= 50; ++round) {
    const util::TimeUs now = util::seconds(round * 5);
    for (std::uint16_t i = 0; i < 32; ++i)
      (void)policy.map(
          datagram_for(static_cast<std::uint16_t>(2000 + round * 32 + i), 23),
          now);
    (void)policy.sweep(now);
  }
  const MegaflowStats* m = policy.mega_stats();
  EXPECT_EQ(m->map_rehashes, 0u);
  EXPECT_EQ(m->slab_grows, 0u);
  EXPECT_EQ(m->resident_bytes, resident);
  EXPECT_LE(policy.live_flows(), 64u);
}

// Sweep work scales with what expired, not with what is stored: the wheel's
// touched-bucket/fired-node counter stays near the expiry count while a
// full-table scan would have touched every resident flow each sweep.
TEST(MegaflowBudget, SweepCostTracksExpirationsNotTableSize) {
  util::SplitMix64 rng(10);
  SflAllocator alloc(rng);
  // Default tick shift (~1 s ticks): sweep only walks ~sweep-period buckets.
  MegaflowPolicy policy(20000, util::seconds(600), alloc);
  // 10k long-lived flows refreshed continuously...
  for (std::uint16_t i = 0; i < 10000u; ++i)
    (void)policy.map(datagram_for(i, 23), util::seconds(0));
  std::uint64_t expired_total = 0;
  for (int round = 1; round <= 70; ++round) {
    const util::TimeUs now = util::seconds(round * 10);
    for (std::uint16_t i = 0; i < 10000u; ++i)
      (void)policy.map(datagram_for(i, 23), now);
    // ...plus a small short-lived population that does expire (created in
    // the first rounds, idle past threshold inside the 700 s horizon).
    for (std::uint16_t i = 0; i < 20; ++i)
      (void)policy.map(datagram_for(static_cast<std::uint16_t>(30000 + round),
                                    static_cast<std::uint16_t>(i), 17),
                       now);
    expired_total += policy.sweep(now);
  }
  const MegaflowStats* m = policy.mega_stats();
  EXPECT_GT(expired_total, 0u);
  // 70 sweeps over 10k+ resident flows: a scan-based sweeper touches 700k
  // entries. The wheel's total touch count (buckets visited + timers fired)
  // must stay an order of magnitude below that -- bounded by elapsed ticks
  // plus roughly one lazy re-arm fire per flow per threshold period, not by
  // residency per sweep.
  EXPECT_LT(m->sweep_touched, 60000u);
}

TEST_F(MegaflowTest, ClearDropsSoftStateButKeepsCapacity) {
  for (std::uint16_t i = 0; i < 50; ++i)
    (void)policy_.map(datagram_for(1000 + i, 23), util::seconds(0));
  policy_.clear();
  EXPECT_EQ(policy_.live_flows(), 0u);
  EXPECT_EQ(policy_.active_flows(util::seconds(0)), 0u);
  EXPECT_EQ(policy_.find(datagram_for(1000, 23).attrs), nullptr);
  // Restart: fresh flows, still no heap growth past the reservation.
  for (std::uint16_t i = 0; i < 50; ++i) {
    const auto m = policy_.map(datagram_for(1000 + i, 23), util::seconds(1));
    EXPECT_TRUE(m.new_flow);
  }
  EXPECT_EQ(policy_.mega_stats()->slab_grows, 0u);
  EXPECT_EQ(policy_.mega_stats()->map_rehashes, 0u);
}

TEST_F(MegaflowTest, NameDescribesBudgetAndThreshold) {
  EXPECT_NE(policy_.name().find("megaflow"), std::string::npos);
  EXPECT_NE(policy_.name().find("600"), std::string::npos);
}

TEST_F(MegaflowTest, MegaStatsAvailableViaBaseInterface) {
  FlowPolicy& base = policy_;
  EXPECT_NE(base.mega_stats(), nullptr);
  util::SplitMix64 rng(11);
  SflAllocator alloc(rng);
  FiveTuplePolicy paper(16, util::seconds(600), alloc);
  EXPECT_EQ(static_cast<FlowPolicy&>(paper).mega_stats(), nullptr);
}

}  // namespace
}  // namespace fbs::core
