// unprotect_burst_into must be observably identical to running
// unprotect_into item by item: same outcomes (accepts, every rejection
// kind), same plaintexts, same stats -- only the cipher work is scheduled
// differently (cross-datagram bitsliced decrypt). Two receivers built from
// the same node keys see the same wires; one takes the per-item path, one
// the burst path, and everything they observe is compared.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram datagram(const Principal& src, const Principal& dst,
                  const std::string& body, std::uint16_t sport = 1000) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 4242;
  d.body = util::to_bytes(body);
  return d;
}

/// Run `wires` through both receivers -- item by item on one, as a single
/// burst on the other -- and assert identical outcomes and bodies.
void expect_burst_equivalence(FbsEndpoint& per_item, FbsEndpoint& burst,
                              const Principal& source,
                              const std::vector<util::Bytes>& wires) {
  std::vector<ReceiveIntoOutcome> want;
  std::vector<util::Bytes> want_body(wires.size());
  WorkContext ctx;
  for (std::size_t i = 0; i < wires.size(); ++i)
    want.push_back(
        per_item.unprotect_into(ctx, source, wires[i], want_body[i]));

  std::vector<util::Bytes> got_body(wires.size());
  std::vector<ReceiveBurstItem> items(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    items[i].source = &source;
    items[i].wire = wires[i];
    items[i].body_out = &got_body[i];
  }
  WorkContext burst_ctx;
  burst.unprotect_burst_into(burst_ctx, items);

  for (std::size_t i = 0; i < wires.size(); ++i) {
    const auto* want_err = std::get_if<ReceiveError>(&want[i]);
    const auto* got_err = std::get_if<ReceiveError>(&items[i].outcome);
    ASSERT_EQ(want_err != nullptr, got_err != nullptr)
        << "item " << i << (want_err ? std::string(" per-item rejected: ") +
                                           to_string(*want_err)
                                     : " per-item accepted");
    if (want_err) {
      EXPECT_EQ(*got_err, *want_err) << "item " << i;
      continue;
    }
    const auto& want_info = std::get<ReceivedInfo>(want[i]);
    const auto& got_info = std::get<ReceivedInfo>(items[i].outcome);
    EXPECT_EQ(got_info.sfl, want_info.sfl) << i;
    EXPECT_EQ(got_info.was_secret, want_info.was_secret) << i;
    EXPECT_EQ(got_info.suite, want_info.suite) << i;
    EXPECT_EQ(got_body[i], want_body[i]) << i;
  }
  EXPECT_EQ(burst.receive_stats().accepted,
            per_item.receive_stats().accepted);
  EXPECT_EQ(burst.receive_stats().rejected(),
            per_item.receive_stats().rejected());
}

class BurstTest : public ::testing::Test {
 protected:
  BurstTest() : world_(606) {
    auto& a = world_.add_node("alice", "10.0.0.1");
    auto& b = world_.add_node("bob", "10.0.0.2");
    alice_node_ = &a;
    bob_node_ = &b;
  }

  std::unique_ptr<FbsEndpoint> sender(const FbsConfig& cfg) {
    return std::make_unique<FbsEndpoint>(alice_node_->principal, cfg,
                                         *alice_node_->keys, world_.clock,
                                         world_.rng);
  }
  std::unique_ptr<FbsEndpoint> receiver(const FbsConfig& cfg) {
    return std::make_unique<FbsEndpoint>(bob_node_->principal, cfg,
                                         *bob_node_->keys, world_.clock,
                                         world_.rng);
  }

  TestWorld world_;
  testing::TestWorld::Node* alice_node_ = nullptr;
  testing::TestWorld::Node* bob_node_ = nullptr;
};

TEST_F(BurstTest, MixedBurstMatchesPerItemPath) {
  // Valid secret datagrams across several flows (different keys in one
  // batch), a plaintext datagram, a tampered body, a truncated wire, and a
  // garbage wire: every slot's verdict and plaintext must match the
  // per-item path.
  FbsConfig cfg;
  auto alice = sender(cfg);
  std::vector<util::Bytes> wires;
  for (std::uint16_t flow = 0; flow < 8; ++flow) {
    for (int i = 0; i < 4; ++i) {
      const auto wire = alice->protect(
          datagram(alice->self(), bob_node_->principal,
                   "flow " + std::to_string(flow) + " datagram " +
                       std::to_string(i) + std::string(120, 'x'),
                   static_cast<std::uint16_t>(2000 + flow)),
          /*secret=*/true);
      ASSERT_TRUE(wire.has_value());
      wires.push_back(*wire);
    }
  }
  const auto plain = alice->protect(
      datagram(alice->self(), bob_node_->principal, "in the clear"),
      /*secret=*/false);
  ASSERT_TRUE(plain.has_value());
  wires.push_back(*plain);
  util::Bytes tampered = wires[3];
  tampered.back() ^= 0xFF;
  wires.push_back(tampered);
  wires.push_back(util::Bytes(wires[0].begin(), wires[0].begin() + 9));
  wires.push_back(util::Bytes(64, 0xEE));

  auto bob_item = receiver(cfg);
  auto bob_burst = receiver(cfg);
  expect_burst_equivalence(*bob_item, *bob_burst, alice->self(), wires);
}

TEST_F(BurstTest, MixedSuitesInOneBurst) {
  // Wire-negotiated suites decide batch eligibility per item: DES-CBC rides
  // the lanes, CFB and 3DES take the scalar path inside the same burst, and
  // all of them must agree with the per-item verdicts.
  FbsConfig cbc_cfg;
  FbsConfig cfb_cfg;
  cfb_cfg.suite.cipher = crypto::CipherAlgorithm::kDesCfb;
  FbsConfig des3_cfg;
  des3_cfg.suite.cipher = crypto::CipherAlgorithm::kDes3Ede;
  auto send_cbc = sender(cbc_cfg);
  auto send_cfb = sender(cfb_cfg);
  auto send_des3 = sender(des3_cfg);

  std::vector<util::Bytes> wires;
  for (int i = 0; i < 6; ++i) {
    FbsEndpoint& s = i % 3 == 0 ? *send_cbc : i % 3 == 1 ? *send_cfb
                                                         : *send_des3;
    const auto wire = s.protect(
        datagram(s.self(), bob_node_->principal,
                 "suite mix " + std::to_string(i) + std::string(90, 'y'),
                 static_cast<std::uint16_t>(3000 + i)),
        /*secret=*/true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(*wire);
  }

  FbsConfig rx_cfg;
  auto bob_item = receiver(rx_cfg);
  auto bob_burst = receiver(rx_cfg);
  expect_burst_equivalence(*bob_item, *bob_burst, send_cbc->self(), wires);
}

TEST_F(BurstTest, IntraBurstDuplicateRejectedUnderStrictReplay) {
  // Both copies of a duplicated wire pass the freshness check before either
  // commits (one critical section per burst); the seen() probe must still
  // reject exactly the second copy, matching the per-item path.
  FbsConfig cfg;
  cfg.strict_replay = true;
  auto alice = sender(cfg);
  const auto wire = alice->protect(
      datagram(alice->self(), bob_node_->principal,
               std::string(200, 'd') + " duplicated"),
      /*secret=*/true);
  ASSERT_TRUE(wire.has_value());
  std::vector<util::Bytes> wires{*wire, *wire, *wire};

  auto bob_item = receiver(cfg);
  auto bob_burst = receiver(cfg);
  expect_burst_equivalence(*bob_item, *bob_burst, alice->self(), wires);
  EXPECT_EQ(bob_burst->receive_stats().accepted, 1u);
  EXPECT_EQ(bob_burst->receive_stats().rejected_by(ReceiveError::kReplay),
            2u);
}

TEST_F(BurstTest, DuplicatesAdmittedWithoutStrictReplay) {
  // Window-only freshness admits within-window duplicates by design; the
  // burst path must not accidentally tighten that.
  FbsConfig cfg;
  auto alice = sender(cfg);
  const auto wire = alice->protect(
      datagram(alice->self(), bob_node_->principal, "twice is fine"),
      /*secret=*/true);
  ASSERT_TRUE(wire.has_value());
  std::vector<util::Bytes> wires{*wire, *wire};

  auto bob_item = receiver(cfg);
  auto bob_burst = receiver(cfg);
  expect_burst_equivalence(*bob_item, *bob_burst, alice->self(), wires);
  EXPECT_EQ(bob_burst->receive_stats().accepted, 2u);
}

TEST_F(BurstTest, BitsliceDisabledStillMatches) {
  // bitslice_crypto = false (the fig8 scalar curve): the burst entry point
  // remains available and routes everything scalar with identical results.
  FbsConfig send_cfg;
  auto alice = sender(send_cfg);
  std::vector<util::Bytes> wires;
  for (int i = 0; i < 12; ++i) {
    const auto wire = alice->protect(
        datagram(alice->self(), bob_node_->principal,
                 "scalar burst " + std::string(100 + i, 'z'),
                 static_cast<std::uint16_t>(5000 + i % 3)),
        /*secret=*/true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(*wire);
  }
  FbsConfig rx_cfg;
  rx_cfg.bitslice_crypto = false;
  auto bob_item = receiver(rx_cfg);
  auto bob_burst = receiver(rx_cfg);
  expect_burst_equivalence(*bob_item, *bob_burst, alice->self(), wires);
  EXPECT_EQ(bob_burst->receive_stats().accepted, 12u);
}

TEST_F(BurstTest, LargeBurstSpansMultipleChunks) {
  // More items than CryptoBatch::kLanes: the chunking seam (64-item groups)
  // must not change any verdict.
  FbsConfig cfg;
  auto alice = sender(cfg);
  std::vector<util::Bytes> wires;
  for (int i = 0; i < 150; ++i) {
    const auto wire = alice->protect(
        datagram(alice->self(), bob_node_->principal,
                 "chunk seam " + std::to_string(i),
                 static_cast<std::uint16_t>(6000 + i % 5)),
        /*secret=*/true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(*wire);
  }
  auto bob_item = receiver(cfg);
  auto bob_burst = receiver(cfg);
  expect_burst_equivalence(*bob_item, *bob_burst, alice->self(), wires);
  EXPECT_EQ(bob_burst->receive_stats().accepted, 150u);
}

}  // namespace
}  // namespace fbs::core
