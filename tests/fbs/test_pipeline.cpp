// The parallel receive pipeline: submit/drain conservation, payload
// integrity across worker threads, the deferred-input hook under IpStack,
// and rejection accounting through the RejectHook.
#include "fbs/pipeline.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fbs/ip_map.hpp"
#include "net/udp.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram datagram(const Principal& src, const Principal& dst,
                  util::Bytes body, std::uint16_t sport) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 9;
  d.body = std::move(body);
  return d;
}

net::Ipv4Header header_from(const Principal& src, const Principal& dst) {
  net::Ipv4Header h;
  h.protocol = 17;
  h.source = src.ipv4();
  h.destination = dst.ipv4();
  return h;
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : world_(909),
        a_(world_.add_node("a", "10.0.0.1")),
        b_(world_.add_node("b", "10.0.0.2")),
        sender_(a_.principal, FbsConfig{}, *a_.keys, world_.clock,
                world_.rng),
        receiver_(b_.principal, sharded_config(), *b_.keys, world_.clock,
                  world_.rng) {}

  static FbsConfig sharded_config() {
    FbsConfig config;
    config.shards = 4;
    return config;
  }

  TestWorld world_;
  TestWorld::Node& a_;
  TestWorld::Node& b_;
  FbsEndpoint sender_;
  FbsEndpoint receiver_;
};

TEST_F(PipelineTest, DeliversEveryDatagramAcrossFlows) {
  PipelineConfig pc;
  pc.workers = 2;
  DatagramPipeline pipe(receiver_, pc);
  EXPECT_EQ(pipe.worker_count(), 2u);

  constexpr int kDatagrams = 64;
  std::map<std::string, int> expected;
  for (int i = 0; i < kDatagrams; ++i) {
    const std::string text = "datagram " + std::to_string(i);
    ++expected[text];
    const auto wire = sender_.protect(
        datagram(a_.principal, b_.principal, util::to_bytes(text),
                 static_cast<std::uint16_t>(1 + i % 16)),
        true);
    ASSERT_TRUE(wire.has_value());
    ASSERT_TRUE(pipe.submit(header_from(a_.principal, b_.principal), *wire));
  }

  std::map<std::string, int> got;
  pipe.drain_all([&](const net::Ipv4Header& h, util::Bytes body) {
    EXPECT_EQ(h.source, a_.principal.ipv4());
    ++got[std::string(body.begin(), body.end())];
  });

  EXPECT_EQ(got, expected);
  EXPECT_EQ(pipe.stats().submitted, 64u);
  EXPECT_EQ(pipe.stats().accepted, 64u);
  EXPECT_EQ(pipe.stats().rejected, 0u);
  EXPECT_EQ(pipe.stats().backpressure_drops, 0u);
  EXPECT_EQ(pipe.stats().drained, 64u);
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(receiver_.receive_stats().accepted, 64u);
}

TEST_F(PipelineTest, SameFlowStaysInOrder) {
  PipelineConfig pc;
  pc.workers = 4;
  DatagramPipeline pipe(receiver_, pc);

  constexpr int kDatagrams = 200;
  for (int i = 0; i < kDatagrams; ++i) {
    const auto wire = sender_.protect(
        datagram(a_.principal, b_.principal,
                 util::to_bytes(std::to_string(i)), 7),
        true);
    ASSERT_TRUE(wire.has_value());
    ASSERT_TRUE(pipe.submit(header_from(a_.principal, b_.principal), *wire));
  }
  // One flow -> one shard -> one worker draining a FIFO ring: bodies must
  // come out in submission order even with four workers running.
  int next = 0;
  pipe.drain_all([&](const net::Ipv4Header&, util::Bytes body) {
    EXPECT_EQ(std::string(body.begin(), body.end()), std::to_string(next));
    ++next;
  });
  EXPECT_EQ(next, kDatagrams);
}

TEST_F(PipelineTest, IngressDropsAttributedToTheOverloadedShard) {
  PipelineConfig pc;
  pc.workers = 1;
  pc.ingress_capacity = 1;  // one-slot ring: a pre-built burst must drop
  DatagramPipeline pipe(receiver_, pc);

  // Protect everything up front so the submit loop outruns the worker by
  // orders of magnitude -- the drops are then inevitable, not timing luck.
  constexpr int kDatagrams = 2048;
  std::vector<util::Bytes> wires;
  wires.reserve(kDatagrams);
  for (int i = 0; i < kDatagrams; ++i) {
    auto wire = sender_.protect(
        datagram(a_.principal, b_.principal,
                 util::to_bytes(std::to_string(i)), 7),
        true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(std::move(*wire));
  }
  const auto header = header_from(a_.principal, b_.principal);
  std::uint64_t refused = 0;
  for (auto& wire : wires)
    if (!pipe.submit(header, std::move(wire))) ++refused;
  int delivered = 0;
  pipe.drain_all([&](const net::Ipv4Header&, util::Bytes) { ++delivered; });

  EXPECT_GT(refused, 0u);
  // The policy counter and the ring-level counter describe the same events.
  EXPECT_EQ(pipe.stats().backpressure_drops, refused);
  EXPECT_EQ(pipe.ingress_dropped(), refused);
  // One flow -> one shard: the per-shard view pins the overload to it.
  std::uint64_t across_shards = 0;
  std::size_t overloaded = 0;
  for (std::size_t s = 0; s < pipe.shard_count(); ++s) {
    across_shards += pipe.ingress_dropped(s);
    if (pipe.ingress_dropped(s) > 0) ++overloaded;
  }
  EXPECT_EQ(across_shards, refused);
  EXPECT_EQ(overloaded, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + refused,
            static_cast<std::uint64_t>(kDatagrams));

  // And the registry exposes both the total and the per-shard breakdown.
  obs::MetricsRegistry reg;
  pipe.register_metrics(reg, "pipe");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("pipe.ingress_dropped"), refused);
  std::uint64_t from_metrics = 0;
  for (std::size_t s = 0; s < pipe.shard_count(); ++s)
    from_metrics +=
        snap.counters.at("pipe.ingress_dropped.shard" + std::to_string(s));
  EXPECT_EQ(from_metrics, refused);
}

TEST_F(PipelineTest, RejectionsAreCountedAndReported) {
  PipelineConfig pc;
  pc.workers = 2;
  std::atomic<std::uint64_t> bad_mac{0}, other{0};
  DatagramPipeline pipe(receiver_, pc, [&](ReceiveError e) {
    (e == ReceiveError::kBadMac ? bad_mac : other)
        .fetch_add(1, std::memory_order_relaxed);
  });

  // Authenticated plaintext: flipping a body byte is a clean MAC mismatch
  // (on a secret wire the same flip would corrupt the cipher padding and
  // surface as kDecryptFailed instead).
  auto wire = sender_.protect(
      datagram(a_.principal, b_.principal, util::to_bytes("intact"), 1),
      false);
  ASSERT_TRUE(wire.has_value());
  util::Bytes tampered = *wire;
  tampered.back() ^= 0x01;

  ASSERT_TRUE(pipe.submit(header_from(a_.principal, b_.principal), *wire));
  ASSERT_TRUE(
      pipe.submit(header_from(a_.principal, b_.principal), tampered));

  int delivered = 0;
  pipe.drain_all(
      [&](const net::Ipv4Header&, util::Bytes) { ++delivered; });
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bad_mac.load(), 1u);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(pipe.stats().accepted, 1u);
  EXPECT_EQ(pipe.stats().rejected, 1u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST_F(PipelineTest, SubmitBatchDeliversEverythingInPerFlowOrder) {
  PipelineConfig pc;
  pc.workers = 2;
  pc.batch = 8;
  DatagramPipeline pipe(receiver_, pc);

  // Four flows interleaved in one stream of bursts, every body tagged
  // "f<flow>:<seq>" so per-flow order is checkable after the fan-out.
  constexpr int kFlows = 4;
  constexpr int kDatagrams = 96;
  std::vector<util::Bytes> wires;
  wires.reserve(kDatagrams);
  std::vector<int> seq(kFlows, 0);
  for (int i = 0; i < kDatagrams; ++i) {
    const int flow = i % kFlows;
    const std::string text =
        "f" + std::to_string(flow) + ":" + std::to_string(seq[flow]++);
    auto wire = sender_.protect(
        datagram(a_.principal, b_.principal, util::to_bytes(text),
                 static_cast<std::uint16_t>(100 + flow)),
        true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(std::move(*wire));
  }

  // Submit in bursts of 10 (not a divisor of anything above: chunks cut
  // across flows, so the shard grouping actually has work to do).
  const auto header = header_from(a_.principal, b_.principal);
  std::size_t accepted = 0;
  for (std::size_t at = 0; at < wires.size(); at += 10) {
    const std::size_t n = std::min<std::size_t>(10, wires.size() - at);
    accepted += pipe.submit_batch(header, {wires.data() + at, n});
  }
  EXPECT_EQ(accepted, static_cast<std::size_t>(kDatagrams));

  std::vector<int> next(kFlows, 0);
  int delivered = 0;
  pipe.drain_all([&](const net::Ipv4Header&, util::Bytes body) {
    const std::string text(body.begin(), body.end());
    const auto colon = text.find(':');
    ASSERT_NE(colon, std::string::npos);
    const int flow = std::stoi(text.substr(1, colon - 1));
    const int got_seq = std::stoi(text.substr(colon + 1));
    EXPECT_EQ(got_seq, next[flow]) << "flow " << flow << " reordered";
    ++next[flow];
    ++delivered;
  });
  EXPECT_EQ(delivered, kDatagrams);
  EXPECT_EQ(pipe.stats().submitted, static_cast<std::uint64_t>(kDatagrams));
  EXPECT_EQ(pipe.stats().drained, static_cast<std::uint64_t>(kDatagrams));
  EXPECT_EQ(pipe.in_flight(), 0u);
  // Steady-state bursts ride the slab, never the allocator.
  EXPECT_EQ(pipe.buffer_pool().stats().heap_fallbacks, 0u);
}

TEST_F(PipelineTest, DrainAllTerminatesAfterStopWithBacklog) {
  // The regression this PR fixes: stop the pipeline with datagrams still
  // queued in ingress and a result stuck behind a full egress ring, then
  // call drain_all(). Before the fix the queued items were never
  // accounted, in_flight stayed positive and drain_all spun forever.
  PipelineConfig pc;
  pc.workers = 1;
  pc.batch = 2;
  pc.egress_capacity = 1;  // worker wedges on its second accepted result
  DatagramPipeline pipe(receiver_, pc);

  constexpr int kDatagrams = 64;
  std::vector<util::Bytes> wires;
  for (int i = 0; i < kDatagrams; ++i) {
    auto wire = sender_.protect(
        datagram(a_.principal, b_.principal,
                 util::to_bytes(std::to_string(i)), 7),
        true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(std::move(*wire));
  }
  const auto header = header_from(a_.principal, b_.principal);
  EXPECT_EQ(pipe.submit_batch(header, {wires.data(), wires.size()}),
            static_cast<std::size_t>(kDatagrams));

  // Nobody drains. Wait until the worker has accepted two results: with a
  // one-slot egress the second cannot be flushed, so the worker is (or is
  // about to be) blocked in its egress push with the rest still queued.
  while (pipe.stats().accepted.load() < 2) std::this_thread::yield();
  pipe.stop();

  int delivered = 0;
  pipe.drain_all(  // must return, not spin
      [&](const net::Ipv4Header&, util::Bytes) { ++delivered; });

  const auto& s = pipe.stats();
  EXPECT_EQ(pipe.in_flight(), 0u);
  // Exactly the one result that reached the egress ring survives.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(s.drained, 1u);
  EXPECT_GT(s.egress_dropped, 0u);      // accepted work cancelled mid-push
  EXPECT_GT(s.shutdown_discards, 0u);   // ingress backlog accounted
  EXPECT_EQ(s.egress_dropped, s.accepted - s.drained);
  // The conservation equation: every submitted datagram has one terminus.
  EXPECT_EQ(s.submitted, s.backpressure_drops + s.rejected + s.drained +
                             s.egress_dropped + s.shutdown_discards);

  // A submit after stop() is refused and accounted, not lost.
  util::Bytes late = std::move(wires[0]);
  EXPECT_FALSE(pipe.submit(header, std::move(late)));
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kDatagrams) + 1);
  EXPECT_EQ(s.submitted, s.backpressure_drops + s.rejected + s.drained +
                             s.egress_dropped + s.shutdown_discards);

  // And the registry exposes the new termini.
  obs::MetricsRegistry reg;
  pipe.register_metrics(reg, "pipe");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("pipe.egress_dropped"), s.egress_dropped);
  EXPECT_EQ(snap.counters.at("pipe.shutdown_discards"), s.shutdown_discards);
  EXPECT_GE(snap.counters.at("pipe.pool.refills"), 0u);
  EXPECT_GT(snap.gauges.at("pipe.pool.pooled"), 0.0);
}

TEST_F(PipelineTest, BusyClockIsCpuTimeNotWallTime) {
  // The satellite fix: the non-Linux fallback used to be steady_clock wall
  // time, which charged a descheduled worker for its neighbors' cycles and
  // made oversubscribed speedup numbers meaningless. Both remaining
  // regimes are CPU clocks; the name says which one this build got.
#if defined(__linux__)
  EXPECT_EQ(DatagramPipeline::busy_clock(), "thread-cputime");
#else
  EXPECT_EQ(DatagramPipeline::busy_clock(), "process-cputime");
#endif
  PipelineConfig pc;
  pc.workers = 1;
  DatagramPipeline pipe(receiver_, pc);
  obs::MetricsRegistry reg;
  pipe.register_metrics(reg, "pipe");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("pipe.busy_clock_is_thread_cputime"),
            DatagramPipeline::busy_clock() == "thread-cputime" ? 1.0 : 0.0);
}

TEST_F(PipelineTest, WorkerBusyTimeAccumulates) {
  PipelineConfig pc;
  pc.workers = 1;
  DatagramPipeline pipe(receiver_, pc);
  for (int i = 0; i < 32; ++i) {
    const auto wire = sender_.protect(
        datagram(a_.principal, b_.principal, world_.rng.next_bytes(512),
                 static_cast<std::uint16_t>(1 + i)),
        true);
    ASSERT_TRUE(wire.has_value());
    ASSERT_TRUE(pipe.submit(header_from(a_.principal, b_.principal), *wire));
  }
  pipe.drain_all([](const net::Ipv4Header&, util::Bytes) {});
  // 32 DES+MD5 unprotects cannot take zero thread-CPU time.
  EXPECT_GT(pipe.worker_busy_ns(0), 0u);
}

/// Two FBS hosts with the receive pipeline engaged under the IP stack.
class PipelinedIpTest : public ::testing::Test {
 protected:
  PipelinedIpTest()
      : world_(910),
        net_(world_.clock, 77),
        a_node_(world_.add_node("a", "10.0.0.1")),
        b_node_(world_.add_node("b", "10.0.0.2")),
        a_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.1")),
        b_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.2")),
        a_fbs_(a_stack_, config_, *a_node_.keys, world_.clock, world_.rng),
        b_fbs_(b_stack_, config_, *b_node_.keys, world_.clock, world_.rng),
        a_udp_(a_stack_),
        b_udp_(b_stack_) {}

  static IpMappingConfig pipelined_config() {
    IpMappingConfig c;
    c.fbs.shards = 4;
    c.pipeline_workers = 2;
    return c;
  }

  IpMappingConfig config_ = pipelined_config();
  TestWorld world_;
  net::SimNetwork net_;
  TestWorld::Node& a_node_;
  TestWorld::Node& b_node_;
  net::IpStack a_stack_;
  net::IpStack b_stack_;
  FbsIpMapping a_fbs_;
  FbsIpMapping b_fbs_;
  net::UdpService a_udp_;
  net::UdpService b_udp_;
};

TEST_F(PipelinedIpTest, UdpTrafficDeliveredThroughThePipeline) {
  ASSERT_NE(b_fbs_.pipeline(), nullptr);
  std::map<std::string, int> got;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes payload) {
    ++got[std::string(payload.begin(), payload.end())];
  });

  constexpr int kDatagrams = 16;
  for (int i = 0; i < kDatagrams; ++i)
    a_udp_.send(b_stack_.address(), static_cast<std::uint16_t>(5000 + i), 7,
                util::to_bytes("pipelined " + std::to_string(i)));
  net_.run();

  // The stack consumed the datagrams into the pipeline; nothing is
  // delivered until the owner drains from the stack's thread.
  EXPECT_EQ(b_stack_.counters().deferred_in, 16u);
  EXPECT_EQ(b_fbs_.counters().in_deferred, 16u);
  b_fbs_.drain_pipeline_all();

  EXPECT_EQ(got.size(), 16u);
  for (int i = 0; i < kDatagrams; ++i)
    EXPECT_EQ(got["pipelined " + std::to_string(i)], 1) << i;
  EXPECT_EQ(b_fbs_.counters().in_accepted, 16u);
  EXPECT_EQ(b_fbs_.pipeline()->stats().accepted, 16u);
  EXPECT_EQ(b_fbs_.pipeline()->in_flight(), 0u);
}

TEST_F(PipelinedIpTest, TamperedWireRejectedOnAWorkerThread) {
  int delivered = 0;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& frame) {
    if (frame.size() > 40) frame[40] ^= 0x80;
    return net::SimNetwork::TapVerdict::kPass;
  });
  a_udp_.send(b_stack_.address(), 5000, 7, util::to_bytes("payload"));
  net_.run();
  b_fbs_.drain_pipeline_all();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(b_fbs_.counters().in_deferred, 1u);
  EXPECT_EQ(
      b_fbs_.counters()
          .in_rejected[static_cast<std::size_t>(ReceiveError::kBadMac)],
      1u);
  EXPECT_EQ(b_fbs_.counters().in_accepted, 0u);
}

TEST_F(PipelinedIpTest, BypassTrafficStaysSynchronous) {
  // Packets from a bypass host (here: a plain host with no FBS mapping at
  // all, like the certificate directory) never enter the pipeline: the
  // deferred hook hands them back to the synchronous path.
  const auto plain_host = *net::Ipv4Address::parse("10.0.0.100");
  net::IpStack plain_stack(net_, world_.clock, plain_host);
  net::UdpService plain_udp(plain_stack);

  IpMappingConfig cfg = pipelined_config();
  cfg.bypass_hosts = {plain_host};
  net::IpStack stack(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.3"));
  auto& c_node = world_.add_node("c", "10.0.0.3");
  FbsIpMapping c_fbs(stack, cfg, *c_node.keys, world_.clock, world_.rng);
  net::UdpService c_udp(stack);
  util::Bytes got;
  c_udp.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes payload) {
    got = std::move(payload);
  });

  plain_udp.send(stack.address(), 5000, 7, util::to_bytes("bypass hello"));
  net_.run();

  // Delivered with no drain call: the bypass path never left the stack's
  // thread.
  EXPECT_EQ(got, util::to_bytes("bypass hello"));
  EXPECT_EQ(c_fbs.counters().in_deferred, 0u);
  EXPECT_EQ(c_fbs.counters().in_bypassed, 1u);
}

}  // namespace
}  // namespace fbs::core
