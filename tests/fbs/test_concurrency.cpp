// ThreadSanitizer stress suite (ctest label: tsan). Hammers the re-entrant
// engine and the receive pipeline from many threads at once; run under
// -DFBS_TSAN=ON these tests are the data-race detectors for the sharded
// datagram path. The assertions double as conservation checks, so the suite
// is also meaningful in a plain build.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "fbs/engine.hpp"
#include "fbs/pipeline.hpp"
#include "obs/metrics.hpp"
#include "support/world.hpp"
#include "util/ring.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

constexpr int kThreads = 8;

Datagram datagram(const Principal& src, const Principal& dst,
                  util::Bytes body, std::uint16_t sport) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 9;
  d.body = std::move(body);
  return d;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest()
      : world_(1111),
        a_(world_.add_node("a", "10.0.0.1")),
        b_(world_.add_node("b", "10.0.0.2")) {}

  static FbsConfig sharded(std::size_t shards, bool strict_replay = false) {
    FbsConfig config;
    config.shards = shards;
    config.strict_replay = strict_replay;
    return config;
  }

  TestWorld world_;
  TestWorld::Node& a_;
  TestWorld::Node& b_;
};

TEST_F(ConcurrencyTest, ManyFlowsFromManyThreadsAllRoundTrip) {
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8), *b_.keys, world_.clock,
                       world_.rng);
  // Prime the pair master key single-threaded so the threads race on the
  // datagram path, not on the (deliberately serial) keying upcall.
  ASSERT_TRUE(sender
                  .protect(datagram(a_.principal, b_.principal,
                                    util::to_bytes("prime"), 999),
                           true)
                  .has_value());

  constexpr int kPerThread = 200;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      WorkContext send_ctx, recv_ctx;
      util::Bytes wire, body;
      for (int i = 0; i < kPerThread; ++i) {
        // Each thread cycles through its own four flows.
        const auto port = static_cast<std::uint16_t>(1 + t * 4 + i % 4);
        const util::Bytes payload =
            util::to_bytes("t" + std::to_string(t) + " i" + std::to_string(i));
        const Datagram d = datagram(a_.principal, b_.principal, payload, port);
        ASSERT_TRUE(sender.protect_into(send_ctx, d, true, wire));
        const auto outcome =
            receiver.unprotect_into(recv_ctx, a_.principal, wire, body);
        ASSERT_TRUE(std::holds_alternative<ReceivedInfo>(outcome));
        ASSERT_EQ(body, payload);
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(accepted.load(), static_cast<int>(kTotal));
  EXPECT_EQ(sender.send_stats().datagrams, kTotal + 1);  // +1 for the primer
  EXPECT_EQ(receiver.receive_stats().accepted, kTotal);
  EXPECT_EQ(receiver.receive_stats().rejected(), 0u);
}

TEST_F(ConcurrencyTest, OneFlowHammeredFromManyThreads) {
  // Worst case for the domain lock: every thread contends on one shard.
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8), *b_.keys, world_.clock,
                       world_.rng);
  ASSERT_TRUE(sender
                  .protect(datagram(a_.principal, b_.principal,
                                    util::to_bytes("prime"), 7),
                           true)
                  .has_value());

  constexpr int kPerThread = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      WorkContext send_ctx, recv_ctx;
      util::Bytes wire, body;
      const util::Bytes payload = util::to_bytes("same flow");
      const Datagram d = datagram(a_.principal, b_.principal, payload, 7);
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(sender.protect_into(send_ctx, d, true, wire));
        const auto outcome =
            receiver.unprotect_into(recv_ctx, a_.principal, wire, body);
        ASSERT_TRUE(std::holds_alternative<ReceivedInfo>(outcome));
        ASSERT_EQ(body, payload);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(receiver.receive_stats().accepted,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // One flow, one key derivation -- the cached context served every thread.
  EXPECT_EQ(sender.send_stats().flow_keys_derived, 1u);
}

TEST_F(ConcurrencyTest, ConcurrentReplayAcceptedExactlyOnce) {
  // The satellite fix under test: replay check+commit is one atomic step
  // under the shard lock, so the same strict-replay wire racing itself from
  // eight threads is accepted exactly once.
  FbsEndpoint sender(a_.principal, sharded(8), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8, /*strict_replay=*/true),
                       *b_.keys, world_.clock, world_.rng);
  const auto wire = sender.protect(
      datagram(a_.principal, b_.principal, util::to_bytes("exactly once"), 1),
      true);
  ASSERT_TRUE(wire.has_value());

  std::atomic<int> accepted{0}, replays{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      WorkContext ctx;
      util::Bytes body;
      const auto outcome =
          receiver.unprotect_into(ctx, a_.principal, *wire, body);
      if (std::holds_alternative<ReceivedInfo>(outcome))
        accepted.fetch_add(1, std::memory_order_relaxed);
      else if (std::get<ReceiveError>(outcome) == ReceiveError::kReplay)
        replays.fetch_add(1, std::memory_order_relaxed);
      else
        other.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(accepted.load(), 1);
  EXPECT_EQ(replays.load(), kThreads - 1);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(receiver.receive_stats().accepted, 1u);
  EXPECT_EQ(receiver.receive_stats().rejected_replay,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST_F(ConcurrencyTest, SflAllocationUniqueAcrossThreads) {
  SflAllocator alloc(world_.rng);
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Sfl>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) seen[t].push_back(alloc.allocate());
    });
  }
  for (auto& t : threads) t.join();
  std::set<Sfl> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(ConcurrencyTest, ConcurrentSubmittersThroughThePipeline) {
  FbsEndpoint sender(a_.principal, FbsConfig{}, *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8), *b_.keys, world_.clock,
                       world_.rng);
  PipelineConfig pc;
  pc.workers = 4;
  DatagramPipeline pipe(receiver, pc);

  // Pre-protect the wires so the submitter threads do nothing but submit.
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 100;
  std::vector<std::vector<util::Bytes>> wires(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s)
    for (int i = 0; i < kPerSubmitter; ++i) {
      const auto wire = sender.protect(
          datagram(a_.principal, b_.principal, world_.rng.next_bytes(64),
                   static_cast<std::uint16_t>(1 + s * kPerSubmitter + i)),
          true);
      ASSERT_TRUE(wire.has_value());
      wires[s].push_back(*wire);
    }

  net::Ipv4Header h;
  h.protocol = 17;
  h.source = a_.principal.ipv4();
  h.destination = b_.principal.ipv4();

  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (auto& wire : wires[s])
        if (pipe.submit(h, std::move(wire)))
          pushed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::atomic<std::uint64_t> delivered{0};
  // Drain concurrently with submission: drain() is single-consumer but may
  // overlap submit()/workers freely.
  while (delivered.load(std::memory_order_relaxed) +
             pipe.stats().backpressure_drops.load() +
             pipe.stats().rejected.load() <
         static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter) {
    pipe.drain([&](const net::Ipv4Header&, util::Bytes) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::yield();
  }
  for (auto& t : submitters) t.join();

  // Conservation: submitted == accepted + rejected + backpressure drops,
  // and everything accepted was drained.
  const auto& st = pipe.stats();
  EXPECT_EQ(st.submitted.load(),
            static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter);
  EXPECT_EQ(st.rejected.load(), 0u);
  EXPECT_EQ(st.submitted.load(),
            st.accepted.load() + st.rejected.load() +
                st.backpressure_drops.load());
  EXPECT_EQ(delivered.load(), st.accepted.load());
  EXPECT_EQ(pushed.load(), st.accepted.load());
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST_F(ConcurrencyTest, ConcurrentBatchProducersKeepPerProducerFifo) {
  // The batched ring entry points under producer contention: every thread
  // pushes bursts of mixed sizes with push_wait_batch while one consumer
  // drains with pop_batch. Nothing may be lost, duplicated or reordered
  // within a producer.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 3000;
  util::BoundedMpscRing<int> ring(64);
  std::atomic<bool> cancel{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> burst;
      int next = 0;
      while (next < kPerProducer) {
        // Burst sizes 1..13 -- wider than a ring's free space at times, so
        // push_wait_batch exercises its chunked blocking path.
        const int n = std::min(kPerProducer - next, 1 + (next % 13));
        burst.clear();
        for (int i = 0; i < n; ++i)
          burst.push_back(p * kPerProducer + next++);
        ASSERT_EQ(ring.push_wait_batch({burst.data(), burst.size()}, cancel),
                  burst.size());
      }
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  std::vector<int> popped;
  popped.reserve(32);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    popped.clear();
    const std::size_t n = ring.pop_batch(popped, 32);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const int v : popped) {
      const int producer = v / kPerProducer;
      const int seq = v % kPerProducer;
      ASSERT_GT(seq, last_seen[producer]);
      last_seen[producer] = seq;
    }
    received += static_cast<int>(n);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.cancelled_dropped(), 0u);
}

TEST_F(ConcurrencyTest, ConcurrentBatchSubmittersThroughThePipeline) {
  // submit_batch from several threads racing the workers and a concurrent
  // batched drain: the TSan detector for the new grouped-ingress path.
  FbsEndpoint sender(a_.principal, FbsConfig{}, *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8), *b_.keys, world_.clock,
                       world_.rng);
  PipelineConfig pc;
  pc.workers = 4;
  pc.batch = 8;
  DatagramPipeline pipe(receiver, pc);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 96;
  std::vector<std::vector<util::Bytes>> wires(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s)
    for (int i = 0; i < kPerSubmitter; ++i) {
      const auto wire = sender.protect(
          datagram(a_.principal, b_.principal, world_.rng.next_bytes(64),
                   static_cast<std::uint16_t>(1 + (s * kPerSubmitter + i) % 32)),
          true);
      ASSERT_TRUE(wire.has_value());
      wires[s].push_back(*wire);
    }

  net::Ipv4Header h;
  h.protocol = 17;
  h.source = a_.principal.ipv4();
  h.destination = b_.principal.ipv4();

  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      auto& mine = wires[s];
      for (std::size_t at = 0; at < mine.size(); at += 10) {
        const std::size_t n = std::min<std::size_t>(10, mine.size() - at);
        pushed.fetch_add(pipe.submit_batch(h, {mine.data() + at, n}),
                         std::memory_order_relaxed);
      }
    });
  }
  std::atomic<std::uint64_t> delivered{0};
  while (delivered.load(std::memory_order_relaxed) +
             pipe.stats().backpressure_drops.load() +
             pipe.stats().rejected.load() <
         static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter) {
    pipe.drain([&](const net::Ipv4Header&, util::Bytes) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::yield();
  }
  for (auto& t : submitters) t.join();

  const auto& st = pipe.stats();
  EXPECT_EQ(st.submitted.load(),
            static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter);
  EXPECT_EQ(st.rejected.load(), 0u);
  EXPECT_EQ(st.submitted.load(), st.accepted.load() + st.rejected.load() +
                                     st.backpressure_drops.load());
  EXPECT_EQ(delivered.load(), st.accepted.load());
  EXPECT_EQ(pushed.load(), st.accepted.load());
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.buffer_pool().stats().heap_fallbacks, 0u);
}

TEST_F(ConcurrencyTest, StopRacingBatchSubmittersStaysConserved) {
  // The shutdown-accounting fix under fire: stop() lands while batch
  // submitters are mid-burst and nobody has drained. drain_all() must
  // terminate and the conservation equation must balance no matter where
  // each datagram was caught.
  FbsEndpoint sender(a_.principal, FbsConfig{}, *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(8), *b_.keys, world_.clock,
                       world_.rng);
  PipelineConfig pc;
  pc.workers = 2;
  pc.batch = 4;
  pc.egress_capacity = 2;  // tiny: workers wedge on egress fast
  DatagramPipeline pipe(receiver, pc);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 64;
  std::vector<std::vector<util::Bytes>> wires(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s)
    for (int i = 0; i < kPerSubmitter; ++i) {
      const auto wire = sender.protect(
          datagram(a_.principal, b_.principal, world_.rng.next_bytes(32),
                   static_cast<std::uint16_t>(1 + i % 16)),
          true);
      ASSERT_TRUE(wire.has_value());
      wires[s].push_back(*wire);
    }

  net::Ipv4Header h;
  h.protocol = 17;
  h.source = a_.principal.ipv4();
  h.destination = b_.principal.ipv4();

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      auto& mine = wires[s];
      for (std::size_t at = 0; at < mine.size(); at += 8)
        pipe.submit_batch(h, {mine.data() + at,
                              std::min<std::size_t>(8, mine.size() - at)});
    });
  }
  // Stop as soon as some work is in the system; submitters keep racing.
  while (pipe.stats().accepted.load() < 2) std::this_thread::yield();
  pipe.stop();
  for (auto& t : submitters) t.join();

  std::uint64_t delivered = 0;
  pipe.drain_all([&](const net::Ipv4Header&, util::Bytes) { ++delivered; });

  const auto& st = pipe.stats();
  EXPECT_EQ(st.submitted.load(),
            static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter);
  EXPECT_EQ(st.submitted.load(),
            st.backpressure_drops.load() + st.rejected.load() +
                st.drained.load() + st.egress_dropped.load() +
                st.shutdown_discards.load());
  EXPECT_EQ(st.accepted.load(),
            st.drained.load() + st.egress_dropped.load());
  EXPECT_EQ(st.drained.load(), delivered);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST_F(ConcurrencyTest, MetricsSnapshotsRaceTrafficSafely) {
  FbsEndpoint sender(a_.principal, sharded(4), *a_.keys, world_.clock,
                     world_.rng);
  FbsEndpoint receiver(b_.principal, sharded(4), *b_.keys, world_.clock,
                       world_.rng);
  ASSERT_TRUE(sender
                  .protect(datagram(a_.principal, b_.principal,
                                    util::to_bytes("prime"), 999),
                           true)
                  .has_value());
  obs::MetricsRegistry reg;
  sender.register_metrics(reg, "send");
  receiver.register_metrics(reg, "recv");

  std::atomic<bool> done{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 4; ++t) {
    traffic.emplace_back([&, t] {
      WorkContext send_ctx, recv_ctx;
      util::Bytes wire, body;
      for (int i = 0; i < 300; ++i) {
        const Datagram d =
            datagram(a_.principal, b_.principal, util::to_bytes("m"),
                     static_cast<std::uint16_t>(1 + t));
        ASSERT_TRUE(sender.protect_into(send_ctx, d, true, wire));
        ASSERT_TRUE(std::holds_alternative<ReceivedInfo>(
            receiver.unprotect_into(recv_ctx, a_.principal, wire, body)));
      }
    });
  }
  // Snapshot continuously while the traffic runs; accepted must be
  // monotonic across snapshots (the aggregators lock each domain).
  std::uint64_t last = 0;
  while (!done.load(std::memory_order_relaxed)) {
    const auto snap = reg.snapshot();
    const auto it = snap.counters.find("recv.recv.accepted");
    ASSERT_NE(it, snap.counters.end());
    EXPECT_GE(it->second, last);
    last = it->second;
    if (last >= 4 * 300) break;
  }
  for (auto& t : traffic) t.join();
  EXPECT_EQ(receiver.receive_stats().accepted, 4u * 300u);
}

}  // namespace
}  // namespace fbs::core
