// Tests for the paper's "policy" features realized as engine extensions:
// key-lifetime rekeying (Section 5.2), raw-IP host-level flows (footnote
// 10), and the NullMac NOP configuration used by the Figure 8 bench.
#include <gtest/gtest.h>

#include "fbs/ip_map.hpp"
#include "net/simnet.hpp"
#include "net/icmp.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram datagram(const Principal& src, const Principal& dst,
                  std::size_t size) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = 1000;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = 2000;
  d.body = util::Bytes(size, 'k');
  return d;
}

class LifetimeTest : public ::testing::Test {
 protected:
  LifetimeTest() : world_(1111) {
    world_.add_node("a", "10.0.0.1");
    world_.add_node("b", "10.0.0.2");
  }

  FbsEndpoint make_sender(const FbsConfig& cfg) {
    auto& a = world_["a"];
    return FbsEndpoint(a.principal, cfg, *a.keys, world_.clock, world_.rng);
  }

  Sfl sfl_of(const util::Bytes& wire) {
    return FbsHeader::parse(wire)->header.sfl;
  }

  TestWorld world_;
};

TEST_F(LifetimeTest, RekeyAfterDatagramCount) {
  FbsConfig cfg;
  cfg.rekey_after_datagrams = 5;
  auto sender = make_sender(cfg);
  const Datagram d = datagram(world_["a"].principal, world_["b"].principal, 64);

  std::set<Sfl> sfls;
  for (int i = 0; i < 12; ++i) sfls.insert(sfl_of(*sender.protect(d, false)));
  // 12 datagrams at 5 per key -> 3 distinct flows.
  EXPECT_EQ(sfls.size(), 3u);
  EXPECT_EQ(sender.send_stats().lifetime_rekeys, 2u);
}

TEST_F(LifetimeTest, RekeyAfterByteCount) {
  FbsConfig cfg;
  cfg.rekey_after_bytes = 10'000;
  auto sender = make_sender(cfg);
  const Datagram d =
      datagram(world_["a"].principal, world_["b"].principal, 4000);

  std::set<Sfl> sfls;
  for (int i = 0; i < 6; ++i) sfls.insert(sfl_of(*sender.protect(d, false)));
  // 4000B each, limit 10KB: rekey roughly every 3 datagrams.
  EXPECT_GE(sfls.size(), 2u);
  EXPECT_GE(sender.send_stats().lifetime_rekeys, 1u);
}

TEST_F(LifetimeTest, RekeyAfterAge) {
  FbsConfig cfg;
  cfg.rekey_after_age = util::seconds(100);
  auto sender = make_sender(cfg);
  const Datagram d = datagram(world_["a"].principal, world_["b"].principal, 8);

  const Sfl first = sfl_of(*sender.protect(d, false));
  world_.clock.advance(util::seconds(50));
  EXPECT_EQ(sfl_of(*sender.protect(d, false)), first);  // young key
  world_.clock.advance(util::seconds(51));
  EXPECT_NE(sfl_of(*sender.protect(d, false)), first);  // worn out
  EXPECT_EQ(sender.send_stats().lifetime_rekeys, 1u);
}

TEST_F(LifetimeTest, NoPolicyNeverRekeys) {
  FbsConfig cfg;  // all limits zero
  auto sender = make_sender(cfg);
  const Datagram d = datagram(world_["a"].principal, world_["b"].principal, 64);
  std::set<Sfl> sfls;
  for (int i = 0; i < 50; ++i) sfls.insert(sfl_of(*sender.protect(d, false)));
  EXPECT_EQ(sfls.size(), 1u);
  EXPECT_EQ(sender.send_stats().lifetime_rekeys, 0u);
}

TEST_F(LifetimeTest, ReceiverFollowsRekeysWithoutCoordination) {
  FbsConfig cfg;
  cfg.rekey_after_datagrams = 3;
  auto sender = make_sender(cfg);
  auto& b = world_["b"];
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world_.clock,
                       world_.rng);
  const Datagram d = datagram(world_["a"].principal, b.principal, 32);
  for (int i = 0; i < 10; ++i) {
    auto wire = sender.protect(d, true);
    ASSERT_TRUE(wire.has_value());
    auto outcome = receiver.unprotect(world_["a"].principal, *wire);
    ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome)) << i;
  }
  EXPECT_EQ(receiver.receive_stats().accepted, 10u);
  // Receiver derived one key per flow the sender created.
  EXPECT_EQ(receiver.receive_stats().flow_keys_derived,
            sender.send_stats().flow_keys_derived);
}

TEST_F(LifetimeTest, SplitModeAlsoRekeysByCount) {
  FbsConfig cfg;
  cfg.combined_fst_tfkc = false;
  cfg.rekey_after_datagrams = 4;
  auto sender = make_sender(cfg);
  const Datagram d = datagram(world_["a"].principal, world_["b"].principal, 8);
  std::set<Sfl> sfls;
  for (int i = 0; i < 8; ++i) sfls.insert(sfl_of(*sender.protect(d, false)));
  EXPECT_EQ(sfls.size(), 2u);
  EXPECT_EQ(sender.send_stats().lifetime_rekeys, 1u);
}

TEST_F(LifetimeTest, SplitModeRekeysByByteCount) {
  // Regression: the split-path worn check tested datagrams and age but not
  // bytes, so a bytes-only policy silently never rekeyed outside combined
  // mode. With 4000B datagrams and a 10KB limit the FAM entry crosses the
  // limit at the 3rd datagram, so the 4th starts a fresh flow.
  FbsConfig cfg;
  cfg.combined_fst_tfkc = false;
  cfg.rekey_after_bytes = 10'000;
  auto sender = make_sender(cfg);
  const Datagram d =
      datagram(world_["a"].principal, world_["b"].principal, 4000);
  std::set<Sfl> sfls;
  for (int i = 0; i < 6; ++i) sfls.insert(sfl_of(*sender.protect(d, false)));
  EXPECT_EQ(sfls.size(), 2u);
  EXPECT_GE(sender.send_stats().lifetime_rekeys, 1u);
}

TEST_F(LifetimeTest, BytesOnlyRekeyMatchesAcrossModes) {
  // The same bytes-only policy must behave in both table organizations.
  for (const bool combined : {true, false}) {
    FbsConfig cfg;
    cfg.combined_fst_tfkc = combined;
    cfg.rekey_after_bytes = 1'000;
    auto sender = make_sender(cfg);
    const Datagram d =
        datagram(world_["a"].principal, world_["b"].principal, 600);
    std::set<Sfl> sfls;
    for (int i = 0; i < 6; ++i)
      sfls.insert(sfl_of(*sender.protect(d, false)));
    // 600B each, limit 1KB: every second datagram wears the key out.
    EXPECT_EQ(sfls.size(), 3u) << (combined ? "combined" : "split");
    EXPECT_EQ(sender.send_stats().lifetime_rekeys, 2u)
        << (combined ? "combined" : "split");
  }
}

class RawIpTest : public ::testing::Test {
 protected:
  RawIpTest()
      : world_(2222),
        net_(world_.clock, 14),
        a_node_(world_.add_node("a", "10.0.0.1")),
        b_node_(world_.add_node("b", "10.0.0.2")),
        a_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.1")),
        b_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.2")) {}

  static IpMappingConfig raw_config() {
    IpMappingConfig cfg;
    cfg.protect_raw_ip = true;
    return cfg;
  }

  TestWorld world_;
  net::SimNetwork net_;
  TestWorld::Node& a_node_;
  TestWorld::Node& b_node_;
  net::IpStack a_stack_;
  net::IpStack b_stack_;
};

TEST_F(RawIpTest, PingWorksUnderHostLevelProtection) {
  FbsIpMapping a_fbs(a_stack_, raw_config(), *a_node_.keys, world_.clock,
                     world_.rng);
  FbsIpMapping b_fbs(b_stack_, raw_config(), *b_node_.keys, world_.clock,
                     world_.rng);
  net::IcmpService a_icmp(a_stack_, world_.clock);
  net::IcmpService b_icmp(b_stack_, world_.clock);

  int replies = 0;
  a_icmp.on_echo_reply([&](net::Ipv4Address, std::uint16_t, util::TimeUs) {
    ++replies;
  });
  a_icmp.ping(b_stack_.address(), 1);
  a_icmp.ping(b_stack_.address(), 2);
  net_.run();
  EXPECT_EQ(replies, 2);
  // ICMP was protected, not passed raw.
  EXPECT_EQ(a_fbs.counters().out_raw_ip, 0u);
  EXPECT_GE(a_fbs.counters().out_protected, 2u);
  // Both pings rode ONE host-level flow.
  EXPECT_EQ(a_fbs.endpoint().send_stats().flow_keys_derived, 1u);
}

TEST_F(RawIpTest, IcmpCiphertextOnTheWire) {
  FbsIpMapping a_fbs(a_stack_, raw_config(), *a_node_.keys, world_.clock,
                     world_.rng);
  FbsIpMapping b_fbs(b_stack_, raw_config(), *b_node_.keys, world_.clock,
                     world_.rng);
  net::IcmpService a_icmp(a_stack_, world_.clock);
  net::IcmpService b_icmp(b_stack_, world_.clock);

  const util::Bytes marker = util::to_bytes("SECRET-PING-PAYLOAD");
  bool leaked = false;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& f) {
    if (std::search(f.begin(), f.end(), marker.begin(), marker.end()) !=
        f.end())
      leaked = true;
    return net::SimNetwork::TapVerdict::kPass;
  });
  a_icmp.ping(b_stack_.address(), 9, marker);
  net_.run();
  EXPECT_FALSE(leaked);
}

TEST_F(RawIpTest, DefaultConfigStillPassesRawThrough) {
  FbsIpMapping a_fbs(a_stack_, IpMappingConfig{}, *a_node_.keys, world_.clock,
                     world_.rng);
  FbsIpMapping b_fbs(b_stack_, IpMappingConfig{}, *b_node_.keys, world_.clock,
                     world_.rng);
  net::IcmpService a_icmp(a_stack_, world_.clock);
  net::IcmpService b_icmp(b_stack_, world_.clock);
  int replies = 0;
  a_icmp.on_echo_reply([&](net::Ipv4Address, std::uint16_t, util::TimeUs) {
    ++replies;
  });
  a_icmp.ping(b_stack_.address(), 1);
  net_.run();
  EXPECT_EQ(replies, 1);
  EXPECT_GE(a_fbs.counters().out_raw_ip, 1u);
  EXPECT_EQ(a_fbs.counters().out_protected, 0u);
}

TEST(NullMacSuite, NopConfigurationRoundTrips) {
  // The Figure 8 "FBS NOP" config: header processing intact, crypto
  // nullified. Must round-trip (it measures protocol overhead) but offers
  // no integrity.
  TestWorld world(3333);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig cfg;
  cfg.suite.mac = crypto::MacAlgorithm::kNull;
  cfg.suite.cipher = crypto::CipherAlgorithm::kNone;
  FbsEndpoint sender(a.principal, cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint receiver(b.principal, cfg, *b.keys, world.clock, world.rng);

  Datagram d = datagram(a.principal, b.principal, 100);
  const auto wire = sender.protect(d, false);
  ASSERT_TRUE(wire.has_value());
  // Same wire size as the real MD5 suite: fair overhead comparison.
  EXPECT_EQ(wire->size(), d.body.size() + FbsHeader::overhead({}));
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  EXPECT_EQ(std::get<ReceivedDatagram>(outcome).datagram.body, d.body);
}

}  // namespace
}  // namespace fbs::core
