// Hierarchical trust end-to-end: principals certified by an organizational
// CA whose authority chains back to a root -- the "distributed
// certification hierarchy" of Section 5.2, wired into the master key
// daemon via cert::ChainVerifier.
#include <gtest/gtest.h>

#include "crypto/dh.hpp"
#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

struct HierarchicalWorld {
  HierarchicalWorld()
      : rng(12121),
        clock(util::minutes(2000)),
        root(512, rng),
        org(512, rng),
        delegation(root.delegate(org, util::to_bytes("org-ca"), 0,
                                 clock.now() + util::minutes(100000))),
        verifier(root.public_key(), {delegation}) {}

  struct Node {
    Principal principal;
    std::unique_ptr<MasterKeyDaemon> mkd;
    std::unique_ptr<KeyManager> keys;
  };

  Node enroll(const char* ip) {
    Node n;
    n.principal = Principal::from_ipv4(*net::Ipv4Address::parse(ip));
    const auto& group = crypto::test_group();
    const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
    // Principal certificates are issued by the ORG CA, not the root.
    directory.publish(org.issue(
        n.principal.address, group.name,
        dh.public_value.to_bytes_be(group.element_size()), 0,
        clock.now() + util::minutes(100000)));
    n.mkd = std::make_unique<MasterKeyDaemon>(n.principal, dh.private_value,
                                              group, verifier, directory,
                                              clock);
    n.keys = std::make_unique<KeyManager>(*n.mkd);
    return n;
  }

  util::SplitMix64 rng;
  util::VirtualClock clock;
  cert::CertificateAuthority root;
  cert::CertificateAuthority org;
  cert::PublicValueCertificate delegation;
  cert::ChainVerifier verifier;
  cert::DirectoryService directory;
};

TEST(Hierarchy, EndToEndUnderOrgCa) {
  HierarchicalWorld world;
  auto a = world.enroll("10.0.0.1");
  auto b = world.enroll("10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);

  Datagram d;
  d.source = a.principal;
  d.destination = b.principal;
  d.attrs.source_port = 1;
  d.attrs.destination_port = 2;
  d.body = util::to_bytes("chained trust");
  const auto wire = sender.protect(d, true);
  ASSERT_TRUE(wire.has_value());
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  EXPECT_EQ(std::get<ReceivedDatagram>(outcome).datagram.body, d.body);
}

TEST(Hierarchy, RogueCaCertificateRejected) {
  HierarchicalWorld world;
  auto a = world.enroll("10.0.0.1");

  // Mallory runs her own CA (no delegation from the root) and publishes a
  // certificate for a victim address with HER public value.
  util::SplitMix64 mrng(666);
  cert::CertificateAuthority mallory_ca(512, mrng);
  const auto& group = crypto::test_group();
  const crypto::DhKeyPair mallory_dh = crypto::dh_generate(group, mrng);
  const Principal victim =
      Principal::from_ipv4(*net::Ipv4Address::parse("10.0.0.9"));
  world.directory.publish(mallory_ca.issue(
      victim.address, group.name,
      mallory_dh.public_value.to_bytes_be(group.element_size()), 0,
      world.clock.now() + util::minutes(100000)));

  // a's MKD must refuse the impostor certificate: the chain verifier only
  // accepts leaves signed by the delegated org key.
  EXPECT_FALSE(a.keys->master_key(victim).has_value());
  EXPECT_GE(a.mkd->stats().verify_failures, 1u);
}

TEST(Hierarchy, RootIssuedLeafRejectedByChainVerifier) {
  // Discipline cuts both ways: this verifier expects leaves from the org
  // CA; a leaf signed directly by the root does not match the chain.
  HierarchicalWorld world;
  auto a = world.enroll("10.0.0.1");
  const auto& group = crypto::test_group();
  util::SplitMix64 rng(7);
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  const Principal direct =
      Principal::from_ipv4(*net::Ipv4Address::parse("10.0.0.8"));
  world.directory.publish(world.root.issue(
      direct.address, group.name,
      dh.public_value.to_bytes_be(group.element_size()), 0,
      world.clock.now() + util::minutes(100000)));
  EXPECT_FALSE(a.keys->master_key(direct).has_value());
}

}  // namespace
}  // namespace fbs::core
