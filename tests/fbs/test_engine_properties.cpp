// Property-style sweeps over the protocol engine: payload sizes, suite/key
// independence across peers, clock skew, confounder uniqueness, and
// recovery behaviour around certificate-directory failures.
#include <gtest/gtest.h>

#include <set>

#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram datagram(const Principal& src, const Principal& dst,
                  util::Bytes body, std::uint16_t sport = 7,
                  std::uint16_t dport = 9) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_address = src.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = dst.ipv4().value;
  d.attrs.destination_port = dport;
  d.body = std::move(body);
  return d;
}

class PayloadSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(PayloadSweep, RoundTripAtEverySize) {
  const auto [size, secret] = GetParam();
  TestWorld world(size * 2 + secret);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);

  const util::Bytes body = world.rng.next_bytes(size);
  const auto wire = sender.protect(
      datagram(a.principal, b.principal, body), secret);
  ASSERT_TRUE(wire.has_value());
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  EXPECT_EQ(std::get<ReceivedDatagram>(outcome).datagram.body, body);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PayloadSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u,
                                         1408u, 8192u, 65536u),
                       ::testing::Bool()));

TEST(EngineProperties, OakleyGroup2KeyingAgrees) {
  // Full-strength 1024-bit group end to end (slow; one test only).
  TestWorld world(51, crypto::oakley_group2());
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);
  const auto wire = sender.protect(
      datagram(a.principal, b.principal, util::to_bytes("1024-bit modp")),
      true);
  ASSERT_TRUE(wire.has_value());
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
}

TEST(EngineProperties, ManyPeersIndependentKeys) {
  TestWorld world(52);
  auto& hub = world.add_node("hub", "10.0.0.1");
  FbsEndpoint sender(hub.principal, FbsConfig{}, *hub.keys, world.clock,
                     world.rng);
  // unique_ptr: the sharded endpoint owns mutexes and is pinned in place.
  std::vector<std::unique_ptr<FbsEndpoint>> receivers;
  std::vector<Principal> peers;
  for (int i = 0; i < 8; ++i) {
    auto& node = world.add_node("peer" + std::to_string(i),
                                "10.0.1." + std::to_string(i + 1));
    receivers.push_back(std::make_unique<FbsEndpoint>(
        node.principal, FbsConfig{}, *node.keys, world.clock, world.rng));
    peers.push_back(node.principal);
  }
  // One datagram to each peer; each receiver accepts its own and its own
  // only (cross-delivery must fail on the wrong pair key).
  std::vector<util::Bytes> wires;
  for (int i = 0; i < 8; ++i) {
    const auto wire = sender.protect(
        datagram(hub.principal, peers[i],
                 util::to_bytes("for peer " + std::to_string(i))),
        true);
    ASSERT_TRUE(wire.has_value());
    wires.push_back(*wire);
  }
  for (int i = 0; i < 8; ++i) {
    auto own = receivers[i]->unprotect(hub.principal, wires[i]);
    EXPECT_TRUE(std::holds_alternative<ReceivedDatagram>(own)) << i;
    auto crossed =
        receivers[(i + 1) % 8]->unprotect(hub.principal, wires[i]);
    EXPECT_TRUE(std::holds_alternative<ReceiveError>(crossed)) << i;
  }
}

TEST(EngineProperties, ConfounderNeverRepeatsOverManyDatagrams) {
  TestWorld world(53);
  auto& a = world.add_node("a", "10.0.0.1");
  world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  const Datagram d =
      datagram(a.principal, world["b"].principal, util::to_bytes("x"));
  std::set<std::uint32_t> confounders;
  constexpr int kDatagrams = 5000;
  for (int i = 0; i < kDatagrams; ++i) {
    const auto wire = sender.protect(d, false);
    confounders.insert(FbsHeader::parse(*wire)->header.confounder);
  }
  // Statistically random 32-bit values: collisions in 5000 draws are
  // possible but should be at most a couple (birthday bound ~0.3%).
  EXPECT_GE(confounders.size(), static_cast<std::size_t>(kDatagrams - 2));
}

TEST(EngineProperties, SenderClockSkewWithinWindowTolerated) {
  TestWorld world(54);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  // Sender's clock runs 4 minutes ahead of the receiver's.
  util::VirtualClock sender_clock(world.clock.now() + util::minutes(4));
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, sender_clock,
                     world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);
  const auto wire = sender.protect(
      datagram(a.principal, b.principal, util::to_bytes("skewed")), false);
  auto outcome = receiver.unprotect(a.principal, *wire);
  EXPECT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
}

TEST(EngineProperties, SenderClockSkewBeyondWindowRejected) {
  TestWorld world(55);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  util::VirtualClock sender_clock(world.clock.now() + util::minutes(7));
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, sender_clock,
                     world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);
  const auto wire = sender.protect(
      datagram(a.principal, b.principal, util::to_bytes("too skewed")),
      false);
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  EXPECT_EQ(std::get<ReceiveError>(outcome), ReceiveError::kStale);
}

TEST(EngineProperties, DirectoryOutageFailsClosedThenRecovers) {
  TestWorld world(56);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  const Datagram d =
      datagram(a.principal, b.principal, util::to_bytes("x"));

  // Outage before first contact: no certificate -> fail closed, and the
  // peer is negative-cached as unresolvable.
  const auto cert = *world.directory.fetch(b.principal.address);
  world.directory.revoke(b.principal.address);
  EXPECT_FALSE(sender.protect(d, true).has_value());
  EXPECT_EQ(sender.send_stats().key_unavailable, 1u);
  EXPECT_EQ(a.mkd->stats().negative_cache_inserts, 1u);

  // Directory comes back: while the negative-cache entry lives, sends still
  // fail without hammering the directory (upcall-storm protection)...
  world.directory.publish(cert);
  const auto fetches = a.mkd->stats().directory_fetches;
  EXPECT_FALSE(sender.protect(d, true).has_value());
  EXPECT_EQ(a.mkd->stats().directory_fetches, fetches);
  EXPECT_GE(a.mkd->stats().negative_cache_hits, 1u);

  // ...and once it expires, the next datagram succeeds -- no restart.
  world.clock.advance(a.mkd->retry_policy().negative_ttl);
  EXPECT_TRUE(sender.protect(d, true).has_value());
}

TEST(EngineProperties, MasterKeyCachedAcrossDirectoryOutage) {
  // Once the pair key is cached, a directory outage is invisible (soft
  // state degrades gracefully, it does not fail).
  TestWorld world(57);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  const Datagram d =
      datagram(a.principal, b.principal, util::to_bytes("x"));
  ASSERT_TRUE(sender.protect(d, true).has_value());  // primes MKC
  world.directory.revoke(b.principal.address);
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(sender.protect(d, true).has_value());
}

TEST(EngineProperties, PerKindRejectionCountersMatchNamedFields) {
  TestWorld world(59);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);
  auto wire = *sender.protect(
      datagram(a.principal, b.principal, util::to_bytes("payload")), false);
  wire.back() ^= 0x01;  // tamper with the body
  const auto outcome = receiver.unprotect(a.principal, wire);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  EXPECT_EQ(std::get<ReceiveError>(outcome), ReceiveError::kBadMac);

  const ReceiveStats& rs = receiver.receive_stats();
  EXPECT_EQ(rs.rejected_by(ReceiveError::kBadMac), 1u);
  EXPECT_EQ(rs.rejected_by(ReceiveError::kBadMac), rs.rejected_bad_mac);
  std::uint64_t by_kind_total = 0;
  for (std::size_t k = 0; k < kReceiveErrorKinds; ++k)
    by_kind_total += rs.by_kind[k];
  EXPECT_EQ(by_kind_total, rs.rejected());
}

TEST(EngineProperties, WireSizeIsDeterministicPerSuite) {
  TestWorld world(58);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsEndpoint sender(a.principal, FbsConfig{}, *a.keys, world.clock,
                     world.rng);
  // Plain mode: overhead exactly header size, independent of content.
  for (std::size_t n : {0u, 13u, 100u}) {
    const auto wire = sender.protect(
        datagram(a.principal, b.principal, world.rng.next_bytes(n)), false);
    EXPECT_EQ(wire->size(), n + sender.header_overhead());
  }
  // Secret mode: header + padded body, never more than max_wire_overhead.
  for (std::size_t n : {0u, 13u, 100u}) {
    const auto wire = sender.protect(
        datagram(a.principal, b.principal, world.rng.next_bytes(n)), true);
    EXPECT_GT(wire->size(), n + sender.header_overhead());
    EXPECT_LE(wire->size(), n + sender.max_wire_overhead());
  }
}

}  // namespace
}  // namespace fbs::core
