// Section 6 / Section 7.1 attack analysis, executed against the real
// protocol engine: cut-and-paste, flow-key compromise containment, the
// port-reuse attack and its countermeasure.
#include <gtest/gtest.h>

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

class AttackTest : public ::testing::Test {
 protected:
  AttackTest() : world_(606) {
    auto& a = world_.add_node("alice", "10.0.0.1");
    auto& b = world_.add_node("bob", "10.0.0.2");
    alice_ = std::make_unique<FbsEndpoint>(a.principal, config_, *a.keys,
                                           world_.clock, world_.rng);
    bob_ = std::make_unique<FbsEndpoint>(b.principal, config_, *b.keys,
                                         world_.clock, world_.rng);
  }

  Datagram flow_datagram(std::uint16_t sport, std::uint16_t dport,
                         const std::string& body) {
    Datagram d;
    d.source = alice_->self();
    d.destination = bob_->self();
    d.attrs.protocol = 17;
    d.attrs.source_address = d.source.ipv4().value;
    d.attrs.source_port = sport;
    d.attrs.destination_address = d.destination.ipv4().value;
    d.attrs.destination_port = dport;
    d.body = util::to_bytes(body);
    return d;
  }

  FbsConfig config_;
  TestWorld world_;
  std::unique_ptr<FbsEndpoint> alice_;
  std::unique_ptr<FbsEndpoint> bob_;
};

TEST_F(AttackTest, CutAndPasteAcrossFlowsRejected) {
  // Splice the encrypted body of flow A into the header of flow B. Flow
  // keys differ, so the MAC cannot verify -- this is the attack raw
  // host-pair keying falls to (Section 2.2) and FBS resists.
  const auto wire_a = alice_->protect(flow_datagram(1000, 7, "flow A data"),
                                      true);
  const auto wire_b = alice_->protect(flow_datagram(2000, 9, "flow B data"),
                                      true);
  ASSERT_TRUE(wire_a && wire_b);
  const auto parsed_a = FbsHeader::parse(*wire_a);
  const auto parsed_b = FbsHeader::parse(*wire_b);
  ASSERT_TRUE(parsed_a && parsed_b);

  // Frankendatagram: header of B, body of A.
  util::Bytes spliced = parsed_b->header.serialize();
  spliced.insert(spliced.end(), parsed_a->body.begin(), parsed_a->body.end());
  auto outcome = bob_->unprotect(alice_->self(), spliced);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  // The wrong flow key either garbles the padding (decrypt failure) or
  // survives decryption and fails the MAC; both reject the splice.
  const auto err = std::get<ReceiveError>(outcome);
  EXPECT_TRUE(err == ReceiveError::kBadMac ||
              err == ReceiveError::kDecryptFailed);
}

TEST_F(AttackTest, CutAndPasteWithinFlowRejected) {
  // Even within one flow, pairing one datagram's header with another's body
  // fails: the MAC covers the confounder and the body together.
  const auto w1 = alice_->protect(flow_datagram(1000, 7, "first datagram"),
                                  true);
  const auto w2 = alice_->protect(flow_datagram(1000, 7, "second datagram"),
                                  true);
  const auto p1 = FbsHeader::parse(*w1);
  const auto p2 = FbsHeader::parse(*w2);
  util::Bytes spliced = p1->header.serialize();
  spliced.insert(spliced.end(), p2->body.begin(), p2->body.end());
  auto outcome = bob_->unprotect(alice_->self(), spliced);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
}

TEST_F(AttackTest, CompromisedFlowKeyDoesNotUnlockSiblingFlow) {
  // Section 6.1/7.4: an attacker holding flow A's key can forge inside A
  // but learns nothing usable against flow B.
  const auto wire_a = alice_->protect(flow_datagram(1000, 7, "A"), true);
  const auto wire_b = alice_->protect(flow_datagram(2000, 9, "B secret"),
                                      true);
  const auto parsed_a = FbsHeader::parse(*wire_a);
  const auto parsed_b = FbsHeader::parse(*wire_b);

  // Reconstruct flow A's key the way the receiver would (simulating its
  // compromise).
  const auto master = world_["bob"].keys->master_key(alice_->self());
  ASSERT_TRUE(master.has_value());
  crypto::Md5 h;
  const util::Bytes key_a = derive_flow_key(h, parsed_a->header.sfl, *master,
                                            alice_->self(), bob_->self());
  const util::Bytes key_b = derive_flow_key(h, parsed_b->header.sfl, *master,
                                            alice_->self(), bob_->self());
  EXPECT_NE(key_a, key_b);

  // key_a decrypts flow A...
  const crypto::Des des_a(util::BytesView(key_a).subspan(0, 8));
  const std::uint64_t iv_a =
      static_cast<std::uint64_t>(parsed_a->header.confounder) << 32 |
      parsed_a->header.confounder;
  const auto plain_a =
      crypto::decrypt(des_a, crypto::CipherMode::kCbc, iv_a, parsed_a->body);
  ASSERT_TRUE(plain_a.has_value());
  EXPECT_EQ(*plain_a, util::to_bytes("A"));

  // ...but not flow B.
  const std::uint64_t iv_b =
      static_cast<std::uint64_t>(parsed_b->header.confounder) << 32 |
      parsed_b->header.confounder;
  const auto bogus =
      crypto::decrypt(des_a, crypto::CipherMode::kCbc, iv_b, parsed_b->body);
  if (bogus.has_value()) {
    EXPECT_NE(*bogus, util::to_bytes("B secret"));
  }
}

TEST_F(AttackTest, ForgedSflCannotHijackTraffic) {
  // An attacker rewriting the sfl field redirects the receiver to a
  // different flow key; the MAC check then fails.
  const auto wire = alice_->protect(flow_datagram(1000, 7, "genuine"), true);
  util::Bytes forged = *wire;
  forged[2] ^= 0x01;  // first sfl byte
  auto outcome = bob_->unprotect(alice_->self(), forged);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  const auto err = std::get<ReceiveError>(outcome);
  EXPECT_TRUE(err == ReceiveError::kBadMac ||
              err == ReceiveError::kDecryptFailed);
}

TEST_F(AttackTest, PortReuseAttackWindowExistsWithinThreshold) {
  // Section 7.1's port-reuse attack: a conversation ends, the attacker
  // grabs the same port within THRESHOLD, and replayed datagrams are
  // happily decrypted for it -- because the FAM cannot detect the ownership
  // change. We demonstrate the mechanics: within the threshold the same
  // five-tuple keeps the same sfl and key.
  const auto w1 = alice_->protect(flow_datagram(1000, 7, "for old owner"),
                                  true);
  const auto r1 = bob_->unprotect(alice_->self(), *w1);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(r1));
  const Sfl sfl_before = std::get<ReceivedDatagram>(r1).sfl;

  // "Old owner" exits; attacker reuses the port 10 seconds later.
  world_.clock.advance(util::seconds(10));
  const auto w2 = alice_->protect(flow_datagram(1000, 7, "for attacker"),
                                  true);
  const auto r2 = bob_->unprotect(alice_->self(), *w2);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(r2));
  EXPECT_EQ(std::get<ReceivedDatagram>(r2).sfl, sfl_before);  // same flow!
}

TEST_F(AttackTest, PortReuseCounteredByThresholdWait) {
  // The paper's fix: delay port reallocation by THRESHOLD. After the wait
  // the FAM starts a fresh flow with a fresh key.
  const auto w1 = alice_->protect(flow_datagram(1000, 7, "old"), true);
  const auto r1 = bob_->unprotect(alice_->self(), *w1);
  const Sfl sfl_before = std::get<ReceivedDatagram>(r1).sfl;

  world_.clock.advance(config_.flow_threshold + util::seconds(1));
  const auto w2 = alice_->protect(flow_datagram(1000, 7, "new"), true);
  const auto r2 = bob_->unprotect(alice_->self(), *w2);
  EXPECT_NE(std::get<ReceivedDatagram>(r2).sfl, sfl_before);
}

TEST_F(AttackTest, PortReuseCounteredByExplicitRekey) {
  // Alternative countermeasure using the rekey hook: the sending host
  // rekeys the tuple when the port is reallocated.
  Datagram d = flow_datagram(1000, 7, "old");
  const auto w1 = alice_->protect(d, true);
  const auto r1 = bob_->unprotect(alice_->self(), *w1);
  const Sfl sfl_before = std::get<ReceivedDatagram>(r1).sfl;

  alice_->rekey(d.attrs);
  const auto w2 = alice_->protect(flow_datagram(1000, 7, "new"), true);
  const auto r2 = bob_->unprotect(alice_->self(), *w2);
  EXPECT_NE(std::get<ReceivedDatagram>(r2).sfl, sfl_before);
}

TEST_F(AttackTest, ReflectedDatagramRejected) {
  // Bounce alice's datagram back at her: flows are unidirectional, so the
  // reflected copy must not verify for the reverse direction.
  const auto wire = alice_->protect(flow_datagram(1000, 7, "outbound"), true);
  auto outcome = alice_->unprotect(bob_->self(), *wire);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  const auto err = std::get<ReceiveError>(outcome);
  EXPECT_TRUE(err == ReceiveError::kBadMac ||
              err == ReceiveError::kDecryptFailed);
}

TEST_F(AttackTest, TimestampForgeryCannotExtendLifetime) {
  // Pushing the timestamp forward to defeat staleness breaks the MAC.
  const auto wire = alice_->protect(flow_datagram(1000, 7, "fresh"), false);
  world_.clock.advance(util::minutes(10));
  util::Bytes forged = *wire;
  // timestamp lives at offset 14..17 (flags1+suite1+sfl8+confounder4).
  const std::uint32_t new_ts =
      util::to_header_minutes(world_.clock.now());
  forged[14] = static_cast<std::uint8_t>(new_ts >> 24);
  forged[15] = static_cast<std::uint8_t>(new_ts >> 16);
  forged[16] = static_cast<std::uint8_t>(new_ts >> 8);
  forged[17] = static_cast<std::uint8_t>(new_ts);
  auto outcome = bob_->unprotect(alice_->self(), forged);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  EXPECT_EQ(std::get<ReceiveError>(outcome), ReceiveError::kBadMac);
}

}  // namespace
}  // namespace fbs::core
