#include "fbs/caches.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::core {
namespace {

util::Bytes key_of(std::uint64_t v) {
  util::ByteWriter w(8);
  w.u64(v);
  return w.take();
}

TEST(CacheIndex, AlwaysInRange) {
  util::SplitMix64 rng(1);
  for (auto kind : {CacheHashKind::kCrc32, CacheHashKind::kModulo,
                    CacheHashKind::kXorFold}) {
    for (int i = 0; i < 200; ++i) {
      const util::Bytes k = rng.next_bytes(1 + rng.next_below(20));
      EXPECT_LT(cache_index(kind, k, 7), 7u);
      EXPECT_EQ(cache_index(kind, k, 1), 0u);
    }
  }
}

TEST(CacheIndex, Deterministic) {
  const util::Bytes k = key_of(42);
  EXPECT_EQ(cache_index(CacheHashKind::kCrc32, k, 64),
            cache_index(CacheHashKind::kCrc32, k, 64));
}

TEST(CacheIndex, ModuloClustersSequentialKeys) {
  // The failure mode Section 5.3 warns about: sequential sfls under raw
  // modulo all land in consecutive sets of a power-of-two... and worse, with
  // stride-N allocation they collide. CRC-32 spreads them.
  constexpr std::size_t kSets = 64;
  std::vector<int> mod_hist(kSets, 0), crc_hist(kSets, 0);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const util::Bytes k = key_of(i * kSets);  // strided labels
    ++mod_hist[cache_index(CacheHashKind::kModulo, k, kSets)];
    ++crc_hist[cache_index(CacheHashKind::kCrc32, k, kSets)];
  }
  const int mod_peak = *std::max_element(mod_hist.begin(), mod_hist.end());
  const int crc_peak = *std::max_element(crc_hist.begin(), crc_hist.end());
  EXPECT_EQ(mod_peak, 256);  // all collide into one set
  EXPECT_LT(crc_peak, 20);
}

TEST(MissClassifier, FirstAccessIsCold) {
  MissClassifier c;
  EXPECT_EQ(c.classify_miss(key_of(1), 4), MissClassifier::MissKind::kCold);
  EXPECT_EQ(c.classify_miss(key_of(2), 4), MissClassifier::MissKind::kCold);
}

TEST(MissClassifier, ShortReuseIsCollision) {
  MissClassifier c;
  (void)c.classify_miss(key_of(1), 4);
  (void)c.classify_miss(key_of(2), 4);
  // Key 1 was referenced 1 step ago (< capacity 4): a fully associative
  // cache would have kept it, so a miss on it is a collision miss.
  EXPECT_EQ(c.classify_miss(key_of(1), 4),
            MissClassifier::MissKind::kCollision);
}

TEST(MissClassifier, LongReuseIsCapacity) {
  MissClassifier c;
  (void)c.classify_miss(key_of(0), 2);
  for (std::uint64_t i = 1; i <= 5; ++i) (void)c.classify_miss(key_of(i), 2);
  // Key 0 is 5 deep in the stack; capacity 2 could not have held it.
  EXPECT_EQ(c.classify_miss(key_of(0), 2),
            MissClassifier::MissKind::kCapacity);
}

TEST(MissClassifier, HitsRefreshStackPosition) {
  MissClassifier c;
  (void)c.classify_miss(key_of(0), 2);
  (void)c.classify_miss(key_of(1), 2);
  c.record_hit(key_of(0));  // 0 back on top
  (void)c.classify_miss(key_of(2), 2);
  (void)c.classify_miss(key_of(3), 2);
  // 1 is now deepest; 0 was refreshed more recently but still 3 deep.
  EXPECT_EQ(c.classify_miss(key_of(1), 2),
            MissClassifier::MissKind::kCapacity);
}

TEST(MissClassifier, EvictedKeyReclassifiesAsCapacityNotCold) {
  // A key pushed off the bounded stack is remembered (Bloom filter of
  // evicted keys): its return is a capacity miss -- the unbounded simulator
  // would have found it deep in the stack -- never a fresh cold miss.
  MissClassifier c(/*max_depth=*/4);
  (void)c.classify_miss(key_of(0), 2);
  for (std::uint64_t i = 1; i < 10; ++i) (void)c.classify_miss(key_of(i), 2);
  EXPECT_EQ(c.stack_size(), 4u);
  EXPECT_EQ(c.classify_miss(key_of(0), 2),
            MissClassifier::MissKind::kCapacity);
}

// Satellite regression: the classifier must hold bounded state on an
// internet-scale reference stream. Before the bound, the LRU stack and
// position map grew with every distinct key ever seen (gigabytes at 1M
// flows); now both are capped by max_depth plus a fixed filter, so memory
// plateaus and per-classification cost stays O(max_depth) -- sublinear in
// (independent of) trace length.
TEST(MissClassifier, BoundedMemoryOnHundredThousandFlowTrace) {
  MissClassifier c;  // default depth 1024 covers the fig11 study exactly
  std::size_t mem_at_20k = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    (void)c.classify_miss(key_of(i), 512);
    if (i == 19999) mem_at_20k = c.approx_memory_bytes();
  }
  // The stack never outgrows its cap...
  EXPECT_EQ(c.stack_size(), MissClassifier::kDefaultMaxDepth);
  // ...and the footprint stopped growing long before the trace ended: 80k
  // further distinct keys added zero bytes.
  EXPECT_EQ(c.approx_memory_bytes(), mem_at_20k);
  // Sanity on the absolute bound: ~1 MiB Bloom filter + the capped stack.
  EXPECT_LT(c.approx_memory_bytes(), std::size_t{4} << 20);
}

TEST(Cache, InsertThenLookupHits) {
  SetAssociativeCache<int> cache(8);
  cache.insert(key_of(1), 111);
  auto* v = cache.lookup(key_of(1));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 111);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, MissReturnsNullAndCounts) {
  SetAssociativeCache<int> cache(8);
  EXPECT_EQ(cache.lookup(key_of(9)), nullptr);
  EXPECT_EQ(cache.stats().cold_misses, 1u);
  EXPECT_EQ(cache.stats().miss_rate(), 1.0);
}

TEST(Cache, OverwriteSameKey) {
  SetAssociativeCache<int> cache(8);
  cache.insert(key_of(1), 1);
  cache.insert(key_of(1), 2);
  EXPECT_EQ(*cache.lookup(key_of(1)), 2);
}

TEST(Cache, EraseInvalidates) {
  SetAssociativeCache<int> cache(8);
  cache.insert(key_of(1), 1);
  cache.erase(key_of(1));
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
}

TEST(Cache, ClearInvalidatesEverything) {
  SetAssociativeCache<int> cache(8);
  for (std::uint64_t i = 0; i < 8; ++i) cache.insert(key_of(i), 1);
  cache.clear();
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(cache.lookup(key_of(i)), nullptr);
}

TEST(Cache, PeekDoesNotTouchStats) {
  SetAssociativeCache<int> cache(8);
  cache.insert(key_of(1), 5);
  EXPECT_NE(cache.peek(key_of(1)), nullptr);
  EXPECT_EQ(cache.peek(key_of(2)), nullptr);
  EXPECT_EQ(cache.stats().accesses(), 0u);
}

TEST(Cache, DirectMappedConflictEvicts) {
  // Capacity 4 direct-mapped: two keys hashing to the same set displace
  // each other regardless of the other sets being empty.
  SetAssociativeCache<int> cache(4, 1);
  // Find two keys in the same set.
  util::Bytes a = key_of(0);
  util::Bytes b;
  const std::size_t target = cache_index(CacheHashKind::kCrc32, a, 4);
  for (std::uint64_t i = 1;; ++i) {
    b = key_of(i);
    if (cache_index(CacheHashKind::kCrc32, b, 4) == target) break;
  }
  cache.insert(a, 1);
  cache.insert(b, 2);
  EXPECT_EQ(cache.lookup(a), nullptr);  // evicted by b
  EXPECT_NE(cache.lookup(b), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Cache, TwoWayAssociativityAvoidsThatConflict) {
  SetAssociativeCache<int> dm(4, 1), sa(4, 2);
  // Same key pair as above: find keys colliding in the 2-set configuration.
  util::Bytes a = key_of(0);
  util::Bytes b;
  const std::size_t target = cache_index(CacheHashKind::kCrc32, a, 2);
  for (std::uint64_t i = 1;; ++i) {
    b = key_of(i);
    if (cache_index(CacheHashKind::kCrc32, b, 2) == target) break;
  }
  sa.insert(a, 1);
  sa.insert(b, 2);
  EXPECT_NE(sa.lookup(a), nullptr);  // both ways hold
  EXPECT_NE(sa.lookup(b), nullptr);
}

TEST(Cache, LruEvictionWithinSet) {
  // One set, 2 ways: the least recently used way is the victim.
  SetAssociativeCache<int> cache(2, 2);
  cache.insert(key_of(1), 1);
  cache.insert(key_of(2), 2);
  (void)cache.lookup(key_of(1));  // 2 becomes LRU
  cache.insert(key_of(3), 3);
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.lookup(key_of(2)), nullptr);
  EXPECT_NE(cache.lookup(key_of(3)), nullptr);
}

TEST(Cache, StatsClassifyAllThreeMissKinds) {
  SetAssociativeCache<int> cache(2, 1);
  // Cold miss:
  (void)cache.lookup(key_of(1));
  cache.insert(key_of(1), 1);
  // Flood with many distinct keys -> capacity territory for key 1.
  for (std::uint64_t i = 10; i < 20; ++i) {
    (void)cache.lookup(key_of(i));
    cache.insert(key_of(i), 1);
  }
  (void)cache.lookup(key_of(1));
  const CacheStats& s = cache.stats();
  EXPECT_GE(s.cold_misses, 11u);
  EXPECT_GE(s.capacity_misses + s.collision_misses, 1u);
  EXPECT_EQ(s.accesses(), s.hits + s.misses());
}

TEST(Cache, CapacityRoundsToWholeSets) {
  SetAssociativeCache<int> cache(7, 2);  // 3 sets * 2 ways
  EXPECT_EQ(cache.capacity(), 6u);
  SetAssociativeCache<int> tiny(0, 1);
  EXPECT_EQ(tiny.capacity(), 1u);
}

class CacheHashSweep : public ::testing::TestWithParam<CacheHashKind> {};

TEST_P(CacheHashSweep, WorkingSetSmallerThanCacheEventuallyAllHits) {
  SetAssociativeCache<int> cache(64, 4, GetParam());
  // 16 keys, cycled 10 times: after the cold pass everything should hit for
  // a well-spread hash; weak hashes may conflict but must stay correct.
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t k = 0; k < 16; ++k) {
      if (!cache.lookup(key_of(k * 1000))) cache.insert(key_of(k * 1000), 1);
    }
  }
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses(), 160u);
  if (GetParam() == CacheHashKind::kCrc32) {
    // The recommended hash spreads the strided keys: cold misses only.
    EXPECT_EQ(s.misses(), 16u);
    EXPECT_EQ(s.hits, 144u);
  } else {
    // The naive hashes may cluster (that is Section 5.3's point) but the
    // cache must stay correct: every access is a hit or a classified miss.
    EXPECT_EQ(s.hits + s.misses(), 160u);
    EXPECT_GE(s.misses(), 16u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllHashes, CacheHashSweep,
                         ::testing::Values(CacheHashKind::kCrc32,
                                           CacheHashKind::kModulo,
                                           CacheHashKind::kXorFold));

}  // namespace
}  // namespace fbs::core
