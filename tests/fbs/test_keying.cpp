#include "fbs/keying.hpp"

#include <gtest/gtest.h>

#include "crypto/md5.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

class KeyingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new TestWorld(101);
    world_->add_node("alice", "10.0.0.1");
    world_->add_node("bob", "10.0.0.2");
    world_->add_node("carol", "10.0.0.3");
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static TestWorld* world_;
};

TestWorld* KeyingTest::world_ = nullptr;

TEST_F(KeyingTest, PairMasterKeysAgree) {
  auto& alice = (*world_)["alice"];
  auto& bob = (*world_)["bob"];
  const auto k_ab = alice.keys->master_key(bob.principal);
  const auto k_ba = bob.keys->master_key(alice.principal);
  ASSERT_TRUE(k_ab.has_value());
  ASSERT_TRUE(k_ba.has_value());
  EXPECT_EQ(*k_ab, *k_ba);  // zero-message keying
}

TEST_F(KeyingTest, DistinctPairsDistinctMasters) {
  auto& alice = (*world_)["alice"];
  const auto k_ab = alice.keys->master_key((*world_)["bob"].principal);
  const auto k_ac = alice.keys->master_key((*world_)["carol"].principal);
  ASSERT_TRUE(k_ab && k_ac);
  EXPECT_NE(*k_ab, *k_ac);
}

TEST_F(KeyingTest, UnknownPeerFails) {
  auto& alice = (*world_)["alice"];
  Principal stranger = Principal::from_ipv4(
      *net::Ipv4Address::parse("192.168.9.9"));
  EXPECT_FALSE(alice.keys->master_key(stranger).has_value());
}

TEST_F(KeyingTest, MkcCachesMasterKeys) {
  TestWorld w(202);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  (void)a.keys->master_key(b.principal);
  const std::uint64_t upcalls_after_first = a.keys->upcalls();
  for (int i = 0; i < 10; ++i) (void)a.keys->master_key(b.principal);
  EXPECT_EQ(a.keys->upcalls(), upcalls_after_first);  // all MKC hits
  EXPECT_GE(a.keys->mkc_stats().hits, 10u);
}

TEST_F(KeyingTest, PvcCachesCertificates) {
  TestWorld w(203);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  (void)a.mkd->upcall(b.principal);
  (void)a.mkd->upcall(b.principal);
  (void)a.mkd->upcall(b.principal);
  EXPECT_EQ(a.mkd->stats().directory_fetches, 1u);  // 1 cold fetch only
  EXPECT_GE(a.mkd->pvc_stats().hits, 2u);
}

TEST_F(KeyingTest, PinnedCertificateAvoidsFetch) {
  TestWorld w(204);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  const auto cert = w.directory.fetch(b.principal.address);
  ASSERT_TRUE(cert.has_value());
  const auto fetches_before = w.directory.fetch_count();
  a.mkd->pin_certificate(*cert);
  EXPECT_TRUE(a.mkd->upcall(b.principal).has_value());
  EXPECT_EQ(w.directory.fetch_count(), fetches_before);
}

TEST_F(KeyingTest, InvalidateForcesReupcall) {
  TestWorld w(205);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  (void)a.keys->master_key(b.principal);
  const auto before = a.keys->upcalls();
  a.keys->invalidate(b.principal);
  (void)a.keys->master_key(b.principal);
  EXPECT_EQ(a.keys->upcalls(), before + 1);
}

TEST_F(KeyingTest, ExpiredCertificateRejected) {
  TestWorld w(206);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  // Replace b's directory entry with an expired certificate.
  auto cert = *w.directory.fetch(b.principal.address);
  auto expired = w.ca.issue(cert.subject, cert.group_name, cert.public_value,
                            util::minutes(0), util::minutes(1));
  w.directory.publish(expired);
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
  EXPECT_GE(a.mkd->stats().verify_failures, 1u);
}

TEST_F(KeyingTest, ForgedCertificateRejected) {
  TestWorld w(207);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  auto cert = *w.directory.fetch(b.principal.address);
  cert.public_value[0] ^= 0x01;  // attacker swaps in another public value
  w.directory.publish(cert);
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
  EXPECT_GE(a.mkd->stats().verify_failures, 1u);
}

TEST_F(KeyingTest, StalePvcEntryReverifiedOnUse) {
  // A certificate that expires while cached must be rejected on next use
  // ("a certificate can be verified each time it is used").
  TestWorld w(208);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  auto shortlived = w.ca.issue(
      b.principal.address, "g",
      (*w.directory.fetch(b.principal.address)).public_value, w.clock.now(),
      w.clock.now() + util::minutes(5));
  w.directory.publish(shortlived);
  w.directory.revoke(b.principal.address);
  a.mkd->pin_certificate(shortlived);
  EXPECT_TRUE(a.mkd->upcall(b.principal).has_value());
  w.clock.advance(util::minutes(6));
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
}

TEST_F(KeyingTest, UpcallRetriesThroughShortOutage) {
  TestWorld w(301);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  // Decorrelated waits are each at least initial_backoff (50ms), so the
  // three possible waits accumulate past any 60ms outage well before the
  // attempt budget runs out -- the retry must succeed, however the draws
  // land.
  const util::TimeUs t0 = w.clock.now();
  w.directory.add_outage(t0, t0 + util::TimeUs{60'000});
  ASSERT_TRUE(a.mkd->upcall(b.principal).has_value());
  EXPECT_GE(a.mkd->stats().directory_retries, 1u);
  EXPECT_EQ(a.mkd->stats().directory_fetches,
            a.mkd->stats().directory_retries + 1);
  EXPECT_EQ(a.mkd->stats().directory_failures, 0u);
  EXPECT_EQ(a.mkd->stats().negative_cache_inserts, 0u);
  EXPECT_GE(a.mkd->stats().backoff_waited_us, 60'000u);
}

TEST_F(KeyingTest, DecorrelatedBackoffWaitsStayWithinEnvelope) {
  TestWorld w(302);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  std::vector<util::TimeUs> waits;
  a.mkd->set_backoff_waiter([&](util::TimeUs wait) {
    waits.push_back(wait);
    w.clock.advance(wait);
  });
  w.directory.add_outage(w.clock.now(), w.clock.now() + util::minutes(10));
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());

  // wait_n in [initial, min(3 * wait_{n-1}, max_backoff)], wait_0 = initial.
  const RetryPolicy& policy = a.mkd->retry_policy();
  ASSERT_EQ(waits.size(), policy.max_attempts - 1);
  util::TimeUs prev = policy.initial_backoff;
  for (const util::TimeUs wait : waits) {
    EXPECT_GE(wait, policy.initial_backoff);
    EXPECT_LE(wait, std::min(3 * prev, policy.max_backoff));
    prev = wait;
  }
  EXPECT_EQ(a.mkd->stats().directory_failures, 1u);
}

TEST_F(KeyingTest, LegacyExponentialBackoffStillAvailable) {
  TestWorld w(302);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  RetryPolicy policy = a.mkd->retry_policy();
  policy.decorrelated = false;
  a.mkd->set_retry_policy(policy);
  std::vector<util::TimeUs> waits;
  a.mkd->set_backoff_waiter([&](util::TimeUs wait) {
    waits.push_back(wait);
    w.clock.advance(wait);
  });
  w.directory.add_outage(w.clock.now(), w.clock.now() + util::minutes(10));
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());

  ASSERT_EQ(waits.size(), policy.max_attempts - 1);
  util::TimeUs nominal = policy.initial_backoff;
  for (const util::TimeUs wait : waits) {
    EXPECT_GE(wait, nominal / 2);  // jitter shrinks by at most `jitter`
    EXPECT_LE(wait, nominal);
    nominal = std::min(
        static_cast<util::TimeUs>(static_cast<double>(nominal) *
                                  policy.multiplier),
        policy.max_backoff);
  }
  EXPECT_EQ(a.mkd->stats().directory_failures, 1u);
}

TEST_F(KeyingTest, DaemonsSharingAPolicyDrawDistinctBackoffSchedules) {
  // The decorrelation premise: a fleet configured identically must not
  // retry in lockstep. Each daemon mixes its principal address into the
  // jitter seed, so two daemons hammering the same outage diverge.
  TestWorld w(306);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  auto& c = w.add_node("c", "10.1.0.3");
  std::vector<util::TimeUs> waits_a, waits_b;
  a.mkd->set_backoff_waiter([&](util::TimeUs wait) {
    waits_a.push_back(wait);
    w.clock.advance(wait);
  });
  b.mkd->set_backoff_waiter([&](util::TimeUs wait) {
    waits_b.push_back(wait);
    w.clock.advance(wait);
  });
  w.directory.add_outage(w.clock.now(), w.clock.now() + util::minutes(60));
  EXPECT_FALSE(a.mkd->upcall(c.principal).has_value());
  EXPECT_FALSE(b.mkd->upcall(c.principal).has_value());
  ASSERT_EQ(waits_a.size(), waits_b.size());
  EXPECT_NE(waits_a, waits_b);
}

TEST_F(KeyingTest, AuthoritativeNotFoundDoesNotRetry) {
  TestWorld w(303);
  auto& a = w.add_node("a", "10.1.0.1");
  const Principal stranger =
      Principal::from_ipv4(*net::Ipv4Address::parse("192.168.9.9"));
  EXPECT_FALSE(a.mkd->upcall(stranger).has_value());
  EXPECT_EQ(a.mkd->stats().directory_fetches, 1u);  // kNotFound: no retry
  EXPECT_EQ(a.mkd->stats().directory_retries, 0u);
  EXPECT_EQ(a.mkd->stats().negative_cache_inserts, 1u);
}

TEST_F(KeyingTest, NegativeCacheAbsorbsUpcallStorm) {
  TestWorld w(304);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  w.directory.add_outage(w.clock.now(), w.clock.now() + util::seconds(5));
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
  const auto fetches = a.mkd->stats().directory_fetches;
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
  EXPECT_EQ(a.mkd->stats().directory_fetches, fetches);  // all short-circuited
  EXPECT_EQ(a.mkd->stats().negative_cache_hits, 100u);
}

TEST_F(KeyingTest, ClearSoftStateDropsNegativeCache) {
  TestWorld w(305);
  auto& a = w.add_node("a", "10.1.0.1");
  auto& b = w.add_node("b", "10.1.0.2");
  w.directory.add_outage(w.clock.now(), w.clock.now() + util::seconds(30));
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
  EXPECT_EQ(a.mkd->stats().negative_cache_inserts, 1u);
  const auto fetches = a.mkd->stats().directory_fetches;
  // A wipe forgets the unresolvable marking: the next upcall genuinely
  // retries against the (still down) directory instead of short-circuiting.
  a.mkd->clear_soft_state();
  EXPECT_FALSE(a.mkd->upcall(b.principal).has_value());
  EXPECT_GT(a.mkd->stats().directory_fetches, fetches);
  EXPECT_EQ(a.mkd->stats().negative_cache_hits, 0u);
}

TEST(FlowKeyDerivation, DependsOnEveryInput) {
  crypto::Md5 h;
  const util::Bytes master = util::to_bytes("master-key-material");
  const Principal S = Principal::from_ipv4(*net::Ipv4Address::parse("1.1.1.1"));
  const Principal D = Principal::from_ipv4(*net::Ipv4Address::parse("2.2.2.2"));

  const auto base = derive_flow_key(h, 42, master, S, D);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(derive_flow_key(h, 42, master, S, D), base);  // deterministic
  EXPECT_NE(derive_flow_key(h, 43, master, S, D), base);  // sfl
  EXPECT_NE(derive_flow_key(h, 42, util::to_bytes("other"), S, D), base);
  EXPECT_NE(derive_flow_key(h, 42, master, D, S), base);  // direction
}

TEST(FlowKeyDerivation, FlowKeyRevealsNothingAboutSiblings) {
  // Structural check of Section 6.1: K_f = H(sfl|K|S|D) -- knowing one flow
  // key, sibling keys differ completely (one-wayness is the hash's job).
  crypto::Md5 h;
  const util::Bytes master = util::to_bytes("K_SD");
  const Principal S = Principal::from_ipv4(*net::Ipv4Address::parse("1.1.1.1"));
  const Principal D = Principal::from_ipv4(*net::Ipv4Address::parse("2.2.2.2"));
  const auto k1 = derive_flow_key(h, 1, master, S, D);
  const auto k2 = derive_flow_key(h, 2, master, S, D);
  int common = 0;
  for (std::size_t i = 0; i < k1.size(); ++i)
    if (k1[i] == k2[i]) ++common;
  EXPECT_LT(common, 4);  // essentially unrelated byte strings
}

}  // namespace
}  // namespace fbs::core
