#include "fbs/ip_map.hpp"
#include "net/simnet.hpp"

#include <gtest/gtest.h>

#include "net/udp.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

/// Two FBS-enabled hosts on a simulated segment, with UDP apps on top.
class IpMapTest : public ::testing::Test {
 protected:
  IpMapTest()
      : world_(505),
        net_(world_.clock, 99),
        a_node_(world_.add_node("a", "10.0.0.1")),
        b_node_(world_.add_node("b", "10.0.0.2")),
        a_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.1")),
        b_stack_(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.2")),
        a_fbs_(a_stack_, config_, *a_node_.keys, world_.clock, world_.rng),
        b_fbs_(b_stack_, config_, *b_node_.keys, world_.clock, world_.rng),
        a_udp_(a_stack_),
        b_udp_(b_stack_) {}

  static IpMappingConfig default_config() { return IpMappingConfig{}; }

  IpMappingConfig config_ = default_config();
  TestWorld world_;
  net::SimNetwork net_;
  TestWorld::Node& a_node_;
  TestWorld::Node& b_node_;
  net::IpStack a_stack_;
  net::IpStack b_stack_;
  FbsIpMapping a_fbs_;
  FbsIpMapping b_fbs_;
  net::UdpService a_udp_;
  net::UdpService b_udp_;
};

TEST_F(IpMapTest, UdpDatagramProtectedEndToEnd) {
  util::Bytes got;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes payload) {
    got = std::move(payload);
  });
  a_udp_.send(b_stack_.address(), 5000, 7, util::to_bytes("secure hello"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("secure hello"));
  EXPECT_EQ(a_fbs_.counters().out_protected, 1u);
  EXPECT_EQ(b_fbs_.counters().in_accepted, 1u);
}

TEST_F(IpMapTest, WireCarriesNoPlaintext) {
  util::Bytes wire_capture;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& frame) {
    wire_capture = frame;
    return net::SimNetwork::TapVerdict::kPass;
  });
  b_udp_.bind(7, [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  const util::Bytes secret = util::to_bytes("credit card 1234-5678");
  a_udp_.send(b_stack_.address(), 5000, 7, secret);
  net_.run();
  ASSERT_FALSE(wire_capture.empty());
  EXPECT_EQ(std::search(wire_capture.begin(), wire_capture.end(),
                        secret.begin(), secret.end()),
            wire_capture.end());
}

TEST_F(IpMapTest, OnWireTamperingDropped) {
  int delivered = 0;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& frame) {
    if (frame.size() > 40) frame[40] ^= 0x80;  // flip a bit past the headers
    return net::SimNetwork::TapVerdict::kPass;
  });
  a_udp_.send(b_stack_.address(), 5000, 7, util::to_bytes("payload"));
  net_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(b_stack_.counters().hook_drops_in, 1u);
}

TEST_F(IpMapTest, SecretPolicySelectsPerFlow) {
  // Encrypt only port 443 traffic; port 7 goes authenticated-plaintext.
  IpMappingConfig cfg;
  cfg.secret_policy = [](const FlowAttributes& attrs) {
    return attrs.destination_port == 443;
  };
  net::IpStack stack(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.3"));
  auto& c_node = world_.add_node("c", "10.0.0.3");
  FbsIpMapping c_fbs(stack, cfg, *c_node.keys, world_.clock, world_.rng);
  net::UdpService c_udp(stack);

  util::Bytes plain_frame, secret_frame;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address to, util::Bytes& f) {
    if (to == b_stack_.address()) {
      if (plain_frame.empty()) plain_frame = f;
      else secret_frame = f;
    }
    return net::SimNetwork::TapVerdict::kPass;
  });
  const util::Bytes body = util::to_bytes("policy driven confidentiality");
  c_udp.send(b_stack_.address(), 1, 7, body);
  c_udp.send(b_stack_.address(), 1, 443, body);
  net_.run();
  ASSERT_FALSE(plain_frame.empty());
  ASSERT_FALSE(secret_frame.empty());
  EXPECT_NE(std::search(plain_frame.begin(), plain_frame.end(), body.begin(),
                        body.end()),
            plain_frame.end());
  EXPECT_EQ(std::search(secret_frame.begin(), secret_frame.end(),
                        body.begin(), body.end()),
            secret_frame.end());
}

TEST_F(IpMapTest, BypassHostSkipsFbs) {
  // Traffic to the directory host must travel the secure flow bypass.
  const auto dir_host = *net::Ipv4Address::parse("10.0.0.100");
  IpMappingConfig cfg;
  cfg.bypass_hosts = {dir_host};
  net::IpStack stack(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.4"));
  auto& d_node = world_.add_node("d", "10.0.0.4");
  FbsIpMapping d_fbs(stack, cfg, *d_node.keys, world_.clock, world_.rng);
  net::UdpService d_udp(stack);

  net::IpStack dir_stack(net_, world_.clock, dir_host);
  net::UdpService dir_udp(dir_stack);
  util::Bytes got;
  dir_udp.bind(389, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  d_udp.send(dir_host, 1, 389, util::to_bytes("cert fetch"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("cert fetch"));  // no FBS header in the way
  EXPECT_EQ(d_fbs.counters().out_bypassed, 1u);
  EXPECT_EQ(d_fbs.counters().out_protected, 0u);
}

TEST_F(IpMapTest, KeyUnavailableFailsClosed) {
  // 10.0.0.5 has no published certificate: output must drop, not leak.
  net::IpStack stack(net_, world_.clock, *net::Ipv4Address::parse("10.0.0.6"));
  auto& e_node = world_.add_node("e", "10.0.0.6");
  FbsIpMapping e_fbs(stack, IpMappingConfig{}, *e_node.keys, world_.clock,
                     world_.rng);
  net::UdpService e_udp(stack);

  const auto unknown = *net::Ipv4Address::parse("10.0.0.5");
  net::IpStack unknown_stack(net_, world_.clock, unknown);
  net::UdpService unknown_udp(unknown_stack);
  int delivered = 0;
  unknown_udp.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });

  EXPECT_FALSE(e_udp.send(unknown, 1, 7, util::to_bytes("must not leak")));
  net_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(e_fbs.counters().out_dropped, 1u);
}

TEST_F(IpMapTest, FragmentationBelowFbsIsTransparent) {
  // FBS sits above fragmentation: a 5KB datagram fragments on the wire and
  // reassembles before FBSReceive.
  util::Bytes got;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  const util::Bytes big(5000, 'F');
  a_udp_.send(b_stack_.address(), 1, 7, big);
  net_.run();
  EXPECT_EQ(got, big);
  EXPECT_GT(a_stack_.counters().fragments_out, 1u);
  EXPECT_EQ(b_fbs_.counters().in_accepted, 1u);
}

TEST_F(IpMapTest, EffectivePayloadAccountsForFbsHeader) {
  // The tcp_output fix: effective payload budget shrinks by the FBS header.
  EXPECT_EQ(a_stack_.effective_payload_size(),
            1500u - net::Ipv4Header::kSize - a_fbs_.header_overhead());
  // A DF datagram sized to the budget must go through unfragmented.
  util::Bytes got;
  b_udp_.bind(9, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  const std::size_t budget =
      a_stack_.effective_payload_size() - net::UdpHeader::kSize;
  EXPECT_TRUE(a_udp_.send(b_stack_.address(), 1, 9, util::Bytes(budget, 'd'),
                          /*dont_fragment=*/true));
  net_.run();
  EXPECT_EQ(got.size(), budget);
  EXPECT_EQ(a_stack_.counters().df_drops, 0u);
}

TEST_F(IpMapTest, OversizedDfDatagramDropsWithoutFix) {
  // A full cipher block over the budget with DF set: even minimal PKCS#7
  // padding cannot squeeze it under the MTU, fragmentation is forbidden, so
  // the packet is dropped -- exactly the tcp_output.c bug the paper fixed.
  const std::size_t budget =
      a_stack_.effective_payload_size() - net::UdpHeader::kSize;
  EXPECT_FALSE(a_udp_.send(b_stack_.address(), 1, 9,
                           util::Bytes(budget + 9, 'd'), true));
  EXPECT_EQ(a_stack_.counters().df_drops, 1u);
}

TEST_F(IpMapTest, ReplayedFrameAcceptedWithinWindowByDefault) {
  // Record a frame and re-inject it: the paper's window scheme accepts it.
  util::Bytes recorded;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& f) {
    recorded = f;
    return net::SimNetwork::TapVerdict::kPass;
  });
  int delivered = 0;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  a_udp_.send(b_stack_.address(), 1, 7, util::to_bytes("replay me"));
  net_.run();
  ASSERT_FALSE(recorded.empty());
  net_.inject(b_stack_.address(), recorded);
  net_.run();
  EXPECT_EQ(delivered, 2);
}

TEST_F(IpMapTest, ReplayedFrameRejectedAfterWindow) {
  util::Bytes recorded;
  net_.set_tap([&](net::Ipv4Address, net::Ipv4Address, util::Bytes& f) {
    recorded = f;
    return net::SimNetwork::TapVerdict::kPass;
  });
  int delivered = 0;
  b_udp_.bind(7, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  a_udp_.send(b_stack_.address(), 1, 7, util::to_bytes("replay me"));
  net_.run();
  world_.clock.advance(util::minutes(10));  // beyond the default window
  net_.inject(b_stack_.address(), recorded);
  net_.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(
      b_fbs_.counters()
          .in_rejected[static_cast<std::size_t>(ReceiveError::kStale)],
      1u);
}

TEST_F(IpMapTest, NonTransportProtocolPassesUnmodified) {
  // Raw IP (e.g. ICMP) is out of FBS scope (footnote 10).
  util::Bytes got;
  b_stack_.register_protocol(net::IpProto::kIcmp,
                             [&](const net::Ipv4Header&, util::Bytes p) {
                               got = std::move(p);
                             });
  a_stack_.output(b_stack_.address(), net::IpProto::kIcmp,
                  util::to_bytes("echo request"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("echo request"));
  EXPECT_EQ(a_fbs_.counters().out_raw_ip, 1u);
  EXPECT_EQ(b_fbs_.counters().in_raw_ip, 1u);
}

}  // namespace
}  // namespace fbs::core
