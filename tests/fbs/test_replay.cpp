#include "fbs/replay.hpp"

#include <gtest/gtest.h>

namespace fbs::core {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  util::VirtualClock clock_{util::minutes(1000)};
};

TEST_F(ReplayTest, CurrentTimestampIsFresh) {
  FreshnessChecker f(clock_, 5);
  EXPECT_EQ(f.check(1000, util::to_bytes("m")),
            FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.stats().fresh, 1u);
}

TEST_F(ReplayTest, WindowEdgesInclusive) {
  FreshnessChecker f(clock_, 5);
  EXPECT_EQ(f.check(995, util::to_bytes("a")),
            FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(1005, util::to_bytes("b")),
            FreshnessChecker::Verdict::kFresh);
}

TEST_F(ReplayTest, OutsideWindowStale) {
  FreshnessChecker f(clock_, 5);
  EXPECT_EQ(f.check(994, util::to_bytes("a")),
            FreshnessChecker::Verdict::kStale);
  EXPECT_EQ(f.check(1006, util::to_bytes("b")),
            FreshnessChecker::Verdict::kStale);
  EXPECT_EQ(f.stats().stale, 2u);
}

TEST_F(ReplayTest, ClockSkewToleratedWithinWindow) {
  // A sender 3 minutes ahead of the receiver still passes with window 5 --
  // the "loose time synchronization" requirement.
  FreshnessChecker f(clock_, 5);
  EXPECT_EQ(f.check(1003, util::to_bytes("a")),
            FreshnessChecker::Verdict::kFresh);
}

TEST_F(ReplayTest, WindowSlidesWithClock) {
  FreshnessChecker f(clock_, 5);
  EXPECT_EQ(f.check(1000, util::to_bytes("a")),
            FreshnessChecker::Verdict::kFresh);
  clock_.advance(util::minutes(10));
  EXPECT_EQ(f.check(1000, util::to_bytes("b")),
            FreshnessChecker::Verdict::kStale);
}

TEST_F(ReplayTest, DefaultModeAcceptsWithinWindowReplay) {
  // The paper's scheme: a replay *inside* the window succeeds (Section 6.2
  // concedes this).
  FreshnessChecker f(clock_, 5, /*strict_replay=*/false);
  const util::Bytes mac = util::to_bytes("same-mac");
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
}

TEST_F(ReplayTest, StrictModeRejectsWithinWindowReplay) {
  FreshnessChecker f(clock_, 5, /*strict_replay=*/true);
  const util::Bytes mac = util::to_bytes("same-mac");
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
  f.commit(1000, mac);
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kReplay);
  EXPECT_EQ(f.stats().replays, 1u);
}

TEST_F(ReplayTest, CheckIsReadOnlyUntilCommitted) {
  // The poisoning fix: check() alone must not record the MAC, or a forged
  // datagram carrying a captured header would block the genuine one.
  FreshnessChecker f(clock_, 5, /*strict_replay=*/true);
  const util::Bytes mac = util::to_bytes("captured-mac");
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
  f.commit(1000, mac);
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kReplay);
}

TEST_F(ReplayTest, CommitWithoutStrictModeIsNoop) {
  FreshnessChecker f(clock_, 5, /*strict_replay=*/false);
  const util::Bytes mac = util::to_bytes("m");
  f.commit(1000, mac);
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
}

TEST_F(ReplayTest, StrictModeDistinctMacsBothAccepted) {
  FreshnessChecker f(clock_, 5, true);
  EXPECT_EQ(f.check(1000, util::to_bytes("mac-1")),
            FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(1000, util::to_bytes("mac-2")),
            FreshnessChecker::Verdict::kFresh);
}

TEST_F(ReplayTest, StrictModeStateIsSoftAndPruned) {
  FreshnessChecker f(clock_, 5, true);
  const util::Bytes mac = util::to_bytes("m");
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kFresh);
  f.commit(1000, mac);
  // Slide far enough that minute 1000 leaves the window; the record of the
  // MAC is pruned -- and the timestamp itself is now stale anyway.
  clock_.advance(util::minutes(20));
  EXPECT_EQ(f.check(1000, mac), FreshnessChecker::Verdict::kStale);
  // Same MAC at a fresh timestamp is accepted: soft state pruned, not hard.
  EXPECT_EQ(f.check(1020, mac), FreshnessChecker::Verdict::kFresh);
}

TEST_F(ReplayTest, ZeroWindowAcceptsOnlyCurrentMinute) {
  FreshnessChecker f(clock_, 0);
  EXPECT_EQ(f.check(1000, util::to_bytes("a")),
            FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(999, util::to_bytes("b")),
            FreshnessChecker::Verdict::kStale);
  EXPECT_EQ(f.check(1001, util::to_bytes("c")),
            FreshnessChecker::Verdict::kStale);
}

TEST_F(ReplayTest, EarlyClockNoUnderflow) {
  util::VirtualClock early(util::minutes(2));
  FreshnessChecker f(early, 10);
  EXPECT_EQ(f.check(0, util::to_bytes("a")),
            FreshnessChecker::Verdict::kFresh);
}

class WindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowSweep, ExactBoundaryBehaviour) {
  const std::uint32_t window = GetParam();
  util::VirtualClock clock(util::minutes(100000));
  FreshnessChecker f(clock, window);
  const std::uint32_t now = 100000;
  EXPECT_EQ(f.check(now - window, util::to_bytes("lo")),
            FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(now + window, util::to_bytes("hi")),
            FreshnessChecker::Verdict::kFresh);
  EXPECT_EQ(f.check(now - window - 1, util::to_bytes("lo2")),
            FreshnessChecker::Verdict::kStale);
  EXPECT_EQ(f.check(now + window + 1, util::to_bytes("hi2")),
            FreshnessChecker::Verdict::kStale);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1, 2, 5, 10, 60));

}  // namespace
}  // namespace fbs::core
