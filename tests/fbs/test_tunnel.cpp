// Gateway-to-gateway FBS (the Section 7.1 host/gateway scenario): two LANs
// joined by security gateways; inside hosts run no FBS.
//
// Topology (one simulated segment, subnets are routing-notional):
//   h1 10.1.0.10 --- gw1 10.1.0.1/198.18.0.1 === gw2 198.18.0.2/10.2.0.1 --- h2 10.2.0.10
#include <gtest/gtest.h>

#include "fbs/tunnel.hpp"
#include "net/simnet.hpp"
#include "net/udp.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

class TunnelTest : public ::testing::Test {
 protected:
  TunnelTest()
      : world_(9090),
        net_(world_.clock, 66),
        gw1_node_(world_.add_node("gw1", "198.18.0.1")),
        gw2_node_(world_.add_node("gw2", "198.18.0.2")),
        h1_(net_, world_.clock, *net::Ipv4Address::parse("10.1.0.10")),
        h2_(net_, world_.clock, *net::Ipv4Address::parse("10.2.0.10")),
        gw1_(net_, world_.clock, *net::Ipv4Address::parse("198.18.0.1")),
        gw2_(net_, world_.clock, *net::Ipv4Address::parse("198.18.0.2")),
        h1_udp_(h1_),
        h2_udp_(h2_) {
    // Hosts default-route via their gateway; gateways route the remote LAN
    // through each other and forward.
    h1_.set_default_route(gw1_.address());
    h2_.set_default_route(gw2_.address());
    gw1_.enable_forwarding(true);
    gw2_.enable_forwarding(true);
    gw1_.add_route(*net::Ipv4Address::parse("10.2.0.0"), 16, gw2_.address());
    gw2_.add_route(*net::Ipv4Address::parse("10.1.0.0"), 16, gw1_.address());

    tunnel1_ = std::make_unique<FbsTunnel>(gw1_, *gw1_node_.keys,
                                           world_.clock, world_.rng);
    tunnel2_ = std::make_unique<FbsTunnel>(gw2_, *gw2_node_.keys,
                                           world_.clock, world_.rng);
    tunnel1_->add_remote_network(*net::Ipv4Address::parse("10.2.0.0"), 16,
                                 gw2_.address());
    tunnel2_->add_remote_network(*net::Ipv4Address::parse("10.1.0.0"), 16,
                                 gw1_.address());
  }

  TestWorld world_;
  net::SimNetwork net_;
  TestWorld::Node& gw1_node_;
  TestWorld::Node& gw2_node_;
  net::IpStack h1_, h2_, gw1_, gw2_;
  net::UdpService h1_udp_, h2_udp_;
  std::unique_ptr<FbsTunnel> tunnel1_, tunnel2_;
};

TEST_F(TunnelTest, CrossLanDatagramDelivered) {
  util::Bytes got;
  net::Ipv4Address got_from;
  h2_udp_.bind(9000, [&](net::Ipv4Address from, std::uint16_t,
                         util::Bytes p) {
    got_from = from;
    got = std::move(p);
  });
  h1_udp_.send(h2_.address(), 4000, 9000, util::to_bytes("across the vpn"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("across the vpn"));
  EXPECT_EQ(got_from, h1_.address());  // inner addresses end-to-end intact
  EXPECT_EQ(tunnel1_->counters().encapsulated, 1u);
  EXPECT_EQ(tunnel2_->counters().decapsulated, 1u);
}

TEST_F(TunnelTest, InnerPacketInvisibleOnTheWire) {
  const util::Bytes marker = util::to_bytes("TOP-SECRET-ACROSS-WAN");
  bool leaked_between_gateways = false;
  net_.set_tap([&](net::Ipv4Address from, net::Ipv4Address to,
                   util::Bytes& f) {
    const bool inter_gw =
        (from == gw1_.address() && to == gw2_.address()) ||
        (from == gw2_.address() && to == gw1_.address());
    if (inter_gw && std::search(f.begin(), f.end(), marker.begin(),
                                marker.end()) != f.end())
      leaked_between_gateways = true;
    return net::SimNetwork::TapVerdict::kPass;
  });
  h2_udp_.bind(9000, [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  h1_udp_.send(h2_.address(), 4000, 9000, marker);
  net_.run();
  EXPECT_FALSE(leaked_between_gateways);
}

TEST_F(TunnelTest, RepliesFlowBackThroughTheTunnel) {
  h2_udp_.bind(9000, [&](net::Ipv4Address from, std::uint16_t sport,
                         util::Bytes p) {
    p.push_back('!');
    h2_udp_.send(from, 9000, sport, p);
  });
  util::Bytes reply;
  h1_udp_.bind(4000, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    reply = std::move(p);
  });
  h1_udp_.send(h2_.address(), 4000, 9000, util::to_bytes("ping"));
  net_.run();
  EXPECT_EQ(reply, util::to_bytes("ping!"));
  EXPECT_EQ(tunnel2_->counters().encapsulated, 1u);  // the reply direction
}

TEST_F(TunnelTest, InnerConversationsGetSeparateFlows) {
  h2_udp_.bind(9000, [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  h2_udp_.bind(9001, [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  for (int i = 0; i < 4; ++i) {
    h1_udp_.send(h2_.address(), 4000, 9000, util::to_bytes("conv-a"));
    h1_udp_.send(h2_.address(), 4000, 9001, util::to_bytes("conv-b"));
  }
  net_.run();
  // Two inner five-tuples -> two tunnel flows (not one bulk gateway pipe).
  EXPECT_EQ(tunnel1_->endpoint().send_stats().flow_keys_derived, 2u);
  EXPECT_EQ(tunnel1_->counters().encapsulated, 8u);
}

TEST_F(TunnelTest, TamperedTunnelPacketDropped) {
  int delivered = 0;
  h2_udp_.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
    ++delivered;
  });
  net_.set_tap([&](net::Ipv4Address from, net::Ipv4Address to,
                   util::Bytes& f) {
    if (from == gw1_.address() && to == gw2_.address() && f.size() > 60)
      f[60] ^= 0xFF;  // flip a bit inside the encapsulated payload
    return net::SimNetwork::TapVerdict::kPass;
  });
  h1_udp_.send(h2_.address(), 4000, 9000, util::to_bytes("integrity"));
  net_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(tunnel2_->counters().rejected, 1u);
}

TEST_F(TunnelTest, HostsInsideRunNoFbs) {
  // The point of the gateway topology: h1/h2 have no hooks, no keys, no
  // certificates -- their stacks are untouched GENERIC IP.
  util::Bytes got;
  h2_udp_.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  h1_udp_.send(h2_.address(), 4000, 9000, util::to_bytes("plain hosts"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("plain hosts"));
  EXPECT_EQ(h1_.counters().hook_drops_out, 0u);
  // And the LAN-side hop really is plaintext (only the WAN hop is secured):
  // verified by InnerPacketInvisibleOnTheWire only filtering the gw-gw hop.
}

TEST_F(TunnelTest, TtlDecrementsAcrossForwarding) {
  util::Bytes seen_frame;
  net_.set_tap([&](net::Ipv4Address from, net::Ipv4Address to,
                   util::Bytes& f) {
    if (from == gw2_.address() && to == h2_.address()) seen_frame = f;
    return net::SimNetwork::TapVerdict::kPass;
  });
  h2_udp_.bind(9000, [](net::Ipv4Address, std::uint16_t, util::Bytes) {});
  h1_udp_.send(h2_.address(), 4000, 9000, util::to_bytes("ttl check"));
  net_.run();
  const auto parsed = net::Ipv4Header::parse(seen_frame);
  ASSERT_TRUE(parsed.has_value());
  // Host default TTL 64, decremented at the egress gateway's forward of the
  // inner packet (the encapsulating hop resets the outer TTL).
  EXPECT_LT(parsed->header.ttl, 64);
}

TEST_F(TunnelTest, NonTunnelForwardingStillWorks) {
  // Traffic to a destination not behind any remote network is forwarded
  // plainly (filter returns false).
  net::IpStack other(net_, world_.clock,
                     *net::Ipv4Address::parse("198.18.0.9"));
  net::UdpService other_udp(other);
  util::Bytes got;
  other_udp.bind(9000, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    got = std::move(p);
  });
  h1_udp_.send(other.address(), 4000, 9000, util::to_bytes("plain forward"));
  net_.run();
  EXPECT_EQ(got, util::to_bytes("plain forward"));
  EXPECT_EQ(tunnel1_->counters().encapsulated, 0u);
  EXPECT_GE(gw1_.counters().forwarded, 1u);
}

}  // namespace
}  // namespace fbs::core
