#include "fbs/fam.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fbs::core {
namespace {

Datagram datagram_for(std::uint16_t sport, std::uint16_t dport,
                      std::uint8_t proto = 6, std::uint32_t saddr = 0x0A000001,
                      std::uint32_t daddr = 0x0A000002) {
  Datagram d;
  d.attrs.protocol = proto;
  d.attrs.source_address = saddr;
  d.attrs.source_port = sport;
  d.attrs.destination_address = daddr;
  d.attrs.destination_port = dport;
  return d;
}

class FiveTupleTest : public ::testing::Test {
 protected:
  util::SplitMix64 rng_{42};
  SflAllocator alloc_{rng_};
  FiveTuplePolicy policy_{64, util::seconds(600), alloc_};
};

TEST_F(FiveTupleTest, SameTupleSameFlow) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b = policy_.map(datagram_for(1000, 23), util::seconds(1));
  EXPECT_TRUE(a.new_flow);
  EXPECT_FALSE(b.new_flow);
  EXPECT_EQ(a.sfl, b.sfl);
}

TEST_F(FiveTupleTest, DifferentPortDifferentFlow) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b = policy_.map(datagram_for(1001, 23), util::seconds(0));
  EXPECT_NE(a.sfl, b.sfl);
}

TEST_F(FiveTupleTest, DifferentProtocolDifferentFlow) {
  const auto a = policy_.map(datagram_for(1000, 53, 6), util::seconds(0));
  const auto b = policy_.map(datagram_for(1000, 53, 17), util::seconds(0));
  EXPECT_NE(a.sfl, b.sfl);
}

TEST_F(FiveTupleTest, GapBeyondThresholdStartsNewFlow) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b =
      policy_.map(datagram_for(1000, 23), util::seconds(601));
  EXPECT_TRUE(b.new_flow);
  EXPECT_NE(a.sfl, b.sfl);
  EXPECT_EQ(policy_.stats().mapper_expirations, 1u);
}

TEST_F(FiveTupleTest, GapExactlyAtThresholdContinuesFlow) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  const auto b = policy_.map(datagram_for(1000, 23), util::seconds(600));
  EXPECT_EQ(a.sfl, b.sfl);
}

TEST_F(FiveTupleTest, ActivityExtendsFlowLifetime) {
  // Packets every 500s for 2500s: one flow despite total age > threshold.
  Sfl first = 0;
  for (int i = 0; i <= 5; ++i) {
    const auto m = policy_.map(datagram_for(1000, 23), util::seconds(500 * i));
    if (i == 0) first = m.sfl;
    EXPECT_EQ(m.sfl, first) << i;
  }
  EXPECT_EQ(policy_.stats().flows_created, 1u);
}

TEST_F(FiveTupleTest, SweeperExpiresIdleFlows) {
  (void)policy_.map(datagram_for(1000, 23), util::seconds(0));
  (void)policy_.map(datagram_for(2000, 23), util::seconds(500));
  EXPECT_EQ(policy_.sweep(util::seconds(700)), 1u);  // only the first is idle
  EXPECT_EQ(policy_.stats().sweeper_expirations, 1u);
  EXPECT_EQ(policy_.active_flows(util::seconds(700)), 1u);
}

TEST_F(FiveTupleTest, ActiveFlowsCountsOnlyFresh) {
  (void)policy_.map(datagram_for(1000, 23), util::seconds(0));
  (void)policy_.map(datagram_for(2000, 23), util::seconds(0));
  EXPECT_EQ(policy_.active_flows(util::seconds(0)), 2u);
  EXPECT_EQ(policy_.active_flows(util::seconds(601)), 0u);
}

TEST_F(FiveTupleTest, ExpireFlowForcesRekey) {
  const auto a = policy_.map(datagram_for(1000, 23), util::seconds(0));
  policy_.expire_flow(datagram_for(1000, 23).attrs);
  const auto b = policy_.map(datagram_for(1000, 23), util::seconds(1));
  EXPECT_TRUE(b.new_flow);
  EXPECT_NE(a.sfl, b.sfl);
}

TEST_F(FiveTupleTest, HashCollisionPrematurelyTerminatesFlow) {
  // Footnote 11: a colliding tuple displaces the entry; the displaced flow
  // gets a fresh sfl on its next datagram. Force collisions with table=1.
  util::SplitMix64 rng(1);
  SflAllocator alloc(rng);
  FiveTuplePolicy tiny(1, util::seconds(600), alloc);
  const auto a = tiny.map(datagram_for(1000, 23), util::seconds(0));
  (void)tiny.map(datagram_for(2000, 23), util::seconds(1));
  EXPECT_EQ(tiny.stats().hash_evictions, 1u);
  const auto a2 = tiny.map(datagram_for(1000, 23), util::seconds(2));
  EXPECT_TRUE(a2.new_flow);
  EXPECT_NE(a2.sfl, a.sfl);
}

TEST_F(FiveTupleTest, StatsCountDatagramsAndFlows) {
  for (int i = 0; i < 10; ++i)
    (void)policy_.map(datagram_for(1000, 23), util::seconds(i));
  (void)policy_.map(datagram_for(9999, 23), util::seconds(0));
  EXPECT_EQ(policy_.stats().datagrams, 11u);
  EXPECT_EQ(policy_.stats().flows_created, 2u);
  EXPECT_EQ(policy_.stats().mapper_hits, 9u);
}

TEST_F(FiveTupleTest, NameIncludesThreshold) {
  EXPECT_NE(policy_.name().find("600"), std::string::npos);
}

TEST(SflAllocator, MonotoneAndUnique) {
  util::SplitMix64 rng(7);
  SflAllocator alloc(rng);
  Sfl prev = alloc.allocate();
  for (int i = 0; i < 1000; ++i) {
    const Sfl next = alloc.allocate();
    EXPECT_EQ(next, prev + 1);
    prev = next;
  }
}

TEST(SflAllocator, RandomizedInitialValue) {
  // Section 5.3: the initial counter value must be randomized so a reboot
  // does not reuse labels.
  util::SplitMix64 r1(1), r2(2);
  SflAllocator a(r1), b(r2);
  EXPECT_NE(a.peek_next(), b.peek_next());
}

TEST(HostPairPolicy, IgnoresPortsAndProtocol) {
  util::SplitMix64 rng(3);
  SflAllocator alloc(rng);
  HostPairPolicy policy(16, util::seconds(600), alloc);
  const auto a = policy.map(datagram_for(1000, 23, 6), util::seconds(0));
  const auto b = policy.map(datagram_for(2000, 80, 17), util::seconds(1));
  EXPECT_EQ(a.sfl, b.sfl);  // same host pair -> same flow
}

TEST(HostPairPolicy, DistinctHostPairsDistinctFlows) {
  util::SplitMix64 rng(4);
  SflAllocator alloc(rng);
  HostPairPolicy policy(16, util::seconds(600), alloc);
  const auto a = policy.map(datagram_for(1, 2, 6, 0x0A000001, 0x0A000002),
                            util::seconds(0));
  const auto b = policy.map(datagram_for(1, 2, 6, 0x0A000001, 0x0A000003),
                            util::seconds(0));
  EXPECT_NE(a.sfl, b.sfl);
}

TEST(HostPairPolicy, SweepAndActive) {
  util::SplitMix64 rng(5);
  SflAllocator alloc(rng);
  HostPairPolicy policy(16, util::seconds(10), alloc);
  (void)policy.map(datagram_for(1, 2), util::seconds(0));
  EXPECT_EQ(policy.active_flows(util::seconds(5)), 1u);
  EXPECT_EQ(policy.sweep(util::seconds(11)), 1u);
}

TEST(PerDatagramPolicy, EveryDatagramNewFlow) {
  util::SplitMix64 rng(6);
  SflAllocator alloc(rng);
  PerDatagramPolicy policy(alloc);
  const auto a = policy.map(datagram_for(1, 2), util::seconds(0));
  const auto b = policy.map(datagram_for(1, 2), util::seconds(0));
  EXPECT_TRUE(a.new_flow);
  EXPECT_TRUE(b.new_flow);
  EXPECT_NE(a.sfl, b.sfl);
  EXPECT_EQ(policy.stats().flows_created, 2u);
}

class ThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweep, FlowSplitCountMatchesGapsAboveThreshold) {
  // Datagrams at t = 0, 100, 200, ..., 900 seconds with gaps of 100s.
  // threshold < 100s => every datagram its own flow; >= 100s => one flow.
  const int threshold_s = GetParam();
  util::SplitMix64 rng(GetParam());
  SflAllocator alloc(rng);
  FiveTuplePolicy policy(64, util::seconds(threshold_s), alloc);
  for (int i = 0; i < 10; ++i)
    (void)policy.map(datagram_for(5, 5), util::seconds(100 * i));
  const std::uint64_t expected = threshold_s >= 100 ? 1u : 10u;
  EXPECT_EQ(policy.stats().flows_created, expected);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(10, 50, 99, 100, 300, 600, 1200));

}  // namespace
}  // namespace fbs::core
