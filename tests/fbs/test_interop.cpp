// Interoperability: the algorithm identification field means a receiver
// processes whatever valid suite the header declares, regardless of its own
// sending configuration -- endpoints with different configured suites still
// interoperate (the generality Section 5.2 wants from the field).
#include <gtest/gtest.h>

#include "fbs/engine.hpp"
#include "support/world.hpp"

namespace fbs::core {
namespace {

using testing::TestWorld;

Datagram make_datagram(const Principal& src, const Principal& dst) {
  Datagram d;
  d.source = src;
  d.destination = dst;
  d.attrs.protocol = 17;
  d.attrs.source_port = 1;
  d.attrs.destination_port = 2;
  d.body = util::to_bytes("suite agility payload");
  return d;
}

struct SuitePair {
  crypto::AlgorithmSuite sender;
  crypto::AlgorithmSuite receiver;
};

class SuiteAgility : public ::testing::TestWithParam<SuitePair> {};

TEST_P(SuiteAgility, MixedConfigurationsInteroperate) {
  const SuitePair pair = GetParam();
  TestWorld world(606060);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig send_cfg;
  send_cfg.suite = pair.sender;
  FbsConfig recv_cfg;
  recv_cfg.suite = pair.receiver;  // receiver's own *sending* preference
  FbsEndpoint sender(a.principal, send_cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint receiver(b.principal, recv_cfg, *b.keys, world.clock,
                       world.rng);

  const Datagram d = make_datagram(a.principal, b.principal);
  const bool secret = pair.sender.cipher != crypto::CipherAlgorithm::kNone;
  const auto wire = sender.protect(d, secret);
  ASSERT_TRUE(wire.has_value());
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceivedDatagram>(outcome));
  const auto& got = std::get<ReceivedDatagram>(outcome);
  EXPECT_EQ(got.datagram.body, d.body);
  EXPECT_EQ(got.suite, pair.sender);  // receiver reports the wire's suite
}

INSTANTIATE_TEST_SUITE_P(
    MixedSuites, SuiteAgility,
    ::testing::Values(
        // SHA1 sender, MD5-configured receiver.
        SuitePair{{crypto::MacAlgorithm::kKeyedSha1,
                   crypto::CipherAlgorithm::kDesCfb},
                  {}},
        // HMAC sender, keyed-prefix-configured receiver.
        SuitePair{{crypto::MacAlgorithm::kHmacMd5,
                   crypto::CipherAlgorithm::kDesOfb},
                  {}},
        // Auth-only sender, full-crypto receiver config.
        SuitePair{{crypto::MacAlgorithm::kHmacSha1,
                   crypto::CipherAlgorithm::kNone},
                  {}},
        // Default sender, SHA1-configured receiver.
        SuitePair{{},
                  {crypto::MacAlgorithm::kKeyedSha1,
                   crypto::CipherAlgorithm::kDesCbc}}));

TEST(Interop, ReceiverRejectsDowngradedMacLength) {
  // An attacker rewriting the suite byte to a shorter-MAC suite cannot win:
  // the parse lengths shift and the MAC check fails.
  TestWorld world(606061);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig sha_cfg;
  sha_cfg.suite.mac = crypto::MacAlgorithm::kKeyedSha1;
  FbsEndpoint sender(a.principal, sha_cfg, *a.keys, world.clock, world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);
  const auto wire =
      sender.protect(make_datagram(a.principal, b.principal), false);
  util::Bytes downgraded = *wire;
  downgraded[1] = crypto::encode_suite(
      {crypto::MacAlgorithm::kKeyedMd5, crypto::CipherAlgorithm::kNone});
  auto outcome = receiver.unprotect(a.principal, downgraded);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
}

TEST(Interop, NopSuiteNeverAcceptedAsRealTraffic) {
  // The NOP suite's "MAC" is a public constant, so a receiver that honors a
  // wire-chosen kNull suite accepts trivially forgeable datagrams (found by
  // the fuzz harness's never-accept oracle). A normally-configured receiver
  // must reject them below FBS; only an endpoint explicitly configured for
  // NOP measurement runs may accept its own traffic class.
  TestWorld world(606062);
  auto& a = world.add_node("a", "10.0.0.1");
  auto& b = world.add_node("b", "10.0.0.2");
  FbsConfig nop;
  nop.suite.mac = crypto::MacAlgorithm::kNull;
  nop.suite.cipher = crypto::CipherAlgorithm::kNone;
  FbsEndpoint sender(a.principal, nop, *a.keys, world.clock, world.rng);
  FbsEndpoint receiver(b.principal, FbsConfig{}, *b.keys, world.clock,
                       world.rng);
  const auto wire =
      sender.protect(make_datagram(a.principal, b.principal), false);
  auto outcome = receiver.unprotect(a.principal, *wire);
  ASSERT_TRUE(std::holds_alternative<ReceiveError>(outcome));
  EXPECT_EQ(std::get<ReceiveError>(outcome), ReceiveError::kMalformed);
  EXPECT_EQ(receiver.receive_stats().rejected_malformed, 1u);
}

}  // namespace
}  // namespace fbs::core
