// The fuzz target registry: one entry per wire decoder in the library.
//
// Each target wraps a decoder in its oracle: run(input) feeds the decoder
// attacker-shaped bytes, FUZZ_CHECKs the decoder's contract (never read out
// of bounds -- the sanitizers watch that; never accept a non-canonical
// encoding -- the encode(parse(x)) == x round trip watches that; agree with
// any sibling implementation -- the differential checks watch that), and
// returns whether the decoder *accepted* the input, which the driver uses
// as pool feedback. seeds() produces valid wires via the real encoders, so
// exploration starts from structure instead of noise.
//
// The same table backs the deterministic in-repo driver (ctest -L fuzz),
// the libFuzzer entry points (FBS_FUZZ=ON, Clang), and the checked-in
// regression corpus replay.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace fbs::fuzz {

struct FuzzTarget {
  std::string name;
  /// Feed one input; returns true when the decoder accepted it. Must never
  /// crash or trip a sanitizer on any byte string; FUZZ_CHECK failures
  /// abort with the offending input.
  std::function<bool(util::BytesView)> run;
  /// Structure-aware starting points built with the real encoders.
  std::function<std::vector<util::Bytes>()> seeds;
};

/// Every registered target, in a stable order.
const std::vector<FuzzTarget>& all_targets();

/// Lookup by name; nullptr when unknown.
const FuzzTarget* find_target(std::string_view name);

}  // namespace fbs::fuzz
