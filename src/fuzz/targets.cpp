#include "fuzz/targets.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <variant>

#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/engine.hpp"
#include "fbs/header.hpp"
#include "fbs/keying.hpp"
#include "fuzz/fuzz.hpp"
#include "net/fragment.hpp"
#include "net/headers.hpp"
#include "net/icmp.hpp"
#include "net/ip.hpp"
#include "net/pcap.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::fuzz {

void fail(const char* expr, const char* file, int line,
          util::BytesView input) {
  std::fprintf(stderr, "\nFUZZ_CHECK failed: %s\n  at %s:%d\n  input (%zu bytes): %s\n",
               expr, file, line, input.size(), util::to_hex(input).c_str());
  std::abort();
}

namespace {

util::Bytes owned(util::BytesView v) { return util::Bytes(v.begin(), v.end()); }

/// Byte equality that tolerates the one legal degree of freedom in an RFC
/// 1071 checksummed encoding: the 16-bit checksum field itself, whose
/// 0x0000/0xFFFF one's-complement-zero ambiguity means two verifying wires
/// can differ there while agreeing everywhere else. Both sides have already
/// been checksum-verified by the time this runs.
bool equal_mod_csum(util::BytesView a, util::BytesView b,
                    std::size_t csum_off) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i] && (i < csum_off || i >= csum_off + 2)) return false;
  return true;
}

// --- FBS security flow header -------------------------------------------

bool run_fbs_header(util::BytesView wire) {
  const auto view = core::FbsHeaderView::parse(wire);
  const auto parsed = core::FbsHeader::parse(wire);
  // Differential oracle: the owning and allocation-free parsers must agree
  // bit for bit -- a divergence is a datagram one path accepts and the
  // other rejects.
  FUZZ_CHECK(view.has_value() == parsed.has_value(), wire);
  if (!view) return false;
  FUZZ_CHECK(parsed->header.sfl == view->sfl, wire);
  FUZZ_CHECK(parsed->header.confounder == view->confounder, wire);
  FUZZ_CHECK(parsed->header.timestamp_minutes == view->timestamp_minutes, wire);
  FUZZ_CHECK(parsed->header.secret == view->secret, wire);
  FUZZ_CHECK(parsed->header.suite == view->suite, wire);
  FUZZ_CHECK(parsed->header.mac == owned(view->mac), wire);
  FUZZ_CHECK(parsed->body == owned(view->body), wire);

  // Canonical round trip: re-encoding the parsed header plus body must
  // reproduce the wire exactly, through both serializers.
  util::Bytes re;
  view->serialize_into(re);
  FUZZ_CHECK(re == parsed->header.serialize(), wire);
  re.insert(re.end(), view->body.begin(), view->body.end());
  FUZZ_CHECK(re == owned(wire), wire);
  return true;
}

std::vector<util::Bytes> seeds_fbs_header() {
  std::vector<util::Bytes> out;
  core::FbsHeader h;
  h.sfl = 0x0102030405060708;
  h.confounder = 0xCAFEF00D;
  h.timestamp_minutes = 1000;
  h.mac.assign(crypto::mac_size(h.suite.mac), 0xAB);
  out.push_back(h.serialize());
  h.secret = true;
  util::Bytes with_body = h.serialize();
  with_body.insert(with_body.end(), {1, 2, 3, 4, 5, 6, 7, 8});
  out.push_back(std::move(with_body));
  h.suite = {crypto::MacAlgorithm::kHmacSha1, crypto::CipherAlgorithm::kNone};
  h.secret = false;
  h.mac.assign(crypto::mac_size(h.suite.mac), 0x11);
  out.push_back(h.serialize());
  h.suite = {crypto::MacAlgorithm::kNull, crypto::CipherAlgorithm::kNone};
  h.mac.assign(crypto::mac_size(h.suite.mac), 0);
  out.push_back(h.serialize());
  return out;
}

// --- IPv4 ----------------------------------------------------------------

bool run_ipv4(util::BytesView wire) {
  const auto pkt = net::Ipv4Header::parse(wire);
  if (!pkt) return false;
  const std::size_t hlen = pkt->header.header_size();
  // Captured options always include the padding to the IHL word boundary.
  FUZZ_CHECK(pkt->header.options.size() % 4 == 0, wire);
  FUZZ_CHECK(pkt->header.options.size() <= net::Ipv4Header::kMaxOptionsSize,
             wire);
  // Lengths must agree: total_length == header + payload, within the wire.
  FUZZ_CHECK(hlen + pkt->payload.size() == pkt->header.total_length, wire);
  FUZZ_CHECK(pkt->header.total_length <= wire.size(), wire);

  // Round trip: bytes [0, total_length) must reproduce (trailing link-layer
  // padding beyond total_length is legal and ignored).
  const util::Bytes re = pkt->header.serialize(pkt->payload);
  FUZZ_CHECK(re.size() == pkt->header.total_length, wire);
  FUZZ_CHECK(equal_mod_csum(wire.subspan(0, re.size()), re, 10), wire);
  FUZZ_CHECK(net::Ipv4Header::parse(re).has_value(), wire);
  return true;
}

std::vector<util::Bytes> seeds_ipv4() {
  std::vector<util::Bytes> out;
  net::Ipv4Header h;
  h.source = *net::Ipv4Address::parse("10.0.0.1");
  h.destination = *net::Ipv4Address::parse("10.0.0.2");
  h.protocol = 17;
  h.id = 7;
  const util::Bytes payload{0xDE, 0xAD, 0xBE, 0xEF};
  out.push_back(h.serialize(payload));
  h.options = {0x94, 0x04, 0x00, 0x00};  // router alert, already padded
  out.push_back(h.serialize(payload));
  h.options.clear();
  h.more_fragments = true;
  h.fragment_offset = 0;
  out.push_back(h.serialize(util::Bytes(16, 0x55)));
  return out;
}

// --- UDP / TCP (input carries the pseudo-header addresses) ---------------

util::Bytes with_addr_prefix(util::BytesView wire) {
  util::Bytes out{10, 0, 0, 1, 10, 0, 0, 2};
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

bool run_udp(util::BytesView input) {
  FuzzInput in(input);
  const net::Ipv4Address src{in.u32()};
  const net::Ipv4Address dst{in.u32()};
  const util::BytesView wire = in.rest();
  const auto d = net::UdpHeader::parse(src, dst, wire);
  if (!d) return false;
  const std::size_t length = static_cast<std::size_t>(wire[4]) << 8 | wire[5];
  const bool has_csum = wire[6] != 0 || wire[7] != 0;
  FUZZ_CHECK(d->payload.size() == length - net::UdpHeader::kSize, input);
  // Canonical case: the length field spans the whole buffer and the
  // checksum is present; then serialize() must reproduce the wire.
  if (length == wire.size() && has_csum) {
    const util::Bytes re = d->header.serialize(src, dst, d->payload);
    FUZZ_CHECK(equal_mod_csum(wire, re, 6), input);
  }
  return true;
}

std::vector<util::Bytes> seeds_udp() {
  const net::Ipv4Address src{0x0A000001};
  const net::Ipv4Address dst{0x0A000002};
  net::UdpHeader h;
  h.source_port = 5001;
  h.destination_port = 53;
  std::vector<util::Bytes> out;
  out.push_back(with_addr_prefix(h.serialize(src, dst, util::Bytes{})));
  out.push_back(
      with_addr_prefix(h.serialize(src, dst, util::Bytes{1, 2, 3, 4, 5})));
  return out;
}

bool run_tcp(util::BytesView input) {
  FuzzInput in(input);
  const net::Ipv4Address src{in.u32()};
  const net::Ipv4Address dst{in.u32()};
  const util::BytesView wire = in.rest();
  const auto seg = net::TcpHeader::parse(src, dst, wire);
  if (!seg) return false;
  // The decoder is fully canonical (no options, no unrepresentable flags,
  // zero urgent pointer), so every accepted wire must round-trip exactly.
  FUZZ_CHECK(seg->payload.size() == wire.size() - net::TcpHeader::kSize,
             input);
  const util::Bytes re = seg->header.serialize(src, dst, seg->payload);
  FUZZ_CHECK(equal_mod_csum(wire, re, 16), input);
  return true;
}

std::vector<util::Bytes> seeds_tcp() {
  const net::Ipv4Address src{0x0A000001};
  const net::Ipv4Address dst{0x0A000002};
  net::TcpHeader h;
  h.source_port = 4000;
  h.destination_port = 5001;
  h.seq = 1000;
  h.syn = true;
  std::vector<util::Bytes> out;
  out.push_back(with_addr_prefix(h.serialize(src, dst, util::Bytes{})));
  h.syn = false;
  h.ack_flag = true;
  h.ack = 1001;
  out.push_back(
      with_addr_prefix(h.serialize(src, dst, util::Bytes(32, 0x61))));
  return out;
}

// --- ICMP ----------------------------------------------------------------

bool run_icmp(util::BytesView wire) {
  const auto m = net::IcmpMessage::parse(wire);
  if (!m) return false;
  if (m->type == net::IcmpMessage::kEchoRequest ||
      m->type == net::IcmpMessage::kEchoReply)
    FUZZ_CHECK(m->code == 0, wire);
  const util::Bytes re = m->serialize();
  FUZZ_CHECK(equal_mod_csum(wire, re, 2), wire);
  return true;
}

std::vector<util::Bytes> seeds_icmp() {
  net::IcmpMessage m;
  m.type = net::IcmpMessage::kEchoRequest;
  m.identifier = 0x4642;
  m.sequence = 1;
  m.payload = {1, 2, 3};  // odd length exercises checksum tail handling
  std::vector<util::Bytes> out;
  out.push_back(m.serialize());
  m.type = net::IcmpMessage::kEchoReply;
  m.payload.clear();
  out.push_back(m.serialize());
  return out;
}

// --- Fragment reassembly (structured: input decodes to a fragment list) --

bool run_fragment(util::BytesView input) {
  FuzzInput in(input);
  util::VirtualClock clock(0);
  net::Reassembler reasm(clock);
  bool completed_any = false;
  const std::size_t count = in.u8() % 16;
  for (std::size_t i = 0; i < count; ++i) {
    net::Ipv4Header h;
    h.source = net::Ipv4Address{0x0A000001};
    h.destination = net::Ipv4Address{0x0A000002};
    h.protocol = 17;
    h.id = in.u8() % 4;  // few ids, so fragment sets actually meet
    h.fragment_offset = in.u16() & 0x1FFF;
    const std::uint8_t flags = in.u8();
    h.more_fragments = flags & 1;
    std::size_t len = in.u8();
    if (flags & 2) len = len / 8 * 8;  // bias toward completable sets
    util::Bytes payload(len, static_cast<std::uint8_t>(i));
    h.total_length =
        static_cast<std::uint16_t>(h.header_size() + payload.size());
    const auto done = reasm.push(h, std::move(payload));
    if (!done) continue;
    completed_any = true;
    // A completed datagram must be a self-consistent, serializable packet:
    // no fragment bits left, lengths agreeing, within the 16-bit ceiling.
    FUZZ_CHECK(!done->header.more_fragments, input);
    FUZZ_CHECK(done->header.fragment_offset == 0, input);
    FUZZ_CHECK(done->payload.size() <= net::Reassembler::kMaxReassembledPayload,
               input);
    FUZZ_CHECK(done->header.total_length ==
                   done->header.header_size() + done->payload.size(),
               input);
    FUZZ_CHECK(
        net::Ipv4Header::parse(done->header.serialize(done->payload))
            .has_value(),
        input);
  }
  FUZZ_CHECK(reasm.pending() <= 4, input);  // one partial per id at most
  return completed_any;
}

std::vector<util::Bytes> seeds_fragment() {
  // Record format: count, then per fragment {id, offset_hi, offset_lo,
  // flags (bit0 = more_fragments, bit1 = align length), length, }.
  return {
      // Two-piece datagram: [0,8) mf, then final [8,12).
      {2, 0, 0x00, 0x00, 0x03, 8, 0, 0x00, 0x01, 0x00, 4},
      // Unfragmented pass-through.
      {1, 1, 0x00, 0x00, 0x00, 32},
      // A lone tail fragment (never completes).
      {1, 2, 0x00, 0x04, 0x00, 16},
  };
}

// --- pcap capture files ---------------------------------------------------

bool run_pcap(util::BytesView wire) {
  const auto cap = net::PcapReader::parse(wire);
  if (!cap) return false;
  // Bounded-parse contract: claimed lengths never buy allocation or reads
  // beyond the bytes actually present.
  FUZZ_CHECK(cap->snaplen > 0, wire);
  for (const auto& r : cap->records) {
    FUZZ_CHECK(r.frame.size() <= cap->snaplen, wire);
    FUZZ_CHECK(r.frame.size() <= r.orig_len, wire);
    FUZZ_CHECK(r.frame.size() <= wire.size(), wire);
  }

  // Round trip through the writer: replaying every recorded frame must
  // yield a capture the reader accepts with byte-identical bodies -- these
  // are exactly the framing assumptions tools/fbs_dissect.py makes.
  // (Timestamps are the writer's clock, not the original's, so they are not
  // compared; frames above the writer's snap length truncate like a kernel
  // capture.)
  util::VirtualClock clock(util::minutes(1));
  util::Bytes re;
  net::PcapWriter writer(&re, clock);
  for (const auto& r : cap->records) writer.record(r.frame);
  const auto back = net::PcapReader::parse(re);
  FUZZ_CHECK(back.has_value(), wire);
  FUZZ_CHECK(!back->swapped, wire);
  FUZZ_CHECK(back->linktype == net::kPcapLinktypeRaw, wire);
  FUZZ_CHECK(back->records.size() == cap->records.size(), wire);
  for (std::size_t i = 0; i < back->records.size(); ++i) {
    const util::Bytes& orig = cap->records[i].frame;
    const net::PcapReader::Record& rt = back->records[i];
    const std::size_t kept =
        std::min<std::size_t>(orig.size(), net::kPcapSnapLen);
    FUZZ_CHECK(rt.orig_len == orig.size(), wire);
    FUZZ_CHECK(rt.frame.size() == kept, wire);
    FUZZ_CHECK(std::equal(rt.frame.begin(), rt.frame.end(), orig.begin()),
               wire);
  }
  return true;
}

std::vector<util::Bytes> seeds_pcap() {
  util::VirtualClock clock(util::minutes(1));
  std::vector<util::Bytes> out;

  // Header-only capture (legal: zero records).
  out.emplace_back();
  { net::PcapWriter w(&out.back(), clock); }

  // Two records, IPv4-shaped bodies of different sizes.
  out.emplace_back();
  {
    net::PcapWriter w(&out.back(), clock);
    util::Bytes frame(20, 0);
    frame[0] = 0x45;
    frame[3] = 20;
    w.record(frame);
    frame.resize(48, 0xEE);
    frame[3] = 48;
    w.record(frame);
  }

  // The same capture with every header field byte-swapped: the
  // other-endianness path, which random mutation almost never reaches from
  // a native-order seed (the magic must flip wholesale).
  {
    util::Bytes swapped = out.back();
    const auto swap32 = [&](std::size_t at) {
      std::swap(swapped[at], swapped[at + 3]);
      std::swap(swapped[at + 1], swapped[at + 2]);
    };
    const auto swap16 = [&](std::size_t at) {
      std::swap(swapped[at], swapped[at + 1]);
    };
    swap32(0);             // magic
    swap16(4);             // version major
    swap16(6);             // version minor
    swap32(8);             // thiszone
    swap32(12);            // sigfigs
    swap32(16);            // snaplen
    swap32(20);            // linktype
    std::size_t at = 24;   // record headers: 4 x u32 each
    while (at + 16 <= swapped.size()) {
      const std::uint32_t incl = static_cast<std::uint32_t>(swapped[at + 8]) |
                                 (static_cast<std::uint32_t>(swapped[at + 9])
                                  << 8) |
                                 (static_cast<std::uint32_t>(swapped[at + 10])
                                  << 16) |
                                 (static_cast<std::uint32_t>(swapped[at + 11])
                                  << 24);
      swap32(at);
      swap32(at + 4);
      swap32(at + 8);
      swap32(at + 12);
      at += 16 + incl;
    }
    out.push_back(std::move(swapped));
  }
  return out;
}

// --- Certificate / directory (keying-plane bypass messages) --------------

bool run_certificate(util::BytesView wire) {
  cert::WireDecodeError err{};
  const auto c = cert::PublicValueCertificate::parse(wire, &err);
  if (!c) return false;
  // Canonical: re-encoding must be byte-identical, or the signature over
  // tbs_bytes() would not survive a store-and-forward hop.
  FUZZ_CHECK(c->serialize() == owned(wire), wire);
  return true;
}

cert::PublicValueCertificate sample_certificate() {
  cert::PublicValueCertificate c;
  c.subject = {10, 0, 0, 1};
  c.group_name = "test-group";
  c.public_value = util::Bytes(16, 0x42);
  c.not_before = util::minutes(990);
  c.not_after = util::minutes(101000);
  c.serial = 3;
  c.signature = util::Bytes(64, 0x5A);  // decode does not verify signatures
  return c;
}

std::vector<util::Bytes> seeds_certificate() {
  std::vector<util::Bytes> out;
  out.push_back(sample_certificate().serialize());
  cert::PublicValueCertificate empty;
  out.push_back(empty.serialize());
  return out;
}

bool run_keying(util::BytesView wire) {
  bool accepted = false;
  if (const auto req = cert::DirectoryRequest::parse(wire)) {
    FUZZ_CHECK(req->serialize() == owned(wire), wire);
    accepted = true;
  }
  if (const auto resp = cert::DirectoryResponse::parse(wire)) {
    // The kind byte disambiguates: both parsers accepting one wire would
    // make the bypass protocol ambiguous.
    FUZZ_CHECK(!accepted, wire);
    FUZZ_CHECK(resp->serialize() == owned(wire), wire);
    FUZZ_CHECK((resp->status == cert::FetchStatus::kOk) ==
                   resp->cert.has_value(),
               wire);
    accepted = true;
  }
  // Exercise the service entry points on the same bytes: they must digest
  // anything, and an answer they produce must round-trip.
  static cert::DirectoryService service;
  (void)service.publish_wire(wire);
  if (const auto answer = service.serve_wire(wire)) {
    const util::Bytes re = answer->serialize();
    const auto back = cert::DirectoryResponse::parse(re);
    FUZZ_CHECK(back.has_value(), wire);
    FUZZ_CHECK(back->serialize() == re, wire);
  }
  return accepted;
}

std::vector<util::Bytes> seeds_keying() {
  std::vector<util::Bytes> out;
  cert::DirectoryRequest req;
  req.subject = {10, 0, 0, 1};
  out.push_back(req.serialize());
  cert::DirectoryResponse ok;
  ok.status = cert::FetchStatus::kOk;
  ok.cert = sample_certificate();
  out.push_back(ok.serialize());
  cert::DirectoryResponse miss;
  miss.status = cert::FetchStatus::kNotFound;
  out.push_back(miss.serialize());
  return out;
}

// --- Engine receive path -------------------------------------------------

/// A minimal two-principal world (CA, directory, MKDs, key managers) built
/// once per process; the engine target replays mutated genuine wires into
/// it. Deliberately mirrors tests/support/world.hpp without depending on
/// test-only headers.
struct EngineWorld {
  util::SplitMix64 rng{1997};
  util::VirtualClock clock{util::minutes(1000)};
  cert::CertificateAuthority ca;
  cert::DirectoryService directory;
  core::Principal alice, bob;
  std::unique_ptr<core::MasterKeyDaemon> alice_mkd, bob_mkd;
  std::unique_ptr<core::KeyManager> alice_keys, bob_keys;
  std::unique_ptr<core::FbsEndpoint> sender, receiver;

  EngineWorld() : ca(512, rng) {
    const crypto::DhGroup& group = crypto::test_group();
    const auto setup = [&](const char* ip, core::Principal& p,
                           std::unique_ptr<core::MasterKeyDaemon>& mkd,
                           std::unique_ptr<core::KeyManager>& keys) {
      p = core::Principal::from_ipv4(*net::Ipv4Address::parse(ip));
      const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
      directory.publish(ca.issue(
          p.address, group.name,
          dh.public_value.to_bytes_be(group.element_size()),
          clock.now() - util::minutes(10),
          clock.now() + util::minutes(100000)));
      mkd = std::make_unique<core::MasterKeyDaemon>(
          p, dh.private_value, group, ca, directory, clock, 16);
      keys = std::make_unique<core::KeyManager>(*mkd, 16);
    };
    setup("10.0.0.1", alice, alice_mkd, alice_keys);
    setup("10.0.0.2", bob, bob_mkd, bob_keys);
    sender = std::make_unique<core::FbsEndpoint>(alice, core::FbsConfig{},
                                                 *alice_keys, clock, rng);
    receiver = std::make_unique<core::FbsEndpoint>(bob, core::FbsConfig{},
                                                   *bob_keys, clock, rng);
  }
};

EngineWorld& engine_world() {
  static EngineWorld world;
  return world;
}

bool run_engine(util::BytesView input) {
  EngineWorld& w = engine_world();
  FuzzInput in(input);
  const std::uint8_t mode = in.u8();
  util::Bytes body_buf;

  if ((mode & 1) == 0) {
    // Raw mode: arbitrary bytes straight into unprotect_into. Must never
    // crash; authenticating is a MAC forgery and essentially impossible.
    const auto outcome =
        w.receiver->unprotect_into(w.alice, in.rest(), body_buf);
    return std::holds_alternative<core::ReceivedInfo>(outcome);
  }

  // Edit mode: protect a genuine datagram, splice attacker edits into the
  // wire, and check the all-or-nothing property.
  const bool secret = in.u8() & 1;
  const std::size_t body_len = in.u8() % 65;
  core::Datagram d;
  d.source = w.alice;
  d.destination = w.bob;
  d.attrs.protocol = 17;
  d.attrs.source_port = 7;
  d.attrs.destination_port = 9;
  const util::BytesView body = in.take(body_len);
  d.body.assign(body.begin(), body.end());
  const auto wire = w.sender->protect(d, secret);
  FUZZ_CHECK(wire.has_value(), input);

  util::Bytes mutated = *wire;
  const std::size_t n_edits = in.u8() % 9;
  for (std::size_t i = 0; i < n_edits && !mutated.empty(); ++i) {
    const std::size_t pos = in.u16() % mutated.size();
    const std::uint8_t op = in.u8();
    const std::uint8_t val = in.u8();
    switch (op % 3) {
      case 0: mutated[pos] = val; break;
      case 1: mutated[pos] ^= val; break;
      default: {
        // Zero-fill run: the shape that would discover a constant-tag
        // (NOP-suite) forgery hole, among others.
        const std::size_t run =
            std::min<std::size_t>(val % 17, mutated.size() - pos);
        std::fill_n(mutated.begin() + static_cast<std::ptrdiff_t>(pos), run,
                    0);
        break;
      }
    }
  }

  const auto outcome = w.receiver->unprotect_into(w.alice, mutated, body_buf);
  if (std::holds_alternative<core::ReceivedInfo>(outcome)) {
    // Accept implies untampered: every header field is MAC-covered or
    // validated, so only the byte-exact sender output may authenticate --
    // and then the recovered body must be the original plaintext.
    FUZZ_CHECK(mutated == *wire, input);
    FUZZ_CHECK(body_buf == d.body, input);
    return true;
  }
  // Reject implies tampered: the unmutated wire must never be refused.
  FUZZ_CHECK(mutated != *wire, input);
  return false;
}

std::vector<util::Bytes> seeds_engine() {
  return {
      // Edit mode, 4-byte body, no edits: the genuine-wire-accepted probe.
      {0x01, 0x00, 0x04, 'A', 'A', 'A', 'A', 0x00},
      // Edit mode, secret body, one zero-fill edit over the MAC region.
      {0x01, 0x01, 0x08, 1, 2, 3, 4, 5, 6, 7, 8, 0x01, 0x00, 0x12, 0x02,
       0x10},
      // Raw mode garbage.
      {0x00, 0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22},
  };
}

}  // namespace

const std::vector<FuzzTarget>& all_targets() {
  static const std::vector<FuzzTarget> targets = {
      {"fbs_header", run_fbs_header, seeds_fbs_header},
      {"ipv4", run_ipv4, seeds_ipv4},
      {"udp", run_udp, seeds_udp},
      {"tcp", run_tcp, seeds_tcp},
      {"icmp", run_icmp, seeds_icmp},
      {"fragment", run_fragment, seeds_fragment},
      {"certificate", run_certificate, seeds_certificate},
      {"keying", run_keying, seeds_keying},
      {"engine", run_engine, seeds_engine},
      {"pcap", run_pcap, seeds_pcap},
  };
  return targets;
}

const FuzzTarget* find_target(std::string_view name) {
  for (const FuzzTarget& t : all_targets())
    if (t.name == name) return &t;
  return nullptr;
}

}  // namespace fbs::fuzz
