// Regression corpus I/O. Corpus entries live as hex text files
// (tests/fuzz/corpus/<target>/*.hex) so diffs stay reviewable: whitespace
// is ignored and '#' starts a comment to end of line, letting each entry
// document the bug it pins.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace fbs::fuzz {

/// Decode hex text (whitespace-tolerant, '#' comments). nullopt on an odd
/// digit count or a non-hex character.
std::optional<util::Bytes> parse_hex_text(std::string_view text);

/// Load every *.hex entry in `dir`, sorted by filename. A missing directory
/// yields an empty corpus; an unparseable entry is a hard error (empty
/// optional) so a corrupted corpus cannot silently pass.
std::optional<std::vector<util::Bytes>> load_corpus(const std::string& dir);

}  // namespace fbs::fuzz
