#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fbs::fuzz {

std::optional<util::Bytes> parse_hex_text(std::string_view text) {
  util::Bytes out;
  int pending = -1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int digit = std::isdigit(static_cast<unsigned char>(c)) ? c - '0'
                      : c >= 'a' && c <= 'f'                      ? c - 'a' + 10
                      : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                             : -1;
    if (digit < 0) return std::nullopt;
    if (pending < 0) {
      pending = digit;
    } else {
      out.push_back(static_cast<std::uint8_t>(pending << 4 | digit));
      pending = -1;
    }
  }
  if (pending >= 0) return std::nullopt;  // odd digit count
  return out;
}

std::optional<std::vector<util::Bytes>> load_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<util::Bytes> out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return out;

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hex")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    const auto bytes = parse_hex_text(text.str());
    if (!bytes) return std::nullopt;
    out.push_back(*bytes);
  }
  return out;
}

}  // namespace fbs::fuzz
