// Deterministic mutation driver: the stock-toolchain stand-in for libFuzzer.
//
// Seeded xoshiro256** exploration over a pool of structure-aware seeds plus
// any loaded corpus entries; inputs a target *accepts* feed back into the
// pool (the coarse coverage signal available without compiler
// instrumentation). The same target table drives real libFuzzer when the
// tree is configured with FBS_FUZZ=ON under Clang; this driver exists so
// `ctest -L fuzz` exercises every harness on any toolchain, reproducibly.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/targets.hpp"
#include "util/bytes.hpp"

namespace fbs::fuzz {

struct DriverOptions {
  std::uint64_t iterations = 1000;
  std::uint64_t seed = 1;
  std::size_t max_input = 4096;  // mutants are clamped to this size
  std::size_t pool_cap = 256;    // accepted-mutant pool bound
  /// Extra starting inputs (e.g. the checked-in regression corpus); each is
  /// replayed once before mutation begins.
  std::vector<util::Bytes> extra_seeds;
};

struct DriverStats {
  std::uint64_t executions = 0;
  std::uint64_t accepted = 0;
  std::size_t pool_size = 0;
};

/// Run `target` for options.iterations mutated inputs (after replaying every
/// seed and extra seed verbatim). Oracle violations abort via FUZZ_CHECK.
DriverStats run_target(const FuzzTarget& target, const DriverOptions& options);

}  // namespace fbs::fuzz
