// Shared plumbing for the structure-aware decoder fuzzing subsystem
// (DESIGN.md section 5e): a libFuzzer-style bounded input consumer and the
// FUZZ_CHECK oracle macro. Oracle violations abort() after dumping the
// offending input as hex, which is the one crash signal every harness
// understands -- gtest reports the failed test, libFuzzer saves the input,
// and the sanitizers print their usual context.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::fuzz {

/// Print `expr`/location plus a hex dump of `input` to stderr, then abort.
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       util::BytesView input);

/// Assert a decoder property over the current fuzz input. Unlike gtest
/// EXPECT_*, this works identically inside the deterministic driver, under
/// libFuzzer, and in a standalone reproduction binary.
#define FUZZ_CHECK(cond, input)                                  \
  do {                                                           \
    if (!(cond)) ::fbs::fuzz::fail(#cond, __FILE__, __LINE__, (input)); \
  } while (0)

/// Bounded consumer over a fuzz input. Reads past the end yield zeros (and
/// empty spans) instead of failing, so structured targets can decode any
/// byte string into a well-formed operation sequence -- the property that
/// makes mutation-based exploration of structured targets productive.
class FuzzInput {
 public:
  explicit FuzzInput(util::BytesView data) : data_(data) {}

  std::uint8_t u8() { return pos_ < data_.size() ? data_[pos_++] : 0; }
  std::uint16_t u16() {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(hi << 8 | u8());
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return hi << 16 | u16();
  }

  /// Up to n bytes (fewer if the input is exhausted).
  util::BytesView take(std::size_t n) {
    n = std::min(n, remaining());
    const util::BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  util::BytesView rest() { return take(remaining()); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  util::BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace fbs::fuzz
