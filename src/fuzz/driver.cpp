#include "fuzz/driver.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "util/rng.hpp"

namespace fbs::fuzz {

namespace {

/// xoshiro256**: fast, well-distributed, and not shared with any library
/// component, so driver schedules never perturb (or depend on) protocol
/// RNG draws. Seeded through SplitMix64 per the generator's reference.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    util::SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next_u64();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform-ish in [0, bound); bound >= 1.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

constexpr std::array<std::uint8_t, 14> kInterestingBytes = {
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20,
    0x40, 0x45, 0x50, 0x7F, 0x80, 0xFE, 0xFF};
constexpr std::array<std::uint16_t, 12> kInterestingU16 = {
    0, 1, 7, 8, 18, 20, 0x00FF, 0x0100, 0x1FFF, 0x7FFF, 0x8000, 0xFFFF};
constexpr std::array<std::uint32_t, 8> kInterestingU32 = {
    0, 1, 0xFFFF, 0x10000, 0x10001, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF};

void write_be(util::Bytes& b, std::size_t pos, std::uint64_t v,
              std::size_t n) {
  for (std::size_t i = 0; i < n && pos + i < b.size(); ++i)
    b[pos + i] = static_cast<std::uint8_t>(v >> (8 * (n - 1 - i)));
}

/// One mutation step. Several are length-field-shaped on purpose: wire
/// decoders die on length disagreements, so nudged counters, interesting
/// 16/32-bit writes at arbitrary offsets, and zero-filled spans pull far
/// more weight than uniform noise.
void mutate(util::Bytes& b, Xoshiro256& rng,
            const std::vector<util::Bytes>& pool) {
  if (b.empty()) {
    b.push_back(static_cast<std::uint8_t>(rng.next()));
    return;
  }
  const std::size_t pos = rng.below(b.size());
  switch (rng.below(12)) {
    case 0:  // bit flip
      b[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // random byte
      b[pos] = static_cast<std::uint8_t>(rng.next());
      break;
    case 2:  // interesting byte
      b[pos] = kInterestingBytes[rng.below(kInterestingBytes.size())];
      break;
    case 3:  // interesting big-endian u16
      write_be(b, pos, kInterestingU16[rng.below(kInterestingU16.size())], 2);
      break;
    case 4:  // interesting big-endian u32
      write_be(b, pos, kInterestingU32[rng.below(kInterestingU32.size())], 4);
      break;
    case 5:  // nudge a (possible) length counter
      b[pos] = static_cast<std::uint8_t>(b[pos] + (rng.next() & 1 ? 1 : -1));
      break;
    case 6:  // truncate
      b.resize(rng.below(b.size() + 1));
      break;
    case 7: {  // extend with random tail
      const std::size_t n = 1 + rng.below(16);
      for (std::size_t i = 0; i < n; ++i)
        b.push_back(static_cast<std::uint8_t>(rng.next()));
      break;
    }
    case 8: {  // duplicate a span
      const std::size_t n = 1 + rng.below(std::min<std::size_t>(
                                    16, b.size() - pos));
      b.insert(b.begin() + static_cast<std::ptrdiff_t>(pos),
               b.begin() + static_cast<std::ptrdiff_t>(pos),
               b.begin() + static_cast<std::ptrdiff_t>(pos + n));
      break;
    }
    case 9: {  // remove a span
      const std::size_t n = 1 + rng.below(std::min<std::size_t>(
                                    16, b.size() - pos));
      b.erase(b.begin() + static_cast<std::ptrdiff_t>(pos),
              b.begin() + static_cast<std::ptrdiff_t>(pos + n));
      break;
    }
    case 10: {  // zero-fill a span (constant-tag / cleared-field shapes)
      const std::size_t n = 1 + rng.below(std::min<std::size_t>(
                                    24, b.size() - pos));
      std::fill_n(b.begin() + static_cast<std::ptrdiff_t>(pos), n, 0);
      break;
    }
    default: {  // splice a tail from another pool member
      const util::Bytes& other = pool[rng.below(pool.size())];
      if (other.empty()) break;
      const std::size_t cut = rng.below(other.size());
      b.resize(pos);
      b.insert(b.end(), other.begin() + static_cast<std::ptrdiff_t>(cut),
               other.end());
      break;
    }
  }
}

std::uint64_t fnv1a(util::BytesView b) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t byte : b) {
    h ^= byte;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

DriverStats run_target(const FuzzTarget& target,
                       const DriverOptions& options) {
  DriverStats stats;
  Xoshiro256 rng(options.seed ^ fnv1a(util::to_bytes(target.name)));

  std::vector<util::Bytes> pool = target.seeds();
  pool.insert(pool.end(), options.extra_seeds.begin(),
              options.extra_seeds.end());
  if (pool.empty()) pool.push_back({});

  std::unordered_set<std::uint64_t> seen;
  for (const util::Bytes& input : pool) {
    ++stats.executions;
    if (target.run(input)) ++stats.accepted;
    seen.insert(fnv1a(input));
  }

  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    util::Bytes input = rng.next() % 16 == 0
                            ? util::Bytes{}
                            : pool[rng.below(pool.size())];
    const std::uint64_t steps = 1 + rng.below(4);
    for (std::uint64_t s = 0; s < steps; ++s) mutate(input, rng, pool);
    if (input.size() > options.max_input) input.resize(options.max_input);

    ++stats.executions;
    const bool accepted = target.run(input);
    if (accepted) {
      ++stats.accepted;
      // Accepted mutants are new valid-looking structures: keep them as
      // future mutation bases (bounded, deduplicated).
      if (pool.size() < options.pool_cap && seen.insert(fnv1a(input)).second)
        pool.push_back(std::move(input));
    }
  }
  stats.pool_size = pool.size();
  return stats;
}

}  // namespace fbs::fuzz
