// Primality testing and prime generation, used by the RSA certificate
// authority (src/cert) and by the Blum-Blum-Shub generator (src/crypto),
// which needs Blum primes (p ≡ 3 mod 4).
#pragma once

#include <cstddef>

#include "bignum/uint.hpp"
#include "util/rng.hpp"

namespace fbs::bignum {

/// Miller-Rabin probabilistic primality test after trial division by small
/// primes. `rounds` random bases; error probability <= 4^-rounds.
bool is_probable_prime(const Uint& n, util::RandomSource& rng,
                       int rounds = 24);

/// Random probable prime with exactly `bits` bits (top and low bit set).
Uint generate_prime(std::size_t bits, util::RandomSource& rng,
                    int rounds = 24);

/// Random Blum prime (p ≡ 3 mod 4) with exactly `bits` bits.
Uint generate_blum_prime(std::size_t bits, util::RandomSource& rng,
                         int rounds = 24);

}  // namespace fbs::bignum
