#include "bignum/uint.hpp"

#include <algorithm>
#include <cassert>

namespace fbs::bignum {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

Uint::Uint(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void Uint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::optional<Uint> Uint::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty()) return std::nullopt;
  Uint out;
  // Consume nibbles most-significant first.
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else if (c == ' ' || c == '\n' || c == '\t') continue;  // allow formatted constants
    else return std::nullopt;
    out = (out << 4) + Uint(static_cast<std::uint64_t>(v));
  }
  return out;
}

Uint Uint::from_bytes_be(util::BytesView b) {
  Uint out;
  for (std::uint8_t byte : b) out = (out << 8) + Uint(byte);
  return out;
}

std::string Uint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 28; shift >= 0; shift -= 4)
      out.push_back(kDigits[(*it >> shift) & 0xF]);
  }
  const auto first = out.find_first_not_of('0');
  return out.substr(first);
}

util::Bytes Uint::to_bytes_be(std::size_t width) const {
  util::Bytes out;
  for (std::uint32_t limb : limbs_) {
    out.push_back(static_cast<std::uint8_t>(limb));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  std::reverse(out.begin(), out.end());
  if (width) {
    assert(out.size() <= width && "value does not fit requested width");
    out.insert(out.begin(), width - out.size(), 0);
  }
  return out;
}

std::size_t Uint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool Uint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t Uint::low_u64() const {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::strong_ordering Uint::operator<=>(const Uint& o) const {
  if (limbs_.size() != o.limbs_.size())
    return limbs_.size() <=> o.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] <=> o.limbs_[i];
  }
  return std::strong_ordering::equal;
}

Uint Uint::operator+(const Uint& o) const {
  Uint out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

Uint Uint::operator-(const Uint& o) const {
  assert(*this >= o && "unsigned subtraction underflow");
  Uint out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow -
                        (i < o.limbs_.size() ? o.limbs_[i] : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

Uint Uint::operator*(const Uint& o) const {
  if (is_zero() || o.is_zero()) return Uint();
  Uint out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + a * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + o.limbs_.size()] = static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

Uint Uint::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  Uint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

Uint Uint::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return Uint();
  const std::size_t bit_shift = bits % 32;
  Uint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

DivMod Uint::divmod(const Uint& divisor) const {
  assert(!divisor.is_zero() && "division by zero");
  if (*this < divisor) return {Uint(), *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    Uint q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = rem << 32 | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, Uint(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D (base 2^32).
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (std::uint32_t top = divisor.limbs_.back(); !(top & 0x80000000u);
       top <<= 1)
    ++shift;
  const Uint un_big = *this << static_cast<std::size_t>(shift);
  const Uint vn = divisor << static_cast<std::size_t>(shift);
  std::vector<std::uint32_t> u = un_big.limbs_;
  u.resize(limbs_.size() + 1, 0);  // ensure u[m+n] exists
  const std::vector<std::uint32_t>& v = vn.limbs_;

  Uint q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat.
    const std::uint64_t num =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = num / v[n - 1];
    std::uint64_t rhat = num % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xFFFFFFFFull) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(t);
    }
    const std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
    if (t < 0) {
      // D6: qhat was one too large; add the divisor back (rare branch).
      --q.limbs_[j];
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + c);
    }
  }
  q.trim();

  // D8: the remainder is u[0..n) shifted back down.
  Uint r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

Uint Uint::mulmod(const Uint& a, const Uint& b, const Uint& m) {
  return (a * b) % m;
}

Uint Uint::powmod(const Uint& base, const Uint& exp, const Uint& m) {
  assert(!m.is_zero());
  if (m == Uint(1)) return Uint();
  Uint result(1);
  Uint b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, b, m);
    b = mulmod(b, b, m);
  }
  return result;
}

Uint Uint::gcd(Uint a, Uint b) {
  while (!b.is_zero()) {
    Uint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::optional<Uint> Uint::modinv(const Uint& a, const Uint& m) {
  // Extended Euclid with explicitly signed Bezout coefficients.
  struct Signed {
    Uint mag;
    bool neg = false;
  };
  auto sub = [](const Signed& x, const Signed& y) -> Signed {
    // x - y
    if (x.neg == y.neg) {
      if (x.mag >= y.mag) return {x.mag - y.mag, x.neg};
      return {y.mag - x.mag, !x.neg};
    }
    return {x.mag + y.mag, x.neg};
  };
  auto mul = [](const Signed& x, const Uint& k) -> Signed {
    return {x.mag * k, x.neg};
  };

  Uint old_r = a % m, r = m;
  Signed old_t{Uint(1), false}, t{Uint(0), false};
  while (!r.is_zero()) {
    const auto dm = old_r.divmod(r);
    Uint next_r = dm.remainder;
    Signed next_t = sub(old_t, mul(t, dm.quotient));
    old_r = std::move(r);
    r = std::move(next_r);
    old_t = t;
    t = next_t;
  }
  if (old_r != Uint(1)) return std::nullopt;  // not coprime
  if (old_t.neg) return m - (old_t.mag % m);
  return old_t.mag % m;
}

Uint Uint::random_bits(util::RandomSource& rng, std::size_t bits) {
  if (bits == 0) return Uint();
  Uint out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) limb = rng.next_u32();
  const std::size_t top_bits = (bits - 1) % 32 + 1;
  std::uint32_t& top = out.limbs_.back();
  if (top_bits < 32) top &= (1u << top_bits) - 1;
  top |= 1u << (top_bits - 1);  // force exact bit length
  return out;
}

Uint Uint::random_below(util::RandomSource& rng, const Uint& bound) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  // Rejection sampling: uniform in [0, 2^bits) until < bound.
  for (;;) {
    Uint candidate;
    candidate.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) limb = rng.next_u32();
    const std::size_t top_bits = (bits - 1) % 32 + 1;
    if (top_bits < 32) candidate.limbs_.back() &= (1u << top_bits) - 1;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

}  // namespace fbs::bignum
