#include "bignum/prime.hpp"

#include <array>

namespace fbs::bignum {

namespace {

constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool miller_rabin_round(const Uint& n, const Uint& n_minus_1, const Uint& d,
                        std::size_t r, const Uint& a) {
  Uint x = Uint::powmod(a, d, n);
  if (x == Uint(1) || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = Uint::mulmod(x, x, n);
    if (x == n_minus_1) return true;
    if (x == Uint(1)) return false;  // nontrivial sqrt of 1 -> composite
  }
  return false;
}

}  // namespace

bool is_probable_prime(const Uint& n, util::RandomSource& rng, int rounds) {
  if (n < Uint(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == Uint(p)) return true;
    if ((n % Uint(p)).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const Uint n_minus_1 = n - Uint(1);
  Uint d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  const Uint span = n - Uint(4);  // bases in [2, n-2]
  for (int i = 0; i < rounds; ++i) {
    const Uint a = Uint::random_below(rng, span) + Uint(2);
    if (!miller_rabin_round(n, n_minus_1, d, r, a)) return false;
  }
  return true;
}

Uint generate_prime(std::size_t bits, util::RandomSource& rng, int rounds) {
  for (;;) {
    Uint candidate = Uint::random_bits(rng, bits);
    if (candidate.is_even()) candidate = candidate + Uint(1);
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

Uint generate_blum_prime(std::size_t bits, util::RandomSource& rng,
                         int rounds) {
  for (;;) {
    const Uint p = generate_prime(bits, rng, rounds);
    if ((p % Uint(4)) == Uint(3)) return p;
  }
}

}  // namespace fbs::bignum
