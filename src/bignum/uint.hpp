// Arbitrary-precision unsigned integers.
//
// This is the arithmetic substrate for the Diffie-Hellman zero-message keying
// scheme (Section 5.1: K_{S,D} = g^{sd} mod p), for the RSA signatures on
// public-value certificates, and for the Blum-Blum-Shub generator the paper
// cites as the canonically secure (but slow) random source. The original
// implementation used CryptoLib's bignum; we build our own.
//
// Representation: little-endian vector of 32-bit limbs, normalized so the
// most significant limb is non-zero; zero is the empty vector.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fbs::bignum {

struct DivMod;  // defined after Uint

class Uint {
 public:
  Uint() = default;
  Uint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop is intended

  /// Parse hexadecimal (no 0x prefix required; one is accepted).
  static std::optional<Uint> from_hex(std::string_view hex);
  /// Parse big-endian bytes (network order, as keys appear on the wire).
  static Uint from_bytes_be(util::BytesView b);

  std::string to_hex() const;
  /// Big-endian bytes, zero-padded/truncated-checked to `width` if nonzero.
  /// Width smaller than the value's natural size is a programming error.
  util::Bytes to_bytes_be(std::size_t width = 0) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  /// Low 64 bits (value need not fit).
  std::uint64_t low_u64() const;

  std::strong_ordering operator<=>(const Uint& o) const;
  bool operator==(const Uint& o) const = default;

  Uint operator+(const Uint& o) const;
  /// Requires *this >= o (unsigned arithmetic); violating this asserts.
  Uint operator-(const Uint& o) const;
  Uint operator*(const Uint& o) const;
  Uint operator<<(std::size_t bits) const;
  Uint operator>>(std::size_t bits) const;

  /// Knuth Algorithm D. Divisor must be non-zero.
  DivMod divmod(const Uint& divisor) const;
  Uint operator/(const Uint& o) const;
  Uint operator%(const Uint& o) const;

  /// (a * b) mod m
  static Uint mulmod(const Uint& a, const Uint& b, const Uint& m);
  /// (base ^ exp) mod m by square-and-multiply; m must be non-zero.
  static Uint powmod(const Uint& base, const Uint& exp, const Uint& m);
  static Uint gcd(Uint a, Uint b);
  /// Multiplicative inverse of a mod m, if gcd(a, m) == 1.
  static std::optional<Uint> modinv(const Uint& a, const Uint& m);

  /// Uniform value in [0, bound) drawn from `rng`; bound must be non-zero.
  static Uint random_below(util::RandomSource& rng, const Uint& bound);
  /// Random value with exactly `bits` bits (top bit set).
  static Uint random_bits(util::RandomSource& rng, std::size_t bits);

 private:
  void trim();

  std::vector<std::uint32_t> limbs_;
};

struct DivMod {
  Uint quotient;
  Uint remainder;
};

inline Uint Uint::operator/(const Uint& o) const { return divmod(o).quotient; }
inline Uint Uint::operator%(const Uint& o) const { return divmod(o).remainder; }

}  // namespace fbs::bignum
