// Basic host-pair keying (Section 2.2): the implicit pair-based master key
// directly encrypts traffic. No per-flow separation, no MAC -- which is why
// the paper notes it "can suffer from a cut-and-paste attack": ciphertext
// from one datagram can be spliced into another undetected, and compromise
// of the master key exposes ALL past and future traffic between the hosts.
// Implemented as the comparison baseline for the Section 6.1/7.4 claims and
// the attack tests.
#pragma once

#include <optional>

#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "util/rng.hpp"

namespace fbs::baselines {

class HostPairProtocol {
 public:
  HostPairProtocol(core::Principal self, core::KeyManager& keys,
                   util::RandomSource& rng)
      : self_(std::move(self)), keys_(keys), iv_gen_(rng.next_u64()) {}

  /// wire = iv(8) || DES-CBC_{K_{S,D}}(body). Authentication: none.
  std::optional<util::Bytes> protect(const core::Datagram& d);
  std::optional<util::Bytes> unprotect(const core::Principal& source,
                                       util::BytesView wire);

 private:
  core::Principal self_;
  core::KeyManager& keys_;
  util::Lcg48 iv_gen_;
};

}  // namespace fbs::baselines
