#include "baselines/kdc.hpp"

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"

namespace fbs::baselines {

namespace {

constexpr std::size_t kSessionKeySize = 8;

crypto::Des des_for(util::BytesView key) {
  return crypto::Des(key.subspan(0, crypto::Des::kKeySize));
}

}  // namespace

util::Bytes KeyDistributionCenter::enroll(const core::Principal& p) {
  util::Bytes secret = rng_.next_bytes(kSessionKeySize);
  secrets_[p.address] = secret;
  return secret;
}

std::optional<KeyDistributionCenter::TicketReply>
KeyDistributionCenter::request(const core::Principal& source,
                               const core::Principal& destination) {
  ++requests_;
  if (clock_) clock_->advance(rtt_);
  const auto src = secrets_.find(source.address);
  const auto dst = secrets_.find(destination.address);
  if (src == secrets_.end() || dst == secrets_.end()) return std::nullopt;

  const util::Bytes session_key = rng_.next_bytes(kSessionKeySize);
  TicketReply reply;
  reply.session_key = crypto::encrypt(des_for(src->second),
                                      crypto::CipherMode::kEcb, 0, session_key);
  // The ticket binds the source's address to the session key so the
  // destination knows who it shares the key with.
  util::ByteWriter t;
  t.u32(static_cast<std::uint32_t>(source.address.size()));
  t.bytes(source.address);
  t.bytes(session_key);
  reply.ticket = crypto::encrypt(des_for(dst->second),
                                 crypto::CipherMode::kEcb, 0, t.view());
  return reply;
}

std::optional<util::Bytes> KdcSessionProtocol::protect(
    const core::Datagram& d) {
  auto it = send_sessions_.find(d.destination.address);
  if (it == send_sessions_.end()) {
    // Session setup: the extra message exchange FBS is designed to avoid.
    ++setups_;
    auto reply = kdc_.request(self_, d.destination);
    if (!reply) return std::nullopt;
    const auto key = crypto::decrypt(des_for(secret_),
                                     crypto::CipherMode::kEcb, 0,
                                     reply->session_key);
    if (!key) return std::nullopt;
    it = send_sessions_
             .emplace(d.destination.address, Session{*key, reply->ticket})
             .first;
  }
  const Session& session = it->second;

  const crypto::Des des(session.key);
  const std::uint64_t iv = iv_gen_.next_u64();
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  util::ByteWriter iv_bytes(8);
  iv_bytes.u64(iv);
  const util::Bytes tag = mac.compute(session.key, {iv_bytes.view(), d.body});

  util::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(session.ticket.size()));
  w.bytes(session.ticket);
  w.u64(iv);
  w.bytes(tag);
  w.bytes(crypto::encrypt(des, crypto::CipherMode::kCbc, iv, d.body));
  return w.take();
}

std::optional<util::Bytes> KdcSessionProtocol::unprotect(
    const core::Principal& source, util::BytesView wire) {
  util::ByteReader r(wire);
  const auto ticket_len = r.u16();
  if (!ticket_len) return std::nullopt;
  const auto ticket = r.bytes(*ticket_len);
  const auto iv = r.u64();
  const auto tag = r.bytes(crypto::Md5::kDigestSize);
  if (!ticket || !iv || !tag) return std::nullopt;

  auto it = receive_sessions_.find(source.address);
  if (it == receive_sessions_.end()) {
    // First contact: recover the session key from the ticket.
    const auto opened = crypto::decrypt(des_for(secret_),
                                        crypto::CipherMode::kEcb, 0, *ticket);
    if (!opened) return std::nullopt;
    util::ByteReader tr(*opened);
    const auto addr_len = tr.u32();
    if (!addr_len) return std::nullopt;
    const auto claimed = tr.bytes(*addr_len);
    const auto key = tr.bytes(kSessionKeySize);
    if (!claimed || !key) return std::nullopt;
    if (*claimed != source.address) return std::nullopt;  // ticket mismatch
    it = receive_sessions_.emplace(source.address, *key).first;
  }
  const util::Bytes& key = it->second;

  const crypto::Des des(key);
  auto body = crypto::decrypt(des, crypto::CipherMode::kCbc, *iv, r.rest());
  if (!body) return std::nullopt;

  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  util::ByteWriter iv_bytes(8);
  iv_bytes.u64(*iv);
  const util::Bytes expected = mac.compute(key, {iv_bytes.view(), *body});
  if (!util::ct_equal(expected, *tag)) return std::nullopt;
  return body;
}

void KdcSessionProtocol::teardown(const core::Principal& peer) {
  send_sessions_.erase(peer.address);
  receive_sessions_.erase(peer.address);
}

}  // namespace fbs::baselines
