// Session-based keying through a key distribution center (Section 2.1):
// "before a source sends a datagram, it contacts the KDC to request a
// session key and an authentication ticket" -- Kerberos/Sun-RPC/DCE style.
//
// This baseline exists to quantify exactly what FBS avoids: the setup
// message exchange (a KDC round trip, charged to the virtual clock) and the
// hard per-peer session state at both ends. The ticket -- the session key
// encrypted under the destination's KDC secret -- rides along in every
// datagram so the destination can recover the key statelessly on first
// contact, after which it too holds hard state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "fbs/principal.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::baselines {

/// The trusted third party. Shares a long-term secret with each registered
/// principal.
class KeyDistributionCenter {
 public:
  KeyDistributionCenter(util::RandomSource& rng, util::TimeUs rtt,
                        util::VirtualClock* clock = nullptr)
      : rng_(rng), rtt_(rtt), clock_(clock) {}

  /// Enroll a principal; returns its long-term KDC secret.
  util::Bytes enroll(const core::Principal& p);

  struct TicketReply {
    util::Bytes session_key;  // encrypted under the requestor's secret
    util::Bytes ticket;       // session key encrypted under the target's secret
  };
  /// One KDC round trip (charged to the clock).
  std::optional<TicketReply> request(const core::Principal& source,
                                     const core::Principal& destination);

  std::uint64_t requests() const { return requests_; }

 private:
  util::RandomSource& rng_;
  util::TimeUs rtt_;
  util::VirtualClock* clock_;
  std::map<util::Bytes, util::Bytes> secrets_;  // principal address -> secret
  std::uint64_t requests_ = 0;
};

/// One endpoint of the session-keyed protocol. Note the hard state: the
/// session table survives until explicitly torn down; losing it breaks the
/// session (unlike every FBS cache).
class KdcSessionProtocol {
 public:
  KdcSessionProtocol(core::Principal self, util::Bytes kdc_secret,
                     KeyDistributionCenter& kdc, util::RandomSource& rng)
      : self_(std::move(self)),
        secret_(std::move(kdc_secret)),
        kdc_(kdc),
        iv_gen_(rng.next_u64()) {}

  /// wire = ticket_len(2) || ticket || iv(8) || MAC(16) || ct.
  std::optional<util::Bytes> protect(const core::Datagram& d);
  std::optional<util::Bytes> unprotect(const core::Principal& source,
                                       util::BytesView wire);

  /// Hard-state metrics.
  std::size_t send_sessions() const { return send_sessions_.size(); }
  std::size_t receive_sessions() const { return receive_sessions_.size(); }
  std::uint64_t setup_round_trips() const { return setups_; }

  void teardown(const core::Principal& peer);

 private:
  core::Principal self_;
  util::Bytes secret_;
  KeyDistributionCenter& kdc_;
  util::Lcg48 iv_gen_;
  struct Session {
    util::Bytes key;
    util::Bytes ticket;
  };
  std::map<util::Bytes, Session> send_sessions_;     // peer -> session
  std::map<util::Bytes, util::Bytes> receive_sessions_;  // peer -> key
  std::uint64_t setups_ = 0;
};

}  // namespace fbs::baselines
