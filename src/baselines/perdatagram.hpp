// Host-pair keying with per-datagram keys (Section 2.2's countermeasure to
// cut-and-paste): the master key never touches data; it encrypts a fresh
// per-datagram key, which encrypts and MACs the payload. The catch the
// paper highlights: per-datagram keys must be *cryptographically* random --
// "cryptographically secure random number generators such as the quadratic
// residue generator can be a performance bottleneck". The generator is
// pluggable so the bench can contrast BBS against the (insecure here) LCG.
#pragma once

#include <optional>

#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "util/rng.hpp"

namespace fbs::baselines {

class PerDatagramKeyProtocol {
 public:
  /// `key_rng` generates the per-datagram keys (BBS for the faithful
  /// configuration); `iv_rng` only needs statistical randomness.
  PerDatagramKeyProtocol(core::Principal self, core::KeyManager& keys,
                         util::RandomSource& key_rng,
                         util::RandomSource& iv_rng)
      : self_(std::move(self)),
        keys_(keys),
        key_rng_(key_rng),
        iv_gen_(iv_rng.next_u64()) {}

  /// wire = E_{K_{S,D}}(K_p)(16) || iv(8) || MAC(16) || DES-CBC_{K_p}(body)
  std::optional<util::Bytes> protect(const core::Datagram& d);
  std::optional<util::Bytes> unprotect(const core::Principal& source,
                                       util::BytesView wire);

 private:
  core::Principal self_;
  core::KeyManager& keys_;
  util::RandomSource& key_rng_;
  util::Lcg48 iv_gen_;
};

}  // namespace fbs::baselines
