// SKIP-style zero-message keying (Section 7.4's comparison target).
//
// Like FBS, SKIP derives keys from an implicit Diffie-Hellman master key
// with no message exchange. Unlike FBS, its unit of protection is the host
// pair and its packet keys are derived *per datagram* (here: a counter `n`
// carried in the header, K_n = H(K_{S,D} | n)). Section 7.4's two claims --
// (1) a compromised FBS flow key exposes only that flow while SKIP-era
// schemes rotate within one host-pair context, and (2) FBS pays key
// derivation per flow instead of per datagram -- are exercised against this
// implementation by the ablation bench and the security tests.
#pragma once

#include <optional>

#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "util/rng.hpp"

namespace fbs::baselines {

class SkipLikeProtocol {
 public:
  SkipLikeProtocol(core::Principal self, core::KeyManager& keys,
                   util::RandomSource& rng)
      : self_(std::move(self)), keys_(keys), iv_gen_(rng.next_u64()) {}

  /// wire = n(8) || iv(8) || MAC(16) || DES-CBC_{K_n}(body).
  std::optional<util::Bytes> protect(const core::Datagram& d);
  std::optional<util::Bytes> unprotect(const core::Principal& source,
                                       util::BytesView wire);

  std::uint64_t keys_derived() const { return keys_derived_; }

 private:
  util::Bytes packet_key(util::BytesView master, std::uint64_t counter,
                         const core::Principal& S, const core::Principal& D);

  core::Principal self_;
  core::KeyManager& keys_;
  util::Lcg48 iv_gen_;
  std::uint64_t counter_ = 0;
  std::uint64_t keys_derived_ = 0;
};

}  // namespace fbs::baselines
