#include "baselines/perdatagram.hpp"

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"

namespace fbs::baselines {

namespace {
constexpr std::size_t kDatagramKeySize = 8;  // a DES key
}

std::optional<util::Bytes> PerDatagramKeyProtocol::protect(
    const core::Datagram& d) {
  const auto master = keys_.master_key(d.destination);
  if (!master) return std::nullopt;

  // Fresh cryptographically random per-datagram key (the expensive step).
  const util::Bytes datagram_key = key_rng_.next_bytes(kDatagramKeySize);

  // The master key only ever encrypts the datagram key.
  const crypto::Des master_des(
      util::BytesView(*master).subspan(0, crypto::Des::kKeySize));
  const util::Bytes wrapped = crypto::encrypt(
      master_des, crypto::CipherMode::kEcb, 0, datagram_key);

  const crypto::Des data_des(datagram_key);
  const std::uint64_t iv = iv_gen_.next_u64();
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  util::ByteWriter iv_bytes(8);
  iv_bytes.u64(iv);
  const util::Bytes tag =
      mac.compute(datagram_key, {iv_bytes.view(), d.body});

  util::ByteWriter w;
  w.bytes(wrapped);  // 16 bytes (8-byte key + PKCS#7 pad block)
  w.u64(iv);
  w.bytes(tag);
  w.bytes(crypto::encrypt(data_des, crypto::CipherMode::kCbc, iv, d.body));
  return w.take();
}

std::optional<util::Bytes> PerDatagramKeyProtocol::unprotect(
    const core::Principal& source, util::BytesView wire) {
  util::ByteReader r(wire);
  const auto wrapped = r.bytes(16);
  const auto iv = r.u64();
  const auto tag = r.bytes(crypto::Md5::kDigestSize);
  if (!wrapped || !iv || !tag) return std::nullopt;

  const auto master = keys_.master_key(source);
  if (!master) return std::nullopt;
  const crypto::Des master_des(
      util::BytesView(*master).subspan(0, crypto::Des::kKeySize));
  const auto datagram_key =
      crypto::decrypt(master_des, crypto::CipherMode::kEcb, 0, *wrapped);
  if (!datagram_key || datagram_key->size() != kDatagramKeySize)
    return std::nullopt;

  const crypto::Des data_des(*datagram_key);
  auto body = crypto::decrypt(data_des, crypto::CipherMode::kCbc, *iv,
                              r.rest());
  if (!body) return std::nullopt;

  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  util::ByteWriter iv_bytes(8);
  iv_bytes.u64(*iv);
  const util::Bytes expected =
      mac.compute(*datagram_key, {iv_bytes.view(), *body});
  if (!util::ct_equal(expected, *tag)) return std::nullopt;
  return body;
}

}  // namespace fbs::baselines
