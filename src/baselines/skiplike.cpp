#include "baselines/skiplike.hpp"

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"
#include "crypto/mac.hpp"
#include "crypto/md5.hpp"

namespace fbs::baselines {

util::Bytes SkipLikeProtocol::packet_key(util::BytesView master,
                                         std::uint64_t counter,
                                         const core::Principal& S,
                                         const core::Principal& D) {
  ++keys_derived_;
  crypto::Md5 h;
  util::ByteWriter n(8);
  n.u64(counter);
  h.update(master);
  h.update(n.view());
  h.update(S.address);
  h.update(D.address);
  return h.finish();
}

std::optional<util::Bytes> SkipLikeProtocol::protect(const core::Datagram& d) {
  const auto master = keys_.master_key(d.destination);
  if (!master) return std::nullopt;
  const std::uint64_t n = counter_++;
  const util::Bytes key = packet_key(*master, n, self_, d.destination);

  const crypto::Des des(util::BytesView(key).subspan(0, crypto::Des::kKeySize));
  const std::uint64_t iv = iv_gen_.next_u64();
  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  util::ByteWriter iv_bytes(8);
  iv_bytes.u64(iv);
  const util::Bytes tag = mac.compute(key, {iv_bytes.view(), d.body});

  util::ByteWriter w;
  w.u64(n);
  w.u64(iv);
  w.bytes(tag);
  w.bytes(crypto::encrypt(des, crypto::CipherMode::kCbc, iv, d.body));
  return w.take();
}

std::optional<util::Bytes> SkipLikeProtocol::unprotect(
    const core::Principal& source, util::BytesView wire) {
  util::ByteReader r(wire);
  const auto n = r.u64();
  const auto iv = r.u64();
  const auto tag = r.bytes(crypto::Md5::kDigestSize);
  if (!n || !iv || !tag) return std::nullopt;

  const auto master = keys_.master_key(source);
  if (!master) return std::nullopt;
  const util::Bytes key = packet_key(*master, *n, source, self_);

  const crypto::Des des(util::BytesView(key).subspan(0, crypto::Des::kKeySize));
  auto body = crypto::decrypt(des, crypto::CipherMode::kCbc, *iv, r.rest());
  if (!body) return std::nullopt;

  crypto::KeyedPrefixMac mac(std::make_unique<crypto::Md5>());
  util::ByteWriter iv_bytes(8);
  iv_bytes.u64(*iv);
  const util::Bytes expected = mac.compute(key, {iv_bytes.view(), *body});
  if (!util::ct_equal(expected, *tag)) return std::nullopt;
  return body;
}

}  // namespace fbs::baselines
