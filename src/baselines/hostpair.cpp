#include "baselines/hostpair.hpp"

#include "crypto/block_modes.hpp"
#include "crypto/des.hpp"

namespace fbs::baselines {

std::optional<util::Bytes> HostPairProtocol::protect(const core::Datagram& d) {
  const auto master = keys_.master_key(d.destination);
  if (!master) return std::nullopt;
  const crypto::Des des(
      util::BytesView(*master).subspan(0, crypto::Des::kKeySize));
  const std::uint64_t iv = iv_gen_.next_u64();
  util::ByteWriter w;
  w.u64(iv);
  w.bytes(crypto::encrypt(des, crypto::CipherMode::kCbc, iv, d.body));
  return w.take();
}

std::optional<util::Bytes> HostPairProtocol::unprotect(
    const core::Principal& source, util::BytesView wire) {
  util::ByteReader r(wire);
  const auto iv = r.u64();
  if (!iv) return std::nullopt;
  const auto master = keys_.master_key(source);
  if (!master) return std::nullopt;
  const crypto::Des des(
      util::BytesView(*master).subspan(0, crypto::Des::kKeySize));
  return crypto::decrypt(des, crypto::CipherMode::kCbc, *iv, r.rest());
}

}  // namespace fbs::baselines
