#include "obs/stages.hpp"

namespace fbs::obs {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kSendClassify: return "send.classify";
    case Stage::kSendKeyDerive: return "send.key_derive";
    case Stage::kSendMac: return "send.mac";
    case Stage::kSendCipher: return "send.cipher";
    case Stage::kSendFused: return "send.fused";
    case Stage::kSendWire: return "send.wire";
    case Stage::kRecvParse: return "recv.parse";
    case Stage::kRecvFreshness: return "recv.freshness";
    case Stage::kRecvKey: return "recv.key";
    case Stage::kRecvCipher: return "recv.cipher";
    case Stage::kRecvMac: return "recv.mac";
    case Stage::kRecvFused: return "recv.fused";
    case Stage::kRecvBatchCrypto: return "recv.batch_crypto";
  }
  return "unknown";
}

std::string stage_metric_name(Stage stage) {
  return std::string("stage.") + to_string(stage);
}

void StageTracer::register_metrics(MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.add_source([this, prefix](MetricsRegistry::Emitter& emit) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const auto stage = static_cast<Stage>(i);
      const LatencyRecorder& rec = recorders_[i];
      if (rec.count() == 0) continue;
      emit.latency(prefix + "." + stage_metric_name(stage), rec.summary());
    }
  });
}

}  // namespace fbs::obs
