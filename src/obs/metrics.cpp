#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace fbs::obs {

namespace {

constexpr double kNsPerUs = 1000.0;

/// JSON string escaping for metric names (ours are plain dotted ASCII, but
/// the exporter must not silently emit invalid documents for odd inputs).
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string number(double v) {
  // JSON has no NaN/Inf; clamp to null-ish zero (cannot occur for counts).
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros but keep one digit after the point.
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.')
    s.pop_back();
  return s;
}

class SnapshotEmitter final : public MetricsRegistry::Emitter {
 public:
  explicit SnapshotEmitter(MetricsSnapshot& snap) : snap_(snap) {}
  void counter(const std::string& name, std::uint64_t value) override {
    snap_.counters[name] += value;
  }
  void gauge(const std::string& name, double value) override {
    snap_.gauges[name] = value;
  }
  void latency(const std::string& name, const LatencySummary& value) override {
    snap_.latencies[name] = value;
  }

 private:
  MetricsSnapshot& snap_;
};

}  // namespace

LatencySummary LatencyRecorder::summary() const {
  LatencySummary s;
  s.count = hist_.total();
  if (s.count == 0) return s;
  s.mean_us = hist_.mean() / kNsPerUs;
  s.p50_us = hist_.quantile(0.50) / kNsPerUs;
  s.p90_us = hist_.quantile(0.90) / kNsPerUs;
  s.p99_us = hist_.quantile(0.99) / kNsPerUs;
  s.max_us = hist_.max() / kNsPerUs;
  return s;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    // Counters are monotonic by contract; a regression would wrap here, so
    // clamp to zero to keep the delta sane even for a misbehaving source.
    out.counters[name] = value >= before ? value - before : 0;
  }
  out.gauges = gauges;
  out.latencies = latencies;
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": " + number(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"latencies\": {";
  first = true;
  for (const auto& [name, s] : latencies) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(s.count) +
           ", \"mean_us\": " + number(s.mean_us) +
           ", \"p50_us\": " + number(s.p50_us) +
           ", \"p90_us\": " + number(s.p90_us) +
           ", \"p99_us\": " + number(s.p99_us) +
           ", \"max_us\": " + number(s.max_us) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyRecorder& MetricsRegistry::latency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyRecorder>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Publish every relaxed increment that happened-before this call (see the
  // header's snapshot protocol note).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, l] : latencies_)
    snap.latencies[name] = l->summary();
  SnapshotEmitter emitter(snap);
  for (const auto& source : sources_) source(emitter);
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fbs::obs
