// Unified observability substrate: one process-wide metrics registry.
//
// Section 7.3 of the paper is a measurement story (throughput, the 3C cache
// miss taxonomy, flow-duration sensitivity), and the chaos suite's
// degraded-mode invariants are assertions over counters. Before this layer
// every component kept its own ad-hoc stats struct; this registry gives all
// of them stable dotted names, point-in-time snapshots with delta support,
// and a JSON exporter, so every bench and soak emits a machine-readable
// metrics report from one source of truth.
//
// Two registration styles:
//   - push handles: registry.counter("x.y") returns a Counter& whose
//     address is stable for the registry's lifetime; increment it directly.
//   - pull sources: add_source() registers a callback that publishes
//     (name, value) pairs at snapshot time. Existing stats structs
//     (SendStats, CacheStats, MkdStats, simnet counters, ...) are exported
//     this way -- their hot-path increments stay plain ++field, and the
//     registry reads them only when asked. The referenced object must
//     outlive the registry (or the source must be registered on a registry
//     with matching lifetime, as the tests and benches do).
//
// Counters are monotonically non-decreasing by contract; the chaos suite
// asserts this across snapshots.
//
// Thread model (the shard-per-core refactor): Counter and Gauge are relaxed
// atomics, so any number of pipeline workers may increment push-style
// metrics concurrently with zero coordination. snapshot() issues a
// sequentially-consistent fence before reading, giving the consistency
// contract stated there. Registration (counter()/gauge()/latency()/
// add_source()) takes the registry mutex and may also run concurrently,
// though components typically register at setup time. LatencyRecorder is
// the exception: its log-histogram buckets are plain memory, so a recorder
// must only be fed from one thread at a time -- the engine keeps one
// StageTracer per flow domain for exactly this reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace fbs::obs {

/// Monotonic event count. Increments are relaxed atomics: cheap enough for
/// every packet on every worker, ordered only by snapshot()'s fence.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (table occupancies, rates).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Quantile summary of a latency recorder, in microseconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// Latency distribution built on util::LogHistogram. Samples are recorded
/// in nanoseconds (stage costs on a modern CPU are sub-microsecond, below
/// the histogram's resolution in us) and summarized in microseconds.
class LatencyRecorder {
 public:
  /// base 1.3 gives ~13% bucket resolution across ns..s.
  explicit LatencyRecorder(double base = 1.3) : hist_(base) {}

  void record_ns(double ns) { hist_.add(ns); }
  std::uint64_t count() const { return hist_.total(); }
  LatencySummary summary() const;
  const util::LogHistogram& histogram() const { return hist_; }

 private:
  util::LogHistogram hist_;
};

/// One point-in-time view of every metric in a registry. Maps are ordered,
/// so iteration (and the JSON export) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencySummary> latencies;

  /// Counters become (this - earlier); a name absent from `earlier` counts
  /// from zero. Gauges and latency summaries are point-in-time views, so
  /// the later (this) value is kept as-is.
  MetricsSnapshot delta(const MetricsSnapshot& earlier) const;

  /// {"counters": {...}, "gauges": {...}, "latencies": {name: {count,
  /// mean_us, p50_us, p90_us, p99_us, max_us}}}
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// A pull source publishes its current values through this interface at
  /// snapshot time.
  class Emitter {
   public:
    virtual ~Emitter() = default;
    virtual void counter(const std::string& name, std::uint64_t value) = 0;
    virtual void gauge(const std::string& name, double value) = 0;
    virtual void latency(const std::string& name,
                         const LatencySummary& value) = 0;
  };
  using Source = std::function<void(Emitter&)>;

  /// Find-or-create a push-style metric. References stay valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyRecorder& latency(const std::string& name);

  /// Register a pull source; called on every snapshot().
  void add_source(Source source) {
    std::lock_guard<std::mutex> lock(mu_);
    sources_.push_back(std::move(source));
  }

  /// Consistent snapshot protocol: the registry mutex is held for the whole
  /// read (so the metric set cannot change mid-snapshot) and a seq_cst
  /// fence is issued first, so every relaxed increment that happens-before
  /// the snapshot call -- in particular everything a joined or drained
  /// worker did -- is visible. Increments racing with the snapshot land in
  /// this one or the next; monotonicity across snapshots is preserved
  /// either way.
  MetricsSnapshot snapshot() const;

  std::size_t registered_metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + latencies_.size();
  }
  std::size_t registered_sources() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sources_.size();
  }

  /// The process-wide registry. Components default to local registries in
  /// tests; long-lived processes (examples, daemons) share this one.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;  // guards the maps/sources, never the hot path
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyRecorder>> latencies_;
  std::vector<Source> sources_;
};

}  // namespace fbs::obs
