// Per-stage latency tracing for the datagram path.
//
// The FBSSend pipeline is classify -> key-lookup/derive -> MAC -> cipher ->
// wire, and FBSReceive mirrors it (parse -> freshness -> key -> cipher ->
// MAC). A StageTracer owns one LatencyRecorder per stage and hands out
// scoped timers; when disabled (the default) a timer is a no-op so the fast
// path pays only a branch. Benches that want the per-packet CPU comparison
// unperturbed (fig 8) keep tracing off for the measured run and take a
// separate instrumented run for the metrics report.
#pragma once

#include <array>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace fbs::obs {

enum class Stage {
  kSendClassify = 0,  // flow lookup / FST probe / FAM map
  kSendKeyDerive,     // flow key derivation (H over sfl|K_SD|S|D)
  kSendMac,           // MAC computation
  kSendCipher,        // body encryption
  kSendFused,         // fused MAC+cipher pass (replaces kSendMac+kSendCipher)
  kSendWire,          // header serialization
  kRecvParse,         // wire parse + header checks
  kRecvFreshness,     // freshness window / strict-replay probe
  kRecvKey,           // receive-side key recovery (RFKC / derivation)
  kRecvCipher,        // body decryption
  kRecvMac,           // MAC verification
  kRecvFused,         // fused decrypt+MAC pass (replaces kRecvCipher+kRecvMac)
  kRecvBatchCrypto,   // cross-datagram bitsliced decrypt of a worker burst
};
inline constexpr std::size_t kStageCount = 13;

const char* to_string(Stage stage);

/// Dotted metric suffix, e.g. "stage.send.mac".
std::string stage_metric_name(Stage stage);

class StageTracer {
 public:
  /// A scoped timer: records elapsed wall time into the owning tracer's
  /// recorder for `stage` on destruction (or finish()), if tracing was
  /// enabled when it was started.
  class Timer {
   public:
    Timer(Timer&&) = delete;
    Timer& operator=(Timer&&) = delete;
    ~Timer() { finish(); }

    void finish() {
      if (recorder_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      recorder_->record_ns(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
      recorder_ = nullptr;
    }

   private:
    friend class StageTracer;
    explicit Timer(LatencyRecorder* recorder) : recorder_(recorder) {
      if (recorder_ != nullptr) start_ = std::chrono::steady_clock::now();
    }

    LatencyRecorder* recorder_;
    std::chrono::steady_clock::time_point start_;
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  Timer start(Stage stage) {
    return Timer(enabled_ ? &recorders_[static_cast<std::size_t>(stage)]
                          : nullptr);
  }

  /// Record an externally measured duration. The sharded engine needs this
  /// for the one stage measured before the owning flow domain is known
  /// (wire parse resolves the sfl that picks the domain): the caller times
  /// the work itself, then records under the domain's lock.
  void record(Stage stage, double ns) {
    if (enabled_) recorders_[static_cast<std::size_t>(stage)].record_ns(ns);
  }

  const LatencyRecorder& recorder(Stage stage) const {
    return recorders_[static_cast<std::size_t>(stage)];
  }

  /// Publish all stages with samples as `<prefix>.stage.<dir>.<name>`.
  void register_metrics(MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  bool enabled_ = false;
  std::array<LatencyRecorder, kStageCount> recorders_;
};

}  // namespace fbs::obs
