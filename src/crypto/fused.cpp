#include "crypto/fused.hpp"

#include <algorithm>

#include "crypto/block_modes.hpp"
#include "crypto/md5.hpp"

namespace fbs::crypto {

FusedResult fused_keyed_md5_des_cbc(const Des& des, std::uint64_t iv,
                                    util::BytesView mac_key,
                                    util::BytesView mac_prefix,
                                    util::BytesView body) {
  FusedResult out;
  Md5 mac;
  mac.update(mac_key);
  mac.update(mac_prefix);

  const std::size_t kBlock = Des::kBlockSize;
  const std::size_t whole = body.size() / kBlock * kBlock;
  // PKCS#7 always adds 1..8 bytes, so the ciphertext is exactly one block
  // past the last whole plaintext block; size it once up front.
  out.ciphertext.resize(whole + kBlock);

  std::uint64_t chain = iv;
  std::size_t off = 0;
  for (; off < whole; off += kBlock) {
    // The single pass: this block is hashed and encrypted back to back
    // while it is hot in cache.
    mac.update(body.subspan(off, kBlock));
    chain = des.encrypt_block(Des::load_be64(&body[off]) ^ chain);
    Des::store_be64(chain, &out.ciphertext[off]);
  }

  // Tail: remaining plaintext is hashed; the padded final block encrypted.
  const std::size_t rem = body.size() - whole;
  if (rem) mac.update(body.subspan(whole, rem));
  std::uint8_t last[Des::kBlockSize];
  const std::uint8_t pad = static_cast<std::uint8_t>(kBlock - rem);
  for (std::size_t i = 0; i < kBlock; ++i)
    last[i] = i < rem ? body[whole + i] : pad;
  chain = des.encrypt_block(Des::load_be64(last) ^ chain);
  Des::store_be64(chain, &out.ciphertext[whole]);

  out.mac = mac.finish();
  return out;
}

void fused_seal_into(const Des& des, std::uint64_t iv, MacContext& mac,
                     util::BytesView mac_prefix, util::BytesView body,
                     std::uint8_t* mac_out, util::Bytes& ciphertext) {
  mac.begin();
  mac.update(mac_prefix);

  const std::size_t kBlock = Des::kBlockSize;
  const std::size_t whole = body.size() / kBlock * kBlock;
  ciphertext.resize(whole + kBlock);

  std::uint64_t chain = iv;
  for (std::size_t off = 0; off < whole; off += kBlock) {
    mac.update(body.subspan(off, kBlock));
    chain = des.encrypt_block(Des::load_be64(&body[off]) ^ chain);
    Des::store_be64(chain, &ciphertext[off]);
  }

  const std::size_t rem = body.size() - whole;
  if (rem) mac.update(body.subspan(whole, rem));
  std::uint8_t last[Des::kBlockSize];
  const std::uint8_t pad = static_cast<std::uint8_t>(kBlock - rem);
  for (std::size_t i = 0; i < kBlock; ++i)
    last[i] = i < rem ? body[whole + i] : pad;
  chain = des.encrypt_block(Des::load_be64(last) ^ chain);
  Des::store_be64(chain, &ciphertext[whole]);

  mac.finish_into(mac_out);
}

bool fused_open_into(const Des& des, std::uint64_t iv, MacContext& mac,
                     util::BytesView mac_prefix, util::BytesView ciphertext,
                     std::uint8_t* mac_out, util::Bytes& body) {
  const std::size_t kBlock = Des::kBlockSize;
  if (ciphertext.empty() || ciphertext.size() % kBlock != 0) return false;

  mac.begin();
  mac.update(mac_prefix);
  body.resize(ciphertext.size());

  // Every block but the last is hashed the moment it is decrypted; the
  // last block's body bytes are only known after the padding check.
  const std::size_t last_off = ciphertext.size() - kBlock;
  std::uint64_t chain = iv;
  for (std::size_t off = 0; off < ciphertext.size(); off += kBlock) {
    const std::uint64_t ct = Des::load_be64(&ciphertext[off]);
    Des::store_be64(des.decrypt_block(ct) ^ chain, &body[off]);
    chain = ct;
    if (off < last_off) mac.update({body.data() + off, kBlock});
  }

  const std::uint8_t pad = body.back();
  if (pad == 0 || pad > kBlock) return false;
  for (std::size_t i = body.size() - pad; i < body.size(); ++i)
    if (body[i] != pad) return false;
  body.resize(body.size() - pad);

  if (body.size() > last_off)
    mac.update({body.data() + last_off, body.size() - last_off});
  mac.finish_into(mac_out);
  return true;
}

void fused_seal_batch(CryptoBatch& batch, std::span<FusedSealJob> jobs) {
  constexpr std::size_t kMax = CryptoBatch::kLanes;
  CbcSealJob wide[kMax];
  for (std::size_t off = 0; off < jobs.size(); off += kMax) {
    const std::size_t n = std::min(kMax, jobs.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      FusedSealJob& j = jobs[off + i];
      // The MAC covers the plaintext, so it needs no decrypt output and can
      // run now, per datagram, while the cipher leg goes wide below.
      j.mac->begin();
      j.mac->update(j.mac_prefix);
      j.mac->update(j.body);
      j.mac->finish_into(j.mac_out);
      j.ciphertext->resize(CryptoBatch::padded_size(j.body.size()));
      wide[i] = CbcSealJob{j.des, j.schedule, j.iv, j.body,
                           j.ciphertext->data()};
    }
    batch.seal_cbc({wide, n});
  }
}

void fused_open_batch(CryptoBatch& batch, std::span<FusedOpenJob> jobs) {
  constexpr std::size_t kMax = CryptoBatch::kLanes;
  CbcOpenJob wide[kMax];
  FusedOpenJob* live[kMax];
  for (std::size_t off = 0; off < jobs.size(); off += kMax) {
    const std::size_t n = std::min(kMax, jobs.size() - off);
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      FusedOpenJob& j = jobs[off + i];
      j.ok = false;
      if (j.ciphertext.empty() ||
          j.ciphertext.size() % Des::kBlockSize != 0)
        continue;
      j.body->resize(j.ciphertext.size());
      wide[m] = CbcOpenJob{j.des, j.schedule, j.iv, j.ciphertext,
                           j.body->data()};
      live[m++] = &j;
    }
    if (m > 0) batch.open_cbc({wide, m});
    for (std::size_t k = 0; k < m; ++k) {
      FusedOpenJob& j = *live[k];
      if (!detail::pkcs7_unpad_in_place(*j.body)) continue;
      j.mac->begin();
      j.mac->update(j.mac_prefix);
      j.mac->update(*j.body);
      j.mac->finish_into(j.mac_out);
      j.ok = true;
    }
  }
}

}  // namespace fbs::crypto
