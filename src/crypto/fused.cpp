#include "crypto/fused.hpp"

#include "crypto/md5.hpp"

namespace fbs::crypto {

FusedResult fused_keyed_md5_des_cbc(const Des& des, std::uint64_t iv,
                                    util::BytesView mac_key,
                                    util::BytesView mac_prefix,
                                    util::BytesView body) {
  FusedResult out;
  Md5 mac;
  mac.update(mac_key);
  mac.update(mac_prefix);

  const std::size_t kBlock = Des::kBlockSize;
  const std::size_t whole = body.size() / kBlock * kBlock;
  out.ciphertext.resize(whole + kBlock);  // + one PKCS#7 padding block part

  std::uint64_t chain = iv;
  std::size_t off = 0;
  for (; off < whole; off += kBlock) {
    // The single pass: this block is hashed and encrypted back to back
    // while it is hot in cache.
    mac.update(body.subspan(off, kBlock));
    chain = des.encrypt_block(Des::load_be64(&body[off]) ^ chain);
    Des::store_be64(chain, &out.ciphertext[off]);
  }

  // Tail: remaining plaintext is hashed; the padded final block encrypted.
  const std::size_t rem = body.size() - whole;
  if (rem) mac.update(body.subspan(whole, rem));
  std::uint8_t last[Des::kBlockSize];
  const std::uint8_t pad = static_cast<std::uint8_t>(kBlock - rem);
  for (std::size_t i = 0; i < kBlock; ++i)
    last[i] = i < rem ? body[whole + i] : pad;
  chain = des.encrypt_block(Des::load_be64(last) ^ chain);
  Des::store_be64(chain, &out.ciphertext[whole]);
  out.ciphertext.resize(whole + kBlock);

  out.mac = mac.finish();
  return out;
}

}  // namespace fbs::crypto
