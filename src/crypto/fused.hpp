// Single data-touching pass (Section 5.3): "An efficient implementation
// should try to combine all such data touching operation into a single
// pass. For example, if data confidentiality is desired, then the MAC
// computation and encryption should be rolled into one loop."
//
// This is that loop for the paper's default suite: the MD5 MAC absorbs each
// plaintext block in the same iteration that DES-CBC encrypts it, so the
// payload crosses the memory hierarchy once instead of twice. Results are
// bit-identical to running KeyedPrefixMac then encrypt() separately (the
// equivalence is unit-tested); the benefit is measured by fbs_bench_crypto.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/batch.hpp"
#include "crypto/des.hpp"
#include "crypto/mac.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

struct FusedResult {
  util::Bytes mac;         // MD5(mac_key | mac_prefix | body)
  util::Bytes ciphertext;  // DES-CBC(body) with PKCS#7 padding
};

/// One pass over `body`: keyed-MD5 MAC over the plaintext and DES-CBC
/// encryption with `iv`. `mac_prefix` is the header material (the caller's
/// flags|suite|confounder|timestamp) hashed between the key and the payload.
FusedResult fused_keyed_md5_des_cbc(const Des& des, std::uint64_t iv,
                                    util::BytesView mac_key,
                                    util::BytesView mac_prefix,
                                    util::BytesView body);

/// Allocation-free single pass over `body` for a per-flow context: `mac` is
/// a keyed MacContext (the key material that fused_keyed_md5_des_cbc
/// re-hashes per call is already absorbed into it), `mac_out` receives
/// mac.mac_size() bytes, and `ciphertext` is a reused caller buffer.
/// Bit-identical to the one-shot form when the contexts match.
void fused_seal_into(const Des& des, std::uint64_t iv, MacContext& mac,
                     util::BytesView mac_prefix, util::BytesView body,
                     std::uint8_t* mac_out, util::Bytes& ciphertext);

/// The receive-side single pass: DES-CBC decrypt and MAC the recovered
/// plaintext block by block while it is hot in cache. `body` is resized to
/// the unpadded plaintext and `mac_out` receives the tag the sender would
/// have produced (the caller compares it against the header's). Returns
/// false on malformed length or PKCS#7 padding.
bool fused_open_into(const Des& des, std::uint64_t iv, MacContext& mac,
                     util::BytesView mac_prefix, util::BytesView ciphertext,
                     std::uint8_t* mac_out, util::Bytes& body);

/// One datagram of a batch seal: the inputs of fused_seal_into plus the
/// bitslice schedule matching `des`. Jobs may carry different keys.
struct FusedSealJob {
  const Des* des = nullptr;
  const DesBitsliceKeySchedule* schedule = nullptr;
  std::uint64_t iv = 0;
  MacContext* mac = nullptr;
  util::BytesView mac_prefix;
  util::BytesView body;
  std::uint8_t* mac_out = nullptr;   // receives mac->mac_size() bytes
  util::Bytes* ciphertext = nullptr; // resized to padded_size(body.size())
};

/// One datagram of a batch open. `ok` reports what fused_open_into returns:
/// false on malformed ciphertext length or bad PKCS#7 padding, in which
/// case `body` and `mac_out` are unspecified.
struct FusedOpenJob {
  const Des* des = nullptr;
  const DesBitsliceKeySchedule* schedule = nullptr;
  std::uint64_t iv = 0;
  MacContext* mac = nullptr;
  util::BytesView mac_prefix;
  util::BytesView ciphertext;
  std::uint8_t* mac_out = nullptr;
  util::Bytes* body = nullptr;
  bool ok = false;
};

/// Batch-aware forms of fused_seal_into/fused_open_into: the DES-CBC leg of
/// every job runs through the 64-wide bitsliced batch engine (cross-job for
/// open, job-per-lane for seal; `batch` decides scalar fallback for small
/// bursts), while each MAC stays per-datagram. Outputs are bit-identical,
/// job by job, to calling the _into forms in sequence -- the "fused" single
/// pass is traded for lane parallelism, which wins whenever the burst is
/// wide or the bodies are long. Any number of jobs; chunks of up to
/// CryptoBatch::kLanes are scheduled together. Allocation-free beyond the
/// callers' output buffers.
void fused_seal_batch(CryptoBatch& batch, std::span<FusedSealJob> jobs);
void fused_open_batch(CryptoBatch& batch, std::span<FusedOpenJob> jobs);

}  // namespace fbs::crypto
