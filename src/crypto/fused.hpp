// Single data-touching pass (Section 5.3): "An efficient implementation
// should try to combine all such data touching operation into a single
// pass. For example, if data confidentiality is desired, then the MAC
// computation and encryption should be rolled into one loop."
//
// This is that loop for the paper's default suite: the MD5 MAC absorbs each
// plaintext block in the same iteration that DES-CBC encrypts it, so the
// payload crosses the memory hierarchy once instead of twice. Results are
// bit-identical to running KeyedPrefixMac then encrypt() separately (the
// equivalence is unit-tested); the benefit is measured by fbs_bench_crypto.
#pragma once

#include <cstdint>

#include "crypto/des.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

struct FusedResult {
  util::Bytes mac;         // MD5(mac_key | mac_prefix | body)
  util::Bytes ciphertext;  // DES-CBC(body) with PKCS#7 padding
};

/// One pass over `body`: keyed-MD5 MAC over the plaintext and DES-CBC
/// encryption with `iv`. `mac_prefix` is the confounder|timestamp material
/// hashed between the key and the payload.
FusedResult fused_keyed_md5_des_cbc(const Des& des, std::uint64_t iv,
                                    util::BytesView mac_key,
                                    util::BytesView mac_prefix,
                                    util::BytesView body);

}  // namespace fbs::crypto
