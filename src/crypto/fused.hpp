// Single data-touching pass (Section 5.3): "An efficient implementation
// should try to combine all such data touching operation into a single
// pass. For example, if data confidentiality is desired, then the MAC
// computation and encryption should be rolled into one loop."
//
// This is that loop for the paper's default suite: the MD5 MAC absorbs each
// plaintext block in the same iteration that DES-CBC encrypts it, so the
// payload crosses the memory hierarchy once instead of twice. Results are
// bit-identical to running KeyedPrefixMac then encrypt() separately (the
// equivalence is unit-tested); the benefit is measured by fbs_bench_crypto.
#pragma once

#include <cstdint>

#include "crypto/des.hpp"
#include "crypto/mac.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

struct FusedResult {
  util::Bytes mac;         // MD5(mac_key | mac_prefix | body)
  util::Bytes ciphertext;  // DES-CBC(body) with PKCS#7 padding
};

/// One pass over `body`: keyed-MD5 MAC over the plaintext and DES-CBC
/// encryption with `iv`. `mac_prefix` is the header material (the caller's
/// flags|suite|confounder|timestamp) hashed between the key and the payload.
FusedResult fused_keyed_md5_des_cbc(const Des& des, std::uint64_t iv,
                                    util::BytesView mac_key,
                                    util::BytesView mac_prefix,
                                    util::BytesView body);

/// Allocation-free single pass over `body` for a per-flow context: `mac` is
/// a keyed MacContext (the key material that fused_keyed_md5_des_cbc
/// re-hashes per call is already absorbed into it), `mac_out` receives
/// mac.mac_size() bytes, and `ciphertext` is a reused caller buffer.
/// Bit-identical to the one-shot form when the contexts match.
void fused_seal_into(const Des& des, std::uint64_t iv, MacContext& mac,
                     util::BytesView mac_prefix, util::BytesView body,
                     std::uint8_t* mac_out, util::Bytes& ciphertext);

/// The receive-side single pass: DES-CBC decrypt and MAC the recovered
/// plaintext block by block while it is hot in cache. `body` is resized to
/// the unpadded plaintext and `mac_out` receives the tag the sender would
/// have produced (the caller compares it against the header's). Returns
/// false on malformed length or PKCS#7 padding.
bool fused_open_into(const Des& des, std::uint64_t iv, MacContext& mac,
                     util::BytesView mac_prefix, util::BytesView ciphertext,
                     std::uint8_t* mac_out, util::Bytes& body);

}  // namespace fbs::crypto
