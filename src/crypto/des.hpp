// DES block cipher (FIPS PUB 46). The paper's IP mapping encrypts datagram
// bodies with DES and uses the 32-bit confounder (duplicated to 64 bits) as
// the IV (Section 7.2). Modes of operation (FIPS 81) live in block_modes.hpp.
//
// This is the classic table-driven implementation: the eight S-boxes are
// fused with the P permutation into 64-entry tables of 32-bit words
// (generated at compile time from the FIPS tables in des_tables.hpp), the E
// expansion is done with shifts and masks on a rotated copy of the right
// half, and IP/FP are O(log n) bit-swap networks instead of 64-entry
// permutation walks. The key schedule is computed once at construction, so
// a Des object cached per flow amortizes it across every datagram. The
// bit-at-a-time transcription of the standard survives as DesReference
// (des_reference.hpp) and the two are tested bit-exact round by round.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::crypto {

class Des {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;  // 64 bits incl. parity

  /// Key is 8 bytes; the 8 parity bits are ignored, per the standard.
  explicit Des(util::BytesView key);

  /// Encrypt/decrypt exactly one 8-byte block, in-place variants included.
  std::uint64_t encrypt_block(std::uint64_t block) const;
  std::uint64_t decrypt_block(std::uint64_t block) const;
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

  /// Per-round intermediate values (FIPS 46 notation): l[0]/r[0] are L0/R0
  /// (after IP), l[i]/r[i] are Li/Ri after round i. For tests comparing
  /// this implementation against DesReference round by round.
  struct RoundTrace {
    std::array<std::uint32_t, 17> l{};
    std::array<std::uint32_t, 17> r{};
  };
  std::uint64_t crypt_trace(std::uint64_t block, bool decrypt,
                            RoundTrace& trace) const;

  static std::uint64_t load_be64(const std::uint8_t* p);
  static void store_be64(std::uint64_t v, std::uint8_t* p);

 private:
  std::uint64_t crypt(std::uint64_t block, bool decrypt) const;

  /// Round keys as eight 6-bit chunks, pre-split to line up with the
  /// shift/mask E expansion (chunk i feeds S-box i).
  std::array<std::array<std::uint8_t, 8>, 16> subkeys_{};
};

}  // namespace fbs::crypto
