// DES block cipher (FIPS PUB 46), implemented from the standard's
// permutation tables. The paper's IP mapping encrypts datagram bodies with
// DES and uses the 32-bit confounder (duplicated to 64 bits) as the IV
// (Section 7.2). Modes of operation (FIPS 81) live in block_modes.hpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::crypto {

class Des {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;  // 64 bits incl. parity

  /// Key is 8 bytes; the 8 parity bits are ignored, per the standard.
  explicit Des(util::BytesView key);

  /// Encrypt/decrypt exactly one 8-byte block, in-place variants included.
  std::uint64_t encrypt_block(std::uint64_t block) const;
  std::uint64_t decrypt_block(std::uint64_t block) const;
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

  static std::uint64_t load_be64(const std::uint8_t* p);
  static void store_be64(std::uint64_t v, std::uint8_t* p);

 private:
  std::uint64_t crypt(std::uint64_t block, bool decrypt) const;

  std::array<std::uint64_t, 16> subkeys_{};  // 48-bit round keys
};

}  // namespace fbs::crypto
