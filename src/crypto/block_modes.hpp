// DES modes of operation (FIPS PUB 81): ECB, CBC, CFB-64, OFB-64.
//
// Section 5.2 of the paper specifies how the per-datagram confounder drives
// the cipher: it is the IV in CBC/CFB/OFB modes, and in ECB mode it is
// XOR'ed with every plaintext block prior to encryption. The IP mapping
// (Section 7.2) duplicates the 32-bit confounder into a 64-bit quantity for
// DES; the caller does that expansion and passes the 64-bit IV here.
//
// The entry points are templated on the block cipher so the same mode code
// drives single DES and triple DES (any 64-bit-block cipher exposing
// kBlockSize and encrypt_block/decrypt_block over std::uint64_t works).
// Des and Des3 are explicitly instantiated in block_modes.cpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>

#include "crypto/des.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

class Des3;

enum class CipherMode : std::uint8_t { kEcb, kCbc, kCfb, kOfb };

namespace detail {

/// Copy `data` into `out` and append PKCS#7 padding. One resize sizes the
/// buffer exactly; a reused `out` with enough capacity never reallocates.
inline void pkcs7_pad_into(util::BytesView data, util::Bytes& out) {
  constexpr std::size_t kBlock = Des::kBlockSize;
  const std::size_t pad = kBlock - data.size() % kBlock;  // 1..8
  out.resize(data.size() + pad);
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
  std::memset(out.data() + data.size(), static_cast<int>(pad), pad);
}

inline bool pkcs7_unpad_in_place(util::Bytes& data) {
  constexpr std::size_t kBlock = Des::kBlockSize;
  if (data.empty() || data.size() % kBlock != 0) return false;
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > kBlock || pad > data.size()) return false;
  for (std::size_t i = data.size() - pad; i < data.size(); ++i)
    if (data[i] != pad) return false;
  data.resize(data.size() - pad);
  return true;
}

}  // namespace detail

/// Encrypt into a caller-owned buffer, reusing its capacity: `out` is
/// resized to the ciphertext length and allocates only if it has never held
/// a datagram this large. `plaintext` must not alias `out`. ECB and CBC
/// apply PKCS#7 padding (output grows by 1..8 bytes); CFB and OFB are
/// stream modes and preserve length.
template <class Cipher>
void encrypt_into(const Cipher& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView plaintext, util::Bytes& out);

/// Inverse of encrypt_into; returns false on malformed input (and leaves
/// `out` unspecified). `ciphertext` must not alias `out`.
template <class Cipher>
bool decrypt_into(const Cipher& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView ciphertext, util::Bytes& out);

/// Encrypt `plaintext` under the given mode with `iv` (the confounder).
template <class Cipher>
util::Bytes encrypt(const Cipher& cipher, CipherMode mode, std::uint64_t iv,
                    util::BytesView plaintext) {
  util::Bytes out;
  encrypt_into(cipher, mode, iv, plaintext, out);
  return out;
}

/// Inverse of encrypt. Returns nullopt on malformed input (bad length for
/// block modes, bad PKCS#7 padding).
template <class Cipher>
std::optional<util::Bytes> decrypt(const Cipher& cipher, CipherMode mode,
                                   std::uint64_t iv,
                                   util::BytesView ciphertext) {
  util::Bytes out;
  if (!decrypt_into(cipher, mode, iv, ciphertext, out)) return std::nullopt;
  return out;
}

extern template void encrypt_into<Des>(const Des&, CipherMode, std::uint64_t,
                                       util::BytesView, util::Bytes&);
extern template bool decrypt_into<Des>(const Des&, CipherMode, std::uint64_t,
                                       util::BytesView, util::Bytes&);
extern template void encrypt_into<Des3>(const Des3&, CipherMode,
                                        std::uint64_t, util::BytesView,
                                        util::Bytes&);
extern template bool decrypt_into<Des3>(const Des3&, CipherMode,
                                        std::uint64_t, util::BytesView,
                                        util::Bytes&);

}  // namespace fbs::crypto
