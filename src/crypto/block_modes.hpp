// DES modes of operation (FIPS PUB 81): ECB, CBC, CFB-64, OFB-64.
//
// Section 5.2 of the paper specifies how the per-datagram confounder drives
// the cipher: it is the IV in CBC/CFB/OFB modes, and in ECB mode it is
// XOR'ed with every plaintext block prior to encryption. The IP mapping
// (Section 7.2) duplicates the 32-bit confounder into a 64-bit quantity for
// DES; the caller does that expansion and passes the 64-bit IV here.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/des.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

enum class CipherMode : std::uint8_t { kEcb, kCbc, kCfb, kOfb };

/// Encrypt `plaintext` under the given mode with `iv` (the confounder).
/// ECB and CBC apply PKCS#7 padding (output grows by 1..8 bytes); CFB and
/// OFB are stream modes and preserve length.
util::Bytes encrypt(const Des& cipher, CipherMode mode, std::uint64_t iv,
                    util::BytesView plaintext);

/// Inverse of encrypt. Returns nullopt on malformed input (bad length for
/// block modes, bad PKCS#7 padding).
std::optional<util::Bytes> decrypt(const Des& cipher, CipherMode mode,
                                   std::uint64_t iv,
                                   util::BytesView ciphertext);

/// Encrypt into a caller-owned buffer, reusing its capacity: `out` is
/// resized to the ciphertext length and allocates only if it has never held
/// a datagram this large. `plaintext` must not alias `out`.
void encrypt_into(const Des& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView plaintext, util::Bytes& out);

/// Inverse of encrypt_into; returns false on malformed input (and leaves
/// `out` unspecified). `ciphertext` must not alias `out`.
bool decrypt_into(const Des& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView ciphertext, util::Bytes& out);

}  // namespace fbs::crypto
