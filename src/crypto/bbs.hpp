// Blum-Blum-Shub quadratic-residue generator (SIAM J. Comput. 1986).
//
// Section 2.2 of the paper names this as the cryptographically secure random
// generator a per-datagram-key scheme would need -- and as the reason such
// schemes bottleneck: each output bit costs a modular squaring. We implement
// it both as the baseline's key generator and to measure that bottleneck in
// bench/fbs_bench_crypto (vs. the statistically-random LCG confounder).
#pragma once

#include "bignum/uint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {

class BlumBlumShub final : public util::RandomSource {
 public:
  /// n = p*q for Blum primes p, q (both ≡ 3 mod 4); seed coprime to n.
  BlumBlumShub(bignum::Uint n, const bignum::Uint& seed);

  /// Generate p, q of `bits/2` each and seed from `seed_rng`.
  static BlumBlumShub generate(std::size_t bits, util::RandomSource& seed_rng);

  /// Extract one cryptographically secure bit (one modular squaring).
  bool next_bit();
  std::uint64_t next_u64() override;

 private:
  bignum::Uint n_;
  bignum::Uint state_;
};

}  // namespace fbs::crypto
