#include "crypto/des3.hpp"

namespace fbs::crypto {

Des3::Des3(util::BytesView key)
    : k1_(key.subspan(0, 8)), k2_(key.subspan(8, 8)), k3_(key.subspan(16, 8)) {}

std::uint64_t Des3::encrypt_block(std::uint64_t block) const {
  return k3_.encrypt_block(k2_.decrypt_block(k1_.encrypt_block(block)));
}

std::uint64_t Des3::decrypt_block(std::uint64_t block) const {
  return k1_.decrypt_block(k2_.encrypt_block(k3_.decrypt_block(block)));
}

void Des3::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  Des::store_be64(encrypt_block(Des::load_be64(in)), out);
}

void Des3::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  Des::store_be64(decrypt_block(Des::load_be64(in)), out);
}

}  // namespace fbs::crypto
