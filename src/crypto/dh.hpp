// Diffie-Hellman key exchange (New Directions in Cryptography, 1976).
//
// This is the foundation of FBS zero-message keying (Section 5.1): each
// principal P holds a private value p; the implicit pair-based master key is
//     K_{S,D} = g^{sd} mod p
// computable by S from (s, g^d) and by D from (d, g^s) -- and by nobody
// else. Public values travel inside certificates (src/cert); no message
// exchange between S and D is ever needed.
#pragma once

#include <string>

#include "bignum/uint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {

struct DhGroup {
  std::string name;
  bignum::Uint p;  // prime modulus
  bignum::Uint g;  // generator

  /// Width in bytes used when serializing group elements.
  std::size_t element_size() const { return (p.bit_length() + 7) / 8; }
};

/// RFC 2409 Oakley Group 1 (768-bit MODP, generator 2).
const DhGroup& oakley_group1();
/// RFC 2409 Oakley Group 2 (1024-bit MODP, generator 2).
const DhGroup& oakley_group2();
/// A tiny 31-bit group for fast unit tests. NOT secure.
const DhGroup& test_group();

struct DhKeyPair {
  bignum::Uint private_value;  // x in [2, p-2]
  bignum::Uint public_value;   // g^x mod p
};

/// Draw a fresh private value and derive its public value.
DhKeyPair dh_generate(const DhGroup& group, util::RandomSource& rng);

/// K = peer_public ^ own_private mod p.
bignum::Uint dh_shared_secret(const DhGroup& group,
                              const bignum::Uint& own_private,
                              const bignum::Uint& peer_public);

/// Fixed-width big-endian encoding of the shared secret, as fed into the
/// flow-key hash.
util::Bytes dh_shared_secret_bytes(const DhGroup& group,
                                   const bignum::Uint& own_private,
                                   const bignum::Uint& peer_public);

}  // namespace fbs::crypto
