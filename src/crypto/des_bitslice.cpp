#include "crypto/des_bitslice.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "crypto/des.hpp"
#include "crypto/des_tables.hpp"

namespace fbs::crypto {
namespace {

using des_tables::kExpansion;
using des_tables::kFp;
using des_tables::kIp;
using des_tables::kPbox;
using des_tables::kSbox;

/// The gate network's word: kWords 64-lane groups evaluated per boolean op.
/// GCC/Clang lower &, |, ^, ~ on this type to one SIMD op where the target
/// has 256-bit registers (AVX2) and to kWords scalar ops otherwise, so the
/// same source covers both. may_alias lets crypt() view the uint64_t key
/// rows in ks_ as Words without strict-aliasing UB.
typedef std::uint64_t Word
    __attribute__((vector_size(sizeof(std::uint64_t) * DesBitslice::kWords),
                   may_alias));

// ---------------------------------------------------------------------------
// S-boxes as gate networks, derived from the FIPS tables at compile time.
//
// Each S-box output bit is a 6-variable boolean function; its 64-entry truth
// table packs into one uint64_t (bit v = output for input v, where v's MSB
// is the standard's input bit 1). The evaluator below decomposes the truth
// table recursively with the positive Davio expansion
//
//     f(x, rest) = f0(rest) ^ (x & (f0 ^ f1)(rest))
//
// plus constant/absorption foldings (f0 == f1, a half that is all-zero or
// all-one, complement halves -> XOR). Because sub-tables are template
// arguments, identical subfunctions across the 32 output bits instantiate
// once and the compiler's CSE shares them; the result is a flat ~60-op
// gate network per S-box with no tables, no branches and full kLanes-wide
// ILP.
// ---------------------------------------------------------------------------

/// Truth table for S-box `s`, output bit `o` (0 = the 4-bit value's MSB).
constexpr std::uint64_t sbox_tt(int s, int o) {
  std::uint64_t tt = 0;
  for (int v = 0; v < 64; ++v) {
    // FIPS: input bits 1 and 6 select the row, bits 2..5 the column.
    const int row = ((v >> 4) & 2) | (v & 1);
    const int col = (v >> 1) & 0xF;
    if ((kSbox[s][row * 16 + col] >> (3 - o)) & 1) tt |= 1ull << v;
  }
  return tt;
}

/// All-ones truth table for a V-variable function (V <= 6).
template <unsigned V>
inline constexpr std::uint64_t kTtFull =
    V >= 6 ? ~0ull : (1ull << (1u << V)) - 1;

/// Relabel `tt`'s variables so that split level j consumes old variable
/// order[j] (0 = the standard's input bit 1, orders packed 3 bits per
/// level, level 0 in bits 17..15). The evaluator then reads its inputs
/// through the same order and computes the original function.
constexpr std::uint64_t permute_tt(std::uint64_t tt, unsigned order) {
  std::uint64_t out = 0;
  for (unsigned v = 0; v < 64; ++v) {
    unsigned old = 0;
    for (unsigned j = 0; j < 6; ++j) {
      old |= ((v >> (5 - j)) & 1u) << (5 - ((order >> (15 - 3 * j)) & 7u));
    }
    if ((tt >> old) & 1) out |= 1ull << v;
  }
  return out;
}

/// Positions of the 64-entry table where v's index bit b is set.
constexpr std::uint64_t var_mask(unsigned b) {
  constexpr std::uint64_t masks[6] = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};
  return masks[b];
}

/// Cofactors in canonical 64-entry form: positions of already-removed
/// variables carry duplicated values, so two calls computing the same
/// logical subfunction produce bit-identical tables -- which is what lets
/// the cost model below recognize shared nodes by table equality, the same
/// sharing the compiler's CSE performs on identical Davio instantiations.
constexpr std::uint64_t canon_lo(std::uint64_t tt, unsigned b) {
  const std::uint64_t raw = tt & ~var_mask(b);
  return raw | (raw << (1u << b));
}
constexpr std::uint64_t canon_hi(std::uint64_t tt, unsigned b) {
  const std::uint64_t raw = (tt & var_mask(b)) >> (1u << b);
  return raw | (raw << (1u << b));
}

/// Davio tree cost under split order `order` (packed 3 bits per level):
/// an op for every &, |, ^, ~ the evaluator would emit, with NO credit for
/// node sharing. (A sharing-aware DAG metric was tried and measured
/// slower: shared subtrees serialize the dependency graph, while the tree
/// metric implicitly rewards orders whose outputs stay independent and
/// keep all lanes' ILP available.) O(1) cofactor math per node -- no
/// permuted table is ever built -- which is what makes the exhaustive
/// order search fit the compile-time budget.
constexpr long tree_cost(std::uint64_t tt, unsigned order, unsigned level) {
  if (tt == 0 || tt == ~0ull) return 0;
  if (level == 5) return (tt & 1) == 0 ? 0 : 1;  // x : ~x
  const unsigned b = 5 - ((order >> (15 - 3 * level)) & 7u);
  const std::uint64_t lo = canon_lo(tt, b);
  const std::uint64_t hi = canon_hi(tt, b);
  if (lo == hi) return tree_cost(lo, order, level + 1);
  if (lo == 0 && hi == ~0ull) return 0;
  if (lo == ~0ull && hi == 0) return 1;
  if (lo == 0) return 1 + tree_cost(hi, order, level + 1);
  if (hi == 0) return 2 + tree_cost(lo, order, level + 1);
  if (lo == ~0ull) return 2 + tree_cost(hi, order, level + 1);
  if (hi == ~0ull) return 1 + tree_cost(lo, order, level + 1);
  if ((lo ^ hi) == ~0ull) return 1 + tree_cost(lo, order, level + 1);
  return 2 + tree_cost(lo, order, level + 1) +
         tree_cost(lo ^ hi, order, level + 1);
}

/// The decomposition order matters a lot: a poor first split can double
/// the network. Search all 720 orders for S-box `s` (one order shared by
/// its four outputs, so identical subfunctions stay shareable) for the
/// minimum total tree cost. Runs once per S-box, at compile time; kept
/// integer-only and split into eight evaluations to stay inside the
/// compiler's per-constant constexpr budget.
constexpr unsigned best_order(int s) {
  const std::uint64_t tts[4] = {sbox_tt(s, 0), sbox_tt(s, 1), sbox_tt(s, 2),
                                sbox_tt(s, 3)};
  unsigned perm[6] = {0, 1, 2, 3, 4, 5};
  unsigned best = 0;
  long best_cost = -1;
  for (;;) {
    unsigned packed = 0;
    for (unsigned j = 0; j < 6; ++j) packed |= perm[j] << (15 - 3 * j);
    long cost = 0;
    for (int o = 0; o < 4; ++o) cost += tree_cost(tts[o], packed, 0);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = packed;
    }
    // next_permutation, hand-rolled over the plain array.
    int i = 4;
    while (i >= 0 && perm[i] >= perm[i + 1]) --i;
    if (i < 0) break;
    int k = 5;
    while (perm[k] <= perm[static_cast<unsigned>(i)]) --k;
    unsigned t = perm[static_cast<unsigned>(i)];
    perm[static_cast<unsigned>(i)] = perm[k];
    perm[k] = t;
    for (int a = i + 1, b = 5; a < b; ++a, --b) {
      t = perm[a];
      perm[a] = perm[b];
      perm[b] = t;
    }
  }
  return best;
}

inline constexpr unsigned kSboxOrder[8] = {
    best_order(0), best_order(1), best_order(2), best_order(3),
    best_order(4), best_order(5), best_order(6), best_order(7)};

/// Split level j's input index for S-box s.
constexpr unsigned order_at(int s, int j) {
  return (kSboxOrder[s] >> (15 - 3 * j)) & 7u;
}

/// Evaluate the V-variable function with truth table TT over lane vectors
/// x[0..V-1], where x[0] is the variable indexing TT's top half.
template <std::uint64_t TT, unsigned V>
struct Davio {
  static inline Word eval(const Word* x) {
    if constexpr (TT == 0) {
      return Word{};
    } else if constexpr (TT == kTtFull<V>) {
      return ~Word{};
    } else if constexpr (V == 1) {
      // Constants handled above; the two non-constant 1-var functions:
      return TT == 2 ? x[0] : ~x[0];
    } else {
      constexpr std::uint64_t kHalf = kTtFull<V - 1>;
      constexpr std::uint64_t lo = TT & kHalf;          // x[0] == 0 half
      constexpr std::uint64_t hi = (TT >> (1u << (V - 1))) & kHalf;
      if constexpr (lo == hi) {
        return Davio<lo, V - 1>::eval(x + 1);
      } else if constexpr (lo == 0 && hi == kHalf) {
        return x[0];
      } else if constexpr (lo == kHalf && hi == 0) {
        return ~x[0];
      } else if constexpr (lo == 0) {
        return x[0] & Davio<hi, V - 1>::eval(x + 1);
      } else if constexpr (hi == 0) {
        return ~x[0] & Davio<lo, V - 1>::eval(x + 1);
      } else if constexpr (lo == kHalf) {
        return ~x[0] | Davio<hi, V - 1>::eval(x + 1);
      } else if constexpr (hi == kHalf) {
        return x[0] | Davio<lo, V - 1>::eval(x + 1);
      } else if constexpr ((lo ^ hi) == kHalf) {
        return x[0] ^ Davio<lo, V - 1>::eval(x + 1);
      } else {
        return Davio<lo, V - 1>::eval(x + 1) ^
               (x[0] & Davio<lo ^ hi, V - 1>::eval(x + 1));
      }
    }
  }
};

/// Inverse of the P permutation: S-box output bit t+1 lands at L position
/// kPboxInv[t], letting the round XOR f(R) straight into L with no
/// intermediate 32-vector staging.
constexpr std::array<std::uint8_t, 32> pbox_inv() {
  std::array<std::uint8_t, 32> inv{};
  for (int i = 0; i < 32; ++i) inv[kPbox[i] - 1] = static_cast<std::uint8_t>(i);
  return inv;
}
inline constexpr std::array<std::uint8_t, 32> kPboxInv = pbox_inv();

/// One round's full S-box layer: E expansion and P are index wiring only.
/// r[] holds R's 32 bit-vectors, rk the round's 48 key vectors; the S-box
/// outputs are XOR'ed into l[] through the inverse P-box, so after this
/// l holds L ^ f(R, rk).
template <std::size_t... S>
inline void sbox_layer(Word* __restrict l, const Word* __restrict r,
                       const Word* __restrict rk, std::index_sequence<S...>) {
  (...,
   [&] {
     // Feed the inputs through this S-box's optimized split order; the
     // truth tables are relabeled to match, so the function is unchanged.
     Word x[6];
     for (int k = 0; k < 6; ++k) {
       const unsigned in = order_at(S, k);
       x[k] = r[kExpansion[6 * S + in] - 1] ^ rk[6 * S + in];
     }
     l[kPboxInv[4 * S + 0]] ^=
         Davio<permute_tt(sbox_tt(S, 0), kSboxOrder[S]), 6>::eval(x);
     l[kPboxInv[4 * S + 1]] ^=
         Davio<permute_tt(sbox_tt(S, 1), kSboxOrder[S]), 6>::eval(x);
     l[kPboxInv[4 * S + 2]] ^=
         Davio<permute_tt(sbox_tt(S, 2), kSboxOrder[S]), 6>::eval(x);
     l[kPboxInv[4 * S + 3]] ^=
         Davio<permute_tt(sbox_tt(S, 3), kSboxOrder[S]), 6>::eval(x);
   }());
}

}  // namespace

DesBitsliceKeySchedule DesBitsliceKeySchedule::from_key(util::BytesView key) {
  return from_key64(Des::load_be64(key.data()));
}

DesBitsliceKeySchedule DesBitsliceKeySchedule::from_key64(std::uint64_t k64) {
  const des_tables::KeySchedule ks = des_tables::key_schedule(k64);
  DesBitsliceKeySchedule out;
  for (int round = 0; round < 16; ++round) {
    out.subkeys[static_cast<std::size_t>(round)] = ks.subkeys[round];
  }
  return out;
}

void DesBitslice::transpose64(std::uint64_t m[kGroupLanes]) {
  // Hacker's Delight 7-3, in place: swap progressively smaller off-diagonal
  // sub-blocks. Three nested log-steps, ~700 ops total.
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k | j] >> j)) & mask;
      m[k] ^= t;
      m[k | j] ^= t << j;
    }
  }
}

void DesBitslice::set_all_lanes(const DesBitsliceKeySchedule& ks) {
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t sk = ks.subkeys[static_cast<std::size_t>(round)];
    auto& dst = ks_[static_cast<std::size_t>(round)];
    for (std::size_t t = 0; t < 48; ++t) {
      const std::uint64_t v = (sk >> (47 - t)) & 1 ? ~0ull : 0;
      for (std::size_t w = 0; w < kWords; ++w) dst[t * kWords + w] = v;
    }
  }
}

void DesBitslice::set_lanes(
    const std::array<const DesBitsliceKeySchedule*, kLanes>& lanes) {
  // Per round, per 64-lane group: gather the group's 48-bit subkeys
  // left-aligned, transpose, and the first 48 rows are exactly the group's
  // lane-mask words. 16 x kWords transposes ~= a cipher pass, vs ~100
  // passes' worth of one-lane updates.
  for (int round = 0; round < 16; ++round) {
    auto& dst = ks_[static_cast<std::size_t>(round)];
    for (std::size_t w = 0; w < kWords; ++w) {
      std::uint64_t m[kGroupLanes];
      for (std::size_t i = 0; i < kGroupLanes; ++i) {
        m[i] = lanes[w * kGroupLanes + i]
                   ->subkeys[static_cast<std::size_t>(round)]
               << 16;
      }
      transpose64(m);
      for (std::size_t t = 0; t < 48; ++t) dst[t * kWords + w] = m[t];
    }
  }
}

void DesBitslice::set_lane(std::size_t lane, const DesBitsliceKeySchedule& ks) {
  const std::size_t w = lane / kGroupLanes;
  const std::uint64_t bit = 1ull << (63 - lane % kGroupLanes);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t sk = ks.subkeys[static_cast<std::size_t>(round)];
    auto& dst = ks_[static_cast<std::size_t>(round)];
    for (std::size_t t = 0; t < 48; ++t) {
      if ((sk >> (47 - t)) & 1) {
        dst[t * kWords + w] |= bit;
      } else {
        dst[t * kWords + w] &= ~bit;
      }
    }
  }
}

void DesBitslice::crypt(std::uint64_t blocks[kLanes], bool decrypt) const {
  // To sliced form, one 64x64 tile per group: after the transposes,
  // blocks[w * 64 + j] is the standard's input bit j+1 across group w's
  // lanes (lane w*64+i at word bit 63-i). The Word gathers below then
  // stack the kWords groups into one wide lane vector per bit position.
  for (std::size_t w = 0; w < kWords; ++w) {
    transpose64(blocks + w * kGroupLanes);
  }

  // IP, then split into L/R bit-vector banks. All 16 rounds are unrolled
  // with the Feistel swap done by alternating which bank a round XORs into,
  // so there is no pointer juggling and no copying of 32-word halves.
  Word bank_l[32];
  Word bank_r[32];
  for (std::size_t i = 0; i < 32; ++i) {
    const auto a = static_cast<std::size_t>(kIp[i] - 1);
    const auto b = static_cast<std::size_t>(kIp[32 + i] - 1);
    Word l{};
    Word r{};
    for (std::size_t w = 0; w < kWords; ++w) {
      l[w] = blocks[w * kGroupLanes + a];
      r[w] = blocks[w * kGroupLanes + b];
    }
    bank_l[i] = l;
    bank_r[i] = r;
  }

  // Round R (0-based): l ^= f(r, key) turns l into R_{R+1} while the other
  // bank already holds L_{R+1}; parity decides which bank plays which role.
  // ks_ rows are [t * kWords + w], i.e. exactly 48 consecutive Words.
  const auto round = [&](int index, Word* l, const Word* r) {
    const auto& row =
        ks_[static_cast<std::size_t>(decrypt ? 15 - index : index)];
    sbox_layer(l, r, reinterpret_cast<const Word*>(row.data()),
               std::make_index_sequence<8>{});
  };
  for (int index = 0; index < 16; index += 2) {
    round(index, bank_l, bank_r);
    round(index + 1, bank_r, bank_l);
  }

  // After round 15 (odd) bank_r holds R16 and bank_l holds L16; preoutput
  // is R16 L16 -- positions 1..32 read bank_r, 33..64 read bank_l -- folded
  // straight into FP, scattered back out per group.
  for (std::size_t j = 0; j < 64; ++j) {
    const Word v = kFp[j] <= 32 ? bank_r[kFp[j] - 1] : bank_l[kFp[j] - 33];
    for (std::size_t w = 0; w < kWords; ++w) {
      blocks[w * kGroupLanes + j] = v[w];
    }
  }
  for (std::size_t w = 0; w < kWords; ++w) {
    transpose64(blocks + w * kGroupLanes);
  }
}

}  // namespace fbs::crypto
