// Minimal RSA signatures for the public-value certificate hierarchy.
//
// The paper assumes public values are "authenticated via a distributed
// certification hierarchy (e.g., X.509 certificates)" (Section 5.2) and its
// CryptoLib substrate included RSA. We implement textbook RSA with a
// deterministic PKCS#1-v1.5-style digest encoding: enough to give the toy
// certificate authority in src/cert real, forgeable-only-by-breaking-RSA
// signatures. Not hardened against side channels; simulation use only.
#pragma once

#include <optional>

#include "bignum/uint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fbs::crypto {

struct RsaPublicKey {
  bignum::Uint n;  // modulus
  bignum::Uint e;  // public exponent

  std::size_t modulus_size() const { return (n.bit_length() + 7) / 8; }
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  bignum::Uint d;  // private exponent
};

/// Generate an RSA keypair with a `bits`-bit modulus (two bits/2 primes),
/// e = 65537. Intended sizes here are 512-1024 bits.
RsaPrivateKey rsa_generate(std::size_t bits, util::RandomSource& rng);

/// Sign the MD5 digest of `message` (digest is recomputed internally).
util::Bytes rsa_sign_md5(const RsaPrivateKey& key, util::BytesView message);

/// Verify a signature produced by rsa_sign_md5.
bool rsa_verify_md5(const RsaPublicKey& key, util::BytesView message,
                    util::BytesView signature);

}  // namespace fbs::crypto
