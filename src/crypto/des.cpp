#include "crypto/des.hpp"

#include <cassert>

#include "crypto/des_tables.hpp"

namespace fbs::crypto {

namespace {

/// Fused SP tables: kSp[i][v] is the P permutation applied to S-box i's
/// output for the 6-bit E-expanded-and-keyed input v, already positioned in
/// the 32-bit word. One lookup replaces a 6-bit S-box row/column decode plus
/// a 32-entry P permutation walk.
constexpr std::array<std::array<std::uint32_t, 64>, 8> build_sp_tables() {
  std::array<std::array<std::uint32_t, 64>, 8> sp{};
  for (int box = 0; box < 8; ++box) {
    for (int v = 0; v < 64; ++v) {
      // Row = outer two bits, column = inner four (FIPS b1..b6, MSB first).
      const int row = ((v & 0x20) >> 4) | (v & 1);
      const int col = (v >> 1) & 0xF;
      const std::uint32_t s = des_tables::kSbox[box][row * 16 + col];
      // Place the 4-bit output at FIPS bits 4*box+1 .. 4*box+4, then P.
      const std::uint64_t positioned = static_cast<std::uint64_t>(s)
                                       << (28 - 4 * box);
      sp[box][v] = static_cast<std::uint32_t>(
          des_tables::permute(positioned, des_tables::kPbox, 32));
    }
  }
  return sp;
}

constexpr auto kSp = build_sp_tables();

/// IP as a 5-stage bit-swap network on the big-endian-loaded halves
/// (l = FIPS bits 1-32, r = 33-64); verified bit-exact against the kIp
/// table walk. FP is the inverse: the same involutive stages in reverse.
inline void initial_permutation(std::uint32_t& l, std::uint32_t& r) {
  std::uint32_t t;
  t = ((l >> 4) ^ r) & 0x0F0F0F0Fu;  r ^= t;  l ^= t << 4;
  t = ((l >> 16) ^ r) & 0x0000FFFFu; r ^= t;  l ^= t << 16;
  t = ((r >> 2) ^ l) & 0x33333333u;  l ^= t;  r ^= t << 2;
  t = ((r >> 8) ^ l) & 0x00FF00FFu;  l ^= t;  r ^= t << 8;
  t = ((l >> 1) ^ r) & 0x55555555u;  r ^= t;  l ^= t << 1;
}

inline void final_permutation(std::uint32_t& l, std::uint32_t& r) {
  std::uint32_t t;
  t = ((l >> 1) ^ r) & 0x55555555u;  r ^= t;  l ^= t << 1;
  t = ((r >> 8) ^ l) & 0x00FF00FFu;  l ^= t;  r ^= t << 8;
  t = ((r >> 2) ^ l) & 0x33333333u;  l ^= t;  r ^= t << 2;
  t = ((l >> 16) ^ r) & 0x0000FFFFu; r ^= t;  l ^= t << 16;
  t = ((l >> 4) ^ r) & 0x0F0F0F0Fu;  r ^= t;  l ^= t << 4;
}

/// The cipher function f(R, K). Rotating R right by one bit turns the E
/// expansion's overlapping 6-bit groups into plain shift/mask extractions:
/// group i of E(R) is bits [4i..4i+5] of the cyclic sequence
/// R32 R1 R2 ... R31, which is exactly `u` read MSB-first.
inline std::uint32_t feistel(std::uint32_t r, const std::uint8_t* k) {
  const std::uint32_t u = (r >> 1) | (r << 31);
  return kSp[0][((u >> 26) ^ k[0]) & 0x3F] |
         kSp[1][((u >> 22) ^ k[1]) & 0x3F] |
         kSp[2][((u >> 18) ^ k[2]) & 0x3F] |
         kSp[3][((u >> 14) ^ k[3]) & 0x3F] |
         kSp[4][((u >> 10) ^ k[4]) & 0x3F] |
         kSp[5][((u >> 6) ^ k[5]) & 0x3F] |
         kSp[6][((u >> 2) ^ k[6]) & 0x3F] |
         kSp[7][((((u & 0xF) << 2) | (u >> 30)) ^ k[7]) & 0x3F];
}

}  // namespace

Des::Des(util::BytesView key) {
  assert(key.size() == kKeySize);
  const des_tables::KeySchedule ks =
      des_tables::key_schedule(load_be64(key.data()));
  for (int round = 0; round < 16; ++round)
    for (int chunk = 0; chunk < 8; ++chunk)
      subkeys_[round][chunk] = static_cast<std::uint8_t>(
          (ks.subkeys[round] >> (42 - 6 * chunk)) & 0x3F);
}

std::uint64_t Des::crypt(std::uint64_t block, bool decrypt) const {
  std::uint32_t l = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(block);
  initial_permutation(l, r);
  if (decrypt) {
    for (int round = 15; round >= 0; round -= 2) {
      l ^= feistel(r, subkeys_[round].data());
      r ^= feistel(l, subkeys_[round - 1].data());
    }
  } else {
    for (int round = 0; round < 16; round += 2) {
      l ^= feistel(r, subkeys_[round].data());
      r ^= feistel(l, subkeys_[round + 1].data());
    }
  }
  // The unrolled pairs absorb the per-round swap; preoutput is R16 L16.
  final_permutation(r, l);
  return static_cast<std::uint64_t>(r) << 32 | l;
}

std::uint64_t Des::crypt_trace(std::uint64_t block, bool decrypt,
                               RoundTrace& trace) const {
  std::uint32_t l = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(block);
  initial_permutation(l, r);
  trace.l[0] = l;
  trace.r[0] = r;
  for (int round = 0; round < 16; ++round) {
    const auto& k = subkeys_[decrypt ? 15 - round : round];
    const std::uint32_t next = l ^ feistel(r, k.data());
    l = r;
    r = next;
    trace.l[round + 1] = l;
    trace.r[round + 1] = r;
  }
  std::uint32_t outl = r, outr = l;  // preoutput swap
  final_permutation(outl, outr);
  return static_cast<std::uint64_t>(outl) << 32 | outr;
}

std::uint64_t Des::encrypt_block(std::uint64_t block) const {
  return crypt(block, false);
}

std::uint64_t Des::decrypt_block(std::uint64_t block) const {
  return crypt(block, true);
}

void Des::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  store_be64(encrypt_block(load_be64(in)), out);
}

void Des::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  store_be64(decrypt_block(load_be64(in)), out);
}

std::uint64_t Des::load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | p[i];
  return v;
}

void Des::store_be64(std::uint64_t v, std::uint8_t* p) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

}  // namespace fbs::crypto
