// Algorithm registry backing the security flow header's algorithm
// identification field ("For generality, the security flow header should
// also include an algorithm identification field", Section 5.2 -- the paper
// omits its description; this is our realization).
//
// A suite names the MAC construction and the optional cipher. The default
// suite matches the paper's implementation: keyed MD5 + DES-CBC (Sec 7.2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "crypto/block_modes.hpp"
#include "crypto/mac.hpp"

namespace fbs::crypto {

enum class MacAlgorithm : std::uint8_t {
  kKeyedMd5 = 1,   // H(K | ...) with MD5: the paper's MAC
  kHmacMd5 = 2,    // RFC 2104
  kKeyedSha1 = 3,  // H(K | ...) with SHS
  kHmacSha1 = 4,
  /// "Nullified" MAC for the FBS NOP configuration of Figure 8: returns a
  /// constant 128-bit tag immediately, so protocol overhead can be measured
  /// with cryptography out of the picture. NOT a security mode.
  kNull = 5,
};

enum class CipherAlgorithm : std::uint8_t {
  kNone = 0,  // authentication-only datagrams
  kDesCbc = 1,
  kDesEcb = 2,
  kDesCfb = 3,
  kDesOfb = 4,
  /// Triple DES, EDE with three independent keys, in CBC mode (ROADMAP
  /// item 3b). Scalar-only: the bitsliced batch engine handles single DES;
  /// kDes3Ede flows take the table-driven Des3 core.
  kDes3Ede = 5,
};

struct AlgorithmSuite {
  MacAlgorithm mac = MacAlgorithm::kKeyedMd5;
  CipherAlgorithm cipher = CipherAlgorithm::kDesCbc;

  bool operator==(const AlgorithmSuite&) const = default;
};

/// The 1997 implementation's suite: keyed MD5 MAC, DES-CBC encryption.
inline AlgorithmSuite default_suite() { return {}; }

/// Pack/unpack the one-byte wire encoding (high nibble MAC, low cipher).
std::uint8_t encode_suite(AlgorithmSuite suite);
std::optional<AlgorithmSuite> decode_suite(std::uint8_t wire);

/// Instantiate the MAC for a suite. Never null for a valid enum value.
std::unique_ptr<Mac> make_mac(MacAlgorithm alg);
std::size_t mac_size(MacAlgorithm alg);

/// Block-cipher mode for a cipher algorithm; nullopt for kNone.
std::optional<CipherMode> cipher_mode(CipherAlgorithm alg);

}  // namespace fbs::crypto
