#include "crypto/dh.hpp"

namespace fbs::crypto {

namespace {

DhGroup make_group(std::string name, const char* p_hex, std::uint64_t g) {
  return DhGroup{std::move(name), *bignum::Uint::from_hex(p_hex),
                 bignum::Uint(g)};
}

}  // namespace

const DhGroup& oakley_group1() {
  static const DhGroup group = make_group(
      "oakley-group-1 (768-bit MODP)",
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
      "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
      "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF",
      2);
  return group;
}

const DhGroup& oakley_group2() {
  static const DhGroup group = make_group(
      "oakley-group-2 (1024-bit MODP)",
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
      "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
      "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
      "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
      2);
  return group;
}

const DhGroup& test_group() {
  // p = 2^31 - 1 (Mersenne prime M31); 7 generates a large subgroup.
  static const DhGroup group{"test-group-m31 (INSECURE)",
                             bignum::Uint(0x7FFFFFFFull), bignum::Uint(7)};
  return group;
}

DhKeyPair dh_generate(const DhGroup& group, util::RandomSource& rng) {
  // Private value uniform in [2, p-2].
  const bignum::Uint span = group.p - bignum::Uint(3);
  const bignum::Uint x = bignum::Uint::random_below(rng, span) + bignum::Uint(2);
  return DhKeyPair{x, bignum::Uint::powmod(group.g, x, group.p)};
}

bignum::Uint dh_shared_secret(const DhGroup& group,
                              const bignum::Uint& own_private,
                              const bignum::Uint& peer_public) {
  return bignum::Uint::powmod(peer_public, own_private, group.p);
}

util::Bytes dh_shared_secret_bytes(const DhGroup& group,
                                   const bignum::Uint& own_private,
                                   const bignum::Uint& peer_public) {
  return dh_shared_secret(group, own_private, peer_public)
      .to_bytes_be(group.element_size());
}

}  // namespace fbs::crypto
