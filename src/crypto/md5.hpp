// MD5 message digest (RFC 1321), implemented from the specification.
// This is the paper's default H and HMAC hash: flow keys are
// Kf = MD5(sfl | K_SD | S | D) and the header MAC is keyed MD5 (Sec 7.2).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace fbs::crypto {

class Md5 final : public Hash {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5() { reset(); }

  std::size_t digest_size() const override { return kDigestSize; }
  std::size_t block_size() const override { return kBlockSize; }
  void reset() override;
  void update(util::BytesView data) override;
  void finish_into(std::uint8_t* out) override;
  void copy_from(const Hash& other) override {
    *this = static_cast<const Md5&>(other);
  }
  std::unique_ptr<Hash> clone() const override {
    return std::make_unique<Md5>(*this);
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;  // bytes fed so far
};

/// One-shot MD5.
util::Bytes md5(util::BytesView data);

}  // namespace fbs::crypto
