#include "crypto/bbs.hpp"

#include <cassert>

#include "bignum/prime.hpp"

namespace fbs::crypto {

BlumBlumShub::BlumBlumShub(bignum::Uint n, const bignum::Uint& seed)
    : n_(std::move(n)) {
  assert(!n_.is_zero());
  // x0 = seed^2 mod n guarantees a quadratic residue start state.
  state_ = bignum::Uint::mulmod(seed % n_, seed % n_, n_);
  if (state_.is_zero() || state_ == bignum::Uint(1))
    state_ = bignum::Uint::mulmod(bignum::Uint(7), bignum::Uint(7), n_);
}

BlumBlumShub BlumBlumShub::generate(std::size_t bits,
                                    util::RandomSource& seed_rng) {
  const bignum::Uint p = bignum::generate_blum_prime(bits / 2, seed_rng);
  bignum::Uint q;
  do {
    q = bignum::generate_blum_prime(bits - bits / 2, seed_rng);
  } while (q == p);
  const bignum::Uint n = p * q;
  const bignum::Uint seed =
      bignum::Uint::random_below(seed_rng, n - bignum::Uint(3)) +
      bignum::Uint(2);
  return BlumBlumShub(n, seed);
}

bool BlumBlumShub::next_bit() {
  state_ = bignum::Uint::mulmod(state_, state_, n_);
  return state_.is_odd();
}

std::uint64_t BlumBlumShub::next_u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 64; ++i) v = v << 1 | static_cast<std::uint64_t>(next_bit());
  return v;
}

}  // namespace fbs::crypto
