#include "crypto/block_modes.hpp"

#include <cstring>

namespace fbs::crypto {

namespace {

constexpr std::size_t kBlock = Des::kBlockSize;

/// Copy `data` into `out` and append PKCS#7 padding. One resize sizes the
/// buffer exactly; a reused `out` with enough capacity never reallocates.
void pkcs7_pad_into(util::BytesView data, util::Bytes& out) {
  const std::size_t pad = kBlock - data.size() % kBlock;  // 1..8
  out.resize(data.size() + pad);
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
  std::memset(out.data() + data.size(), static_cast<int>(pad), pad);
}

bool pkcs7_unpad_in_place(util::Bytes& data) {
  if (data.empty() || data.size() % kBlock != 0) return false;
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > kBlock || pad > data.size()) return false;
  for (std::size_t i = data.size() - pad; i < data.size(); ++i)
    if (data[i] != pad) return false;
  data.resize(data.size() - pad);
  return true;
}

/// Shared keystream generator for the two stream modes. CFB feeds the
/// previous ciphertext block back through the cipher; OFB feeds the cipher
/// output back, independent of the data.
void stream_crypt_into(const Des& cipher, CipherMode mode, std::uint64_t iv,
                       util::BytesView in, bool decrypting, util::Bytes& out) {
  out.resize(in.size());
  std::uint64_t feedback = iv;
  for (std::size_t off = 0; off < in.size(); off += kBlock) {
    const std::uint64_t keystream = cipher.encrypt_block(feedback);
    const std::size_t n = std::min(kBlock, in.size() - off);
    std::uint64_t in_block = 0;
    for (std::size_t i = 0; i < n; ++i)
      in_block |= static_cast<std::uint64_t>(in[off + i]) << (56 - 8 * i);
    const std::uint64_t out_block = in_block ^ keystream;
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = static_cast<std::uint8_t>(out_block >> (56 - 8 * i));
    if (mode == CipherMode::kOfb) {
      feedback = keystream;
    } else {  // CFB: feedback is the ciphertext block
      feedback = decrypting ? in_block : out_block;
    }
  }
}

}  // namespace

void encrypt_into(const Des& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView plaintext, util::Bytes& out) {
  switch (mode) {
    case CipherMode::kEcb: {
      pkcs7_pad_into(plaintext, out);
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        // Confounder-XOR ECB per Section 5.2.
        const std::uint64_t pt = Des::load_be64(&out[off]) ^ iv;
        Des::store_be64(cipher.encrypt_block(pt), &out[off]);
      }
      return;
    }
    case CipherMode::kCbc: {
      pkcs7_pad_into(plaintext, out);
      std::uint64_t chain = iv;
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        chain = cipher.encrypt_block(Des::load_be64(&out[off]) ^ chain);
        Des::store_be64(chain, &out[off]);
      }
      return;
    }
    case CipherMode::kCfb:
    case CipherMode::kOfb:
      stream_crypt_into(cipher, mode, iv, plaintext, /*decrypting=*/false,
                        out);
      return;
  }
  out.clear();
}

bool decrypt_into(const Des& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView ciphertext, util::Bytes& out) {
  switch (mode) {
    case CipherMode::kEcb: {
      if (ciphertext.empty() || ciphertext.size() % kBlock != 0) return false;
      out.resize(ciphertext.size());
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        const std::uint64_t pt =
            cipher.decrypt_block(Des::load_be64(&ciphertext[off])) ^ iv;
        Des::store_be64(pt, &out[off]);
      }
      return pkcs7_unpad_in_place(out);
    }
    case CipherMode::kCbc: {
      if (ciphertext.empty() || ciphertext.size() % kBlock != 0) return false;
      out.resize(ciphertext.size());
      std::uint64_t chain = iv;
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        const std::uint64_t ct = Des::load_be64(&ciphertext[off]);
        Des::store_be64(cipher.decrypt_block(ct) ^ chain, &out[off]);
        chain = ct;
      }
      return pkcs7_unpad_in_place(out);
    }
    case CipherMode::kCfb:
    case CipherMode::kOfb:
      stream_crypt_into(cipher, mode, iv, ciphertext, /*decrypting=*/true,
                        out);
      return true;
  }
  return false;
}

util::Bytes encrypt(const Des& cipher, CipherMode mode, std::uint64_t iv,
                    util::BytesView plaintext) {
  util::Bytes out;
  encrypt_into(cipher, mode, iv, plaintext, out);
  return out;
}

std::optional<util::Bytes> decrypt(const Des& cipher, CipherMode mode,
                                   std::uint64_t iv,
                                   util::BytesView ciphertext) {
  util::Bytes out;
  if (!decrypt_into(cipher, mode, iv, ciphertext, out)) return std::nullopt;
  return out;
}

}  // namespace fbs::crypto
