#include "crypto/block_modes.hpp"

#include "crypto/des3.hpp"

namespace fbs::crypto {

namespace {

constexpr std::size_t kBlock = Des::kBlockSize;

/// Shared keystream generator for the two stream modes. CFB feeds the
/// previous ciphertext block back through the cipher; OFB feeds the cipher
/// output back, independent of the data.
template <class Cipher>
void stream_crypt_into(const Cipher& cipher, CipherMode mode,
                       std::uint64_t iv, util::BytesView in, bool decrypting,
                       util::Bytes& out) {
  out.resize(in.size());
  std::uint64_t feedback = iv;
  for (std::size_t off = 0; off < in.size(); off += kBlock) {
    const std::uint64_t keystream = cipher.encrypt_block(feedback);
    const std::size_t n = std::min(kBlock, in.size() - off);
    std::uint64_t in_block = 0;
    for (std::size_t i = 0; i < n; ++i)
      in_block |= static_cast<std::uint64_t>(in[off + i]) << (56 - 8 * i);
    const std::uint64_t out_block = in_block ^ keystream;
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = static_cast<std::uint8_t>(out_block >> (56 - 8 * i));
    if (mode == CipherMode::kOfb) {
      feedback = keystream;
    } else {  // CFB: feedback is the ciphertext block
      feedback = decrypting ? in_block : out_block;
    }
  }
}

}  // namespace

template <class Cipher>
void encrypt_into(const Cipher& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView plaintext, util::Bytes& out) {
  switch (mode) {
    case CipherMode::kEcb: {
      detail::pkcs7_pad_into(plaintext, out);
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        // Confounder-XOR ECB per Section 5.2.
        const std::uint64_t pt = Des::load_be64(&out[off]) ^ iv;
        Des::store_be64(cipher.encrypt_block(pt), &out[off]);
      }
      return;
    }
    case CipherMode::kCbc: {
      detail::pkcs7_pad_into(plaintext, out);
      std::uint64_t chain = iv;
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        chain = cipher.encrypt_block(Des::load_be64(&out[off]) ^ chain);
        Des::store_be64(chain, &out[off]);
      }
      return;
    }
    case CipherMode::kCfb:
    case CipherMode::kOfb:
      stream_crypt_into(cipher, mode, iv, plaintext, /*decrypting=*/false,
                        out);
      return;
  }
  out.clear();
}

template <class Cipher>
bool decrypt_into(const Cipher& cipher, CipherMode mode, std::uint64_t iv,
                  util::BytesView ciphertext, util::Bytes& out) {
  switch (mode) {
    case CipherMode::kEcb: {
      if (ciphertext.empty() || ciphertext.size() % kBlock != 0) return false;
      out.resize(ciphertext.size());
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        const std::uint64_t pt =
            cipher.decrypt_block(Des::load_be64(&ciphertext[off])) ^ iv;
        Des::store_be64(pt, &out[off]);
      }
      return detail::pkcs7_unpad_in_place(out);
    }
    case CipherMode::kCbc: {
      if (ciphertext.empty() || ciphertext.size() % kBlock != 0) return false;
      out.resize(ciphertext.size());
      std::uint64_t chain = iv;
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        const std::uint64_t ct = Des::load_be64(&ciphertext[off]);
        Des::store_be64(cipher.decrypt_block(ct) ^ chain, &out[off]);
        chain = ct;
      }
      return detail::pkcs7_unpad_in_place(out);
    }
    case CipherMode::kCfb:
    case CipherMode::kOfb:
      stream_crypt_into(cipher, mode, iv, ciphertext, /*decrypting=*/true,
                        out);
      return true;
  }
  return false;
}

template void encrypt_into<Des>(const Des&, CipherMode, std::uint64_t,
                                util::BytesView, util::Bytes&);
template bool decrypt_into<Des>(const Des&, CipherMode, std::uint64_t,
                                util::BytesView, util::Bytes&);
template void encrypt_into<Des3>(const Des3&, CipherMode, std::uint64_t,
                                 util::BytesView, util::Bytes&);
template bool decrypt_into<Des3>(const Des3&, CipherMode, std::uint64_t,
                                 util::BytesView, util::Bytes&);

}  // namespace fbs::crypto
