#include "crypto/block_modes.hpp"

namespace fbs::crypto {

namespace {

constexpr std::size_t kBlock = Des::kBlockSize;

util::Bytes pkcs7_pad(util::BytesView data) {
  const std::size_t pad = kBlock - data.size() % kBlock;  // 1..8
  util::Bytes out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

std::optional<util::Bytes> pkcs7_unpad(util::Bytes data) {
  if (data.empty() || data.size() % kBlock != 0) return std::nullopt;
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > kBlock || pad > data.size()) return std::nullopt;
  for (std::size_t i = data.size() - pad; i < data.size(); ++i)
    if (data[i] != pad) return std::nullopt;
  data.resize(data.size() - pad);
  return data;
}

/// Shared keystream generator for the two stream modes. CFB feeds the
/// previous ciphertext block back through the cipher; OFB feeds the cipher
/// output back, independent of the data.
util::Bytes stream_crypt(const Des& cipher, CipherMode mode, std::uint64_t iv,
                         util::BytesView in, bool decrypting) {
  util::Bytes out(in.size());
  std::uint64_t feedback = iv;
  for (std::size_t off = 0; off < in.size(); off += kBlock) {
    const std::uint64_t keystream = cipher.encrypt_block(feedback);
    const std::size_t n = std::min(kBlock, in.size() - off);
    std::uint64_t in_block = 0;
    for (std::size_t i = 0; i < n; ++i)
      in_block |= static_cast<std::uint64_t>(in[off + i]) << (56 - 8 * i);
    const std::uint64_t out_block = in_block ^ keystream;
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = static_cast<std::uint8_t>(out_block >> (56 - 8 * i));
    if (mode == CipherMode::kOfb) {
      feedback = keystream;
    } else {  // CFB: feedback is the ciphertext block
      feedback = decrypting ? in_block : out_block;
    }
  }
  return out;
}

}  // namespace

util::Bytes encrypt(const Des& cipher, CipherMode mode, std::uint64_t iv,
                    util::BytesView plaintext) {
  switch (mode) {
    case CipherMode::kEcb: {
      util::Bytes padded = pkcs7_pad(plaintext);
      for (std::size_t off = 0; off < padded.size(); off += kBlock) {
        // Confounder-XOR ECB per Section 5.2.
        const std::uint64_t pt = Des::load_be64(&padded[off]) ^ iv;
        Des::store_be64(cipher.encrypt_block(pt), &padded[off]);
      }
      return padded;
    }
    case CipherMode::kCbc: {
      util::Bytes padded = pkcs7_pad(plaintext);
      std::uint64_t chain = iv;
      for (std::size_t off = 0; off < padded.size(); off += kBlock) {
        chain = cipher.encrypt_block(Des::load_be64(&padded[off]) ^ chain);
        Des::store_be64(chain, &padded[off]);
      }
      return padded;
    }
    case CipherMode::kCfb:
    case CipherMode::kOfb:
      return stream_crypt(cipher, mode, iv, plaintext, /*decrypting=*/false);
  }
  return {};
}

std::optional<util::Bytes> decrypt(const Des& cipher, CipherMode mode,
                                   std::uint64_t iv,
                                   util::BytesView ciphertext) {
  switch (mode) {
    case CipherMode::kEcb: {
      if (ciphertext.size() % kBlock != 0) return std::nullopt;
      util::Bytes out(ciphertext.begin(), ciphertext.end());
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        const std::uint64_t pt =
            cipher.decrypt_block(Des::load_be64(&out[off])) ^ iv;
        Des::store_be64(pt, &out[off]);
      }
      return pkcs7_unpad(std::move(out));
    }
    case CipherMode::kCbc: {
      if (ciphertext.size() % kBlock != 0) return std::nullopt;
      util::Bytes out(ciphertext.begin(), ciphertext.end());
      std::uint64_t chain = iv;
      for (std::size_t off = 0; off < out.size(); off += kBlock) {
        const std::uint64_t ct = Des::load_be64(&out[off]);
        Des::store_be64(cipher.decrypt_block(ct) ^ chain, &out[off]);
        chain = ct;
      }
      return pkcs7_unpad(std::move(out));
    }
    case CipherMode::kCfb:
    case CipherMode::kOfb:
      return stream_crypt(cipher, mode, iv, ciphertext, /*decrypting=*/true);
  }
  return std::nullopt;
}

}  // namespace fbs::crypto
