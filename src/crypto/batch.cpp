#include "crypto/batch.hpp"

#include <algorithm>
#include <array>

namespace fbs::crypto {
namespace {

std::size_t open_blocks(const CbcOpenJob& job) {
  return job.ciphertext.size() / Des::kBlockSize;
}

std::size_t seal_blocks(const CbcSealJob& job) {
  return CryptoBatch::padded_size(job.plaintext.size()) / Des::kBlockSize;
}

/// The PKCS#7 tail block: whatever plaintext remains past `off`, padded.
std::uint64_t tail_block(util::BytesView plaintext, std::size_t off) {
  std::uint8_t last[Des::kBlockSize];
  const std::size_t tail = plaintext.size() - off;
  const std::uint8_t pad = static_cast<std::uint8_t>(Des::kBlockSize - tail);
  for (std::size_t k = 0; k < tail; ++k) last[k] = plaintext[off + k];
  for (std::size_t k = tail; k < Des::kBlockSize; ++k) last[k] = pad;
  return Des::load_be64(last);
}

}  // namespace

void CryptoBatch::open_cbc(std::span<const CbcOpenJob> jobs) {
  std::size_t total = 0;
  for (const CbcOpenJob& job : jobs) total += open_blocks(job);
  if (total == 0) return;
  if (total < kScalarThresholdBlocks) {
    for (const CbcOpenJob& job : jobs) open_scalar(job);
    return;
  }

  // A non-multiple-of-kLanes total would spend a whole extra gate-network
  // pass on a mostly-empty lane set (worst case: kLanes+1 blocks = one full
  // pass plus a 1/kLanes-filled one). When the leftover is small enough
  // that the scalar core finishes it faster than one wide pass would --
  // the wide engine runs ~4x the scalar per-byte throughput (DESIGN.md 5h),
  // so below kLanes/4 blocks -- peel it off the end of the global sequence
  // and run it scalar instead, keeping every wide pass full.
  constexpr std::size_t kWideOverScalar = 4;
  std::size_t spill = total % kLanes;
  if (spill * kWideOverScalar >= kLanes) spill = 0;
  const std::size_t wide_total = total - spill;

  // CBC decrypt is block-parallel across (and within) datagrams: treat the
  // burst as one job-major global block sequence and give each lane a
  // contiguous run, so a lane's key only changes when its cursor crosses a
  // job boundary. Lane state is raw pointers plus the running chain word,
  // so the steady-state pass touches no job metadata at all.
  struct Cursor {
    const std::uint8_t* ct = nullptr;  // next ciphertext block
    std::uint8_t* pt = nullptr;        // next plaintext slot
    std::uint64_t chain = 0;           // CBC chain into the next block
    std::size_t remaining = 0;         // blocks left in this lane's run
    std::size_t left_in_job = 0;       // blocks left in the current job
    std::size_t job = 0;               // index into jobs
  };
  Cursor cur[kLanes];
  const std::size_t q = wide_total / kLanes;
  const std::size_t rem = wide_total % kLanes;
  {
    // Invariant between lanes: (j, b) points at an unconsumed block.
    std::size_t j = 0;
    std::size_t b = 0;
    const auto normalize = [&] {
      while (j < jobs.size() && b >= open_blocks(jobs[j])) {
        ++j;
        b = 0;
      }
    };
    normalize();
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      std::size_t len = q + (lane < rem ? 1 : 0);
      Cursor& c = cur[lane];
      c.remaining = len;
      if (len > 0) {
        const CbcOpenJob& job = jobs[j];
        c.job = j;
        c.ct = job.ciphertext.data() + Des::kBlockSize * b;
        c.pt = job.plaintext + Des::kBlockSize * b;
        c.left_in_job = open_blocks(job) - b;
        c.chain = b == 0 ? job.iv : Des::load_be64(c.ct - Des::kBlockSize);
      }
      while (len > 0) {
        const std::size_t step = std::min(len, open_blocks(jobs[j]) - b);
        b += step;
        len -= step;
        normalize();
      }
    }
  }

  const DesBitsliceKeySchedule* lane_sched[kLanes];
  bool single_key = true;
  for (const CbcOpenJob& job : jobs) {
    if (job.schedule != jobs.front().schedule) {
      single_key = false;
      break;
    }
  }
  if (single_key) {
    engine_.set_all_lanes(*jobs.front().schedule);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      lane_sched[lane] = jobs.front().schedule;
    }
  } else {
    std::array<const DesBitsliceKeySchedule*, kLanes> ptrs;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      ptrs[lane] = cur[lane].remaining != 0 ? jobs[cur[lane].job].schedule
                                            : jobs.front().schedule;
      lane_sched[lane] = ptrs[lane];
    }
    engine_.set_lanes(ptrs);
  }

  const std::size_t passes = q + (rem != 0 ? 1 : 0);
  for (std::size_t pass = 0; pass < passes; ++pass) {
    std::uint64_t blocks[kLanes];
    std::uint64_t cin[kLanes];
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      blocks[lane] = cin[lane] =
          cur[lane].remaining != 0 ? Des::load_be64(cur[lane].ct) : 0;
    }
    engine_.decrypt(blocks);
    ++stats_.passes;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      Cursor& c = cur[lane];
      if (c.remaining == 0) continue;
      Des::store_be64(blocks[lane] ^ c.chain, c.pt);
      c.chain = cin[lane];
      c.ct += Des::kBlockSize;
      c.pt += Des::kBlockSize;
      --c.remaining;
      if (--c.left_in_job == 0 && c.remaining != 0) {
        std::size_t j = c.job + 1;
        while (open_blocks(jobs[j]) == 0) ++j;
        const CbcOpenJob& job = jobs[j];
        c.job = j;
        c.ct = job.ciphertext.data();
        c.pt = job.plaintext;
        c.chain = job.iv;
        c.left_in_job = open_blocks(job);
        const DesBitsliceKeySchedule* next = job.schedule;
        if (next != lane_sched[lane]) {
          engine_.set_lane(lane, *next);
          lane_sched[lane] = next;
          ++stats_.lane_rekeys;
        }
      }
    }
  }
  stats_.bitsliced_blocks += wide_total;

  if (spill != 0) {
    // Finish the last `spill` blocks of the global sequence on the scalar
    // core. A mid-job start chains from the preceding ciphertext block,
    // exactly like a mid-job lane run above.
    std::size_t j = 0;
    std::size_t acc = 0;
    while (acc + open_blocks(jobs[j]) <= wide_total)
      acc += open_blocks(jobs[j++]);
    for (std::size_t b = wide_total - acc; j < jobs.size(); ++j, b = 0) {
      const CbcOpenJob& job = jobs[j];
      const std::size_t n = open_blocks(job);
      if (b >= n) continue;
      const std::uint8_t* ct = job.ciphertext.data() + Des::kBlockSize * b;
      std::uint8_t* pt = job.plaintext + Des::kBlockSize * b;
      std::uint64_t chain =
          b == 0 ? job.iv : Des::load_be64(ct - Des::kBlockSize);
      for (std::size_t k = b; k < n; ++k) {
        const std::uint64_t c = Des::load_be64(ct);
        Des::store_be64(job.des->decrypt_block(c) ^ chain, pt);
        chain = c;
        ct += Des::kBlockSize;
        pt += Des::kBlockSize;
      }
    }
    stats_.scalar_blocks += spill;
  }
}

void CryptoBatch::seal_cbc(std::span<const CbcSealJob> jobs) {
  for (std::size_t off = 0; off < jobs.size(); off += kLanes) {
    seal_group(jobs.subspan(off, std::min(kLanes, jobs.size() - off)));
  }
}

void CryptoBatch::seal_group(std::span<const CbcSealJob> jobs) {
  // CBC encrypt chains serially per datagram: one job per lane, peel one
  // block per pass. `jobs` has at most kLanes entries here.
  std::size_t total = 0;
  std::size_t passes = 0;
  for (const CbcSealJob& job : jobs) {
    const std::size_t n = seal_blocks(job);
    total += n;
    passes = std::max(passes, n);
  }
  if (total < kScalarThresholdBlocks) {
    for (const CbcSealJob& job : jobs) seal_scalar(job);
    return;
  }

  bool single_key = true;
  for (const CbcSealJob& job : jobs) {
    if (job.schedule != jobs.front().schedule) {
      single_key = false;
      break;
    }
  }
  if (single_key) {
    engine_.set_all_lanes(*jobs.front().schedule);
  } else {
    std::array<const DesBitsliceKeySchedule*, kLanes> ptrs;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      ptrs[lane] = jobs[std::min(lane, jobs.size() - 1)].schedule;
    }
    engine_.set_lanes(ptrs);
  }

  std::uint64_t chain[kLanes];
  for (std::size_t i = 0; i < jobs.size(); ++i) chain[i] = jobs[i].iv;

  for (std::size_t pass = 0; pass < passes; ++pass) {
    std::uint64_t blocks[kLanes] = {};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const CbcSealJob& job = jobs[i];
      if (pass >= seal_blocks(job)) continue;
      const std::size_t off = pass * Des::kBlockSize;
      const std::uint64_t p = off + Des::kBlockSize <= job.plaintext.size()
                                  ? Des::load_be64(job.plaintext.data() + off)
                                  : tail_block(job.plaintext, off);
      blocks[i] = p ^ chain[i];
    }
    engine_.encrypt(blocks);
    ++stats_.passes;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const CbcSealJob& job = jobs[i];
      if (pass >= seal_blocks(job)) continue;
      chain[i] = blocks[i];
      Des::store_be64(blocks[i], job.ciphertext + pass * Des::kBlockSize);
    }
  }
  stats_.bitsliced_blocks += total;
}

void CryptoBatch::open_scalar(const CbcOpenJob& job) {
  const std::size_t n = open_blocks(job);
  std::uint64_t chain = job.iv;
  const std::uint8_t* ct = job.ciphertext.data();
  std::uint8_t* pt = job.plaintext;
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint64_t c = Des::load_be64(ct);
    Des::store_be64(job.des->decrypt_block(c) ^ chain, pt);
    chain = c;
    ct += Des::kBlockSize;
    pt += Des::kBlockSize;
  }
  stats_.scalar_blocks += n;
}

void CryptoBatch::seal_scalar(const CbcSealJob& job) {
  const std::size_t whole = job.plaintext.size() / Des::kBlockSize;
  std::uint64_t chain = job.iv;
  const std::uint8_t* in = job.plaintext.data();
  std::uint8_t* out = job.ciphertext;
  for (std::size_t b = 0; b < whole; ++b) {
    chain = job.des->encrypt_block(Des::load_be64(in) ^ chain);
    Des::store_be64(chain, out);
    in += Des::kBlockSize;
    out += Des::kBlockSize;
  }
  chain = job.des->encrypt_block(
      tail_block(job.plaintext, whole * Des::kBlockSize) ^ chain);
  Des::store_be64(chain, out);
  stats_.scalar_blocks += whole + 1;
}

}  // namespace fbs::crypto
