// Common interface for the one-way hash functions the paper names as
// candidates for H (flow-key derivation) and HMAC (the header MAC):
// MD5 (RFC 1321) and SHS/SHA-1 (FIPS 180). See Section 5.2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace fbs::crypto {

/// Streaming hash context. Implementations are value-semantic enough to be
/// reset and reused; clone() supports HMAC's precomputed pads.
class Hash {
 public:
  virtual ~Hash() = default;

  virtual std::size_t digest_size() const = 0;
  virtual std::size_t block_size() const = 0;
  virtual void reset() = 0;
  virtual void update(util::BytesView data) = 0;
  /// Finish into a caller-provided buffer of digest_size() bytes without
  /// allocating; the context must be reset() before reuse.
  virtual void finish_into(std::uint8_t* out) = 0;
  /// Become a copy of `other`, which must be the same concrete type. The
  /// allocation-free counterpart of clone(): MAC contexts restore their
  /// precomputed key states with this per message.
  virtual void copy_from(const Hash& other) = 0;
  virtual std::unique_ptr<Hash> clone() const = 0;

  /// Finish and return the digest (allocating convenience wrapper).
  util::Bytes finish() {
    util::Bytes digest(digest_size());
    finish_into(digest.data());
    return digest;
  }
};

}  // namespace fbs::crypto
