#include "crypto/sha1.hpp"

#include <bit>
#include <cstring>

namespace fbs::crypto {

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i)
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(util::BytesView data) {
  std::size_t fill = total_len_ % kBlockSize;
  total_len_ += data.size();
  std::size_t off = 0;
  if (fill) {
    const std::size_t take = std::min(kBlockSize - fill, data.size());
    std::memcpy(buffer_.data() + fill, data.data(), take);
    off = take;
    fill += take;
    if (fill < kBlockSize) return;
    process_block(buffer_.data());
  }
  while (off + kBlockSize <= data.size()) {
    process_block(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size())
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
}

void Sha1::finish_into(std::uint8_t* out) {
  const std::uint64_t bit_len = total_len_ * 8;
  static constexpr std::uint8_t kPad[kBlockSize] = {0x80};
  const std::size_t fill = total_len_ % kBlockSize;
  const std::size_t pad_len = (fill < 56) ? 56 - fill : 120 - fill;
  update({kPad, pad_len});
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  update({len_bytes, 8});

  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

util::Bytes sha1(util::BytesView data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

}  // namespace fbs::crypto
