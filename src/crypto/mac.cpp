#include "crypto/mac.hpp"

#include <cstring>

#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"

namespace fbs::crypto {

namespace {

/// Large enough for any digest we produce (MD5 = 16, SHA-1 = 20).
constexpr std::size_t kMaxDigestSize = 64;

/// Keyed-prefix context: the key is absorbed into `key_state_` once; each
/// message restores that state into the working hash and streams from there.
class KeyedPrefixContext final : public MacContext {
 public:
  KeyedPrefixContext(const Hash& hash, util::BytesView key)
      : key_state_(hash.clone()), work_(hash.clone()) {
    key_state_->reset();
    key_state_->update(key);
  }

  std::size_t mac_size() const override { return work_->digest_size(); }
  void begin() override { work_->copy_from(*key_state_); }
  void update(util::BytesView chunk) override { work_->update(chunk); }
  void finish_into(std::uint8_t* out) override { work_->finish_into(out); }

 private:
  std::unique_ptr<Hash> key_state_;  // hash state with the key absorbed
  std::unique_ptr<Hash> work_;
};

/// RFC 2104 HMAC context: the construction hashes overlong keys and absorbs
/// the ipad/opad blocks exactly once, here; per message only the two
/// precomputed states are restored.
class HmacContext final : public MacContext {
 public:
  HmacContext(const Hash& hash, util::BytesView key)
      : inner_state_(hash.clone()),
        outer_state_(hash.clone()),
        work_(hash.clone()) {
    const std::size_t block = hash.block_size();
    util::Bytes k(key.begin(), key.end());
    if (k.size() > block) {
      work_->reset();
      work_->update(k);
      k = work_->finish();
    }
    k.resize(block, 0);

    util::Bytes pad(block);
    for (std::size_t i = 0; i < block; ++i) pad[i] = k[i] ^ 0x36;
    inner_state_->reset();
    inner_state_->update(pad);
    for (std::size_t i = 0; i < block; ++i) pad[i] = k[i] ^ 0x5c;
    outer_state_->reset();
    outer_state_->update(pad);
  }

  std::size_t mac_size() const override { return work_->digest_size(); }
  void begin() override { work_->copy_from(*inner_state_); }
  void update(util::BytesView chunk) override { work_->update(chunk); }
  void finish_into(std::uint8_t* out) override {
    std::uint8_t inner_digest[kMaxDigestSize];
    const std::size_t n = work_->digest_size();
    work_->finish_into(inner_digest);
    work_->copy_from(*outer_state_);
    work_->update({inner_digest, n});
    work_->finish_into(out);
  }

 private:
  std::unique_ptr<Hash> inner_state_;  // H after absorbing K ^ ipad
  std::unique_ptr<Hash> outer_state_;  // H after absorbing K ^ opad
  std::unique_ptr<Hash> work_;
};

class NullContext final : public MacContext {
 public:
  explicit NullContext(std::size_t size) : size_(size) {}
  std::size_t mac_size() const override { return size_; }
  void begin() override {}
  void update(util::BytesView) override {}
  void finish_into(std::uint8_t* out) override { std::memset(out, 0, size_); }

 private:
  std::size_t size_;
};

}  // namespace

std::unique_ptr<MacContext> KeyedPrefixMac::make_context(
    util::BytesView key) const {
  return std::make_unique<KeyedPrefixContext>(*hash_, key);
}

std::unique_ptr<MacContext> HmacMac::make_context(util::BytesView key) const {
  return std::make_unique<HmacContext>(*hash_, key);
}

std::unique_ptr<MacContext> NullMac::make_context(util::BytesView) const {
  return std::make_unique<NullContext>(size_);
}

util::Bytes KeyedPrefixMac::compute(
    util::BytesView key,
    std::initializer_list<util::BytesView> chunks) const {
  auto ctx = hash_->clone();
  ctx->reset();
  ctx->update(key);
  for (auto c : chunks) ctx->update(c);
  return ctx->finish();
}

util::Bytes HmacMac::compute(
    util::BytesView key,
    std::initializer_list<util::BytesView> chunks) const {
  const std::size_t block = hash_->block_size();

  // Keys longer than a block are hashed first (RFC 2104).
  util::Bytes k(key.begin(), key.end());
  if (k.size() > block) {
    auto ctx = hash_->clone();
    ctx->reset();
    ctx->update(k);
    k = ctx->finish();
  }
  k.resize(block, 0);

  util::Bytes ipad(block), opad(block);
  for (std::size_t i = 0; i < block; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  auto inner = hash_->clone();
  inner->reset();
  inner->update(ipad);
  for (auto c : chunks) inner->update(c);
  const util::Bytes inner_digest = inner->finish();

  auto outer = hash_->clone();
  outer->reset();
  outer->update(opad);
  outer->update(inner_digest);
  return outer->finish();
}

util::Bytes hmac(Hash& hash, util::BytesView key, util::BytesView message) {
  HmacMac mac(hash.clone());
  return mac.compute(key, {message});
}

util::Bytes hmac_md5(util::BytesView key, util::BytesView message) {
  Md5 h;
  return hmac(h, key, message);
}

util::Bytes hmac_sha1(util::BytesView key, util::BytesView message) {
  Sha1 h;
  return hmac(h, key, message);
}

}  // namespace fbs::crypto
