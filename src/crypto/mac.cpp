#include "crypto/mac.hpp"

#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"

namespace fbs::crypto {

util::Bytes KeyedPrefixMac::compute(
    util::BytesView key,
    std::initializer_list<util::BytesView> chunks) const {
  auto ctx = hash_->clone();
  ctx->reset();
  ctx->update(key);
  for (auto c : chunks) ctx->update(c);
  return ctx->finish();
}

util::Bytes HmacMac::compute(
    util::BytesView key,
    std::initializer_list<util::BytesView> chunks) const {
  const std::size_t block = hash_->block_size();

  // Keys longer than a block are hashed first (RFC 2104).
  util::Bytes k(key.begin(), key.end());
  if (k.size() > block) {
    auto ctx = hash_->clone();
    ctx->reset();
    ctx->update(k);
    k = ctx->finish();
  }
  k.resize(block, 0);

  util::Bytes ipad(block), opad(block);
  for (std::size_t i = 0; i < block; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  auto inner = hash_->clone();
  inner->reset();
  inner->update(ipad);
  for (auto c : chunks) inner->update(c);
  const util::Bytes inner_digest = inner->finish();

  auto outer = hash_->clone();
  outer->reset();
  outer->update(opad);
  outer->update(inner_digest);
  return outer->finish();
}

util::Bytes hmac(Hash& hash, util::BytesView key, util::BytesView message) {
  HmacMac mac(hash.clone());
  return mac.compute(key, {message});
}

util::Bytes hmac_md5(util::BytesView key, util::BytesView message) {
  Md5 h;
  return hmac(h, key, message);
}

util::Bytes hmac_sha1(util::BytesView key, util::BytesView message) {
  Sha1 h;
  return hmac(h, key, message);
}

}  // namespace fbs::crypto
