// SHA-1 (the FIPS 180 "Secure Hash Standard" the paper cites as SHS),
// offered as an alternative H / HMAC hash to MD5.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace fbs::crypto {

class Sha1 final : public Hash {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() { reset(); }

  std::size_t digest_size() const override { return kDigestSize; }
  std::size_t block_size() const override { return kBlockSize; }
  void reset() override;
  void update(util::BytesView data) override;
  void finish_into(std::uint8_t* out) override;
  void copy_from(const Hash& other) override {
    *this = static_cast<const Sha1&>(other);
  }
  std::unique_ptr<Hash> clone() const override {
    return std::make_unique<Sha1>(*this);
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_len_ = 0;
};

/// One-shot SHA-1.
util::Bytes sha1(util::BytesView data);

}  // namespace fbs::crypto
