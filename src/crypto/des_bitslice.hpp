// Bitsliced DES: kLanes independent blocks per pass (Biham's orthogonal
// representation). Each 64-block group's 64x64 bit matrix of
// [lane][block bit] is transposed so that position j holds bit j of all
// lanes; the permutations (IP, FP, E, P, PC-2 wiring) then cost nothing --
// they are index relabelings -- and each S-box evaluates as a boolean gate
// network over six lane-vector inputs, computing all lanes at once. The
// gate network's word is kWords x 64 bits wide (a GCC/Clang vector type in
// the implementation), so one evaluation covers kLanes = kWords * 64
// blocks: the same boolean circuit, issued as SIMD ops where the target
// has them and synthesized from scalar ops where it does not.
//
// The gate networks are NOT hand-copied from the literature: they are
// derived at compile time from the FIPS kSbox tables in des_tables.hpp by
// a template-recursive positive-Davio decomposition (see des_bitslice.cpp),
// so this implementation shares only the standard's constants with the
// scalar cores and is differentially tested against DesReference.
//
// Key handling supports mixed keys across lanes: the compact per-key form
// (DesBitsliceKeySchedule, 16 x 48-bit round keys -- what FlowCryptoContext
// caches per flow) expands into the engine's 16x48 lane-mask vectors either
// all at once (broadcast or per-lane transpose, cheap) or one lane at a
// time (the batch scheduler's job-boundary rekey).
//
// CBC interaction: decryption is block-parallel even within one datagram
// (the chain input is ciphertext, all of it in hand), so a decrypt batch
// can split a single datagram across lanes. Encryption chains serially per
// datagram, so a seal batch assigns one datagram per lane. Both schedules
// live in crypto/batch.hpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::crypto {

/// Compact per-key schedule: the 16 48-bit FIPS round keys, bit 47 = the
/// standard's round-key bit 1. 128 bytes -- cheap enough to cache per flow
/// next to the scalar Des object.
struct DesBitsliceKeySchedule {
  std::array<std::uint64_t, 16> subkeys{};

  /// From an 8-byte DES key (parity bits ignored, as in Des).
  static DesBitsliceKeySchedule from_key(util::BytesView key);
  static DesBitsliceKeySchedule from_key64(std::uint64_t k64);

  bool operator==(const DesBitsliceKeySchedule&) const = default;
};

class DesBitslice {
 public:
  /// Lanes per 64x64 transpose tile (one machine word of one group).
  static constexpr std::size_t kGroupLanes = 64;
  /// 64-lane groups evaluated together per gate-network pass.
  static constexpr std::size_t kWords = 4;
  static constexpr std::size_t kLanes = kWords * kGroupLanes;

  /// All lanes share one key (~16x48 stores; the single-flow fast path).
  void set_all_lanes(const DesBitsliceKeySchedule& ks);

  /// Mixed keys, bulk: lane i takes lanes[i] (must all be non-null). Done
  /// with one 64x64 transpose per round per group -- a fraction of a
  /// cipher pass, so a fresh mixed-key batch amortizes after the first.
  void set_lanes(const std::array<const DesBitsliceKeySchedule*, kLanes>& l);

  /// Rekey a single lane in place (the batch scheduler's incremental
  /// update when a lane's cursor crosses a job boundary).
  void set_lane(std::size_t lane, const DesBitsliceKeySchedule& ks);

  /// Encrypt/decrypt kLanes blocks in place, one per lane; blocks[i] is
  /// lane i's block as loaded by Des::load_be64. Lanes with no real work
  /// may carry anything -- every lane is computed regardless.
  void encrypt(std::uint64_t blocks[kLanes]) const {
    crypt(blocks, /*decrypt=*/false);
  }
  void decrypt(std::uint64_t blocks[kLanes]) const {
    crypt(blocks, /*decrypt=*/true);
  }

  /// In-place 64x64 bit-matrix transpose, bit (63-c) of m[r] <-> bit
  /// (63-r) of m[c]. Exposed for tests and the key-schedule expansion;
  /// crypt applies it per 64-lane group.
  static void transpose64(std::uint64_t m[kGroupLanes]);

 private:
  void crypt(std::uint64_t blocks[kLanes], bool decrypt) const;

  /// ks_[round][t * kWords + w]: lane-mask word for round-key bit t+1
  /// (FIPS numbering), group w -- lane (w * 64 + i)'s key bit lives at
  /// word bit 63-i, matching the transposed data layout. Stored as plain
  /// uint64_t so the header stays free of vector-extension types; the
  /// implementation reads each kWords run as one wide word.
  alignas(64) std::array<std::array<std::uint64_t, 48 * kWords>, 16> ks_{};
};

}  // namespace fbs::crypto
