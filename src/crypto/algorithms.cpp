#include "crypto/algorithms.hpp"

#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"

namespace fbs::crypto {

std::uint8_t encode_suite(AlgorithmSuite suite) {
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(suite.mac) << 4 |
                                   static_cast<std::uint8_t>(suite.cipher));
}

std::optional<AlgorithmSuite> decode_suite(std::uint8_t wire) {
  const auto mac = static_cast<MacAlgorithm>(wire >> 4);
  const auto cipher = static_cast<CipherAlgorithm>(wire & 0xF);
  switch (mac) {
    case MacAlgorithm::kKeyedMd5:
    case MacAlgorithm::kHmacMd5:
    case MacAlgorithm::kKeyedSha1:
    case MacAlgorithm::kHmacSha1:
    case MacAlgorithm::kNull:
      break;
    default:
      return std::nullopt;
  }
  switch (cipher) {
    case CipherAlgorithm::kNone:
    case CipherAlgorithm::kDesCbc:
    case CipherAlgorithm::kDesEcb:
    case CipherAlgorithm::kDesCfb:
    case CipherAlgorithm::kDesOfb:
    case CipherAlgorithm::kDes3Ede:
      break;
    default:
      return std::nullopt;
  }
  return AlgorithmSuite{mac, cipher};
}

std::unique_ptr<Mac> make_mac(MacAlgorithm alg) {
  switch (alg) {
    case MacAlgorithm::kKeyedMd5:
      return std::make_unique<KeyedPrefixMac>(std::make_unique<Md5>());
    case MacAlgorithm::kHmacMd5:
      return std::make_unique<HmacMac>(std::make_unique<Md5>());
    case MacAlgorithm::kKeyedSha1:
      return std::make_unique<KeyedPrefixMac>(std::make_unique<Sha1>());
    case MacAlgorithm::kHmacSha1:
      return std::make_unique<HmacMac>(std::make_unique<Sha1>());
    case MacAlgorithm::kNull:
      return std::make_unique<NullMac>();
  }
  return nullptr;
}

std::size_t mac_size(MacAlgorithm alg) {
  switch (alg) {
    case MacAlgorithm::kKeyedMd5:
    case MacAlgorithm::kHmacMd5:
      return Md5::kDigestSize;
    case MacAlgorithm::kKeyedSha1:
    case MacAlgorithm::kHmacSha1:
      return Sha1::kDigestSize;
    case MacAlgorithm::kNull:
      return 16;  // keeps the header layout identical to the MD5 suites
  }
  return 0;
}

std::optional<CipherMode> cipher_mode(CipherAlgorithm alg) {
  switch (alg) {
    case CipherAlgorithm::kNone:
      return std::nullopt;
    case CipherAlgorithm::kDesCbc:
    case CipherAlgorithm::kDes3Ede:
      return CipherMode::kCbc;
    case CipherAlgorithm::kDesEcb:
      return CipherMode::kEcb;
    case CipherAlgorithm::kDesCfb:
      return CipherMode::kCfb;
    case CipherAlgorithm::kDesOfb:
      return CipherMode::kOfb;
  }
  return std::nullopt;
}

}  // namespace fbs::crypto
