// The original bit-at-a-time DES: a faithful transcription of FIPS PUB 46
// that walks the permutation tables entry by entry. Roughly two orders of
// magnitude slower than the table-driven Des and kept ONLY as the oracle
// for its correctness tests (round-by-round intermediate values, Monte
// Carlo chains): the two implementations share the FIPS constant tables in
// des_tables.hpp but nothing else, so an error in the fused-table
// generation or the IP/FP swap networks cannot hide.
//
// Nothing on the datagram path may use this class.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/des.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

class DesReference {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 8;

  explicit DesReference(util::BytesView key);

  std::uint64_t encrypt_block(std::uint64_t block) const;
  std::uint64_t decrypt_block(std::uint64_t block) const;

  /// Same intermediate-value trace as Des::crypt_trace, computed from the
  /// standard's tables directly.
  std::uint64_t crypt_trace(std::uint64_t block, bool decrypt,
                            Des::RoundTrace& trace) const;

  /// The 48-bit round keys K1..K16 (for FIPS key-schedule vectors).
  const std::array<std::uint64_t, 16>& subkeys() const { return subkeys_; }

 private:
  std::uint64_t crypt(std::uint64_t block, bool decrypt,
                      Des::RoundTrace* trace) const;

  std::array<std::uint64_t, 16> subkeys_{};  // 48-bit round keys
};

}  // namespace fbs::crypto
