// Cross-datagram batch scheduler for the bitsliced DES engine.
//
// The pipeline hands each worker a *burst* of datagrams per ring visit
// (PR 7's batched rings); this planner turns that burst into kLanes-wide
// bitslice passes (DesBitslice::kLanes, currently 256):
//
//   open (CBC decrypt): block-parallel even within one datagram, because
//   every chain input is ciphertext already in hand. The jobs' blocks form
//   one global sequence, split into kLanes contiguous per-lane runs, so
//   each lane's key changes at most when its cursor crosses a job boundary
//   (incremental set_lane) -- for a single-flow burst there are zero mid-
//   batch rekeys, and an N-flow burst costs at most ~N-1 crossings total.
//   A small leftover (< kLanes / kWideOverScalar blocks) that would waste
//   a mostly-empty final pass runs on the scalar core instead.
//
//   seal (CBC encrypt): chains serially within a datagram, so lanes map
//   one job per lane and each pass peels the next block of up to kLanes
//   datagrams (PKCS#7 tail blocks materialized on the fly).
//
// Bursts whose total block count is under kScalarThresholdBlocks run on
// the per-job scalar Des cores instead: the per-group transposes plus key
// loading only amortize with enough lanes lit.
//
// The planner itself never allocates; all cursors live on the stack and
// outputs land in caller-provided buffers (the zero-alloc steady-state
// test covers the full pipeline path through here).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/des.hpp"
#include "crypto/des_bitslice.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

/// One datagram's CBC-decrypt work order. `ciphertext` must be a non-empty
/// multiple of 8 bytes; `plaintext` receives the same length (padding is
/// NOT stripped here -- callers validate PKCS#7 afterwards, exactly as the
/// scalar path does). Both `des` and `schedule` must be non-null and agree
/// on the key.
struct CbcOpenJob {
  const Des* des = nullptr;
  const DesBitsliceKeySchedule* schedule = nullptr;
  std::uint64_t iv = 0;
  util::BytesView ciphertext;
  std::uint8_t* plaintext = nullptr;
};

/// One datagram's CBC-encrypt work order. `plaintext` is the raw body (any
/// length, including 0); `ciphertext` receives padded_size(plaintext.size())
/// bytes of PKCS#7-padded CBC output.
struct CbcSealJob {
  const Des* des = nullptr;
  const DesBitsliceKeySchedule* schedule = nullptr;
  std::uint64_t iv = 0;
  util::BytesView plaintext;
  std::uint8_t* ciphertext = nullptr;
};

class CryptoBatch {
 public:
  static constexpr std::size_t kLanes = DesBitslice::kLanes;

  /// Bursts totalling fewer CBC blocks than this run the scalar cores: a
  /// bitslice pass costs two transposes + key setup regardless of how many
  /// lanes carry real work, and measurement puts break-even near half a
  /// batch of lanes (see DESIGN.md 5h).
  static constexpr std::size_t kScalarThresholdBlocks = 32;

  /// PKCS#7 always pads, so sealed output is the next full block up.
  static constexpr std::size_t padded_size(std::size_t n) {
    return n / Des::kBlockSize * Des::kBlockSize + Des::kBlockSize;
  }

  void open_cbc(std::span<const CbcOpenJob> jobs);
  void seal_cbc(std::span<const CbcSealJob> jobs);

  /// Counters for tests and benches (cumulative; reset_stats to zero).
  struct Stats {
    std::uint64_t bitsliced_blocks = 0;  // blocks through the wide engine
    std::uint64_t scalar_blocks = 0;     // blocks on the scalar fallback
    std::uint64_t passes = 0;            // kLanes-wide engine invocations
    std::uint64_t lane_rekeys = 0;       // incremental mid-batch set_lane
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  void open_scalar(const CbcOpenJob& job);
  void seal_scalar(const CbcSealJob& job);
  void seal_group(std::span<const CbcSealJob> jobs);

  DesBitslice engine_;
  Stats stats_;
};

}  // namespace fbs::crypto
