// Message authentication codes.
//
// The paper's header MAC (Section 5.2) is the keyed-prefix construction
//     HMAC(Kf | confounder | timestamp | payload)
// with "HMAC" meaning "some one-way cryptographic hash function" -- i.e.
// keyed MD5 in the 1997 implementation (Section 7.2). We provide that
// construction (KeyedPrefixMac) plus the modern RFC 2104 HMAC as an
// alternative algorithm selectable through the header's algorithm field.
#pragma once

#include <memory>

#include "crypto/hash.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

/// A MAC bound to one key: the streaming interface the datagram fast path
/// uses. Construction does the per-key work once (hashing overlong keys,
/// absorbing the HMAC pads); after that, each message costs one
/// begin()/update().../finish_into() cycle with zero heap allocations.
/// Cached per flow alongside the Des key schedule.
class MacContext {
 public:
  virtual ~MacContext() = default;
  virtual std::size_t mac_size() const = 0;
  /// Start a new message; discards any partial state.
  virtual void begin() = 0;
  virtual void update(util::BytesView chunk) = 0;
  /// Finish into a caller-provided buffer of mac_size() bytes.
  virtual void finish_into(std::uint8_t* out) = 0;

  /// Allocating convenience wrapper.
  util::Bytes finish() {
    util::Bytes tag(mac_size());
    finish_into(tag.data());
    return tag;
  }
};

/// Common interface: a MAC over (key, message chunks).
class Mac {
 public:
  virtual ~Mac() = default;
  virtual std::size_t mac_size() const = 0;
  /// Compute the tag over the concatenation of `chunks`.
  virtual util::Bytes compute(
      util::BytesView key,
      std::initializer_list<util::BytesView> chunks) const = 0;
  /// Bind this MAC to `key`, doing all per-key precomputation up front.
  virtual std::unique_ptr<MacContext> make_context(
      util::BytesView key) const = 0;
};

/// The paper's construction: tag = H(key | chunk_0 | chunk_1 | ...).
/// Vulnerable to length extension in general; acceptable here because the
/// protocol never exposes intermediate hashes and the message layout is
/// fixed -- but see HmacMac for the robust choice.
class KeyedPrefixMac final : public Mac {
 public:
  explicit KeyedPrefixMac(std::unique_ptr<Hash> hash)
      : hash_(std::move(hash)) {}

  std::size_t mac_size() const override { return hash_->digest_size(); }
  util::Bytes compute(
      util::BytesView key,
      std::initializer_list<util::BytesView> chunks) const override;
  std::unique_ptr<MacContext> make_context(
      util::BytesView key) const override;

 private:
  std::unique_ptr<Hash> hash_;
};

/// RFC 2104 HMAC over any Hash.
class HmacMac final : public Mac {
 public:
  explicit HmacMac(std::unique_ptr<Hash> hash) : hash_(std::move(hash)) {}

  std::size_t mac_size() const override { return hash_->digest_size(); }
  util::Bytes compute(
      util::BytesView key,
      std::initializer_list<util::BytesView> chunks) const override;
  std::unique_ptr<MacContext> make_context(
      util::BytesView key) const override;

 private:
  std::unique_ptr<Hash> hash_;
};

/// The "nullified" MAC of the paper's FBS NOP measurement configuration
/// (Section 7.3): returns immediately with a constant tag. Exists so the
/// Figure 8 bench can separate protocol overhead from cryptography cost.
class NullMac final : public Mac {
 public:
  explicit NullMac(std::size_t size = 16) : size_(size) {}
  std::size_t mac_size() const override { return size_; }
  util::Bytes compute(util::BytesView,
                      std::initializer_list<util::BytesView>) const override {
    return util::Bytes(size_, 0);
  }
  std::unique_ptr<MacContext> make_context(
      util::BytesView key) const override;

 private:
  std::size_t size_;
};

/// Convenience one-shots.
util::Bytes hmac(Hash& hash, util::BytesView key, util::BytesView message);
util::Bytes hmac_md5(util::BytesView key, util::BytesView message);
util::Bytes hmac_sha1(util::BytesView key, util::BytesView message);

}  // namespace fbs::crypto
