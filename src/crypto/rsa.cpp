#include "crypto/rsa.hpp"

#include "bignum/prime.hpp"
#include "crypto/md5.hpp"

namespace fbs::crypto {

namespace {

/// PKCS#1 v1.5-style deterministic encoding of an MD5 digest into a
/// modulus-sized integer: 00 01 FF..FF 00 <digest>.
bignum::Uint encode_digest(util::BytesView digest, std::size_t mod_size) {
  util::Bytes em(mod_size, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[mod_size - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return bignum::Uint::from_bytes_be(em);
}

}  // namespace

RsaPrivateKey rsa_generate(std::size_t bits, util::RandomSource& rng) {
  const bignum::Uint e(65537);
  for (;;) {
    const bignum::Uint p = bignum::generate_prime(bits / 2, rng);
    const bignum::Uint q = bignum::generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    const bignum::Uint n = p * q;
    const bignum::Uint phi = (p - bignum::Uint(1)) * (q - bignum::Uint(1));
    const auto d = bignum::Uint::modinv(e, phi);
    if (!d) continue;  // e not coprime to phi; redraw primes
    return RsaPrivateKey{RsaPublicKey{n, e}, *d};
  }
}

util::Bytes rsa_sign_md5(const RsaPrivateKey& key, util::BytesView message) {
  const auto digest = md5(message);
  const bignum::Uint m = encode_digest(digest, key.pub.modulus_size());
  return bignum::Uint::powmod(m, key.d, key.pub.n)
      .to_bytes_be(key.pub.modulus_size());
}

bool rsa_verify_md5(const RsaPublicKey& key, util::BytesView message,
                    util::BytesView signature) {
  if (signature.size() != key.modulus_size()) return false;
  const bignum::Uint s = bignum::Uint::from_bytes_be(signature);
  if (s >= key.n) return false;
  const bignum::Uint m = bignum::Uint::powmod(s, key.e, key.n);
  const auto digest = md5(message);
  return m == encode_digest(digest, key.modulus_size());
}

}  // namespace fbs::crypto
