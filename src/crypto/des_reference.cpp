#include "crypto/des_reference.hpp"

#include <cassert>

#include "crypto/des_tables.hpp"

namespace fbs::crypto {

namespace {

using namespace des_tables;

std::uint32_t feistel(std::uint32_t half, std::uint64_t subkey) {
  const std::uint64_t expanded =
      permute(half, kExpansion, 32) ^ subkey;  // 48 bits
  std::uint32_t sboxed = 0;
  for (int i = 0; i < 8; ++i) {
    const auto six =
        static_cast<std::uint8_t>((expanded >> (42 - 6 * i)) & 0x3F);
    // Row = outer two bits, column = inner four.
    const int row = ((six & 0x20) >> 4) | (six & 1);
    const int col = (six >> 1) & 0xF;
    sboxed = sboxed << 4 | kSbox[i][row * 16 + col];
  }
  return static_cast<std::uint32_t>(permute(sboxed, kPbox, 32));
}

}  // namespace

DesReference::DesReference(util::BytesView key) {
  assert(key.size() == kKeySize);
  const KeySchedule ks = key_schedule(Des::load_be64(key.data()));
  for (int round = 0; round < 16; ++round) subkeys_[round] = ks.subkeys[round];
}

std::uint64_t DesReference::crypt(std::uint64_t block, bool decrypt,
                                  Des::RoundTrace* trace) const {
  const std::uint64_t ip = permute(block, kIp, 64);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip);
  if (trace) {
    trace->l[0] = l;
    trace->r[0] = r;
  }
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t k = subkeys_[decrypt ? 15 - round : round];
    const std::uint32_t next = l ^ feistel(r, k);
    l = r;
    r = next;
    if (trace) {
      trace->l[round + 1] = l;
      trace->r[round + 1] = r;
    }
  }
  // Note the swap: preoutput is R16 L16.
  const std::uint64_t preoutput = static_cast<std::uint64_t>(r) << 32 | l;
  return permute(preoutput, kFp, 64);
}

std::uint64_t DesReference::encrypt_block(std::uint64_t block) const {
  return crypt(block, false, nullptr);
}

std::uint64_t DesReference::decrypt_block(std::uint64_t block) const {
  return crypt(block, true, nullptr);
}

std::uint64_t DesReference::crypt_trace(std::uint64_t block, bool decrypt,
                                        Des::RoundTrace& trace) const {
  return crypt(block, decrypt, &trace);
}

}  // namespace fbs::crypto
