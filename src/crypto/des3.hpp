// Triple DES, EDE with three independent keys (keying option 1):
//   C = E_K3(D_K2(E_K1(P)))    D = D_K1(E_K2(D_K3(C)))
// Built on three table-driven Des instances, so one Des3 object costs three
// key schedules at construction and three block passes per block -- the
// expected ~3x of single DES, which is exactly what the fig8 per-suite
// curves are meant to show. With K1 == K2 == K3 it degenerates to single
// DES (EDE's backward-compatibility property; tested).
//
// There is deliberately no bitsliced 3DES: the batch scheduler routes
// kDes3Ede flows to this scalar core, keeping the bitslice engine single
// -algorithm (see crypto/batch.hpp).
#pragma once

#include <cstdint>

#include "crypto/des.hpp"
#include "util/bytes.hpp"

namespace fbs::crypto {

class Des3 {
 public:
  static constexpr std::size_t kBlockSize = 8;
  static constexpr std::size_t kKeySize = 24;  // K1 | K2 | K3

  /// Key is 24 bytes; each 8-byte third has its parity bits ignored.
  explicit Des3(util::BytesView key);

  std::uint64_t encrypt_block(std::uint64_t block) const;
  std::uint64_t decrypt_block(std::uint64_t block) const;
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

 private:
  Des k1_;
  Des k2_;
  Des k3_;
};

}  // namespace fbs::crypto
