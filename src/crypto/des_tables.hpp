// The FIPS PUB 46 constant tables, shared by the table-driven Des fast path
// (which derives its fused SP tables from them at compile time) and the
// bit-at-a-time DesReference implementation (which walks them directly).
// All tables use the standard's 1-based, MSB-first bit numbering.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fbs::crypto::des_tables {

inline constexpr std::uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

inline constexpr std::uint8_t kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

inline constexpr std::uint8_t kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

inline constexpr std::uint8_t kPbox[32] = {16, 7,  20, 21, 29, 12, 28, 17,
                                           1,  15, 23, 26, 5,  18, 31, 10,
                                           2,  8,  24, 14, 32, 27, 3,  9,
                                           19, 13, 30, 6,  22, 11, 4,  25};

inline constexpr std::uint8_t kPc1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

inline constexpr std::uint8_t kPc2[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

inline constexpr std::uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                                             1, 2, 2, 2, 2, 2, 2, 1};

inline constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Apply a FIPS permutation table: `in_width` is the bit width of `value`,
/// the output has N bits, bit 1 = MSB.
template <std::size_t N>
constexpr std::uint64_t permute(std::uint64_t value,
                                const std::uint8_t (&table)[N],
                                unsigned in_width) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < N; ++i) {
    out <<= 1;
    out |= (value >> (in_width - table[i])) & 1;
  }
  return out;
}

constexpr std::uint32_t rotl28(std::uint32_t v, unsigned n) {
  return ((v << n) | (v >> (28 - n))) & 0x0FFFFFFFu;
}

/// PC1/PC2 key schedule: the 16 48-bit round keys for an 8-byte key loaded
/// big-endian. Shared by both implementations so they agree bit-for-bit.
struct KeySchedule {
  std::uint64_t subkeys[16];
};

constexpr KeySchedule key_schedule(std::uint64_t k64) {
  KeySchedule ks{};
  const std::uint64_t pc1 = permute(k64, kPc1, 64);  // 56 bits
  std::uint32_t c = static_cast<std::uint32_t>(pc1 >> 28);
  std::uint32_t d = static_cast<std::uint32_t>(pc1 & 0x0FFFFFFFull);
  for (int round = 0; round < 16; ++round) {
    c = rotl28(c, kShifts[round]);
    d = rotl28(d, kShifts[round]);
    const std::uint64_t cd = static_cast<std::uint64_t>(c) << 28 | d;
    ks.subkeys[round] = permute(cd, kPc2, 56);  // 48 bits
  }
  return ks;
}

}  // namespace fbs::crypto::des_tables
