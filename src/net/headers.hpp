// UDP (RFC 768) and minimal TCP (RFC 793) header codecs. The FBS five-tuple
// policy (Section 7.1) classifies on <proto, saddr, sport, daddr, dport>, so
// the stack needs to read transport ports; the TCP codec carries just enough
// state for the ttcp-style bulk-transfer benchmark.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ip.hpp"
#include "util/bytes.hpp"

namespace fbs::net {

struct UdpDatagram;
struct TcpSegment;

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;

  /// Serialize with length and a checksum over the RFC 768 pseudo-header.
  util::Bytes serialize(Ipv4Address src, Ipv4Address dst,
                        util::BytesView payload) const;

  /// Parse and verify the checksum (src/dst needed for the pseudo-header).
  static std::optional<UdpDatagram> parse(Ipv4Address src, Ipv4Address dst,
                                          util::BytesView wire);
};

struct UdpDatagram {
  UdpHeader header;
  util::Bytes payload;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool fin = false;
  bool ack_flag = false;
  bool rst = false;
  std::uint16_t window = 65535;

  util::Bytes serialize(Ipv4Address src, Ipv4Address dst,
                        util::BytesView payload) const;

  /// Parse and verify the pseudo-header checksum. The decode is canonical:
  /// anything this struct cannot carry -- reserved or PSH/URG flag bits, a
  /// data offset other than 5 (options), a nonzero urgent pointer -- is
  /// rejected rather than silently dropped, so parse() accepts exactly the
  /// encodings serialize() produces.
  static std::optional<TcpSegment> parse(Ipv4Address src, Ipv4Address dst,
                                         util::BytesView wire);
};

struct TcpSegment {
  TcpHeader header;
  util::Bytes payload;
};

/// Read just the ports off a transport payload (first 4 bytes for both TCP
/// and UDP); used by the five-tuple flow mapper, which must classify without
/// fully parsing the transport layer. nullopt if truncated.
struct PortPair {
  std::uint16_t source = 0;
  std::uint16_t destination = 0;
};
std::optional<PortPair> peek_ports(util::BytesView transport_payload);

}  // namespace fbs::net
