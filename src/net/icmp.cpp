#include "net/icmp.hpp"

#include "net/checksum.hpp"

namespace fbs::net {

util::Bytes IcmpMessage::serialize() const {
  util::ByteWriter w(8 + payload.size());
  w.u8(type);
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.u16(identifier);
  w.u16(sequence);
  w.bytes(payload);
  util::Bytes out = w.take();
  const std::uint16_t csum = internet_checksum(out);
  out[2] = static_cast<std::uint8_t>(csum >> 8);
  out[3] = static_cast<std::uint8_t>(csum);
  return out;
}

std::optional<IcmpMessage> IcmpMessage::parse(util::BytesView wire) {
  if (wire.size() < 8) return std::nullopt;
  if (internet_checksum(wire) != 0) return std::nullopt;
  util::ByteReader r(wire);
  IcmpMessage m;
  m.type = *r.u8();
  m.code = *r.u8();
  (void)r.u16();  // checksum (verified)
  m.identifier = *r.u16();
  m.sequence = *r.u16();
  m.payload = r.rest();
  // RFC 792: echo request/reply carry code 0. The service would otherwise
  // echo an attacker-chosen code back verbatim.
  if ((m.type == kEchoRequest || m.type == kEchoReply) && m.code != 0)
    return std::nullopt;
  return m;
}

IcmpService::IcmpService(IpStack& stack, const util::Clock& clock)
    : stack_(stack), clock_(clock), identifier_(0x4642) {  // 'FB'
  stack_.register_protocol(
      IpProto::kIcmp, [this](const Ipv4Header& ip, util::Bytes payload) {
        on_message(ip, std::move(payload));
      });
}

bool IcmpService::ping(Ipv4Address destination, std::uint16_t sequence,
                       util::BytesView payload) {
  IcmpMessage m;
  m.type = IcmpMessage::kEchoRequest;
  m.identifier = identifier_;
  m.sequence = sequence;
  m.payload.assign(payload.begin(), payload.end());
  outstanding_[sequence] = clock_.now();
  return stack_.output(destination, IpProto::kIcmp, m.serialize());
}

void IcmpService::on_message(const Ipv4Header& ip, util::Bytes payload) {
  const auto m = IcmpMessage::parse(payload);
  if (!m) return;
  switch (m->type) {
    case IcmpMessage::kEchoRequest: {
      ++counters_.echo_requests_received;
      IcmpMessage reply = *m;
      reply.type = IcmpMessage::kEchoReply;
      if (stack_.output(ip.source, IpProto::kIcmp, reply.serialize()))
        ++counters_.echo_replies_sent;
      break;
    }
    case IcmpMessage::kEchoReply: {
      if (m->identifier != identifier_) break;
      ++counters_.echo_replies_received;
      const auto it = outstanding_.find(m->sequence);
      if (it != outstanding_.end()) {
        if (on_reply_) on_reply_(ip.source, m->sequence, clock_.now() - it->second);
        outstanding_.erase(it);
      }
      break;
    }
    default:
      ++counters_.unknown_messages;
  }
}

}  // namespace fbs::net
