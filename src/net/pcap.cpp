#include "net/pcap.hpp"

#include <algorithm>
#include <cstring>

namespace fbs::net {
namespace {

void put_u16(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(util::BytesView data, std::size_t at, bool swapped) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data[at + (swapped ? 3 - i : i)];
  return v;
}

std::uint16_t get_u16(util::BytesView data, std::size_t at, bool swapped) {
  return swapped
             ? static_cast<std::uint16_t>((data[at] << 8) | data[at + 1])
             : static_cast<std::uint16_t>((data[at + 1] << 8) | data[at]);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, const util::Clock& clock)
    : clock_(clock), file_(path, std::ios::binary | std::ios::trunc) {
  ok_ = file_.good();
  if (ok_) write_header();
}

PcapWriter::PcapWriter(util::Bytes* out, const util::Clock& clock)
    : clock_(clock), sink_(out), ok_(out != nullptr) {
  if (ok_) write_header();
}

void PcapWriter::write(const void* data, std::size_t size) {
  if (sink_ != nullptr) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    sink_->insert(sink_->end(), p, p + size);
  } else {
    file_.write(static_cast<const char*>(data), static_cast<long>(size));
    ok_ = ok_ && file_.good();
  }
}

void PcapWriter::write_header() {
  // Little-endian on the wire; PcapReader and the dissector accept either.
  util::Bytes h;
  put_u32(h, kPcapMagic);
  put_u16(h, kPcapVersionMajor);
  put_u16(h, kPcapVersionMinor);
  put_u32(h, 0);  // thiszone
  put_u32(h, 0);  // sigfigs
  put_u32(h, kPcapSnapLen);
  put_u32(h, kPcapLinktypeRaw);
  write(h.data(), h.size());
}

void PcapWriter::record(util::BytesView frame) {
  if (!ok_) return;
  const std::int64_t unix_us =
      clock_.now() + util::kFbsEpochUnixSeconds * util::kMicrosPerSecond;
  const std::size_t incl =
      std::min<std::size_t>(frame.size(), kPcapSnapLen);
  util::Bytes h;
  put_u32(h, static_cast<std::uint32_t>(unix_us / util::kMicrosPerSecond));
  put_u32(h, static_cast<std::uint32_t>(unix_us % util::kMicrosPerSecond));
  put_u32(h, static_cast<std::uint32_t>(incl));
  put_u32(h, static_cast<std::uint32_t>(frame.size()));
  write(h.data(), h.size());
  write(frame.data(), incl);
  ++frames_;
}

Transport::CaptureFn PcapWriter::capture_fn() {
  return [this](Ipv4Address, Ipv4Address, const util::Bytes& frame, bool) {
    record(frame);
  };
}

void PcapWriter::flush() {
  if (sink_ == nullptr) file_.flush();
}

std::optional<PcapReader::Capture> PcapReader::parse(util::BytesView data) {
  constexpr std::size_t kFileHeader = 24;
  constexpr std::size_t kRecordHeader = 16;
  if (data.size() < kFileHeader) return std::nullopt;

  bool swapped = false;
  const std::uint32_t magic = get_u32(data, 0, false);
  if (magic != kPcapMagic) {
    if (get_u32(data, 0, true) != kPcapMagic) return std::nullopt;
    swapped = true;
  }
  Capture cap;
  cap.swapped = swapped;
  const std::uint16_t major = get_u16(data, 4, swapped);
  if (major != kPcapVersionMajor) return std::nullopt;
  cap.snaplen = get_u32(data, 16, swapped);
  cap.linktype = get_u32(data, 20, swapped);
  if (cap.snaplen == 0 || cap.snaplen > 0x1000000) return std::nullopt;

  std::size_t at = kFileHeader;
  while (at < data.size()) {
    if (data.size() - at < kRecordHeader) return std::nullopt;
    Record rec;
    rec.ts_sec = get_u32(data, at, swapped);
    rec.ts_usec = get_u32(data, at + 4, swapped);
    const std::uint32_t incl = get_u32(data, at + 8, swapped);
    rec.orig_len = get_u32(data, at + 12, swapped);
    at += kRecordHeader;
    if (incl > cap.snaplen || incl > data.size() - at) return std::nullopt;
    if (rec.orig_len < incl) return std::nullopt;
    rec.frame.assign(data.begin() + static_cast<long>(at),
                     data.begin() + static_cast<long>(at + incl));
    at += incl;
    cap.records.push_back(std::move(rec));
  }
  return cap;
}

}  // namespace fbs::net
