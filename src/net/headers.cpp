#include "net/headers.hpp"

#include "net/checksum.hpp"

namespace fbs::net {

namespace {

/// RFC 768/793 pseudo-header for transport checksums. Seeds a
/// parity-carrying accumulator so the subsequent spans chain correctly
/// regardless of their lengths.
ChecksumAccumulator pseudo_header_sum(Ipv4Address src, Ipv4Address dst,
                                      std::uint8_t proto,
                                      std::size_t length) {
  util::ByteWriter w(12);
  w.u32(src.value);
  w.u32(dst.value);
  w.u8(0);
  w.u8(proto);
  w.u16(static_cast<std::uint16_t>(length));
  ChecksumAccumulator acc;
  acc.add(w.view());
  return acc;
}

}  // namespace

util::Bytes UdpHeader::serialize(Ipv4Address src, Ipv4Address dst,
                                 util::BytesView payload) const {
  const std::size_t total = kSize + payload.size();
  util::ByteWriter w(total);
  w.u16(source_port);
  w.u16(destination_port);
  w.u16(static_cast<std::uint16_t>(total));
  w.u16(0);  // checksum placeholder
  w.bytes(payload);

  util::Bytes out = w.take();
  ChecksumAccumulator acc = pseudo_header_sum(
      src, dst, static_cast<std::uint8_t>(IpProto::kUdp), total);
  acc.add(out);
  std::uint16_t csum = acc.finish();
  if (csum == 0) csum = 0xFFFF;  // RFC 768: zero means "no checksum"
  out[6] = static_cast<std::uint8_t>(csum >> 8);
  out[7] = static_cast<std::uint8_t>(csum);
  return out;
}

std::optional<UdpDatagram> UdpHeader::parse(Ipv4Address src, Ipv4Address dst,
                                            util::BytesView wire) {
  if (wire.size() < kSize) return std::nullopt;
  util::ByteReader r(wire);
  UdpDatagram out;
  out.header.source_port = *r.u16();
  out.header.destination_port = *r.u16();
  const std::uint16_t length = *r.u16();
  const std::uint16_t csum = *r.u16();
  if (length < kSize || length > wire.size()) return std::nullopt;
  if (csum != 0) {
    ChecksumAccumulator acc = pseudo_header_sum(
        src, dst, static_cast<std::uint8_t>(IpProto::kUdp), length);
    acc.add(wire.subspan(0, length));
    if (acc.finish() != 0) return std::nullopt;
  }
  out.payload.assign(wire.begin() + kSize, wire.begin() + length);
  return out;
}

util::Bytes TcpHeader::serialize(Ipv4Address src, Ipv4Address dst,
                                 util::BytesView payload) const {
  util::ByteWriter w(kSize + payload.size());
  w.u16(source_port);
  w.u16(destination_port);
  w.u32(seq);
  w.u32(ack);
  std::uint16_t flags = 5u << 12;  // data offset = 5 words
  if (fin) flags |= 0x001;
  if (syn) flags |= 0x002;
  if (rst) flags |= 0x004;
  if (ack_flag) flags |= 0x010;
  w.u16(flags);
  w.u16(window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.bytes(payload);

  util::Bytes out = w.take();
  ChecksumAccumulator acc = pseudo_header_sum(
      src, dst, static_cast<std::uint8_t>(IpProto::kTcp), out.size());
  acc.add(out);
  const std::uint16_t csum = acc.finish();
  out[16] = static_cast<std::uint8_t>(csum >> 8);
  out[17] = static_cast<std::uint8_t>(csum);
  return out;
}

std::optional<TcpSegment> TcpHeader::parse(Ipv4Address src, Ipv4Address dst,
                                           util::BytesView wire) {
  if (wire.size() < kSize) return std::nullopt;
  ChecksumAccumulator acc = pseudo_header_sum(
      src, dst, static_cast<std::uint8_t>(IpProto::kTcp), wire.size());
  acc.add(wire);
  if (acc.finish() != 0) return std::nullopt;

  util::ByteReader r(wire);
  TcpSegment out;
  out.header.source_port = *r.u16();
  out.header.destination_port = *r.u16();
  out.header.seq = *r.u32();
  out.header.ack = *r.u32();
  const std::uint16_t flags = *r.u16();
  // This codec carries FIN/SYN/RST/ACK and no options (kSize is the whole
  // header). Everything else -- the RFC 793 reserved bits, PSH/URG, options
  // words, a nonzero urgent pointer -- has no field in TcpHeader, so
  // accepting it would silently drop it and admit wire encodings
  // serialize() cannot reproduce.
  if (flags & ~std::uint16_t{0xF017}) return std::nullopt;
  const std::size_t data_offset = (flags >> 12) * 4u;
  if (data_offset != kSize) return std::nullopt;
  out.header.fin = flags & 0x001;
  out.header.syn = flags & 0x002;
  out.header.rst = flags & 0x004;
  out.header.ack_flag = flags & 0x010;
  out.header.window = *r.u16();
  (void)r.u16();  // checksum (verified above)
  if (*r.u16() != 0) return std::nullopt;  // urgent pointer: never emitted
  out.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(kSize),
                     wire.end());
  return out;
}

std::optional<PortPair> peek_ports(util::BytesView transport_payload) {
  if (transport_payload.size() < 4) return std::nullopt;
  return PortPair{
      static_cast<std::uint16_t>(transport_payload[0] << 8 |
                                 transport_payload[1]),
      static_cast<std::uint16_t>(transport_payload[2] << 8 |
                                 transport_payload[3])};
}

}  // namespace fbs::net
