// Egress queue disciplines for transit routers (mesh.hpp).
//
// A router's output port holds a bounded frame queue drained at the link's
// serialization rate; the discipline decides what happens when traffic
// arrives faster than the link drains:
//
//   kFifoTailDrop  -- classic drop-tail: accept until full, then drop.
//   kRed           -- Random Early Detection (Floyd & Jacobson 1993): an
//                     EWMA of the queue depth drives a probabilistic drop
//                     between two thresholds, spacing drops out so bursts
//                     degrade gracefully instead of cliff-dropping whole
//                     windows (the congestion-collapse scenario's remedy).
//   kBackpressure  -- no early drop; crossing a high watermark raises a
//                     hop-local xoff to upstream senders (IRON's
//                     backpressure forwarder is the exemplar), cleared at a
//                     low watermark. The hard capacity still tail-drops, so
//                     a jammed mesh sheds load instead of deadlocking.
//
// Every rejected frame is attributed to exactly one counter; the chaos
// scenarios sum these against SimNetwork's wire accounting to prove frame
// conservation across the whole mesh.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::net {

enum class QueueDiscipline : std::uint8_t {
  kFifoTailDrop,
  kRed,
  kBackpressure,
};

const char* to_string(QueueDiscipline d);

struct QueueParams {
  QueueDiscipline discipline = QueueDiscipline::kFifoTailDrop;
  /// Hard capacity in frames; the discipline may reject earlier, never
  /// later. 0 is clamped to 1.
  std::size_t capacity = 64;

  // RED knobs (defaults derived from capacity when left 0): drop nothing
  // below min_threshold, drop everything at/above max_threshold, and
  // interpolate the early-drop probability up to max_p in between.
  std::size_t red_min_threshold = 0;  // 0 -> capacity / 4
  std::size_t red_max_threshold = 0;  // 0 -> capacity * 3 / 4
  double red_max_p = 0.1;
  /// EWMA weight for the average depth. Classic RED uses small weights over
  /// per-packet samples; 0.25 tracks the simulator's burst granularity.
  double red_weight = 0.25;

  // Backpressure watermarks (defaults derived from capacity when left 0).
  std::size_t high_watermark = 0;  // 0 -> capacity * 3 / 4
  std::size_t low_watermark = 0;   // 0 -> capacity / 4
};

/// One egress queue. Single-threaded by design: it lives inside the
/// discrete-event simulation, so all calls happen on the sim thread.
class LinkQueue {
 public:
  enum class Enqueue : std::uint8_t {
    kAccepted,
    kTailDrop,  // FIFO full (or backpressure hard cap)
    kRedDrop,   // RED early drop
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t tail_dropped = 0;
    std::uint64_t red_dropped = 0;
    std::uint64_t wiped = 0;  // cleared by a router crash
    std::size_t highwater = 0;
  };

  LinkQueue(const QueueParams& params, util::RandomSource& rng);

  /// Apply the discipline and either store the frame or reject it.
  Enqueue push(util::Bytes frame, util::TimeUs now);

  struct Queued {
    util::Bytes frame;
    util::TimeUs enqueued_at = 0;
  };
  std::optional<Queued> pop();

  /// Crash semantics: queued frames are soft state and vanish. Returns how
  /// many were wiped (counted in stats().wiped).
  std::size_t wipe();

  std::size_t depth() const { return q_.size(); }
  std::size_t capacity() const { return params_.capacity; }
  const QueueParams& params() const { return params_; }
  const Stats& stats() const { return stats_; }
  double red_avg() const { return red_avg_; }

  /// Watermark predicates for the backpressure discipline.
  bool above_high() const { return q_.size() >= high_; }
  bool below_low() const { return q_.size() <= low_; }

 private:
  QueueParams params_;
  util::RandomSource& rng_;
  std::deque<Queued> q_;
  Stats stats_;
  std::size_t red_min_ = 0;
  std::size_t red_max_ = 0;
  std::size_t high_ = 0;
  std::size_t low_ = 0;
  double red_avg_ = 0.0;
  /// Accepted frames since the last RED drop; stretches drop spacing the
  /// way the 1993 paper's count term does.
  std::uint64_t red_count_ = 0;
};

}  // namespace fbs::net
