// RFC 1071 Internet checksum, used by the IPv4 and UDP codecs.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::net {

/// One's-complement sum folded to 16 bits; returns the checksum value to
/// place in a header whose checksum field is currently zero.
std::uint16_t internet_checksum(util::BytesView data);

/// Incremental interface for checksumming several non-contiguous pieces
/// (e.g. a pseudo-header plus payload). The accumulator carries byte
/// parity across spans: an odd-length non-final span leaves its trailing
/// byte as the pending high half of a 16-bit word, and the next span's
/// first byte fills the low half -- exactly as if the spans were one
/// contiguous buffer. (The bare checksum_partial below pads every span's
/// odd tail to a full word, which is only correct for the final span.)
class ChecksumAccumulator {
 public:
  void add(util::BytesView data);
  std::uint16_t finish() const;

 private:
  std::uint32_t acc_ = 0;
  bool odd_ = false;  // a high byte is pending its low-half partner
};

/// Single-span primitives. checksum_partial treats an odd trailing byte as
/// final padding, so chaining it across spans is only sound when every
/// non-final span has even length; use ChecksumAccumulator otherwise.
std::uint32_t checksum_partial(std::uint32_t acc, util::BytesView data);
std::uint16_t checksum_finish(std::uint32_t acc);

}  // namespace fbs::net
