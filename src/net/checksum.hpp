// RFC 1071 Internet checksum, used by the IPv4 and UDP codecs.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::net {

/// One's-complement sum folded to 16 bits; returns the checksum value to
/// place in a header whose checksum field is currently zero.
std::uint16_t internet_checksum(util::BytesView data);

/// Incremental interface for checksumming several non-contiguous pieces
/// (e.g. a pseudo-header plus payload).
std::uint32_t checksum_partial(std::uint32_t acc, util::BytesView data);
std::uint16_t checksum_finish(std::uint32_t acc);

}  // namespace fbs::net
