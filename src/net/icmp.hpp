// Minimal ICMP (RFC 792): echo request/reply, plus destination-unreachable
// generation. Completes the "raw IP" traffic class that the paper's
// five-tuple policy cannot classify (footnote 10) -- FBS treats it as
// host-level flows when raw-IP protection is enabled in the IP mapping.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/stack.hpp"

namespace fbs::net {

struct IcmpMessage {
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kDestinationUnreachable = 3;
  static constexpr std::uint8_t kEchoRequest = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t identifier = 0;  // echo only
  std::uint16_t sequence = 0;    // echo only
  util::Bytes payload;

  util::Bytes serialize() const;
  static std::optional<IcmpMessage> parse(util::BytesView wire);
};

/// Ping responder + client. Echo requests are answered automatically.
class IcmpService {
 public:
  using EchoReplyFn = std::function<void(Ipv4Address from,
                                         std::uint16_t sequence,
                                         util::TimeUs rtt)>;

  IcmpService(IpStack& stack, const util::Clock& clock);

  /// Send an echo request; the reply (if any) invokes `on_reply`.
  bool ping(Ipv4Address destination, std::uint16_t sequence,
            util::BytesView payload = {});
  void on_echo_reply(EchoReplyFn fn) { on_reply_ = std::move(fn); }

  struct Counters {
    std::uint64_t echo_requests_received = 0;
    std::uint64_t echo_replies_sent = 0;
    std::uint64_t echo_replies_received = 0;
    std::uint64_t unknown_messages = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  void on_message(const Ipv4Header& ip, util::Bytes payload);

  IpStack& stack_;
  const util::Clock& clock_;
  EchoReplyFn on_reply_;
  std::uint16_t identifier_;
  std::map<std::uint16_t, util::TimeUs> outstanding_;  // seq -> send time
  Counters counters_;
};

}  // namespace fbs::net
