#include "net/transport.hpp"

namespace fbs::net {

void Transport::register_transport_metrics(obs::MetricsRegistry& registry,
                                           const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    const Totals t = totals();
    emit.counter(prefix + ".transport.sent", t.sent);
    emit.counter(prefix + ".transport.received", t.received);
    emit.counter(prefix + ".transport.duplicated", t.duplicated);
    emit.counter(prefix + ".transport.injected", t.injected);
    emit.counter(prefix + ".transport.delivered", t.delivered);
    emit.counter(prefix + ".transport.tx_wire", t.tx_wire);
    emit.counter(prefix + ".transport.dropped", t.dropped);
    emit.gauge(prefix + ".transport.in_flight",
               static_cast<double>(t.in_flight));
  });
}

}  // namespace fbs::net
