// Host IP stack mirroring the three-part 4.4BSD structure the paper hooks
// into (Section 7.2):
//
//   output: [1] options/route  -> FBS output hook -> [2] fragment -> [3] tx
//   input:  [1] validate/recv  -> [2] reassemble  -> FBS input hook -> [3]
//           dispatch to the higher-layer protocol
//
// The security hooks are exactly the two-line ip_output.c / ip_input.c
// changes of the paper; `header_overhead` is the tcp_output.c fix (the
// segment-size calculation must account for the inserted FBS header or DF
// packets would need fragmenting).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

#include "net/fragment.hpp"
#include "net/ip.hpp"
#include "net/transport.hpp"

namespace fbs::net {

class IpStack {
 public:
  using ProtocolHandler =
      std::function<void(const Ipv4Header&, util::Bytes payload)>;

  /// What the deferred input hook did with a reassembled datagram.
  enum class DeferredVerdict {
    kConsumed,     // handed to the parallel pipeline; deliver() comes later
    kProcessSync,  // not pipeline material (bypass/raw); run the sync hook
    kDrop,         // pipeline backpressure: drop, counted as a hook drop
  };

  struct SecurityHooks {
    /// Called between output parts [1] and [2]; may grow the payload
    /// (inserting the FBS header) and must keep the header's protocol field
    /// meaningful. Return false to drop (counted).
    std::function<bool(Ipv4Header&, util::Bytes&)> output;
    /// Called between input parts [2] and [3]; strips/validates the FBS
    /// header. Return false to drop (counted).
    std::function<bool(const Ipv4Header&, util::Bytes&)> input;
    /// Optional asynchronous variant of `input`, consulted first (same hook
    /// placement: after reassembly, before dispatch). kConsumed means the
    /// hook took ownership of the payload and will call deliver() when the
    /// datagram clears its pipeline; kProcessSync falls through to `input`.
    std::function<DeferredVerdict(const Ipv4Header&, util::Bytes&)>
        deferred_input;
    /// Wire bytes the output hook adds; reduces the payload budget that
    /// upper layers (tcp_output-style senders) may use per packet.
    std::size_t header_overhead = 0;
  };

  /// Relaxed-atomic counters: pipeline drains call deliver() while the sim
  /// thread keeps receiving frames, so every counter a concurrent path can
  /// touch must tolerate unsynchronized increments. 64-bit throughout --
  /// frame-conservation invariants (chaos suite) must never see a wrap.
  struct Counters {
    std::atomic<std::uint64_t> packets_out{0};
    std::atomic<std::uint64_t> fragments_out{0};
    std::atomic<std::uint64_t> df_drops{0};
    std::atomic<std::uint64_t> packets_in{0};
    std::atomic<std::uint64_t> parse_errors{0};
    std::atomic<std::uint64_t> not_for_us{0};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> ttl_expired{0};
    std::atomic<std::uint64_t> reassembly_expired{0};
    std::atomic<std::uint64_t> hook_drops_out{0};
    std::atomic<std::uint64_t> hook_drops_in{0};
    std::atomic<std::uint64_t> no_protocol{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> deferred_in{0};  // consumed by deferred hook
  };

  IpStack(Transport& network, const util::Clock& clock, Ipv4Address address,
          std::size_t mtu = 1500);
  ~IpStack();

  IpStack(const IpStack&) = delete;
  IpStack& operator=(const IpStack&) = delete;

  Ipv4Address address() const { return address_; }
  std::size_t mtu() const { return mtu_; }
  /// Payload budget per unfragmented packet once IP and security-header
  /// overhead are paid; what a tcp_output-style sender should use with DF.
  std::size_t effective_payload_size() const;

  void register_protocol(IpProto proto, ProtocolHandler handler);
  void set_security_hooks(SecurityHooks hooks) { hooks_ = std::move(hooks); }

  /// Send a transport payload. Returns false if dropped before the wire
  /// (DF conflict or output-hook rejection).
  bool output(Ipv4Address destination, IpProto proto, util::BytesView payload,
              bool dont_fragment = false);

  // --- Routing and forwarding (gateway role) ---

  /// Off-link destinations matching network/prefix_len go via `next_hop`.
  /// Longest prefix wins; absent a route, delivery is direct (our segment
  /// is fully connected).
  void add_route(Ipv4Address network, int prefix_len, Ipv4Address next_hop);
  /// Drop every installed route (a routing recomputation reinstalls from
  /// scratch -- see MeshNetwork::recompute_routes).
  void clear_routes() { routes_.clear(); }
  /// Route for everything without a more specific entry.
  void set_default_route(Ipv4Address next_hop) { add_route({}, 0, next_hop); }
  /// Act as a router: packets not addressed to us are forwarded (TTL
  /// decremented; expired packets dropped).
  void enable_forwarding(bool on) { forwarding_ = on; }

  /// Inspect/steal packets about to be forwarded. Return true if consumed
  /// (e.g. a tunnel re-emitted it); false to forward normally. This is the
  /// hook a gateway-to-gateway FBS tunnel attaches to.
  using ForwardFilter =
      std::function<bool(const Ipv4Header&, const util::Bytes& payload)>;
  void set_forward_filter(ForwardFilter filter) {
    forward_filter_ = std::move(filter);
  }

  /// Transmit an already-formed IP packet (header+payload) on behalf of
  /// another host -- the forwarding transmit path (no output hooks; those
  /// are for locally originated traffic).
  bool forward_packet(Ipv4Header header, util::BytesView payload);

  /// Seam between the stack and the wire: when set, every frame this stack
  /// emits (locally originated and forwarded alike) is handed to the hook
  /// instead of Transport::send. A transit router installs its egress
  /// queue/serialization model here; the hook owns the frame and decides
  /// whether it is queued, delayed, or dropped (with its own accounting).
  using TransmitHook =
      std::function<void(Ipv4Address next_hop, util::Bytes frame)>;
  void set_transmit_hook(TransmitHook hook) {
    transmit_hook_ = std::move(hook);
  }

  const Counters& counters() const { return counters_; }
  /// Incomplete datagrams currently held by the reassembly queue (lost
  /// fragments must eventually expire these, not leak them).
  std::size_t reassembly_pending() const { return reassembler_.pending(); }

  /// Input part [3]: dispatch a (security-cleared) payload to its protocol
  /// handler. Public so a deferred input hook (the parallel pipeline) can
  /// complete delivery for datagrams it consumed. Single-writer contract:
  /// only one thread at a time may be delivering -- the pipeline funnels
  /// its results through one drain, and the sim thread and drains must not
  /// overlap (protocol handlers are not locked).
  void deliver(const Ipv4Header& header, util::Bytes payload);

 private:
  void on_frame(util::Bytes frame);
  void transmit(Ipv4Address next_hop, util::Bytes frame);
  Ipv4Address next_hop_for(Ipv4Address destination) const;

  struct Route {
    std::uint32_t network;
    int prefix_len;
    Ipv4Address next_hop;
  };

  Transport& network_;
  Ipv4Address address_;
  std::size_t mtu_;
  Reassembler reassembler_;
  std::map<std::uint8_t, ProtocolHandler> handlers_;
  SecurityHooks hooks_;
  std::vector<Route> routes_;
  bool forwarding_ = false;
  ForwardFilter forward_filter_;
  TransmitHook transmit_hook_;
  Counters counters_;
  std::uint16_t next_id_ = 1;
};

}  // namespace fbs::net
